// Stable-matching lattice walk: from the man-optimal matching, repeatedly
// apply Algorithm 4 (next stable matchings) down to the woman-optimal
// matching, printing the rotations exposed at each visited matching. Uses
// the paper's Figure 5 instance.

#include <cstdio>

#include "stable/gale_shapley.hpp"
#include "stable/lattice.hpp"
#include "stable/next_stable.hpp"
#include "stable/stability.hpp"

namespace {

ncpm::stable::StableInstance fig5() {
  return ncpm::stable::StableInstance::from_lists(
      {
          {4, 6, 0, 1, 5, 7, 3, 2},
          {1, 2, 6, 4, 3, 0, 7, 5},
          {7, 4, 0, 3, 5, 1, 2, 6},
          {2, 1, 6, 3, 0, 5, 7, 4},
          {6, 1, 4, 0, 2, 5, 7, 3},
          {0, 5, 6, 4, 7, 3, 1, 2},
          {1, 4, 6, 5, 2, 3, 7, 0},
          {2, 7, 3, 4, 6, 1, 5, 0},
      },
      {
          {4, 2, 6, 5, 0, 1, 7, 3},
          {7, 5, 2, 4, 6, 1, 0, 3},
          {0, 4, 5, 1, 3, 7, 6, 2},
          {7, 6, 2, 1, 3, 0, 4, 5},
          {5, 3, 6, 2, 7, 0, 1, 4},
          {1, 7, 4, 2, 3, 5, 6, 0},
          {6, 4, 1, 0, 7, 5, 3, 2},
          {6, 3, 0, 4, 1, 2, 5, 7},
      });
}

void print_matching(const char* label, const ncpm::stable::MarriageMatching& m) {
  std::printf("%s:", label);
  for (std::size_t man = 0; man < m.wife_of.size(); ++man) {
    std::printf(" m%zu-w%d", man + 1, m.wife_of[man] + 1);
  }
  std::printf("\n");
}

}  // namespace

int main() {
  const auto inst = fig5();
  const auto all = ncpm::stable::all_stable_matchings(inst);
  std::printf("the instance has %zu stable matchings in total\n\n", all.size());

  auto m = ncpm::stable::man_optimal(inst);
  print_matching("man-optimal M0", m);
  int level = 0;
  while (true) {
    const auto next = ncpm::stable::next_stable_matchings(inst, m);
    if (next.is_woman_optimal) {
      std::printf("\nreached the woman-optimal matching after %d steps\n", level);
      break;
    }
    std::printf("  level %d exposes %zu rotation(s):\n", level, next.rotations.size());
    for (const auto& rho : next.rotations) {
      std::printf("    rho = ");
      for (const auto& [man, woman] : rho.pairs) std::printf("(m%d,w%d) ", man + 1, woman + 1);
      std::printf("\n");
    }
    m = next.successors.front();  // follow the first rotation downward
    ++level;
    print_matching("descended to", m);
  }
  print_matching("woman-optimal Mz", ncpm::stable::woman_optimal(inst));
  return 0;
}
