// Housing allocation — the application the paper's introduction motivates
// (families to government-owned housing). Families rank a handful of
// acceptable houses; popularity protects the allocation from majority
// dissent, and the optimal variants of Section IV-E trade cardinality
// against rank quality. Random markets with heavy first-choice contention
// often admit no popular allocation at all (Algorithm 1 detects this), so
// the demo runs two markets: a skewed random one, reporting the existence
// verdict, and a large de-conflicted one, comparing Algorithm 1,
// Algorithm 3, and the fair and rank-maximal allocations.

#include <cstdio>

#include "core/max_card_popular.hpp"
#include "core/optimal_popular.hpp"
#include "core/popular_matching.hpp"
#include "core/verify.hpp"
#include "gen/generators.hpp"

namespace {

void report(const char* label, const ncpm::core::Instance& inst,
            const ncpm::matching::Matching& m) {
  const auto profile = ncpm::core::matching_profile(inst, m);
  std::printf("%-22s housed %6zu / %d families | by rank:", label,
              ncpm::core::matching_size(inst, m), inst.num_applicants());
  for (std::size_t k = 0; k + 1 < profile.dim(); ++k) {
    std::printf(" %ld", static_cast<long>(profile.at(k)));
  }
  std::printf(" | unhoused %ld\n", static_cast<long>(profile.at(profile.dim() - 1)));
}

}  // namespace

int main() {
  // Market 1: fully random with Zipf-skewed desirability. Existence is the
  // interesting output: heavy contention on a few desirable houses usually
  // kills popularity (Abraham et al.'s motivating observation).
  ncpm::gen::StrictConfig rcfg;
  rcfg.num_applicants = 20000;
  rcfg.num_posts = 14000;
  rcfg.list_min = 3;
  rcfg.list_max = 8;
  rcfg.zipf_s = 0.8;
  int admits = 0;
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    rcfg.seed = seed;
    const auto market = ncpm::gen::random_strict_instance(rcfg);
    if (ncpm::core::find_popular_matching(market).has_value()) ++admits;
  }
  std::printf("skewed random markets (20000 families, 14000 houses): "
              "%d / 10 admit a popular allocation\n\n", admits);

  // Market 2: a de-conflicted market (distinct first choices — e.g. after a
  // pre-processing lottery over identical flats) with 35%% of families
  // listing only high-demand houses, so their fallback is staying unhoused.
  ncpm::gen::SolvableConfig cfg;
  cfg.num_applicants = 20000;
  cfg.num_posts = 26000;
  cfg.list_min = 3;
  cfg.list_max = 8;
  cfg.all_f_fraction = 0.35;
  cfg.contention = 4.0;
  cfg.seed = 7;
  const auto inst = ncpm::gen::solvable_strict_instance(cfg);
  std::printf("de-conflicted market (20000 families, 26000 houses):\n");
  report("Algorithm 1 (any)", inst, *ncpm::core::find_popular_matching(inst));
  report("Algorithm 3 (largest)", inst, *ncpm::core::find_max_card_popular(inst));
  report("fair", inst, *ncpm::core::find_fair_popular(inst));
  report("rank-maximal", inst, *ncpm::core::find_rank_maximal_popular(inst));
  return 0;
}
