// Executor-scaling demo: the NC pipeline on a large instance across
// executor lane counts, against the sequential baseline, with the Lemma 2
// round counter. Each width is its own pram::Executor bound through a
// pram::Workspace — no process-global thread state is touched, so several
// sweeps could even run concurrently.

#include <chrono>
#include <cstdio>
#include <functional>

#include "core/abraham_baseline.hpp"
#include "core/popular_matching.hpp"
#include "gen/generators.hpp"
#include "pram/executor.hpp"
#include "pram/list_ranking.hpp"
#include "pram/workspace.hpp"

namespace {

double time_ms(const std::function<void()>& fn) {
  const auto start = std::chrono::steady_clock::now();
  fn();
  const auto end = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::milli>(end - start).count();
}

}  // namespace

int main() {
  ncpm::gen::SolvableConfig cfg;
  cfg.num_applicants = 1 << 19;
  cfg.num_posts = cfg.num_applicants + cfg.num_applicants / 2;
  cfg.list_min = 2;
  cfg.list_max = 6;
  cfg.all_f_fraction = 0.3;
  cfg.contention = 4.0;
  cfg.seed = 99;
  std::printf("generating instance with %d applicants...\n", cfg.num_applicants);
  const auto inst = ncpm::gen::solvable_strict_instance(cfg);

  const double seq_ms =
      time_ms([&] { auto m = ncpm::core::find_popular_matching_sequential(inst); });
  std::printf("sequential baseline: %8.1f ms\n", seq_ms);

  const int max_lanes = ncpm::pram::default_lanes();
  double t1 = 0.0;
  for (int lanes = 1; lanes <= max_lanes; lanes *= 2) {
    ncpm::pram::Executor ex(lanes);
    ncpm::pram::Workspace ws(ex);
    ncpm::core::PopularRunStats stats;
    const double ms = time_ms([&] {
      auto m = ncpm::core::find_popular_matching(inst, ws, nullptr, &stats);
    });
    if (lanes == 1) t1 = ms;
    const auto n = static_cast<std::uint64_t>(inst.num_applicants() + inst.total_posts());
    std::printf(
        "NC pipeline, %2d lanes: %8.1f ms  speedup vs 1 lane: %4.2fx  "
        "while-loop rounds %llu (Lemma 2 bound %u)\n",
        lanes, ms, t1 / ms, static_cast<unsigned long long>(stats.while_rounds),
        ncpm::pram::ceil_log2(n) + 1);
  }
  return 0;
}
