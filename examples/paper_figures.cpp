// Regenerates the content of every figure in the paper (F1-F7 in
// DESIGN.md) from the library's own computations, in the paper's notation.
// Diff the output against the figures in the text.

#include <cstdio>

#include "core/applicant_complete.hpp"
#include "core/instance.hpp"
#include "core/popular_matching.hpp"
#include "core/reduced_graph.hpp"
#include "core/switching_graph.hpp"
#include "stable/gale_shapley.hpp"
#include "stable/next_stable.hpp"
#include "stable/rotations.hpp"

namespace {

ncpm::core::Instance fig1() {
  return ncpm::core::Instance::strict(9, {
                                             {0, 3, 4, 1, 5},
                                             {3, 4, 6, 1, 7},
                                             {3, 0, 2, 7},
                                             {0, 6, 3, 2, 8},
                                             {4, 0, 6, 1, 5},
                                             {6, 5},
                                             {6, 3, 7, 1},
                                             {6, 3, 0, 4, 8, 2},
                                         });
}

ncpm::stable::StableInstance fig5() {
  return ncpm::stable::StableInstance::from_lists(
      {
          {4, 6, 0, 1, 5, 7, 3, 2},
          {1, 2, 6, 4, 3, 0, 7, 5},
          {7, 4, 0, 3, 5, 1, 2, 6},
          {2, 1, 6, 3, 0, 5, 7, 4},
          {6, 1, 4, 0, 2, 5, 7, 3},
          {0, 5, 6, 4, 7, 3, 1, 2},
          {1, 4, 6, 5, 2, 3, 7, 0},
          {2, 7, 3, 4, 6, 1, 5, 0},
      },
      {
          {4, 2, 6, 5, 0, 1, 7, 3},
          {7, 5, 2, 4, 6, 1, 0, 3},
          {0, 4, 5, 1, 3, 7, 6, 2},
          {7, 6, 2, 1, 3, 0, 4, 5},
          {5, 3, 6, 2, 7, 0, 1, 4},
          {1, 7, 4, 2, 3, 5, 6, 0},
          {6, 4, 1, 0, 7, 5, 3, 2},
          {6, 3, 0, 4, 1, 2, 5, 7},
      });
}

}  // namespace

int main() {
  using namespace ncpm;

  const auto inst = fig1();
  std::printf("=== Figure 1: a popular matching instance I ===\n");
  for (std::int32_t a = 0; a < inst.num_applicants(); ++a) {
    std::printf("a%d :", a + 1);
    for (const auto p : inst.posts_of(a)) std::printf(" p%d", p + 1);
    std::printf("\n");
  }

  const auto rg = core::build_reduced_graph(inst);
  std::printf("\n=== Figure 2a: the reduced preference lists of I ===\n");
  for (std::int32_t a = 0; a < inst.num_applicants(); ++a) {
    const auto ai = static_cast<std::size_t>(a);
    std::printf("a%d : p%d p%d\n", a + 1, rg.f_post[ai] + 1, rg.s_post[ai] + 1);
  }
  std::printf("f-posts:");
  for (const auto p : rg.f_posts) std::printf(" p%d", p + 1);
  std::printf("\n");

  std::printf("\n=== Figure 3: Algorithm 2's while loop ===\n");
  const auto ac = core::applicant_complete_matching(inst, rg);
  std::printf("while-loop rounds: %llu\n", static_cast<unsigned long long>(ac.while_rounds));
  std::printf("matched in/after the loop:");
  for (std::size_t a = 0; a < 8; ++a) std::printf(" (a%zu,p%d)", a + 1, ac.post_of[a] + 1);
  std::printf("\n");

  const auto popular = core::find_popular_matching(inst);
  std::printf("\n=== Section III-C: the resulting popular matching M ===\nM =");
  for (std::int32_t a = 0; a < 8; ++a) std::printf(" (a%d,p%d)", a + 1, popular->right_of(a) + 1);
  std::printf("\n");

  std::printf("\n=== Figure 4: the switching graph G_M (paper's stated M) ===\n");
  matching::Matching paper_m(inst.num_applicants(), inst.total_posts());
  const std::int32_t stated[] = {0, 1, 3, 2, 4, 6, 7, 8};
  for (std::int32_t a = 0; a < 8; ++a) paper_m.match(a, stated[a]);
  const core::SwitchingEngine engine(inst, rg, paper_m);
  for (std::int32_t p = 0; p < inst.total_posts(); ++p) {
    const auto pi = static_cast<std::size_t>(p);
    if (engine.pseudoforest().next[pi] != pram::kNone) {
      std::printf("p%d -> p%d  (a%d)\n", p + 1, engine.pseudoforest().next[pi] + 1,
                  engine.out_applicant()[pi] + 1);
    }
  }
  std::printf("switching cycles: %zu; switching paths start at:", engine.analysis().cycles.size());
  for (const auto label : engine.nontrivial_components()) {
    if (!engine.component_has_cycle(label)) {
      for (const auto q : engine.path_starts_of_component(label)) std::printf(" p%d", q + 1);
    }
  }
  std::printf("\n");

  const auto sm_inst = fig5();
  std::printf("\n=== Figure 5: stable marriage instance of size 8 ===\n");
  for (std::int32_t m = 0; m < 8; ++m) {
    std::printf("m%d :", m + 1);
    for (const auto w : sm_inst.man_prefs(m)) std::printf(" w%d", w + 1);
    std::printf("\n");
  }
  for (std::int32_t w = 0; w < 8; ++w) {
    std::printf("w%d :", w + 1);
    for (const auto m : sm_inst.woman_prefs(w)) std::printf(" m%d", m + 1);
    std::printf("\n");
  }

  const auto m_fig5 = stable::MarriageMatching::from_wife_of({7, 2, 4, 5, 6, 0, 1, 3});
  std::printf("\n=== Figure 6: reduced lists (partner, then s_M) for M ===\n");
  for (std::int32_t man = 0; man < 8; ++man) {
    const auto s = stable::s_m(sm_inst, m_fig5, man);
    std::printf("m%d : w%d", man + 1, m_fig5.wife_of[static_cast<std::size_t>(man)] + 1);
    if (s != stable::kNone) std::printf(" w%d ...", s + 1);
    std::printf("\n");
  }

  std::printf("\n=== Figure 7: the switching graph H_M — exposed rotations ===\n");
  const auto next = stable::next_stable_matchings(sm_inst, m_fig5);
  for (const auto& rho : next.rotations) {
    std::printf("rotation:");
    for (const auto& [man, woman] : rho.pairs) std::printf(" (m%d,w%d)", man + 1, woman + 1);
    std::printf("\n");
  }
  return 0;
}
