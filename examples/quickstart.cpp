// Quickstart: build an instance, find a popular matching, maximise its
// cardinality, inspect the result. Uses the paper's running example
// (Figure 1) so the output can be compared with Section III-C.

#include <cstdio>

#include "core/instance.hpp"
#include "core/max_card_popular.hpp"
#include "core/popular_matching.hpp"
#include "core/verify.hpp"

int main() {
  using namespace ncpm;

  // Applicants rank posts, best first (0-indexed; the paper's a1..a8 over
  // p1..p9). Ties would use Instance::with_ties.
  const core::Instance instance = core::Instance::strict(9, {
                                                                {0, 3, 4, 1, 5},
                                                                {3, 4, 6, 1, 7},
                                                                {3, 0, 2, 7},
                                                                {0, 6, 3, 2, 8},
                                                                {4, 0, 6, 1, 5},
                                                                {6, 5},
                                                                {6, 3, 7, 1},
                                                                {6, 3, 0, 4, 8, 2},
                                                            });

  // Algorithm 1: a popular matching, or proof that none exists.
  const auto popular = core::find_popular_matching(instance);
  if (!popular.has_value()) {
    std::printf("no popular matching exists\n");
    return 0;
  }
  std::printf("popular matching (%zu applicants on real posts):\n",
              core::matching_size(instance, *popular));
  for (std::int32_t a = 0; a < instance.num_applicants(); ++a) {
    const std::int32_t p = popular->right_of(a);
    if (instance.is_last_resort(p)) {
      std::printf("  a%d -> (last resort)\n", a + 1);
    } else {
      std::printf("  a%d -> p%d (rank %d)\n", a + 1, p + 1, instance.rank_of(a, p));
    }
  }

  // Algorithm 3: the largest popular matching.
  const auto largest = core::find_max_card_popular(instance);
  std::printf("maximum-cardinality popular matching size: %zu\n",
              core::matching_size(instance, *largest));

  // Independent certification via the Theorem 1 characterization.
  const auto rg = core::build_reduced_graph(instance);
  std::printf("certified popular: %s\n",
              core::satisfies_popular_characterization(instance, rg, *largest) ? "yes" : "no");
  return 0;
}
