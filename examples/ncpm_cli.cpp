// ncpm_cli — command-line front end over the text formats of gen/io.hpp.
//
//   ncpm_cli solve < instance.txt          popular matching (Algorithm 1)
//   ncpm_cli max-card < instance.txt       largest popular matching (Alg. 3)
//   ncpm_cli fair | rank-maximal < ...     Section IV-E variants
//   ncpm_cli count < instance.txt          number of popular matchings
//   ncpm_cli check < instance.txt          existence + statistics only
//   ncpm_cli next-stable < stable.txt      rotations exposed in M0 (Alg. 4)
//   ncpm_cli rotations < stable.txt        the instance's full rotation set
//   ncpm_cli gen-popular N P SEED          emit a random strict instance
//   ncpm_cli gen-stable N SEED             emit a random stable instance
//
// Instances are read from stdin; matchings / instances are written to
// stdout in the formats documented in gen/io.hpp.

#include <cstdio>
#include <cstring>
#include <iostream>
#include <string>

#include "core/max_card_popular.hpp"
#include "core/optimal_popular.hpp"
#include "core/popular_matching.hpp"
#include "core/switching_graph.hpp"
#include "core/ties.hpp"
#include "core/verify.hpp"
#include "gen/generators.hpp"
#include "gen/io.hpp"
#include "gen/stable_generators.hpp"
#include "stable/gale_shapley.hpp"
#include "stable/next_stable.hpp"

namespace {

int usage() {
  std::fprintf(stderr,
               "usage: ncpm_cli solve|max-card|fair|rank-maximal|count|check < instance.txt\n"
               "       ncpm_cli next-stable|rotations < stable.txt\n"
               "       ncpm_cli gen-popular N P SEED | gen-stable N SEED\n");
  return 2;
}

int emit_matching(const ncpm::core::Instance& inst,
                  const std::optional<ncpm::matching::Matching>& m) {
  if (!m.has_value()) {
    std::printf("no popular matching exists\n");
    return 1;
  }
  std::fprintf(stderr, "size %zu of %d applicants\n", ncpm::core::matching_size(inst, *m),
               inst.num_applicants());
  std::fputs(ncpm::io::write_matching(*m).c_str(), stdout);
  return 0;
}

int run_popular(const std::string& mode) {
  const auto inst = ncpm::io::read_instance(std::cin);
  if (mode == "check") {
    const bool strict = inst.strict_prefs();
    const auto m = strict ? ncpm::core::find_popular_matching(inst)
                          : ncpm::core::find_popular_matching_ties(inst);
    std::printf("applicants %d posts %d %s\n", inst.num_applicants(), inst.num_posts(),
                strict ? "strict" : "ties");
    if (!m.has_value()) {
      std::printf("admits_popular no\n");
    } else {
      std::printf("admits_popular yes\nsize %zu\n", ncpm::core::matching_size(inst, *m));
      if (strict) {
        const auto count = ncpm::core::count_popular_matchings(inst);
        std::printf("popular_matchings %llu\n", static_cast<unsigned long long>(*count));
      }
    }
    return 0;
  }
  if (!inst.strict_prefs()) {
    if (mode != "solve") {
      std::fprintf(stderr, "mode '%s' requires strict preferences; use 'solve'\n", mode.c_str());
      return 2;
    }
    return emit_matching(inst, ncpm::core::find_popular_matching_ties(inst));
  }
  if (mode == "solve") return emit_matching(inst, ncpm::core::find_popular_matching(inst));
  if (mode == "max-card") return emit_matching(inst, ncpm::core::find_max_card_popular(inst));
  if (mode == "fair") return emit_matching(inst, ncpm::core::find_fair_popular(inst));
  if (mode == "rank-maximal") {
    return emit_matching(inst, ncpm::core::find_rank_maximal_popular(inst));
  }
  if (mode == "count") {
    const auto count = ncpm::core::count_popular_matchings(inst);
    if (!count.has_value()) {
      std::printf("no popular matching exists\n");
      return 1;
    }
    std::printf("%llu\n", static_cast<unsigned long long>(*count));
    return 0;
  }
  return usage();
}

void print_rotation(const ncpm::stable::Rotation& rho) {
  for (const auto& [man, woman] : rho.pairs) std::printf("(%d,%d) ", man, woman);
  std::printf("\n");
}

int run_stable(const std::string& mode) {
  const auto inst = ncpm::io::read_stable_instance(std::cin);
  if (mode == "next-stable") {
    const auto m0 = ncpm::stable::man_optimal(inst);
    const auto result = ncpm::stable::next_stable_matchings(inst, m0);
    if (result.is_woman_optimal) {
      std::printf("man-optimal == woman-optimal: unique stable matching\n");
      return 0;
    }
    std::printf("%zu rotation(s) exposed in the man-optimal matching:\n",
                result.rotations.size());
    for (const auto& rho : result.rotations) print_rotation(rho);
    return 0;
  }
  if (mode == "rotations") {
    const auto rotations = ncpm::stable::all_rotations(inst);
    std::printf("%zu rotation(s) in the instance:\n", rotations.size());
    for (const auto& rho : rotations) print_rotation(rho);
    return 0;
  }
  return usage();
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string mode = argv[1];
  try {
    if (mode == "gen-popular") {
      if (argc != 5) return usage();
      ncpm::gen::StrictConfig cfg;
      cfg.num_applicants = std::atoi(argv[2]);
      cfg.num_posts = std::atoi(argv[3]);
      cfg.seed = static_cast<std::uint64_t>(std::atoll(argv[4]));
      std::fputs(ncpm::io::write_instance(ncpm::gen::random_strict_instance(cfg)).c_str(),
                 stdout);
      return 0;
    }
    if (mode == "gen-stable") {
      if (argc != 4) return usage();
      std::fputs(ncpm::io::write_stable_instance(ncpm::gen::random_stable_instance(
                     std::atoi(argv[2]), static_cast<std::uint64_t>(std::atoll(argv[3]))))
                     .c_str(),
                 stdout);
      return 0;
    }
    if (mode == "next-stable" || mode == "rotations") return run_stable(mode);
    return run_popular(mode);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 2;
  }
}
