// ncpm_cli — command-line front end over the engine and net subsystems and
// the text/binary formats of gen/io.hpp and gen/io_binary.hpp.
//
//   ncpm_cli solve [file] [--threads N]       popular matching (Algorithm 1)
//   ncpm_cli max-card [file]                  largest popular matching (Alg. 3)
//   ncpm_cli fair | rank-maximal [file]       Section IV-E variants
//   ncpm_cli count [file]                     number of popular matchings
//   ncpm_cli check [file]                     existence + statistics only
//   ncpm_cli next-stable [file]               rotations exposed in M0 (Alg. 4)
//   ncpm_cli rotations [file]                 the instance's full rotation set
//   ncpm_cli batch FILE [--threads N] [--mode M]
//                                             solve an ncpm-binary batch file
//   ncpm_cli pack OUT.bin IN.txt [IN2.txt..]  text instances -> binary batch
//   ncpm_cli gen-popular N P SEED             emit a random strict instance
//   ncpm_cli gen-stable N SEED                emit a random stable instance
//   ncpm_cli gen-batch COUNT N P SEED OUT.bin random solvable binary batch
//   ncpm_cli serve [--port P] [--bind A] [--workers W] [--threads L]
//                                             ncpm-rpc v1 server until SIGINT
//   ncpm_cli rpc HOST:PORT MODE [file] [--deadline-ms N]
//                                             one request over the wire
//   ncpm_cli stats HOST:PORT [--watch SECS] [--format prom|json] [--traces]
//                                             scrape a server's metrics snapshot
//   ncpm_cli top HOST:PORT [--interval SECS] [--count N]
//                                             live req/s, latency and phase view
//
// Instances are read from the optional input file (stdin when omitted);
// matchings / instances are written to stdout in the formats documented in
// gen/io.hpp. Every solving mode dispatches one engine::Request through an
// engine::Engine — the same per-mode code path the batch subcommand fans
// out across worker threads and `serve` exposes over TCP.
//
// Exit codes: 0 success, 1 "no popular matching", 2 usage or runtime
// error. Every subcommand prints a one-line `usage: ...` message to stderr
// and exits 2 on bad arguments (covered by tests/cli/usage_test.sh).

#include <algorithm>
#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "engine/engine.hpp"
#include "gen/generators.hpp"
#include "gen/io.hpp"
#include "gen/io_binary.hpp"
#include "gen/stable_generators.hpp"
#include "net/client.hpp"
#include "net/resilient_client.hpp"
#include "net/server.hpp"
#include "obs/registry.hpp"
#include "obs/trace.hpp"
#include "pram/executor.hpp"
#include "stable/rotations.hpp"

namespace {

constexpr const char* kTopUsage =
    "<solve|max-card|fair|rank-maximal|count|check|next-stable|rotations|batch|pack|"
    "gen-popular|gen-stable|gen-batch|serve|rpc|stats|top|help> ...";

/// One-line usage for the (sub)command at hand; always exits 2.
int usage(const char* line = kTopUsage) {
  std::fprintf(stderr, "usage: ncpm_cli %s\n", line);
  return 2;
}

constexpr const char* kSolveUsage =
    "solve|max-card|fair|rank-maximal|count|check|next-stable [file] [--threads N] "
    "[--pin-lanes CPUS]";
constexpr const char* kRotationsUsage = "rotations [file]";
constexpr const char* kBatchUsage = "batch FILE [--threads N] [--mode M] [--pin-lanes CPUS]";
constexpr const char* kPackUsage = "pack OUT.bin IN.txt [IN2.txt ...]";
constexpr const char* kGenPopularUsage = "gen-popular N_APPLICANTS N_POSTS SEED";
constexpr const char* kGenStableUsage = "gen-stable N SEED";
constexpr const char* kGenBatchUsage = "gen-batch COUNT N_APPLICANTS N_POSTS SEED OUT.bin";
constexpr const char* kServeUsage =
    "serve [--port P] [--bind ADDR] [--workers W] [--threads LANES] [--pin-lanes CPUS] "
    "[--max-in-flight K] [--max-in-flight-global G] [--core threads|epoll] "
    "[--idle-timeout-ms T] [--hello-timeout-ms T] [--metrics-port P] [--trace-sample-n N] "
    "[--slow-request-ms N] [--log-json]";
constexpr const char* kRpcUsage =
    "rpc HOST:PORT MODE [file] [--deadline-ms N] [--retries R] [--backoff-ms B] "
    "[--hedge-ms H]";
constexpr const char* kStatsUsage =
    "stats HOST:PORT [--watch SECS] [--format prom|json] [--traces]";
constexpr const char* kTopCmdUsage = "top HOST:PORT [--interval SECS] [--count N]";

int help() {
  std::printf(
      "ncpm_cli — NC popular matching toolkit\n"
      "  ncpm_cli %s\n  ncpm_cli %s\n  ncpm_cli %s\n  ncpm_cli %s\n  ncpm_cli %s\n"
      "  ncpm_cli %s\n  ncpm_cli %s\n  ncpm_cli %s\n  ncpm_cli %s\n  ncpm_cli %s\n"
      "  ncpm_cli %s\n"
      "Instances are read from [file] or stdin; formats are documented in\n"
      "src/gen/io.hpp (text), src/gen/io_binary.hpp (ncpm-binary v1) and\n"
      "docs/ncpm-rpc-v1.md (the serve/rpc wire protocol; docs/observability.md\n"
      "covers the stats/top subcommands and the serve metrics/tracing flags).\n",
      kSolveUsage, kRotationsUsage, kBatchUsage, kPackUsage, kGenPopularUsage,
      kGenStableUsage, kGenBatchUsage, kServeUsage, kRpcUsage, kStatsUsage, kTopCmdUsage);
  return 0;
}

struct Options {
  std::vector<std::string> positional;
  int threads = 0;             // 0 = unset (mode-dependent default)
  bool pin_lanes = false;      // pin executor lanes to CPUs
  std::vector<int> pin_cpus;   // empty = every allowed CPU ("auto")
  std::string mode = "solve";  // batch submode
  int port = 0;                // serve: 0 = ephemeral
  std::string bind = "127.0.0.1";
  int workers = 0;             // serve: 0 = hardware default
  int max_in_flight = 64;
  int max_in_flight_global = 0;  // serve: 0 = no global admission cap
  std::string core = "epoll";    // serve: reactor core (threads|epoll)
  int idle_timeout_ms = 0;       // serve: 0 = never reap idle connections
  int hello_timeout_ms = 10000;  // serve: 0 = wait for the hello forever
  int deadline_ms = 0;           // rpc: 0 = none
  int retries = 0;               // rpc: attempts beyond the first
  int backoff_ms = 50;           // rpc: initial retry backoff
  int hedge_ms = 0;              // rpc: 0 = no hedged second attempt
  int metrics_port = -1;         // serve: -1 = no /metrics endpoint, 0 = ephemeral
  int trace_sample_n = 0;        // serve: 0 = tracing off, N = every Nth request
  int slow_request_ms = 0;       // serve: 0 = slow-request capture off
  bool log_json = false;         // serve: JSON-lines lifecycle logging to stderr
  int watch = 0;                 // stats: 0 = one-shot, N = rescrape every N s
  std::string format = "prom";   // stats: prom|json
  bool traces = false;           // stats: include sampled trace spans (json only)
  int interval = 2;              // top: seconds between frames
  int count = 0;                 // top: 0 = until SIGINT, N = stop after N frames
};

/// Parse one nonnegative integer flag value; returns false on junk.
bool parse_int(const char* text, int min_value, int& out) {
  char* end = nullptr;
  const long v = std::strtol(text, &end, 10);
  if (end == text || *end != '\0' || v < min_value || v > 1'000'000'000L) return false;
  out = static_cast<int>(v);
  return true;
}

bool parse_flags(int argc, char** argv, Options& opts) {
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--threads") {
      if (++i >= argc || !parse_int(argv[i], 1, opts.threads)) return false;
    } else if (arg == "--pin-lanes") {
      // Value is "auto" (pin across every CPU the process may run on) or a
      // taskset-style list like "0,2-4"; malformed lists are a usage error.
      if (++i >= argc) return false;
      opts.pin_lanes = true;
      if (std::strcmp(argv[i], "auto") != 0) {
        const auto cpus = ncpm::pram::parse_cpu_list(argv[i]);
        if (!cpus.has_value()) return false;
        opts.pin_cpus = *cpus;
      }
    } else if (arg == "--mode") {
      if (++i >= argc) return false;
      opts.mode = argv[i];
    } else if (arg == "--port") {
      if (++i >= argc || !parse_int(argv[i], 0, opts.port) || opts.port > 65535) return false;
    } else if (arg == "--bind") {
      if (++i >= argc) return false;
      opts.bind = argv[i];
    } else if (arg == "--workers") {
      if (++i >= argc || !parse_int(argv[i], 1, opts.workers)) return false;
    } else if (arg == "--max-in-flight") {
      if (++i >= argc || !parse_int(argv[i], 1, opts.max_in_flight)) return false;
    } else if (arg == "--max-in-flight-global") {
      if (++i >= argc || !parse_int(argv[i], 0, opts.max_in_flight_global)) return false;
    } else if (arg == "--core") {
      if (++i >= argc || !ncpm::net::parse_server_core(argv[i]).has_value()) return false;
      opts.core = argv[i];
    } else if (arg == "--idle-timeout-ms") {
      if (++i >= argc || !parse_int(argv[i], 1, opts.idle_timeout_ms)) return false;
    } else if (arg == "--hello-timeout-ms") {
      if (++i >= argc || !parse_int(argv[i], 0, opts.hello_timeout_ms)) return false;
    } else if (arg == "--deadline-ms") {
      if (++i >= argc || !parse_int(argv[i], 1, opts.deadline_ms)) return false;
    } else if (arg == "--retries") {
      if (++i >= argc || !parse_int(argv[i], 0, opts.retries)) return false;
    } else if (arg == "--backoff-ms") {
      if (++i >= argc || !parse_int(argv[i], 1, opts.backoff_ms)) return false;
    } else if (arg == "--hedge-ms") {
      if (++i >= argc || !parse_int(argv[i], 1, opts.hedge_ms)) return false;
    } else if (arg == "--metrics-port") {
      if (++i >= argc || !parse_int(argv[i], 0, opts.metrics_port) || opts.metrics_port > 65535) {
        return false;
      }
    } else if (arg == "--trace-sample-n") {
      if (++i >= argc || !parse_int(argv[i], 1, opts.trace_sample_n)) return false;
    } else if (arg == "--slow-request-ms") {
      if (++i >= argc || !parse_int(argv[i], 1, opts.slow_request_ms)) return false;
    } else if (arg == "--log-json") {
      opts.log_json = true;
    } else if (arg == "--watch") {
      if (++i >= argc || !parse_int(argv[i], 1, opts.watch)) return false;
    } else if (arg == "--interval") {
      if (++i >= argc || !parse_int(argv[i], 1, opts.interval)) return false;
    } else if (arg == "--count") {
      if (++i >= argc || !parse_int(argv[i], 1, opts.count)) return false;
    } else if (arg == "--format") {
      if (++i >= argc) return false;
      opts.format = argv[i];
      if (opts.format != "prom" && opts.format != "json") return false;
    } else if (arg == "--traces") {
      opts.traces = true;
    } else if (arg.rfind("--", 0) == 0) {
      return false;
    } else {
      opts.positional.push_back(arg);
    }
  }
  return true;
}

/// Read the whole instance document from the given file (or stdin).
std::string slurp_input(const Options& opts) {
  if (opts.positional.empty()) {
    std::ostringstream buf;
    buf << std::cin.rdbuf();
    return buf.str();
  }
  std::ifstream file(opts.positional.front(), std::ios::binary);
  if (!file) {
    throw std::runtime_error("cannot open input file '" + opts.positional.front() + "'");
  }
  std::ostringstream buf;
  buf << file.rdbuf();
  return buf.str();
}

void print_rotation(const ncpm::stable::Rotation& rho) {
  for (const auto& [man, woman] : rho.pairs) std::printf("(%d,%d) ", man, woman);
  std::printf("\n");
}

/// Render one engine Result the way the pre-engine CLI printed each mode.
int print_result(const ncpm::engine::Result& res) {
  using ncpm::engine::Mode;
  using ncpm::engine::Status;
  switch (res.status) {
    case Status::kNoSolution:
      if (res.mode == Mode::kCheck && res.check.has_value()) break;  // printed below
      std::printf("no popular matching exists\n");
      return 1;
    case Status::kInvalid:
    case Status::kError:
      std::fprintf(stderr, "error: %s\n", res.error.c_str());
      return 2;
    case Status::kDeadlineExpired:
    case Status::kCancelled:
    case Status::kRejected:
      std::fprintf(stderr, "error: request %s\n",
                   std::string(ncpm::engine::status_name(res.status)).c_str());
      return 2;
    case Status::kOk:
      break;
  }

  switch (res.mode) {
    case Mode::kSolve:
    case Mode::kMaxCard:
    case Mode::kFair:
    case Mode::kRankMaximal:
      std::fprintf(stderr, "size %zu of %d applicants\n", res.matching_size, res.applicants);
      std::fputs(ncpm::io::write_matching(*res.matching).c_str(), stdout);
      return 0;
    case Mode::kCount:
      std::printf("%llu\n", static_cast<unsigned long long>(*res.count));
      return 0;
    case Mode::kCheck: {
      const auto& report = *res.check;
      std::printf("applicants %d posts %d %s\n", report.applicants, report.posts,
                  report.strict ? "strict" : "ties");
      if (!report.admits_popular) {
        std::printf("admits_popular no\n");
      } else {
        std::printf("admits_popular yes\nsize %zu\n", report.size);
        if (report.count.has_value()) {
          std::printf("popular_matchings %llu\n",
                      static_cast<unsigned long long>(*report.count));
        }
      }
      return 0;
    }
    case Mode::kNextStable: {
      const auto& result = *res.next_stable;
      if (result.is_woman_optimal) {
        std::printf("man-optimal == woman-optimal: unique stable matching\n");
        return 0;
      }
      std::printf("%zu rotation(s) exposed in the man-optimal matching:\n",
                  result.rotations.size());
      for (const auto& rho : result.rotations) print_rotation(rho);
      return 0;
    }
  }
  return 2;
}

/// Single-request path: every mode is one Request through a small engine.
int run_engine_mode(ncpm::engine::Mode mode, const Options& opts) {
  ncpm::engine::Request request;
  if (mode == ncpm::engine::Mode::kNextStable) {
    request = ncpm::engine::Request::next_stable(
        ncpm::io::read_stable_instance(slurp_input(opts)));
  } else {
    request = ncpm::engine::Request::popular(mode, ncpm::io::read_instance(slurp_input(opts)));
  }
  // One request: the whole --threads budget goes to intra-solve lanes
  // (ThreadBudget::single), defaulting to every hardware thread.
  const int total = opts.threads > 0 ? opts.threads : ncpm::pram::default_lanes();
  ncpm::engine::EngineConfig cfg(ncpm::engine::ThreadBudget::single(total));
  cfg.pin_lanes = opts.pin_lanes;
  cfg.cpu_set = opts.pin_cpus;
  ncpm::engine::Engine engine(cfg);
  return print_result(engine.submit(std::move(request)).get());
}

int run_rotations(const Options& opts) {
  const auto inst = ncpm::io::read_stable_instance(slurp_input(opts));
  const auto rotations = ncpm::stable::all_rotations(inst);
  std::printf("%zu rotation(s) in the instance:\n", rotations.size());
  for (const auto& rho : rotations) print_rotation(rho);
  return 0;
}

int run_batch(const Options& opts) {
  if (opts.positional.size() != 1) return usage(kBatchUsage);
  const auto mode = ncpm::engine::parse_mode(opts.mode);
  if (!mode.has_value() || *mode == ncpm::engine::Mode::kNextStable) {
    std::fprintf(stderr, "error: batch mode '%s' is not a popular-matching mode\n",
                 opts.mode.c_str());
    return 2;
  }
  std::ifstream file(opts.positional.front(), std::ios::binary);
  if (!file) {
    std::fprintf(stderr, "error: cannot open batch file '%s'\n",
                 opts.positional.front().c_str());
    return 2;
  }
  auto instances = ncpm::io::read_binary_instances(file);
  if (instances.empty()) {
    std::fprintf(stderr, "error: batch file holds no instances\n");
    return 2;
  }

  // Batch: split the --threads budget between worker concurrency and lanes
  // per worker — a queue at least as deep as the budget favours workers
  // (N x 1), a shallow one gives the spare threads to each solve.
  const auto budget = ncpm::engine::ThreadBudget::split(opts.threads > 0 ? opts.threads : 1,
                                                        instances.size());
  ncpm::engine::EngineConfig cfg(budget);
  cfg.pin_lanes = opts.pin_lanes;
  cfg.cpu_set = opts.pin_cpus;
  ncpm::engine::Engine engine(cfg);
  std::vector<ncpm::engine::Request> requests;
  requests.reserve(instances.size());
  for (auto& inst : instances) {
    requests.push_back(ncpm::engine::Request::popular(*mode, std::move(inst)));
  }
  const auto started = std::chrono::steady_clock::now();
  auto futures = engine.submit_batch(std::move(requests));

  std::size_t solved = 0;
  std::size_t no_solution = 0;
  std::size_t failed = 0;
  for (std::size_t i = 0; i < futures.size(); ++i) {
    const auto res = futures[i].get();
    switch (res.status) {
      case ncpm::engine::Status::kOk:
        ++solved;
        if (res.matching.has_value()) {
          std::printf("[%zu] ok size %zu\n", i, res.matching_size);
        } else if (res.count.has_value()) {
          std::printf("[%zu] ok count %llu\n", i,
                      static_cast<unsigned long long>(*res.count));
        } else {
          std::printf("[%zu] ok\n", i);
        }
        break;
      case ncpm::engine::Status::kNoSolution:
        ++no_solution;
        std::printf("[%zu] no-popular\n", i);
        break;
      default:
        ++failed;
        std::printf("[%zu] %s %s\n", i,
                    std::string(ncpm::engine::status_name(res.status)).c_str(),
                    res.error.c_str());
        break;
    }
  }
  const auto elapsed = std::chrono::duration_cast<std::chrono::duration<double>>(
      std::chrono::steady_clock::now() - started);

  const auto stats = engine.stats();
  std::fprintf(stderr,
               "batch: %zu instances, %zu solved, %zu without popular matching, %zu failed\n",
               futures.size(), solved, no_solution, failed);
  std::fprintf(stderr,
               "engine: %d worker(s) x %d lane(s), %.0f instances/sec, "
               "mean queue latency %.1f us\n",
               engine.num_workers(), stats.lanes_per_worker,
               static_cast<double>(futures.size()) / (elapsed.count() > 0 ? elapsed.count() : 1),
               stats.completed == 0 ? 0.0
                                    : static_cast<double>(stats.queue_ns_total) / 1e3 /
                                          static_cast<double>(stats.completed));
  std::fprintf(stderr, "engine: workspace allocations per worker:");
  for (const auto allocs : stats.workspace_allocs_per_worker) {
    std::fprintf(stderr, " %llu", static_cast<unsigned long long>(allocs));
  }
  std::fprintf(stderr, "\n");
  return failed == 0 ? 0 : 2;
}

int run_pack(const Options& opts) {
  if (opts.positional.size() < 2) return usage(kPackUsage);
  // Read and parse every input before opening (and truncating) the output,
  // so a mistyped input file cannot destroy an existing batch file.
  std::vector<ncpm::core::Instance> instances;
  instances.reserve(opts.positional.size() - 1);
  for (std::size_t i = 1; i < opts.positional.size(); ++i) {
    std::ifstream in(opts.positional[i], std::ios::binary);
    if (!in) {
      std::fprintf(stderr, "error: cannot open input file '%s'\n", opts.positional[i].c_str());
      return 2;
    }
    instances.push_back(ncpm::io::read_instance(in));
  }
  std::ofstream out(opts.positional.front(), std::ios::binary);
  if (!out) {
    std::fprintf(stderr, "error: cannot open output file '%s'\n",
                 opts.positional.front().c_str());
    return 2;
  }
  ncpm::io::write_binary_header(out);
  for (const auto& inst : instances) ncpm::io::write_binary_instance(out, inst);
  return 0;
}

int run_gen_batch(int argc, char** argv) {
  if (argc != 7) return usage(kGenBatchUsage);
  int count = 0;
  int applicants = 0;
  int posts = 0;
  // Validate the arguments before opening (and truncating) the output file.
  if (!parse_int(argv[2], 1, count) || !parse_int(argv[3], 1, applicants) ||
      !parse_int(argv[4], 1, posts)) {
    return usage(kGenBatchUsage);
  }
  ncpm::gen::SolvableConfig cfg;
  cfg.num_applicants = applicants;
  cfg.num_posts = posts;
  const auto seed = static_cast<std::uint64_t>(std::atoll(argv[5]));
  std::ofstream out(argv[6], std::ios::binary);
  if (!out) {
    std::fprintf(stderr, "error: cannot open output file '%s'\n", argv[6]);
    return 2;
  }
  ncpm::io::write_binary_header(out);
  for (int i = 0; i < count; ++i) {
    cfg.seed = seed + static_cast<std::uint64_t>(i);
    ncpm::io::write_binary_instance(out, ncpm::gen::solvable_strict_instance(cfg));
  }
  return 0;
}

/// Render one rpc ResponseFrame the way the local modes print, so `rpc`
/// output is byte-identical to running the same mode against a local file.
int print_response(const ncpm::net::ResponseFrame& resp) {
  using ncpm::engine::Mode;
  using ncpm::net::RpcStatus;
  switch (resp.status) {
    case RpcStatus::kNoSolution:
      if (resp.mode() == Mode::kCheck && resp.check.has_value()) break;  // printed below
      std::printf("no popular matching exists\n");
      return 1;
    case RpcStatus::kOk:
      break;
    default:
      std::fprintf(stderr, "error: %s%s%s\n",
                   std::string(ncpm::net::rpc_status_name(resp.status)).c_str(),
                   resp.error.empty() ? "" : ": ", resp.error.c_str());
      return 2;
  }
  std::fprintf(stderr, "rpc: queue %.1f us solve %.3f ms\n",
               static_cast<double>(resp.queue_ns) / 1e3,
               static_cast<double>(resp.solve_ns) / 1e6);
  if (resp.matching.has_value()) {
    std::fprintf(stderr, "size %llu of %u applicants\n",
                 static_cast<unsigned long long>(resp.matching_size), resp.applicants);
    std::fputs(ncpm::io::write_matching(*resp.matching).c_str(), stdout);
    return 0;
  }
  if (resp.count.has_value()) {
    std::printf("%llu\n", static_cast<unsigned long long>(*resp.count));
    return 0;
  }
  if (resp.check.has_value()) {
    const auto& report = *resp.check;
    std::printf("applicants %d posts %d %s\n", report.applicants, report.posts,
                report.strict ? "strict" : "ties");
    if (!report.admits_popular) {
      std::printf("admits_popular no\n");
    } else {
      std::printf("admits_popular yes\nsize %zu\n", report.size);
      if (report.count.has_value()) {
        std::printf("popular_matchings %llu\n", static_cast<unsigned long long>(*report.count));
      }
    }
    // Like the local path, check reports statistics and exits 0 either way.
    return 0;
  }
  return 0;
}

int run_rpc(const Options& opts) {
  if (opts.positional.size() < 2 || opts.positional.size() > 3) return usage(kRpcUsage);
  const auto& hostport = opts.positional[0];
  const auto colon = hostport.rfind(':');
  int port = 0;
  if (colon == std::string::npos || colon == 0 ||
      !parse_int(hostport.c_str() + colon + 1, 1, port) || port > 65535) {
    return usage(kRpcUsage);
  }
  const auto mode = ncpm::engine::parse_mode(opts.positional[1]);
  if (!mode.has_value() || *mode == ncpm::engine::Mode::kNextStable) return usage(kRpcUsage);

  Options input;  // slurp_input reads positional.front() (or stdin when empty)
  if (opts.positional.size() == 3) input.positional.push_back(opts.positional[2]);
  const auto inst = ncpm::io::read_instance(slurp_input(input));

  // Always go through the resilient wrapper: with the defaults (0 retries,
  // no hedge) it behaves exactly like a plain Client, and the flags buy
  // reconnect + backoff + hedging without a separate code path.
  ncpm::net::ResilientClientConfig rcfg;
  rcfg.max_attempts = opts.retries + 1;
  rcfg.backoff.initial = std::chrono::milliseconds(opts.backoff_ms);
  rcfg.hedge_delay = std::chrono::milliseconds(opts.hedge_ms);
  ncpm::net::ResilientClient client(hostport.substr(0, colon), static_cast<std::uint16_t>(port),
                                    rcfg);
  return print_response(client.call(*mode, inst, std::chrono::milliseconds(opts.deadline_ms)));
}

std::atomic<int> g_signal{0};
void on_signal(int sig) { g_signal.store(sig); }

/// Split "HOST:PORT"; false on a missing host, missing colon or junk port.
bool parse_hostport(const std::string& hostport, std::string& host, int& port) {
  const auto colon = hostport.rfind(':');
  if (colon == std::string::npos || colon == 0 ||
      !parse_int(hostport.c_str() + colon + 1, 1, port) || port > 65535) {
    return false;
  }
  host = hostport.substr(0, colon);
  return true;
}

int run_stats(const Options& opts) {
  if (opts.positional.size() != 1) return usage(kStatsUsage);
  // Trace spans only exist in the JSON rendering; Prometheus text has no
  // place for them, so reject the combination instead of dropping data.
  if (opts.traces && opts.format != "json") return usage(kStatsUsage);
  std::string host;
  int port = 0;
  if (!parse_hostport(opts.positional[0], host, port)) return usage(kStatsUsage);
  // Scrapes ride the resilient wrapper so --watch survives a server
  // restart: a broken connection redials on the next scrape instead of
  // killing the watch loop (a one-shot scrape still fails hard).
  ncpm::net::ResilientClient client(host, static_cast<std::uint16_t>(port), {});
  std::signal(SIGINT, on_signal);
  std::signal(SIGTERM, on_signal);
  while (true) {
    try {
      const auto reply = client.scrape_stats(opts.traces);
      if (opts.format == "prom") {
        std::fputs(ncpm::obs::render_prometheus(reply.snapshot).c_str(), stdout);
      } else {
        auto line = ncpm::obs::render_json(reply.snapshot);
        if (opts.traces) {
          // Splice the spans into the snapshot object: {...} -> {...,"spans":[...]}
          line.pop_back();
          line += ",\"spans\":";
          line += ncpm::obs::render_spans_json(reply.spans);
          line += "}";
        }
        line += "\n";
        std::fputs(line.c_str(), stdout);
      }
      std::fflush(stdout);
    } catch (const ncpm::net::NetError& e) {
      if (opts.watch == 0) throw;  // one-shot: surface the error (exit 2)
      std::fprintf(stderr, "stats: scrape failed (%s); retrying in %ds\n", e.what(),
                   opts.watch);
    }
    if (opts.watch == 0) return 0;
    for (int waited = 0; waited < opts.watch * 10; ++waited) {
      if (g_signal.load() != 0) return 0;
      std::this_thread::sleep_for(std::chrono::milliseconds(100));
    }
    if (g_signal.load() != 0) return 0;
  }
}

/// Formats nanoseconds adaptively (ns / us / ms / s) into `buf`.
const char* format_ns(double ns, char* buf, std::size_t size) {
  if (ns < 1e3) {
    std::snprintf(buf, size, "%.0fns", ns);
  } else if (ns < 1e6) {
    std::snprintf(buf, size, "%.1fus", ns / 1e3);
  } else if (ns < 1e9) {
    std::snprintf(buf, size, "%.2fms", ns / 1e6);
  } else {
    std::snprintf(buf, size, "%.2fs", ns / 1e9);
  }
  return buf;
}

/// Sum of every counter sample named `name` (across label sets).
std::uint64_t counter_sum(const ncpm::obs::Snapshot& snap, const char* name) {
  std::uint64_t total = 0;
  for (const auto& c : snap.counters) {
    if (c.name == name) total += c.value;
  }
  return total;
}

std::int64_t gauge_value(const ncpm::obs::Snapshot& snap, const char* name) {
  for (const auto& g : snap.gauges) {
    if (g.name == name) return g.value;
  }
  return 0;
}

/// All histogram samples named `name` folded into one (labels dropped).
ncpm::obs::HistogramSample histogram_sum(const ncpm::obs::Snapshot& snap, const char* name) {
  ncpm::obs::HistogramSample total;
  total.name = name;
  for (const auto& h : snap.histograms) {
    if (h.name != name) continue;
    total.count += h.count;
    total.sum += h.sum;
    for (std::size_t i = 0; i < ncpm::obs::kHistogramBuckets; ++i) {
      total.buckets[i] += h.buckets[i];
    }
  }
  return total;
}

/// a - b, element-wise — the distribution of observations between two
/// scrapes (counters and histograms are monotone, so this never wraps).
ncpm::obs::HistogramSample histogram_delta(const ncpm::obs::HistogramSample& a,
                                           const ncpm::obs::HistogramSample& b) {
  ncpm::obs::HistogramSample d = a;
  d.count -= b.count;
  d.sum -= b.sum;
  for (std::size_t i = 0; i < ncpm::obs::kHistogramBuckets; ++i) d.buckets[i] -= b.buckets[i];
  return d;
}

/// One `top` frame from two consecutive snapshots (prev empty on the first
/// frame, so frame 1 shows since-server-start rates).
void print_top_frame(const ncpm::obs::Snapshot& snap, const ncpm::obs::Snapshot& prev,
                     const std::string& endpoint) {
  const double window_s =
      static_cast<double>(snap.uptime_ns - prev.uptime_ns) / 1e9;
  const double safe_window = window_s > 0 ? window_s : 1.0;

  const auto rate = [&](const char* name) {
    return static_cast<double>(counter_sum(snap, name) - counter_sum(prev, name)) / safe_window;
  };
  const double req_s = rate("ncpm_engine_completed_total");
  const double shed_s =
      rate("ncpm_server_overloaded_shed_total") + rate("ncpm_server_deadline_shed_total");

  const auto solve =
      histogram_delta(histogram_sum(snap, "ncpm_engine_solve_ns"),
                      histogram_sum(prev, "ncpm_engine_solve_ns"));
  const auto queue =
      histogram_delta(histogram_sum(snap, "ncpm_engine_queue_ns"),
                      histogram_sum(prev, "ncpm_engine_queue_ns"));

  char b1[32], b2[32], b3[32], b4[32];
  std::printf("ncpm top — %s  uptime %.1fs  window %.1fs\n", endpoint.c_str(),
              static_cast<double>(snap.uptime_ns) / 1e9, window_s);
  std::printf("  req/s %.1f  shed/s %.1f  slow %llu  in-flight %lld  queue-depth %lld  "
              "conns %lld\n",
              req_s, shed_s,
              static_cast<unsigned long long>(counter_sum(snap, "ncpm_server_slow_requests_total")),
              static_cast<long long>(gauge_value(snap, "ncpm_engine_outstanding")),
              static_cast<long long>(gauge_value(snap, "ncpm_engine_queue_depth")),
              static_cast<long long>(gauge_value(snap, "ncpm_server_connections_active")));
  std::printf("  solve p50 %s p99 %s   queue p50 %s p99 %s\n",
              format_ns(solve.quantile(0.5), b1, sizeof(b1)),
              format_ns(solve.quantile(0.99), b2, sizeof(b2)),
              format_ns(queue.quantile(0.5), b3, sizeof(b3)),
              format_ns(queue.quantile(0.99), b4, sizeof(b4)));

  // Per-phase share of the window's solver time, biggest consumers first.
  struct PhaseShare {
    std::string name;
    std::uint64_t ns = 0;
  };
  std::vector<PhaseShare> phases;
  std::uint64_t phase_total = 0;
  for (const auto& h : snap.histograms) {
    if (h.name != "ncpm_solve_phase_ns") continue;
    std::uint64_t prev_sum = 0;
    for (const auto& p : prev.histograms) {
      if (p.name == h.name && p.labels == h.labels) {
        prev_sum = p.sum;
        break;
      }
    }
    const std::uint64_t delta = h.sum - prev_sum;
    if (delta == 0) continue;
    std::string label = h.labels.empty() ? std::string("?") : h.labels.front().second;
    phases.push_back({std::move(label), delta});
    phase_total += delta;
  }
  std::sort(phases.begin(), phases.end(),
            [](const PhaseShare& a, const PhaseShare& b) { return a.ns > b.ns; });
  std::printf("  phases:");
  if (phase_total == 0) {
    std::printf(" (no solves in window)");
  } else {
    const std::size_t shown = phases.size() < 5 ? phases.size() : 5;
    for (std::size_t i = 0; i < shown; ++i) {
      std::printf(" %s %.1f%%", phases[i].name.c_str(),
                  100.0 * static_cast<double>(phases[i].ns) /
                      static_cast<double>(phase_total));
    }
  }
  std::printf("\n");
  std::fflush(stdout);
}

int run_top(const Options& opts) {
  if (opts.positional.size() != 1) return usage(kTopCmdUsage);
  std::string host;
  int port = 0;
  if (!parse_hostport(opts.positional[0], host, port)) return usage(kTopCmdUsage);
  ncpm::net::ResilientClient client(host, static_cast<std::uint16_t>(port), {});
  std::signal(SIGINT, on_signal);
  std::signal(SIGTERM, on_signal);
  ncpm::obs::Snapshot prev;  // zero counters: frame 1 = rates since server start
  int frames = 0;
  while (true) {
    try {
      auto reply = client.scrape_stats(/*include_traces=*/false);
      print_top_frame(reply.snapshot, prev, opts.positional[0]);
      prev = std::move(reply.snapshot);
    } catch (const ncpm::net::NetError& e) {
      if (frames == 0) throw;  // never reached the server: surface the error
      std::fprintf(stderr, "top: scrape failed (%s); retrying in %ds\n", e.what(),
                   opts.interval);
    }
    ++frames;
    if (opts.count > 0 && frames >= opts.count) return 0;
    for (int waited = 0; waited < opts.interval * 10; ++waited) {
      if (g_signal.load() != 0) return 0;
      std::this_thread::sleep_for(std::chrono::milliseconds(100));
    }
    if (g_signal.load() != 0) return 0;
  }
}

int run_serve(const Options& opts) {
  if (!opts.positional.empty()) return usage(kServeUsage);
  ncpm::net::ServerConfig cfg;
  cfg.bind_address = opts.bind;
  cfg.port = static_cast<std::uint16_t>(opts.port);
  cfg.max_in_flight_per_connection = static_cast<std::size_t>(opts.max_in_flight);
  cfg.max_in_flight_global = static_cast<std::size_t>(opts.max_in_flight_global);
  cfg.core = *ncpm::net::parse_server_core(opts.core);  // validated in parse_flags
  cfg.idle_timeout = std::chrono::milliseconds(opts.idle_timeout_ms);
  cfg.hello_timeout = std::chrono::milliseconds(opts.hello_timeout_ms);
  cfg.engine.num_workers = opts.workers > 0 ? opts.workers : ncpm::pram::default_lanes();
  cfg.engine.lanes_per_worker = opts.threads > 0 ? opts.threads : 1;
  cfg.engine.pin_lanes = opts.pin_lanes;
  cfg.engine.cpu_set = opts.pin_cpus;
  if (opts.metrics_port >= 0) cfg.metrics_port = static_cast<std::uint16_t>(opts.metrics_port);
  cfg.trace_sample_n = static_cast<std::uint64_t>(opts.trace_sample_n);
  cfg.slow_request_ns = static_cast<std::uint64_t>(opts.slow_request_ms) * 1'000'000;
  cfg.log_json = opts.log_json;

  ncpm::net::Server server(cfg);
  server.start();
  // One parseable line on stdout so scripts (and the loopback bench) can
  // pick up an ephemeral port.
  std::printf("ncpm-rpc v1 listening on %s:%u (%s core, %d worker(s) x %d lane(s))\n",
              cfg.bind_address.c_str(), server.port(),
              std::string(ncpm::net::server_core_name(cfg.core)).c_str(),
              cfg.engine.num_workers, cfg.engine.lanes_per_worker);
  std::fflush(stdout);
  // Startup summary: one stderr line with everything an operator needs to
  // know about how this process is configured.
  std::string extras;
  if (server.metrics_port() != 0) {
    extras += " metrics-port=" + std::to_string(server.metrics_port());
  }
  if (cfg.trace_sample_n > 0) {
    extras += " trace-sample-n=" + std::to_string(cfg.trace_sample_n);
  }
  if (cfg.slow_request_ns > 0) {
    extras += " slow-request-ms=" + std::to_string(opts.slow_request_ms);
  }
  if (cfg.engine.pin_lanes) extras += " pin-lanes=on";
  if (cfg.log_json) extras += " log-json=on";
  std::fprintf(stderr,
               "ncpm_cli serve: up port=%u core=%s workers=%d lanes=%d "
               "max-in-flight=%zu max-in-flight-global=%zu%s\n",
               server.port(), std::string(ncpm::net::server_core_name(cfg.core)).c_str(),
               cfg.engine.num_workers, cfg.engine.lanes_per_worker,
               cfg.max_in_flight_per_connection, cfg.max_in_flight_global, extras.c_str());

  std::signal(SIGINT, on_signal);
  std::signal(SIGTERM, on_signal);
  while (g_signal.load() == 0 && server.running()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  const double uptime_s =
      static_cast<double>(server.registry().uptime_ns()) / 1e9;
  std::fprintf(stderr, "ncpm_cli serve: draining\n");
  server.stop();
  const auto stats = server.stats();
  // Drain summary: mirrors the startup line so the two bracket the run.
  std::fprintf(stderr,
               "ncpm_cli serve: down uptime=%.1fs connections=%llu frames=%llu "
               "responses=%llu shed=%llu malformed=%llu\n",
               uptime_s, static_cast<unsigned long long>(stats.connections_accepted),
               static_cast<unsigned long long>(stats.frames_received),
               static_cast<unsigned long long>(stats.responses_sent),
               static_cast<unsigned long long>(stats.overloaded_shed + stats.deadline_shed),
               static_cast<unsigned long long>(stats.malformed_frames));
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string mode = argv[1];
  Options opts;
  try {
    if (mode == "help" || mode == "--help" || mode == "-h") return help();
    if (mode == "gen-popular") {
      if (argc != 5) return usage(kGenPopularUsage);
      ncpm::gen::StrictConfig cfg;
      int applicants = 0;
      int posts = 0;
      if (!parse_int(argv[2], 1, applicants) || !parse_int(argv[3], 1, posts)) {
        return usage(kGenPopularUsage);
      }
      cfg.num_applicants = applicants;
      cfg.num_posts = posts;
      cfg.seed = static_cast<std::uint64_t>(std::atoll(argv[4]));
      std::fputs(ncpm::io::write_instance(ncpm::gen::random_strict_instance(cfg)).c_str(),
                 stdout);
      return 0;
    }
    if (mode == "gen-stable") {
      if (argc != 4) return usage(kGenStableUsage);
      int n = 0;
      if (!parse_int(argv[2], 1, n)) return usage(kGenStableUsage);
      std::fputs(ncpm::io::write_stable_instance(ncpm::gen::random_stable_instance(
                     n, static_cast<std::uint64_t>(std::atoll(argv[3]))))
                     .c_str(),
                 stdout);
      return 0;
    }
    if (mode == "gen-batch") return run_gen_batch(argc, argv);
    if (!parse_flags(argc, argv, opts)) {
      if (mode == "batch") return usage(kBatchUsage);
      if (mode == "pack") return usage(kPackUsage);
      if (mode == "serve") return usage(kServeUsage);
      if (mode == "rpc") return usage(kRpcUsage);
      if (mode == "stats") return usage(kStatsUsage);
      if (mode == "top") return usage(kTopCmdUsage);
      if (mode == "rotations") return usage(kRotationsUsage);
      return usage(ncpm::engine::parse_mode(mode).has_value() ? kSolveUsage : kTopUsage);
    }
    if (mode == "batch") return run_batch(opts);
    if (mode == "pack") return run_pack(opts);
    if (mode == "serve") return run_serve(opts);
    if (mode == "rpc") return run_rpc(opts);
    if (mode == "stats") return run_stats(opts);
    if (mode == "top") return run_top(opts);
    if (mode == "rotations") {
      if (opts.positional.size() > 1) return usage(kRotationsUsage);
      return run_rotations(opts);
    }
    const auto engine_mode = ncpm::engine::parse_mode(mode);
    if (!engine_mode.has_value()) return usage();
    if (opts.positional.size() > 1) return usage(kSolveUsage);
    return run_engine_mode(*engine_mode, opts);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 2;
  }
}
