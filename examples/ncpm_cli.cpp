// ncpm_cli — command-line front end over the engine subsystem and the
// text/binary formats of gen/io.hpp and gen/io_binary.hpp.
//
//   ncpm_cli solve [file] [--threads N]       popular matching (Algorithm 1)
//   ncpm_cli max-card [file]                  largest popular matching (Alg. 3)
//   ncpm_cli fair | rank-maximal [file]       Section IV-E variants
//   ncpm_cli count [file]                     number of popular matchings
//   ncpm_cli check [file]                     existence + statistics only
//   ncpm_cli next-stable [file]               rotations exposed in M0 (Alg. 4)
//   ncpm_cli rotations [file]                 the instance's full rotation set
//   ncpm_cli batch FILE [--threads N] [--mode M]
//                                             solve an ncpm-binary batch file
//   ncpm_cli pack OUT.bin IN.txt [IN2.txt..]  text instances -> binary batch
//   ncpm_cli gen-popular N P SEED             emit a random strict instance
//   ncpm_cli gen-stable N SEED                emit a random stable instance
//   ncpm_cli gen-batch COUNT N P SEED OUT.bin random solvable binary batch
//
// Instances are read from the optional input file (stdin when omitted);
// matchings / instances are written to stdout in the formats documented in
// gen/io.hpp. Every solving mode dispatches one engine::Request through an
// engine::Engine — the same per-mode code path the batch subcommand fans
// out across worker threads.

#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "engine/engine.hpp"
#include "gen/generators.hpp"
#include "gen/io.hpp"
#include "gen/io_binary.hpp"
#include "gen/stable_generators.hpp"
#include "pram/executor.hpp"
#include "stable/rotations.hpp"

namespace {

int usage() {
  std::fprintf(
      stderr,
      "usage: ncpm_cli solve|max-card|fair|rank-maximal|count|check [file] [--threads N]\n"
      "       ncpm_cli next-stable|rotations [file]\n"
      "       ncpm_cli batch FILE [--threads N] [--mode M]\n"
      "       ncpm_cli pack OUT.bin IN.txt [IN2.txt ...]\n"
      "       ncpm_cli gen-popular N P SEED | gen-stable N SEED\n"
      "       ncpm_cli gen-batch COUNT N P SEED OUT.bin\n");
  return 2;
}

struct Options {
  std::vector<std::string> positional;
  int threads = 0;             // 0 = unset (mode-dependent default)
  std::string mode = "solve";  // batch submode
};

bool parse_flags(int argc, char** argv, Options& opts) {
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--threads") {
      if (++i >= argc) return false;
      opts.threads = std::atoi(argv[i]);
      if (opts.threads < 1) return false;
    } else if (arg == "--mode") {
      if (++i >= argc) return false;
      opts.mode = argv[i];
    } else if (arg.rfind("--", 0) == 0) {
      return false;
    } else {
      opts.positional.push_back(arg);
    }
  }
  return true;
}

/// Read the whole instance document from the given file (or stdin).
std::string slurp_input(const Options& opts) {
  if (opts.positional.empty()) {
    std::ostringstream buf;
    buf << std::cin.rdbuf();
    return buf.str();
  }
  std::ifstream file(opts.positional.front(), std::ios::binary);
  if (!file) {
    throw std::runtime_error("cannot open input file '" + opts.positional.front() + "'");
  }
  std::ostringstream buf;
  buf << file.rdbuf();
  return buf.str();
}

void print_rotation(const ncpm::stable::Rotation& rho) {
  for (const auto& [man, woman] : rho.pairs) std::printf("(%d,%d) ", man, woman);
  std::printf("\n");
}

/// Render one engine Result the way the pre-engine CLI printed each mode.
int print_result(const ncpm::engine::Result& res) {
  using ncpm::engine::Mode;
  using ncpm::engine::Status;
  switch (res.status) {
    case Status::kNoSolution:
      if (res.mode == Mode::kCheck && res.check.has_value()) break;  // printed below
      std::printf("no popular matching exists\n");
      return 1;
    case Status::kInvalid:
    case Status::kError:
      std::fprintf(stderr, "error: %s\n", res.error.c_str());
      return 2;
    case Status::kDeadlineExpired:
    case Status::kCancelled:
      std::fprintf(stderr, "error: request %s\n",
                   std::string(ncpm::engine::status_name(res.status)).c_str());
      return 2;
    case Status::kOk:
      break;
  }

  switch (res.mode) {
    case Mode::kSolve:
    case Mode::kMaxCard:
    case Mode::kFair:
    case Mode::kRankMaximal:
      std::fprintf(stderr, "size %zu of %d applicants\n", res.matching_size, res.applicants);
      std::fputs(ncpm::io::write_matching(*res.matching).c_str(), stdout);
      return 0;
    case Mode::kCount:
      std::printf("%llu\n", static_cast<unsigned long long>(*res.count));
      return 0;
    case Mode::kCheck: {
      const auto& report = *res.check;
      std::printf("applicants %d posts %d %s\n", report.applicants, report.posts,
                  report.strict ? "strict" : "ties");
      if (!report.admits_popular) {
        std::printf("admits_popular no\n");
      } else {
        std::printf("admits_popular yes\nsize %zu\n", report.size);
        if (report.count.has_value()) {
          std::printf("popular_matchings %llu\n",
                      static_cast<unsigned long long>(*report.count));
        }
      }
      return 0;
    }
    case Mode::kNextStable: {
      const auto& result = *res.next_stable;
      if (result.is_woman_optimal) {
        std::printf("man-optimal == woman-optimal: unique stable matching\n");
        return 0;
      }
      std::printf("%zu rotation(s) exposed in the man-optimal matching:\n",
                  result.rotations.size());
      for (const auto& rho : result.rotations) print_rotation(rho);
      return 0;
    }
  }
  return 2;
}

/// Single-request path: every mode is one Request through a small engine.
int run_engine_mode(ncpm::engine::Mode mode, const Options& opts) {
  ncpm::engine::Request request;
  if (mode == ncpm::engine::Mode::kNextStable) {
    request = ncpm::engine::Request::next_stable(
        ncpm::io::read_stable_instance(slurp_input(opts)));
  } else {
    request = ncpm::engine::Request::popular(mode, ncpm::io::read_instance(slurp_input(opts)));
  }
  // One request: the whole --threads budget goes to intra-solve lanes
  // (ThreadBudget::single), defaulting to every hardware thread.
  const int total = opts.threads > 0 ? opts.threads : ncpm::pram::default_lanes();
  ncpm::engine::Engine engine(ncpm::engine::ThreadBudget::single(total));
  return print_result(engine.submit(std::move(request)).get());
}

int run_rotations(const Options& opts) {
  const auto inst = ncpm::io::read_stable_instance(slurp_input(opts));
  const auto rotations = ncpm::stable::all_rotations(inst);
  std::printf("%zu rotation(s) in the instance:\n", rotations.size());
  for (const auto& rho : rotations) print_rotation(rho);
  return 0;
}

int run_batch(const Options& opts) {
  if (opts.positional.size() != 1) return usage();
  const auto mode = ncpm::engine::parse_mode(opts.mode);
  if (!mode.has_value() || *mode == ncpm::engine::Mode::kNextStable) {
    std::fprintf(stderr, "error: batch mode '%s' is not a popular-matching mode\n",
                 opts.mode.c_str());
    return 2;
  }
  std::ifstream file(opts.positional.front(), std::ios::binary);
  if (!file) {
    std::fprintf(stderr, "error: cannot open batch file '%s'\n",
                 opts.positional.front().c_str());
    return 2;
  }
  auto instances = ncpm::io::read_binary_instances(file);
  if (instances.empty()) {
    std::fprintf(stderr, "error: batch file holds no instances\n");
    return 2;
  }

  // Batch: split the --threads budget between worker concurrency and lanes
  // per worker — a queue at least as deep as the budget favours workers
  // (N x 1), a shallow one gives the spare threads to each solve.
  const auto budget = ncpm::engine::ThreadBudget::split(opts.threads > 0 ? opts.threads : 1,
                                                        instances.size());
  ncpm::engine::Engine engine(budget);
  std::vector<ncpm::engine::Request> requests;
  requests.reserve(instances.size());
  for (auto& inst : instances) {
    requests.push_back(ncpm::engine::Request::popular(*mode, std::move(inst)));
  }
  const auto started = std::chrono::steady_clock::now();
  auto futures = engine.submit_batch(std::move(requests));

  std::size_t solved = 0;
  std::size_t no_solution = 0;
  std::size_t failed = 0;
  for (std::size_t i = 0; i < futures.size(); ++i) {
    const auto res = futures[i].get();
    switch (res.status) {
      case ncpm::engine::Status::kOk:
        ++solved;
        if (res.matching.has_value()) {
          std::printf("[%zu] ok size %zu\n", i, res.matching_size);
        } else if (res.count.has_value()) {
          std::printf("[%zu] ok count %llu\n", i,
                      static_cast<unsigned long long>(*res.count));
        } else {
          std::printf("[%zu] ok\n", i);
        }
        break;
      case ncpm::engine::Status::kNoSolution:
        ++no_solution;
        std::printf("[%zu] no-popular\n", i);
        break;
      default:
        ++failed;
        std::printf("[%zu] %s %s\n", i,
                    std::string(ncpm::engine::status_name(res.status)).c_str(),
                    res.error.c_str());
        break;
    }
  }
  const auto elapsed = std::chrono::duration_cast<std::chrono::duration<double>>(
      std::chrono::steady_clock::now() - started);

  const auto stats = engine.stats();
  std::fprintf(stderr,
               "batch: %zu instances, %zu solved, %zu without popular matching, %zu failed\n",
               futures.size(), solved, no_solution, failed);
  std::fprintf(stderr,
               "engine: %d worker(s) x %d lane(s), %.0f instances/sec, "
               "mean queue latency %.1f us\n",
               engine.num_workers(), stats.lanes_per_worker,
               static_cast<double>(futures.size()) / (elapsed.count() > 0 ? elapsed.count() : 1),
               stats.completed == 0 ? 0.0
                                    : static_cast<double>(stats.queue_ns_total) / 1e3 /
                                          static_cast<double>(stats.completed));
  std::fprintf(stderr, "engine: workspace allocations per worker:");
  for (const auto allocs : stats.workspace_allocs_per_worker) {
    std::fprintf(stderr, " %llu", static_cast<unsigned long long>(allocs));
  }
  std::fprintf(stderr, "\n");
  return failed == 0 ? 0 : 2;
}

int run_pack(const Options& opts) {
  if (opts.positional.size() < 2) return usage();
  // Read and parse every input before opening (and truncating) the output,
  // so a mistyped input file cannot destroy an existing batch file.
  std::vector<ncpm::core::Instance> instances;
  instances.reserve(opts.positional.size() - 1);
  for (std::size_t i = 1; i < opts.positional.size(); ++i) {
    std::ifstream in(opts.positional[i], std::ios::binary);
    if (!in) {
      std::fprintf(stderr, "error: cannot open input file '%s'\n", opts.positional[i].c_str());
      return 2;
    }
    instances.push_back(ncpm::io::read_instance(in));
  }
  std::ofstream out(opts.positional.front(), std::ios::binary);
  if (!out) {
    std::fprintf(stderr, "error: cannot open output file '%s'\n",
                 opts.positional.front().c_str());
    return 2;
  }
  ncpm::io::write_binary_header(out);
  for (const auto& inst : instances) ncpm::io::write_binary_instance(out, inst);
  return 0;
}

int run_gen_batch(int argc, char** argv) {
  if (argc != 7) return usage();
  const int count = std::atoi(argv[2]);
  ncpm::gen::SolvableConfig cfg;
  cfg.num_applicants = std::atoi(argv[3]);
  cfg.num_posts = std::atoi(argv[4]);
  const auto seed = static_cast<std::uint64_t>(std::atoll(argv[5]));
  // Validate the arguments before opening (and truncating) the output file.
  if (count < 1 || cfg.num_applicants < 1 || cfg.num_posts < 1) return usage();
  std::ofstream out(argv[6], std::ios::binary);
  if (!out) {
    std::fprintf(stderr, "error: cannot open output file '%s'\n", argv[6]);
    return 2;
  }
  ncpm::io::write_binary_header(out);
  for (int i = 0; i < count; ++i) {
    cfg.seed = seed + static_cast<std::uint64_t>(i);
    ncpm::io::write_binary_instance(out, ncpm::gen::solvable_strict_instance(cfg));
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string mode = argv[1];
  Options opts;
  try {
    if (mode == "gen-popular") {
      if (argc != 5) return usage();
      ncpm::gen::StrictConfig cfg;
      cfg.num_applicants = std::atoi(argv[2]);
      cfg.num_posts = std::atoi(argv[3]);
      cfg.seed = static_cast<std::uint64_t>(std::atoll(argv[4]));
      std::fputs(ncpm::io::write_instance(ncpm::gen::random_strict_instance(cfg)).c_str(),
                 stdout);
      return 0;
    }
    if (mode == "gen-stable") {
      if (argc != 4) return usage();
      std::fputs(ncpm::io::write_stable_instance(ncpm::gen::random_stable_instance(
                     std::atoi(argv[2]), static_cast<std::uint64_t>(std::atoll(argv[3]))))
                     .c_str(),
                 stdout);
      return 0;
    }
    if (mode == "gen-batch") return run_gen_batch(argc, argv);
    if (!parse_flags(argc, argv, opts)) return usage();
    if (mode == "batch") return run_batch(opts);
    if (mode == "pack") return run_pack(opts);
    if (mode == "rotations") {
      if (opts.positional.size() > 1) return usage();
      return run_rotations(opts);
    }
    if (opts.positional.size() > 1) return usage();
    const auto engine_mode = ncpm::engine::parse_mode(mode);
    if (!engine_mode.has_value()) return usage();
    return run_engine_mode(*engine_mode, opts);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 2;
  }
}
