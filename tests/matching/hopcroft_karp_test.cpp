// Hopcroft–Karp vs exhaustive search, warm starts, and the EOU
// (Even/Odd/Unreachable) decomposition properties the ties algorithm
// depends on.

#include "matching/hopcroft_karp.hpp"

#include <gtest/gtest.h>

#include <random>

#include "matching/brute_force.hpp"

namespace ncpm::matching {
namespace {

graph::BipartiteGraph random_graph(std::mt19937_64& rng, std::int32_t nl, std::int32_t nr,
                                   double density) {
  std::vector<std::pair<std::int32_t, std::int32_t>> edges;
  std::uniform_real_distribution<double> unif(0.0, 1.0);
  for (std::int32_t l = 0; l < nl; ++l) {
    for (std::int32_t r = 0; r < nr; ++r) {
      if (unif(rng) < density) edges.emplace_back(l, r);
    }
  }
  return graph::BipartiteGraph(nl, nr, std::move(edges));
}

TEST(HopcroftKarp, PerfectMatchingOnCompleteGraph) {
  std::vector<std::pair<std::int32_t, std::int32_t>> edges;
  for (std::int32_t l = 0; l < 4; ++l) {
    for (std::int32_t r = 0; r < 4; ++r) edges.emplace_back(l, r);
  }
  const graph::BipartiteGraph g(4, 4, edges);
  EXPECT_EQ(maximum_matching(g).size(), 4u);
}

TEST(HopcroftKarp, EmptyGraph) {
  const graph::BipartiteGraph g(3, 3, {});
  EXPECT_EQ(maximum_matching(g).size(), 0u);
}

TEST(HopcroftKarp, AugmentsThroughAlternatingPath) {
  // l0-r0, l0-r1, l1-r0: maximum is 2 but the greedy (l0,r0) must flip.
  const graph::BipartiteGraph g(2, 2, {{0, 0}, {0, 1}, {1, 0}});
  Matching greedy(2, 2);
  greedy.match(0, 0);
  const auto m = maximum_matching(g, greedy);
  EXPECT_EQ(m.size(), 2u);
}

TEST(HopcroftKarp, InitialOutsideGraphThrows) {
  const graph::BipartiteGraph g(2, 2, {{0, 0}});
  Matching bad(2, 2);
  bad.match(1, 1);
  EXPECT_THROW(maximum_matching(g, bad), std::invalid_argument);
}

struct HkParam {
  std::uint64_t seed;
  std::int32_t nl, nr;
  double density;
};

class HopcroftKarpRandom : public ::testing::TestWithParam<HkParam> {};

TEST_P(HopcroftKarpRandom, MatchesBruteForceCardinality) {
  const auto [seed, nl, nr, density] = GetParam();
  std::mt19937_64 rng(seed);
  for (int round = 0; round < 20; ++round) {
    const auto g = random_graph(rng, nl, nr, density);
    const auto m = maximum_matching(g);
    EXPECT_TRUE(m.consistent_with(g));
    EXPECT_EQ(m.size(), brute_force_max_matching_size(g));
  }
}

INSTANTIATE_TEST_SUITE_P(RandomGraphs, HopcroftKarpRandom,
                         ::testing::Values(HkParam{1, 5, 5, 0.3}, HkParam{2, 6, 4, 0.5},
                                           HkParam{3, 4, 7, 0.7}, HkParam{4, 8, 8, 0.2},
                                           HkParam{5, 7, 7, 0.9}));

class EouRandom : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(EouRandom, DecompositionInvariants) {
  std::mt19937_64 rng(GetParam());
  const auto g = random_graph(rng, 12, 12, 0.25);
  const auto m = maximum_matching(g);
  const auto eou = eou_decomposition(g, m);

  for (std::int32_t l = 0; l < g.n_left(); ++l) {
    // Exposed vertices are Even.
    if (!m.left_matched(l)) {
      EXPECT_EQ(eou.left[static_cast<std::size_t>(l)], EouLabel::Even);
    }
    // Odd and Unreachable vertices are matched (in every maximum matching).
    if (eou.left[static_cast<std::size_t>(l)] != EouLabel::Even) {
      EXPECT_TRUE(m.left_matched(l));
    }
  }
  for (std::int32_t r = 0; r < g.n_right(); ++r) {
    if (!m.right_matched(r)) {
      EXPECT_EQ(eou.right[static_cast<std::size_t>(r)], EouLabel::Even);
    }
    if (eou.right[static_cast<std::size_t>(r)] != EouLabel::Even) {
      EXPECT_TRUE(m.right_matched(r));
    }
  }
  // No edge joins two Even vertices (it would expose an augmenting path),
  // and matched edges pair Even-Odd or Unreachable-Unreachable.
  for (std::size_t e = 0; e < g.num_edges(); ++e) {
    const auto la = eou.left[static_cast<std::size_t>(g.edge_left(e))];
    const auto lp = eou.right[static_cast<std::size_t>(g.edge_right(e))];
    EXPECT_FALSE(la == EouLabel::Even && lp == EouLabel::Even);
  }
  for (std::int32_t l = 0; l < g.n_left(); ++l) {
    if (!m.left_matched(l)) continue;
    const auto la = eou.left[static_cast<std::size_t>(l)];
    const auto lp = eou.right[static_cast<std::size_t>(m.right_of(l))];
    const bool even_odd = (la == EouLabel::Even && lp == EouLabel::Odd) ||
                          (la == EouLabel::Odd && lp == EouLabel::Even);
    const bool unr_unr = la == EouLabel::Unreachable && lp == EouLabel::Unreachable;
    EXPECT_TRUE(even_odd || unr_unr) << "matched edge at left " << l;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EouRandom, ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8, 9, 10));

}  // namespace
}  // namespace ncpm::matching
