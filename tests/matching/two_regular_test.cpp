// NC perfect matching in unions of cycles (Algorithm 2's final phase).

#include "matching/two_regular.hpp"

#include <gtest/gtest.h>

#include <numeric>
#include <random>

namespace ncpm::matching {
namespace {

/// Build one cycle v0 - v1 - ... - v_{k-1} - v0 over the given vertex ids.
void add_cycle(const std::vector<std::int32_t>& vs, std::vector<std::int32_t>& eu,
               std::vector<std::int32_t>& ev) {
  for (std::size_t i = 0; i < vs.size(); ++i) {
    eu.push_back(vs[i]);
    ev.push_back(vs[(i + 1) % vs.size()]);
  }
}

void expect_perfect_on(const std::vector<std::int32_t>& vs, const std::vector<std::int32_t>& eu,
                       const std::vector<std::int32_t>& ev,
                       const std::vector<std::int32_t>& chosen) {
  std::vector<int> cover(vs.size() + 64, 0);
  for (const auto e : chosen) {
    ++cover[static_cast<std::size_t>(eu[static_cast<std::size_t>(e)])];
    ++cover[static_cast<std::size_t>(ev[static_cast<std::size_t>(e)])];
  }
  for (const auto v : vs) {
    EXPECT_EQ(cover[static_cast<std::size_t>(v)], 1) << "vertex " << v;
  }
}

TEST(TwoRegular, SingleEvenCycle) {
  std::vector<std::int32_t> eu, ev;
  add_cycle({0, 1, 2, 3}, eu, ev);
  const std::vector<std::uint8_t> alive(eu.size(), 1);
  const auto result = two_regular_perfect_matching(4, eu, ev, alive);
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(result->size(), 2u);
  expect_perfect_on({0, 1, 2, 3}, eu, ev, *result);
}

TEST(TwoRegular, OddCycleReturnsNullopt) {
  std::vector<std::int32_t> eu, ev;
  add_cycle({0, 1, 2}, eu, ev);
  const std::vector<std::uint8_t> alive(eu.size(), 1);
  EXPECT_FALSE(two_regular_perfect_matching(3, eu, ev, alive).has_value());
}

TEST(TwoRegular, DegreeViolationThrows) {
  // A path is not 2-regular.
  const std::vector<std::int32_t> eu{0, 1};
  const std::vector<std::int32_t> ev{1, 2};
  const std::vector<std::uint8_t> alive{1, 1};
  EXPECT_THROW(two_regular_perfect_matching(3, eu, ev, alive), std::invalid_argument);
}

TEST(TwoRegular, MultipleCyclesAndDeadEdges) {
  std::vector<std::int32_t> eu, ev;
  add_cycle({0, 1, 2, 3, 4, 5}, eu, ev);
  add_cycle({6, 7, 8, 9}, eu, ev);
  // A dead distraction edge.
  eu.push_back(0);
  ev.push_back(6);
  std::vector<std::uint8_t> alive(eu.size(), 1);
  alive.back() = 0;
  const auto result = two_regular_perfect_matching(10, eu, ev, alive);
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(result->size(), 5u);
  expect_perfect_on({0, 1, 2, 3, 4, 5, 6, 7, 8, 9}, eu, ev, *result);
}

TEST(TwoRegular, TwoCycleOfParallelEdges) {
  // Two vertices joined by two parallel edges: a 2-cycle, matching picks one.
  const std::vector<std::int32_t> eu{0, 1};
  const std::vector<std::int32_t> ev{1, 0};
  const std::vector<std::uint8_t> alive{1, 1};
  const auto result = two_regular_perfect_matching(2, eu, ev, alive);
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(result->size(), 1u);
}

TEST(TwoRegular, EmptyGraph) {
  const auto result = two_regular_perfect_matching(0, {}, {}, {});
  ASSERT_TRUE(result.has_value());
  EXPECT_TRUE(result->empty());
}

class TwoRegularRandom : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(TwoRegularRandom, RandomEvenCycleUnionsGetPerfectMatchings) {
  std::mt19937_64 rng(GetParam());
  std::vector<std::int32_t> eu, ev;
  std::vector<std::int32_t> all;
  std::int32_t next_vertex = 0;
  for (int c = 0; c < 8; ++c) {
    const auto len = static_cast<std::int32_t>(2 * (1 + rng() % 6));  // even in [2, 12]
    std::vector<std::int32_t> vs(static_cast<std::size_t>(len));
    std::iota(vs.begin(), vs.end(), next_vertex);
    next_vertex += len;
    std::shuffle(vs.begin(), vs.end(), rng);
    add_cycle(vs, eu, ev);
    all.insert(all.end(), vs.begin(), vs.end());
  }
  const std::vector<std::uint8_t> alive(eu.size(), 1);
  const auto result =
      two_regular_perfect_matching(static_cast<std::size_t>(next_vertex), eu, ev, alive);
  ASSERT_TRUE(result.has_value());
  expect_perfect_on(all, eu, ev, *result);
}

INSTANTIATE_TEST_SUITE_P(Seeds, TwoRegularRandom, ::testing::Values(1, 2, 3, 4, 5, 6));

}  // namespace
}  // namespace ncpm::matching
