// Lev–Pippenger–Valiant Euler-split matching for 2^k-regular bipartite
// graphs, cross-checked with the direct 2-regular matcher at d = 2.

#include "matching/euler_split.hpp"

#include <gtest/gtest.h>

#include <numeric>
#include <random>

namespace ncpm::matching {
namespace {

/// d-regular bipartite (multi)graph as a union of d random permutations.
graph::BipartiteGraph regular_graph(std::mt19937_64& rng, std::int32_t n, std::int32_t d) {
  std::vector<std::pair<std::int32_t, std::int32_t>> edges;
  std::vector<std::int32_t> perm(static_cast<std::size_t>(n));
  std::iota(perm.begin(), perm.end(), 0);
  for (std::int32_t k = 0; k < d; ++k) {
    std::shuffle(perm.begin(), perm.end(), rng);
    for (std::int32_t l = 0; l < n; ++l) {
      edges.emplace_back(l, perm[static_cast<std::size_t>(l)]);
    }
  }
  return graph::BipartiteGraph(n, n, std::move(edges));
}

void expect_perfect(const graph::BipartiteGraph& g, const Matching& m) {
  EXPECT_EQ(m.size(), static_cast<std::size_t>(g.n_left()));
  EXPECT_TRUE(m.consistent_with(g));
  for (std::int32_t l = 0; l < g.n_left(); ++l) EXPECT_TRUE(m.left_matched(l));
  for (std::int32_t r = 0; r < g.n_right(); ++r) EXPECT_TRUE(m.right_matched(r));
}

TEST(EulerSplit, OneRegularIsItsOwnMatching) {
  std::mt19937_64 rng(1);
  const auto g = regular_graph(rng, 8, 1);
  expect_perfect(g, regular_bipartite_perfect_matching(g));
}

TEST(EulerSplit, SidesMustMatch) {
  const graph::BipartiteGraph g(2, 3, {{0, 0}, {1, 1}});
  EXPECT_THROW(regular_bipartite_perfect_matching(g), std::invalid_argument);
}

TEST(EulerSplit, IrregularThrows) {
  const graph::BipartiteGraph g(2, 2, {{0, 0}, {0, 1}, {1, 0}});
  EXPECT_THROW(regular_bipartite_perfect_matching(g), std::invalid_argument);
}

TEST(EulerSplit, NonPowerOfTwoThrows) {
  // 3-regular on K_{3,3} fragment: union of 3 cyclic shifts.
  std::vector<std::pair<std::int32_t, std::int32_t>> edges;
  for (std::int32_t s = 0; s < 3; ++s) {
    for (std::int32_t l = 0; l < 3; ++l) edges.emplace_back(l, (l + s) % 3);
  }
  const graph::BipartiteGraph g(3, 3, std::move(edges));
  EXPECT_THROW(regular_bipartite_perfect_matching(g), std::invalid_argument);
}

TEST(EulerSplit, EmptyGraph) {
  const graph::BipartiteGraph g(0, 0, {});
  EXPECT_EQ(regular_bipartite_perfect_matching(g).size(), 0u);
}

struct EsParam {
  std::uint64_t seed;
  std::int32_t n;
  std::int32_t d;
};

class EulerSplitRandom : public ::testing::TestWithParam<EsParam> {};

TEST_P(EulerSplitRandom, ProducesPerfectMatchings) {
  const auto [seed, n, d] = GetParam();
  std::mt19937_64 rng(seed);
  for (int round = 0; round < 5; ++round) {
    const auto g = regular_graph(rng, n, d);
    expect_perfect(g, regular_bipartite_perfect_matching(g));
  }
}

INSTANTIATE_TEST_SUITE_P(Regular, EulerSplitRandom,
                         ::testing::Values(EsParam{1, 6, 2}, EsParam{2, 16, 2},
                                           EsParam{3, 10, 4}, EsParam{4, 32, 4},
                                           EsParam{5, 12, 8}, EsParam{6, 64, 8},
                                           EsParam{7, 128, 16}));

}  // namespace
}  // namespace ncpm::matching
