// Matching container invariants and the Mendelsohn–Dulmage combination
// property (the load-bearing piece of the ties algorithm).

#include "matching/matching.hpp"

#include <gtest/gtest.h>

#include <random>

namespace ncpm::matching {
namespace {

TEST(Matching, MatchUnmatchMaintainsBothSides) {
  Matching m(3, 4);
  m.match(0, 2);
  EXPECT_EQ(m.right_of(0), 2);
  EXPECT_EQ(m.left_of(2), 0);
  EXPECT_EQ(m.size(), 1u);
  m.unmatch_left(0);
  EXPECT_FALSE(m.left_matched(0));
  EXPECT_FALSE(m.right_matched(2));
  EXPECT_EQ(m.size(), 0u);
}

TEST(Matching, DoubleMatchThrows) {
  Matching m(2, 2);
  m.match(0, 1);
  EXPECT_THROW(m.match(0, 0), std::logic_error);
  EXPECT_THROW(m.match(1, 1), std::logic_error);
}

TEST(Matching, RebuildDetectsSharedRight) {
  Matching m(2, 2);
  m.set_pair_unchecked(0, 1);
  m.set_pair_unchecked(1, 1);
  EXPECT_THROW(m.rebuild_inverse_and_size(), std::logic_error);
}

TEST(Matching, RebuildRecomputesInverse) {
  Matching m(3, 3);
  m.set_pair_unchecked(0, 2);
  m.set_pair_unchecked(2, 0);
  m.rebuild_inverse_and_size();
  EXPECT_EQ(m.size(), 2u);
  EXPECT_EQ(m.left_of(2), 0);
  EXPECT_EQ(m.left_of(0), 2);
  EXPECT_EQ(m.left_of(1), kNone);
}

Matching random_matching(std::mt19937_64& rng, std::int32_t nl, std::int32_t nr,
                         double match_prob) {
  Matching m(nl, nr);
  std::vector<std::int32_t> rights(static_cast<std::size_t>(nr));
  for (std::int32_t r = 0; r < nr; ++r) rights[static_cast<std::size_t>(r)] = r;
  std::shuffle(rights.begin(), rights.end(), rng);
  std::uniform_real_distribution<double> unif(0.0, 1.0);
  std::size_t next = 0;
  for (std::int32_t l = 0; l < nl && next < rights.size(); ++l) {
    if (unif(rng) < match_prob) m.match(l, rights[next++]);
  }
  return m;
}

struct MdParam {
  std::uint64_t seed;
  std::int32_t nl, nr;
  double pa, pb;
};

class MendelsohnDulmageRandom : public ::testing::TestWithParam<MdParam> {};

TEST_P(MendelsohnDulmageRandom, CoversLeftOfAAndRightOfB) {
  const auto [seed, nl, nr, pa, pb] = GetParam();
  std::mt19937_64 rng(seed);
  for (int round = 0; round < 50; ++round) {
    const Matching ma = random_matching(rng, nl, nr, pa);
    const Matching mb = random_matching(rng, nl, nr, pb);
    const Matching md = mendelsohn_dulmage(ma, mb);
    for (std::int32_t l = 0; l < nl; ++l) {
      if (ma.left_matched(l)) {
        EXPECT_TRUE(md.left_matched(l)) << "left " << l << " lost";
      }
      if (md.left_matched(l)) {
        // Every edge comes from ma or mb.
        const std::int32_t r = md.right_of(l);
        EXPECT_TRUE(ma.right_of(l) == r || mb.right_of(l) == r)
            << "edge (" << l << "," << r << ") invented";
      }
    }
    for (std::int32_t r = 0; r < nr; ++r) {
      if (mb.right_matched(r)) {
        EXPECT_TRUE(md.right_matched(r)) << "right " << r << " lost";
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Shapes, MendelsohnDulmageRandom,
                         ::testing::Values(MdParam{1, 6, 6, 0.7, 0.7},
                                           MdParam{2, 10, 7, 0.5, 0.9},
                                           MdParam{3, 7, 10, 0.9, 0.5},
                                           MdParam{4, 12, 12, 1.0, 1.0},
                                           MdParam{5, 15, 15, 0.3, 0.3},
                                           MdParam{6, 1, 1, 1.0, 1.0}));

TEST(MendelsohnDulmage, ShapeMismatchThrows) {
  const Matching a(2, 2), b(3, 2);
  EXPECT_THROW(mendelsohn_dulmage(a, b), std::invalid_argument);
}

TEST(MendelsohnDulmage, SharedPairsAlwaysKept) {
  Matching a(2, 2), b(2, 2);
  a.match(0, 0);
  b.match(0, 0);
  b.match(1, 1);
  const auto md = mendelsohn_dulmage(a, b);
  EXPECT_EQ(md.right_of(0), 0);
  EXPECT_TRUE(md.right_matched(1));  // right 1 covered by b
}

}  // namespace
}  // namespace ncpm::matching
