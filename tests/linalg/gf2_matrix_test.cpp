// Bit-packed matrices: products vs naive oracles, GF(2) rank properties,
// and Lemma 6 (rank of the incidence matrix = n - #components) validated
// against the independent connected-components substrate.

#include "linalg/gf2_matrix.hpp"

#include <gtest/gtest.h>

#include <random>

#include "graph/connected_components.hpp"
#include "linalg/incidence.hpp"

namespace ncpm::linalg {
namespace {

BitMatrix random_matrix(std::mt19937_64& rng, std::size_t rows, std::size_t cols,
                        double density = 0.5) {
  BitMatrix m(rows, cols);
  std::uniform_real_distribution<double> unif(0.0, 1.0);
  for (std::size_t i = 0; i < rows; ++i) {
    for (std::size_t j = 0; j < cols; ++j) {
      if (unif(rng) < density) m.set(i, j);
    }
  }
  return m;
}

TEST(BitMatrix, SetGetFlip) {
  BitMatrix m(2, 130);  // spans three words per row
  EXPECT_FALSE(m.get(1, 129));
  m.set(1, 129);
  EXPECT_TRUE(m.get(1, 129));
  m.flip(1, 129);
  EXPECT_FALSE(m.get(1, 129));
  m.set(0, 63);
  m.set(0, 64);
  EXPECT_TRUE(m.get(0, 63));
  EXPECT_TRUE(m.get(0, 64));
  EXPECT_FALSE(m.get(0, 62));
}

TEST(BitMatrix, IdentityDiagonal) {
  const auto id = BitMatrix::identity(5);
  EXPECT_TRUE(id.any_diagonal());
  const auto diag = id.diagonal();
  EXPECT_EQ(diag, (std::vector<std::uint8_t>{1, 1, 1, 1, 1}));
  EXPECT_EQ(id.gf2_rank(), 5u);
}

TEST(BitMatrix, ProductsAgainstNaive) {
  std::mt19937_64 rng(3);
  for (int round = 0; round < 5; ++round) {
    const std::size_t n = 20 + static_cast<std::size_t>(round) * 13;
    const auto a = random_matrix(rng, n, n, 0.2);
    const auto b = random_matrix(rng, n, n, 0.2);
    const auto bp = bool_product(a, b);
    const auto gp = gf2_product(a, b);
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = 0; j < n; ++j) {
        bool any = false, parity = false;
        for (std::size_t k = 0; k < n; ++k) {
          const bool term = a.get(i, k) && b.get(k, j);
          any = any || term;
          parity = parity != term;
        }
        ASSERT_EQ(bp.get(i, j), any) << i << "," << j;
        ASSERT_EQ(gp.get(i, j), parity) << i << "," << j;
      }
    }
  }
}

TEST(BitMatrix, ProductShapeMismatchThrows) {
  const BitMatrix a(2, 3), b(4, 2);
  EXPECT_THROW(bool_product(a, b), std::invalid_argument);
}

TEST(BitMatrix, RankOfSingularAndDuplicatedRows) {
  BitMatrix m(3, 3);
  m.set(0, 0);
  m.set(0, 1);
  m.set(1, 0);
  m.set(1, 1);  // row 1 duplicates row 0
  m.set(2, 2);
  EXPECT_EQ(m.gf2_rank(), 2u);
}

TEST(BitMatrix, RankIsInvariantUnderRowXor) {
  std::mt19937_64 rng(17);
  for (int round = 0; round < 10; ++round) {
    auto m = random_matrix(rng, 24, 31, 0.4);
    const auto base = m.gf2_rank();
    // XOR row 3 into row 7 — an elementary operation, rank preserved.
    auto dst = m.row(7);
    auto src = m.row(3);
    for (std::size_t w = 0; w < m.words_per_row(); ++w) dst[w] ^= src[w];
    EXPECT_EQ(m.gf2_rank(), base);
  }
}

TEST(Incidence, Lemma6OnHandBuiltGraphs) {
  // Triangle + isolated vertex: rank = 4 - 2 = 2.
  const std::vector<std::int32_t> eu{0, 1, 2};
  const std::vector<std::int32_t> ev{1, 2, 0};
  EXPECT_EQ(incidence_matrix(4, eu, ev).gf2_rank(), 2u);
  EXPECT_EQ(component_count_by_rank(4, eu, ev), 2u);
}

TEST(Incidence, SelfLoopColumnIsZero) {
  const std::vector<std::int32_t> eu{0};
  const std::vector<std::int32_t> ev{0};
  const auto m = incidence_matrix(2, eu, ev);
  EXPECT_FALSE(m.get(0, 0));
  EXPECT_EQ(component_count_by_rank(2, eu, ev), 2u);
}

TEST(Incidence, AliveMaskDropsColumns) {
  const std::vector<std::int32_t> eu{0, 1};
  const std::vector<std::int32_t> ev{1, 2};
  const std::vector<std::uint8_t> alive{1, 0};
  EXPECT_EQ(component_count_by_rank(3, eu, ev, alive), 2u);
}

class Lemma6Random : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(Lemma6Random, RankCountsComponentsLikeCc) {
  std::mt19937_64 rng(GetParam());
  const std::size_t n = 40;
  const std::size_t m = rng() % 80;
  std::vector<std::int32_t> eu(m), ev(m);
  for (std::size_t j = 0; j < m; ++j) {
    eu[j] = static_cast<std::int32_t>(rng() % n);
    ev[j] = static_cast<std::int32_t>(rng() % n);
  }
  const auto by_rank = component_count_by_rank(n, eu, ev);
  const auto by_cc = graph::connected_components(n, eu, ev).count;
  EXPECT_EQ(by_rank, static_cast<std::size_t>(by_cc));
}

INSTANTIATE_TEST_SUITE_P(Seeds, Lemma6Random, ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

}  // namespace
}  // namespace ncpm::linalg
