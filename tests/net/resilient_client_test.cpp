// ResilientClient unit + small-integration tests.
//
// The pure pieces — full-jitter backoff and the circuit breaker — are
// tested without sockets or sleeps: backoff_with_jitter takes the RNG
// state by reference and the breaker takes every `now` as a parameter, so
// both run on synthetic time. The integration pieces use a real Server on
// loopback but no fault injection (the chaos suite owns that).

#include "net/resilient_client.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <vector>

#include "gen/generators.hpp"
#include "net/server.hpp"

namespace ncpm::net {
namespace {

using namespace std::chrono_literals;
using engine::Mode;
using State = CircuitBreaker::State;

// ---------------------------------------------------------------------------
// backoff_with_jitter
// ---------------------------------------------------------------------------

TEST(BackoffJitter, DrawsStayWithinTheExponentialCeiling) {
  BackoffPolicy policy;
  policy.initial = 50ms;
  policy.max = 2000ms;
  policy.multiplier = 2.0;
  std::uint64_t state = 7;
  for (int attempt = 0; attempt < 12; ++attempt) {
    const auto ceiling = std::min<std::int64_t>(
        policy.max.count(), static_cast<std::int64_t>(50.0 * (1LL << attempt)));
    for (int draw = 0; draw < 200; ++draw) {
      const auto pause = backoff_with_jitter(policy, attempt, state);
      ASSERT_GE(pause.count(), 0) << "attempt " << attempt;
      ASSERT_LE(pause.count(), ceiling) << "attempt " << attempt;
    }
  }
}

TEST(BackoffJitter, DrawsActuallyJitter) {
  BackoffPolicy policy;
  std::uint64_t state = 99;
  std::vector<std::int64_t> draws;
  for (int i = 0; i < 32; ++i) {
    draws.push_back(backoff_with_jitter(policy, 3, state).count());
  }
  // Full jitter over [0, 400]: 32 identical draws would mean the RNG is
  // not being advanced.
  bool varied = false;
  for (std::size_t i = 1; i < draws.size(); ++i) varied |= draws[i] != draws[0];
  EXPECT_TRUE(varied);
}

TEST(BackoffJitter, SameSeedSameSchedule) {
  BackoffPolicy policy;
  std::uint64_t a = 42;
  std::uint64_t b = 42;
  for (int attempt = 0; attempt < 8; ++attempt) {
    EXPECT_EQ(backoff_with_jitter(policy, attempt, a), backoff_with_jitter(policy, attempt, b));
  }
}

TEST(BackoffJitter, LaterAttemptsAreCappedAtMax) {
  BackoffPolicy policy;
  policy.initial = 10ms;
  policy.max = 80ms;
  std::uint64_t state = 5;
  for (int draw = 0; draw < 500; ++draw) {
    EXPECT_LE(backoff_with_jitter(policy, 30, state).count(), 80);
  }
}

// ---------------------------------------------------------------------------
// CircuitBreaker on a synthetic clock
// ---------------------------------------------------------------------------

TEST(CircuitBreakerTest, OpensOnlyAtTheFailureThreshold) {
  CircuitBreakerConfig cfg;
  cfg.failure_threshold = 3;
  cfg.cooldown = 100ms;
  CircuitBreaker breaker(cfg);
  auto now = std::chrono::steady_clock::time_point{};

  EXPECT_TRUE(breaker.allow(now));
  breaker.record_failure(now);
  EXPECT_EQ(breaker.state(), State::kClosed);
  breaker.record_failure(now);
  EXPECT_EQ(breaker.state(), State::kClosed);
  EXPECT_TRUE(breaker.allow(now));
  breaker.record_failure(now);
  EXPECT_EQ(breaker.state(), State::kOpen);
  EXPECT_EQ(breaker.consecutive_failures(), 3);
  EXPECT_FALSE(breaker.allow(now));
  EXPECT_FALSE(breaker.allow(now + 99ms));
}

TEST(CircuitBreakerTest, SuccessResetsTheFailureStreak) {
  CircuitBreakerConfig cfg;
  cfg.failure_threshold = 3;
  CircuitBreaker breaker(cfg);
  auto now = std::chrono::steady_clock::time_point{};

  breaker.record_failure(now);
  breaker.record_failure(now);
  breaker.record_success();
  EXPECT_EQ(breaker.consecutive_failures(), 0);
  breaker.record_failure(now);
  breaker.record_failure(now);
  EXPECT_EQ(breaker.state(), State::kClosed);
}

TEST(CircuitBreakerTest, CooldownAdmitsExactlyOneHalfOpenProbe) {
  CircuitBreakerConfig cfg;
  cfg.failure_threshold = 1;
  cfg.cooldown = 100ms;
  CircuitBreaker breaker(cfg);
  auto now = std::chrono::steady_clock::time_point{};

  breaker.record_failure(now);
  EXPECT_EQ(breaker.state(), State::kOpen);

  // Cooldown elapsed: one probe through, everything else refused while
  // the probe is outstanding.
  EXPECT_TRUE(breaker.allow(now + 100ms));
  EXPECT_EQ(breaker.state(), State::kHalfOpen);
  EXPECT_FALSE(breaker.allow(now + 101ms));
  EXPECT_FALSE(breaker.allow(now + 200ms));

  breaker.record_success();
  EXPECT_EQ(breaker.state(), State::kClosed);
  EXPECT_TRUE(breaker.allow(now + 201ms));
}

TEST(CircuitBreakerTest, FailedProbeReopensAndRestartsTheCooldown) {
  CircuitBreakerConfig cfg;
  cfg.failure_threshold = 1;
  cfg.cooldown = 100ms;
  CircuitBreaker breaker(cfg);
  auto now = std::chrono::steady_clock::time_point{};

  breaker.record_failure(now);
  ASSERT_TRUE(breaker.allow(now + 100ms));  // probe
  breaker.record_failure(now + 110ms);      // probe failed
  EXPECT_EQ(breaker.state(), State::kOpen);

  // The cooldown restarts from the probe failure, not the original trip.
  EXPECT_FALSE(breaker.allow(now + 150ms));
  EXPECT_FALSE(breaker.allow(now + 209ms));
  EXPECT_TRUE(breaker.allow(now + 210ms));
  EXPECT_EQ(breaker.state(), State::kHalfOpen);
}

// ---------------------------------------------------------------------------
// rpc_status_retryable
// ---------------------------------------------------------------------------

TEST(RpcStatusRetryable, OnlyTransientStatusesRetry) {
  EXPECT_TRUE(rpc_status_retryable(RpcStatus::kOverloaded));
  EXPECT_TRUE(rpc_status_retryable(RpcStatus::kRejected));
  EXPECT_TRUE(rpc_status_retryable(RpcStatus::kMalformedFrame));

  EXPECT_FALSE(rpc_status_retryable(RpcStatus::kOk));
  EXPECT_FALSE(rpc_status_retryable(RpcStatus::kNoSolution));
  EXPECT_FALSE(rpc_status_retryable(RpcStatus::kDeadlineExpired));
  EXPECT_FALSE(rpc_status_retryable(RpcStatus::kCancelled));
  EXPECT_FALSE(rpc_status_retryable(RpcStatus::kInvalidRequest));
  EXPECT_FALSE(rpc_status_retryable(RpcStatus::kSolverError));
  EXPECT_FALSE(rpc_status_retryable(RpcStatus::kUnsupportedMode));
}

// ---------------------------------------------------------------------------
// Integration on loopback (no fault injection — see server_chaos_test)
// ---------------------------------------------------------------------------

core::Instance small_instance(std::uint64_t seed) {
  gen::SolvableConfig cfg;
  cfg.num_applicants = 12;
  cfg.num_posts = 30;
  cfg.seed = seed;
  return gen::solvable_strict_instance(cfg);
}

ResilientClientConfig fast_config() {
  ResilientClientConfig cfg;
  cfg.backoff.initial = 1ms;
  cfg.backoff.max = 5ms;
  return cfg;
}

TEST(ResilientClientTest, PlainCallSolvesAndConnectsLazily) {
  Server server{ServerConfig{}};
  server.start();

  ResilientClient client("127.0.0.1", server.port(), fast_config());
  const auto resp = client.call(Mode::kSolve, small_instance(1));
  EXPECT_EQ(resp.status, RpcStatus::kOk);
  EXPECT_EQ(client.stats().attempts, 1u);
  EXPECT_EQ(client.stats().retries, 0u);
  EXPECT_EQ(client.stats().reconnects, 1u);  // the lazy first dial
  EXPECT_TRUE(client.healthy());
  server.stop();
}

TEST(ResilientClientTest, DisconnectRedialsOnTheNextCall) {
  Server server{ServerConfig{}};
  server.start();

  ResilientClient client("127.0.0.1", server.port(), fast_config());
  ASSERT_EQ(client.call(Mode::kCount, small_instance(2)).status, RpcStatus::kOk);
  client.disconnect();
  ASSERT_EQ(client.call(Mode::kCount, small_instance(2)).status, RpcStatus::kOk);
  EXPECT_EQ(client.stats().reconnects, 2u);
  EXPECT_EQ(client.stats().retries, 0u);
  server.stop();
}

TEST(ResilientClientTest, DeadServerExhaustsAttemptsThenThrowsTyped) {
  // Grab an ephemeral port with a listener, then close it: connecting
  // there is a deterministic ECONNREFUSED.
  std::uint16_t dead_port;
  {
    Socket listener = Socket::listen_on("127.0.0.1", 0, 1);
    dead_port = listener.local_port();
  }

  auto cfg = fast_config();
  cfg.max_attempts = 3;
  cfg.breaker.failure_threshold = 100;  // keep the breaker out of this test
  ResilientClient client("127.0.0.1", dead_port, cfg);
  try {
    client.call(Mode::kSolve, small_instance(3));
    FAIL() << "expected NetError";
  } catch (const NetError& e) {
    EXPECT_EQ(e.code(), NetErrc::kConnectFailed);
  }
  EXPECT_EQ(client.stats().attempts, 3u);
  EXPECT_EQ(client.stats().retries, 2u);
  EXPECT_FALSE(client.healthy());
}

TEST(ResilientClientTest, BreakerOpensAndFailsFastAfterRepeatedFailures) {
  std::uint16_t dead_port;
  {
    Socket listener = Socket::listen_on("127.0.0.1", 0, 1);
    dead_port = listener.local_port();
  }

  auto cfg = fast_config();
  cfg.max_attempts = 2;
  cfg.breaker.failure_threshold = 2;
  cfg.breaker.cooldown = std::chrono::hours(1);  // stays open for the test
  ResilientClient client("127.0.0.1", dead_port, cfg);

  // First call: both attempts fail, which trips the threshold.
  EXPECT_THROW(client.call(Mode::kSolve, small_instance(4)), NetError);
  EXPECT_EQ(client.breaker_state(), CircuitBreaker::State::kOpen);

  // Second call: refused without touching the wire.
  const auto attempts_before = client.stats().attempts;
  try {
    client.call(Mode::kSolve, small_instance(4));
    FAIL() << "expected NetError(kCircuitOpen)";
  } catch (const NetError& e) {
    EXPECT_EQ(e.code(), NetErrc::kCircuitOpen);
  }
  EXPECT_EQ(client.stats().attempts, attempts_before);
  EXPECT_EQ(client.stats().breaker_rejections, 1u);
}

TEST(ResilientClientTest, ZeroBudgetDeadlineSynthesizesExpiredResponse) {
  Server server{ServerConfig{}};
  server.start();
  ResilientClient client("127.0.0.1", server.port(), fast_config());
  // A 1 ms budget is gone before (or during) the first attempt completes
  // often enough that the only guaranteed property is: no throw, and the
  // status is either the server's verdict or the synthesized expiry.
  const auto resp = client.call(Mode::kSolve, small_instance(5), 1ms);
  EXPECT_TRUE(resp.status == RpcStatus::kOk || resp.status == RpcStatus::kDeadlineExpired)
      << rpc_status_name(resp.status);
  server.stop();
}

TEST(ResilientClientTest, HedgedCallStillReturnsACorrectAnswer) {
  Server server{ServerConfig{}};
  server.start();
  auto cfg = fast_config();
  cfg.hedge_delay = 1ms;  // hedge aggressively: both lanes race every call
  ResilientClient client("127.0.0.1", server.port(), cfg);
  for (int i = 0; i < 8; ++i) {
    const auto resp = client.call(Mode::kSolve, small_instance(6));
    ASSERT_EQ(resp.status, RpcStatus::kOk);
  }
  // Whatever raced, the accounting must reconcile: every hedge launched
  // was counted as an extra attempt, and wins never exceed launches.
  const auto& stats = client.stats();
  EXPECT_GE(stats.attempts, 8u);
  EXPECT_EQ(stats.attempts, 8u + stats.hedges_launched);
  EXPECT_LE(stats.hedge_wins, stats.hedges_launched);
  server.stop();
}

}  // namespace
}  // namespace ncpm::net
