// Fuzz-lite robustness: random truncations and byte flips of valid
// ncpm-rpc frames and ncpm-binary payloads/streams must produce clean
// typed errors — never crashes, hangs, or out-of-bounds reads. This binary
// runs under ASan/UBSan in CI, which is what turns "no over-read" from a
// hope into an assertion.

#include <gtest/gtest.h>

#include <cstdint>
#include <random>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "gen/generators.hpp"
#include "gen/io_binary.hpp"
#include "net/frame.hpp"

namespace ncpm::net {
namespace {

core::Instance sample_instance(std::uint64_t seed) {
  gen::SolvableConfig cfg;
  cfg.num_applicants = 16;
  cfg.num_posts = 40;
  cfg.contention = 2.0;
  cfg.seed = seed;
  return gen::solvable_strict_instance(cfg);
}

/// Decoding mutated bytes may legitimately still succeed (a flip inside a
/// post id, say); the property under test is only "returns or throws".
template <typename Fn>
void expect_clean(Fn&& decode) {
  try {
    decode();
  } catch (const std::exception&) {
    // Typed failure is fine; crashing / over-reading (ASan) is not.
  }
}

std::vector<std::uint8_t> valid_request_body(std::uint64_t seed) {
  RequestHead head;
  head.request_id = seed;
  head.mode_raw = static_cast<std::uint8_t>(seed % engine::kNumModes);
  head.deadline_ns = seed * 17;
  const auto frame = encode_request_frame(head, sample_instance(seed));
  return std::vector<std::uint8_t>(frame.begin() + 4, frame.end());
}

std::vector<std::uint8_t> valid_response_body(std::uint64_t seed) {
  ResponseFrame resp;
  resp.request_id = seed;
  resp.status = RpcStatus::kOk;
  switch (seed % 3) {
    case 0: {
      matching::Matching m(6, 6);
      m.match(static_cast<std::int32_t>(seed % 6), static_cast<std::int32_t>((seed + 1) % 6));
      resp.mode_raw = static_cast<std::uint8_t>(engine::Mode::kSolve);
      resp.applicants = 6;
      resp.matching_size = 1;
      resp.matching = std::move(m);
      break;
    }
    case 1:
      resp.mode_raw = static_cast<std::uint8_t>(engine::Mode::kCount);
      resp.count = seed * 31;
      break;
    default: {
      engine::CheckReport report;
      report.applicants = 10;
      report.posts = 12;
      report.admits_popular = true;
      report.size = 9;
      resp.mode_raw = static_cast<std::uint8_t>(engine::Mode::kCheck);
      resp.check = report;
      break;
    }
  }
  const auto frame = encode_response_frame(resp);
  return std::vector<std::uint8_t>(frame.begin() + 4, frame.end());
}

void fuzz_body(const std::vector<std::uint8_t>& body, std::uint64_t seed, bool request) {
  const auto decode_any = [&](const std::vector<std::uint8_t>& bytes) {
    if (request) {
      expect_clean([&] { decode_request_head(bytes.data(), bytes.size()); });
      expect_clean([&] { decode_request_instance(bytes.data(), bytes.size()); });
    } else {
      expect_clean([&] { decode_response_frame(bytes.data(), bytes.size()); });
    }
  };

  // Every truncation length: the cursor must fail cleanly at each boundary.
  for (std::size_t len = 0; len < body.size(); ++len) {
    decode_any(std::vector<std::uint8_t>(body.begin(),
                                         body.begin() + static_cast<std::ptrdiff_t>(len)));
  }

  // Random byte flips, single and multi.
  std::mt19937_64 rng(seed);
  std::uniform_int_distribution<std::size_t> pos(0, body.size() - 1);
  std::uniform_int_distribution<int> byte(0, 255);
  for (int round = 0; round < 400; ++round) {
    auto mutated = body;
    const int flips = 1 + static_cast<int>(rng() % 4);
    for (int f = 0; f < flips; ++f) {
      mutated[pos(rng)] = static_cast<std::uint8_t>(byte(rng));
    }
    decode_any(mutated);
  }

  // Flips in the first bytes (type / id / mode / status), where every value
  // is load-bearing for the decode dispatch.
  for (std::size_t i = 0; i < std::min<std::size_t>(body.size(), 24); ++i) {
    for (const std::uint8_t v : {0x00, 0x01, 0x7f, 0xff}) {
      auto mutated = body;
      mutated[i] = v;
      decode_any(mutated);
    }
  }
}

class FrameFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FrameFuzz, MutatedRequestFramesFailCleanly) {
  fuzz_body(valid_request_body(GetParam() + 1), GetParam() * 7919, /*request=*/true);
}

TEST_P(FrameFuzz, MutatedResponseFramesFailCleanly) {
  fuzz_body(valid_response_body(GetParam() + 1), GetParam() * 104729, /*request=*/false);
}

TEST_P(FrameFuzz, MutatedInstancePayloadsFailCleanly) {
  const auto payload = io::encode_instance_payload(sample_instance(GetParam() + 1));
  const std::vector<std::uint8_t> body(payload.begin(), payload.end());
  const auto decode = [&](const std::vector<std::uint8_t>& bytes) {
    expect_clean([&] { io::decode_instance_payload(bytes.data(), bytes.size()); });
  };
  for (std::size_t len = 0; len < body.size(); ++len) {
    decode(std::vector<std::uint8_t>(body.begin(),
                                     body.begin() + static_cast<std::ptrdiff_t>(len)));
  }
  std::mt19937_64 rng(GetParam() * 31337 + 1);
  std::uniform_int_distribution<std::size_t> pos(0, body.size() - 1);
  for (int round = 0; round < 400; ++round) {
    auto mutated = body;
    mutated[pos(rng)] = static_cast<std::uint8_t>(rng() % 256);
    decode(mutated);
  }
}

/// Whole-stream fuzz: a valid ncpm-binary batch file, truncated at random
/// offsets and byte-flipped, pushed through BinaryReader until it throws or
/// the stream ends. Covers the header check, record headers, and payloads.
TEST_P(FrameFuzz, MutatedBinaryStreamsFailCleanly) {
  std::ostringstream out;
  io::write_binary_header(out);
  for (std::uint64_t i = 0; i < 3; ++i) {
    io::write_binary_instance(out, sample_instance(GetParam() * 10 + i));
  }
  const auto valid = out.str();

  const auto drain = [](const std::string& bytes) {
    try {
      std::istringstream in(bytes);
      io::BinaryReader reader(in);
      while (reader.peek().has_value()) reader.read_instance();
    } catch (const std::exception&) {
    }
  };

  std::mt19937_64 rng(GetParam() * 65537 + 3);
  for (int round = 0; round < 200; ++round) {
    drain(valid.substr(0, rng() % (valid.size() + 1)));
  }
  std::uniform_int_distribution<std::size_t> pos(0, valid.size() - 1);
  for (int round = 0; round < 200; ++round) {
    auto mutated = valid;
    const int flips = 1 + static_cast<int>(rng() % 3);
    for (int f = 0; f < flips; ++f) {
      mutated[pos(rng)] = static_cast<char>(rng() % 256);
    }
    drain(mutated);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FrameFuzz, ::testing::Values(1u, 2u, 3u));

}  // namespace
}  // namespace ncpm::net
