// Fuzz-lite for the session FSM: random event sequences — truncated and
// byte-flipped wire streams, interleaved with responses, write progress,
// and lifecycle events in arbitrary (including invalid) orders. The FSM
// has no sockets or threads, so thousands of adversarial sessions run in
// milliseconds, and the whole binary runs under ASan/UBSan in CI.
//
// Properties: never crashes or over-reads; invalid events are rejected
// without mutating anything; the slot/backlog/close invariants hold after
// every single event; close happens at most once and kClosed is terminal.

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <random>
#include <vector>

#include "net/frame.hpp"
#include "net/session_fsm.hpp"

namespace ncpm::net {
namespace {

std::vector<std::uint8_t> wire_hello() {
  std::vector<std::uint8_t> hello(12);
  std::memcpy(hello.data(), kRpcMagic, 8);
  for (int i = 0; i < 4; ++i) {
    hello[8 + static_cast<std::size_t>(i)] =
        static_cast<std::uint8_t>((kRpcVersion >> (8 * i)) & 0xff);
  }
  return hello;
}

/// A plausible wire stream: hello + a few small frames. Mutations tear it
/// into random chunks and flip bytes, so the FSM sees both valid framing
/// and garbage mid-stream.
std::vector<std::uint8_t> sample_stream(std::mt19937_64& rng) {
  auto stream = wire_hello();
  const int frames = static_cast<int>(rng() % 5);
  for (int f = 0; f < frames; ++f) {
    const std::uint32_t len = static_cast<std::uint32_t>(rng() % 40);
    for (int i = 0; i < 4; ++i) {
      stream.push_back(static_cast<std::uint8_t>((len >> (8 * i)) & 0xff));
    }
    for (std::uint32_t i = 0; i < len; ++i) {
      stream.push_back(static_cast<std::uint8_t>(rng() % 256));
    }
  }
  return stream;
}

/// Model mirror of the FSM's accounting, updated from the action structs
/// alone. Divergence between model and FSM is a bug in one of them.
struct Model {
  std::size_t dispatched = 0;
  std::size_t responses_delivered = 0;  ///< accepted on_response calls
  std::size_t responses_completed = 0;
  bool closed = false;
  SessionCloseReason reason = SessionCloseReason::kNone;
};

void check_invariants(const SessionFsm& fsm, const Model& model, std::size_t max_in_flight) {
  ASSERT_LE(fsm.in_flight(), max_in_flight);
  ASSERT_LE(fsm.write_size(), fsm.backlog_bytes());
  ASSERT_LE(model.responses_completed, model.responses_delivered);
  ASSERT_LE(model.responses_delivered, model.dispatched);
  if (model.closed) {
    ASSERT_EQ(fsm.state(), SessionState::kClosed);
    ASSERT_EQ(fsm.close_reason(), model.reason);
    ASSERT_EQ(fsm.in_flight(), 0u);
    ASSERT_EQ(fsm.backlog_bytes(), 0u);
    ASSERT_EQ(fsm.buffered_input(), 0u);
    ASSERT_FALSE(fsm.wants_read());
    ASSERT_FALSE(fsm.wants_write());
  } else {
    ASSERT_NE(fsm.state(), SessionState::kClosed);
    // Slots held == dispatched but not yet fully answered on the wire.
    ASSERT_EQ(fsm.in_flight(), model.dispatched - model.responses_completed);
    // wants_read() is exactly "one of the three reading states".
    const auto s = fsm.state();
    const bool reading = s == SessionState::kAwaitHello || s == SessionState::kReadHeader ||
                         s == SessionState::kReadBody;
    ASSERT_EQ(fsm.wants_read(), reading);
    ASSERT_EQ(fsm.wants_write(), fsm.backlog_bytes() > 0);
  }
}

/// Absorb one action set into the model; `rejected` action sets must be
/// empty of everything else.
void absorb(const SessionActions& acts, Model& model) {
  if (acts.rejected) {
    ASSERT_TRUE(acts.dispatch.empty());
    ASSERT_FALSE(acts.close);
    ASSERT_EQ(acts.responses_completed, 0u);
    return;
  }
  model.dispatched += acts.dispatch.size();
  model.responses_completed += acts.responses_completed;
  if (acts.close) {
    ASSERT_FALSE(model.closed) << "second close";
    model.closed = true;
    model.reason = acts.close_reason;
  }
}

void fuzz_session(std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  SessionFsmConfig config;
  config.max_in_flight = 1 + rng() % 4;
  config.max_frame_body = 64;  // small cap => oversized-length paths fire often
  SessionFsm fsm(config);
  Model model;

  auto stream = sample_stream(rng);
  // Byte flips corrupt the hello, length prefixes, and bodies alike.
  const int flips = static_cast<int>(rng() % 4);
  for (int f = 0; f < flips && !stream.empty(); ++f) {
    stream[rng() % stream.size()] = static_cast<std::uint8_t>(rng() % 256);
  }
  std::size_t cursor = 0;

  for (int step = 0; step < 120; ++step) {
    SessionActions acts;
    switch (rng() % 9) {
      case 0:
      case 1:
      case 2: {  // feed a random-sized chunk of the (mutated) stream
        if (cursor >= stream.size()) break;
        const std::size_t n = 1 + rng() % std::min<std::size_t>(stream.size() - cursor, 16);
        acts = fsm.on_bytes(stream.data() + cursor, n);
        if (!acts.rejected) cursor += n;
        break;
      }
      case 3: {  // deliver a response (sometimes with none outstanding)
        acts = fsm.on_response(std::string(1 + rng() % 24, 'r'));
        if (!acts.rejected) ++model.responses_delivered;
        break;
      }
      case 4: {  // write progress, honest or bogus
        const std::size_t backlog = fsm.backlog_bytes();
        const std::size_t n = (rng() % 4 == 0) ? backlog + 1 + rng() % 8  // bogus
                                               : (backlog > 0 ? 1 + rng() % backlog : 0);
        acts = fsm.on_wrote(n);
        break;
      }
      case 5: {  // keepalive ping, valid mid-stream, rejected around it
        acts = fsm.on_ping(rng());
        break;
      }
      case 6: {  // stats probe / its protocol reply, same validity window
        if (rng() % 2 == 0) {
          acts = fsm.on_stats(rng(), static_cast<std::uint8_t>(rng() % 2));
        } else {
          acts = fsm.on_protocol_reply(std::string(1 + rng() % 24, 's'));
        }
        break;
      }
      default: {  // lifecycle / timer events, valid or not
        constexpr SessionEvent kEvents[] = {
            SessionEvent::kWriteBlocked, SessionEvent::kReadEof,   SessionEvent::kPeerError,
            SessionEvent::kSendTimeout,  SessionEvent::kIdleTimeout, SessionEvent::kDrain,
            SessionEvent::kHelloTimeout,
            // Payload events through the wrong entry point must reject.
            SessionEvent::kBytesIn, SessionEvent::kResponseReady, SessionEvent::kWroteBytes,
            SessionEvent::kPingFrame, SessionEvent::kStatsFrame,
        };
        acts = fsm.on_event(kEvents[rng() % std::size(kEvents)]);
        break;
      }
    }
    absorb(acts, model);
    check_invariants(fsm, model, config.max_in_flight);
    if (model.closed) break;
  }

  // Terminal check: once closed, everything is rejected, forever.
  if (model.closed) {
    for (const auto event :
         {SessionEvent::kWriteBlocked, SessionEvent::kReadEof, SessionEvent::kPeerError,
          SessionEvent::kSendTimeout, SessionEvent::kIdleTimeout, SessionEvent::kDrain,
          SessionEvent::kHelloTimeout}) {
      ASSERT_TRUE(fsm.on_event(event).rejected);
    }
    const std::uint8_t byte = 0;
    ASSERT_TRUE(fsm.on_bytes(&byte, 1).rejected);
    ASSERT_TRUE(fsm.on_response("late").rejected);
    ASSERT_TRUE(fsm.on_wrote(1).rejected);
    ASSERT_TRUE(fsm.on_ping(0).rejected);
    ASSERT_TRUE(fsm.on_stats(0, 0).rejected);
    ASSERT_TRUE(fsm.on_protocol_reply("late").rejected);
    ASSERT_EQ(fsm.close_reason(), model.reason);
  }
}

class SessionFsmFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SessionFsmFuzz, RandomEventSequencesPreserveInvariants) {
  const std::uint64_t base = GetParam() * 50000;
  for (std::uint64_t i = 0; i < 2000; ++i) {
    fuzz_session(base + i);
    if (::testing::Test::HasFatalFailure()) {
      FAIL() << "seed " << (base + i);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SessionFsmFuzz, ::testing::Values(1u, 2u, 3u, 4u));

}  // namespace
}  // namespace ncpm::net
