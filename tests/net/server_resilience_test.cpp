// Overload shedding, deadline shedding, keepalive ping/pong, and
// never-hello reaping — parameterized over both connection cores, because
// all four behaviours are part of the server's semantic contract.
//
// Determinism discipline: tests that need a busy engine occupy its single
// worker with a large instance submitted *directly* (no wire race), so the
// admission gates see outstanding()/queue_depth() at known values when the
// wire requests arrive.

#include "net/server.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <future>
#include <string>
#include <thread>
#include <vector>

#include "gen/generators.hpp"
#include "net/client.hpp"

namespace ncpm::net {
namespace {

using namespace std::chrono_literals;
using engine::Mode;

class ServerResilience : public ::testing::TestWithParam<ServerCoreKind> {
 protected:
  ServerConfig make_config() const {
    ServerConfig cfg;
    cfg.core = GetParam();
    return cfg;
  }
};

INSTANTIATE_TEST_SUITE_P(Cores, ServerResilience,
                         ::testing::Values(ServerCoreKind::kThreads, ServerCoreKind::kEpoll),
                         [](const ::testing::TestParamInfo<ServerCoreKind>& info) {
                           return std::string(server_core_name(info.param));
                         });

core::Instance small_instance(std::uint64_t seed) {
  gen::SolvableConfig cfg;
  cfg.num_applicants = 12;
  cfg.num_posts = 30;
  cfg.seed = seed;
  return gen::solvable_strict_instance(cfg);
}

/// Big enough that one worker chews on it for much longer than a handful
/// of loopback round trips.
core::Instance busywork_instance() {
  gen::SolvableConfig cfg;
  cfg.num_applicants = 300000;
  cfg.num_posts = 900000;
  cfg.contention = 2.0;
  cfg.seed = 77;
  return gen::solvable_strict_instance(cfg);
}

TEST_P(ServerResilience, InFlightCapShedsWithOverloadedNeverRejected) {
  ServerConfig cfg = make_config();
  cfg.engine = engine::EngineConfig{1, 1};
  cfg.max_in_flight_global = 1;
  Server server(cfg);
  server.start();

  // Occupy the single worker: outstanding() == 1 == the cap, so every wire
  // request is shed until this solve fulfills.
  auto busy = server.engine().submit(engine::Request::popular(Mode::kSolve, busywork_instance()));

  auto client = Client::connect("127.0.0.1", server.port());
  std::vector<RpcCall> calls(4, RpcCall{Mode::kSolve, small_instance(1), 0});
  const auto responses = client.call_batch(calls);
  ASSERT_EQ(responses.size(), calls.size());
  for (const auto& resp : responses) {
    // The contract under test: a live server says kOverloaded — kRejected
    // is reserved for shutdown.
    EXPECT_EQ(resp.status, RpcStatus::kOverloaded) << rpc_status_name(resp.status);
    EXPECT_NE(resp.status, RpcStatus::kRejected);
    EXPECT_FALSE(resp.error.empty());
  }

  // Once the busywork drains, the same connection is served again.
  busy.get();
  EXPECT_EQ(client.call(Mode::kSolve, small_instance(1)).status, RpcStatus::kOk);

  server.stop();
  EXPECT_EQ(server.stats().overloaded_shed, calls.size());
}

TEST_P(ServerResilience, QueueWatermarkShedsWithOverloaded) {
  ServerConfig cfg = make_config();
  cfg.engine = engine::EngineConfig{1, 1};
  cfg.overload_queue_watermark = 1;
  Server server(cfg);
  server.start();

  // Worker busy on the first, second parked in the queue: queue_depth()
  // sits at 1 (== the watermark) until the busywork completes.
  auto busy = server.engine().submit(engine::Request::popular(Mode::kSolve, busywork_instance()));
  auto queued = server.engine().submit(engine::Request::popular(Mode::kSolve, small_instance(2)));

  auto client = Client::connect("127.0.0.1", server.port());
  const auto resp = client.call(Mode::kSolve, small_instance(3));
  EXPECT_EQ(resp.status, RpcStatus::kOverloaded) << rpc_status_name(resp.status);

  busy.get();
  queued.get();
  EXPECT_EQ(client.call(Mode::kSolve, small_instance(3)).status, RpcStatus::kOk);

  server.stop();
  EXPECT_GE(server.stats().overloaded_shed, 1u);
}

TEST_P(ServerResilience, ExpiredDeadlineIsShedBeforeDecodingThePayload) {
  Server server{make_config()};
  server.start();
  auto client = Client::connect("127.0.0.1", server.port());
  // 1 ns of budget from receipt: gone by dispatch, so the shed gate (not
  // the engine) answers.
  const auto resp = client.call(Mode::kSolve, small_instance(4), 1);
  EXPECT_EQ(resp.status, RpcStatus::kDeadlineExpired);
  server.stop();
  EXPECT_EQ(server.stats().deadline_shed, 1u);
  EXPECT_EQ(server.stats().overloaded_shed, 0u);
}

TEST_P(ServerResilience, PingPongAnswersWithoutTakingASlot) {
  Server server{make_config()};
  server.start();
  auto client = Client::connect("127.0.0.1", server.port());

  client.ping();
  client.ping();
  ASSERT_EQ(client.call(Mode::kCount, small_instance(5)).status, RpcStatus::kOk);
  client.ping();

  client.close();
  server.stop();
  const auto stats = server.stats();
  EXPECT_EQ(stats.pings_answered, 3u);
  // Pongs are not responses: they hold no slot and do not count as served.
  EXPECT_EQ(stats.responses_sent, 1u);
  EXPECT_EQ(stats.frames_received, 1u);
}

TEST_P(ServerResilience, PingAnswersWhileEveryWorkerIsBusy) {
  ServerConfig cfg = make_config();
  cfg.engine = engine::EngineConfig{1, 1};
  Server server(cfg);
  server.start();

  auto busy = server.engine().submit(engine::Request::popular(Mode::kSolve, busywork_instance()));

  ClientConfig ccfg;
  ccfg.recv_timeout = 5000ms;
  auto client = Client::connect("127.0.0.1", server.port(), ccfg);
  // The pong comes from the protocol layer, not a worker — it cannot be
  // stuck behind the solve.
  client.ping();
  busy.get();
  server.stop();
  EXPECT_EQ(server.stats().pings_answered, 1u);
}

TEST_P(ServerResilience, NeverHelloConnectionsAreReapedWithinTheTimeout) {
  ServerConfig cfg = make_config();
  cfg.hello_timeout = 200ms;
  Server server(cfg);
  server.start();

  // Connect and send nothing — a liveness hole unless the server reaps it.
  Socket mute = Socket::connect_to("127.0.0.1", server.port(), 5s);
  mute.set_recv_timeout(std::chrono::milliseconds(5000));
  const auto started = std::chrono::steady_clock::now();
  std::uint8_t byte = 0;
  bool reaped = false;
  try {
    reaped = !mute.recv_exact(&byte, 1);  // clean FIN
  } catch (const NetError&) {
    reaped = true;  // RST is also a reap
  }
  const auto elapsed = std::chrono::steady_clock::now() - started;
  EXPECT_TRUE(reaped) << "server never closed the mute connection";
  EXPECT_LT(elapsed, 4s) << "reap took longer than the configured timeout allows";

  // The reap costs the mute connection only; a polite client still works.
  auto client = Client::connect("127.0.0.1", server.port());
  EXPECT_EQ(client.call(Mode::kCount, small_instance(6)).status, RpcStatus::kOk);

  server.stop();
  EXPECT_EQ(server.stats().hello_timeouts, 1u);
}

TEST_P(ServerResilience, ZeroHelloTimeoutMeansNoReap) {
  ServerConfig cfg = make_config();
  cfg.hello_timeout = 0ms;  // the documented escape hatch
  Server server(cfg);
  server.start();

  Socket mute = Socket::connect_to("127.0.0.1", server.port(), 5s);
  std::this_thread::sleep_for(300ms);
  // Still open: a late hello is accepted and the connection serves.
  send_hello(mute);
  ASSERT_TRUE(expect_hello(mute));
  mute.close();
  server.stop();
  EXPECT_EQ(server.stats().hello_timeouts, 0u);
}

}  // namespace
}  // namespace ncpm::net
