// Chaos suite (CTest label `chaos`): the ncpm-rpc stack with a seeded
// ChaosProxy between client and server — torn frames, delivery delays,
// mid-frame RSTs, byte corruption, and stalls, all replayable from the
// config seed.
//
// The gate: a ResilientClient run under fault injection must lose ZERO
// requests and return results byte-identical to direct Engine::submit.
// Framing breaks cost a connection (the resilient client redials);
// payload corruption inside a well-delimited frame costs exactly one
// error response and nothing else.

#include "net/chaos_proxy.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "gen/generators.hpp"
#include "gen/io_binary.hpp"
#include "net/client.hpp"
#include "net/resilient_client.hpp"
#include "net/server.hpp"

#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
#define NCPM_CHAOS_SANITIZED 1
#endif
#if defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer)
#define NCPM_CHAOS_SANITIZED 1
#endif
#endif

namespace ncpm::net {
namespace {

using namespace std::chrono_literals;
using engine::Mode;

class ServerChaos : public ::testing::TestWithParam<ServerCoreKind> {
 protected:
  ServerConfig make_config() const {
    ServerConfig cfg;
    cfg.core = GetParam();
    return cfg;
  }
};

INSTANTIATE_TEST_SUITE_P(Cores, ServerChaos,
                         ::testing::Values(ServerCoreKind::kThreads, ServerCoreKind::kEpoll),
                         [](const ::testing::TestParamInfo<ServerCoreKind>& info) {
                           return std::string(server_core_name(info.param));
                         });

core::Instance small_instance(std::uint64_t seed) {
  gen::SolvableConfig cfg;
  cfg.num_applicants = 12;
  cfg.num_posts = 30;
  cfg.seed = seed;
  return gen::solvable_strict_instance(cfg);
}

std::vector<core::Instance> mixed_instances(std::uint64_t seed) {
  std::vector<core::Instance> instances;
  for (int i = 0; i < 4; ++i) {
    gen::SolvableConfig cfg;
    cfg.num_applicants = 16 + 16 * i;
    cfg.num_posts = cfg.num_applicants * 3;
    cfg.contention = 2.0;
    cfg.seed = seed * 100 + static_cast<std::uint64_t>(i);
    instances.push_back(gen::solvable_strict_instance(cfg));
  }
  for (int i = 0; i < 2; ++i) {
    gen::StrictConfig cfg;
    cfg.num_applicants = 15 + i * 10;
    cfg.num_posts = 12 + i * 10;
    cfg.seed = seed * 100 + 50 + static_cast<std::uint64_t>(i);
    instances.push_back(gen::random_strict_instance(cfg));
  }
  instances.push_back(gen::contention_instance(6));
  return instances;
}

constexpr Mode kModes[] = {Mode::kSolve, Mode::kMaxCard, Mode::kFair, Mode::kRankMaximal,
                           Mode::kCount, Mode::kCheck};

/// Same byte-level comparison contract as the loopback suite.
void expect_matches_direct(const ResponseFrame& resp, const engine::Result& ref) {
  switch (ref.status) {
    case engine::Status::kOk:
      ASSERT_EQ(resp.status, RpcStatus::kOk) << resp.error;
      break;
    case engine::Status::kNoSolution:
      ASSERT_EQ(resp.status, RpcStatus::kNoSolution);
      break;
    default:
      FAIL() << "reference result has unexpected status";
  }
  ASSERT_EQ(resp.matching.has_value(), ref.matching.has_value());
  if (ref.matching.has_value()) {
    EXPECT_EQ(io::encode_matching_payload(*resp.matching),
              io::encode_matching_payload(*ref.matching));
    EXPECT_EQ(resp.matching_size, ref.matching_size);
  }
  EXPECT_EQ(resp.count, ref.count);
  ASSERT_EQ(resp.check.has_value(), ref.check.has_value());
  if (ref.check.has_value()) {
    EXPECT_EQ(resp.check->admits_popular, ref.check->admits_popular);
    EXPECT_EQ(resp.check->size, ref.check->size);
    EXPECT_EQ(resp.check->count, ref.check->count);
  }
}

/// The acceptance gate: 4 resilient clients x 24 mixed-mode requests
/// through a proxy tearing every frame, delaying slices, and randomly
/// resetting connections. Zero requests lost, every result byte-identical
/// to the direct engine. No corruption in this storm — a flipped byte can
/// decode to a *different valid instance*, which would break the
/// byte-identical contract without being a serving bug.
TEST_P(ServerChaos, RetryStormLosesNothingAndMatchesDirectEngine) {
  constexpr int kClients = 4;
  constexpr std::size_t kRequestsPerClient = 24;

  ServerConfig scfg = make_config();
  scfg.engine = engine::EngineConfig{4, 1};
  Server server(scfg);
  server.start();

  ChaosConfig ccfg;
  ccfg.upstream_port = server.port();
  ccfg.seed = 0xc4a05u;
  ccfg.max_chunk = 7;       // every frame torn into 1..7-byte slices
  ccfg.delay_ppm = 2000;    // occasional 1 ms slice delays
  ccfg.delay_ms = 1ms;
  ccfg.reset_ppm = 300;     // rare mid-anything RSTs; retries absorb them
  ChaosProxy proxy(ccfg);
  proxy.start();

  const auto instances = mixed_instances(42);
  std::vector<RpcCall> calls;
  std::vector<engine::Result> reference;
  {
    engine::Engine direct(engine::EngineConfig{1, 1});
    for (std::size_t i = 0; i < kRequestsPerClient; ++i) {
      calls.push_back({kModes[i % std::size(kModes)], instances[i % instances.size()], 0});
      reference.push_back(
          direct.submit(engine::Request::popular(calls[i].mode, calls[i].instance)).get());
    }
  }

  std::vector<std::thread> threads;
  std::vector<std::string> failures(kClients);
  std::vector<ResilientClientStats> stats(kClients);
  for (int c = 0; c < kClients; ++c) {
    threads.emplace_back([&, c] {
      try {
        ResilientClientConfig rcfg;
        rcfg.client.recv_timeout = 10000ms;
        rcfg.max_attempts = 10;
        rcfg.backoff.initial = 1ms;
        rcfg.backoff.max = 20ms;
        rcfg.breaker.failure_threshold = 1000;  // the storm must not trip it
        rcfg.jitter_seed = 0x9000 + static_cast<std::uint64_t>(c);
        ResilientClient client("127.0.0.1", proxy.port(), rcfg);
        for (std::size_t i = 0; i < calls.size(); ++i) {
          SCOPED_TRACE("client " + std::to_string(c) + " request " + std::to_string(i));
          const auto resp = client.call(calls[i].mode, calls[i].instance);
          expect_matches_direct(resp, reference[i]);
        }
        stats[static_cast<std::size_t>(c)] = client.stats();
      } catch (const std::exception& e) {
        failures[static_cast<std::size_t>(c)] = e.what();
      }
    });
  }
  for (auto& t : threads) t.join();
  for (const auto& f : failures) EXPECT_TRUE(f.empty()) << f;

  std::uint64_t attempts = 0;
  for (const auto& s : stats) attempts += s.attempts;
  EXPECT_GE(attempts, static_cast<std::uint64_t>(kClients) * kRequestsPerClient);

  proxy.stop();
  server.stop();
  // Whatever the wire did, the server itself never rejected a live-time
  // request (kRejected is shutdown-only) and sheds were impossible — no
  // admission caps configured.
  EXPECT_EQ(server.stats().overloaded_shed, 0u);
}

/// One-shot RST mid-request: the first attempt dies on a torn connection,
/// the redial (through the now-clean proxy) succeeds. Framing breaks cost
/// the connection, never a wrong answer.
TEST_P(ServerChaos, ResetMidFrameRedialsAndCompletes) {
  Server server{make_config()};
  server.start();

  ChaosConfig ccfg;
  ccfg.upstream_port = server.port();
  ccfg.seed = 7;
  // Hello is 12 bytes; the RST lands 20 bytes into the first request frame.
  ccfg.reset_after_client_bytes = 32;
  ChaosProxy proxy(ccfg);
  proxy.start();

  ResilientClientConfig rcfg;
  rcfg.max_attempts = 4;
  rcfg.backoff.initial = 1ms;
  rcfg.backoff.max = 5ms;
  ResilientClient client("127.0.0.1", proxy.port(), rcfg);
  const auto resp = client.call(Mode::kSolve, small_instance(1));
  EXPECT_EQ(resp.status, RpcStatus::kOk);

  EXPECT_EQ(client.stats().attempts, 2u);
  EXPECT_EQ(client.stats().retries, 1u);
  EXPECT_EQ(client.stats().reconnects, 2u);  // initial dial + post-reset redial
  EXPECT_EQ(proxy.stats().resets, 1u);

  proxy.stop();
  server.stop();
}

/// One-shot stall on the server->client leg: the proxy stops draining
/// mid-response, the server's bounded send_all trips its send timeout and
/// abandons the connection, the client sees the broken stream and the
/// retry completes on a fresh connection.
TEST_P(ServerChaos, StallUntilServerSendTimeoutThenRetryCompletes) {
#ifdef NCPM_CHAOS_SANITIZED
  // Real-time physics: the response must outsize the kernel send buffer and
  // the 250 ms send timeout must race a 1.5 s stall. Sanitizer slowdown
  // turns the multi-megabyte solve into minutes per attempt, so this one
  // runs in the Release chaos job only (the soak-test precedent).
  GTEST_SKIP() << "stall timing is a Release-only scenario; sanitizer overhead distorts it";
#endif
  ServerConfig scfg = make_config();
  scfg.send_timeout = 250ms;
  Server server(scfg);
  server.start();

  ChaosConfig ccfg;
  ccfg.upstream_port = server.port();
  ccfg.seed = 11;
  // Server hello (12) + response head: the stall lands inside the fat
  // response body and parks long enough to trip the 250 ms send timeout.
  ccfg.stall_after_server_bytes = 100;
  ccfg.stall_ms = 1500ms;
  // Small receive window toward the server: without this, receive-side
  // autotuning parks the whole response in kernel buffers and the server
  // never blocks long enough to notice the stall.
  ccfg.upstream_rcvbuf = 16 * 1024;
  ChaosProxy proxy(ccfg);
  proxy.start();

  // ~n matched pairs => a matching payload larger than the server's
  // autotuned send buffer (tcp_wmem caps out at a few MB), so its writer
  // genuinely blocks against the stall.
  gen::SolvableConfig icfg;
  icfg.num_applicants = 700000;
  icfg.num_posts = 1400000;
  icfg.seed = 33;
  const auto inst = gen::solvable_strict_instance(icfg);

  ResilientClientConfig rcfg;
  rcfg.client.recv_timeout = 20000ms;
  rcfg.max_attempts = 4;
  rcfg.backoff.initial = 1ms;
  rcfg.backoff.max = 5ms;
  ResilientClient client("127.0.0.1", proxy.port(), rcfg);
  const auto resp = client.call(Mode::kSolve, inst);
  EXPECT_EQ(resp.status, RpcStatus::kOk);
  ASSERT_TRUE(resp.matching.has_value());

  EXPECT_GE(client.stats().retries, 1u);
  EXPECT_EQ(proxy.stats().stalls, 1u);

  proxy.stop();
  server.stop();
}

/// One-shot byte flip inside the instance payload of a well-delimited
/// frame: exactly one kMalformedFrame error response, the connection
/// survives, and the next request (same connection, clean bytes) solves.
TEST_P(ServerChaos, CorruptionInsidePayloadCostsExactlyOneErrorResponse) {
  Server server{make_config()};
  server.start();

  ChaosConfig ccfg;
  ccfg.upstream_port = server.port();
  ccfg.seed = 13;
  // Client hello (12) + frame length (4) + request head (18) = 34 bytes;
  // byte 37 (1-based) is early instance-payload material whose corruption
  // fails validation instead of re-encoding a different valid instance.
  ccfg.corrupt_client_byte = 37;
  ChaosProxy proxy(ccfg);
  proxy.start();

  auto client = Client::connect("127.0.0.1", proxy.port());
  const auto inst = small_instance(2);

  const auto corrupted = client.call(Mode::kSolve, inst);
  EXPECT_EQ(corrupted.status, RpcStatus::kMalformedFrame) << rpc_status_name(corrupted.status);
  EXPECT_FALSE(corrupted.error.empty());

  // Same connection, fault spent: the stream was never desynchronised.
  const auto clean = client.call(Mode::kSolve, inst);
  EXPECT_EQ(clean.status, RpcStatus::kOk);
  ASSERT_TRUE(clean.matching.has_value());

  EXPECT_EQ(proxy.stats().corruptions, 1u);

  client.close();
  proxy.stop();
  server.stop();
  EXPECT_EQ(server.stats().malformed_frames, 1u);
  EXPECT_EQ(server.stats().responses_sent, 2u);
}

/// Determinism spot-check: two proxies with the same seed and the same
/// single-connection byte stream fire their probabilistic faults at the
/// same slice boundaries (same stats), so a failing chaos run replays.
TEST_P(ServerChaos, SameSeedSameFaultSchedule) {
  Server server{make_config()};
  server.start();

  const auto inst = small_instance(3);
  auto run_once = [&](std::uint64_t seed) {
    ChaosConfig ccfg;
    ccfg.upstream_port = server.port();
    ccfg.seed = seed;
    ccfg.max_chunk = 5;
    ccfg.delay_ppm = 50000;  // frequent, so schedules differ across seeds
    ccfg.delay_ms = 0ms;     // zero-length: schedule observable, test fast
    ChaosProxy proxy(ccfg);
    proxy.start();
    auto client = Client::connect("127.0.0.1", proxy.port());
    EXPECT_EQ(client.call(Mode::kSolve, inst).status, RpcStatus::kOk);
    client.close();
    proxy.stop();
    return proxy.stats();
  };

  const auto a = run_once(21);
  const auto b = run_once(21);
  EXPECT_EQ(a.client_bytes, b.client_bytes);
  EXPECT_EQ(a.server_bytes, b.server_bytes);
  EXPECT_EQ(a.delays, b.delays);
  EXPECT_EQ(a.resets, b.resets);

  server.stop();
}

}  // namespace
}  // namespace ncpm::net
