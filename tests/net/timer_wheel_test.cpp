// Unit tests for the hashed timing wheel, driven entirely by a synthetic
// clock (the wheel never reads time itself — that's what makes these
// deterministic).

#include "net/timer_wheel.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

namespace ncpm::net {
namespace {

using std::chrono::milliseconds;
using Clock = TimerWheel::Clock;

class TimerWheelTest : public ::testing::Test {
 protected:
  Clock::time_point t0_{Clock::now()};

  std::vector<TimerWheel::TimerId> advance_to(TimerWheel& wheel, milliseconds offset) {
    std::vector<TimerWheel::TimerId> expired;
    wheel.advance(t0_ + offset, expired);
    return expired;
  }
};

TEST_F(TimerWheelTest, FiresAtTheScheduledTickNotBefore) {
  TimerWheel wheel(t0_, milliseconds(20), 512);
  const auto id = wheel.schedule(t0_, milliseconds(100));
  EXPECT_EQ(wheel.armed(), 1u);
  EXPECT_TRUE(advance_to(wheel, milliseconds(80)).empty());
  const auto fired = advance_to(wheel, milliseconds(140));
  ASSERT_EQ(fired.size(), 1u);
  EXPECT_EQ(fired[0], id);
  EXPECT_EQ(wheel.armed(), 0u);
}

TEST_F(TimerWheelTest, SubTickDelayRoundsUpToOneTick) {
  TimerWheel wheel(t0_, milliseconds(20), 512);
  wheel.schedule(t0_, milliseconds(0));
  wheel.schedule(t0_, milliseconds(1));
  // Nothing fires at t0; both fire by one tick in.
  EXPECT_TRUE(advance_to(wheel, milliseconds(0)).empty());
  EXPECT_EQ(advance_to(wheel, milliseconds(40)).size(), 2u);
}

TEST_F(TimerWheelTest, CancelledTimersNeverFire) {
  TimerWheel wheel(t0_, milliseconds(20), 512);
  const auto keep = wheel.schedule(t0_, milliseconds(60));
  const auto drop = wheel.schedule(t0_, milliseconds(60));
  wheel.cancel(drop);
  EXPECT_EQ(wheel.armed(), 1u);
  const auto fired = advance_to(wheel, milliseconds(200));
  ASSERT_EQ(fired.size(), 1u);
  EXPECT_EQ(fired[0], keep);
  wheel.cancel(keep);  // cancelling a fired id is a no-op
  wheel.cancel(12345);  // as is cancelling an unknown one
}

TEST_F(TimerWheelTest, DelaysBeyondOneRevolutionSurvive) {
  // 8 slots x 20ms = 160ms revolution; 500ms rides the wheel 3 times.
  TimerWheel wheel(t0_, milliseconds(20), 8);
  const auto id = wheel.schedule(t0_, milliseconds(500));
  EXPECT_TRUE(advance_to(wheel, milliseconds(160)).empty());
  EXPECT_TRUE(advance_to(wheel, milliseconds(320)).empty());
  EXPECT_TRUE(advance_to(wheel, milliseconds(480)).empty());
  const auto fired = advance_to(wheel, milliseconds(540));
  ASSERT_EQ(fired.size(), 1u);
  EXPECT_EQ(fired[0], id);
}

TEST_F(TimerWheelTest, NextWakeupIsEmptyOnlyWhenIdle) {
  TimerWheel wheel(t0_, milliseconds(20), 512);
  EXPECT_FALSE(wheel.next_wakeup(t0_).has_value());
  wheel.schedule(t0_, milliseconds(100));
  const auto wake = wheel.next_wakeup(t0_);
  ASSERT_TRUE(wake.has_value());
  // Conservative: never later than the scheduled expiry (+1 tick of slack),
  // never negative.
  EXPECT_GE(wake->count(), 0);
  EXPECT_LE(wake->count(), 120);
  advance_to(wheel, milliseconds(140));
  EXPECT_FALSE(wheel.next_wakeup(t0_ + milliseconds(140)).has_value());
}

TEST_F(TimerWheelTest, ArmingAgainstAStaleCursorNeverFiresEarly) {
  TimerWheel wheel(t0_, milliseconds(20), 512);
  // Real time runs a full second ahead of the cursor before anything is
  // armed — exactly what happens in the reactor, which dispatches I/O and
  // posted tasks before advancing its wheel. The timer armed "now" must not
  // be swallowed by the catch-up advance that follows.
  const auto id = wheel.schedule(t0_ + milliseconds(1000), milliseconds(250));
  EXPECT_TRUE(advance_to(wheel, milliseconds(1000)).empty());
  EXPECT_TRUE(advance_to(wheel, milliseconds(1240)).empty());
  const auto fired = advance_to(wheel, milliseconds(1280));
  ASSERT_EQ(fired.size(), 1u);
  EXPECT_EQ(fired[0], id);
}

TEST_F(TimerWheelTest, ManyTimersFireInAmortizedSlotOrder) {
  TimerWheel wheel(t0_, milliseconds(20), 64);
  std::vector<TimerWheel::TimerId> ids;
  for (int i = 1; i <= 200; ++i) {
    ids.push_back(wheel.schedule(t0_, milliseconds(20 * (i % 40) + 20)));
  }
  std::vector<TimerWheel::TimerId> fired;
  for (int step = 1; step <= 50; ++step) {
    const auto now = advance_to(wheel, milliseconds(step * 20));
    fired.insert(fired.end(), now.begin(), now.end());
  }
  std::sort(fired.begin(), fired.end());
  std::sort(ids.begin(), ids.end());
  EXPECT_EQ(fired, ids);
  EXPECT_EQ(wheel.armed(), 0u);
}

}  // namespace
}  // namespace ncpm::net
