// Conformance suite for the pure session FSM (net/session_fsm.hpp) — no
// sockets, no threads, no clocks.
//
// The core of the suite is a table of all (state, event) pairs mirroring
// the "Server session lifecycle" table in docs/ncpm-rpc-v1.md: every pair
// either transitions exactly as documented or is rejected with the FSM
// untouched. Around the table sit directed tests for the torn-read paths
// (hello and frames arriving one byte at a time, headers split across
// reads), slot accounting, pause/resume under backpressure and write
// backlog, and the double-close / write-after-close rejections.

#include "net/session_fsm.hpp"

#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "net/frame.hpp"
#include "net/stats_frame.hpp"

namespace ncpm::net {
namespace {

// --- canonical wire fragments -----------------------------------------------

std::vector<std::uint8_t> wire_hello() {
  std::vector<std::uint8_t> hello(12);
  std::memcpy(hello.data(), kRpcMagic, 8);
  for (int i = 0; i < 4; ++i) {
    hello[8 + static_cast<std::size_t>(i)] =
        static_cast<std::uint8_t>((kRpcVersion >> (8 * i)) & 0xff);
  }
  return hello;
}

std::vector<std::uint8_t> frame_header(std::uint32_t len) {
  std::vector<std::uint8_t> header(4);
  for (int i = 0; i < 4; ++i) {
    header[static_cast<std::size_t>(i)] = static_cast<std::uint8_t>((len >> (8 * i)) & 0xff);
  }
  return header;
}

/// A complete length-prefixed frame with a `len`-byte arbitrary body.
std::vector<std::uint8_t> whole_frame(std::uint32_t len) {
  auto frame = frame_header(len);
  for (std::uint32_t i = 0; i < len; ++i) frame.push_back(static_cast<std::uint8_t>(i + 1));
  return frame;
}

SessionActions feed(SessionFsm& fsm, const std::vector<std::uint8_t>& bytes) {
  return fsm.on_bytes(bytes.data(), bytes.size());
}

/// Drive the handshake and flush the server hello so constructions start
/// from an empty backlog (the table is cleaner when "backlog non-empty"
/// only holds where the row says so).
void handshake_and_flush(SessionFsm& fsm) {
  const auto acts = feed(fsm, wire_hello());
  ASSERT_TRUE(acts.hello_ok);
  ASSERT_EQ(fsm.backlog_bytes(), 12u);
  ASSERT_FALSE(fsm.on_wrote(12).rejected);
  ASSERT_EQ(fsm.backlog_bytes(), 0u);
}

// --- the transition table ----------------------------------------------------

/// Expected outcome of applying one event in one canonically-built state.
struct Expected {
  bool rejected = false;
  SessionState after = SessionState::kClosed;
  /// Checked when `after` is kClosed and the row is not a rejection.
  SessionCloseReason reason = SessionCloseReason::kNone;
};

constexpr Expected kRejectedRow{true, SessionState::kClosed, SessionCloseReason::kNone};

Expected accepted(SessionState after) { return {false, after, SessionCloseReason::kNone}; }
Expected closes(SessionCloseReason reason) { return {false, SessionState::kClosed, reason}; }

struct TableCase {
  SessionState state;
  SessionEvent event;
  Expected expected;
};

/// Build an FSM sitting in `state` via the documented canonical route.
/// kDispatched and kClosing use max_in_flight = 1; the rest use 2.
SessionFsm make_fsm(SessionState state) {
  SessionFsmConfig config;
  config.max_in_flight =
      (state == SessionState::kDispatched || state == SessionState::kClosing) ? 1 : 2;
  SessionFsm fsm(config);
  switch (state) {
    case SessionState::kAwaitHello:
      break;
    case SessionState::kReadHeader:
      handshake_and_flush(fsm);
      break;
    case SessionState::kReadBody:
      handshake_and_flush(fsm);
      feed(fsm, frame_header(2));
      break;
    case SessionState::kDispatched:
      handshake_and_flush(fsm);
      feed(fsm, whole_frame(2));  // dispatches; in_flight == max_in_flight == 1
      break;
    case SessionState::kWriteBacklog:
      handshake_and_flush(fsm);
      feed(fsm, whole_frame(2));     // in_flight 1 of 2
      fsm.on_response("RESP");       // 4 backlog bytes
      fsm.on_event(SessionEvent::kWriteBlocked);
      break;
    case SessionState::kClosing:
      handshake_and_flush(fsm);
      feed(fsm, whole_frame(2));               // in_flight 1 of 1
      fsm.on_event(SessionEvent::kDrain);      // drains: closing until the response flushes
      break;
    case SessionState::kClosed:
      fsm.on_event(SessionEvent::kPeerError);
      break;
  }
  EXPECT_EQ(fsm.state(), state) << "canonical construction broke";
  return fsm;
}

/// Apply `event` with its canonical payload (one input byte, one 4-byte
/// response frame, one written byte).
SessionActions apply_event(SessionFsm& fsm, SessionEvent event) {
  switch (event) {
    case SessionEvent::kBytesIn: {
      const std::uint8_t byte = 'N';  // a valid first hello byte, an arbitrary body byte
      return fsm.on_bytes(&byte, 1);
    }
    case SessionEvent::kResponseReady:
      return fsm.on_response("RESP");
    case SessionEvent::kWroteBytes:
      return fsm.on_wrote(1);
    case SessionEvent::kPingFrame:
      return fsm.on_ping(0x42);
    case SessionEvent::kStatsFrame:
      return fsm.on_stats(0x42, 0);
    default:
      return fsm.on_event(event);
  }
}

const TableCase kTable[] = {
    // kAwaitHello: reads progress the hello; nothing is in flight, nothing
    // is writable, so lifecycle events close immediately.
    {SessionState::kAwaitHello, SessionEvent::kBytesIn, accepted(SessionState::kAwaitHello)},
    {SessionState::kAwaitHello, SessionEvent::kResponseReady, kRejectedRow},
    {SessionState::kAwaitHello, SessionEvent::kWroteBytes, kRejectedRow},
    {SessionState::kAwaitHello, SessionEvent::kWriteBlocked, kRejectedRow},
    {SessionState::kAwaitHello, SessionEvent::kReadEof, closes(SessionCloseReason::kCleanEof)},
    {SessionState::kAwaitHello, SessionEvent::kPeerError, closes(SessionCloseReason::kPeerError)},
    {SessionState::kAwaitHello, SessionEvent::kSendTimeout, kRejectedRow},
    {SessionState::kAwaitHello, SessionEvent::kIdleTimeout,
     closes(SessionCloseReason::kIdleTimeout)},
    {SessionState::kAwaitHello, SessionEvent::kDrain, closes(SessionCloseReason::kDrained)},
    // Frames cannot precede the hello — a ping here is a driver bug.
    {SessionState::kAwaitHello, SessionEvent::kPingFrame, kRejectedRow},
    // The only state where the hello-timeout reaper has work to do.
    {SessionState::kAwaitHello, SessionEvent::kHelloTimeout,
     closes(SessionCloseReason::kHelloTimeout)},
    // Like pings, stats frames cannot precede the hello.
    {SessionState::kAwaitHello, SessionEvent::kStatsFrame, kRejectedRow},

    // kReadHeader: quiescent between frames (backlog flushed).
    {SessionState::kReadHeader, SessionEvent::kBytesIn, accepted(SessionState::kReadHeader)},
    // Nothing dispatched => no slot is awaiting a response.
    {SessionState::kReadHeader, SessionEvent::kResponseReady, kRejectedRow},
    {SessionState::kReadHeader, SessionEvent::kWroteBytes, kRejectedRow},
    {SessionState::kReadHeader, SessionEvent::kWriteBlocked, kRejectedRow},
    {SessionState::kReadHeader, SessionEvent::kReadEof, closes(SessionCloseReason::kCleanEof)},
    {SessionState::kReadHeader, SessionEvent::kPeerError, closes(SessionCloseReason::kPeerError)},
    {SessionState::kReadHeader, SessionEvent::kSendTimeout, kRejectedRow},
    {SessionState::kReadHeader, SessionEvent::kIdleTimeout,
     closes(SessionCloseReason::kIdleTimeout)},
    {SessionState::kReadHeader, SessionEvent::kDrain, closes(SessionCloseReason::kDrained)},
    // Pings are answered in every stream state: the pong rides the backlog
    // and takes no in-flight slot.
    {SessionState::kReadHeader, SessionEvent::kPingFrame, accepted(SessionState::kReadHeader)},
    // Stale once the stream is up (the driver armed the timer at accept).
    {SessionState::kReadHeader, SessionEvent::kHelloTimeout, kRejectedRow},
    // Stats requests are answered in every stream state, exactly like pings.
    {SessionState::kReadHeader, SessionEvent::kStatsFrame, accepted(SessionState::kReadHeader)},

    // kReadBody: mid-frame. EOF here is a truncation; the idle reaper must
    // not fire; drain abandons the partial frame (nothing admitted yet).
    {SessionState::kReadBody, SessionEvent::kBytesIn, accepted(SessionState::kReadBody)},
    {SessionState::kReadBody, SessionEvent::kResponseReady, kRejectedRow},
    {SessionState::kReadBody, SessionEvent::kWroteBytes, kRejectedRow},
    {SessionState::kReadBody, SessionEvent::kWriteBlocked, kRejectedRow},
    {SessionState::kReadBody, SessionEvent::kReadEof,
     closes(SessionCloseReason::kProtocolError)},
    {SessionState::kReadBody, SessionEvent::kPeerError, closes(SessionCloseReason::kPeerError)},
    {SessionState::kReadBody, SessionEvent::kSendTimeout, kRejectedRow},
    {SessionState::kReadBody, SessionEvent::kIdleTimeout, kRejectedRow},
    {SessionState::kReadBody, SessionEvent::kDrain, closes(SessionCloseReason::kDrained)},
    {SessionState::kReadBody, SessionEvent::kPingFrame, accepted(SessionState::kReadBody)},
    {SessionState::kReadBody, SessionEvent::kHelloTimeout, kRejectedRow},
    {SessionState::kReadBody, SessionEvent::kStatsFrame, accepted(SessionState::kReadBody)},

    // kDispatched: at the in-flight bound. New bytes buffer; EOF and drain
    // enter kClosing so the admitted request's response still flushes.
    {SessionState::kDispatched, SessionEvent::kBytesIn, accepted(SessionState::kDispatched)},
    {SessionState::kDispatched, SessionEvent::kResponseReady,
     accepted(SessionState::kDispatched)},
    {SessionState::kDispatched, SessionEvent::kWroteBytes, kRejectedRow},
    {SessionState::kDispatched, SessionEvent::kWriteBlocked, kRejectedRow},
    {SessionState::kDispatched, SessionEvent::kReadEof, accepted(SessionState::kClosing)},
    {SessionState::kDispatched, SessionEvent::kPeerError,
     closes(SessionCloseReason::kPeerError)},
    {SessionState::kDispatched, SessionEvent::kSendTimeout, kRejectedRow},
    {SessionState::kDispatched, SessionEvent::kIdleTimeout, kRejectedRow},
    {SessionState::kDispatched, SessionEvent::kDrain, accepted(SessionState::kClosing)},
    // At the in-flight bound a ping still answers — liveness works even
    // when the engine is saturated (that is its whole point).
    {SessionState::kDispatched, SessionEvent::kPingFrame, accepted(SessionState::kDispatched)},
    {SessionState::kDispatched, SessionEvent::kHelloTimeout, kRejectedRow},
    // A scrape works even when the engine is saturated: the stats reply
    // rides the backlog without a slot, so backpressure cannot starve it.
    {SessionState::kDispatched, SessionEvent::kStatsFrame, accepted(SessionState::kDispatched)},

    // kWriteBacklog: the peer stopped draining. Write progress unblocks;
    // the send timeout may fire here (and only where a backlog exists).
    {SessionState::kWriteBacklog, SessionEvent::kBytesIn,
     accepted(SessionState::kWriteBacklog)},
    // The canonical backlog already queued its one slot's response.
    {SessionState::kWriteBacklog, SessionEvent::kResponseReady, kRejectedRow},
    {SessionState::kWriteBacklog, SessionEvent::kWroteBytes,
     accepted(SessionState::kReadHeader)},
    {SessionState::kWriteBacklog, SessionEvent::kWriteBlocked,
     accepted(SessionState::kWriteBacklog)},
    {SessionState::kWriteBacklog, SessionEvent::kReadEof, accepted(SessionState::kClosing)},
    {SessionState::kWriteBacklog, SessionEvent::kPeerError,
     closes(SessionCloseReason::kPeerError)},
    {SessionState::kWriteBacklog, SessionEvent::kSendTimeout,
     closes(SessionCloseReason::kSendTimeout)},
    {SessionState::kWriteBacklog, SessionEvent::kIdleTimeout, kRejectedRow},
    {SessionState::kWriteBacklog, SessionEvent::kDrain, accepted(SessionState::kClosing)},
    {SessionState::kWriteBacklog, SessionEvent::kPingFrame,
     accepted(SessionState::kWriteBacklog)},
    {SessionState::kWriteBacklog, SessionEvent::kHelloTimeout, kRejectedRow},
    {SessionState::kWriteBacklog, SessionEvent::kStatsFrame,
     accepted(SessionState::kWriteBacklog)},

    // kClosing: reads are over; responses still arrive and flush. Repeated
    // EOF/drain signals are ignored no-ops, not errors.
    {SessionState::kClosing, SessionEvent::kBytesIn, kRejectedRow},
    {SessionState::kClosing, SessionEvent::kResponseReady, accepted(SessionState::kClosing)},
    {SessionState::kClosing, SessionEvent::kWroteBytes, kRejectedRow},
    {SessionState::kClosing, SessionEvent::kWriteBlocked, kRejectedRow},
    {SessionState::kClosing, SessionEvent::kReadEof, accepted(SessionState::kClosing)},
    {SessionState::kClosing, SessionEvent::kPeerError, closes(SessionCloseReason::kPeerError)},
    {SessionState::kClosing, SessionEvent::kSendTimeout, kRejectedRow},
    {SessionState::kClosing, SessionEvent::kIdleTimeout, kRejectedRow},
    {SessionState::kClosing, SessionEvent::kDrain, accepted(SessionState::kClosing)},
    // The read side is done for good; a late ping has no one to answer.
    {SessionState::kClosing, SessionEvent::kPingFrame, kRejectedRow},
    {SessionState::kClosing, SessionEvent::kHelloTimeout, kRejectedRow},
    {SessionState::kClosing, SessionEvent::kStatsFrame, kRejectedRow},

    // kClosed: terminal. Every event — double close included — is rejected.
    {SessionState::kClosed, SessionEvent::kBytesIn, kRejectedRow},
    {SessionState::kClosed, SessionEvent::kResponseReady, kRejectedRow},
    {SessionState::kClosed, SessionEvent::kWroteBytes, kRejectedRow},
    {SessionState::kClosed, SessionEvent::kWriteBlocked, kRejectedRow},
    {SessionState::kClosed, SessionEvent::kReadEof, kRejectedRow},
    {SessionState::kClosed, SessionEvent::kPeerError, kRejectedRow},
    {SessionState::kClosed, SessionEvent::kSendTimeout, kRejectedRow},
    {SessionState::kClosed, SessionEvent::kIdleTimeout, kRejectedRow},
    {SessionState::kClosed, SessionEvent::kDrain, kRejectedRow},
    {SessionState::kClosed, SessionEvent::kPingFrame, kRejectedRow},
    {SessionState::kClosed, SessionEvent::kHelloTimeout, kRejectedRow},
    {SessionState::kClosed, SessionEvent::kStatsFrame, kRejectedRow},
};

TEST(SessionFsmTable, CoversEveryStateEventPair) {
  // The table must be total: one row per (state, event) pair.
  ASSERT_EQ(std::size(kTable), kNumSessionStates * kNumSessionEvents);
  bool seen[kNumSessionStates][kNumSessionEvents] = {};
  for (const auto& row : kTable) {
    auto& cell = seen[static_cast<std::size_t>(row.state)][static_cast<std::size_t>(row.event)];
    EXPECT_FALSE(cell) << session_state_name(row.state) << " x "
                       << session_event_name(row.event) << " appears twice";
    cell = true;
  }
}

class SessionFsmTransition : public ::testing::TestWithParam<TableCase> {};

TEST_P(SessionFsmTransition, MatchesTheDocumentedTable) {
  const auto& row = GetParam();
  SessionFsm fsm = make_fsm(row.state);
  const auto before_state = fsm.state();
  const auto before_in_flight = fsm.in_flight();
  const auto before_backlog = fsm.backlog_bytes();
  const auto before_reason = fsm.close_reason();

  const auto acts = apply_event(fsm, row.event);

  if (row.expected.rejected) {
    EXPECT_TRUE(acts.rejected);
    // Rejection is observation-free: nothing about the FSM moved.
    EXPECT_EQ(fsm.state(), before_state);
    EXPECT_EQ(fsm.in_flight(), before_in_flight);
    EXPECT_EQ(fsm.backlog_bytes(), before_backlog);
    EXPECT_EQ(fsm.close_reason(), before_reason);
    EXPECT_FALSE(acts.close);
    EXPECT_TRUE(acts.dispatch.empty());
    return;
  }
  EXPECT_FALSE(acts.rejected);
  EXPECT_EQ(fsm.state(), row.expected.after)
      << "got " << session_state_name(fsm.state());
  if (row.expected.after == SessionState::kClosed) {
    EXPECT_TRUE(acts.close);
    EXPECT_EQ(acts.close_reason, row.expected.reason);
    EXPECT_EQ(fsm.close_reason(), row.expected.reason);
  } else {
    EXPECT_FALSE(acts.close);
  }
}

INSTANTIATE_TEST_SUITE_P(Table, SessionFsmTransition, ::testing::ValuesIn(kTable),
                         [](const ::testing::TestParamInfo<TableCase>& info) {
                           std::string name(session_state_name(info.param.state));
                           name += "_";
                           name += session_event_name(info.param.event);
                           for (auto& c : name) {
                             if (c == '-') c = '_';
                           }
                           return name;
                         });

// --- hello handshake ---------------------------------------------------------

/// The FSM keeps its own copy of the 12-byte hello so it stays socket-free;
/// this pins that copy to the wire constants in net/frame.hpp, both for
/// what it accepts and for what it queues as the server hello.
TEST(SessionFsmHello, HelloBytesArePinnedToTheWireConstants) {
  SessionFsm fsm;
  const auto hello = wire_hello();
  const auto acts = feed(fsm, hello);
  EXPECT_TRUE(acts.hello_ok);
  ASSERT_EQ(fsm.backlog_bytes(), hello.size());
  ASSERT_EQ(fsm.write_size(), hello.size());
  EXPECT_EQ(0, std::memcmp(fsm.write_data(), hello.data(), hello.size()));
}

TEST(SessionFsmHello, BadHelloIsAProtocolErrorThatClosesImmediately) {
  SessionFsm fsm;
  auto hello = wire_hello();
  hello[8] = 0x2;  // wrong version
  const auto acts = feed(fsm, hello);
  EXPECT_TRUE(acts.protocol_error);
  EXPECT_TRUE(acts.close);
  EXPECT_EQ(acts.close_reason, SessionCloseReason::kProtocolError);
  EXPECT_EQ(fsm.state(), SessionState::kClosed);
}

TEST(SessionFsmHello, HelloTornAcrossSingleByteReadsStillCompletes) {
  SessionFsm fsm;
  const auto hello = wire_hello();
  for (std::size_t i = 0; i < hello.size(); ++i) {
    const auto acts = fsm.on_bytes(&hello[i], 1);
    ASSERT_FALSE(acts.rejected);
    if (i + 1 < hello.size()) {
      EXPECT_FALSE(acts.hello_ok);
      EXPECT_EQ(fsm.state(), SessionState::kAwaitHello);
    } else {
      EXPECT_TRUE(acts.hello_ok);
      EXPECT_EQ(fsm.state(), SessionState::kReadHeader);
    }
  }
}

TEST(SessionFsmHello, BadHelloDetectedOnlyWhenComplete) {
  // The last byte is the tell: nothing fails until all 12 arrived.
  SessionFsm fsm;
  auto hello = wire_hello();
  hello[11] = 0xff;
  ASSERT_FALSE(fsm.on_bytes(hello.data(), 11).protocol_error);
  const auto acts = fsm.on_bytes(&hello[11], 1);
  EXPECT_TRUE(acts.protocol_error);
  EXPECT_EQ(fsm.state(), SessionState::kClosed);
}

// --- torn frames and dispatch ------------------------------------------------

TEST(SessionFsmFraming, FrameTornIntoSingleBytesDispatchesOnce) {
  SessionFsm fsm;
  handshake_and_flush(fsm);
  const auto frame = whole_frame(5);
  std::size_t dispatched = 0;
  for (std::size_t i = 0; i < frame.size(); ++i) {
    const auto acts = fsm.on_bytes(&frame[i], 1);
    ASSERT_FALSE(acts.rejected);
    dispatched += acts.dispatch.size();
  }
  ASSERT_EQ(dispatched, 1u);
  EXPECT_EQ(fsm.in_flight(), 1u);
}

TEST(SessionFsmFraming, EverySplitOfHelloPlusFrameDispatchesTheSameBody) {
  // Two-chunk splits at every boundary of hello + header + body: the
  // dispatch must be byte-identical no matter where the reads tore.
  std::vector<std::uint8_t> stream = wire_hello();
  const auto frame = whole_frame(7);
  stream.insert(stream.end(), frame.begin(), frame.end());
  const std::vector<std::uint8_t> want(frame.begin() + 4, frame.end());

  for (std::size_t split = 0; split <= stream.size(); ++split) {
    SCOPED_TRACE("split at " + std::to_string(split));
    SessionFsm fsm;
    std::vector<std::vector<std::uint8_t>> got;
    auto first = fsm.on_bytes(stream.data(), split);
    ASSERT_FALSE(first.rejected);
    for (auto& b : first.dispatch) got.push_back(std::move(b));
    auto second = fsm.on_bytes(stream.data() + split, stream.size() - split);
    ASSERT_FALSE(second.rejected);
    for (auto& b : second.dispatch) got.push_back(std::move(b));
    ASSERT_EQ(got.size(), 1u);
    EXPECT_EQ(got[0], want);
  }
}

TEST(SessionFsmFraming, ZeroLengthFrameDispatchesAnEmptyBody) {
  // The server answers it with a malformed-payload error; the framing
  // layer's job is only to deliver the (empty) body and hold a slot.
  SessionFsm fsm;
  handshake_and_flush(fsm);
  const auto acts = feed(fsm, frame_header(0));
  ASSERT_EQ(acts.dispatch.size(), 1u);
  EXPECT_TRUE(acts.dispatch[0].empty());
  EXPECT_EQ(fsm.in_flight(), 1u);
}

TEST(SessionFsmFraming, OversizedLengthPrefixIsAProtocolError) {
  SessionFsmConfig config;
  config.max_frame_body = 1024;
  SessionFsm fsm(config);
  handshake_and_flush(fsm);
  const auto acts = feed(fsm, frame_header(1025));
  EXPECT_TRUE(acts.protocol_error);
  EXPECT_TRUE(acts.close);  // nothing admitted => nothing to flush first
  EXPECT_EQ(acts.close_reason, SessionCloseReason::kProtocolError);
}

TEST(SessionFsmFraming, OversizedLengthWithAdmittedWorkFlushesBeforeClosing) {
  SessionFsmConfig config;
  config.max_frame_body = 1024;
  config.max_in_flight = 2;
  SessionFsm fsm(config);
  handshake_and_flush(fsm);
  feed(fsm, whole_frame(2));  // one admitted request
  const auto acts = feed(fsm, frame_header(4096));
  EXPECT_TRUE(acts.protocol_error);
  EXPECT_FALSE(acts.close);  // the admitted request's response must flush first
  EXPECT_EQ(fsm.state(), SessionState::kClosing);

  auto resp = fsm.on_response("RR");
  ASSERT_FALSE(resp.rejected);
  const auto done = fsm.on_wrote(fsm.backlog_bytes());
  EXPECT_EQ(done.responses_completed, 1u);
  EXPECT_TRUE(done.close);
  EXPECT_EQ(done.close_reason, SessionCloseReason::kProtocolError);
}

// --- backpressure and write backlog -----------------------------------------

TEST(SessionFsmBackpressure, InputPausesAtTheBoundAndResumesOnSlotRelease) {
  SessionFsmConfig config;
  config.max_in_flight = 1;
  SessionFsm fsm(config);
  handshake_and_flush(fsm);

  // Two complete frames in one read: only the first may dispatch.
  auto stream = whole_frame(3);
  const auto second = whole_frame(4);
  stream.insert(stream.end(), second.begin(), second.end());
  const auto acts = feed(fsm, stream);
  ASSERT_EQ(acts.dispatch.size(), 1u);
  EXPECT_EQ(fsm.state(), SessionState::kDispatched);
  EXPECT_FALSE(fsm.wants_read());
  EXPECT_EQ(fsm.buffered_input(), second.size());

  // Response queued: still at the bound (the slot frees on full write).
  ASSERT_FALSE(fsm.on_response("RESP").rejected);
  EXPECT_EQ(fsm.state(), SessionState::kDispatched);

  // Partial write: still held.
  auto partial = fsm.on_wrote(2);
  ASSERT_FALSE(partial.rejected);
  EXPECT_EQ(partial.responses_completed, 0u);
  EXPECT_EQ(fsm.in_flight(), 1u);

  // Final write: slot opens and the buffered second frame dispatches.
  auto done = fsm.on_wrote(2);
  ASSERT_FALSE(done.rejected);
  EXPECT_EQ(done.responses_completed, 1u);
  ASSERT_EQ(done.dispatch.size(), 1u);
  EXPECT_EQ(done.dispatch[0], std::vector<std::uint8_t>(second.begin() + 4, second.end()));
  EXPECT_EQ(fsm.buffered_input(), 0u);
}

TEST(SessionFsmBackpressure, WriteBacklogPausesInputUntilProgress) {
  SessionFsmConfig config;
  config.max_in_flight = 4;
  SessionFsm fsm(config);
  handshake_and_flush(fsm);
  feed(fsm, whole_frame(2));
  ASSERT_FALSE(fsm.on_response("RESPONSE").rejected);
  ASSERT_FALSE(fsm.on_event(SessionEvent::kWriteBlocked).rejected);
  EXPECT_EQ(fsm.state(), SessionState::kWriteBacklog);
  EXPECT_FALSE(fsm.wants_read());

  // A complete frame arriving now buffers instead of dispatching.
  const auto held = feed(fsm, whole_frame(3));
  ASSERT_FALSE(held.rejected);
  EXPECT_TRUE(held.dispatch.empty());
  EXPECT_GT(fsm.buffered_input(), 0u);

  // One byte of write progress unblocks reads and admits the held frame.
  const auto acts = fsm.on_wrote(1);
  ASSERT_FALSE(acts.rejected);
  ASSERT_EQ(acts.dispatch.size(), 1u);
  EXPECT_TRUE(fsm.wants_read());
}

TEST(SessionFsmBackpressure, SendTimerArmsOnBacklogAndDisarmsOnDrain) {
  SessionFsm fsm;
  const auto hello = feed(fsm, wire_hello());
  EXPECT_TRUE(hello.arm_send_timer);  // server hello made the backlog non-empty

  auto partial = fsm.on_wrote(6);
  EXPECT_TRUE(partial.arm_send_timer);  // progress restarts the stall clock
  EXPECT_FALSE(partial.disarm_send_timer);

  auto done = fsm.on_wrote(6);
  EXPECT_TRUE(done.disarm_send_timer);
  EXPECT_FALSE(done.arm_send_timer);
}

// --- drain and close ---------------------------------------------------------

TEST(SessionFsmClose, DrainFlushesAdmittedResponsesThenCloses) {
  SessionFsmConfig config;
  config.max_in_flight = 2;
  SessionFsm fsm(config);
  handshake_and_flush(fsm);
  feed(fsm, whole_frame(2));
  feed(fsm, whole_frame(2));
  ASSERT_EQ(fsm.in_flight(), 2u);

  ASSERT_FALSE(fsm.on_event(SessionEvent::kDrain).rejected);
  EXPECT_EQ(fsm.state(), SessionState::kClosing);

  ASSERT_FALSE(fsm.on_response("AA").rejected);
  ASSERT_FALSE(fsm.on_wrote(2).close);  // one of two responses flushed
  ASSERT_FALSE(fsm.on_response("BB").rejected);
  const auto last = fsm.on_wrote(2);
  EXPECT_EQ(last.responses_completed, 1u);
  EXPECT_TRUE(last.close);
  EXPECT_EQ(last.close_reason, SessionCloseReason::kDrained);
}

TEST(SessionFsmClose, EofMidBodyStillFlushesAdmittedWork) {
  SessionFsmConfig config;
  config.max_in_flight = 2;
  SessionFsm fsm(config);
  handshake_and_flush(fsm);
  feed(fsm, whole_frame(2));      // admitted
  feed(fsm, frame_header(8));     // second frame: header only, then the peer dies
  const auto eof = fsm.on_event(SessionEvent::kReadEof);
  EXPECT_TRUE(eof.protocol_error);
  EXPECT_EQ(fsm.state(), SessionState::kClosing);

  ASSERT_FALSE(fsm.on_response("RR").rejected);
  const auto done = fsm.on_wrote(fsm.backlog_bytes());
  EXPECT_TRUE(done.close);
  EXPECT_EQ(done.close_reason, SessionCloseReason::kProtocolError);
}

TEST(SessionFsmClose, DoubleCloseAndWriteAfterCloseAreRejected) {
  SessionFsm fsm;
  ASSERT_FALSE(fsm.on_event(SessionEvent::kPeerError).rejected);
  ASSERT_EQ(fsm.state(), SessionState::kClosed);

  // Double close: a second close-causing event of any flavor is rejected
  // and the original reason is preserved.
  EXPECT_TRUE(fsm.on_event(SessionEvent::kPeerError).rejected);
  EXPECT_TRUE(fsm.on_event(SessionEvent::kReadEof).rejected);
  EXPECT_TRUE(fsm.on_event(SessionEvent::kDrain).rejected);
  EXPECT_EQ(fsm.close_reason(), SessionCloseReason::kPeerError);

  // Write after close: a late engine response is rejected, not queued.
  EXPECT_TRUE(fsm.on_response("LATE").rejected);
  EXPECT_EQ(fsm.backlog_bytes(), 0u);
  EXPECT_FALSE(fsm.wants_write());
}

TEST(SessionFsmClose, SendTimeoutDropsTheBacklogImmediately) {
  SessionFsm fsm;
  feed(fsm, wire_hello());  // hello queued, never written: a stalled peer
  ASSERT_FALSE(fsm.on_event(SessionEvent::kWriteBlocked).rejected);
  const auto acts = fsm.on_event(SessionEvent::kSendTimeout);
  EXPECT_TRUE(acts.close);
  EXPECT_EQ(acts.close_reason, SessionCloseReason::kSendTimeout);
  EXPECT_EQ(fsm.backlog_bytes(), 0u);
}

// --- keepalive pings ---------------------------------------------------------

/// The FSM keeps its own keepalive constants (socket-free discipline, like
/// the hello); this pins the ping it recognises and the pong it queues to
/// the wire encoders in net/frame.hpp.
TEST(SessionFsmPing, PingFrameOffTheWireQueuesTheMatchingPong) {
  SessionFsm fsm;
  handshake_and_flush(fsm);

  const std::uint64_t token = 0x0123456789abcdefULL;
  const auto ping = encode_keepalive_frame(FrameType::kPing, token);
  const auto acts =
      fsm.on_bytes(reinterpret_cast<const std::uint8_t*>(ping.data()), ping.size());
  ASSERT_FALSE(acts.rejected);
  EXPECT_EQ(acts.pings_answered, 1u);
  EXPECT_TRUE(acts.dispatch.empty());  // never dispatched to the server
  EXPECT_EQ(fsm.in_flight(), 0u);      // and no slot taken

  const auto pong = encode_keepalive_frame(FrameType::kPong, token);
  ASSERT_EQ(fsm.write_size(), pong.size());
  EXPECT_EQ(0, std::memcmp(fsm.write_data(), pong.data(), pong.size()));

  // Writing the pong completes no "response": the slot accounting and the
  // responses_sent counter must not see protocol-level traffic.
  const auto wrote = fsm.on_wrote(pong.size());
  ASSERT_FALSE(wrote.rejected);
  EXPECT_EQ(wrote.responses_completed, 0u);
}

TEST(SessionFsmPing, PingAtTheInFlightBoundStillAnswers) {
  SessionFsmConfig config;
  config.max_in_flight = 1;
  SessionFsm fsm(config);
  handshake_and_flush(fsm);
  feed(fsm, whole_frame(2));  // at the bound: reads paused
  ASSERT_EQ(fsm.state(), SessionState::kDispatched);

  const auto acts = fsm.on_ping(7);
  ASSERT_FALSE(acts.rejected);
  EXPECT_EQ(acts.pings_answered, 1u);
  EXPECT_EQ(fsm.state(), SessionState::kDispatched);  // no slot consumed
  EXPECT_GT(fsm.backlog_bytes(), 0u);
}

// --- stats frames ------------------------------------------------------------

TEST(SessionFsmStats, StatsRequestOffTheWireIsSurfacedNotDispatched) {
  SessionFsm fsm;
  handshake_and_flush(fsm);

  const std::uint64_t token = 0xfeedfacecafef00dULL;
  const auto frame = encode_stats_request_frame(token, kStatsFlagTraces);
  const auto acts =
      fsm.on_bytes(reinterpret_cast<const std::uint8_t*>(frame.data()), frame.size());
  ASSERT_FALSE(acts.rejected);
  ASSERT_EQ(acts.stats_requests.size(), 1u);
  EXPECT_EQ(acts.stats_requests[0].token, token);
  EXPECT_EQ(acts.stats_requests[0].flags, kStatsFlagTraces);
  EXPECT_TRUE(acts.dispatch.empty());  // never reaches the request decoder
  EXPECT_EQ(fsm.in_flight(), 0u);      // and no slot taken
}

TEST(SessionFsmStats, ProtocolReplyRidesTheBacklogWithoutSlotOrResponseCount) {
  SessionFsm fsm;
  handshake_and_flush(fsm);

  const std::string reply = "STATSREPLY";
  const auto queued = fsm.on_protocol_reply(std::string(reply));
  ASSERT_FALSE(queued.rejected);
  ASSERT_EQ(fsm.write_size(), reply.size());
  EXPECT_EQ(0, std::memcmp(fsm.write_data(), reply.data(), reply.size()));
  EXPECT_EQ(fsm.in_flight(), 0u);

  // Writing it completes no "response": protocol traffic is invisible to
  // the slot accounting and the responses_sent counter, like a pong.
  const auto wrote = fsm.on_wrote(reply.size());
  ASSERT_FALSE(wrote.rejected);
  EXPECT_EQ(wrote.responses_completed, 0u);
}

TEST(SessionFsmStats, StatsAtTheInFlightBoundStillSurfaces) {
  SessionFsmConfig config;
  config.max_in_flight = 1;
  SessionFsm fsm(config);
  handshake_and_flush(fsm);
  feed(fsm, whole_frame(2));  // at the bound: reads paused
  ASSERT_EQ(fsm.state(), SessionState::kDispatched);

  const auto acts = fsm.on_stats(7, 0);
  ASSERT_FALSE(acts.rejected);
  ASSERT_EQ(acts.stats_requests.size(), 1u);
  EXPECT_EQ(fsm.state(), SessionState::kDispatched);  // no slot consumed
}

TEST(SessionFsmStats, ProtocolReplyAfterClosingIsDropped) {
  SessionFsm fsm;
  handshake_and_flush(fsm);
  ASSERT_FALSE(fsm.on_event(SessionEvent::kDrain).rejected);
  // Nothing was admitted, so the drain closed immediately; the probe's
  // answer dies with the connection.
  EXPECT_TRUE(fsm.on_protocol_reply("LATE").rejected);
  EXPECT_EQ(fsm.backlog_bytes(), 0u);
}

TEST(SessionFsmStats, TenByteNonStatsBodyDispatchesNormally) {
  // Only the exact stats shape is intercepted: a 10-byte body whose first
  // byte is not type 5 is someone's (malformed) request and must reach the
  // server for its one error response.
  SessionFsm fsm;
  handshake_and_flush(fsm);
  auto frame = frame_header(10);
  frame.push_back(1);  // FrameType::kRequest
  for (int i = 0; i < 9; ++i) frame.push_back(0);
  const auto acts = feed(fsm, frame);
  ASSERT_EQ(acts.dispatch.size(), 1u);
  EXPECT_TRUE(acts.stats_requests.empty());
  EXPECT_EQ(fsm.in_flight(), 1u);
}

TEST(SessionFsmPing, NineByteNonPingBodyDispatchesNormally) {
  // Only the exact ping shape is intercepted: a 9-byte body whose first
  // byte is not the ping type is someone's (malformed) request and must
  // reach the server for its one error response.
  SessionFsm fsm;
  handshake_and_flush(fsm);
  auto frame = frame_header(9);
  frame.push_back(1);  // FrameType::kRequest
  for (int i = 0; i < 8; ++i) frame.push_back(0);
  const auto acts = feed(fsm, frame);
  ASSERT_EQ(acts.dispatch.size(), 1u);
  EXPECT_EQ(acts.pings_answered, 0u);
  EXPECT_EQ(fsm.in_flight(), 1u);
}

}  // namespace
}  // namespace ncpm::net
