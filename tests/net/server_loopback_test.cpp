// Loopback integration: real sockets, real threads, the whole ncpm-rpc v1
// path. The gate (ISSUE 5): N client threads x M pipelined mixed-mode
// requests return byte-identical results to direct Engine::submit,
// out-of-order responses are matched by request id, malformed frames get
// error responses without killing the connection, and shutdown drains
// in-flight requests.
//
// The whole suite is parameterized over both connection cores (threads and
// epoll): the assertions ARE the server's semantic contract, so both cores
// must pass every one of them unchanged.

#include "net/server.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "gen/generators.hpp"
#include "gen/io_binary.hpp"
#include "net/client.hpp"

namespace ncpm::net {
namespace {

using engine::Mode;

class ServerLoopback : public ::testing::TestWithParam<ServerCoreKind> {
 protected:
  /// Default config aimed at the core under test; tests tweak from here.
  ServerConfig make_config() const {
    ServerConfig cfg;
    cfg.core = GetParam();
    return cfg;
  }
};

INSTANTIATE_TEST_SUITE_P(Cores, ServerLoopback,
                         ::testing::Values(ServerCoreKind::kThreads, ServerCoreKind::kEpoll),
                         [](const ::testing::TestParamInfo<ServerCoreKind>& info) {
                           return std::string(server_core_name(info.param));
                         });

std::vector<core::Instance> mixed_instances(std::uint64_t seed) {
  std::vector<core::Instance> instances;
  for (int i = 0; i < 4; ++i) {
    gen::SolvableConfig cfg;
    // Mixed sizes so solves finish out of submission order under several
    // workers — the out-of-order/request-id matching is actually exercised.
    cfg.num_applicants = 20 + 60 * i;
    cfg.num_posts = cfg.num_applicants * 3;
    cfg.contention = 2.0;
    cfg.seed = seed * 100 + static_cast<std::uint64_t>(i);
    instances.push_back(gen::solvable_strict_instance(cfg));
  }
  for (int i = 0; i < 2; ++i) {
    gen::StrictConfig cfg;
    cfg.num_applicants = 15 + i * 10;
    cfg.num_posts = 12 + i * 10;
    cfg.seed = seed * 100 + 50 + static_cast<std::uint64_t>(i);
    instances.push_back(gen::random_strict_instance(cfg));
  }
  instances.push_back(gen::contention_instance(6));  // admits no popular matching
  return instances;
}

constexpr Mode kModes[] = {Mode::kSolve, Mode::kMaxCard, Mode::kFair, Mode::kRankMaximal,
                           Mode::kCount, Mode::kCheck};

/// Direct-engine reference for the same (mode, instance) pairs, matched
/// against wire responses byte-by-byte where a byte encoding exists.
void expect_matches_direct(const ResponseFrame& resp, const engine::Result& ref) {
  switch (ref.status) {
    case engine::Status::kOk:
      ASSERT_EQ(resp.status, RpcStatus::kOk) << resp.error;
      break;
    case engine::Status::kNoSolution:
      ASSERT_EQ(resp.status, RpcStatus::kNoSolution);
      break;
    default:
      FAIL() << "reference result has unexpected status";
  }
  ASSERT_EQ(resp.matching.has_value(), ref.matching.has_value());
  if (ref.matching.has_value()) {
    // Byte-identical: the payload codec is deterministic, so comparing
    // encodings compares every pair in both directions.
    EXPECT_EQ(io::encode_matching_payload(*resp.matching),
              io::encode_matching_payload(*ref.matching));
    EXPECT_EQ(resp.matching_size, ref.matching_size);
    EXPECT_EQ(resp.applicants, static_cast<std::uint32_t>(ref.applicants));
  }
  EXPECT_EQ(resp.count, ref.count);
  ASSERT_EQ(resp.check.has_value(), ref.check.has_value());
  if (ref.check.has_value()) {
    EXPECT_EQ(resp.check->applicants, ref.check->applicants);
    EXPECT_EQ(resp.check->posts, ref.check->posts);
    EXPECT_EQ(resp.check->strict, ref.check->strict);
    EXPECT_EQ(resp.check->admits_popular, ref.check->admits_popular);
    EXPECT_EQ(resp.check->size, ref.check->size);
    EXPECT_EQ(resp.check->count, ref.check->count);
  }
}

TEST_P(ServerLoopback, PipelinedMixedModesMatchDirectEngine) {
  constexpr int kClients = 4;
  constexpr std::size_t kRequestsPerClient = 24;

  ServerConfig cfg = make_config();
  cfg.engine = engine::EngineConfig{4, 1};
  Server server(cfg);
  server.start();
  ASSERT_GT(server.port(), 0);

  const auto instances = mixed_instances(42);

  // Reference results straight off an identically configured engine.
  std::vector<RpcCall> calls;
  std::vector<engine::Result> reference;
  calls.reserve(kRequestsPerClient);
  reference.reserve(kRequestsPerClient);
  {
    engine::Engine direct(engine::EngineConfig{1, 1});
    for (std::size_t i = 0; i < kRequestsPerClient; ++i) {
      calls.push_back({kModes[i % std::size(kModes)], instances[i % instances.size()], 0});
      reference.push_back(
          direct.submit(engine::Request::popular(calls[i].mode, calls[i].instance)).get());
    }
  }

  std::vector<std::thread> threads;
  std::vector<std::string> failures(kClients);
  for (int c = 0; c < kClients; ++c) {
    threads.emplace_back([&, c] {
      try {
        auto client = Client::connect("127.0.0.1", server.port());
        auto responses = client.call_batch(calls);
        ASSERT_EQ(responses.size(), calls.size());
        for (std::size_t i = 0; i < responses.size(); ++i) {
          SCOPED_TRACE("client " + std::to_string(c) + " request " + std::to_string(i));
          expect_matches_direct(responses[i], reference[i]);
        }
      } catch (const std::exception& e) {
        failures[static_cast<std::size_t>(c)] = e.what();
      }
    });
  }
  for (auto& t : threads) t.join();
  for (const auto& f : failures) EXPECT_TRUE(f.empty()) << f;

  // stop() joins every reader/writer thread, making the counters final —
  // reading them earlier races the last writer's post-send increment.
  server.stop();
  const auto stats = server.stats();
  EXPECT_EQ(stats.connections_accepted, static_cast<std::uint64_t>(kClients));
  EXPECT_EQ(stats.frames_received, kClients * kRequestsPerClient);
  EXPECT_EQ(stats.responses_sent, kClients * kRequestsPerClient);
  EXPECT_EQ(stats.malformed_frames, 0u);
}

TEST_P(ServerLoopback, MalformedFramesGetErrorsWithoutKillingTheConnection) {
  Server server{make_config()};
  server.start();

  Socket sock = Socket::connect_to("127.0.0.1", server.port(), std::chrono::seconds(5));
  send_hello(sock);
  ASSERT_TRUE(expect_hello(sock));

  const auto send_frame = [&](const std::string& body) {
    std::string frame;
    for (int i = 0; i < 4; ++i) {
      frame.push_back(static_cast<char>((body.size() >> (8 * i)) & 0xff));
    }
    frame += body;
    sock.send_all(frame.data(), frame.size());
  };
  std::vector<std::uint8_t> body;
  const auto next_response = [&] {
    if (!read_frame_body(sock, body)) throw NetError(NetErrc::kClosed, "eof");
    return decode_response_frame(body.data(), body.size());
  };
  const auto put_u64 = [](std::string& out, std::uint64_t v) {
    for (int i = 0; i < 8; ++i) out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  };

  // 1. Well-framed garbage too short for a request head: id unsalvageable,
  // the server answers id 0 / mode unknown.
  send_frame(std::string("\x01\x02\x03", 3));
  auto resp = next_response();
  EXPECT_EQ(resp.status, RpcStatus::kMalformedFrame);
  EXPECT_EQ(resp.request_id, 0u);
  EXPECT_EQ(resp.mode_raw, kModeUnknown);

  // 2. Valid head, unknown mode tag: id and mode echoed.
  {
    std::string req(1, '\x01');
    put_u64(req, 77);
    req.push_back(static_cast<char>(0x2a));  // mode 42
    put_u64(req, 0);
    send_frame(req);
  }
  resp = next_response();
  EXPECT_EQ(resp.status, RpcStatus::kUnsupportedMode);
  EXPECT_EQ(resp.request_id, 77u);
  EXPECT_EQ(resp.mode_raw, 0x2a);

  // 3. Valid head, garbage instance payload: id salvaged for the error.
  {
    std::string req(1, '\x01');
    put_u64(req, 78);
    req.push_back('\x00');  // kSolve
    put_u64(req, 0);
    req += "this is not an ncpm-binary instance payload";
    send_frame(req);
  }
  resp = next_response();
  EXPECT_EQ(resp.status, RpcStatus::kMalformedFrame);
  EXPECT_EQ(resp.request_id, 78u);
  EXPECT_FALSE(resp.error.empty());

  // 4. The connection survived all three: a real request still solves.
  {
    gen::SolvableConfig cfg;
    cfg.num_applicants = 12;
    cfg.num_posts = 30;
    cfg.seed = 5;
    RequestHead head;
    head.request_id = 79;
    head.mode_raw = static_cast<std::uint8_t>(Mode::kSolve);
    const auto frame = encode_request_frame(head, gen::solvable_strict_instance(cfg));
    sock.send_all(frame.data(), frame.size());
  }
  resp = next_response();
  EXPECT_EQ(resp.status, RpcStatus::kOk);
  EXPECT_EQ(resp.request_id, 79u);
  ASSERT_TRUE(resp.matching.has_value());

  EXPECT_EQ(server.stats().malformed_frames, 3u);
  sock.close();
  server.stop();
}

TEST_P(ServerLoopback, DeadlineTooTightComesBackExpired) {
  Server server{make_config()};
  server.start();
  auto client = Client::connect("127.0.0.1", server.port());
  gen::SolvableConfig cfg;
  cfg.num_applicants = 40;
  cfg.num_posts = 120;
  cfg.seed = 9;
  // 1 ns from server receipt: expired by the time a worker dequeues it.
  const auto resp = client.call(Mode::kSolve, gen::solvable_strict_instance(cfg), 1);
  EXPECT_EQ(resp.status, RpcStatus::kDeadlineExpired);
  server.stop();
}

TEST_P(ServerLoopback, StopDrainsInFlightRequests) {
  ServerConfig cfg = make_config();
  cfg.engine = engine::EngineConfig{1, 1};  // one worker => a real queue builds
  Server server(cfg);
  server.start();

  constexpr std::size_t kPipelined = 24;
  Socket sock = Socket::connect_to("127.0.0.1", server.port(), std::chrono::seconds(5));
  send_hello(sock);
  ASSERT_TRUE(expect_hello(sock));

  gen::SolvableConfig icfg;
  icfg.num_applicants = 120;
  icfg.num_posts = 360;
  icfg.contention = 2.0;
  icfg.seed = 21;
  const auto inst = gen::solvable_strict_instance(icfg);
  for (std::size_t i = 0; i < kPipelined; ++i) {
    RequestHead head;
    head.request_id = i + 1;
    head.mode_raw = static_cast<std::uint8_t>(kModes[i % std::size(kModes)]);
    const auto frame = encode_request_frame(head, inst);
    sock.send_all(frame.data(), frame.size());
  }

  // Wait until the server has read (and dispatched) every frame, so stop()
  // genuinely races a deep in-flight queue rather than unread bytes.
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(30);
  while (server.stats().frames_received < kPipelined) {
    ASSERT_LT(std::chrono::steady_clock::now(), deadline) << "server never read the frames";
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }

  std::thread stopper([&] { server.stop(); });

  // Every dispatched request must still produce a response before the
  // server closes the connection.
  std::vector<bool> seen(kPipelined, false);
  std::vector<std::uint8_t> body;
  std::size_t received = 0;
  while (received < kPipelined) {
    ASSERT_TRUE(read_frame_body(sock, body)) << "connection closed before the drain finished";
    const auto resp = decode_response_frame(body.data(), body.size());
    ASSERT_GE(resp.request_id, 1u);
    ASSERT_LE(resp.request_id, kPipelined);
    ASSERT_FALSE(seen[resp.request_id - 1]) << "duplicate response";
    seen[resp.request_id - 1] = true;
    // Drain means solved, not rejected.
    EXPECT_TRUE(resp.status == RpcStatus::kOk || resp.status == RpcStatus::kNoSolution)
        << rpc_status_name(resp.status);
    ++received;
  }
  EXPECT_FALSE(read_frame_body(sock, body));  // then clean EOF
  stopper.join();
  EXPECT_FALSE(server.running());
  EXPECT_EQ(server.stats().responses_sent, kPipelined);
}

/// A client that pipelines requests and then never reads a byte must not
/// block stop(): once the TCP buffers fill, the writer trips the send
/// timeout, the connection is marked broken, every held slot is released,
/// and the drain completes. (When the responses happen to fit the kernel
/// buffers the writer never stalls and this degenerates to a clean drain —
/// either way stop() returns; a hang fails the test via the CTest timeout.)
TEST_P(ServerLoopback, StalledClientCannotBlockStop) {
  ServerConfig cfg = make_config();
  cfg.send_timeout = std::chrono::milliseconds(250);
  cfg.engine = engine::EngineConfig{1, 1};
  Server server{cfg};
  server.start();

  Socket sock = Socket::connect_to("127.0.0.1", server.port(), std::chrono::seconds(5));
  send_hello(sock);
  ASSERT_TRUE(expect_hello(sock));

  // Cheap solve, fat response: ~n matched pairs => ~8n bytes of matching
  // payload per frame, enough in aggregate to overrun loopback buffers.
  gen::SolvableConfig icfg;
  icfg.num_applicants = 40000;
  icfg.num_posts = 80000;
  icfg.seed = 33;
  const auto inst = gen::solvable_strict_instance(icfg);
  constexpr std::size_t kPipelined = 24;
  for (std::size_t i = 0; i < kPipelined; ++i) {
    RequestHead head;
    head.request_id = i + 1;
    head.mode_raw = static_cast<std::uint8_t>(Mode::kSolve);
    const auto frame = encode_request_frame(head, inst);
    sock.send_all(frame.data(), frame.size());
  }

  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(60);
  while (server.stats().frames_received < kPipelined) {
    ASSERT_LT(std::chrono::steady_clock::now(), deadline) << "server never read the frames";
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }

  server.stop();  // must return; the stalled write side cannot pin the drain
  EXPECT_FALSE(server.running());
}

/// Protocol-error responses go through the same slot accounting as engine
/// work: a storm of malformed frames larger than the in-flight bound must
/// cycle through (slots released as error responses are sent), not wedge
/// the reader.
TEST_P(ServerLoopback, MalformedFrameStormRespectsBackpressure) {
  ServerConfig cfg = make_config();
  cfg.max_in_flight_per_connection = 4;
  Server server{cfg};
  server.start();

  Socket sock = Socket::connect_to("127.0.0.1", server.port(), std::chrono::seconds(5));
  send_hello(sock);
  ASSERT_TRUE(expect_hello(sock));

  constexpr std::size_t kFrames = 200;
  const std::string garbage = "\x01\x02";  // well-framed, unparseable head
  for (std::size_t i = 0; i < kFrames; ++i) {
    std::uint8_t prefix[4] = {static_cast<std::uint8_t>(garbage.size()), 0, 0, 0};
    sock.send_all(prefix, sizeof(prefix));
    sock.send_all(garbage.data(), garbage.size());
  }
  std::vector<std::uint8_t> body;
  for (std::size_t i = 0; i < kFrames; ++i) {
    ASSERT_TRUE(read_frame_body(sock, body));
    EXPECT_EQ(decode_response_frame(body.data(), body.size()).status,
              RpcStatus::kMalformedFrame);
  }
  sock.close();
  server.stop();
  EXPECT_EQ(server.stats().malformed_frames, kFrames);
}

TEST_P(ServerLoopback, ServerIsSingleUse) {
  Server server{make_config()};
  server.start();
  server.stop();
  EXPECT_THROW(server.start(), NetError);
}

/// Connecting clients that disappear without a clean shutdown must not
/// wedge or leak the server (the reaper path).
TEST_P(ServerLoopback, AbruptClientDisconnectsAreHarmless) {
  Server server{make_config()};
  server.start();
  for (int i = 0; i < 8; ++i) {
    Socket sock = Socket::connect_to("127.0.0.1", server.port(), std::chrono::seconds(5));
    if (i % 2 == 0) send_hello(sock);  // half die mid-hello, half before
    sock.close();
  }
  // A real client still works after the carnage.
  auto client = Client::connect("127.0.0.1", server.port());
  gen::SolvableConfig cfg;
  cfg.num_applicants = 10;
  cfg.num_posts = 25;
  cfg.seed = 3;
  const auto resp = client.call(Mode::kCount, gen::solvable_strict_instance(cfg));
  EXPECT_EQ(resp.status, RpcStatus::kOk);
  server.stop();
}

}  // namespace
}  // namespace ncpm::net
