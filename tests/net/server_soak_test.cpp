// C10K-class soak for the epoll server core (CTest label: soak).
//
// Holds NCPM_SOAK_CONNECTIONS (default 1024) concurrent connections against
// one server process and drives pipelined mixed-mode requests down every
// one of them, asserting the three properties that justify the reactor:
//
//   1. Zero dropped or duplicated responses — every request id comes back
//      exactly once on its own connection.
//   2. Byte-identical results to direct Engine::submit — the wire path adds
//      connections, not answers.
//   3. Flat per-connection memory — RSS growth across the ramp from 0 to
//      every connection live stays under a small per-connection budget
//      (sessions are buffers, not thread pairs).
//
// Skipped under ASan/TSan (sanitizer overheads distort both the memory
// bound and the fd budget); CI runs it in a dedicated Release job via
// `ctest -L soak`.

#include <gtest/gtest.h>

#include <sys/resource.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "gen/generators.hpp"
#include "gen/io_binary.hpp"
#include "net/frame.hpp"
#include "net/server.hpp"
#include "net/socket.hpp"

#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
#define NCPM_SOAK_SANITIZED 1
#endif
#if defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer)
#define NCPM_SOAK_SANITIZED 1
#endif
#endif

namespace ncpm::net {
namespace {

using engine::Mode;

std::size_t configured_connections() {
  if (const char* env = std::getenv("NCPM_SOAK_CONNECTIONS")) {
    const long v = std::strtol(env, nullptr, 10);
    if (v > 0) return static_cast<std::size_t>(v);
  }
  return 1024;
}

/// Current resident set in KiB from /proc/self/status (Linux-only, like
/// the reactor itself).
std::size_t rss_kib() {
  std::ifstream status("/proc/self/status");
  std::string line;
  while (std::getline(status, line)) {
    if (line.rfind("VmRSS:", 0) == 0) {
      std::istringstream fields(line.substr(6));
      std::size_t kib = 0;
      fields >> kib;
      return kib;
    }
  }
  return 0;
}

/// Best-effort RLIMIT_NOFILE raise; returns the resulting soft limit.
std::size_t ensure_fd_budget(std::size_t want) {
  rlimit lim{};
  if (::getrlimit(RLIMIT_NOFILE, &lim) != 0) return 0;
  if (lim.rlim_cur < want) {
    rlimit raised = lim;
    raised.rlim_cur = (lim.rlim_max == RLIM_INFINITY)
                          ? want
                          : std::min<rlim_t>(lim.rlim_max, static_cast<rlim_t>(want));
    if (::setrlimit(RLIMIT_NOFILE, &raised) == 0) lim = raised;
  }
  return static_cast<std::size_t>(lim.rlim_cur);
}

constexpr Mode kSoakModes[] = {Mode::kSolve, Mode::kCount, Mode::kCheck, Mode::kMaxCard};
constexpr std::size_t kRequestsPerConnection = std::size(kSoakModes);

TEST(ServerSoak, C10KPipelinedConnectionsFlatMemoryNoDrops) {
#ifdef NCPM_SOAK_SANITIZED
  GTEST_SKIP() << "soak is a Release-only test; sanitizer overhead distorts its bounds";
#endif
  const std::size_t connections = configured_connections();
  // Client + server fds, the loops, and ambient process fds.
  const std::size_t fd_budget = ensure_fd_budget(2 * connections + 64);
  if (fd_budget < 2 * connections + 64) {
    GTEST_SKIP() << "RLIMIT_NOFILE " << fd_budget << " cannot hold " << connections
                 << " loopback connections";
  }

  ServerConfig cfg;
  cfg.core = ServerCoreKind::kEpoll;
  cfg.backlog = 256;
  cfg.engine = engine::EngineConfig{2, 1};
  Server server(cfg);
  server.start();
  ASSERT_GT(server.port(), 0);

  // Small instance => small frames: the soak measures connection scaling,
  // not solver throughput.
  gen::SolvableConfig icfg;
  icfg.num_applicants = 12;
  icfg.num_posts = 30;
  icfg.seed = 77;
  const auto inst = gen::solvable_strict_instance(icfg);

  // Reference results straight off an identically configured engine.
  std::vector<engine::Result> reference;
  {
    engine::Engine direct(engine::EngineConfig{1, 1});
    for (const auto mode : kSoakModes) {
      reference.push_back(direct.submit(engine::Request::popular(mode, inst)).get());
    }
  }
  std::vector<std::string> request_frames;
  for (std::size_t i = 0; i < kRequestsPerConnection; ++i) {
    RequestHead head;
    head.request_id = i + 1;
    head.mode_raw = static_cast<std::uint8_t>(kSoakModes[i]);
    request_frames.push_back(encode_request_frame(head, inst));
  }

  const std::size_t rss_before_kib = rss_kib();

  // Ramp: connect + handshake every client socket up front so the memory
  // measurement sees all of them live at once.
  std::vector<Socket> clients;
  clients.reserve(connections);
  for (std::size_t i = 0; i < connections; ++i) {
    clients.push_back(Socket::connect_to("127.0.0.1", server.port(), std::chrono::seconds(30)));
    clients.back().set_recv_timeout(std::chrono::seconds(120));
    send_hello(clients.back());
    ASSERT_TRUE(expect_hello(clients.back())) << "handshake failed on connection " << i;
  }

  // Drive the full pipelined round on every connection from a bounded
  // worker pool (the point is many connections, not many client threads).
  const std::size_t num_workers = 8;
  std::vector<std::thread> workers;
  std::vector<std::string> failures(num_workers);
  std::atomic<std::size_t> responses_ok{0};
  for (std::size_t w = 0; w < num_workers; ++w) {
    workers.emplace_back([&, w] {
      try {
        for (std::size_t c = w; c < connections; c += num_workers) {
          auto& sock = clients[c];
          for (const auto& frame : request_frames) {
            sock.send_all(frame.data(), frame.size());
          }
          std::vector<bool> seen(kRequestsPerConnection, false);
          std::vector<std::uint8_t> body;
          for (std::size_t r = 0; r < kRequestsPerConnection; ++r) {
            if (!read_frame_body(sock, body)) {
              throw std::runtime_error("connection " + std::to_string(c) +
                                       " closed early (dropped response)");
            }
            const auto resp = decode_response_frame(body.data(), body.size());
            if (resp.request_id < 1 || resp.request_id > kRequestsPerConnection ||
                seen[resp.request_id - 1]) {
              throw std::runtime_error("bad/duplicate response id on connection " +
                                       std::to_string(c));
            }
            seen[resp.request_id - 1] = true;
            const auto& ref = reference[resp.request_id - 1];
            if (resp.status != RpcStatus::kOk || ref.status != engine::Status::kOk) {
              throw std::runtime_error("non-ok status on connection " + std::to_string(c));
            }
            if (resp.matching.has_value() != ref.matching.has_value()) {
              throw std::runtime_error("matching presence mismatch");
            }
            if (ref.matching.has_value() &&
                io::encode_matching_payload(*resp.matching) !=
                    io::encode_matching_payload(*ref.matching)) {
              throw std::runtime_error("matching bytes diverge from direct engine");
            }
            if (resp.count != ref.count) {
              throw std::runtime_error("count diverges from direct engine");
            }
            ++responses_ok;
          }
        }
      } catch (const std::exception& e) {
        failures[w] = e.what();
      }
    });
  }
  for (auto& t : workers) t.join();
  for (const auto& f : failures) ASSERT_TRUE(f.empty()) << f;
  EXPECT_EQ(responses_ok.load(), connections * kRequestsPerConnection);

  // Flat memory: with every connection still live and a full round of
  // traffic behind each, per-connection cost must stay in buffer range —
  // 64 KiB/connection plus 32 MiB of slack for the engine and allocator.
  const std::size_t rss_after_kib = rss_kib();
  const std::size_t delta_kib =
      rss_after_kib > rss_before_kib ? rss_after_kib - rss_before_kib : 0;
  EXPECT_LE(delta_kib, connections * 64 + 32 * 1024)
      << "RSS grew " << delta_kib << " KiB across " << connections << " connections";

  const auto mid_stats = server.stats();
  EXPECT_EQ(mid_stats.connections_accepted, connections);
  EXPECT_EQ(mid_stats.connections_active, connections);

  for (auto& sock : clients) sock.close();
  server.stop();

  const auto stats = server.stats();
  EXPECT_EQ(stats.frames_received, connections * kRequestsPerConnection);
  EXPECT_EQ(stats.responses_sent, connections * kRequestsPerConnection);
  EXPECT_EQ(stats.malformed_frames, 0u);
}

}  // namespace
}  // namespace ncpm::net
