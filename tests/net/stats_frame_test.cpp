// Stats frame (types 5/6) codec tests: request recognition is exact,
// response round-trips a full obs::Snapshot (sparse histogram buckets,
// labels, spans), and corrupted or truncated bodies throw kProtocol
// instead of over-reading.

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "net/frame.hpp"
#include "net/socket.hpp"
#include "net/stats_frame.hpp"
#include "obs/registry.hpp"
#include "obs/trace.hpp"

namespace ncpm::net {
namespace {

/// Strips the u32 length prefix off complete wire bytes.
std::vector<std::uint8_t> body_of(const std::string& frame) {
  EXPECT_GE(frame.size(), 4u);
  std::uint32_t len = 0;
  std::memcpy(&len, frame.data(), 4);
  EXPECT_EQ(static_cast<std::size_t>(len) + 4, frame.size());
  return std::vector<std::uint8_t>(frame.begin() + 4, frame.end());
}

obs::Snapshot sample_snapshot() {
  obs::Registry reg;
  reg.counter("a_total", "Help a").add(11);
  reg.counter("b_total", "Help b", {{"mode", "solve"}, {"zone", "eu"}}).add(22);
  reg.gauge("g", "A gauge").set(-9);
  obs::Histogram& h = reg.histogram("lat_ns", "Latency", {{"mode", "x"}});
  h.observe(0);
  h.observe(5);
  h.observe(5);
  h.observe(1 << 20);
  return reg.snapshot();
}

TEST(StatsRequestCodec, RoundTripsTokenAndFlags) {
  const auto frame = encode_stats_request_frame(0x1122334455667788ull, kStatsFlagTraces);
  const auto body = body_of(frame);
  ASSERT_EQ(body.size(), kStatsRequestBodySize);
  EXPECT_EQ(body[0], static_cast<std::uint8_t>(FrameType::kStatsRequest));
  const auto req = parse_stats_request_body(body.data(), body.size());
  ASSERT_TRUE(req.has_value());
  EXPECT_EQ(req->token, 0x1122334455667788ull);
  EXPECT_EQ(req->flags, kStatsFlagTraces);
}

TEST(StatsRequestCodec, RejectsWrongSizeOrType) {
  const auto body = body_of(encode_stats_request_frame(1, 0));
  EXPECT_FALSE(parse_stats_request_body(body.data(), body.size() - 1).has_value());
  auto longer = body;
  longer.push_back(0);
  EXPECT_FALSE(parse_stats_request_body(longer.data(), longer.size()).has_value());
  auto wrong_type = body;
  wrong_type[0] = static_cast<std::uint8_t>(FrameType::kRequest);
  EXPECT_FALSE(parse_stats_request_body(wrong_type.data(), wrong_type.size()).has_value());
  EXPECT_FALSE(parse_stats_request_body(nullptr, 0).has_value());
}

TEST(StatsResponseCodec, RoundTripsAFullSnapshot) {
  const obs::Snapshot snap = sample_snapshot();
  const auto body = body_of(encode_stats_response_frame(42, snap, {}));
  const StatsReply reply = decode_stats_response_body(body.data(), body.size());

  EXPECT_EQ(reply.token, 42u);
  EXPECT_EQ(reply.version, kStatsSnapshotVersion);
  EXPECT_EQ(reply.snapshot.uptime_ns, snap.uptime_ns);

  ASSERT_EQ(reply.snapshot.counters.size(), 2u);
  EXPECT_EQ(reply.snapshot.counters[0].name, "a_total");
  EXPECT_EQ(reply.snapshot.counters[0].help, "Help a");
  EXPECT_EQ(reply.snapshot.counters[0].value, 11u);
  EXPECT_EQ(reply.snapshot.counters[1].labels,
            (obs::Labels{{"mode", "solve"}, {"zone", "eu"}}));
  EXPECT_EQ(reply.snapshot.counters[1].value, 22u);

  ASSERT_EQ(reply.snapshot.gauges.size(), 1u);
  EXPECT_EQ(reply.snapshot.gauges[0].value, -9);

  ASSERT_EQ(reply.snapshot.histograms.size(), 1u);
  const auto& h = reply.snapshot.histograms[0];
  EXPECT_EQ(h.count, 4u);
  EXPECT_EQ(h.sum, snap.histograms[0].sum);
  EXPECT_EQ(h.buckets, snap.histograms[0].buckets);  // sparse encoding is lossless

  EXPECT_TRUE(reply.spans.empty());
}

TEST(StatsResponseCodec, RoundTripsTraceSpans) {
  obs::TraceSpan span;
  span.request_id = 5;
  span.conn_id = 3;
  span.mode = 2;
  span.status = 1;
  span.accept_ns = 100;
  span.frame_read_ns = 110;
  span.dispatch_ns = 120;
  span.solve_start_ns = 130;
  span.solve_end_ns = 140;
  span.response_ns = 150;

  const auto body = body_of(encode_stats_response_frame(7, obs::Snapshot{}, {span}));
  const StatsReply reply = decode_stats_response_body(body.data(), body.size());
  ASSERT_EQ(reply.spans.size(), 1u);
  EXPECT_EQ(reply.spans[0].request_id, 5u);
  EXPECT_EQ(reply.spans[0].conn_id, 3u);
  EXPECT_EQ(reply.spans[0].mode, 2);
  EXPECT_EQ(reply.spans[0].status, 1);
  EXPECT_EQ(reply.spans[0].accept_ns, 100u);
  EXPECT_EQ(reply.spans[0].response_ns, 150u);
}

TEST(StatsResponseCodec, RoundTripsV2SpanTail) {
  // The v2 span tail: instance digest, payload size, and the sparse
  // per-phase breakdown the `top`/trace tooling renders.
  obs::TraceSpan span;
  span.request_id = 77;
  span.instance_digest = 0xfeedfacecafebeefull;
  span.payload_bytes = 4096;
  span.phase_ns[static_cast<std::size_t>(obs::Phase::kDecode)] = 1200;
  span.phase_ns[static_cast<std::size_t>(obs::Phase::kGf2Rank)] = 88000;
  span.phase_ns[static_cast<std::size_t>(obs::Phase::kVerify)] = 310;

  const auto body = body_of(encode_stats_response_frame(7, obs::Snapshot{}, {span}));
  const StatsReply reply = decode_stats_response_body(body.data(), body.size());
  ASSERT_EQ(reply.spans.size(), 1u);
  EXPECT_EQ(reply.version, 2u);
  EXPECT_EQ(reply.spans[0].instance_digest, 0xfeedfacecafebeefull);
  EXPECT_EQ(reply.spans[0].payload_bytes, 4096u);
  EXPECT_EQ(reply.spans[0].phase_ns, span.phase_ns);  // sparse encoding is lossless
}

TEST(StatsResponseCodec, DecoderAcceptsVersion1SpansWithoutTail) {
  // A v1 peer's span rows stop after response_ns. Synthesise one by
  // rewriting the version field and stripping the (empty) v2 tail:
  // u64 digest + u32 payload + u8 phase count = 13 bytes at the body end.
  obs::TraceSpan span;
  span.request_id = 5;
  span.mode = 2;
  span.response_ns = 150;
  auto body = body_of(encode_stats_response_frame(3, obs::Snapshot{}, {span}));
  body[9] = 1;  // u32 version sits after type + token, little-endian
  ASSERT_GE(body.size(), 13u);
  body.resize(body.size() - 13);

  const StatsReply reply = decode_stats_response_body(body.data(), body.size());
  EXPECT_EQ(reply.version, 1u);
  ASSERT_EQ(reply.spans.size(), 1u);
  EXPECT_EQ(reply.spans[0].request_id, 5u);
  EXPECT_EQ(reply.spans[0].response_ns, 150u);
  EXPECT_EQ(reply.spans[0].instance_digest, 0u);  // tail fields default
  EXPECT_EQ(reply.spans[0].payload_bytes, 0u);
  for (const auto ns : reply.spans[0].phase_ns) EXPECT_EQ(ns, 0u);
}

TEST(StatsResponseCodec, OutOfRangeSpanPhaseIndexThrowsProtocol) {
  obs::TraceSpan span;
  span.phase_ns[static_cast<std::size_t>(obs::Phase::kDecode)] = 5;
  auto body = body_of(encode_stats_response_frame(1, obs::Snapshot{}, {span}));
  // The single sparse phase entry ends the body: u8 index + u64 value.
  body[body.size() - 9] = static_cast<std::uint8_t>(obs::kNumPhases);
  EXPECT_THROW(
      {
        try {
          decode_stats_response_body(body.data(), body.size());
        } catch (const NetError& e) {
          EXPECT_EQ(e.code(), NetErrc::kProtocol);
          throw;
        }
      },
      NetError);
}

TEST(StatsResponseCodec, EmptySnapshotRoundTrips) {
  const auto body = body_of(encode_stats_response_frame(0, obs::Snapshot{}, {}));
  const StatsReply reply = decode_stats_response_body(body.data(), body.size());
  EXPECT_TRUE(reply.snapshot.counters.empty());
  EXPECT_TRUE(reply.snapshot.gauges.empty());
  EXPECT_TRUE(reply.snapshot.histograms.empty());
}

TEST(StatsResponseCodec, TruncationAtEveryPrefixThrowsProtocol) {
  const auto body = body_of(encode_stats_response_frame(9, sample_snapshot(), {}));
  for (std::size_t cut = 0; cut < body.size(); ++cut) {
    EXPECT_THROW(
        {
          try {
            decode_stats_response_body(body.data(), cut);
          } catch (const NetError& e) {
            EXPECT_EQ(e.code(), NetErrc::kProtocol);
            throw;
          }
        },
        NetError)
        << "prefix of " << cut << " bytes decoded without error";
  }
}

TEST(StatsResponseCodec, WrongTypeOrVersionThrowsProtocol) {
  auto body = body_of(encode_stats_response_frame(9, obs::Snapshot{}, {}));
  auto wrong_type = body;
  wrong_type[0] = static_cast<std::uint8_t>(FrameType::kResponse);
  EXPECT_THROW(decode_stats_response_body(wrong_type.data(), wrong_type.size()), NetError);
  auto wrong_version = body;
  wrong_version[9] = 0xee;  // u32 version sits after type + token
  EXPECT_THROW(decode_stats_response_body(wrong_version.data(), wrong_version.size()),
               NetError);
}

}  // namespace
}  // namespace ncpm::net
