// ncpm-rpc v1 frame codec: encode -> decode round-trips for every frame
// shape the protocol defines, plus the framing-level reader over a real
// socket pair and the hello exchange.

#include "net/frame.hpp"

#include <gtest/gtest.h>

#include <sys/socket.h>

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "gen/generators.hpp"
#include "gen/io_binary.hpp"

namespace ncpm::net {
namespace {

core::Instance sample_instance(std::uint64_t seed) {
  gen::SolvableConfig cfg;
  cfg.num_applicants = 24;
  cfg.num_posts = 60;
  cfg.contention = 2.0;
  cfg.seed = seed;
  return gen::solvable_strict_instance(cfg);
}

/// Frame bytes -> body bytes (strips and checks the u32 length prefix).
std::vector<std::uint8_t> body_of(const std::string& frame) {
  EXPECT_GE(frame.size(), 4u);
  std::uint32_t size = 0;
  for (int i = 0; i < 4; ++i) {
    size |= static_cast<std::uint32_t>(static_cast<std::uint8_t>(frame[i])) << (8 * i);
  }
  EXPECT_EQ(size, frame.size() - 4);
  return std::vector<std::uint8_t>(frame.begin() + 4, frame.end());
}

TEST(FrameCodec, RequestRoundTrip) {
  const auto inst = sample_instance(7);
  RequestHead head;
  head.request_id = 0x1122334455667788ULL;
  head.mode_raw = static_cast<std::uint8_t>(engine::Mode::kMaxCard);
  head.deadline_ns = 250'000'000;

  const auto body = body_of(encode_request_frame(head, inst));
  const auto decoded_head = decode_request_head(body.data(), body.size());
  EXPECT_EQ(decoded_head.request_id, head.request_id);
  EXPECT_EQ(decoded_head.mode_raw, head.mode_raw);
  EXPECT_EQ(decoded_head.deadline_ns, head.deadline_ns);

  const auto decoded = decode_request_instance(body.data(), body.size());
  // The payload is io-binary's record payload, so byte-equality of the
  // re-encoding is the strongest round-trip statement available.
  EXPECT_EQ(io::encode_instance_payload(decoded), io::encode_instance_payload(inst));
}

TEST(FrameCodec, MatchingResponseRoundTrip) {
  matching::Matching m(5, 9);
  m.match(0, 3);
  m.match(2, 8);
  m.match(4, 1);

  ResponseFrame resp;
  resp.request_id = 42;
  resp.mode_raw = static_cast<std::uint8_t>(engine::Mode::kSolve);
  resp.status = RpcStatus::kOk;
  resp.queue_ns = 1234;
  resp.solve_ns = 56789;
  resp.applicants = 5;
  resp.matching_size = 3;
  resp.matching = m;

  const auto body = body_of(encode_response_frame(resp));
  const auto decoded = decode_response_frame(body.data(), body.size());
  EXPECT_EQ(decoded.request_id, resp.request_id);
  EXPECT_EQ(decoded.mode_raw, resp.mode_raw);
  EXPECT_EQ(decoded.status, RpcStatus::kOk);
  EXPECT_EQ(decoded.queue_ns, resp.queue_ns);
  EXPECT_EQ(decoded.solve_ns, resp.solve_ns);
  EXPECT_EQ(decoded.applicants, 5u);
  EXPECT_EQ(decoded.matching_size, 3u);
  ASSERT_TRUE(decoded.matching.has_value());
  EXPECT_TRUE(*decoded.matching == m);
  EXPECT_FALSE(decoded.count.has_value());
  EXPECT_FALSE(decoded.check.has_value());
}

TEST(FrameCodec, CountResponseRoundTrip) {
  ResponseFrame resp;
  resp.request_id = 7;
  resp.mode_raw = static_cast<std::uint8_t>(engine::Mode::kCount);
  resp.status = RpcStatus::kOk;
  resp.count = 0xdeadbeefcafeULL;

  const auto body = body_of(encode_response_frame(resp));
  const auto decoded = decode_response_frame(body.data(), body.size());
  EXPECT_EQ(decoded.status, RpcStatus::kOk);
  ASSERT_TRUE(decoded.count.has_value());
  EXPECT_EQ(*decoded.count, 0xdeadbeefcafeULL);
}

TEST(FrameCodec, CheckResponseRoundTripBothStatuses) {
  engine::CheckReport report;
  report.applicants = 31;
  report.posts = 77;
  report.strict = true;
  report.admits_popular = true;
  report.size = 29;
  report.count = 12;

  for (const auto status : {RpcStatus::kOk, RpcStatus::kNoSolution}) {
    ResponseFrame resp;
    resp.request_id = 9;
    resp.mode_raw = static_cast<std::uint8_t>(engine::Mode::kCheck);
    resp.status = status;
    resp.check = report;

    const auto body = body_of(encode_response_frame(resp));
    const auto decoded = decode_response_frame(body.data(), body.size());
    EXPECT_EQ(decoded.status, status);
    ASSERT_TRUE(decoded.check.has_value());
    EXPECT_EQ(decoded.check->applicants, report.applicants);
    EXPECT_EQ(decoded.check->posts, report.posts);
    EXPECT_EQ(decoded.check->strict, report.strict);
    EXPECT_EQ(decoded.check->admits_popular, report.admits_popular);
    EXPECT_EQ(decoded.check->size, report.size);
    EXPECT_EQ(decoded.check->count, report.count);
  }
}

TEST(FrameCodec, ErrorResponseRoundTrip) {
  const auto resp = make_error_response(99, kModeUnknown, RpcStatus::kMalformedFrame,
                                        "truncated instance");
  const auto body = body_of(encode_response_frame(resp));
  const auto decoded = decode_response_frame(body.data(), body.size());
  EXPECT_EQ(decoded.request_id, 99u);
  EXPECT_EQ(decoded.mode_raw, kModeUnknown);
  EXPECT_EQ(decoded.status, RpcStatus::kMalformedFrame);
  EXPECT_EQ(decoded.error, "truncated instance");
  EXPECT_FALSE(decoded.mode().has_value());
}

TEST(FrameCodec, RejectsWrongFrameType) {
  const auto inst = sample_instance(3);
  RequestHead head;
  head.request_id = 1;
  head.mode_raw = 0;
  auto body = body_of(encode_request_frame(head, inst));
  EXPECT_THROW(decode_response_frame(body.data(), body.size()), NetError);
  body[0] = static_cast<std::uint8_t>(FrameType::kResponse);
  EXPECT_THROW(decode_request_head(body.data(), body.size()), NetError);
}

TEST(FrameCodec, RejectsTrailingBytes) {
  ResponseFrame resp;
  resp.request_id = 1;
  resp.mode_raw = static_cast<std::uint8_t>(engine::Mode::kCount);
  resp.status = RpcStatus::kOk;
  resp.count = 5;
  auto body = body_of(encode_response_frame(resp));
  body.push_back(0);
  EXPECT_THROW(decode_response_frame(body.data(), body.size()), NetError);
}

/// Framing over a real socket: hello both ways, then frames delimited by
/// their length prefixes, then clean EOF.
TEST(FrameCodec, SocketFramingAndHello) {
  int fds[2] = {-1, -1};
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  Socket a(fds[0]);
  Socket b(fds[1]);

  send_hello(a);
  EXPECT_TRUE(expect_hello(b));

  const auto inst = sample_instance(11);
  RequestHead head;
  head.request_id = 5;
  head.mode_raw = 0;
  const auto frame = encode_request_frame(head, inst);
  a.send_all(frame.data(), frame.size());
  a.send_all(frame.data(), frame.size());
  a.close();

  std::vector<std::uint8_t> body;
  for (int i = 0; i < 2; ++i) {
    ASSERT_TRUE(read_frame_body(b, body));
    EXPECT_EQ(body.size(), frame.size() - 4);
    EXPECT_EQ(decode_request_head(body.data(), body.size()).request_id, 5u);
  }
  EXPECT_FALSE(read_frame_body(b, body));  // clean EOF at a frame boundary
}

TEST(FrameCodec, SocketRejectsBadHelloAndOversizedFrame) {
  {
    int fds[2] = {-1, -1};
    ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
    Socket a(fds[0]);
    Socket b(fds[1]);
    const char junk[12] = "NOTNCPMRPC!";
    a.send_all(junk, sizeof(junk));
    EXPECT_THROW(expect_hello(b), NetError);
  }
  {
    int fds[2] = {-1, -1};
    ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
    Socket a(fds[0]);
    Socket b(fds[1]);
    const std::uint8_t oversized[4] = {0xff, 0xff, 0xff, 0xff};  // > kMaxFrameBody
    a.send_all(oversized, sizeof(oversized));
    std::vector<std::uint8_t> body;
    EXPECT_THROW(read_frame_body(b, body), NetError);
  }
  {
    int fds[2] = {-1, -1};
    ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
    Socket a(fds[0]);
    Socket b(fds[1]);
    const std::uint8_t truncated[6] = {32, 0, 0, 0, 1, 2};  // promises 32, sends 2
    a.send_all(truncated, sizeof(truncated));
    a.close();
    std::vector<std::uint8_t> body;
    EXPECT_THROW(read_frame_body(b, body), NetError);  // EOF mid-frame
  }
}

}  // namespace
}  // namespace ncpm::net
