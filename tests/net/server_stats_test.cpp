// Observability integration over real sockets, parameterized over both
// connection cores: the stats frame answers inline with a coherent
// registry snapshot, concurrent scrapes during a pipelined submit storm
// only ever see monotone counters and a consistent quiesce, trace spans
// are sampled and retrievable, the optional HTTP /metrics endpoint speaks
// Prometheus text, and --log-json lifecycle events reach the sink.

#include "net/server.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "gen/generators.hpp"
#include "net/client.hpp"
#include "net/socket.hpp"
#include "net/stats_frame.hpp"
#include "obs/registry.hpp"
#include "obs/trace.hpp"

namespace ncpm::net {
namespace {

using engine::Mode;

core::Instance small_instance(std::uint64_t seed) {
  gen::SolvableConfig cfg;
  cfg.num_applicants = 16;
  cfg.num_posts = 40;
  cfg.seed = seed;
  return gen::solvable_strict_instance(cfg);
}

/// Sum of a counter across every label set (mode-split engine counters
/// collapse to a total this way).
std::uint64_t counter_sum(const obs::Snapshot& snap, const std::string& name) {
  std::uint64_t total = 0;
  for (const auto& c : snap.counters) {
    if (c.name == name) total += c.value;
  }
  return total;
}

std::int64_t gauge_value(const obs::Snapshot& snap, const std::string& name) {
  for (const auto& g : snap.gauges) {
    if (g.name == name) return g.value;
  }
  ADD_FAILURE() << "gauge " << name << " missing from snapshot";
  return 0;
}

class ServerObsLoopback : public ::testing::TestWithParam<ServerCoreKind> {
 protected:
  ServerConfig make_config() const {
    ServerConfig cfg;
    cfg.core = GetParam();
    cfg.engine = engine::EngineConfig{2, 1};
    return cfg;
  }
};

INSTANTIATE_TEST_SUITE_P(Cores, ServerObsLoopback,
                         ::testing::Values(ServerCoreKind::kThreads, ServerCoreKind::kEpoll),
                         [](const ::testing::TestParamInfo<ServerCoreKind>& info) {
                           return std::string(server_core_name(info.param));
                         });

TEST_P(ServerObsLoopback, StatsFrameReflectsServedTraffic) {
  Server server{make_config()};
  server.start();

  auto client = Client::connect("127.0.0.1", server.port());
  constexpr std::uint64_t kCalls = 6;
  for (std::uint64_t i = 0; i < kCalls; ++i) {
    const auto resp = client.call(Mode::kSolve, small_instance(i));
    ASSERT_EQ(resp.status, RpcStatus::kOk);
  }
  client.ping();

  const StatsReply reply = client.stats();
  EXPECT_EQ(reply.version, kStatsSnapshotVersion);
  EXPECT_GT(reply.snapshot.uptime_ns, 0u);

  const auto& snap = reply.snapshot;
  EXPECT_EQ(counter_sum(snap, "ncpm_server_connections_accepted_total"), 1u);
  EXPECT_EQ(gauge_value(snap, "ncpm_server_connections_active"), 1);
  EXPECT_EQ(counter_sum(snap, "ncpm_server_frames_received_total"), kCalls);
  EXPECT_EQ(counter_sum(snap, "ncpm_server_responses_sent_total"), kCalls);
  EXPECT_EQ(counter_sum(snap, "ncpm_server_pings_answered_total"), 1u);
  // The probe that produced this snapshot counted itself before snapshotting.
  EXPECT_EQ(counter_sum(snap, "ncpm_server_stats_frames_total"), 1u);
  EXPECT_EQ(counter_sum(snap, "ncpm_server_malformed_frames_total"), 0u);

  // Engine series ride the same registry, split by mode label.
  EXPECT_EQ(counter_sum(snap, "ncpm_engine_submitted_total"), kCalls);
  EXPECT_EQ(counter_sum(snap, "ncpm_engine_completed_total"), kCalls);
  bool found_solve_hist = false;
  for (const auto& h : snap.histograms) {
    if (h.name == "ncpm_engine_solve_ns" &&
        h.labels == obs::Labels{{"mode", "solve"}}) {
      found_solve_hist = true;
      EXPECT_EQ(h.count, kCalls);
      EXPECT_GT(h.sum, 0u);
      EXPECT_GT(h.quantile(0.99), 0.0);
    }
  }
  EXPECT_TRUE(found_solve_hist);
  EXPECT_EQ(gauge_value(snap, "ncpm_engine_workers"), 2);
  EXPECT_EQ(gauge_value(snap, "ncpm_engine_outstanding"), 0);

  server.stop();
}

TEST_P(ServerObsLoopback, ConcurrentScrapesStayMonotoneThroughASubmitStorm) {
  ServerConfig cfg = make_config();
  Server server(cfg);
  server.start();

  constexpr int kClients = 3;
  constexpr std::size_t kRequestsPerClient = 40;
  const auto inst = small_instance(7);

  std::atomic<bool> storm_done{false};
  std::vector<std::string> failures(kClients + 1);

  // Scraper: its own connection, back-to-back stats probes for the whole
  // storm. Every counter in every successive snapshot must be monotone.
  std::thread scraper([&] {
    try {
      auto client = Client::connect("127.0.0.1", server.port());
      std::map<std::string, std::uint64_t> last;
      std::uint64_t last_uptime = 0;
      while (!storm_done.load(std::memory_order_acquire)) {
        const StatsReply reply = client.stats();
        ASSERT_GE(reply.snapshot.uptime_ns, last_uptime);
        last_uptime = reply.snapshot.uptime_ns;
        for (const auto& c : reply.snapshot.counters) {
          std::string key = c.name;
          for (const auto& [k, v] : c.labels) key += "|" + k + "=" + v;
          auto [it, inserted] = last.try_emplace(key, c.value);
          if (!inserted) {
            ASSERT_GE(c.value, it->second) << key << " went backwards";
            it->second = c.value;
          }
        }
        // Cross-counter sanity on every single scrape: the engine never
        // completes more than was submitted, the server never answers more
        // than it read.
        const auto& snap = reply.snapshot;
        ASSERT_GE(counter_sum(snap, "ncpm_engine_submitted_total"),
                  counter_sum(snap, "ncpm_engine_completed_total"));
        ASSERT_GE(counter_sum(snap, "ncpm_server_frames_received_total"),
                  counter_sum(snap, "ncpm_server_responses_sent_total"));
      }
    } catch (const std::exception& e) {
      failures[kClients] = e.what();
    }
  });

  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      try {
        std::vector<RpcCall> calls(kRequestsPerClient, RpcCall{Mode::kSolve, inst, 0});
        auto client = Client::connect("127.0.0.1", server.port());
        const auto responses = client.call_batch(calls);
        for (const auto& resp : responses) ASSERT_EQ(resp.status, RpcStatus::kOk);
      } catch (const std::exception& e) {
        failures[static_cast<std::size_t>(c)] = e.what();
      }
    });
  }
  for (auto& t : clients) t.join();

  // Quiesce: all client traffic answered. Scrape until responses_sent
  // settles (the writer increments it just *after* the bytes leave, so the
  // clients can finish a beat ahead of the counter), then everything must
  // add up exactly — submitted == completed, no residue in flight.
  {
    auto client = Client::connect("127.0.0.1", server.port());
    constexpr std::uint64_t kTotal = kClients * kRequestsPerClient;
    obs::Snapshot snap;
    const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(30);
    while (true) {
      snap = client.stats().snapshot;
      const auto sent = counter_sum(snap, "ncpm_server_responses_sent_total");
      ASSERT_LE(sent, kTotal);
      if (sent == kTotal) break;
      ASSERT_LT(std::chrono::steady_clock::now(), deadline)
          << "responses_sent never reached " << kTotal;
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    EXPECT_EQ(counter_sum(snap, "ncpm_server_frames_received_total"), kTotal);
    EXPECT_EQ(counter_sum(snap, "ncpm_engine_submitted_total"), kTotal);
    EXPECT_EQ(counter_sum(snap, "ncpm_engine_submitted_total"),
              counter_sum(snap, "ncpm_engine_completed_total") +
                  counter_sum(snap, "ncpm_engine_rejected_total"));
    EXPECT_EQ(gauge_value(snap, "ncpm_engine_outstanding"), 0);
    EXPECT_EQ(gauge_value(snap, "ncpm_engine_queue_depth"), 0);
  }

  storm_done.store(true, std::memory_order_release);
  scraper.join();
  for (const auto& f : failures) EXPECT_TRUE(f.empty()) << f;
  server.stop();
}

TEST_P(ServerObsLoopback, TraceSpansAreSampledAndRetrievable) {
  ServerConfig cfg = make_config();
  cfg.trace_sample_n = 1;  // sample every request
  Server server(cfg);
  server.start();

  auto client = Client::connect("127.0.0.1", server.port());
  constexpr std::uint64_t kCalls = 5;
  for (std::uint64_t i = 0; i < kCalls; ++i) {
    ASSERT_EQ(client.call(Mode::kSolve, small_instance(i)).status, RpcStatus::kOk);
  }

  const StatsReply reply = client.stats(/*include_traces=*/true);
  ASSERT_EQ(reply.spans.size(), kCalls);
  for (const auto& span : reply.spans) {
    EXPECT_GT(span.request_id, 0u);
    EXPECT_GT(span.conn_id, 0u);
    EXPECT_EQ(span.mode, static_cast<std::uint8_t>(Mode::kSolve));
    EXPECT_EQ(span.status, static_cast<std::uint8_t>(RpcStatus::kOk));
    // Milestones are ordered: accept <= frame read <= dispatch <= solve
    // start <= solve end <= response handed to the writer.
    EXPECT_LE(span.accept_ns, span.frame_read_ns);
    EXPECT_LE(span.frame_read_ns, span.dispatch_ns);
    EXPECT_LE(span.dispatch_ns, span.solve_start_ns);
    EXPECT_LE(span.solve_start_ns, span.solve_end_ns);
    EXPECT_LE(span.solve_end_ns, span.response_ns);
  }

  // Without the flag the reply carries no spans (and stays much smaller).
  EXPECT_TRUE(client.stats().spans.empty());
  server.stop();
}

TEST_P(ServerObsLoopback, TracingOffMeansNoSpansEver) {
  Server server{make_config()};  // trace_sample_n defaults to 0
  server.start();
  auto client = Client::connect("127.0.0.1", server.port());
  ASSERT_EQ(client.call(Mode::kSolve, small_instance(1)).status, RpcStatus::kOk);
  EXPECT_TRUE(client.stats(/*include_traces=*/true).spans.empty());
  server.stop();
}

TEST_P(ServerObsLoopback, HttpMetricsEndpointServesPrometheusText) {
  ServerConfig cfg = make_config();
  cfg.metrics_port = 0;  // ephemeral
  Server server(cfg);
  server.start();
  ASSERT_GT(server.metrics_port(), 0);
  ASSERT_NE(server.metrics_port(), server.port());

  auto client = Client::connect("127.0.0.1", server.port());
  ASSERT_EQ(client.call(Mode::kSolve, small_instance(3)).status, RpcStatus::kOk);

  const auto http_get = [&](const std::string& target) {
    Socket sock =
        Socket::connect_to("127.0.0.1", server.metrics_port(), std::chrono::seconds(5));
    const std::string req = "GET " + target + " HTTP/1.0\r\n\r\n";
    sock.send_all(req.data(), req.size());
    std::string response;
    char buf[4096];
    while (true) {
      const auto n = sock.recv_some(buf, sizeof(buf));
      if (n == 0) break;  // blocking socket: only EOF stops the read
      if (n > 0) response.append(buf, static_cast<std::size_t>(n));
    }
    return response;
  };

  const std::string ok = http_get("/metrics");
  EXPECT_EQ(ok.rfind("HTTP/1.0 200 OK\r\n", 0), 0u) << ok.substr(0, 120);
  EXPECT_NE(ok.find("Content-Type: text/plain; version=0.0.4"), std::string::npos);
  const auto body_at = ok.find("\r\n\r\n");
  ASSERT_NE(body_at, std::string::npos);
  const std::string body = ok.substr(body_at + 4);
  EXPECT_NE(body.find("# TYPE ncpm_server_responses_sent_total counter"),
            std::string::npos);
  EXPECT_NE(body.find("ncpm_server_responses_sent_total 1\n"), std::string::npos);
  EXPECT_NE(body.find("# TYPE ncpm_engine_solve_ns histogram"), std::string::npos);
  EXPECT_NE(body.find("ncpm_engine_solve_ns_count{mode=\"solve\"} 1\n"),
            std::string::npos);

  // Anything but GET /metrics is a 404; the rpc port stays untouched.
  const std::string missing = http_get("/other");
  EXPECT_EQ(missing.rfind("HTTP/1.0 404 Not Found\r\n", 0), 0u);

  EXPECT_EQ(client.call(Mode::kSolve, small_instance(4)).status, RpcStatus::kOk);
  server.stop();
  EXPECT_FALSE(server.running());
}

TEST_P(ServerObsLoopback, JsonLogCapturesLifecycleEvents) {
  ServerConfig cfg = make_config();
  cfg.log_json = true;
  std::mutex mu;
  std::vector<std::string> lines;
  cfg.log_sink = [&](std::string_view line) {
    std::lock_guard<std::mutex> lock(mu);
    lines.emplace_back(line);
  };
  Server server(cfg);
  server.start();
  {
    auto client = Client::connect("127.0.0.1", server.port());
    ASSERT_EQ(client.call(Mode::kSolve, small_instance(2)).status, RpcStatus::kOk);
  }
  server.stop();

  std::lock_guard<std::mutex> lock(mu);
  const auto has_event = [&](const std::string& name) {
    const std::string needle = "\"event\":\"" + name + "\"";
    return std::any_of(lines.begin(), lines.end(), [&](const std::string& line) {
      return line.find(needle) != std::string::npos;
    });
  };
  EXPECT_TRUE(has_event("server_start"));
  EXPECT_TRUE(has_event("conn_open"));
  EXPECT_TRUE(has_event("conn_close"));
  EXPECT_TRUE(has_event("drain_begin"));
  EXPECT_TRUE(has_event("drain_end"));
  for (const auto& line : lines) {
    EXPECT_EQ(line.front(), '{');
    EXPECT_EQ(line.back(), '\n');
    EXPECT_NE(line.find("\"ts_ns\":"), std::string::npos);
  }
}

TEST_P(ServerObsLoopback, ServerStatsStructMirrorsTheRegistry) {
  Server server{make_config()};
  server.start();
  auto client = Client::connect("127.0.0.1", server.port());
  ASSERT_EQ(client.call(Mode::kSolve, small_instance(9)).status, RpcStatus::kOk);
  client.ping();
  const auto snap = client.stats().snapshot;

  const ServerStats s = server.stats();
  EXPECT_EQ(s.connections_accepted,
            counter_sum(snap, "ncpm_server_connections_accepted_total"));
  EXPECT_EQ(s.frames_received, counter_sum(snap, "ncpm_server_frames_received_total"));
  EXPECT_EQ(s.responses_sent, counter_sum(snap, "ncpm_server_responses_sent_total"));
  EXPECT_EQ(s.pings_answered, counter_sum(snap, "ncpm_server_pings_answered_total"));
  EXPECT_EQ(s.stats_frames_answered, counter_sum(snap, "ncpm_server_stats_frames_total"));
  server.stop();
}

}  // namespace
}  // namespace ncpm::net
