// Observability integration over real sockets, parameterized over both
// connection cores: the stats frame answers inline with a coherent
// registry snapshot, concurrent scrapes during a pipelined submit storm
// only ever see monotone counters and a consistent quiesce, trace spans
// are sampled and retrievable, the optional HTTP /metrics endpoint speaks
// Prometheus text, and --log-json lifecycle events reach the sink.

#include "net/server.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <future>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "gen/generators.hpp"
#include "net/client.hpp"
#include "net/socket.hpp"
#include "net/stats_frame.hpp"
#include "obs/profiler.hpp"
#include "obs/registry.hpp"
#include "obs/trace.hpp"

namespace ncpm::net {
namespace {

using engine::Mode;

core::Instance small_instance(std::uint64_t seed) {
  gen::SolvableConfig cfg;
  cfg.num_applicants = 16;
  cfg.num_posts = 40;
  cfg.seed = seed;
  return gen::solvable_strict_instance(cfg);
}

/// Sum of a counter across every label set (mode-split engine counters
/// collapse to a total this way).
std::uint64_t counter_sum(const obs::Snapshot& snap, const std::string& name) {
  std::uint64_t total = 0;
  for (const auto& c : snap.counters) {
    if (c.name == name) total += c.value;
  }
  return total;
}

/// One HTTP/1.0 exchange against the metrics listener; empty string when
/// the connection fails (the listener is gone).
std::string http_exchange(std::uint16_t port, const std::string& method,
                          const std::string& target) {
  try {
    Socket sock = Socket::connect_to("127.0.0.1", port, std::chrono::seconds(5));
    const std::string req = method + " " + target + " HTTP/1.0\r\n\r\n";
    sock.send_all(req.data(), req.size());
    std::string response;
    char buf[4096];
    while (true) {
      const auto n = sock.recv_some(buf, sizeof(buf));
      if (n == 0) break;  // blocking socket: only EOF stops the read
      if (n > 0) response.append(buf, static_cast<std::size_t>(n));
    }
    return response;
  } catch (const std::exception&) {
    return {};
  }
}

std::int64_t gauge_value(const obs::Snapshot& snap, const std::string& name) {
  for (const auto& g : snap.gauges) {
    if (g.name == name) return g.value;
  }
  ADD_FAILURE() << "gauge " << name << " missing from snapshot";
  return 0;
}

class ServerObsLoopback : public ::testing::TestWithParam<ServerCoreKind> {
 protected:
  ServerConfig make_config() const {
    ServerConfig cfg;
    cfg.core = GetParam();
    cfg.engine = engine::EngineConfig{2, 1};
    return cfg;
  }
};

INSTANTIATE_TEST_SUITE_P(Cores, ServerObsLoopback,
                         ::testing::Values(ServerCoreKind::kThreads, ServerCoreKind::kEpoll),
                         [](const ::testing::TestParamInfo<ServerCoreKind>& info) {
                           return std::string(server_core_name(info.param));
                         });

TEST_P(ServerObsLoopback, StatsFrameReflectsServedTraffic) {
  Server server{make_config()};
  server.start();

  auto client = Client::connect("127.0.0.1", server.port());
  constexpr std::uint64_t kCalls = 6;
  for (std::uint64_t i = 0; i < kCalls; ++i) {
    const auto resp = client.call(Mode::kSolve, small_instance(i));
    ASSERT_EQ(resp.status, RpcStatus::kOk);
  }
  client.ping();

  const StatsReply reply = client.stats();
  EXPECT_EQ(reply.version, kStatsSnapshotVersion);
  EXPECT_GT(reply.snapshot.uptime_ns, 0u);

  const auto& snap = reply.snapshot;
  EXPECT_EQ(counter_sum(snap, "ncpm_server_connections_accepted_total"), 1u);
  EXPECT_EQ(gauge_value(snap, "ncpm_server_connections_active"), 1);
  EXPECT_EQ(counter_sum(snap, "ncpm_server_frames_received_total"), kCalls);
  EXPECT_EQ(counter_sum(snap, "ncpm_server_responses_sent_total"), kCalls);
  EXPECT_EQ(counter_sum(snap, "ncpm_server_pings_answered_total"), 1u);
  // The probe that produced this snapshot counted itself before snapshotting.
  EXPECT_EQ(counter_sum(snap, "ncpm_server_stats_frames_total"), 1u);
  EXPECT_EQ(counter_sum(snap, "ncpm_server_malformed_frames_total"), 0u);

  // Engine series ride the same registry, split by mode label.
  EXPECT_EQ(counter_sum(snap, "ncpm_engine_submitted_total"), kCalls);
  EXPECT_EQ(counter_sum(snap, "ncpm_engine_completed_total"), kCalls);
  bool found_solve_hist = false;
  for (const auto& h : snap.histograms) {
    if (h.name == "ncpm_engine_solve_ns" &&
        h.labels == obs::Labels{{"mode", "solve"}}) {
      found_solve_hist = true;
      EXPECT_EQ(h.count, kCalls);
      EXPECT_GT(h.sum, 0u);
      EXPECT_GT(h.quantile(0.99), 0.0);
    }
  }
  EXPECT_TRUE(found_solve_hist);
  EXPECT_EQ(gauge_value(snap, "ncpm_engine_workers"), 2);
  EXPECT_EQ(gauge_value(snap, "ncpm_engine_outstanding"), 0);

  server.stop();
}

TEST_P(ServerObsLoopback, ConcurrentScrapesStayMonotoneThroughASubmitStorm) {
  ServerConfig cfg = make_config();
  Server server(cfg);
  server.start();

  constexpr int kClients = 3;
  constexpr std::size_t kRequestsPerClient = 40;
  const auto inst = small_instance(7);

  std::atomic<bool> storm_done{false};
  std::vector<std::string> failures(kClients + 1);

  // Scraper: its own connection, back-to-back stats probes for the whole
  // storm. Every counter in every successive snapshot must be monotone.
  std::thread scraper([&] {
    try {
      auto client = Client::connect("127.0.0.1", server.port());
      std::map<std::string, std::uint64_t> last;
      std::uint64_t last_uptime = 0;
      while (!storm_done.load(std::memory_order_acquire)) {
        const StatsReply reply = client.stats();
        ASSERT_GE(reply.snapshot.uptime_ns, last_uptime);
        last_uptime = reply.snapshot.uptime_ns;
        for (const auto& c : reply.snapshot.counters) {
          std::string key = c.name;
          for (const auto& [k, v] : c.labels) key += "|" + k + "=" + v;
          auto [it, inserted] = last.try_emplace(key, c.value);
          if (!inserted) {
            ASSERT_GE(c.value, it->second) << key << " went backwards";
            it->second = c.value;
          }
        }
        // Cross-counter sanity on every single scrape: the engine never
        // completes more than was submitted, the server never answers more
        // than it read.
        const auto& snap = reply.snapshot;
        ASSERT_GE(counter_sum(snap, "ncpm_engine_submitted_total"),
                  counter_sum(snap, "ncpm_engine_completed_total"));
        ASSERT_GE(counter_sum(snap, "ncpm_server_frames_received_total"),
                  counter_sum(snap, "ncpm_server_responses_sent_total"));
      }
    } catch (const std::exception& e) {
      failures[kClients] = e.what();
    }
  });

  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      try {
        std::vector<RpcCall> calls(kRequestsPerClient, RpcCall{Mode::kSolve, inst, 0});
        auto client = Client::connect("127.0.0.1", server.port());
        const auto responses = client.call_batch(calls);
        for (const auto& resp : responses) ASSERT_EQ(resp.status, RpcStatus::kOk);
      } catch (const std::exception& e) {
        failures[static_cast<std::size_t>(c)] = e.what();
      }
    });
  }
  for (auto& t : clients) t.join();

  // Quiesce: all client traffic answered. Scrape until responses_sent
  // settles (the writer increments it just *after* the bytes leave, so the
  // clients can finish a beat ahead of the counter), then everything must
  // add up exactly — submitted == completed, no residue in flight.
  {
    auto client = Client::connect("127.0.0.1", server.port());
    constexpr std::uint64_t kTotal = kClients * kRequestsPerClient;
    obs::Snapshot snap;
    const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(30);
    while (true) {
      snap = client.stats().snapshot;
      const auto sent = counter_sum(snap, "ncpm_server_responses_sent_total");
      ASSERT_LE(sent, kTotal);
      if (sent == kTotal) break;
      ASSERT_LT(std::chrono::steady_clock::now(), deadline)
          << "responses_sent never reached " << kTotal;
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    EXPECT_EQ(counter_sum(snap, "ncpm_server_frames_received_total"), kTotal);
    EXPECT_EQ(counter_sum(snap, "ncpm_engine_submitted_total"), kTotal);
    EXPECT_EQ(counter_sum(snap, "ncpm_engine_submitted_total"),
              counter_sum(snap, "ncpm_engine_completed_total") +
                  counter_sum(snap, "ncpm_engine_rejected_total"));
    EXPECT_EQ(gauge_value(snap, "ncpm_engine_outstanding"), 0);
    EXPECT_EQ(gauge_value(snap, "ncpm_engine_queue_depth"), 0);
  }

  storm_done.store(true, std::memory_order_release);
  scraper.join();
  for (const auto& f : failures) EXPECT_TRUE(f.empty()) << f;
  server.stop();
}

TEST_P(ServerObsLoopback, TraceSpansAreSampledAndRetrievable) {
  ServerConfig cfg = make_config();
  cfg.trace_sample_n = 1;  // sample every request
  Server server(cfg);
  server.start();

  auto client = Client::connect("127.0.0.1", server.port());
  constexpr std::uint64_t kCalls = 5;
  for (std::uint64_t i = 0; i < kCalls; ++i) {
    ASSERT_EQ(client.call(Mode::kSolve, small_instance(i)).status, RpcStatus::kOk);
  }

  const StatsReply reply = client.stats(/*include_traces=*/true);
  ASSERT_EQ(reply.spans.size(), kCalls);
  for (const auto& span : reply.spans) {
    EXPECT_GT(span.request_id, 0u);
    EXPECT_GT(span.conn_id, 0u);
    EXPECT_EQ(span.mode, static_cast<std::uint8_t>(Mode::kSolve));
    EXPECT_EQ(span.status, static_cast<std::uint8_t>(RpcStatus::kOk));
    // Milestones are ordered: accept <= frame read <= dispatch <= solve
    // start <= solve end <= response handed to the writer.
    EXPECT_LE(span.accept_ns, span.frame_read_ns);
    EXPECT_LE(span.frame_read_ns, span.dispatch_ns);
    EXPECT_LE(span.dispatch_ns, span.solve_start_ns);
    EXPECT_LE(span.solve_start_ns, span.solve_end_ns);
    EXPECT_LE(span.solve_end_ns, span.response_ns);
  }

  // Without the flag the reply carries no spans (and stays much smaller).
  EXPECT_TRUE(client.stats().spans.empty());
  server.stop();
}

TEST_P(ServerObsLoopback, TracingOffMeansNoSpansEver) {
  Server server{make_config()};  // trace_sample_n defaults to 0
  server.start();
  auto client = Client::connect("127.0.0.1", server.port());
  ASSERT_EQ(client.call(Mode::kSolve, small_instance(1)).status, RpcStatus::kOk);
  EXPECT_TRUE(client.stats(/*include_traces=*/true).spans.empty());
  server.stop();
}

TEST_P(ServerObsLoopback, HttpMetricsEndpointServesPrometheusText) {
  ServerConfig cfg = make_config();
  cfg.metrics_port = 0;  // ephemeral
  Server server(cfg);
  server.start();
  ASSERT_GT(server.metrics_port(), 0);
  ASSERT_NE(server.metrics_port(), server.port());

  auto client = Client::connect("127.0.0.1", server.port());
  ASSERT_EQ(client.call(Mode::kSolve, small_instance(3)).status, RpcStatus::kOk);

  const auto http_get = [&](const std::string& target) {
    Socket sock =
        Socket::connect_to("127.0.0.1", server.metrics_port(), std::chrono::seconds(5));
    const std::string req = "GET " + target + " HTTP/1.0\r\n\r\n";
    sock.send_all(req.data(), req.size());
    std::string response;
    char buf[4096];
    while (true) {
      const auto n = sock.recv_some(buf, sizeof(buf));
      if (n == 0) break;  // blocking socket: only EOF stops the read
      if (n > 0) response.append(buf, static_cast<std::size_t>(n));
    }
    return response;
  };

  const std::string ok = http_get("/metrics");
  EXPECT_EQ(ok.rfind("HTTP/1.0 200 OK\r\n", 0), 0u) << ok.substr(0, 120);
  EXPECT_NE(ok.find("Content-Type: text/plain; version=0.0.4"), std::string::npos);
  const auto body_at = ok.find("\r\n\r\n");
  ASSERT_NE(body_at, std::string::npos);
  const std::string body = ok.substr(body_at + 4);
  EXPECT_NE(body.find("# TYPE ncpm_server_responses_sent_total counter"),
            std::string::npos);
  EXPECT_NE(body.find("ncpm_server_responses_sent_total 1\n"), std::string::npos);
  EXPECT_NE(body.find("# TYPE ncpm_engine_solve_ns histogram"), std::string::npos);
  EXPECT_NE(body.find("ncpm_engine_solve_ns_count{mode=\"solve\"} 1\n"),
            std::string::npos);

  // Anything but GET /metrics is a 404; the rpc port stays untouched.
  const std::string missing = http_get("/other");
  EXPECT_EQ(missing.rfind("HTTP/1.0 404 Not Found\r\n", 0), 0u);

  EXPECT_EQ(client.call(Mode::kSolve, small_instance(4)).status, RpcStatus::kOk);
  server.stop();
  EXPECT_FALSE(server.running());
}

TEST_P(ServerObsLoopback, JsonLogCapturesLifecycleEvents) {
  ServerConfig cfg = make_config();
  cfg.log_json = true;
  std::mutex mu;
  std::vector<std::string> lines;
  cfg.log_sink = [&](std::string_view line) {
    std::lock_guard<std::mutex> lock(mu);
    lines.emplace_back(line);
  };
  Server server(cfg);
  server.start();
  {
    auto client = Client::connect("127.0.0.1", server.port());
    ASSERT_EQ(client.call(Mode::kSolve, small_instance(2)).status, RpcStatus::kOk);
  }
  server.stop();

  std::lock_guard<std::mutex> lock(mu);
  const auto has_event = [&](const std::string& name) {
    const std::string needle = "\"event\":\"" + name + "\"";
    return std::any_of(lines.begin(), lines.end(), [&](const std::string& line) {
      return line.find(needle) != std::string::npos;
    });
  };
  EXPECT_TRUE(has_event("server_start"));
  EXPECT_TRUE(has_event("conn_open"));
  EXPECT_TRUE(has_event("conn_close"));
  EXPECT_TRUE(has_event("drain_begin"));
  EXPECT_TRUE(has_event("drain_end"));
  for (const auto& line : lines) {
    EXPECT_EQ(line.front(), '{');
    EXPECT_EQ(line.back(), '\n');
    EXPECT_NE(line.find("\"ts_ns\":"), std::string::npos);
  }
}

TEST_P(ServerObsLoopback, ServerStatsStructMirrorsTheRegistry) {
  Server server{make_config()};
  server.start();
  auto client = Client::connect("127.0.0.1", server.port());
  ASSERT_EQ(client.call(Mode::kSolve, small_instance(9)).status, RpcStatus::kOk);
  client.ping();
  const auto snap = client.stats().snapshot;

  const ServerStats s = server.stats();
  EXPECT_EQ(s.connections_accepted,
            counter_sum(snap, "ncpm_server_connections_accepted_total"));
  EXPECT_EQ(s.frames_received, counter_sum(snap, "ncpm_server_frames_received_total"));
  EXPECT_EQ(s.responses_sent, counter_sum(snap, "ncpm_server_responses_sent_total"));
  EXPECT_EQ(s.pings_answered, counter_sum(snap, "ncpm_server_pings_answered_total"));
  EXPECT_EQ(s.stats_frames_answered, counter_sum(snap, "ncpm_server_stats_frames_total"));
  server.stop();
}

TEST_P(ServerObsLoopback, PhaseHistogramsReconcileWithTheSolveWindow) {
  Server server{make_config()};
  server.start();

  auto client = Client::connect("127.0.0.1", server.port());
  constexpr std::uint64_t kCalls = 8;
  for (std::uint64_t i = 0; i < kCalls; ++i) {
    ASSERT_EQ(client.call(Mode::kSolve, small_instance(i)).status, RpcStatus::kOk);
  }
  const auto snap = client.stats().snapshot;

  // Every ncpm_solve_phase_ns series carries a known phase label, and the
  // exclusive-time discipline guarantees the per-phase total never exceeds
  // the engine's wall-clock solve window. The decode phase is excluded: it
  // is charged by the submitter *before* the solve window opens.
  std::uint64_t phase_total = 0;
  std::uint64_t solve_total = 0;
  std::uint64_t phase_series = 0;
  for (const auto& h : snap.histograms) {
    if (h.name == "ncpm_engine_solve_ns") solve_total += h.sum;
    if (h.name != "ncpm_solve_phase_ns") continue;
    ASSERT_EQ(h.labels.size(), 1u);
    ASSERT_EQ(h.labels[0].first, "phase");
    bool known = false;
    for (std::size_t p = 0; p < obs::kNumPhases; ++p) {
      if (h.labels[0].second == obs::phase_name(p)) known = true;
    }
    EXPECT_TRUE(known) << "unexpected phase label " << h.labels[0].second;
    ++phase_series;
    if (h.labels[0].second != obs::phase_name(obs::Phase::kDecode)) phase_total += h.sum;
  }
  EXPECT_GT(phase_series, 0u) << "no ncpm_solve_phase_ns series in the scrape";
  EXPECT_GT(phase_total, 0u);
  EXPECT_GT(solve_total, 0u);
  EXPECT_LE(phase_total, solve_total);
  server.stop();
}

TEST_P(ServerObsLoopback, SlowRequestCaptureLogsEveryRequestOverTheBound) {
  ServerConfig cfg = make_config();
  cfg.slow_request_ns = 1;  // every served solve qualifies
  std::mutex mu;
  std::vector<std::string> lines;
  cfg.slow_log_sink = [&](std::string_view line) {
    std::lock_guard<std::mutex> lock(mu);
    lines.emplace_back(line);
  };
  Server server(cfg);
  server.start();

  auto client = Client::connect("127.0.0.1", server.port());
  constexpr std::uint64_t kCalls = 4;
  for (std::uint64_t i = 0; i < kCalls; ++i) {
    ASSERT_EQ(client.call(Mode::kSolve, small_instance(i)).status, RpcStatus::kOk);
  }
  const auto snap = client.stats().snapshot;
  EXPECT_EQ(counter_sum(snap, "ncpm_server_slow_requests_total"), kCalls);
  EXPECT_EQ(server.stats().slow_requests, kCalls);
  server.stop();

  std::lock_guard<std::mutex> lock(mu);
  ASSERT_EQ(lines.size(), kCalls);
  for (const auto& line : lines) {
    EXPECT_EQ(line.front(), '{');
    EXPECT_NE(line.find("\"event\":\"slow_request\""), std::string::npos) << line;
    EXPECT_NE(line.find("\"mode\":\"solve\""), std::string::npos) << line;
    EXPECT_NE(line.find("\"status\":\"ok\""), std::string::npos) << line;
    EXPECT_NE(line.find("\"solve_ns\":"), std::string::npos) << line;
    EXPECT_NE(line.find("\"queue_ns\":"), std::string::npos) << line;
    EXPECT_NE(line.find("\"payload_bytes\":"), std::string::npos) << line;
    EXPECT_NE(line.find("\"simd\":"), std::string::npos) << line;
    // The digest identifies the instance for offline repro; a served solve
    // always has a payload, so it is never the zero sentinel.
    EXPECT_NE(line.find("\"instance_digest\":"), std::string::npos) << line;
    EXPECT_EQ(line.find("\"instance_digest\":\"0000000000000000\""), std::string::npos)
        << line;
    // The full fixed-schema phase breakdown rides every capture.
    for (std::size_t p = 0; p < obs::kNumPhases; ++p) {
      EXPECT_NE(line.find("\"" + std::string(obs::phase_name(p)) + "_ns\":"),
                std::string::npos)
          << line;
    }
  }
}

TEST_P(ServerObsLoopback, SlowRequestCaptureOffByDefault) {
  ServerConfig cfg = make_config();
  std::atomic<int> captured{0};
  cfg.slow_log_sink = [&](std::string_view) { captured.fetch_add(1); };
  Server server(cfg);  // slow_request_ns defaults to 0: capture disabled
  server.start();
  auto client = Client::connect("127.0.0.1", server.port());
  ASSERT_EQ(client.call(Mode::kSolve, small_instance(1)).status, RpcStatus::kOk);
  EXPECT_EQ(counter_sum(client.stats().snapshot, "ncpm_server_slow_requests_total"), 0u);
  EXPECT_EQ(server.stats().slow_requests, 0u);
  server.stop();
  EXPECT_EQ(captured.load(), 0);
}

TEST_P(ServerObsLoopback, HealthAndReadinessProbesTrackTheServerLifecycle) {
  ServerConfig cfg = make_config();
  cfg.metrics_port = 0;
  cfg.engine = engine::EngineConfig{1, 1};  // one worker: queued work piles up
  cfg.max_in_flight_global = 2;
  Server server(cfg);
  server.start();
  const auto port = server.metrics_port();
  ASSERT_GT(port, 0);

  // Fresh server: alive and ready.
  EXPECT_EQ(http_exchange(port, "GET", "/healthz").rfind("HTTP/1.0 200 OK\r\n", 0), 0u);
  EXPECT_EQ(http_exchange(port, "GET", "/readyz").rfind("HTTP/1.0 200 OK\r\n", 0), 0u);

  // Overload: park enough work on the engine that outstanding stays at or
  // above the admission cap while we probe; readyz must report 503 (and
  // healthz must keep reporting 200 — the process is alive, just busy).
  gen::SolvableConfig big;
  big.num_applicants = 2000;
  big.num_posts = 4000;
  std::vector<core::Instance> backlog;
  for (std::uint64_t i = 0; i < 16; ++i) {
    big.seed = i + 1;
    backlog.push_back(gen::solvable_strict_instance(big));
  }
  std::vector<std::future<engine::Result>> pending;
  for (auto& inst : backlog) {
    pending.push_back(
        server.engine().submit(engine::Request::popular(Mode::kSolve, std::move(inst))));
  }
  bool saw_unready = false;
  const auto overload_deadline = std::chrono::steady_clock::now() + std::chrono::seconds(30);
  while (!saw_unready && std::chrono::steady_clock::now() < overload_deadline) {
    const std::string readyz = http_exchange(port, "GET", "/readyz");
    if (readyz.rfind("HTTP/1.0 503 Service Unavailable\r\n", 0) == 0) {
      EXPECT_NE(readyz.find("unready\n"), std::string::npos);
      saw_unready = true;
    }
    if (server.engine().outstanding() < cfg.max_in_flight_global) break;  // window closed
  }
  EXPECT_TRUE(saw_unready) << "readyz never reported 503 while overloaded";
  EXPECT_EQ(http_exchange(port, "GET", "/healthz").rfind("HTTP/1.0 200 OK\r\n", 0), 0u);
  for (auto& f : pending) f.get();

  // Back under the cap: ready again.
  EXPECT_EQ(http_exchange(port, "GET", "/readyz").rfind("HTTP/1.0 200 OK\r\n", 0), 0u);

  // Drain: park another backlog, then stop() on a second thread. For the
  // whole drain window the probes stay answerable — healthz 200 (alive),
  // readyz 503 (stopping) — then the listener goes away with the server.
  backlog.clear();
  for (std::uint64_t i = 0; i < 16; ++i) {
    big.seed = 100 + i;
    backlog.push_back(gen::solvable_strict_instance(big));
  }
  for (auto& inst : backlog) {
    pending.push_back(
        server.engine().submit(engine::Request::popular(Mode::kSolve, std::move(inst))));
  }
  std::thread stopper([&] { server.stop(); });
  bool saw_draining = false;
  while (true) {
    const std::string readyz = http_exchange(port, "GET", "/readyz");
    if (readyz.empty()) break;  // metrics listener stopped: drain is over
    if (readyz.rfind("HTTP/1.0 503 Service Unavailable\r\n", 0) == 0) {
      saw_draining = true;
      const std::string healthz = http_exchange(port, "GET", "/healthz");
      if (!healthz.empty()) {
        EXPECT_EQ(healthz.rfind("HTTP/1.0 200 OK\r\n", 0), 0u);
      }
    }
  }
  stopper.join();
  EXPECT_TRUE(saw_draining) << "readyz never reported 503 during the drain window";
  EXPECT_FALSE(server.running());
}

TEST_P(ServerObsLoopback, HeadRequestsGetHeadersOnlyWithTheGetContentLength) {
  ServerConfig cfg = make_config();
  cfg.metrics_port = 0;
  Server server(cfg);
  server.start();
  const auto port = server.metrics_port();

  auto client = Client::connect("127.0.0.1", server.port());
  ASSERT_EQ(client.call(Mode::kSolve, small_instance(5)).status, RpcStatus::kOk);

  const auto split = [](const std::string& response) {
    const auto at = response.find("\r\n\r\n");
    EXPECT_NE(at, std::string::npos) << response.substr(0, 120);
    return std::pair<std::string, std::string>(response.substr(0, at + 4),
                                               response.substr(at + 4));
  };
  const auto content_length = [](const std::string& headers) {
    const auto at = headers.find("Content-Length: ");
    EXPECT_NE(at, std::string::npos) << headers;
    return std::stoul(headers.substr(at + 16));
  };

  // HEAD /metrics: the status line and headers of the GET — including a
  // Content-Length sized for the body GET would send — with no body bytes.
  const auto [get_headers, get_body] = split(http_exchange(port, "GET", "/metrics"));
  EXPECT_EQ(get_headers.rfind("HTTP/1.0 200 OK\r\n", 0), 0u);
  EXPECT_EQ(content_length(get_headers), get_body.size());
  EXPECT_NE(get_body.find("ncpm_engine_completed_total"), std::string::npos);

  const auto [head_headers, head_body] = split(http_exchange(port, "HEAD", "/metrics"));
  EXPECT_EQ(head_headers.rfind("HTTP/1.0 200 OK\r\n", 0), 0u);
  EXPECT_TRUE(head_body.empty()) << "HEAD carried " << head_body.size() << " body bytes";
  EXPECT_GT(content_length(head_headers), 0u);
  EXPECT_NE(head_headers.find("Content-Type: text/plain; version=0.0.4"),
            std::string::npos);

  // HEAD works on the probe paths too.
  const auto [hh, hb] = split(http_exchange(port, "HEAD", "/healthz"));
  EXPECT_EQ(hh.rfind("HTTP/1.0 200 OK\r\n", 0), 0u);
  EXPECT_EQ(content_length(hh), std::string("ok\n").size());
  EXPECT_TRUE(hb.empty());
  const auto [rh, rb] = split(http_exchange(port, "HEAD", "/readyz"));
  EXPECT_EQ(rh.rfind("HTTP/1.0 200 OK\r\n", 0), 0u);
  EXPECT_EQ(content_length(rh), std::string("ready\n").size());
  EXPECT_TRUE(rb.empty());
  const auto [gh, gb] = split(http_exchange(port, "GET", "/healthz"));
  EXPECT_EQ(gh.rfind("HTTP/1.0 200 OK\r\n", 0), 0u);
  EXPECT_EQ(gb, "ok\n");

  // 404s still carry an exact Content-Length (zero body).
  const auto [nh, nb] = split(http_exchange(port, "GET", "/nope"));
  EXPECT_EQ(nh.rfind("HTTP/1.0 404 Not Found\r\n", 0), 0u);
  EXPECT_EQ(content_length(nh), 0u);
  EXPECT_TRUE(nb.empty());
  const auto [ph, pb] = split(http_exchange(port, "POST", "/metrics"));
  EXPECT_EQ(ph.rfind("HTTP/1.0 404 Not Found\r\n", 0), 0u);
  EXPECT_TRUE(pb.empty());

  server.stop();
}

}  // namespace
}  // namespace ncpm::net
