// Parallel prefix sums and compaction: correctness against serial scans,
// degenerate sizes, and executor-width independence.

#include "pram/scan.hpp"

#include <gtest/gtest.h>

#include <numeric>
#include <random>

#include "pram/counters.hpp"
#include "pram/executor.hpp"
#include "pram/parallel.hpp"

namespace ncpm::pram {
namespace {

TEST(Scan, ExclusiveMatchesSerialDefinition) {
  const std::vector<std::int64_t> in{3, 1, 4, 1, 5, 9, 2, 6};
  std::vector<std::int64_t> out(in.size());
  const auto total = exclusive_scan<std::int64_t>(in, out);
  EXPECT_EQ(total, 31);
  std::int64_t acc = 0;
  for (std::size_t i = 0; i < in.size(); ++i) {
    EXPECT_EQ(out[i], acc) << "index " << i;
    acc += in[i];
  }
}

TEST(Scan, InclusiveMatchesSerialDefinition) {
  const std::vector<std::int64_t> in{2, 7, 1, 8, 2, 8};
  std::vector<std::int64_t> out(in.size());
  const auto total = inclusive_scan<std::int64_t>(in, out);
  EXPECT_EQ(total, 28);
  std::int64_t acc = 0;
  for (std::size_t i = 0; i < in.size(); ++i) {
    acc += in[i];
    EXPECT_EQ(out[i], acc);
  }
}

TEST(Scan, EmptyAndSingleton) {
  std::vector<std::int64_t> empty;
  std::vector<std::int64_t> out;
  EXPECT_EQ(exclusive_scan<std::int64_t>(empty, out), 0);

  const std::vector<std::int64_t> one{42};
  std::vector<std::int64_t> out1(1);
  EXPECT_EQ(exclusive_scan<std::int64_t>(one, out1), 42);
  EXPECT_EQ(out1[0], 0);
}

TEST(Scan, LargeRandomAgreesWithStdPartialSum) {
  std::mt19937_64 rng(7);
  std::vector<std::int64_t> in(100003);
  for (auto& v : in) v = static_cast<std::int64_t>(rng() % 100);
  std::vector<std::int64_t> expected(in.size());
  std::exclusive_scan(in.begin(), in.end(), expected.begin(), std::int64_t{0});
  std::vector<std::int64_t> out(in.size());
  exclusive_scan<std::int64_t>(in, out);
  EXPECT_EQ(out, expected);
}

TEST(Scan, ResultIndependentOfExecutorWidth) {
  std::mt19937_64 rng(11);
  std::vector<std::int64_t> in(5000);
  for (auto& v : in) v = static_cast<std::int64_t>(rng() % 1000);
  std::vector<std::int64_t> ref(in.size());
  SerialExecutor serial;
  exclusive_scan<std::int64_t>(in, ref, nullptr, serial);
  for (const int lanes : {2, 3, 8}) {
    Executor ex(lanes);
    std::vector<std::int64_t> out(in.size());
    exclusive_scan<std::int64_t>(in, out, nullptr, ex);
    EXPECT_EQ(out, ref) << "lanes=" << lanes;
  }
}

TEST(Scan, CountersRecordRounds) {
  const std::vector<std::int64_t> in(1000, 1);
  std::vector<std::int64_t> out(in.size());
  NcCounters counters;
  exclusive_scan<std::int64_t>(in, out, &counters);
  EXPECT_GE(counters.rounds, 3u);  // map, block scan, fix-up
  EXPECT_GT(counters.work, 0u);
}

TEST(Compact, IndicesSelectsFlaggedPositions) {
  const std::vector<std::uint8_t> keep{1, 0, 0, 1, 1, 0, 1};
  const auto idx = compact_indices(keep);
  EXPECT_EQ(idx, (std::vector<std::uint32_t>{0, 3, 4, 6}));
}

TEST(Compact, ValuesPreserveOrder) {
  const std::vector<std::int32_t> values{10, 20, 30, 40, 50};
  const std::vector<std::uint8_t> keep{0, 1, 0, 1, 1};
  const auto out = compact<std::int32_t>(values, keep);
  EXPECT_EQ(out, (std::vector<std::int32_t>{20, 40, 50}));
}

TEST(Compact, AllAndNone) {
  const std::vector<std::uint8_t> none(5, 0);
  EXPECT_TRUE(compact_indices(none).empty());
  const std::vector<std::uint8_t> all(5, 1);
  EXPECT_EQ(compact_indices(all).size(), 5u);
}

TEST(ParallelPrimitives, ReduceAnyCount) {
  EXPECT_EQ(parallel_reduce(
                100, std::int64_t{0}, [](std::size_t i) { return static_cast<std::int64_t>(i); },
                [](std::int64_t a, std::int64_t b) { return a + b; }),
            4950);
  EXPECT_TRUE(parallel_any(100, [](std::size_t i) { return i == 57; }));
  EXPECT_FALSE(parallel_any(100, [](std::size_t) { return false; }));
  EXPECT_EQ(parallel_count(100, [](std::size_t i) { return i % 3 == 0; }), 34u);
}

}  // namespace
}  // namespace ncpm::pram
