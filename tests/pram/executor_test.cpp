// The Executor substrate: correctness of the primitives across widths,
// grain schedules, nesting, concurrent dispatch, per-call lane caps, and
// the documented parallel_reduce contract (associative + commutative
// combine — enforced by a debug assertion).

#include "pram/executor.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <numeric>
#include <thread>
#include <vector>

namespace ncpm::pram {
namespace {

TEST(Executor, ParallelForCoversEveryIndexOnce) {
  for (const int lanes : {1, 2, 3, 8}) {
    Executor ex(lanes);
    const std::size_t n = 10'007;  // prime: exercises ragged block edges
    std::vector<std::int32_t> hits(n, 0);
    ex.parallel_for(n, [&](std::size_t i) { ++hits[i]; });
    EXPECT_EQ(std::accumulate(hits.begin(), hits.end(), 0), static_cast<std::int32_t>(n))
        << "lanes=" << lanes;
    for (std::size_t i = 0; i < n; ++i) ASSERT_EQ(hits[i], 1) << "i=" << i;
  }
}

TEST(Executor, GrainScheduleCoversEveryIndexOnce) {
  Executor ex(4);
  for (const std::size_t grain : {std::size_t{1}, std::size_t{7}, std::size_t{2048}}) {
    const std::size_t n = 5'000;
    std::vector<std::int32_t> hits(n, 0);
    ex.parallel_for_grain(n, grain, [&](std::size_t i) { ++hits[i]; });
    for (std::size_t i = 0; i < n; ++i) ASSERT_EQ(hits[i], 1) << "grain=" << grain;
  }
}

TEST(Executor, EmptyAndTinyRoundsRunInline) {
  Executor ex(8);
  bool ran = false;
  ex.parallel_for(0, [&](std::size_t) { ran = true; });
  EXPECT_FALSE(ran);
  std::vector<std::size_t> seen;
  ex.parallel_for(1, [&](std::size_t i) { seen.push_back(i); });  // n==1: inline, no race
  EXPECT_EQ(seen, (std::vector<std::size_t>{0}));
}

TEST(Executor, ReduceMatchesSerialAcrossWidths) {
  const std::size_t n = 40'001;
  std::int64_t expected = 0;
  for (std::size_t i = 0; i < n; ++i) expected += static_cast<std::int64_t>(i * i % 1000);
  for (const int lanes : {1, 2, 5, 8}) {
    Executor ex(lanes);
    const auto got = ex.parallel_reduce(
        n, std::int64_t{0},
        [](std::size_t i) { return static_cast<std::int64_t>(i * i % 1000); },
        [](std::int64_t a, std::int64_t b) { return a + b; });
    EXPECT_EQ(got, expected) << "lanes=" << lanes;
  }
}

TEST(Executor, AnyAndCountAcrossWidths) {
  for (const int lanes : {1, 3, 8}) {
    Executor ex(lanes);
    EXPECT_TRUE(ex.parallel_any(100'000, [](std::size_t i) { return i == 99'999; }));
    EXPECT_FALSE(ex.parallel_any(100'000, [](std::size_t) { return false; }));
    EXPECT_EQ(ex.parallel_count(90'000, [](std::size_t i) { return i % 3 == 0; }), 30'000u);
  }
}

TEST(Executor, NestedCallOnSameExecutorRunsInline) {
  Executor ex(4);
  std::atomic<std::int64_t> total{0};
  // The inner parallel_for must not deadlock waiting for lanes the outer
  // round already occupies; it runs serially inside each body.
  ex.parallel_for(2'000, [&](std::size_t) {
    std::int64_t local = 0;
    ex.parallel_for(10, [&](std::size_t j) { local += static_cast<std::int64_t>(j); });
    total.fetch_add(local, std::memory_order_relaxed);
  });
  EXPECT_EQ(total.load(), 2'000 * 45);
}

TEST(Executor, DistinctExecutorsNest) {
  Executor outer(2);
  Executor inner(2);
  std::atomic<std::int64_t> total{0};
  outer.parallel_for(1'000, [&](std::size_t) {
    total.fetch_add(
        inner.parallel_reduce(
            1'000, std::int64_t{0}, [](std::size_t j) { return static_cast<std::int64_t>(j); },
            [](std::int64_t a, std::int64_t b) { return a + b; }),
        std::memory_order_relaxed);
  });
  EXPECT_EQ(total.load(), std::int64_t{1'000} * (999 * 1'000 / 2));
}

TEST(Executor, ConcurrentDispatchFromManyThreadsIsSerialized) {
  Executor ex(4);
  constexpr int kThreads = 6;
  constexpr std::size_t kN = 20'000;
  std::vector<std::int64_t> sums(kThreads, 0);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&ex, &sums, t] {
      for (int round = 0; round < 5; ++round) {
        sums[static_cast<std::size_t>(t)] += ex.parallel_reduce(
            kN, std::int64_t{0}, [](std::size_t i) { return static_cast<std::int64_t>(i); },
            [](std::int64_t a, std::int64_t b) { return a + b; });
      }
    });
  }
  for (auto& t : threads) t.join();
  const auto expected = std::int64_t{5} * (static_cast<std::int64_t>(kN - 1) * kN / 2);
  for (const auto s : sums) EXPECT_EQ(s, expected);
}

TEST(Executor, ActiveLanesCapsWithoutChangingResults) {
  Executor ex(8);
  EXPECT_EQ(ex.lanes(), 8);
  ex.set_active_lanes(2);
  EXPECT_EQ(ex.active_lanes(), 2);
  const auto capped = ex.parallel_count(50'000, [](std::size_t i) { return i % 7 == 0; });
  ex.set_active_lanes(99);  // clamped to lanes()
  EXPECT_EQ(ex.active_lanes(), 8);
  const auto full = ex.parallel_count(50'000, [](std::size_t i) { return i % 7 == 0; });
  EXPECT_EQ(capped, full);
}

TEST(Executor, ResizeKeepsReferencesValid) {
  Executor& ex = default_executor();
  const int original = ex.lanes();
  set_default_lanes(3);
  EXPECT_EQ(ex.lanes(), 3);  // same object, resized in place
  EXPECT_EQ(ex.parallel_count(10'000, [](std::size_t) { return true; }), 10'000u);
  set_default_lanes(original);
  EXPECT_EQ(ex.lanes(), original);
}

TEST(Executor, SerialExecutorSpawnsNoLanes) {
  SerialExecutor serial;
  EXPECT_EQ(serial.lanes(), 1);
  const auto tid = std::this_thread::get_id();
  bool all_inline = true;
  serial.parallel_for(10'000, [&](std::size_t) {
    if (std::this_thread::get_id() != tid) all_inline = false;
  });
  EXPECT_TRUE(all_inline);
}

// The documented parallel_reduce contract: a non-commutative combine trips
// the debug assertion (and is silently width-dependent in release builds,
// which is exactly why the assertion exists).
TEST(ExecutorDeathTest, NonCommutativeCombineAssertsInDebug) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  Executor ex(2);
  EXPECT_DEBUG_DEATH(
      {
        auto r = ex.parallel_reduce(
            1'000, std::int64_t{0}, [](std::size_t i) { return static_cast<std::int64_t>(i); },
            [](std::int64_t a, std::int64_t b) { return a - b; });  // not commutative
        (void)r;
      },
      "commutative");
}

TEST(ExecutorDeathTest, NonAssociativeCombineAssertsInDebug) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  Executor ex(2);
  EXPECT_DEBUG_DEATH(
      {
        auto r = ex.parallel_reduce(
            1'000, std::int64_t{0}, [](std::size_t i) { return static_cast<std::int64_t>(i + 1); },
            // Absolute difference: commutative, 0 is neutral on positives,
            // but ||1-2|-3| != |1-|2-3||.
            [](std::int64_t a, std::int64_t b) { return a > b ? a - b : b - a; });
        (void)r;
      },
      "associative");
}

}  // namespace
}  // namespace ncpm::pram
