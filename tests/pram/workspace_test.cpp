// The reusable-workspace contract: leases have the requested size, returned
// buffers are recycled, and a warm workspace serves take/return cycles with
// zero heap growth — the property the round engine's zero-allocation
// guarantee is built on.

#include <gtest/gtest.h>

#include <cstdint>
#include <utility>

#include "pram/workspace.hpp"

namespace ncpm::pram {
namespace {

TEST(Workspace, TakeYieldsRequestedSizeAndFill) {
  Workspace ws;
  auto a = ws.take<std::int32_t>(100);
  EXPECT_EQ(a.size(), 100u);
  auto b = ws.take<std::int64_t>(7, std::int64_t{42});
  ASSERT_EQ(b.size(), 7u);
  for (std::size_t i = 0; i < b.size(); ++i) EXPECT_EQ(b[i], 42);
}

TEST(Workspace, WarmReuseDoesNotAllocate) {
  Workspace ws;
  {
    auto a = ws.take<std::int32_t>(1000);
    auto b = ws.take<std::int32_t>(500);
    auto c = ws.take<std::uint8_t>(2000);
    a[0] = 1;
    b[0] = 2;
    c[0] = 3;
  }
  const std::uint64_t warm = ws.heap_allocations();
  for (int round = 0; round < 10; ++round) {
    auto a = ws.take<std::int32_t>(1000);
    auto b = ws.take<std::int32_t>(500);
    auto c = ws.take<std::uint8_t>(2000);
    a[0] = round;
    b[0] = round;
    c[0] = static_cast<std::uint8_t>(round);
  }
  EXPECT_EQ(ws.heap_allocations(), warm);
}

TEST(Workspace, ShrinkingRequestsReuseTheLargeBuffer) {
  Workspace ws;
  { auto a = ws.take<std::int64_t>(4096); a[0] = 0; }
  const std::uint64_t warm = ws.heap_allocations();
  for (std::size_t n = 4096; n > 0; n /= 2) {
    auto a = ws.take<std::int64_t>(n);
    EXPECT_EQ(a.size(), n);
  }
  EXPECT_EQ(ws.heap_allocations(), warm);
}

TEST(Workspace, BestFitPrefersSmallestSufficientBuffer) {
  Workspace ws;
  {
    auto small = ws.take<std::int32_t>(10);
    auto big = ws.take<std::int32_t>(10000);
    small[0] = 1;
    big[0] = 1;
  }
  const std::uint64_t warm = ws.heap_allocations();
  {
    // Asking for 10 must not grow anything, and must leave the 10000-cap
    // buffer available for the concurrent big request.
    auto small_again = ws.take<std::int32_t>(10);
    auto big_again = ws.take<std::int32_t>(10000);
    EXPECT_EQ(small_again.size(), 10u);
    EXPECT_EQ(big_again.size(), 10000u);
  }
  EXPECT_EQ(ws.heap_allocations(), warm);
}

TEST(Workspace, MoveTransfersOwnership) {
  Workspace ws;
  auto a = ws.take<std::int32_t>(64);
  a[63] = 9;
  WsBuffer<std::int32_t> b = std::move(a);
  EXPECT_EQ(b.size(), 64u);
  EXPECT_EQ(b[63], 9);
  WsBuffer<std::int32_t> c;
  c = std::move(b);
  EXPECT_EQ(c.size(), 64u);
  EXPECT_EQ(c[63], 9);
}

TEST(Workspace, GrowthIsCountedExactly) {
  Workspace ws;
  const std::uint64_t before = ws.heap_allocations();
  { auto a = ws.take<std::int32_t>(100); a[0] = 0; }
  EXPECT_GT(ws.heap_allocations(), before);
  const std::uint64_t warm = ws.heap_allocations();
  { auto a = ws.take<std::int32_t>(100); a[0] = 0; }
  EXPECT_EQ(ws.heap_allocations(), warm);
  // Growing the same buffer is a new allocation.
  { auto a = ws.take<std::int32_t>(100000); a[0] = 0; }
  EXPECT_GT(ws.heap_allocations(), warm);
}

TEST(Workspace, CarriesItsExecutor) {
  EXPECT_EQ(&Workspace().exec(), &default_executor());
  Executor ex(2);
  Workspace ws(ex);
  EXPECT_EQ(&ws.exec(), &ex);
  // The fill overload runs its round on the bound executor (smoke: the
  // result is simply correct whatever the width).
  auto buf = ws.take<std::int32_t>(10'000, std::int32_t{7});
  for (std::size_t i = 0; i < buf.size(); ++i) ASSERT_EQ(buf[i], 7);
}

}  // namespace
}  // namespace ncpm::pram
