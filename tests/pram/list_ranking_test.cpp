// Pointer jumping: Wyllie ranking (plain and weighted), functional-graph
// powers, and windowed min — validated against brute-force walks on random
// structures.

#include "pram/list_ranking.hpp"

#include <gtest/gtest.h>

#include <random>

namespace ncpm::pram {
namespace {

TEST(CeilLog2, SmallValues) {
  EXPECT_EQ(ceil_log2(0), 0u);
  EXPECT_EQ(ceil_log2(1), 0u);
  EXPECT_EQ(ceil_log2(2), 1u);
  EXPECT_EQ(ceil_log2(3), 2u);
  EXPECT_EQ(ceil_log2(8), 3u);
  EXPECT_EQ(ceil_log2(9), 4u);
}

TEST(ListRank, SingleChain) {
  // 0 -> 1 -> 2 -> 3 -> 3 (terminal).
  const std::vector<std::int32_t> next{1, 2, 3, 3};
  const auto r = list_rank(next);
  EXPECT_EQ(r.rank, (std::vector<std::int64_t>{3, 2, 1, 0}));
  for (std::size_t v = 0; v < next.size(); ++v) {
    EXPECT_EQ(r.head[v], 3);
    EXPECT_TRUE(r.reaches_terminal[v]);
  }
}

TEST(ListRank, ForestOfChains) {
  // Two chains: 0->1->1 and 2->3->4->4; 5 is its own terminal.
  const std::vector<std::int32_t> next{1, 1, 3, 4, 4, 5};
  const auto r = list_rank(next);
  EXPECT_EQ(r.rank[0], 1);
  EXPECT_EQ(r.head[0], 1);
  EXPECT_EQ(r.rank[2], 2);
  EXPECT_EQ(r.head[2], 4);
  EXPECT_EQ(r.rank[5], 0);
}

TEST(ListRank, CycleVerticesDoNotReachTerminals) {
  // 0 -> 1 -> 2 -> 0 cycle, 3 -> 0 leads into it, 4 terminal.
  const std::vector<std::int32_t> next{1, 2, 0, 0, 4};
  const auto r = list_rank(next);
  EXPECT_FALSE(r.reaches_terminal[0]);
  EXPECT_FALSE(r.reaches_terminal[1]);
  EXPECT_FALSE(r.reaches_terminal[3]);
  EXPECT_TRUE(r.reaches_terminal[4]);
}

TEST(ListRank, RejectsOutOfRangeSuccessor) {
  const std::vector<std::int32_t> bad{1, 7};
  EXPECT_THROW(list_rank(bad), std::out_of_range);
}

TEST(WeightedListRank, SumsSourceWeightsExcludingTerminal) {
  // 0 -> 1 -> 2 -> 2, weights 5, 7, 100 (terminal's weight never counted).
  const std::vector<std::int32_t> next{1, 2, 2};
  const std::vector<std::int64_t> w{5, 7, 100};
  const auto r = weighted_list_rank(next, w);
  EXPECT_EQ(r.rank[0], 12);
  EXPECT_EQ(r.rank[1], 7);
  EXPECT_EQ(r.rank[2], 0);
}

TEST(WeightedListRank, SizeMismatchThrows) {
  const std::vector<std::int32_t> next{0};
  const std::vector<std::int64_t> w{1, 2};
  EXPECT_THROW(weighted_list_rank(next, w), std::invalid_argument);
}

TEST(KthPower, MatchesIteratedApplication) {
  // Functional graph with a 3-cycle and a tail.
  const std::vector<std::int32_t> next{1, 2, 0, 1, 3};
  for (const std::uint64_t k : {1ULL, 2ULL, 3ULL, 5ULL, 16ULL}) {
    const auto p = kth_power(next, k);
    for (std::size_t v = 0; v < next.size(); ++v) {
      std::int32_t u = static_cast<std::int32_t>(v);
      for (std::uint64_t i = 0; i < k; ++i) u = next[static_cast<std::size_t>(u)];
      EXPECT_EQ(p[v], u) << "k=" << k << " v=" << v;
    }
  }
}

TEST(WindowMin, CoversTheWindow) {
  // Cycle 0->1->2->3->0 with keys = ids; window >= 4 sees the whole cycle.
  const std::vector<std::int32_t> next{1, 2, 3, 0};
  const std::vector<std::int64_t> key{0, 1, 2, 3};
  const auto wm = window_min(next, key, 4);
  for (std::size_t v = 0; v < 4; ++v) EXPECT_EQ(wm[v], 0);
}

struct RandomParam {
  std::uint64_t seed;
  std::size_t n;
};

class ListRankingRandom : public ::testing::TestWithParam<RandomParam> {};

TEST_P(ListRankingRandom, AgreesWithBruteForceWalk) {
  const auto [seed, n] = GetParam();
  std::mt19937_64 rng(seed);
  // Random forest-with-cycles: each vertex points to a random vertex (or
  // itself, becoming a terminal).
  std::vector<std::int32_t> next(n);
  for (std::size_t v = 0; v < n; ++v) {
    next[v] = static_cast<std::int32_t>(rng() % n);
  }
  const auto r = list_rank(next);
  for (std::size_t v = 0; v < n; ++v) {
    // Walk at most n steps; if we hit a fixed point the ranking must match.
    std::int32_t u = static_cast<std::int32_t>(v);
    std::int64_t steps = 0;
    bool terminal = false;
    for (std::size_t i = 0; i <= n; ++i) {
      const std::int32_t nx = next[static_cast<std::size_t>(u)];
      if (nx == u) {
        terminal = true;
        break;
      }
      u = nx;
      ++steps;
    }
    EXPECT_EQ(r.reaches_terminal[v] != 0, terminal) << "v=" << v;
    if (terminal) {
      EXPECT_EQ(r.rank[v], steps) << "v=" << v;
      EXPECT_EQ(r.head[v], u) << "v=" << v;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(RandomFunctionalGraphs, ListRankingRandom,
                         ::testing::Values(RandomParam{1, 1}, RandomParam{2, 2},
                                           RandomParam{3, 17}, RandomParam{4, 100},
                                           RandomParam{5, 257}, RandomParam{6, 1024},
                                           RandomParam{7, 4097}));

class KthPowerRandom : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(KthPowerRandom, ImageOfLargePowerIsClosedUnderNext) {
  std::mt19937_64 rng(GetParam());
  const std::size_t n = 200;
  std::vector<std::int32_t> next(n);
  for (std::size_t v = 0; v < n; ++v) next[v] = static_cast<std::int32_t>(rng() % n);
  const std::uint64_t k = std::uint64_t{1} << ceil_log2(n);
  const auto p = kth_power(next, k);
  // Every image vertex lies on a cycle: following `next` from it must return.
  for (std::size_t v = 0; v < n; ++v) {
    std::int32_t u = p[v];
    std::int32_t walker = next[static_cast<std::size_t>(u)];
    bool returned = walker == u;
    for (std::size_t i = 0; i < n && !returned; ++i) {
      walker = next[static_cast<std::size_t>(walker)];
      returned = walker == u;
    }
    EXPECT_TRUE(returned) << "image vertex " << u << " is not on a cycle";
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, KthPowerRandom, ::testing::Values(11, 22, 33, 44));

}  // namespace
}  // namespace ncpm::pram
