// Dispatch-parity suite for the SIMD substrate: every tier of every kernel
// must be byte-identical to the scalar tier, on adversarial lengths (empty,
// single vector, one-past-a-vector, non-multiples of the word count) and
// randomized content. The explicit-tier kernel forms are exercised directly;
// the full-path cases force a tier via force_simd_tier and run the public
// entry points (exclusive_scan, compact_indices, list_rank_into,
// window_min_into, gf2_rank) across executor widths. Tiers the CPU lacks
// clamp to scalar, so the sweep is safe on any machine — on an AVX2 box it
// is a genuine three-way parity check.

#include "pram/simd.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <random>
#include <vector>

#include "linalg/gf2_kernels.hpp"
#include "linalg/gf2_matrix.hpp"
#include "pram/executor.hpp"
#include "pram/list_ranking.hpp"
#include "pram/scan.hpp"
#include "pram/workspace.hpp"

#if defined(__linux__)
#include <sched.h>
#endif

namespace ncpm::pram {
namespace {

/// Pinned-executor constructors pin the calling (test) thread as lane 0;
/// restore this thread's original affinity mask when the test ends so the
/// rest of the binary keeps the full CPU set.
struct AffinityRestorer {
#if defined(__linux__)
  cpu_set_t saved;
  AffinityRestorer() { sched_getaffinity(0, sizeof(saved), &saved); }
  ~AffinityRestorer() { sched_setaffinity(0, sizeof(saved), &saved); }
#endif
};

// Lengths straddling every vector width in play: 32-byte AVX2 vectors hold
// 4x u64 / 8x u32 / 32x u8, so 63/64/65 and 127/128/129 cross both the
// vector boundary and the unroll boundary; 1000 exercises long tails.
const std::vector<std::size_t> kLengths{0, 1, 2, 3, 7, 8, 63, 64, 65, 127, 128, 129, 1000};

std::vector<SimdTier> tiers_to_test() {
  std::vector<SimdTier> tiers{SimdTier::kScalar, SimdTier::kSse2, SimdTier::kAvx2};
  return tiers;
}

template <typename T>
std::vector<T> random_values(std::size_t n, std::mt19937_64& rng) {
  std::vector<T> v(n);
  for (auto& x : v) x = static_cast<T>(rng());
  return v;
}

class SimdKernelParity : public ::testing::TestWithParam<SimdTier> {};

TEST_P(SimdKernelParity, SumsMatchScalar) {
  const SimdTier tier = GetParam();
  std::mt19937_64 rng(42);
  for (const std::size_t n : kLengths) {
    const auto u32 = random_values<std::uint32_t>(n, rng);
    const auto u64 = random_values<std::uint64_t>(n, rng);
    const auto i32 = random_values<std::int32_t>(n, rng);
    const auto i64 = random_values<std::int64_t>(n, rng);
    EXPECT_EQ(simd::sum_u32(tier, u32.data(), n),
              simd::sum_u32(SimdTier::kScalar, u32.data(), n))
        << "n=" << n;
    EXPECT_EQ(simd::sum_u64(tier, u64.data(), n),
              simd::sum_u64(SimdTier::kScalar, u64.data(), n))
        << "n=" << n;
    EXPECT_EQ(simd::sum_i32(tier, i32.data(), n),
              simd::sum_i32(SimdTier::kScalar, i32.data(), n))
        << "n=" << n;
    EXPECT_EQ(simd::sum_i64(tier, i64.data(), n),
              simd::sum_i64(SimdTier::kScalar, i64.data(), n))
        << "n=" << n;
  }
}

TEST_P(SimdKernelParity, ExclusiveScansMatchScalar) {
  const SimdTier tier = GetParam();
  std::mt19937_64 rng(43);
  for (const std::size_t n : kLengths) {
    const auto in32 = random_values<std::uint32_t>(n, rng);
    const auto in64 = random_values<std::int64_t>(n, rng);
    std::vector<std::uint32_t> got32(n), want32(n);
    std::vector<std::int64_t> got64(n), want64(n);
    const std::uint32_t carry32 = static_cast<std::uint32_t>(rng());
    const std::int64_t carry64 = static_cast<std::int64_t>(rng());
    const auto tot32 = simd::exscan_u32(tier, in32.data(), got32.data(), n, carry32);
    const auto ref32 =
        simd::exscan_u32(SimdTier::kScalar, in32.data(), want32.data(), n, carry32);
    const auto tot64 = simd::exscan_i64(tier, in64.data(), got64.data(), n, carry64);
    const auto ref64 =
        simd::exscan_i64(SimdTier::kScalar, in64.data(), want64.data(), n, carry64);
    EXPECT_EQ(tot32, ref32) << "n=" << n;
    EXPECT_EQ(tot64, ref64) << "n=" << n;
    EXPECT_EQ(got32, want32) << "n=" << n;
    EXPECT_EQ(got64, want64) << "n=" << n;
  }
}

TEST_P(SimdKernelParity, MaskToFlagsMatchesScalar) {
  const SimdTier tier = GetParam();
  std::mt19937_64 rng(44);
  for (const std::size_t n : kLengths) {
    std::vector<std::uint8_t> mask(n);
    for (auto& m : mask) m = static_cast<std::uint8_t>(rng() % 3 == 0 ? rng() : 0);
    std::vector<std::uint32_t> got(n, 7), want(n, 9);
    simd::mask_to_flags(tier, mask.data(), got.data(), n);
    simd::mask_to_flags(SimdTier::kScalar, mask.data(), want.data(), n);
    EXPECT_EQ(got, want) << "n=" << n;
  }
}

TEST_P(SimdKernelParity, DoublingRoundsMatchScalar) {
  const SimdTier tier = GetParam();
  std::mt19937_64 rng(45);
  for (const std::size_t n : kLengths) {
    if (n == 0) continue;  // gathers need at least one target
    std::vector<std::int32_t> jump(n);
    std::vector<std::int64_t> val(n);
    for (std::size_t v = 0; v < n; ++v) {
      jump[v] = static_cast<std::int32_t>(rng() % n);
      val[v] = static_cast<std::int64_t>(rng());
    }
    // Run each round over a sub-range too: the blocked callers pass
    // [lo, hi) slices whose gathers reach outside the slice.
    const std::size_t lo = n > 4 ? 2 : 0;
    const std::size_t hi = n;
    std::vector<std::int64_t> nval_got(n, -1), nval_want(n, -1);
    std::vector<std::int32_t> njump_got(n, -1), njump_want(n, -1);
    simd::window_min_round(tier, val.data(), jump.data(), nval_got.data(),
                           njump_got.data(), lo, hi);
    simd::window_min_round(SimdTier::kScalar, val.data(), jump.data(), nval_want.data(),
                           njump_want.data(), lo, hi);
    EXPECT_EQ(nval_got, nval_want) << "n=" << n;
    EXPECT_EQ(njump_got, njump_want) << "n=" << n;

    std::vector<std::int64_t> rank = val;
    std::vector<std::int64_t> nrank_got(n, -1), nrank_want(n, -1);
    std::vector<std::int32_t> nhead_got(n, -1), nhead_want(n, -1);
    simd::list_rank_round(tier, jump.data(), rank.data(), nhead_got.data(),
                          nrank_got.data(), lo, hi);
    simd::list_rank_round(SimdTier::kScalar, jump.data(), rank.data(), nhead_want.data(),
                          nrank_want.data(), lo, hi);
    EXPECT_EQ(nrank_got, nrank_want) << "n=" << n;
    EXPECT_EQ(nhead_got, nhead_want) << "n=" << n;
  }
}

TEST_P(SimdKernelParity, WindowMinRoundTiesKeepFirst) {
  // min(a, b) must keep val[v] on ties (b < a ? b : a), on every tier.
  const SimdTier tier = GetParam();
  const std::size_t n = 16;
  std::vector<std::int64_t> val(n, 5);
  std::vector<std::int32_t> jump(n);
  for (std::size_t v = 0; v < n; ++v) jump[v] = static_cast<std::int32_t>((v + 1) % n);
  std::vector<std::int64_t> nval(n);
  std::vector<std::int32_t> njump(n);
  simd::window_min_round(tier, val.data(), jump.data(), nval.data(), njump.data(), 0, n);
  for (std::size_t v = 0; v < n; ++v) EXPECT_EQ(nval[v], 5);
  // And with negative keys on both sides of the compare.
  for (std::size_t v = 0; v < n; ++v) val[v] = (v % 2 == 0) ? -7 : 7;
  simd::window_min_round(tier, val.data(), jump.data(), nval.data(), njump.data(), 0, n);
  std::vector<std::int64_t> want(n);
  simd::window_min_round(SimdTier::kScalar, val.data(), jump.data(), want.data(),
                         njump.data(), 0, n);
  EXPECT_EQ(nval, want);
}

TEST_P(SimdKernelParity, Gf2RowKernelsMatchScalar) {
  const SimdTier tier = GetParam();
  std::mt19937_64 rng(46);
  for (const std::size_t n : kLengths) {
    const auto src = random_values<std::uint64_t>(n, rng);
    const auto base = random_values<std::uint64_t>(n, rng);
    auto got = base;
    auto want = base;
    linalg::gf2k::row_xor(tier, got.data(), src.data(), n);
    linalg::gf2k::row_xor(SimdTier::kScalar, want.data(), src.data(), n);
    EXPECT_EQ(got, want) << "n=" << n;
    got = base;
    want = base;
    linalg::gf2k::row_or(tier, got.data(), src.data(), n);
    linalg::gf2k::row_or(SimdTier::kScalar, want.data(), src.data(), n);
    EXPECT_EQ(got, want) << "n=" << n;
    EXPECT_EQ(linalg::gf2k::popcount_words(tier, base.data(), n),
              linalg::gf2k::popcount_words(SimdTier::kScalar, base.data(), n))
        << "n=" << n;
    EXPECT_EQ(linalg::gf2k::and_popcount(tier, base.data(), src.data(), n),
              linalg::gf2k::and_popcount(SimdTier::kScalar, base.data(), src.data(), n))
        << "n=" << n;
  }
}

TEST_P(SimdKernelParity, FindPivotMatchesScalar) {
  const SimdTier tier = GetParam();
  std::mt19937_64 rng(47);
  for (const std::size_t rows : kLengths) {
    const std::size_t stride = 3;
    std::vector<std::uint64_t> words(rows * stride);
    // Sparse hits so many probes miss and the "no pivot" path is covered.
    for (auto& w : words) w = (rng() % 8 == 0) ? rng() : 0;
    for (std::size_t word_index = 0; word_index < stride; ++word_index) {
      const std::uint64_t mask = std::uint64_t{1} << (rng() % 64);
      for (const std::size_t begin : {std::size_t{0}, rows / 2}) {
        EXPECT_EQ(
            linalg::gf2k::find_pivot(tier, words.data(), stride, word_index, mask,
                                     begin, rows),
            linalg::gf2k::find_pivot(SimdTier::kScalar, words.data(), stride,
                                     word_index, mask, begin, rows))
            << "rows=" << rows << " word=" << word_index << " begin=" << begin;
      }
    }
  }
}

TEST_P(SimdKernelParity, MaskNonzeroCountMatchesScalar) {
  const SimdTier tier = GetParam();
  std::mt19937_64 rng(48);
  for (const std::size_t n : kLengths) {
    std::vector<std::uint8_t> mask(n);
    for (auto& m : mask) m = static_cast<std::uint8_t>(rng() % 4 == 0 ? 1 + rng() % 255 : 0);
    EXPECT_EQ(linalg::gf2k::mask_nonzero_count(tier, mask.data(), n),
              linalg::gf2k::mask_nonzero_count(SimdTier::kScalar, mask.data(), n))
        << "n=" << n;
  }
}

INSTANTIATE_TEST_SUITE_P(Tiers, SimdKernelParity, ::testing::ValuesIn(tiers_to_test()),
                         [](const auto& info) {
                           return std::string(simd_tier_name(info.param));
                         });

// --------------------------------------------------------------------------
// Full-path parity: force each tier and run the public substrate entry
// points across executor widths; results must match the scalar reference
// byte for byte.

struct ForcedTier {
  explicit ForcedTier(SimdTier tier) { force_simd_tier(tier); }
  ~ForcedTier() { clear_forced_simd_tier(); }
};

TEST(SimdDispatch, TierControls) {
  // Forcing clamps to the detected tier and clearing restores detection.
  const SimdTier detected = detected_simd_tier();
  {
    ForcedTier forced(SimdTier::kScalar);
    EXPECT_EQ(active_simd_tier(), SimdTier::kScalar);
  }
  {
    ForcedTier forced(SimdTier::kAvx2);
    EXPECT_LE(static_cast<int>(active_simd_tier()), static_cast<int>(detected));
  }
  EXPECT_LE(static_cast<int>(active_simd_tier()), static_cast<int>(detected));
}

TEST(SimdDispatch, TierNamesRoundTrip) {
  for (const SimdTier tier :
       {SimdTier::kScalar, SimdTier::kSse2, SimdTier::kAvx2}) {
    const auto parsed = parse_simd_tier(simd_tier_name(tier));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, tier);
  }
  EXPECT_FALSE(parse_simd_tier("avx512").has_value());
  EXPECT_FALSE(parse_simd_tier("").has_value());
}

TEST(SimdDispatch, FullPathsBitExactAcrossTiersAndWidths) {
  std::mt19937_64 rng(49);
  const std::size_t n = 1000;
  std::vector<std::uint32_t> scan_in(n);
  for (auto& v : scan_in) v = static_cast<std::uint32_t>(rng() % 1000);
  std::vector<std::uint8_t> keep(n);
  for (auto& k : keep) k = static_cast<std::uint8_t>(rng() % 2);
  std::vector<std::int32_t> next(n);
  for (std::size_t v = 0; v < n; ++v) {
    // A forest with a few roots: Wyllie terminates and ranks are defined.
    next[v] = v < 3 ? static_cast<std::int32_t>(v)
                    : static_cast<std::int32_t>(rng() % v);
  }
  std::vector<std::int64_t> key(n);
  for (auto& k : key) k = static_cast<std::int64_t>(rng() % 100000) - 50000;

  // Scalar single-lane reference.
  std::vector<std::uint32_t> ref_scan(n);
  std::vector<std::uint32_t> ref_compact;
  std::vector<std::int32_t> ref_head(n);
  std::vector<std::int64_t> ref_rank(n);
  std::vector<std::uint8_t> ref_reach(n);
  std::vector<std::int64_t> ref_win(n);
  std::uint32_t ref_total = 0;
  {
    ForcedTier forced(SimdTier::kScalar);
    Executor ex(1);
    Workspace ws(ex);
    ref_total = exclusive_scan<std::uint32_t>(scan_in, ref_scan, nullptr, ex);
    ref_compact = compact_indices(keep, nullptr, ex);
    list_rank_into(next, {ref_head, ref_rank, ref_reach}, ws);
    window_min_into(next, key, 64, ref_win, ws);
  }

  for (const SimdTier tier : tiers_to_test()) {
    for (const int lanes : {1, 2, 4}) {
      ForcedTier forced(tier);
      Executor ex(lanes);
      Workspace ws(ex);
      std::vector<std::uint32_t> scan_out(n);
      EXPECT_EQ(exclusive_scan<std::uint32_t>(scan_in, scan_out, nullptr, ex), ref_total);
      EXPECT_EQ(scan_out, ref_scan) << simd_tier_name(tier) << " lanes=" << lanes;
      EXPECT_EQ(compact_indices(keep, nullptr, ex), ref_compact)
          << simd_tier_name(tier) << " lanes=" << lanes;
      std::vector<std::int32_t> head(n);
      std::vector<std::int64_t> rank(n);
      std::vector<std::uint8_t> reach(n);
      list_rank_into(next, {head, rank, reach}, ws);
      EXPECT_EQ(head, ref_head) << simd_tier_name(tier) << " lanes=" << lanes;
      EXPECT_EQ(rank, ref_rank) << simd_tier_name(tier) << " lanes=" << lanes;
      EXPECT_EQ(reach, ref_reach) << simd_tier_name(tier) << " lanes=" << lanes;
      std::vector<std::int64_t> win(n);
      window_min_into(next, key, 64, win, ws);
      EXPECT_EQ(win, ref_win) << simd_tier_name(tier) << " lanes=" << lanes;
    }
  }
}

TEST(SimdDispatch, Gf2RankInvariantAcrossTiers) {
  std::mt19937_64 rng(50);
  linalg::BitMatrix m(93, 131);
  for (std::size_t r = 0; r < m.rows(); ++r) {
    for (std::size_t c = 0; c < m.cols(); ++c) {
      if (rng() % 3 == 0) m.set(r, c);
    }
  }
  std::size_t ref_rank = 0;
  std::uint64_t ref_pop = 0;
  {
    ForcedTier forced(SimdTier::kScalar);
    Executor ex(1);
    ref_rank = m.gf2_rank(nullptr, ex);
    ref_pop = m.popcount(ex);
  }
  for (const SimdTier tier : tiers_to_test()) {
    for (const int lanes : {1, 2, 4}) {
      ForcedTier forced(tier);
      Executor ex(lanes);
      EXPECT_EQ(m.gf2_rank(nullptr, ex), ref_rank)
          << simd_tier_name(tier) << " lanes=" << lanes;
      EXPECT_EQ(m.popcount(ex), ref_pop)
          << simd_tier_name(tier) << " lanes=" << lanes;
    }
  }
}

TEST(SimdDispatch, AlignedVectorIsCacheLineAligned) {
  AlignedVector<std::uint64_t> v(17);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(v.data()) % kCacheLineBytes, 0U);
  AlignedVector<std::uint8_t> b(3);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(b.data()) % kCacheLineBytes, 0U);
}

// --------------------------------------------------------------------------
// Affinity plumbing (best-effort pinning: assert the bookkeeping, not the
// kernel's scheduling).

TEST(ExecutorAffinity, ParseCpuList) {
  const auto single = parse_cpu_list("0");
  ASSERT_TRUE(single.has_value());
  EXPECT_EQ(*single, (std::vector<int>{0}));

  const auto mixed = parse_cpu_list("0,2-4,7");
  ASSERT_TRUE(mixed.has_value());
  EXPECT_EQ(*mixed, (std::vector<int>{0, 2, 3, 4, 7}));

  EXPECT_FALSE(parse_cpu_list("").has_value());
  EXPECT_FALSE(parse_cpu_list("0-").has_value());
  EXPECT_FALSE(parse_cpu_list("-3").has_value());
  EXPECT_FALSE(parse_cpu_list("1,,2").has_value());
  EXPECT_FALSE(parse_cpu_list("3-1").has_value());
  EXPECT_FALSE(parse_cpu_list("1,2,").has_value());
  EXPECT_FALSE(parse_cpu_list("a").has_value());
  EXPECT_FALSE(parse_cpu_list("1-2-3").has_value());
}

TEST(ExecutorAffinity, AllowedCpusNonEmpty) {
  const auto cpus = allowed_cpus();
  ASSERT_FALSE(cpus.empty());
  for (const int c : cpus) EXPECT_GE(c, 0);
}

TEST(ExecutorAffinity, UnpinnedByDefault) {
  Executor ex(2);
  EXPECT_FALSE(ex.pinned());
  EXPECT_EQ(ex.lane_cpu(0), -1);
}

TEST(ExecutorAffinity, PinnedExecutorMapsLanesRoundRobin) {
  AffinityRestorer restore;
  ExecutorConfig config;
  config.lanes = 4;
  config.pin_lanes = true;
  config.cpu_set = {0};  // CPU 0 always exists
  Executor ex(config);
#if defined(__linux__)
  EXPECT_TRUE(ex.pinned());
  for (int lane = 0; lane < 4; ++lane) EXPECT_EQ(ex.lane_cpu(lane), 0);
#else
  EXPECT_FALSE(ex.pinned());
#endif
  // Pinned or not, rounds still produce correct results.
  std::vector<std::uint32_t> in(257, 1);
  std::vector<std::uint32_t> out(in.size());
  EXPECT_EQ(exclusive_scan<std::uint32_t>(in, out, nullptr, ex), 257U);
  EXPECT_EQ(out[256], 256U);
}

TEST(ExecutorAffinity, CpuOffsetRotatesAssignment) {
  AffinityRestorer restore;
  ExecutorConfig config;
  config.lanes = 2;
  config.pin_lanes = true;
  config.cpu_set = {0, 0, 0};
  config.cpu_offset = 2;
#if defined(__linux__)
  Executor ex(config);
  EXPECT_EQ(ex.lane_cpu(0), config.cpu_set[2 % 3]);
  EXPECT_EQ(ex.lane_cpu(1), config.cpu_set[(2 + 1) % 3]);
#endif
}

TEST(ExecutorAffinity, ResizeKeepsPinning) {
  AffinityRestorer restore;
  ExecutorConfig config;
  config.lanes = 2;
  config.pin_lanes = true;
  config.cpu_set = {0};
  Executor ex(config);
  ex.resize(3);
#if defined(__linux__)
  EXPECT_TRUE(ex.pinned());
  EXPECT_EQ(ex.lane_cpu(2), 0);
#endif
  std::vector<std::uint32_t> in(64, 2);
  std::vector<std::uint32_t> out(in.size());
  EXPECT_EQ(exclusive_scan<std::uint32_t>(in, out, nullptr, ex), 128U);
}

TEST(ExecutorAffinity, WorkspacePrefaultWarmsPool) {
  Executor ex(2);
  Workspace ws(ex);
  ws.prefault<std::int64_t>(4096);
  const auto before = ws.heap_allocations();
  auto buf = ws.take<std::int64_t>(4096, std::int64_t{1});
  EXPECT_EQ(ws.heap_allocations(), before);  // reuses the prefaulted buffer
  EXPECT_EQ(buf[4095], 1);
}

}  // namespace
}  // namespace ncpm::pram
