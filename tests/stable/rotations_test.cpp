// Sequential rotation machinery (Definitions 7-8, the Algorithm 4 baseline):
// s_M, exposed rotations, elimination, and the Lemma 15 stability guarantee.

#include "stable/rotations.hpp"

#include <gtest/gtest.h>

#include "gen/stable_generators.hpp"
#include "stable/gale_shapley.hpp"
#include "stable/lattice.hpp"
#include "stable/stability.hpp"
#include "test_util.hpp"

namespace ncpm::stable {
namespace {

TEST(Rotations, SmValuesOfThePaperExample) {
  const auto inst = ncpm::test::fig5_instance();
  const auto m = ncpm::test::fig5_matching();
  // Figure 6's second column (0-indexed): s(m1)=w3->2, s(m2)=w6->5,
  // s(m3)=w1->0, s(m4)=w8->7, s(m5)=w2->1, s(m6)=w5->4, s(m7)=w5->4,
  // s(m8)=w2->1.
  const std::vector<std::int32_t> expected{2, 5, 0, 7, 1, 4, 4, 1};
  for (std::int32_t man = 0; man < 8; ++man) {
    EXPECT_EQ(s_m(inst, m, man), expected[static_cast<std::size_t>(man)]) << "m" << man + 1;
  }
}

TEST(Rotations, WomanOptimalExposesNoRotations) {
  // Note: s_M(m) itself may still exist for some men at the woman-optimal
  // matching (the closure claim of the paper's Lemma 17 only holds on the
  // Mz-relative vertex set D) — what characterises Mz is the absence of
  // exposed rotations, i.e. of cycles in H_M.
  const auto inst = ncpm::test::fig5_instance();
  const auto mz = woman_optimal(inst);
  EXPECT_TRUE(exposed_rotations_sequential(inst, mz).empty());
}

TEST(Rotations, PaperExampleExposesTwoRotations) {
  const auto inst = ncpm::test::fig5_instance();
  const auto m = ncpm::test::fig5_matching();
  auto rotations = exposed_rotations_sequential(inst, m);
  ASSERT_EQ(rotations.size(), 2u);
  std::sort(rotations.begin(), rotations.end(), [](const Rotation& a, const Rotation& b) {
    return a.pairs.front() < b.pairs.front();
  });
  // rho1 = (m1,w8)(m2,w3)(m4,w6): next(m1)=m2 via w3, next(m2)=m4 via w6,
  // next(m4)=m1 via w8.
  const Rotation rho1{{{0, 7}, {1, 2}, {3, 5}}};
  // rho2 = (m3,w5)(m6,w1).
  const Rotation rho2{{{2, 4}, {5, 0}}};
  EXPECT_EQ(rotations[0], rho1);
  EXPECT_EQ(rotations[1], rho2);
  EXPECT_TRUE(is_exposed_rotation(inst, m, rho1));
  EXPECT_TRUE(is_exposed_rotation(inst, m, rho2));
}

TEST(Rotations, EliminationProducesTheExpectedMatching) {
  const auto inst = ncpm::test::fig5_instance();
  const auto m = ncpm::test::fig5_matching();
  const Rotation rho{{{0, 7}, {1, 2}, {3, 5}}};
  const auto next = eliminate_rotation(m, rho);
  EXPECT_EQ(next.wife_of[0], 2);  // m1 -> w3
  EXPECT_EQ(next.wife_of[1], 5);  // m2 -> w6
  EXPECT_EQ(next.wife_of[3], 7);  // m4 -> w8
  EXPECT_EQ(next.wife_of[2], m.wife_of[2]);  // m3 untouched
  EXPECT_TRUE(is_stable(inst, next));  // Lemma 15 prerequisite
}

TEST(Rotations, EliminationValidation) {
  const auto m = ncpm::test::fig5_matching();
  EXPECT_THROW(eliminate_rotation(m, Rotation{{{0, 7}}}), std::invalid_argument);
  // Pair (0, 0) is not matched in m.
  EXPECT_THROW(eliminate_rotation(m, Rotation{{{0, 0}, {1, 2}}}), std::invalid_argument);
}

TEST(Rotations, CanonicalRotatesToSmallestMan) {
  const Rotation rho{{{5, 1}, {2, 3}, {7, 0}}};
  const auto canon = rho.canonical();
  EXPECT_EQ(canon.pairs.front(), (std::pair<std::int32_t, std::int32_t>{2, 3}));
  EXPECT_EQ(canon.pairs[1], (std::pair<std::int32_t, std::int32_t>{7, 0}));
  EXPECT_EQ(canon.pairs[2], (std::pair<std::int32_t, std::int32_t>{5, 1}));
}

class RotationsRandom : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RotationsRandom, ExposedRotationsValidateAndEliminateStably) {
  for (std::int32_t n : {3, 6, 10, 20}) {
    const auto inst = gen::random_stable_instance(n, GetParam() * 77 + static_cast<std::uint64_t>(n));
    MarriageMatching m = man_optimal(inst);
    // Walk the lattice to the bottom, validating every rotation on the way.
    for (int guard = 0; guard < 1000; ++guard) {
      const auto rotations = exposed_rotations_sequential(inst, m);
      if (rotations.empty()) break;
      for (const auto& rho : rotations) {
        EXPECT_TRUE(is_exposed_rotation(inst, m, rho));
        const auto next = eliminate_rotation(m, rho);
        EXPECT_TRUE(is_stable(inst, next));
        EXPECT_TRUE(strictly_dominates(inst, m, next));
      }
      m = eliminate_rotation(m, rotations.front());
    }
    EXPECT_EQ(m.wife_of, woman_optimal(inst).wife_of)
        << "rotation walk must end at the woman-optimal matching";
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RotationsRandom, ::testing::Values(1, 2, 3, 4, 5, 6));

class AllRotationsChainInvariance : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(AllRotationsChainInvariance, EveryMaximalChainYieldsTheSameRotationSet) {
  // Gusfield-Irving Theorem 2.5.4: the rotations eliminated along any
  // maximal chain from M0 to Mz are exactly the rotations of the instance.
  // all_rotations takes the first exposed rotation each step; here we walk
  // alternative chains (last exposed rotation, middle one) and compare.
  const auto inst = gen::random_stable_instance(9, GetParam());
  const auto reference = all_rotations(inst);
  for (int pick_mode = 0; pick_mode < 2; ++pick_mode) {
    std::vector<Rotation> collected;
    MarriageMatching m = man_optimal(inst);
    while (true) {
      const auto exposed = exposed_rotations_sequential(inst, m);
      if (exposed.empty()) break;
      const auto& rho =
          pick_mode == 0 ? exposed.back() : exposed[exposed.size() / 2];
      collected.push_back(rho);
      m = eliminate_rotation(m, rho);
    }
    std::sort(collected.begin(), collected.end(),
              [](const Rotation& a, const Rotation& b) { return a.pairs < b.pairs; });
    EXPECT_EQ(collected, reference) << "pick_mode " << pick_mode;
  }
  // The rotation count also bounds the lattice walk length.
  EXPECT_LE(reference.size(),
            static_cast<std::size_t>(inst.size()) * static_cast<std::size_t>(inst.size()) / 2);
}

INSTANTIATE_TEST_SUITE_P(Seeds, AllRotationsChainInvariance,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

TEST(AllRotations, PaperInstanceHasFiveRotations) {
  // The Figure 5 instance has 8 stable matchings arranged as the down-sets
  // of a 5-rotation poset; every maximal chain from M0 to Mz has exactly 5
  // elimination steps (see examples/stable_lattice).
  const auto inst = ncpm::test::fig5_instance();
  EXPECT_EQ(all_rotations(inst).size(), 5u);
}

}  // namespace
}  // namespace ncpm::stable
