// Gale–Shapley deferred acceptance: stability, optimality per side, and the
// textbook lattice-extremes properties.

#include "stable/gale_shapley.hpp"

#include <gtest/gtest.h>

#include "gen/stable_generators.hpp"
#include "stable/lattice.hpp"
#include "stable/stability.hpp"
#include "test_util.hpp"

namespace ncpm::stable {
namespace {

TEST(GaleShapley, PaperInstanceBothSidesStable) {
  const auto inst = ncpm::test::fig5_instance();
  const auto m0 = man_optimal(inst);
  const auto mz = woman_optimal(inst);
  EXPECT_TRUE(is_stable(inst, m0));
  EXPECT_TRUE(is_stable(inst, mz));
  EXPECT_TRUE(dominates(inst, m0, mz));
}

TEST(GaleShapley, SizeOneAndIdentical) {
  const auto one = StableInstance::from_lists({{0}}, {{0}});
  EXPECT_EQ(man_optimal(one).wife_of, (std::vector<std::int32_t>{0}));

  // All men share one list, all women share one list: unique stable matching.
  const auto inst = StableInstance::from_lists({{0, 1}, {0, 1}}, {{0, 1}, {0, 1}});
  const auto m0 = man_optimal(inst);
  const auto mz = woman_optimal(inst);
  EXPECT_EQ(m0.wife_of, mz.wife_of);
  EXPECT_TRUE(is_stable(inst, m0));
}

class GaleShapleyRandom : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(GaleShapleyRandom, ExtremesAreStableAndBracketTheLattice) {
  for (std::int32_t n : {2, 5, 9, 16, 33}) {
    const auto inst = gen::random_stable_instance(n, GetParam() * 100 + static_cast<std::uint64_t>(n));
    const auto m0 = man_optimal(inst);
    const auto mz = woman_optimal(inst);
    EXPECT_TRUE(is_stable(inst, m0)) << "n=" << n;
    EXPECT_TRUE(is_stable(inst, mz)) << "n=" << n;
    EXPECT_TRUE(dominates(inst, m0, mz)) << "n=" << n;
    EXPECT_TRUE(blocking_pairs(inst, m0).empty());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, GaleShapleyRandom, ::testing::Values(1, 2, 3, 4, 5));

TEST(GaleShapley, ManOptimalDominatesEveryStableMatching) {
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    const auto inst = gen::random_stable_instance(7, seed);
    const auto m0 = man_optimal(inst);
    const auto mz = woman_optimal(inst);
    for (const auto& m : all_stable_matchings(inst)) {
      EXPECT_TRUE(dominates(inst, m0, m));
      EXPECT_TRUE(dominates(inst, m, mz));
    }
  }
}

TEST(Stability, DetectsPlantedBlockingPair) {
  const auto inst = ncpm::test::fig5_instance();
  auto m = ncpm::test::fig5_matching();
  // Swap two wives to break stability (the original matching is stable).
  std::swap(m.wife_of[0], m.wife_of[1]);
  const auto fixed = MarriageMatching::from_wife_of(m.wife_of);
  EXPECT_FALSE(is_stable(inst, fixed));
  EXPECT_FALSE(blocking_pairs(inst, fixed).empty());
}

TEST(MarriageMatching, ValidationRejectsSharedWife) {
  EXPECT_THROW(MarriageMatching::from_wife_of({0, 0}), std::invalid_argument);
  EXPECT_THROW(MarriageMatching::from_wife_of({0, 7}), std::out_of_range);
}

}  // namespace
}  // namespace ncpm::stable
