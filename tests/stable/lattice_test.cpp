// The stable-matching lattice helpers: dominance, enumeration, immediate
// domination.

#include "stable/lattice.hpp"

#include <gtest/gtest.h>

#include "gen/stable_generators.hpp"
#include "stable/gale_shapley.hpp"
#include "stable/stability.hpp"
#include "test_util.hpp"

namespace ncpm::stable {
namespace {

TEST(Lattice, DominanceIsReflexiveOnEqualAndAntisymmetric) {
  const auto inst = ncpm::test::fig5_instance();
  const auto m0 = man_optimal(inst);
  const auto mz = woman_optimal(inst);
  EXPECT_TRUE(dominates(inst, m0, m0));
  EXPECT_FALSE(strictly_dominates(inst, m0, m0));
  EXPECT_TRUE(strictly_dominates(inst, m0, mz));
  EXPECT_FALSE(strictly_dominates(inst, mz, m0));
}

TEST(Lattice, EnumerationContainsExtremesAndOnlyStableMatchings) {
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    const auto inst = gen::random_stable_instance(6, seed);
    const auto all = all_stable_matchings(inst);
    ASSERT_FALSE(all.empty());
    bool has_m0 = false, has_mz = false;
    const auto m0 = man_optimal(inst);
    const auto mz = woman_optimal(inst);
    for (const auto& m : all) {
      EXPECT_TRUE(is_stable(inst, m));
      has_m0 = has_m0 || m.wife_of == m0.wife_of;
      has_mz = has_mz || m.wife_of == mz.wife_of;
    }
    EXPECT_TRUE(has_m0);
    EXPECT_TRUE(has_mz);
  }
}

TEST(Lattice, CapIsEnforced) {
  const auto inst = gen::cyclic_stable_instance(10);
  EXPECT_THROW(all_stable_matchings(inst, 1), std::runtime_error);
}

TEST(Lattice, ImmediateDominationExcludesTransitiveSteps) {
  // Build a three-deep chain via rotations on a random instance that has
  // at least three lattice levels; cyclic instances always do.
  const auto inst = gen::cyclic_stable_instance(6);
  const auto all = all_stable_matchings(inst);
  const auto m0 = man_optimal(inst);
  const auto mz = woman_optimal(inst);
  ASSERT_GE(all.size(), 3u);
  EXPECT_FALSE(immediately_dominates(inst, m0, mz, all))
      << "Mz is below M0 but not immediately for a lattice with >= 3 levels";
}

TEST(Lattice, CyclicInstanceHasManyStableMatchings) {
  const auto inst = gen::cyclic_stable_instance(5);
  EXPECT_GE(all_stable_matchings(inst).size(), 5u);
}

}  // namespace
}  // namespace ncpm::stable
