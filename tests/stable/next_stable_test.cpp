// Algorithm 4 (Theorem 16): the NC next-stable-matching enumeration must
// match the sequential rotation finder exactly, produce stable successors
// that are immediately dominated (Lemma 15), and walk the lattice from the
// man-optimal to the woman-optimal matching.

#include "stable/next_stable.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "gen/stable_generators.hpp"
#include "stable/gale_shapley.hpp"
#include "stable/lattice.hpp"
#include "stable/stability.hpp"
#include "test_util.hpp"

namespace ncpm::stable {
namespace {

std::set<std::vector<std::pair<std::int32_t, std::int32_t>>> rotation_set(
    const std::vector<Rotation>& rotations) {
  std::set<std::vector<std::pair<std::int32_t, std::int32_t>>> out;
  for (const auto& rho : rotations) out.insert(rho.canonical().pairs);
  return out;
}

TEST(NextStable, WomanOptimalIsTerminal) {
  const auto inst = ncpm::test::fig5_instance();
  const auto result = next_stable_matchings(inst, woman_optimal(inst));
  EXPECT_TRUE(result.is_woman_optimal);
  EXPECT_TRUE(result.rotations.empty());
  EXPECT_TRUE(result.successors.empty());
}

TEST(NextStable, UnstableInputRejected) {
  const auto inst = ncpm::test::fig5_instance();
  auto m = ncpm::test::fig5_matching();
  std::swap(m.wife_of[0], m.wife_of[1]);
  EXPECT_THROW(next_stable_matchings(inst, MarriageMatching::from_wife_of(m.wife_of)),
               std::invalid_argument);
}

TEST(NextStable, SizeOneInstance) {
  const auto inst = StableInstance::from_lists({{0}}, {{0}});
  const auto result = next_stable_matchings(inst, man_optimal(inst));
  EXPECT_TRUE(result.is_woman_optimal);
}

struct Param {
  std::uint64_t seed;
  std::int32_t n;
};

class NextStableVsSequential : public ::testing::TestWithParam<Param> {};

TEST_P(NextStableVsSequential, RotationsMatchTheSequentialFinderEverywhere) {
  const auto [seed, n] = GetParam();
  const auto inst = gen::random_stable_instance(n, seed);
  // Breadth-first over the whole lattice, comparing at every node.
  std::set<std::vector<std::int32_t>> seen;
  std::vector<MarriageMatching> frontier{man_optimal(inst)};
  seen.insert(frontier.front().wife_of);
  std::size_t guard = 0;
  while (!frontier.empty()) {
    ASSERT_LT(++guard, 5000u);
    const MarriageMatching m = frontier.back();
    frontier.pop_back();
    const auto nc = next_stable_matchings(inst, m);
    const auto seq = exposed_rotations_sequential(inst, m);
    EXPECT_EQ(rotation_set(nc.rotations), rotation_set(seq));
    EXPECT_EQ(nc.is_woman_optimal, seq.empty());
    EXPECT_EQ(nc.successors.size(), nc.rotations.size());
    for (std::size_t i = 0; i < nc.successors.size(); ++i) {
      const auto& succ = nc.successors[i];
      EXPECT_TRUE(is_stable(inst, succ));
      EXPECT_TRUE(strictly_dominates(inst, m, succ));
      EXPECT_EQ(succ.wife_of, eliminate_rotation(m, nc.rotations[i]).wife_of);
      if (seen.insert(succ.wife_of).second) frontier.push_back(succ);
    }
  }
  EXPECT_TRUE(seen.count(woman_optimal(inst).wife_of) == 1)
      << "the lattice walk must reach Mz";
}

INSTANTIATE_TEST_SUITE_P(Lattices, NextStableVsSequential,
                         ::testing::Values(Param{1, 3}, Param{2, 4}, Param{3, 5}, Param{4, 6},
                                           Param{5, 7}, Param{6, 8}, Param{7, 8}, Param{8, 10}));

class Lemma15Check : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(Lemma15Check, SuccessorsAreImmediatelyDominated) {
  const auto inst = gen::random_stable_instance(6, GetParam());
  const auto all = all_stable_matchings(inst);
  for (const auto& m : all) {
    const auto nc = next_stable_matchings(inst, m);
    for (const auto& succ : nc.successors) {
      EXPECT_TRUE(immediately_dominates(inst, m, succ, all))
          << "M \\ rho must be *immediately* dominated (Lemma 15)";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, Lemma15Check, ::testing::Values(1, 2, 3, 4, 5));

TEST(NextStable, CyclicInstanceRotationsArePlentiful) {
  const auto inst = gen::cyclic_stable_instance(8);
  const auto m0 = man_optimal(inst);
  const auto result = next_stable_matchings(inst, m0);
  EXPECT_FALSE(result.is_woman_optimal);
  EXPECT_GE(result.rotations.size(), 1u);
  pram::NcCounters counters;
  next_stable_matchings(inst, m0, &counters);
  EXPECT_GT(counters.rounds, 0u);
}

TEST(NextStable, RepeatedApplicationReachesWomanOptimal) {
  for (const std::int32_t n : {5, 9, 14}) {
    const auto inst = gen::random_stable_instance(n, static_cast<std::uint64_t>(n) * 13);
    MarriageMatching m = man_optimal(inst);
    int guard = 0;
    while (true) {
      ASSERT_LT(++guard, 500);
      const auto result = next_stable_matchings(inst, m);
      if (result.is_woman_optimal) break;
      m = result.successors.front();
    }
    EXPECT_EQ(m.wife_of, woman_optimal(inst).wife_of);
  }
}

}  // namespace
}  // namespace ncpm::stable
