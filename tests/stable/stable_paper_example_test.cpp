// End-to-end reproduction of the paper's stable-marriage example
// (Figures 5-7): the underlined matching, the reduced lists, and the
// switching graph H_M whose cycles are the exposed rotations.

#include <gtest/gtest.h>

#include "stable/gale_shapley.hpp"
#include "stable/next_stable.hpp"
#include "stable/rotations.hpp"
#include "stable/stability.hpp"
#include "test_util.hpp"

namespace ncpm::stable {
namespace {

class StablePaperExample : public ::testing::Test {
 protected:
  StableInstance inst = ncpm::test::fig5_instance();
  MarriageMatching m = ncpm::test::fig5_matching();
};

TEST_F(StablePaperExample, Figure5MatchingIsStable) {
  EXPECT_TRUE(is_stable(inst, m));
  EXPECT_TRUE(blocking_pairs(inst, m).empty());
}

TEST_F(StablePaperExample, Figure6ReducedListsFirstAndSecondEntries) {
  // Figure 6 lists, per man: first entry = partner, second = s_M(m).
  // m1: w8 w3 | m2: w3 w6 | m3: w5 w1 ... | m8: w4 w2 w6.
  const std::vector<std::int32_t> partners{7, 2, 4, 5, 6, 0, 1, 3};
  const std::vector<std::int32_t> seconds{2, 5, 0, 7, 1, 4, 4, 1};
  for (std::int32_t man = 0; man < 8; ++man) {
    EXPECT_EQ(m.wife_of[static_cast<std::size_t>(man)], partners[static_cast<std::size_t>(man)]);
    EXPECT_EQ(s_m(inst, m, man), seconds[static_cast<std::size_t>(man)]) << "m" << man + 1;
  }
}

TEST_F(StablePaperExample, Figure7SwitchingGraphCyclesAreTheRotations) {
  const auto result = next_stable_matchings(inst, m);
  EXPECT_FALSE(result.is_woman_optimal);
  // H_M (Figure 7): next(m1)=m2, next(m2)=m4, next(m4)=m1 (3-cycle);
  // next(m3)=m6, next(m6)=m3 (2-cycle); m5, m7, m8 hang off the 2-cycle.
  ASSERT_EQ(result.rotations.size(), 2u);
  auto rotations = result.rotations;
  std::sort(rotations.begin(), rotations.end(), [](const Rotation& a, const Rotation& b) {
    return a.pairs.front() < b.pairs.front();
  });
  const Rotation rho1{{{0, 7}, {1, 2}, {3, 5}}};  // (m1,w8)(m2,w3)(m4,w6)
  const Rotation rho2{{{2, 4}, {5, 0}}};          // (m3,w5)(m6,w1)
  EXPECT_EQ(rotations[0], rho1);
  EXPECT_EQ(rotations[1], rho2);
}

TEST_F(StablePaperExample, EliminationsAreStableAndDistinct) {
  const auto result = next_stable_matchings(inst, m);
  ASSERT_EQ(result.successors.size(), 2u);
  for (const auto& succ : result.successors) {
    EXPECT_TRUE(is_stable(inst, succ));
    EXPECT_NE(succ.wife_of, m.wife_of);
  }
  EXPECT_NE(result.successors[0].wife_of, result.successors[1].wife_of);
}

TEST_F(StablePaperExample, FigureMatchingSitsBetweenTheExtremes) {
  const auto m0 = man_optimal(inst);
  const auto mz = woman_optimal(inst);
  // M is stable, hence dominated by M0 and dominating Mz.
  for (std::int32_t man = 0; man < 8; ++man) {
    EXPECT_LE(inst.man_rank_of(man, m0.wife_of[static_cast<std::size_t>(man)]),
              inst.man_rank_of(man, m.wife_of[static_cast<std::size_t>(man)]));
    EXPECT_LE(inst.man_rank_of(man, m.wife_of[static_cast<std::size_t>(man)]),
              inst.man_rank_of(man, mz.wife_of[static_cast<std::size_t>(man)]));
  }
}

}  // namespace
}  // namespace ncpm::stable
