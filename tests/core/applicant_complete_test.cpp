// Algorithm 2: applicant-complete matchings in G', the Lemma 2 round bound,
// and failure detection via Hall's condition.

#include "core/applicant_complete.hpp"

#include <gtest/gtest.h>

#include "core/reduced_graph.hpp"
#include "gen/generators.hpp"
#include "pram/list_ranking.hpp"
#include "test_util.hpp"

namespace ncpm::core {
namespace {

void expect_valid_applicant_complete(const Instance& inst, const ReducedGraph& rg,
                                     const ApplicantCompleteResult& result) {
  ASSERT_TRUE(result.exists);
  std::vector<std::uint8_t> used(static_cast<std::size_t>(inst.total_posts()), 0);
  for (std::int32_t a = 0; a < inst.num_applicants(); ++a) {
    const auto ai = static_cast<std::size_t>(a);
    const std::int32_t p = result.post_of[ai];
    EXPECT_TRUE(p == rg.f_post[ai] || p == rg.s_post[ai]) << "a" << a;
    EXPECT_EQ(used[static_cast<std::size_t>(p)], 0) << "post " << p << " reused";
    used[static_cast<std::size_t>(p)] = 1;
  }
}

TEST(ApplicantComplete, PaperInstanceMatchesFigure3Trace) {
  const auto inst = ncpm::test::fig1_instance();
  const auto rg = build_reduced_graph(inst);
  const auto result = applicant_complete_matching(inst, rg);
  expect_valid_applicant_complete(inst, rg, result);
  // The while-loop resolves everything reachable from the degree-1 posts
  // p5, p6, p8, p9 in a single round (Section III-C's trace), leaving the
  // Figure 3 cycle on {a1..a4} x {p1..p4} for the cycle phase.
  EXPECT_EQ(result.while_rounds, 1u);
  EXPECT_EQ(result.post_of[4], 4);  // (a5, p5)
  EXPECT_EQ(result.post_of[5], 5);  // (a6, p6)
  EXPECT_EQ(result.post_of[6], 7);  // (a7, p8)
  EXPECT_EQ(result.post_of[7], 8);  // (a8, p9)
}

TEST(ApplicantComplete, ContentionHasNoSolution) {
  const auto inst = gen::contention_instance(3);
  const auto rg = build_reduced_graph(inst);
  EXPECT_FALSE(applicant_complete_matching(inst, rg).exists);
}

TEST(ApplicantComplete, PureCycleNeedsNoPeeling) {
  // Two applicants sharing both posts: a 4-cycle, zero while-loop rounds.
  const auto inst = Instance::strict(2, {{0, 1}, {0, 1}});
  const auto rg = build_reduced_graph(inst);
  const auto result = applicant_complete_matching(inst, rg);
  expect_valid_applicant_complete(inst, rg, result);
  EXPECT_EQ(result.while_rounds, 0u);
}

TEST(ApplicantComplete, EmptyInstance) {
  const auto inst = Instance::strict(3, {});
  const auto rg = build_reduced_graph(inst);
  EXPECT_TRUE(applicant_complete_matching(inst, rg).exists);
}

TEST(ApplicantComplete, SingleApplicant) {
  const auto inst = Instance::strict(2, {{0, 1}});
  const auto rg = build_reduced_graph(inst);
  const auto result = applicant_complete_matching(inst, rg);
  expect_valid_applicant_complete(inst, rg, result);
}

class Lemma2Bound : public ::testing::TestWithParam<std::int32_t> {};

TEST_P(Lemma2Bound, BinaryTreeRoundsStayWithinTheBound) {
  const std::int32_t depth = GetParam();
  const auto inst = gen::binary_tree_instance(depth);
  const auto rg = build_reduced_graph(inst);
  const auto result = applicant_complete_matching(inst, rg);
  expect_valid_applicant_complete(inst, rg, result);
  // Lemma 2: at most ceil(log2 n) + 1 rounds, n = vertices of G'.
  const std::uint64_t n =
      static_cast<std::uint64_t>(inst.num_applicants()) + static_cast<std::uint64_t>(inst.total_posts());
  EXPECT_LE(result.while_rounds, pram::ceil_log2(n) + 1);
  EXPECT_GE(result.while_rounds, 1u);
}

INSTANTIATE_TEST_SUITE_P(Depths, Lemma2Bound, ::testing::Values(1, 2, 3, 4, 5, 6, 8, 10));

struct RandomParam {
  std::uint64_t seed;
  std::int32_t n_a;
  std::int32_t n_p;
};

class ApplicantCompleteRandom : public ::testing::TestWithParam<RandomParam> {};

TEST_P(ApplicantCompleteRandom, SolvableInstancesAlwaysSolvedWithinLemma2) {
  const auto [seed, n_a, n_p] = GetParam();
  gen::SolvableConfig cfg;
  cfg.num_applicants = n_a;
  cfg.num_posts = n_p;
  cfg.seed = seed;
  const auto inst = gen::solvable_strict_instance(cfg);
  const auto rg = build_reduced_graph(inst);
  const auto result = applicant_complete_matching(inst, rg);
  expect_valid_applicant_complete(inst, rg, result);
  const std::uint64_t n =
      static_cast<std::uint64_t>(inst.num_applicants()) + static_cast<std::uint64_t>(inst.total_posts());
  EXPECT_LE(result.while_rounds, pram::ceil_log2(n) + 1);
}

INSTANTIATE_TEST_SUITE_P(Sizes, ApplicantCompleteRandom,
                         ::testing::Values(RandomParam{1, 10, 25}, RandomParam{2, 50, 110},
                                           RandomParam{3, 200, 450}, RandomParam{4, 1000, 2200},
                                           RandomParam{5, 333, 999}, RandomParam{6, 64, 160}));

}  // namespace
}  // namespace ncpm::core
