// Algorithm 3 (Theorem 10) against exhaustive oracles: the result must be
// popular and as large as the largest popular matching found by brute
// force; and Theorem 9's switching enumeration must produce exactly the set
// of all popular matchings.

#include "core/max_card_popular.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "core/popular_matching.hpp"
#include "core/reduced_graph.hpp"
#include "core/switching_graph.hpp"
#include "core/verify.hpp"
#include "gen/generators.hpp"
#include "test_util.hpp"

namespace ncpm::core {
namespace {

std::vector<std::int32_t> key_of(const matching::Matching& m) {
  std::vector<std::int32_t> k;
  for (std::int32_t a = 0; a < m.n_left(); ++a) k.push_back(m.right_of(a));
  return k;
}

TEST(MaxCardPopular, PaperInstanceAlreadyMaximal) {
  const auto inst = ncpm::test::fig1_instance();
  const auto m = find_max_card_popular(inst);
  ASSERT_TRUE(m.has_value());
  EXPECT_EQ(matching_size(inst, *m), 8u);
}

TEST(MaxCardPopular, ContentionStillFails) {
  EXPECT_FALSE(find_max_card_popular(gen::contention_instance(5)).has_value());
}

TEST(MaxCardPopular, PromotesAwayFromLastResorts) {
  // a0: list {0}; a1: list {0, 1}. f-posts = {0}; s(a0) = l(a0), s(a1) = 1.
  // Algorithm 1 may settle with a0 on its last resort; the maximum-
  // cardinality popular matching puts a0 on 0 and a1 on 1 (size 2).
  const auto inst = Instance::strict(2, {{0}, {0, 1}});
  const auto m = find_max_card_popular(inst);
  ASSERT_TRUE(m.has_value());
  EXPECT_EQ(matching_size(inst, *m), 2u);
  EXPECT_TRUE(is_popular_bruteforce(inst, *m));
}

struct OracleParam {
  std::uint64_t seed;
  std::int32_t n_a, n_p, list_max;
};

class MaxCardOracle : public ::testing::TestWithParam<OracleParam> {};

TEST_P(MaxCardOracle, MatchesLargestBruteForcePopularMatching) {
  const auto [seed, n_a, n_p, list_max] = GetParam();
  for (std::uint64_t round = 0; round < 20; ++round) {
    gen::StrictConfig cfg;
    cfg.num_applicants = n_a;
    cfg.num_posts = n_p;
    cfg.list_min = 1;
    cfg.list_max = list_max;
    cfg.seed = seed * 1000 + round;
    const auto inst = gen::random_strict_instance(cfg);
    const auto all = all_popular_matchings_bruteforce(inst);
    const auto m = find_max_card_popular(inst);
    ASSERT_EQ(m.has_value(), !all.empty()) << "seed " << cfg.seed;
    if (!m.has_value()) continue;
    EXPECT_TRUE(is_popular_bruteforce(inst, *m)) << "seed " << cfg.seed;
    std::size_t best = 0;
    for (const auto& cand : all) best = std::max(best, matching_size(inst, cand));
    EXPECT_EQ(matching_size(inst, *m), best) << "seed " << cfg.seed;
  }
}

INSTANTIATE_TEST_SUITE_P(TinyInstances, MaxCardOracle,
                         ::testing::Values(OracleParam{1, 3, 3, 3}, OracleParam{2, 4, 3, 2},
                                           OracleParam{3, 4, 4, 4}, OracleParam{4, 5, 4, 3},
                                           OracleParam{5, 5, 3, 2}, OracleParam{6, 6, 4, 2}));

class Theorem9Oracle : public ::testing::TestWithParam<OracleParam> {};

TEST_P(Theorem9Oracle, SwitchingEnumerationIsExactlyAllPopularMatchings) {
  const auto [seed, n_a, n_p, list_max] = GetParam();
  for (std::uint64_t round = 0; round < 10; ++round) {
    gen::StrictConfig cfg;
    cfg.num_applicants = n_a;
    cfg.num_posts = n_p;
    cfg.list_min = 1;
    cfg.list_max = list_max;
    cfg.seed = seed * 500 + round;
    const auto inst = gen::random_strict_instance(cfg);
    const auto m = find_popular_matching(inst);
    const auto brute = all_popular_matchings_bruteforce(inst);
    ASSERT_EQ(m.has_value(), !brute.empty());
    if (!m.has_value()) continue;
    const auto rg = build_reduced_graph(inst);
    const auto via_switching = all_popular_matchings_via_switching(inst, rg, *m);
    std::set<std::vector<std::int32_t>> brute_keys, switch_keys;
    for (const auto& cand : brute) brute_keys.insert(key_of(cand));
    for (const auto& cand : via_switching) switch_keys.insert(key_of(cand));
    EXPECT_EQ(brute_keys, switch_keys) << "seed " << cfg.seed;
  }
}

INSTANTIATE_TEST_SUITE_P(TinyInstances, Theorem9Oracle,
                         ::testing::Values(OracleParam{1, 3, 3, 3}, OracleParam{2, 4, 4, 3},
                                           OracleParam{3, 5, 4, 2}, OracleParam{4, 4, 5, 4},
                                           OracleParam{5, 5, 5, 3}));

class MaxCardMedium : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MaxCardMedium, NeverSmallerThanAlgorithm1AndAlwaysCharacterized) {
  gen::SolvableConfig cfg;
  cfg.num_applicants = 120;
  cfg.num_posts = 200;
  cfg.all_f_fraction = 0.4;
  cfg.contention = 3.0;  // plenty of last-resort pressure
  cfg.seed = GetParam();
  const auto inst = gen::solvable_strict_instance(cfg);
  const auto rg = build_reduced_graph(inst);
  const auto base = find_popular_matching(inst);
  ASSERT_TRUE(base.has_value());
  const auto maxed = maximize_cardinality(inst, *base);
  EXPECT_TRUE(satisfies_popular_characterization(inst, rg, maxed));
  EXPECT_GE(matching_size(inst, maxed), matching_size(inst, *base));
  // Idempotent: a second pass finds no positive margins.
  const auto again = maximize_cardinality(inst, maxed);
  EXPECT_EQ(matching_size(inst, again), matching_size(inst, maxed));
}

INSTANTIATE_TEST_SUITE_P(Seeds, MaxCardMedium, ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

}  // namespace
}  // namespace ncpm::core
