// The switching graph G_M (Section IV): Lemma 4's structure, Figure 4 of
// the paper, margins, and switch application.

#include "core/switching_graph.hpp"

#include <gtest/gtest.h>

#include "core/popular_matching.hpp"
#include "core/reduced_graph.hpp"
#include "core/verify.hpp"
#include "gen/generators.hpp"
#include "test_util.hpp"

namespace ncpm::core {
namespace {

/// The paper's stated matching for instance I, as a Matching object.
matching::Matching paper_matching(const Instance& inst) {
  matching::Matching m(inst.num_applicants(), inst.total_posts());
  const auto posts = ncpm::test::fig1_paper_matching();
  for (std::size_t a = 0; a < posts.size(); ++a) {
    m.match(static_cast<std::int32_t>(a), posts[a]);
  }
  return m;
}

TEST(SwitchingGraph, Figure4Structure) {
  const auto inst = ncpm::test::fig1_instance();
  const auto rg = build_reduced_graph(inst);
  const SwitchingEngine engine(inst, rg, paper_matching(inst));

  // Edges of Figure 4 (source post -> target post, labelled by applicant):
  // p1->p2 (a1), p2->p4 (a2), p4->p3 (a3), p3->p1 (a4), p5->p2 (a5),
  // p7->p6 (a6), p8->p7 (a7), p9->p7 (a8).
  const auto& pf = engine.pseudoforest();
  EXPECT_EQ(pf.next[0], 1);
  EXPECT_EQ(pf.next[1], 3);
  EXPECT_EQ(pf.next[3], 2);
  EXPECT_EQ(pf.next[2], 0);
  EXPECT_EQ(pf.next[4], 1);
  EXPECT_EQ(pf.next[6], 5);
  EXPECT_EQ(pf.next[7], 6);
  EXPECT_EQ(pf.next[8], 6);
  EXPECT_EQ(engine.out_applicant()[0], 0);
  EXPECT_EQ(engine.out_applicant()[8], 7);

  // One switching cycle: p1 -> p2 -> p4 -> p3 -> p1.
  const auto& analysis = engine.analysis();
  EXPECT_TRUE(analysis.on_cycle[0]);
  EXPECT_TRUE(analysis.on_cycle[1]);
  EXPECT_TRUE(analysis.on_cycle[3]);
  EXPECT_TRUE(analysis.on_cycle[2]);
  EXPECT_FALSE(analysis.on_cycle[4]);  // p5 hangs off the cycle component
  EXPECT_EQ(analysis.cycle_length[0], 4);

  // Tree component {p6, p7, p8, p9}: sink p6 (unmatched s-post), switching
  // paths start from the s-post vertices p8 and p9 (Lemma 4 + Fig. 4).
  EXPECT_TRUE(pf.is_sink(5));
  const auto label = analysis.component[5];
  EXPECT_EQ(analysis.component[6], label);
  EXPECT_EQ(analysis.component[7], label);
  EXPECT_EQ(analysis.component[8], label);
  EXPECT_FALSE(engine.component_has_cycle(label));
  EXPECT_EQ(engine.path_starts_of_component(label), (std::vector<std::int32_t>{7, 8}));
}

TEST(SwitchingGraph, Lemma4PropertiesOnRandomInstances) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    gen::SolvableConfig cfg;
    cfg.num_applicants = 80;
    cfg.num_posts = 140;
    cfg.all_f_fraction = 0.2;
    cfg.contention = 2.0;
    cfg.seed = seed;
    const auto inst = gen::solvable_strict_instance(cfg);
    const auto rg = build_reduced_graph(inst);
    const auto m = find_popular_matching(inst);
    ASSERT_TRUE(m.has_value());
    const SwitchingEngine engine(inst, rg, *m);
    const auto& pf = engine.pseudoforest();
    const auto out = engine.out_applicant();
    for (std::int32_t p = 0; p < inst.total_posts(); ++p) {
      const auto pi = static_cast<std::size_t>(p);
      // (i) out-degree <= 1 by representation; edge labels are consistent.
      if (pf.next[pi] != pram::kNone) {
        ASSERT_NE(out[pi], kNone);
        EXPECT_EQ(m->right_of(out[pi]), p) << "edge source must be M(a)";
      }
      // (ii) a G_M vertex with no out-edge is an unmatched s-post.
      if (out[pi] == kNone && engine.is_s_post_vertex()[pi] != 0 && m->right_matched(p)) {
        // matched s-posts must carry an out-edge
        ADD_FAILURE() << "matched s-post " << p << " has no out-edge";
      }
    }
  }
}

TEST(SwitchingGraph, MarginsOfPaperInstanceAreNonPositive) {
  // All applicants of instance I sit on real posts in the stated matching,
  // so every switch has margin 0 under the Definition 4 values and
  // Algorithm 3 must change nothing.
  const auto inst = ncpm::test::fig1_instance();
  const auto rg = build_reduced_graph(inst);
  const SwitchingEngine engine(inst, rg, paper_matching(inst));
  std::vector<std::int64_t> value(static_cast<std::size_t>(inst.total_posts()));
  for (std::int32_t p = 0; p < inst.total_posts(); ++p) {
    value[static_cast<std::size_t>(p)] = inst.is_last_resort(p) ? 0 : 1;
  }
  const auto report = engine.margins(value);
  const auto choices = engine.best_choices(report);
  EXPECT_TRUE(choices.empty());
}

TEST(SwitchingGraph, ApplyCycleSwitchesEveryCycleApplicant) {
  const auto inst = ncpm::test::fig1_instance();
  const auto rg = build_reduced_graph(inst);
  const auto m = paper_matching(inst);
  const SwitchingEngine engine(inst, rg, m);
  // Apply the unique switching cycle (root = p1 = 0).
  const auto result = engine.apply(std::vector<SwitchingEngine::Choice>{{0, true}});
  EXPECT_TRUE(satisfies_popular_characterization(inst, rg, result));
  // a1..a4 switched, a5..a8 untouched.
  EXPECT_EQ(result.right_of(0), 1);  // a1: p1 -> p2
  EXPECT_EQ(result.right_of(1), 3);  // a2: p2 -> p4
  EXPECT_EQ(result.right_of(2), 2);  // a3: p4 -> p3
  EXPECT_EQ(result.right_of(3), 0);  // a4: p3 -> p1
  EXPECT_EQ(result.right_of(4), 4);
  EXPECT_EQ(result.right_of(7), 8);
}

TEST(SwitchingGraph, ApplyPathMovesPrefixToSink) {
  const auto inst = ncpm::test::fig1_instance();
  const auto rg = build_reduced_graph(inst);
  const auto m = paper_matching(inst);
  const SwitchingEngine engine(inst, rg, m);
  // Switching path from p9 (= 8): a8 moves p9 -> p7, a6 moves p7 -> p6;
  // a7 (on the p8 branch) must not move.
  const auto result = engine.apply(std::vector<SwitchingEngine::Choice>{{8, false}});
  EXPECT_TRUE(satisfies_popular_characterization(inst, rg, result));
  EXPECT_EQ(result.right_of(7), 6);  // a8 -> p7
  EXPECT_EQ(result.right_of(5), 5);  // a6 -> p6
  EXPECT_EQ(result.right_of(6), 7);  // a7 stays on p8
  EXPECT_FALSE(result.right_matched(8));  // p9 released
}

TEST(SwitchingGraph, ApplyRejectsBadChoices) {
  const auto inst = ncpm::test::fig1_instance();
  const auto rg = build_reduced_graph(inst);
  const SwitchingEngine engine(inst, rg, paper_matching(inst));
  // p5 (= 4) is an f-post... no: p5 is an f-post vertex, not an s-post, so
  // it cannot start a switching path.
  EXPECT_THROW(engine.apply(std::vector<SwitchingEngine::Choice>{{4, false}}),
               std::invalid_argument);
  // p6 is the sink: no out-edge, not a valid start either.
  EXPECT_THROW(engine.apply(std::vector<SwitchingEngine::Choice>{{5, false}}),
               std::invalid_argument);
  // p2 is on the cycle but is not its root (p1 = 0 is).
  EXPECT_THROW(engine.apply(std::vector<SwitchingEngine::Choice>{{1, true}}),
               std::invalid_argument);
  // Two switches in one component.
  EXPECT_THROW(engine.apply(std::vector<SwitchingEngine::Choice>{{7, false}, {8, false}}),
               std::invalid_argument);
}

TEST(SwitchingGraph, MatchingOutsideReducedGraphRejected) {
  const auto inst = ncpm::test::fig1_instance();
  const auto rg = build_reduced_graph(inst);
  matching::Matching bad(inst.num_applicants(), inst.total_posts());
  // a1 to p6 (rank: not on a1's reduced list).
  bad.match(0, 5);
  for (std::int32_t a = 1; a < 8; ++a) bad.match(a, ncpm::test::fig1_paper_matching()[static_cast<std::size_t>(a)]);
  EXPECT_THROW(SwitchingEngine(inst, rg, bad), std::invalid_argument);
}

}  // namespace
}  // namespace ncpm::core
