// The verification layer itself: vote counting, validity, sizes, and the
// popular-matching counting extension (Theorem 9 structure) against brute
// force.

#include "core/verify.hpp"

#include <gtest/gtest.h>

#include "core/switching_graph.hpp"
#include "core/ties.hpp"
#include "gen/generators.hpp"
#include "test_util.hpp"

namespace ncpm::core {
namespace {

TEST(Verify, VotesAreAntisymmetric) {
  const auto inst = ncpm::test::fig1_instance();
  matching::Matching m1(inst.num_applicants(), inst.total_posts());
  matching::Matching m2(inst.num_applicants(), inst.total_posts());
  const auto stated = ncpm::test::fig1_paper_matching();
  for (std::size_t a = 0; a < stated.size(); ++a) {
    m1.match(static_cast<std::int32_t>(a), stated[a]);
    // m2: everyone on their last resort.
    m2.match(static_cast<std::int32_t>(a), inst.last_resort(static_cast<std::int32_t>(a)));
  }
  EXPECT_EQ(popularity_votes(inst, m1, m2), 8);
  EXPECT_EQ(popularity_votes(inst, m2, m1), -8);
  EXPECT_EQ(popularity_votes(inst, m1, m1), 0);
}

TEST(Verify, ValidityCatchesCorruption) {
  const auto inst = ncpm::test::fig1_instance();
  matching::Matching m(inst.num_applicants(), inst.total_posts());
  // a1 matched to p3 (= id 2), which is NOT on a1's list.
  m.match(0, 2);
  EXPECT_FALSE(is_valid_assignment(inst, m));
  // Wrong shape.
  matching::Matching wrong(3, 4);
  EXPECT_FALSE(is_valid_assignment(inst, wrong));
  // Someone else's last resort is unacceptable.
  matching::Matching lr(inst.num_applicants(), inst.total_posts());
  lr.match(0, inst.last_resort(1));
  EXPECT_FALSE(is_valid_assignment(inst, lr));
}

TEST(Verify, SizeCountsRealPostsOnly) {
  const auto inst = Instance::strict(2, {{0}, {1}});
  matching::Matching m(2, inst.total_posts());
  m.match(0, 0);
  m.match(1, inst.last_resort(1));
  EXPECT_TRUE(is_applicant_complete(inst, m));
  EXPECT_EQ(matching_size(inst, m), 1u);
}

TEST(Verify, CharacterizationRequiresCompleteness) {
  const auto inst = ncpm::test::fig1_instance();
  const auto rg = build_reduced_graph(inst);
  matching::Matching partial(inst.num_applicants(), inst.total_posts());
  partial.match(0, 0);
  EXPECT_FALSE(satisfies_popular_characterization(inst, rg, partial));
}

struct CountParam {
  std::uint64_t seed;
  std::int32_t n_a, n_p, list_max;
};

class CountPopular : public ::testing::TestWithParam<CountParam> {};

TEST_P(CountPopular, MatchesBruteForceEnumeration) {
  const auto [seed, n_a, n_p, list_max] = GetParam();
  for (std::uint64_t round = 0; round < 8; ++round) {
    gen::StrictConfig cfg;
    cfg.num_applicants = n_a;
    cfg.num_posts = n_p;
    cfg.list_min = 1;
    cfg.list_max = list_max;
    cfg.seed = seed * 1009 + round;
    const auto inst = gen::random_strict_instance(cfg);
    const auto count = count_popular_matchings(inst);
    const auto brute = all_popular_matchings_bruteforce(inst);
    ASSERT_EQ(count.has_value(), !brute.empty()) << "seed " << cfg.seed;
    if (count.has_value()) {
      EXPECT_EQ(*count, brute.size()) << "seed " << cfg.seed;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(TinyInstances, CountPopular,
                         ::testing::Values(CountParam{1, 3, 3, 3}, CountParam{2, 4, 4, 3},
                                           CountParam{3, 5, 4, 2}, CountParam{4, 4, 5, 4},
                                           CountParam{5, 5, 5, 3}, CountParam{6, 6, 4, 2}));

TEST(CountPopular, PaperInstance) {
  // Instance I: one cycle component (x2) and one tree component with
  // switching paths from p8 and p9 (x3) -> 6 popular matchings.
  const auto inst = ncpm::test::fig1_instance();
  const auto count = count_popular_matchings(inst);
  ASSERT_TRUE(count.has_value());
  EXPECT_EQ(*count, 6u);
  EXPECT_EQ(all_popular_matchings_bruteforce(inst).size(), 6u);
}

TEST(TiesCharacterization, AcceptsSolverOutputAndRejectsCorruption) {
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    gen::TiesConfig cfg;
    cfg.num_applicants = 20;
    cfg.num_posts = 15;
    cfg.list_min = 1;
    cfg.list_max = 4;
    cfg.tie_prob = 0.5;
    cfg.seed = seed;
    const auto inst = gen::random_ties_instance(cfg);
    const auto m = find_popular_matching_ties(inst);
    if (!m.has_value()) continue;
    EXPECT_TRUE(satisfies_ties_characterization(inst, *m)) << "seed " << seed;
    // Corrupt: move applicant 0 to its last resort (freeing a post).
    auto bad = *m;
    bad.unmatch_left(0);
    if (!bad.right_matched(inst.last_resort(0))) {
      bad.match(0, inst.last_resort(0));
      // This usually breaks condition (i); it must never crash.
      (void)satisfies_ties_characterization(inst, bad);
    }
  }
}

TEST(TiesCharacterization, AgreesWithBruteForceOnTinyInstances) {
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    gen::TiesConfig cfg;
    cfg.num_applicants = 4;
    cfg.num_posts = 4;
    cfg.list_min = 1;
    cfg.list_max = 3;
    cfg.tie_prob = 0.5;
    cfg.seed = seed;
    const auto inst = gen::random_ties_instance(cfg);
    // The characterization must agree with Definition 1 on every
    // applicant-complete assignment.
    for_each_assignment(inst, [&](const std::vector<std::int32_t>& post_of) {
      const auto m = assignment_to_matching(inst, post_of);
      EXPECT_EQ(satisfies_ties_characterization(inst, m), is_popular_bruteforce(inst, m))
          << "seed " << seed;
    });
  }
}

}  // namespace
}  // namespace ncpm::core
