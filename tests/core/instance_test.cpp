// Instance model: validation, rank lookups, preference comparisons, ties,
// last resorts and the no-last-resort mode of Theorem 11.

#include "core/instance.hpp"

#include <gtest/gtest.h>

namespace ncpm::core {
namespace {

TEST(Instance, StrictBasics) {
  const auto inst = Instance::strict(4, {{2, 0}, {1}});
  EXPECT_EQ(inst.num_applicants(), 2);
  EXPECT_EQ(inst.num_posts(), 4);
  EXPECT_TRUE(inst.strict_prefs());
  EXPECT_TRUE(inst.has_last_resorts());
  EXPECT_EQ(inst.total_posts(), 6);
  EXPECT_EQ(inst.last_resort(0), 4);
  EXPECT_EQ(inst.last_resort(1), 5);
  EXPECT_EQ(inst.list_length(0), 2u);
  EXPECT_EQ(inst.num_ranks(0), 2);
  EXPECT_EQ(inst.max_ranks(), 2);
}

TEST(Instance, RankLookups) {
  const auto inst = Instance::strict(4, {{2, 0, 3}});
  EXPECT_EQ(inst.rank_of(0, 2), 1);
  EXPECT_EQ(inst.rank_of(0, 0), 2);
  EXPECT_EQ(inst.rank_of(0, 3), 3);
  EXPECT_EQ(inst.rank_of(0, 1), kNoRank);          // unacceptable
  EXPECT_EQ(inst.rank_of(0, inst.last_resort(0)), 4);  // list length + 1
  EXPECT_EQ(inst.rank_of(0, kNone), kNoRank);
}

TEST(Instance, PrefersIncludingUnmatched) {
  const auto inst = Instance::strict(3, {{1, 0}});
  EXPECT_TRUE(inst.prefers(0, 1, 0));
  EXPECT_FALSE(inst.prefers(0, 0, 1));
  EXPECT_FALSE(inst.prefers(0, 1, 1));
  EXPECT_TRUE(inst.prefers(0, 0, inst.last_resort(0)));
  EXPECT_TRUE(inst.prefers(0, inst.last_resort(0), kNone));  // matched beats unmatched
}

TEST(Instance, TiesShareRanks) {
  const auto inst = Instance::with_ties(5, {{{3}, {1, 2}, {0}}});
  EXPECT_FALSE(inst.strict_prefs());
  EXPECT_EQ(inst.rank_of(0, 3), 1);
  EXPECT_EQ(inst.rank_of(0, 1), 2);
  EXPECT_EQ(inst.rank_of(0, 2), 2);
  EXPECT_EQ(inst.rank_of(0, 0), 3);
  EXPECT_FALSE(inst.prefers(0, 1, 2));  // indifferent
  EXPECT_FALSE(inst.prefers(0, 2, 1));
  EXPECT_EQ(inst.num_ranks(0), 3);
}

TEST(Instance, NoLastResortMode) {
  const auto inst = Instance::with_ties(3, {{{0, 1}}, {}}, /*with_last_resorts=*/false);
  EXPECT_FALSE(inst.has_last_resorts());
  EXPECT_EQ(inst.total_posts(), 3);
  EXPECT_THROW(inst.last_resort(0), std::logic_error);
  EXPECT_EQ(inst.list_length(1), 0u);  // empty lists allowed here
}

TEST(Instance, ValidationErrors) {
  EXPECT_THROW(Instance::strict(2, {{0, 0}}), std::invalid_argument);   // duplicate post
  EXPECT_THROW(Instance::strict(2, {{5}}), std::out_of_range);          // post out of range
  EXPECT_THROW(Instance::strict(2, {{}}), std::invalid_argument);       // empty list w/ last resorts
  EXPECT_THROW(Instance::with_ties(2, {{{}}}), std::invalid_argument);  // empty tie group
  EXPECT_THROW(Instance::strict(-1, {}), std::invalid_argument);        // negative posts
}

TEST(Instance, OtherApplicantsLastResortIsUnacceptable) {
  const auto inst = Instance::strict(2, {{0}, {1}});
  EXPECT_EQ(inst.rank_of(0, inst.last_resort(1)), kNoRank);
  EXPECT_EQ(inst.rank_of(1, inst.last_resort(0)), kNoRank);
}

TEST(Instance, ApplicantOutOfRangeThrows) {
  const auto inst = Instance::strict(2, {{0}});
  EXPECT_THROW(inst.rank_of(5, 0), std::out_of_range);
  EXPECT_THROW(inst.last_resort(-1), std::out_of_range);
}

}  // namespace
}  // namespace ncpm::core
