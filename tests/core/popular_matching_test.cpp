// Algorithm 1 end to end (Theorem 3): the NC pipeline and the sequential
// baseline must agree on existence, and both outputs must satisfy the
// Theorem 1 characterization; on tiny instances, literal brute-force
// popularity is the oracle.

#include "core/popular_matching.hpp"

#include <gtest/gtest.h>

#include "core/abraham_baseline.hpp"
#include "core/reduced_graph.hpp"
#include "core/verify.hpp"
#include "pram/parallel.hpp"
#include "gen/generators.hpp"
#include "test_util.hpp"

namespace ncpm::core {
namespace {

TEST(PopularMatching, PaperInstanceYieldsAPopularMatching) {
  const auto inst = ncpm::test::fig1_instance();
  const auto rg = build_reduced_graph(inst);
  const auto m = find_popular_matching(inst);
  ASSERT_TRUE(m.has_value());
  EXPECT_TRUE(satisfies_popular_characterization(inst, rg, *m));
  EXPECT_EQ(matching_size(inst, *m), 8u);  // everyone on a real post
}

TEST(PopularMatching, PaperStatedMatchingIsPopular) {
  const auto inst = ncpm::test::fig1_instance();
  const auto rg = build_reduced_graph(inst);
  matching::Matching m(inst.num_applicants(), inst.total_posts());
  const auto paper = ncpm::test::fig1_paper_matching();
  for (std::size_t a = 0; a < paper.size(); ++a) {
    m.match(static_cast<std::int32_t>(a), paper[a]);
  }
  EXPECT_TRUE(satisfies_popular_characterization(inst, rg, m));
}

TEST(PopularMatching, ContentionInstanceHasNone) {
  const auto inst = gen::contention_instance(4);
  EXPECT_FALSE(find_popular_matching(inst).has_value());
  EXPECT_FALSE(find_popular_matching_sequential(inst).has_value());
  EXPECT_TRUE(all_popular_matchings_bruteforce(inst).empty());
}

TEST(PopularMatching, TwoApplicantsOnePost) {
  // Both want post 0 only: f = {0}, s(a) = l(a); one gets the post, the
  // other the last resort. Popular: exists.
  const auto inst = Instance::strict(1, {{0}, {0}});
  const auto m = find_popular_matching(inst);
  ASSERT_TRUE(m.has_value());
  EXPECT_TRUE(is_popular_bruteforce(inst, *m));
  EXPECT_EQ(matching_size(inst, *m), 1u);
}

TEST(PopularMatching, NcStatsReportRounds) {
  const auto inst = ncpm::test::fig1_instance();
  PopularRunStats stats;
  pram::NcCounters counters;
  ASSERT_TRUE(find_popular_matching(inst, &counters, &stats).has_value());
  EXPECT_EQ(stats.while_rounds, 1u);
  EXPECT_GT(counters.rounds, 0u);
}

struct SmallParam {
  std::uint64_t seed;
  std::int32_t n_a, n_p, list_max;
};

class PopularBruteForce : public ::testing::TestWithParam<SmallParam> {};

TEST_P(PopularBruteForce, NcMatchesOracleOnTinyInstances) {
  const auto [seed, n_a, n_p, list_max] = GetParam();
  for (std::uint64_t round = 0; round < 25; ++round) {
    gen::StrictConfig cfg;
    cfg.num_applicants = n_a;
    cfg.num_posts = n_p;
    cfg.list_min = 1;
    cfg.list_max = list_max;
    cfg.seed = seed * 1000 + round;
    const auto inst = gen::random_strict_instance(cfg);
    const auto nc = find_popular_matching(inst);
    const auto oracle = all_popular_matchings_bruteforce(inst);
    ASSERT_EQ(nc.has_value(), !oracle.empty()) << "seed " << cfg.seed;
    if (nc.has_value()) {
      EXPECT_TRUE(is_popular_bruteforce(inst, *nc)) << "seed " << cfg.seed;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(TinyInstances, PopularBruteForce,
                         ::testing::Values(SmallParam{1, 3, 3, 3}, SmallParam{2, 4, 3, 2},
                                           SmallParam{3, 4, 4, 4}, SmallParam{4, 5, 4, 3},
                                           SmallParam{5, 5, 5, 2}, SmallParam{6, 6, 4, 3}));

struct AgreeParam {
  std::uint64_t seed;
  std::int32_t n_a, n_p;
  double zipf;
};

class NcVsSequential : public ::testing::TestWithParam<AgreeParam> {};

TEST_P(NcVsSequential, ExistenceAgreesAndBothOutputsAreCharacterized) {
  const auto [seed, n_a, n_p, zipf] = GetParam();
  for (std::uint64_t round = 0; round < 10; ++round) {
    gen::StrictConfig cfg;
    cfg.num_applicants = n_a;
    cfg.num_posts = n_p;
    cfg.list_min = 2;
    cfg.list_max = 6;
    cfg.zipf_s = zipf;
    cfg.seed = seed * 100 + round;
    const auto inst = gen::random_strict_instance(cfg);
    const auto rg = build_reduced_graph(inst);
    const auto nc = find_popular_matching(inst);
    const auto seq = find_popular_matching_sequential(inst);
    ASSERT_EQ(nc.has_value(), seq.has_value()) << "seed " << cfg.seed;
    if (nc.has_value()) {
      EXPECT_TRUE(satisfies_popular_characterization(inst, rg, *nc));
      EXPECT_TRUE(satisfies_popular_characterization(inst, rg, *seq));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(MediumInstances, NcVsSequential,
                         ::testing::Values(AgreeParam{1, 40, 60, 0.0}, AgreeParam{2, 100, 80, 0.0},
                                           AgreeParam{3, 64, 64, 1.0}, AgreeParam{4, 200, 300, 0.5},
                                           AgreeParam{5, 500, 700, 0.0},
                                           AgreeParam{6, 30, 200, 2.0}));

class SolvableFamilies : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SolvableFamilies, PlantedInstancesAlwaysYieldPopularMatchings) {
  gen::SolvableConfig cfg;
  cfg.num_applicants = 150;
  cfg.num_posts = 260;
  cfg.all_f_fraction = 0.3;
  cfg.contention = 2.5;
  cfg.seed = GetParam();
  const auto inst = gen::solvable_strict_instance(cfg);
  const auto rg = build_reduced_graph(inst);
  const auto m = find_popular_matching(inst);
  ASSERT_TRUE(m.has_value());
  EXPECT_TRUE(satisfies_popular_characterization(inst, rg, *m));
}

INSTANTIATE_TEST_SUITE_P(Seeds, SolvableFamilies, ::testing::Values(1, 2, 3, 4, 5));

TEST(PopularMatching, ExecutorWidthDoesNotChangeExistence) {
  gen::StrictConfig cfg;
  cfg.num_applicants = 120;
  cfg.num_posts = 90;
  cfg.seed = 99;
  const auto inst = gen::random_strict_instance(cfg);
  const auto ref = find_popular_matching(inst);
  for (const int lanes : {1, 2, 5}) {
    pram::Executor ex(lanes);
    pram::Workspace ws(ex);
    const auto m = find_popular_matching(inst, ws);
    EXPECT_EQ(m.has_value(), ref.has_value());
  }
}

}  // namespace
}  // namespace ncpm::core
