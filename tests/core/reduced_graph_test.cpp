// Reduced-graph construction (Section III-A), anchored on the paper's
// Figure 2 and checked by invariants on random instances.

#include "core/reduced_graph.hpp"

#include <gtest/gtest.h>

#include "gen/generators.hpp"
#include "test_util.hpp"

namespace ncpm::core {
namespace {

TEST(ReducedGraph, Figure2OfThePaper) {
  const auto inst = ncpm::test::fig1_instance();
  const auto rg = build_reduced_graph(inst);
  // f-posts: p1 p4 p5 p7 -> 0, 3, 4, 6.
  EXPECT_EQ(rg.f_posts, (std::vector<std::int32_t>{0, 3, 4, 6}));
  // Reduced lists of Figure 2a: (f, s) per applicant.
  const std::vector<std::pair<std::int32_t, std::int32_t>> expected = {
      {0, 1},  // a1: p1 p2
      {3, 1},  // a2: p4 p2
      {3, 2},  // a3: p4 p3
      {0, 2},  // a4: p1 p3
      {4, 1},  // a5: p5 p2
      {6, 5},  // a6: p7 p6
      {6, 7},  // a7: p7 p8
      {6, 8},  // a8: p7 p9
  };
  for (std::size_t a = 0; a < expected.size(); ++a) {
    EXPECT_EQ(rg.f_post[a], expected[a].first) << "a" << a + 1;
    EXPECT_EQ(rg.s_post[a], expected[a].second) << "a" << a + 1;
  }
  // f^-1(p7) = {a6, a7, a8} (0-indexed 5, 6, 7).
  const auto inv = rg.f_inverse(6);
  EXPECT_EQ(std::vector<std::int32_t>(inv.begin(), inv.end()),
            (std::vector<std::int32_t>{5, 6, 7}));
}

TEST(ReducedGraph, AllFPostListFallsToLastResort) {
  // a0 makes post 0 an f-post; a1's whole list is f-posts.
  const auto inst = Instance::strict(2, {{0, 1}, {0}});
  const auto rg = build_reduced_graph(inst);
  EXPECT_EQ(rg.s_post[1], inst.last_resort(1));
  EXPECT_EQ(rg.s_rank[1], 2);  // one rank + 1
}

TEST(ReducedGraph, RejectsTiesAndMissingLastResorts) {
  EXPECT_THROW(build_reduced_graph(Instance::with_ties(3, {{{0, 1}}})), std::invalid_argument);
  EXPECT_THROW(
      build_reduced_graph(Instance::with_ties(3, {{{0}}}, /*with_last_resorts=*/false)),
      std::invalid_argument);
}

class ReducedGraphRandom : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ReducedGraphRandom, StructuralInvariants) {
  gen::StrictConfig cfg;
  cfg.num_applicants = 60;
  cfg.num_posts = 40;
  cfg.list_min = 1;
  cfg.list_max = 6;
  cfg.seed = GetParam();
  const auto inst = gen::random_strict_instance(cfg);
  const auto rg = build_reduced_graph(inst);

  for (std::int32_t a = 0; a < inst.num_applicants(); ++a) {
    const auto ai = static_cast<std::size_t>(a);
    // f(a) is the top of a's list; s(a) differs from f(a).
    EXPECT_EQ(rg.f_post[ai], inst.posts_of(a)[0]);
    EXPECT_NE(rg.f_post[ai], rg.s_post[ai]);
    // f-posts and s-posts are disjoint: s(a) is never an f-post.
    EXPECT_EQ(rg.is_f_post[static_cast<std::size_t>(rg.s_post[ai])], 0);
    // s(a) is the *first* non-f-post: everything strictly better is an f-post.
    for (const auto p : inst.posts_of(a)) {
      if (p == rg.s_post[ai]) break;
      EXPECT_EQ(rg.is_f_post[static_cast<std::size_t>(p)], 1)
          << "post " << p << " above s(a) must be an f-post";
    }
    // s_rank is consistent.
    EXPECT_EQ(rg.s_rank[ai], inst.rank_of(a, rg.s_post[ai]));
  }
  // f_inverse partitions the applicants.
  std::size_t total = 0;
  for (std::int32_t p = 0; p < inst.total_posts(); ++p) {
    for (const auto a : rg.f_inverse(p)) {
      EXPECT_EQ(rg.f_post[static_cast<std::size_t>(a)], p);
      ++total;
    }
  }
  EXPECT_EQ(total, static_cast<std::size_t>(inst.num_applicants()));
}

INSTANTIATE_TEST_SUITE_P(Seeds, ReducedGraphRandom, ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

}  // namespace
}  // namespace ncpm::core
