// End-to-end reproduction of the paper's worked example (Figures 1-4):
// instance I, its reduced graph, the Algorithm 2 trace, the resulting
// popular matching, and the switching graph of the stated matching.

#include <gtest/gtest.h>

#include "core/applicant_complete.hpp"
#include "core/max_card_popular.hpp"
#include "core/popular_matching.hpp"
#include "core/reduced_graph.hpp"
#include "core/switching_graph.hpp"
#include "core/verify.hpp"
#include "test_util.hpp"

namespace ncpm::core {
namespace {

class PaperExample : public ::testing::Test {
 protected:
  Instance inst = ncpm::test::fig1_instance();
  ReducedGraph rg = build_reduced_graph(inst);
};

TEST_F(PaperExample, Figure1InstanceShape) {
  EXPECT_EQ(inst.num_applicants(), 8);
  EXPECT_EQ(inst.num_posts(), 9);
  EXPECT_TRUE(inst.strict_prefs());
  // Spot checks against the printed lists.
  EXPECT_EQ(inst.rank_of(0, 0), 1);  // a1: p1 first
  EXPECT_EQ(inst.rank_of(1, 7), 5);  // a2: p8 fifth
  EXPECT_EQ(inst.rank_of(7, 2), 6);  // a8: p3 sixth
}

TEST_F(PaperExample, Figure2FAndSPosts) {
  // "The set of f-posts is {p1, p4, p5, p7} and the set of s-posts is
  // {p2, p3, p6, p8, p9}."
  EXPECT_EQ(rg.f_posts, (std::vector<std::int32_t>{0, 3, 4, 6}));
  std::vector<std::int32_t> s_posts(rg.s_post.begin(), rg.s_post.end());
  std::sort(s_posts.begin(), s_posts.end());
  s_posts.erase(std::unique(s_posts.begin(), s_posts.end()), s_posts.end());
  EXPECT_EQ(s_posts, (std::vector<std::int32_t>{1, 2, 5, 7, 8}));
}

TEST_F(PaperExample, Figure3WhileLoopOutcome) {
  const auto ac = applicant_complete_matching(inst, rg);
  ASSERT_TRUE(ac.exists);
  // "In the while loop of Algorithm 2, pairs (a8,p9), (a6,p6), (a7,p8),
  // (a5,p5) are matched," leaving the 8-cycle of Figure 3 on
  // {a1..a4} u {p1, p2, p3, p4}.
  EXPECT_EQ(ac.post_of[7], 8);
  EXPECT_EQ(ac.post_of[5], 5);
  EXPECT_EQ(ac.post_of[6], 7);
  EXPECT_EQ(ac.post_of[4], 4);
  // The cycle phase must give a1..a4 posts within {p1, p2, p3, p4}.
  for (std::size_t a = 0; a < 4; ++a) {
    EXPECT_GE(ac.post_of[a], 0);
    EXPECT_LE(ac.post_of[a], 3);
  }
}

TEST_F(PaperExample, SectionIIStatedMatchingIsPopularAndOursToo) {
  const auto mine = find_popular_matching(inst);
  ASSERT_TRUE(mine.has_value());
  EXPECT_TRUE(satisfies_popular_characterization(inst, rg, *mine));
  EXPECT_TRUE(is_popular_bruteforce(inst, *mine));
  EXPECT_EQ(matching_size(inst, *mine), 8u);

  matching::Matching paper(inst.num_applicants(), inst.total_posts());
  const auto stated = ncpm::test::fig1_paper_matching();
  for (std::size_t a = 0; a < stated.size(); ++a) {
    paper.match(static_cast<std::int32_t>(a), stated[a]);
  }
  EXPECT_TRUE(is_popular_bruteforce(inst, paper));
}

TEST_F(PaperExample, Figure4SwitchingGraphShape) {
  matching::Matching paper(inst.num_applicants(), inst.total_posts());
  const auto stated = ncpm::test::fig1_paper_matching();
  for (std::size_t a = 0; a < stated.size(); ++a) {
    paper.match(static_cast<std::int32_t>(a), stated[a]);
  }
  const SwitchingEngine engine(inst, rg, paper);
  // "There are one switching cycle and two switching paths starting from
  // p8 and p9 respectfully."
  std::size_t cycle_count = engine.analysis().cycles.size();
  EXPECT_EQ(cycle_count, 1u);
  std::vector<std::int32_t> path_starts;
  for (const auto label : engine.nontrivial_components()) {
    if (!engine.component_has_cycle(label)) {
      const auto starts = engine.path_starts_of_component(label);
      path_starts.insert(path_starts.end(), starts.begin(), starts.end());
    }
  }
  EXPECT_EQ(path_starts, (std::vector<std::int32_t>{7, 8}));  // p8, p9
}

TEST_F(PaperExample, AllEightPopularMatchingsAgreeAcrossOracles) {
  // Theorem 9 enumeration and raw brute force must coincide on instance I.
  const auto mine = find_popular_matching(inst);
  ASSERT_TRUE(mine.has_value());
  const auto via_switching = all_popular_matchings_via_switching(inst, rg, *mine);
  const auto brute = all_popular_matchings_bruteforce(inst);
  EXPECT_EQ(via_switching.size(), brute.size());
  for (const auto& cand : via_switching) {
    EXPECT_TRUE(is_popular_bruteforce(inst, cand));
  }
  // Every popular matching of I uses all real posts: max cardinality = 8.
  const auto maxc = find_max_card_popular(inst);
  ASSERT_TRUE(maxc.has_value());
  EXPECT_EQ(matching_size(inst, *maxc), 8u);
}

}  // namespace
}  // namespace ncpm::core
