// Section V: popular matchings with ties (AIKM characterization) and the
// Theorem 11 reduction, validated against brute force and Hopcroft–Karp.

#include "core/ties.hpp"

#include <gtest/gtest.h>

#include "core/popular_matching.hpp"
#include "core/verify.hpp"
#include "gen/generators.hpp"
#include "matching/hopcroft_karp.hpp"
#include "test_util.hpp"

namespace ncpm::core {
namespace {

TEST(Ties, RequiresLastResorts) {
  const auto inst = Instance::with_ties(2, {{{0}}}, false);
  EXPECT_THROW(find_popular_matching_ties(inst), std::invalid_argument);
}

TEST(Ties, AllTiedSingleGroupAdmitsPopularMatching) {
  // Two applicants indifferent between two posts: any perfect assignment is
  // popular.
  const auto inst = Instance::with_ties(2, {{{0, 1}}, {{0, 1}}});
  const auto m = find_popular_matching_ties(inst);
  ASSERT_TRUE(m.has_value());
  EXPECT_TRUE(is_popular_bruteforce(inst, *m));
  EXPECT_EQ(matching_size(inst, *m), 2u);
}

TEST(Ties, StrictContentionStillDetected) {
  // The strict 3-on-2 contention instance, fed through the ties machinery.
  const auto inst = gen::contention_instance(3);
  EXPECT_FALSE(find_popular_matching_ties(inst).has_value());
}

TEST(Ties, TieOnFirstChoicesRescuesContention) {
  // Unlike the strict contention case, a rank-1 tie over three posts lets
  // all three applicants be rank-1 matched.
  const auto inst = Instance::with_ties(3, {{{0, 1, 2}}, {{0, 1, 2}}, {{0, 1, 2}}});
  const auto m = find_popular_matching_ties(inst);
  ASSERT_TRUE(m.has_value());
  EXPECT_TRUE(is_popular_bruteforce(inst, *m));
}

struct TiesParam {
  std::uint64_t seed;
  std::int32_t n_a, n_p, list_max;
  double tie_prob;
};

class TiesBruteForce : public ::testing::TestWithParam<TiesParam> {};

TEST_P(TiesBruteForce, AgreesWithExhaustiveOracle) {
  const auto [seed, n_a, n_p, list_max, tie_prob] = GetParam();
  for (std::uint64_t round = 0; round < 25; ++round) {
    gen::TiesConfig cfg;
    cfg.num_applicants = n_a;
    cfg.num_posts = n_p;
    cfg.list_min = 1;
    cfg.list_max = list_max;
    cfg.tie_prob = tie_prob;
    cfg.seed = seed * 613 + round;
    const auto inst = gen::random_ties_instance(cfg);
    const auto m = find_popular_matching_ties(inst);
    const auto oracle = all_popular_matchings_bruteforce(inst);
    ASSERT_EQ(m.has_value(), !oracle.empty()) << "seed " << cfg.seed;
    if (m.has_value()) {
      EXPECT_TRUE(is_popular_bruteforce(inst, *m)) << "seed " << cfg.seed;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(TinyInstances, TiesBruteForce,
                         ::testing::Values(TiesParam{1, 3, 3, 3, 0.5}, TiesParam{2, 4, 3, 2, 0.3},
                                           TiesParam{3, 4, 4, 4, 0.7}, TiesParam{4, 5, 4, 3, 0.4},
                                           TiesParam{5, 5, 3, 3, 1.0},
                                           TiesParam{6, 4, 4, 3, 0.0}));

class TiesVsStrict : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(TiesVsStrict, OnStrictInstancesExistenceMatchesAlgorithm1) {
  for (std::uint64_t round = 0; round < 10; ++round) {
    gen::StrictConfig cfg;
    cfg.num_applicants = 40;
    cfg.num_posts = 30;
    cfg.list_min = 1;
    cfg.list_max = 5;
    cfg.seed = GetParam() * 97 + round;
    const auto inst = gen::random_strict_instance(cfg);
    const auto via_ties = find_popular_matching_ties(inst);
    const auto via_nc = find_popular_matching(inst);
    ASSERT_EQ(via_ties.has_value(), via_nc.has_value()) << "seed " << cfg.seed;
    if (via_ties.has_value()) {
      // Both are popular; with strict lists the characterizations coincide.
      const auto rg = build_reduced_graph(inst);
      EXPECT_TRUE(satisfies_popular_characterization(inst, rg, *via_ties));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TiesVsStrict, ::testing::Values(1, 2, 3, 4, 5));

TEST(Theorem11, ReductionInstanceShape) {
  const auto g = gen::random_bipartite(10, 8, 2.5, 42);
  const auto inst = rank1_instance(g);
  EXPECT_FALSE(inst.has_last_resorts());
  EXPECT_EQ(inst.num_applicants(), 10);
  EXPECT_EQ(inst.num_posts(), 8);
  for (std::int32_t a = 0; a < inst.num_applicants(); ++a) {
    for (const auto r : inst.ranks_of(a)) EXPECT_EQ(r, 1);
    EXPECT_EQ(inst.list_length(a), g.degree_left(a));
  }
}

class Theorem11Random : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(Theorem11Random, ReductionRecoversMaximumCardinality) {
  for (std::uint64_t round = 0; round < 10; ++round) {
    const auto g =
        gen::random_bipartite(20, 15, 0.5 + static_cast<double>(round) * 0.4, GetParam() * 31 + round);
    const auto via_popular = max_card_bipartite_via_popular(g);
    const auto hk = matching::maximum_matching(g);
    EXPECT_EQ(via_popular.size(), hk.size());
    EXPECT_TRUE(via_popular.consistent_with(g));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, Theorem11Random, ::testing::Values(1, 2, 3, 4, 5));

class Lemma12And13 : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(Lemma12And13, OnRank1InstancesPopularEqualsMaximum) {
  // Lemma 13: the maximum matching returned is popular (brute-force votes);
  // Lemma 12: every popular matching is maximum — checked by asserting no
  // smaller matching is popular and our popular one has maximum size.
  for (int round = 0; round < 10; ++round) {
    const auto g = gen::random_bipartite(5, 4, 1.5, GetParam() * 1000 + static_cast<std::uint64_t>(round));
    const auto inst = rank1_instance(g);
    const auto m = popular_matching_rank1(inst);
    EXPECT_TRUE(is_popular_bruteforce(inst, m)) << "Lemma 13 violated";
    // Lemma 12: all brute-force popular matchings share the maximum size.
    const auto all = all_popular_matchings_bruteforce(inst);
    for (const auto& cand : all) {
      EXPECT_EQ(cand.size(), m.size()) << "Lemma 12 violated";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, Lemma12And13, ::testing::Values(1, 2, 3, 4));

}  // namespace
}  // namespace ncpm::core
