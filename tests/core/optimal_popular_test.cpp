// Section IV-E: optimal popular matchings — weighted, rank-maximal and fair
// — validated against exhaustive enumeration of all popular matchings.

#include "core/optimal_popular.hpp"

#include <gtest/gtest.h>

#include "core/max_card_popular.hpp"
#include "core/verify.hpp"
#include "gen/generators.hpp"
#include "test_util.hpp"

namespace ncpm::core {
namespace {

struct Param {
  std::uint64_t seed;
  std::int32_t n_a, n_p, list_max;
};

class OptimalOracle : public ::testing::TestWithParam<Param> {};

TEST_P(OptimalOracle, RankMaximalBeatsEveryPopularMatchingLexicographically) {
  const auto [seed, n_a, n_p, list_max] = GetParam();
  for (std::uint64_t round = 0; round < 15; ++round) {
    gen::StrictConfig cfg;
    cfg.num_applicants = n_a;
    cfg.num_posts = n_p;
    cfg.list_min = 1;
    cfg.list_max = list_max;
    cfg.seed = seed * 211 + round;
    const auto inst = gen::random_strict_instance(cfg);
    const auto all = all_popular_matchings_bruteforce(inst);
    const auto m = find_rank_maximal_popular(inst);
    ASSERT_EQ(m.has_value(), !all.empty()) << "seed " << cfg.seed;
    if (!m.has_value()) continue;
    EXPECT_TRUE(is_popular_bruteforce(inst, *m));
    const Profile mine = matching_profile(inst, *m);
    for (const auto& cand : all) {
      const Profile other = matching_profile(inst, cand);
      EXPECT_FALSE(Profile::rank_maximal_less(mine, other))
          << "seed " << cfg.seed << ": a more rank-maximal popular matching exists";
    }
  }
}

TEST_P(OptimalOracle, FairIsMinimalAmongPopularMatchings) {
  const auto [seed, n_a, n_p, list_max] = GetParam();
  for (std::uint64_t round = 0; round < 15; ++round) {
    gen::StrictConfig cfg;
    cfg.num_applicants = n_a;
    cfg.num_posts = n_p;
    cfg.list_min = 1;
    cfg.list_max = list_max;
    cfg.seed = seed * 307 + round;
    const auto inst = gen::random_strict_instance(cfg);
    const auto all = all_popular_matchings_bruteforce(inst);
    const auto m = find_fair_popular(inst);
    ASSERT_EQ(m.has_value(), !all.empty()) << "seed " << cfg.seed;
    if (!m.has_value()) continue;
    EXPECT_TRUE(is_popular_bruteforce(inst, *m));
    const Profile mine = matching_profile(inst, *m);
    for (const auto& cand : all) {
      const Profile other = matching_profile(inst, cand);
      EXPECT_FALSE(Profile::fair_less(other, mine))
          << "seed " << cfg.seed << ": a fairer popular matching exists";
    }
  }
}

TEST_P(OptimalOracle, MaxWeightMatchesExhaustiveSearch) {
  const auto [seed, n_a, n_p, list_max] = GetParam();
  for (std::uint64_t round = 0; round < 15; ++round) {
    gen::StrictConfig cfg;
    cfg.num_applicants = n_a;
    cfg.num_posts = n_p;
    cfg.list_min = 1;
    cfg.list_max = list_max;
    cfg.seed = seed * 401 + round;
    const auto inst = gen::random_strict_instance(cfg);
    // Deterministic pseudo-random weights from the pair ids.
    const WeightFn weight = [&](std::int32_t a, std::int32_t p) {
      if (inst.is_last_resort(p)) return std::int64_t{0};
      return static_cast<std::int64_t>((a * 37 + p * 101) % 50);
    };
    const auto all = all_popular_matchings_bruteforce(inst);
    const auto m = find_optimal_popular(inst, weight, /*maximize=*/true);
    ASSERT_EQ(m.has_value(), !all.empty());
    if (!m.has_value()) continue;
    const auto total = [&](const matching::Matching& cand) {
      std::int64_t sum = 0;
      for (std::int32_t a = 0; a < inst.num_applicants(); ++a) sum += weight(a, cand.right_of(a));
      return sum;
    };
    std::int64_t best = total(all.front());
    for (const auto& cand : all) best = std::max(best, total(cand));
    EXPECT_EQ(total(*m), best) << "seed " << cfg.seed;

    const auto mn = find_optimal_popular(inst, weight, /*maximize=*/false);
    std::int64_t worst = total(all.front());
    for (const auto& cand : all) worst = std::min(worst, total(cand));
    EXPECT_EQ(total(*mn), worst) << "seed " << cfg.seed;
  }
}

INSTANTIATE_TEST_SUITE_P(TinyInstances, OptimalOracle,
                         ::testing::Values(Param{1, 3, 3, 3}, Param{2, 4, 4, 3},
                                           Param{3, 5, 4, 2}, Param{4, 4, 5, 4},
                                           Param{5, 5, 5, 3}));

TEST(OptimalPopular, FairIsAlsoMaximumCardinality) {
  // "a fair popular matching is always a maximum-cardinality popular
  // matching since the number of last resort posts is minimized."
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    gen::SolvableConfig cfg;
    cfg.num_applicants = 60;
    cfg.num_posts = 110;
    cfg.all_f_fraction = 0.4;
    cfg.contention = 2.5;
    cfg.seed = seed;
    const auto inst = gen::solvable_strict_instance(cfg);
    const auto fair = find_fair_popular(inst);
    const auto maxc = find_max_card_popular(inst);
    ASSERT_TRUE(fair.has_value());
    ASSERT_TRUE(maxc.has_value());
    EXPECT_EQ(matching_size(inst, *fair), matching_size(inst, *maxc)) << "seed " << seed;
  }
}

TEST(OptimalPopular, MaxCardIsTheUnitWeightSpecialCase) {
  // Algorithm 3 == max-weight with 1 for real posts and 0 for last resorts.
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    gen::SolvableConfig cfg;
    cfg.num_applicants = 50;
    cfg.num_posts = 90;
    cfg.all_f_fraction = 0.5;
    cfg.contention = 2.5;
    cfg.seed = seed;
    const auto inst = gen::solvable_strict_instance(cfg);
    const WeightFn unit = [&](std::int32_t, std::int32_t p) {
      return inst.is_last_resort(p) ? std::int64_t{0} : std::int64_t{1};
    };
    const auto via_weight = find_optimal_popular(inst, unit, true);
    const auto via_algo3 = find_max_card_popular(inst);
    ASSERT_TRUE(via_weight.has_value());
    ASSERT_TRUE(via_algo3.has_value());
    EXPECT_EQ(matching_size(inst, *via_weight), matching_size(inst, *via_algo3));
  }
}

TEST(Profile, OrdersBehaveAsDocumented) {
  Profile a(3), b(3);
  a[0] = 2;
  b[0] = 1;
  b[1] = 5;
  // Rank-maximal: a (more rank-1s) beats b.
  EXPECT_TRUE(Profile::rank_maximal_less(b, a));
  EXPECT_FALSE(Profile::rank_maximal_less(a, b));
  // Fair: compare from the worst bucket; equal there, then bucket 1: a has
  // fewer -> a is fair-smaller (better).
  EXPECT_TRUE(Profile::fair_less(a, b));
  Profile c(3);
  EXPECT_FALSE(Profile::fair_less(c, c));
  EXPECT_TRUE((a + b - b) == a);
  EXPECT_TRUE(c.is_zero());
  Profile d(2);
  EXPECT_THROW(void(Profile::fair_less(a, d)), std::invalid_argument);
  EXPECT_THROW(a += d, std::invalid_argument);
}

}  // namespace
}  // namespace ncpm::core
