// The zero-allocation round engine's correctness and steady-state
// guarantees: reusing one workspace across pipeline invocations (different
// instances, stale buffer contents) must not change any result, the
// while-loop must not grow the workspace after its first round, and the
// alive-edge compaction path — including rounds that shrink the alive set
// all the way to zero — must agree with the sequential oracle.

#include <gtest/gtest.h>

#include <cstdint>
#include <optional>
#include <vector>

#include "core/abraham_baseline.hpp"
#include "core/applicant_complete.hpp"
#include "core/popular_matching.hpp"
#include "core/reduced_graph.hpp"
#include "core/verify.hpp"
#include "gen/generators.hpp"
#include "matching/matching.hpp"
#include "pram/workspace.hpp"

namespace ncpm::core {
namespace {

std::vector<core::Instance> mixed_instances() {
  std::vector<core::Instance> out;
  {
    gen::SolvableConfig cfg;
    cfg.num_applicants = 400;
    cfg.num_posts = 1200;
    cfg.contention = 2.0;
    cfg.all_f_fraction = 0.25;
    cfg.seed = 101;
    out.push_back(gen::solvable_strict_instance(cfg));
  }
  {
    gen::StrictConfig cfg;
    cfg.num_applicants = 300;
    cfg.num_posts = 260;
    cfg.list_min = 2;
    cfg.list_max = 6;
    cfg.zipf_s = 0.9;
    cfg.seed = 7;
    out.push_back(gen::random_strict_instance(cfg));  // may be unsolvable
  }
  out.push_back(gen::binary_tree_instance(7));
  out.push_back(gen::contention_instance(5));  // unsolvable
  {
    gen::SolvableConfig cfg;
    cfg.num_applicants = 120;  // smaller than the first: buffers shrink
    cfg.num_posts = 400;
    cfg.contention = 4.0;
    cfg.seed = 33;
    out.push_back(gen::solvable_strict_instance(cfg));
  }
  return out;
}

// Running the full NC pipeline through one shared workspace — across
// instances of different sizes and solvability — must give bit-identical
// results to fresh-workspace runs.
TEST(WorkspaceReuse, SharedWorkspaceMatchesFreshWorkspaceAcrossInstances) {
  pram::Workspace shared;
  for (const auto& inst : mixed_instances()) {
    PopularRunStats shared_stats;
    const auto with_shared = find_popular_matching(inst, shared, nullptr, &shared_stats);
    PopularRunStats fresh_stats;
    const auto with_fresh = find_popular_matching(inst, nullptr, &fresh_stats);
    ASSERT_EQ(with_shared.has_value(), with_fresh.has_value());
    EXPECT_EQ(shared_stats.while_rounds, fresh_stats.while_rounds);
    if (with_shared.has_value()) {
      for (std::int32_t a = 0; a < inst.num_applicants(); ++a) {
        ASSERT_EQ(with_shared->right_of(a), with_fresh->right_of(a)) << "applicant " << a;
      }
    }
  }
}

// The tentpole guarantee: after the first while-round the round engine
// leases every buffer from warm pools — zero workspace growth in any later
// round. The binary-tree family maximises round count (Lemma 2 worst case).
TEST(WorkspaceReuse, NoWorkspaceGrowthAfterFirstRound) {
  const auto inst = gen::binary_tree_instance(8);
  PopularRunStats stats;
  const auto m = find_popular_matching(inst, nullptr, &stats);
  (void)m;
  ASSERT_GE(stats.while_rounds, 7u);  // one round per peeled level
  EXPECT_EQ(stats.workspace_allocs_later_rounds, 0u);
}

// With a workspace warmed by a previous solve of an instance at least as
// large, even the first round allocates nothing: the steady state of a
// server solving a stream of instances.
TEST(WorkspaceReuse, WarmWorkspaceMakesEveryRoundAllocationFree) {
  pram::Workspace ws;
  const auto warmup = gen::binary_tree_instance(8);
  (void)find_popular_matching(warmup, ws);
  for (std::uint64_t seed = 0; seed < 3; ++seed) {
    gen::SolvableConfig cfg;
    cfg.num_applicants = 250;
    cfg.num_posts = 800;
    cfg.contention = 2.0;
    cfg.seed = seed;
    PopularRunStats stats;
    const auto m = find_popular_matching(gen::solvable_strict_instance(cfg), ws, nullptr, &stats);
    ASSERT_TRUE(m.has_value());
    EXPECT_EQ(stats.workspace_allocs_first_round, 0u) << "seed " << seed;
    EXPECT_EQ(stats.workspace_allocs_later_rounds, 0u) << "seed " << seed;
  }
}

// Disjoint f/s paths: every edge is matched or deleted in round one, so the
// compaction leaves an empty alive-edge array for the loop's final check —
// the alive set shrinks to zero and the engine must cope.
TEST(WorkspaceReuse, AliveEdgeSetShrinkingToZeroIsHandled) {
  const std::int32_t n = 64;
  std::vector<std::vector<std::int32_t>> lists(static_cast<std::size_t>(n));
  for (std::int32_t a = 0; a < n; ++a) {
    lists[static_cast<std::size_t>(a)] = {2 * a, 2 * a + 1};
  }
  const auto inst = core::Instance::strict(2 * n, std::move(lists));
  const auto rg = build_reduced_graph(inst);
  pram::Workspace ws;
  const auto ac = applicant_complete_matching(inst, rg, ws);
  ASSERT_TRUE(ac.exists);
  EXPECT_EQ(ac.while_rounds, 1u);
  // Both path ends have degree 1; the traversal from the smaller vertex id
  // (the f-post) acts and matches the rank-1 edge.
  for (std::int32_t a = 0; a < n; ++a) {
    EXPECT_EQ(ac.post_of[static_cast<std::size_t>(a)], 2 * a) << "applicant " << a;
  }
}

// Oracle sweep over large sparse instances: long induced paths force many
// compaction rounds; the NC result must tie with the sequential baseline
// vote-for-vote, sharing one workspace across the whole sweep.
TEST(WorkspaceReuse, LargeSparseCompactionSweepAgreesWithOracle) {
  pram::Workspace ws;
  for (std::int32_t depth = 6; depth <= 10; ++depth) {
    const auto inst = gen::binary_tree_instance(depth);
    const auto nc = find_popular_matching(inst, ws);
    const auto seq = find_popular_matching_sequential(inst);
    ASSERT_EQ(nc.has_value(), seq.has_value()) << "depth " << depth;
    if (nc.has_value()) {
      EXPECT_EQ(popularity_votes(inst, *nc, *seq), 0) << "depth " << depth;
    }
  }
  for (std::uint64_t seed = 0; seed < 6; ++seed) {
    gen::SolvableConfig cfg;
    cfg.num_applicants = 1500;
    cfg.num_posts = 4000;
    cfg.list_min = 2;
    cfg.list_max = 3;  // sparse lists
    cfg.contention = 2.0 + static_cast<double>(seed % 3);
    cfg.seed = 900 + seed;
    const auto inst = gen::solvable_strict_instance(cfg);
    const auto nc = find_popular_matching(inst, ws);
    const auto seq = find_popular_matching_sequential(inst);
    ASSERT_EQ(nc.has_value(), seq.has_value()) << "seed " << cfg.seed;
    ASSERT_TRUE(nc.has_value()) << "seed " << cfg.seed;
    EXPECT_EQ(popularity_votes(inst, *nc, *seq), 0) << "seed " << cfg.seed;
  }
}

}  // namespace
}  // namespace ncpm::core
