// Text round-trips for instances, stable instances and matchings, plus
// malformed-input rejection.

#include "gen/io.hpp"

#include <gtest/gtest.h>

#include "gen/generators.hpp"
#include "gen/stable_generators.hpp"
#include "test_util.hpp"

namespace ncpm::io {
namespace {

void expect_same_instance(const core::Instance& a, const core::Instance& b) {
  ASSERT_EQ(a.num_applicants(), b.num_applicants());
  ASSERT_EQ(a.num_posts(), b.num_posts());
  ASSERT_EQ(a.has_last_resorts(), b.has_last_resorts());
  for (std::int32_t x = 0; x < a.num_applicants(); ++x) {
    const auto pa = a.posts_of(x);
    const auto pb = b.posts_of(x);
    ASSERT_EQ(std::vector<std::int32_t>(pa.begin(), pa.end()),
              std::vector<std::int32_t>(pb.begin(), pb.end()));
    const auto ra = a.ranks_of(x);
    const auto rb = b.ranks_of(x);
    ASSERT_EQ(std::vector<std::int32_t>(ra.begin(), ra.end()),
              std::vector<std::int32_t>(rb.begin(), rb.end()));
  }
}

TEST(Io, InstanceRoundTripStrict) {
  const auto inst = ncpm::test::fig1_instance();
  expect_same_instance(inst, read_instance(write_instance(inst)));
}

TEST(Io, InstanceRoundTripTies) {
  gen::TiesConfig cfg;
  cfg.num_applicants = 12;
  cfg.num_posts = 9;
  cfg.tie_prob = 0.6;
  cfg.seed = 5;
  const auto inst = gen::random_ties_instance(cfg);
  expect_same_instance(inst, read_instance(write_instance(inst)));
}

TEST(Io, InstanceRoundTripNoLastResorts) {
  const auto g = gen::random_bipartite(6, 5, 2.0, 3);
  std::vector<std::vector<std::vector<std::int32_t>>> groups(6);
  for (std::int32_t l = 0; l < 6; ++l) {
    std::vector<std::int32_t> tier;
    for (const auto e : g.left_incident(l)) tier.push_back(g.edge_right(static_cast<std::size_t>(e)));
    if (!tier.empty()) groups[static_cast<std::size_t>(l)].push_back(tier);
  }
  const auto inst = core::Instance::with_ties(5, groups, false);
  expect_same_instance(inst, read_instance(write_instance(inst)));
}

TEST(Io, StableInstanceRoundTrip) {
  const auto inst = ncpm::test::fig5_instance();
  const auto back = read_stable_instance(write_stable_instance(inst));
  ASSERT_EQ(back.size(), inst.size());
  for (std::int32_t m = 0; m < inst.size(); ++m) {
    for (std::int32_t i = 0; i < inst.size(); ++i) {
      EXPECT_EQ(back.man_pref(m, i), inst.man_pref(m, i));
      EXPECT_EQ(back.woman_pref(m, i), inst.woman_pref(m, i));
    }
  }
}

TEST(Io, MatchingRoundTrip) {
  matching::Matching m(4, 6);
  m.match(0, 5);
  m.match(2, 1);
  const auto back = read_matching(write_matching(m), 4, 6);
  EXPECT_TRUE(back == m);
}

TEST(Io, MalformedHeaderRejected) {
  EXPECT_THROW(read_instance("bogus v1\n"), std::runtime_error);
  EXPECT_THROW(read_stable_instance("ncpm-stable v2\n"), std::runtime_error);
  EXPECT_THROW(read_matching("ncpm-instance v1\n", 2, 2), std::runtime_error);
}

TEST(Io, TruncatedInstanceRejected) {
  EXPECT_THROW(read_instance("ncpm-instance v1\napplicants 2 posts 2 last_resorts 1\n0: 0\n"),
               std::runtime_error);
}

TEST(Io, BadPostIdRejectedByInstanceValidation) {
  EXPECT_THROW(read_instance("ncpm-instance v1\napplicants 1 posts 2 last_resorts 1\n0: 7\n"),
               std::out_of_range);
}

}  // namespace
}  // namespace ncpm::io
