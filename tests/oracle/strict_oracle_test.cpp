// Randomized oracle layer, strict instances: the NC pipeline is checked
// against independent evidence on seeded random sweeps — the sequential
// Abraham et al. baseline (existence + mutual popularity), the Theorem 1
// characterization, and on tiny instances literal brute force.

#include <gtest/gtest.h>

#include <cstdint>

#include "core/abraham_baseline.hpp"
#include "core/popular_matching.hpp"
#include "core/reduced_graph.hpp"
#include "core/verify.hpp"
#include "gen/generators.hpp"

namespace ncpm::core {
namespace {

constexpr std::uint64_t kSweepSize = 24;  // seeded instances per property

class StrictOracle : public ::testing::TestWithParam<std::uint64_t> {};

// Property (a): on arbitrary random instances the NC pipeline and the
// sequential baseline agree on existence, and when both produce a matching
// neither output is more popular than the other (two popular matchings tie).
TEST_P(StrictOracle, NcAgreesWithAbrahamBaselineOnRandomInstances) {
  for (std::uint64_t round = 0; round < kSweepSize; ++round) {
    gen::StrictConfig cfg;
    cfg.num_applicants = 30 + static_cast<std::int32_t>(round % 5) * 25;
    cfg.num_posts = 40 + static_cast<std::int32_t>(round % 7) * 20;
    cfg.list_min = 1;
    cfg.list_max = 6;
    cfg.zipf_s = (round % 3) * 0.6;
    cfg.seed = GetParam() * 10'000 + round;
    const auto inst = gen::random_strict_instance(cfg);
    const auto nc = find_popular_matching(inst);
    const auto seq = find_popular_matching_sequential(inst);
    ASSERT_EQ(nc.has_value(), seq.has_value()) << "seed " << cfg.seed;
    if (nc.has_value()) {
      // Two popular matchings always tie in votes; their *sizes* may differ
      // (that is what max_card_popular is for), so size is not asserted.
      EXPECT_EQ(popularity_votes(inst, *nc, *seq), 0) << "seed " << cfg.seed;
    }
  }
}

// Property (b): on planted-solvable families a popular matching must exist
// and both algorithms' outputs must satisfy the Theorem 1 characterization.
TEST_P(StrictOracle, SolvableFamiliesYieldCharacterizedMatchings) {
  for (std::uint64_t round = 0; round < kSweepSize; ++round) {
    gen::SolvableConfig cfg;
    cfg.num_applicants = 50 + static_cast<std::int32_t>(round % 4) * 40;
    cfg.num_posts = cfg.num_applicants * 3;
    cfg.all_f_fraction = (round % 4) * 0.2;
    cfg.contention = 1.0 + (round % 5) * 0.75;
    cfg.seed = GetParam() * 10'000 + round;
    const auto inst = gen::solvable_strict_instance(cfg);
    const auto rg = build_reduced_graph(inst);
    const auto nc = find_popular_matching(inst);
    const auto seq = find_popular_matching_sequential(inst);
    ASSERT_TRUE(nc.has_value()) << "seed " << cfg.seed;
    ASSERT_TRUE(seq.has_value()) << "seed " << cfg.seed;
    EXPECT_TRUE(satisfies_popular_characterization(inst, rg, *nc)) << "seed " << cfg.seed;
    EXPECT_TRUE(satisfies_popular_characterization(inst, rg, *seq)) << "seed " << cfg.seed;
    EXPECT_TRUE(is_valid_assignment(inst, *nc)) << "seed " << cfg.seed;
    EXPECT_TRUE(is_applicant_complete(inst, *nc)) << "seed " << cfg.seed;
    EXPECT_EQ(popularity_votes(inst, *nc, *seq), 0) << "seed " << cfg.seed;
  }
}

// Property (c): on tiny instances, literal popularity by enumeration of every
// assignment (Definition 1) confirms the NC output, and the full brute-force
// popular set is empty exactly when the pipeline reports none.
TEST_P(StrictOracle, TinyInstancesMatchLiteralBruteForce) {
  for (std::uint64_t round = 0; round < kSweepSize; ++round) {
    gen::StrictConfig cfg;
    cfg.num_applicants = 3 + static_cast<std::int32_t>(round % 4);
    cfg.num_posts = 3 + static_cast<std::int32_t>(round % 3);
    cfg.list_min = 1;
    cfg.list_max = 3;
    cfg.seed = GetParam() * 10'000 + round;
    const auto inst = gen::random_strict_instance(cfg);
    const auto nc = find_popular_matching(inst);
    const auto all_popular = all_popular_matchings_bruteforce(inst);
    ASSERT_EQ(nc.has_value(), !all_popular.empty()) << "seed " << cfg.seed;
    if (nc.has_value()) {
      EXPECT_TRUE(is_popular_bruteforce(inst, *nc)) << "seed " << cfg.seed;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, StrictOracle, ::testing::Values(1, 2, 3));

}  // namespace
}  // namespace ncpm::core
