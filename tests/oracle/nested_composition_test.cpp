// Nested parallelism oracle: the engine's two axes — worker concurrency x
// executor lanes per worker — must compose without changing a single byte
// of output. For every workers ∈ {1,2,4} x lanes ∈ {1,2,4} the same mixed
// batch must produce matchings identical to the sequential baseline
// (SerialExecutor, one call at a time), and once the per-worker workspaces
// are warm, further identical rounds must allocate nothing
// (ws_allocs_steady == 0). This binary is part of the ThreadSanitizer CI
// gate: two workers running internally-parallel solves concurrently is
// exactly the surface the old process-global OpenMP state could not serve.

#include <gtest/gtest.h>

#include <cstdint>
#include <optional>
#include <vector>

#include "core/max_card_popular.hpp"
#include "core/popular_matching.hpp"
#include "engine/engine.hpp"
#include "gen/generators.hpp"
#include "matching/matching.hpp"
#include "pram/executor.hpp"
#include "pram/simd.hpp"
#include "pram/workspace.hpp"

namespace ncpm::engine {
namespace {

std::vector<core::Instance> oracle_instances() {
  std::vector<core::Instance> instances;
  for (int i = 0; i < 4; ++i) {
    gen::SolvableConfig cfg;
    cfg.num_applicants = 60 + 30 * i;
    cfg.num_posts = cfg.num_applicants * 3;
    cfg.contention = 1.5 + 0.5 * i;
    cfg.all_f_fraction = 0.25;
    cfg.seed = 4200 + static_cast<std::uint64_t>(i);
    instances.push_back(gen::solvable_strict_instance(cfg));
  }
  for (int i = 0; i < 2; ++i) {
    gen::StrictConfig cfg;
    cfg.num_applicants = 50 + 25 * i;
    cfg.num_posts = 40 + 30 * i;
    cfg.seed = 77 + static_cast<std::uint64_t>(i);
    instances.push_back(gen::random_strict_instance(cfg));
  }
  instances.push_back(gen::binary_tree_instance(6));  // chain-heavy rounds
  instances.push_back(gen::contention_instance(6));   // no popular matching
  return instances;
}

struct Reference {
  Mode mode;
  std::optional<matching::Matching> matching;
};

/// Sequential baseline: every request solved one at a time on a
/// SerialExecutor-bound workspace.
std::vector<Reference> sequential_reference(const std::vector<core::Instance>& instances) {
  pram::SerialExecutor serial;
  pram::Workspace ws(serial);
  std::vector<Reference> refs;
  for (std::size_t i = 0; i < instances.size(); ++i) {
    const Mode mode = i % 2 == 0 ? Mode::kSolve : Mode::kMaxCard;
    std::optional<matching::Matching> m;
    if (mode == Mode::kSolve) {
      m = core::find_popular_matching(instances[i], ws);
    } else {
      m = core::find_max_card_popular(instances[i], ws);
    }
    refs.push_back({mode, std::move(m)});
  }
  return refs;
}

std::vector<Request> make_batch(const std::vector<core::Instance>& instances,
                                const std::vector<Reference>& refs) {
  std::vector<Request> batch;
  for (std::size_t i = 0; i < instances.size(); ++i) {
    batch.push_back(Request::popular(refs[i].mode, instances[i]));
  }
  return batch;
}

void expect_round_matches(Engine& engine, const std::vector<core::Instance>& instances,
                          const std::vector<Reference>& refs, int workers, int lanes) {
  auto futures = engine.submit_batch(make_batch(instances, refs));
  ASSERT_EQ(futures.size(), refs.size());
  for (std::size_t i = 0; i < futures.size(); ++i) {
    const auto res = futures[i].get();
    const auto& ref = refs[i];
    ASSERT_EQ(res.matching.has_value(), ref.matching.has_value())
        << "workers " << workers << " lanes " << lanes << " request " << i;
    if (ref.matching.has_value()) {
      EXPECT_TRUE(*res.matching == *ref.matching)
          << "workers " << workers << " lanes " << lanes << " request " << i
          << ": matching differs from the sequential baseline";
    } else {
      EXPECT_EQ(res.status, Status::kNoSolution);
    }
  }
}

TEST(NestedComposition, ByteIdenticalAcrossWorkerLaneGrid) {
  const auto instances = oracle_instances();
  const auto refs = sequential_reference(instances);

  for (const int workers : {1, 2, 4}) {
    for (const int lanes : {1, 2, 4}) {
      Engine engine({workers, lanes});
      ASSERT_EQ(engine.stats().lanes_per_worker, lanes);

      // Correctness: two rounds of the identical batch, both byte-identical
      // to the sequential baseline.
      expect_round_matches(engine, instances, refs, workers, lanes);
      expect_round_matches(engine, instances, refs, workers, lanes);
      engine.wait_idle();

      // Steady state (ws_allocs_steady == 0): pools only ever grow toward
      // the batch's maximal buffer shapes, so repeated identical rounds
      // converge; which worker draws which request varies, so a round is
      // two batch copies (denser shape coverage per worker) and the
      // property demanded is three *consecutive* such rounds with zero
      // workspace allocation on every worker.
      int zero_streak = 0;
      int round = 0;
      for (; round < 30 && zero_streak < 3; ++round) {
        const auto before = engine.stats().workspace_allocs_per_worker;
        expect_round_matches(engine, instances, refs, workers, lanes);
        expect_round_matches(engine, instances, refs, workers, lanes);
        engine.wait_idle();
        zero_streak = engine.stats().workspace_allocs_per_worker == before ? zero_streak + 1 : 0;
      }
      ASSERT_GE(zero_streak, 3)
          << "workers " << workers << " lanes " << lanes << ": workspaces still allocating after "
          << round << " identical rounds (ws_allocs_steady != 0)";
    }
  }
}

TEST(NestedComposition, ByteIdenticalAcrossSimdTiers) {
  // Third composition axis: the SIMD dispatch tier. The sequential baseline
  // is computed under a forced-scalar substrate; every tier (clamped to what
  // the CPU supports) across the workers x lanes grid must reproduce it
  // byte for byte.
  pram::force_simd_tier(pram::SimdTier::kScalar);
  const auto instances = oracle_instances();
  const auto refs = sequential_reference(instances);
  for (const pram::SimdTier tier :
       {pram::SimdTier::kScalar, pram::SimdTier::kSse2, pram::SimdTier::kAvx2}) {
    pram::force_simd_tier(tier);
    for (const int workers : {1, 2, 4}) {
      for (const int lanes : {1, 2, 4}) {
        Engine engine({workers, lanes});
        expect_round_matches(engine, instances, refs, workers, lanes);
      }
    }
  }
  pram::clear_forced_simd_tier();
}

TEST(NestedComposition, PerRequestLaneCapKeepsResultsIdentical) {
  const auto instances = oracle_instances();
  const auto refs = sequential_reference(instances);
  Engine engine({2, 4});
  std::vector<Request> batch;
  for (std::size_t i = 0; i < instances.size(); ++i) {
    batch.push_back(Request::popular(refs[i].mode, instances[i])
                        .with_lanes(static_cast<int>(i % 4) + 1));
  }
  auto futures = engine.submit_batch(std::move(batch));
  for (std::size_t i = 0; i < futures.size(); ++i) {
    const auto res = futures[i].get();
    ASSERT_EQ(res.matching.has_value(), refs[i].matching.has_value()) << "request " << i;
    if (refs[i].matching.has_value()) {
      EXPECT_TRUE(*res.matching == *refs[i].matching) << "request " << i;
    }
  }
}

}  // namespace
}  // namespace ncpm::engine
