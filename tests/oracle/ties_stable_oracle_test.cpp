// Randomized oracle layer, ties and stable-marriage generators: the ties
// solver is checked against the AIKM characterization and tiny-instance
// brute force; Gale–Shapley outputs from the stable generators are checked
// against the literal no-blocking-pair definition.

#include <gtest/gtest.h>

#include <cstdint>

#include "core/ties.hpp"
#include "core/verify.hpp"
#include "gen/generators.hpp"
#include "gen/stable_generators.hpp"
#include "stable/gale_shapley.hpp"
#include "stable/stability.hpp"

namespace ncpm {
namespace {

constexpr std::uint64_t kSweepSize = 24;

class TiesOracle : public ::testing::TestWithParam<std::uint64_t> {};

// Ties solver output always satisfies the AIKM characterization; the
// characterization itself is validated against brute force on tiny sizes.
TEST_P(TiesOracle, RandomTiesInstancesYieldCharacterizedMatchings) {
  std::uint64_t solved = 0;
  for (std::uint64_t round = 0; round < kSweepSize; ++round) {
    gen::TiesConfig cfg;
    cfg.num_applicants = 20 + static_cast<std::int32_t>(round % 5) * 15;
    cfg.num_posts = 25 + static_cast<std::int32_t>(round % 4) * 15;
    cfg.list_min = 1;
    cfg.list_max = 5;
    cfg.tie_prob = 0.15 + (round % 4) * 0.2;
    cfg.seed = GetParam() * 10'000 + round;
    const auto inst = gen::random_ties_instance(cfg);
    const auto m = core::find_popular_matching_ties(inst);
    if (m.has_value()) {
      ++solved;
      EXPECT_TRUE(core::satisfies_ties_characterization(inst, *m)) << "seed " << cfg.seed;
      EXPECT_TRUE(core::is_valid_assignment(inst, *m)) << "seed " << cfg.seed;
      EXPECT_TRUE(core::is_applicant_complete(inst, *m)) << "seed " << cfg.seed;
    }
  }
  // Guard against a vacuous sweep: a solver that rejects everything must fail.
  EXPECT_GT(solved, 0u);
}

TEST_P(TiesOracle, TinyTiesInstancesMatchLiteralBruteForce) {
  for (std::uint64_t round = 0; round < kSweepSize; ++round) {
    gen::TiesConfig cfg;
    cfg.num_applicants = 3 + static_cast<std::int32_t>(round % 3);
    cfg.num_posts = 3 + static_cast<std::int32_t>(round % 3);
    cfg.list_min = 1;
    cfg.list_max = 3;
    cfg.tie_prob = 0.4;
    cfg.seed = GetParam() * 10'000 + round;
    const auto inst = gen::random_ties_instance(cfg);
    const auto m = core::find_popular_matching_ties(inst);
    const auto all_popular = core::all_popular_matchings_bruteforce(inst);
    ASSERT_EQ(m.has_value(), !all_popular.empty()) << "seed " << cfg.seed;
    if (m.has_value()) {
      EXPECT_TRUE(core::is_popular_bruteforce(inst, *m)) << "seed " << cfg.seed;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TiesOracle, ::testing::Values(1, 2, 3));

class StableOracle : public ::testing::TestWithParam<std::uint64_t> {};

// Both deferred-acceptance outputs are literally stable (no blocking pair),
// and the man-optimal matching weakly dominates the woman-optimal one for
// every man (lattice extremes in the right order).
TEST_P(StableOracle, GaleShapleyOutputsAreStableLatticeExtremes) {
  for (std::uint64_t round = 0; round < kSweepSize; ++round) {
    const auto n = 4 + static_cast<std::int32_t>(round % 6) * 4;
    const auto seed = GetParam() * 10'000 + round;
    const auto inst = gen::random_stable_instance(n, seed);
    const auto m0 = stable::man_optimal(inst);
    const auto mz = stable::woman_optimal(inst);
    EXPECT_TRUE(stable::is_stable(inst, m0)) << "seed " << seed;
    EXPECT_TRUE(stable::is_stable(inst, mz)) << "seed " << seed;
    EXPECT_TRUE(stable::blocking_pairs(inst, m0).empty()) << "seed " << seed;
    EXPECT_TRUE(stable::blocking_pairs(inst, mz).empty()) << "seed " << seed;
    for (std::int32_t man = 0; man < n; ++man) {
      EXPECT_LE(inst.man_rank_of(man, m0.wife_of[static_cast<std::size_t>(man)]),
                inst.man_rank_of(man, mz.wife_of[static_cast<std::size_t>(man)]))
          << "seed " << seed << " man " << man;
    }
  }
}

TEST_P(StableOracle, CyclicFamilyIsStableAtEverySize) {
  const auto n = 3 + static_cast<std::int32_t>(GetParam()) * 5;
  const auto inst = gen::cyclic_stable_instance(n);
  const auto m0 = stable::man_optimal(inst);
  const auto mz = stable::woman_optimal(inst);
  EXPECT_TRUE(stable::is_stable(inst, m0));
  EXPECT_TRUE(stable::is_stable(inst, mz));
}

INSTANTIATE_TEST_SUITE_P(Seeds, StableOracle, ::testing::Values(1, 2, 3));

}  // namespace
}  // namespace ncpm
