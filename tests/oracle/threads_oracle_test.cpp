// Randomized oracle layer, property (d): the executor width is an execution
// detail — results of the NC pipeline must be *byte-identical* across
// 1..8-lane executors on every seeded instance family. No global thread
// state is touched: each width gets its own pram::Executor, bound to the
// pipeline through a pram::Workspace. (Concurrent dispatch — several
// threads driving executors at once — is exercised separately by
// executor_test and the engine's nested-composition TSan gate; the sweeps
// here run one width at a time.)

#include <gtest/gtest.h>

#include <cstdint>
#include <optional>
#include <vector>

#include "core/popular_matching.hpp"
#include "core/reduced_graph.hpp"
#include "core/verify.hpp"
#include "gen/generators.hpp"
#include "matching/matching.hpp"
#include "pram/executor.hpp"
#include "pram/workspace.hpp"

namespace ncpm::core {
namespace {

constexpr std::uint64_t kSweepSize = 20;
constexpr int kLaneCounts[] = {1, 2, 3, 4, 8};

class ThreadInvariance : public ::testing::TestWithParam<std::uint64_t> {};

// Run the pipeline once per executor width and compare against the serial
// reference: the matching must be byte-identical (the pipeline is
// deterministic — every CRCW write is order-independent), and must satisfy
// the Theorem 1 characterization. A width-dependent answer is a
// synchronization bug.
void ExpectInvariantAcrossLanes(const Instance& inst, std::uint64_t seed) {
  const auto rg = build_reduced_graph(inst);
  pram::SerialExecutor serial;
  pram::Workspace serial_ws(serial);
  const auto reference = find_popular_matching(inst, serial_ws);
  for (const int lanes : kLaneCounts) {
    pram::Executor ex(lanes);
    pram::Workspace ws(ex);
    const auto m = find_popular_matching(inst, ws);
    ASSERT_EQ(m.has_value(), reference.has_value()) << "seed " << seed << " lanes " << lanes;
    if (m.has_value()) {
      EXPECT_TRUE(satisfies_popular_characterization(inst, rg, *m))
          << "seed " << seed << " lanes " << lanes;
      EXPECT_TRUE(*m == *reference) << "seed " << seed << " lanes " << lanes
                                    << ": matching differs from the serial reference";
    }
  }
}

TEST_P(ThreadInvariance, RandomStrictInstances) {
  for (std::uint64_t round = 0; round < kSweepSize; ++round) {
    gen::StrictConfig cfg;
    cfg.num_applicants = 40 + static_cast<std::int32_t>(round % 5) * 30;
    cfg.num_posts = 50 + static_cast<std::int32_t>(round % 3) * 40;
    cfg.list_min = 1;
    cfg.list_max = 6;
    cfg.seed = GetParam() * 10'000 + round;
    ExpectInvariantAcrossLanes(gen::random_strict_instance(cfg), cfg.seed);
  }
}

TEST_P(ThreadInvariance, SolvableFamilies) {
  for (std::uint64_t round = 0; round < kSweepSize; ++round) {
    gen::SolvableConfig cfg;
    cfg.num_applicants = 60 + static_cast<std::int32_t>(round % 4) * 30;
    cfg.num_posts = cfg.num_applicants * 3;
    cfg.all_f_fraction = (round % 3) * 0.25;
    cfg.contention = 1.0 + (round % 4);
    cfg.seed = GetParam() * 10'000 + round;
    ExpectInvariantAcrossLanes(gen::solvable_strict_instance(cfg), cfg.seed);
  }
}

TEST_P(ThreadInvariance, AdversarialFamilies) {
  // Binary trees stress the Lemma 2 peeling depth; contention families must
  // report "no popular matching" under every executor width.
  for (std::int32_t depth = 1; depth <= 5; ++depth) {
    ExpectInvariantAcrossLanes(gen::binary_tree_instance(depth),
                               static_cast<std::uint64_t>(depth));
  }
  for (std::int32_t n = 3; n <= 7; ++n) {
    const auto inst = gen::contention_instance(n);
    for (const int lanes : kLaneCounts) {
      pram::Executor ex(lanes);
      pram::Workspace ws(ex);
      EXPECT_FALSE(find_popular_matching(inst, ws).has_value()) << "n " << n;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ThreadInvariance, ::testing::Values(1, 2, 3));

}  // namespace
}  // namespace ncpm::core
