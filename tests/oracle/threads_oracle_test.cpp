// Randomized oracle layer, property (d): the PRAM substrate's thread count
// is an execution detail — results of the NC pipeline must be invariant to
// pram::set_num_threads over 1..8 on every seeded instance family.

#include <gtest/gtest.h>

#include <cstdint>
#include <optional>
#include <vector>

#include "core/popular_matching.hpp"
#include "core/reduced_graph.hpp"
#include "core/verify.hpp"
#include "gen/generators.hpp"
#include "matching/matching.hpp"
#include "pram/parallel.hpp"

namespace ncpm::core {
namespace {

constexpr std::uint64_t kSweepSize = 20;
constexpr int kThreadCounts[] = {1, 2, 3, 4, 8};

class ThreadInvariance : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  void SetUp() override { original_threads_ = pram::num_threads(); }
  void TearDown() override { pram::set_num_threads(original_threads_); }

 private:
  int original_threads_ = 1;
};

// Run the pipeline once per thread count and compare against the 1-thread
// reference: existence, popularity characterization, and size must all
// agree; a thread-count-dependent answer is a synchronization bug.
void ExpectInvariantAcrossThreads(const Instance& inst, std::uint64_t seed) {
  const auto rg = build_reduced_graph(inst);
  std::optional<matching::Matching> reference;
  for (const int threads : kThreadCounts) {
    pram::set_num_threads(threads);
    const auto m = find_popular_matching(inst);
    if (threads == 1) {
      reference = m ? std::optional(*m) : std::nullopt;
      continue;
    }
    ASSERT_EQ(m.has_value(), reference.has_value())
        << "seed " << seed << " threads " << threads;
    if (m.has_value()) {
      EXPECT_TRUE(satisfies_popular_characterization(inst, rg, *m))
          << "seed " << seed << " threads " << threads;
      EXPECT_EQ(matching_size(inst, *m), matching_size(inst, *reference))
          << "seed " << seed << " threads " << threads;
      EXPECT_EQ(popularity_votes(inst, *m, *reference), 0)
          << "seed " << seed << " threads " << threads;
    }
  }
}

TEST_P(ThreadInvariance, RandomStrictInstances) {
  for (std::uint64_t round = 0; round < kSweepSize; ++round) {
    gen::StrictConfig cfg;
    cfg.num_applicants = 40 + static_cast<std::int32_t>(round % 5) * 30;
    cfg.num_posts = 50 + static_cast<std::int32_t>(round % 3) * 40;
    cfg.list_min = 1;
    cfg.list_max = 6;
    cfg.seed = GetParam() * 10'000 + round;
    ExpectInvariantAcrossThreads(gen::random_strict_instance(cfg), cfg.seed);
  }
}

TEST_P(ThreadInvariance, SolvableFamilies) {
  for (std::uint64_t round = 0; round < kSweepSize; ++round) {
    gen::SolvableConfig cfg;
    cfg.num_applicants = 60 + static_cast<std::int32_t>(round % 4) * 30;
    cfg.num_posts = cfg.num_applicants * 3;
    cfg.all_f_fraction = (round % 3) * 0.25;
    cfg.contention = 1.0 + (round % 4);
    cfg.seed = GetParam() * 10'000 + round;
    ExpectInvariantAcrossThreads(gen::solvable_strict_instance(cfg), cfg.seed);
  }
}

TEST_P(ThreadInvariance, AdversarialFamilies) {
  // Binary trees stress the Lemma 2 peeling depth; contention families must
  // report "no popular matching" under every thread count.
  for (std::int32_t depth = 1; depth <= 5; ++depth) {
    ExpectInvariantAcrossThreads(gen::binary_tree_instance(depth),
                                 static_cast<std::uint64_t>(depth));
  }
  for (std::int32_t n = 3; n <= 7; ++n) {
    const auto inst = gen::contention_instance(n);
    for (const int threads : kThreadCounts) {
      pram::set_num_threads(threads);
      EXPECT_FALSE(find_popular_matching(inst).has_value()) << "n " << n;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ThreadInvariance, ::testing::Values(1, 2, 3));

}  // namespace
}  // namespace ncpm::core
