// Concurrent stats scraping during a pipelined submit storm (a TSan
// target in CI): Engine::stats() and Registry::snapshot() are hammered
// from reader threads while submitter threads keep the queue full.
// Properties: no data race (TSan), counters only move forward, every
// intermediate snapshot satisfies submitted >= completed + rejected, and
// at quiesce the books balance exactly: submitted == completed + rejected
// and nothing is outstanding.

#include "engine/engine.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <future>
#include <thread>
#include <vector>

#include "gen/generators.hpp"
#include "obs/registry.hpp"

namespace ncpm::engine {
namespace {

std::uint64_t counter_sum(const obs::Snapshot& snap, const std::string& name) {
  std::uint64_t total = 0;
  for (const auto& c : snap.counters) {
    if (c.name == name) total += c.value;
  }
  return total;
}

TEST(EngineStatsRace, ConcurrentScrapesDuringSubmitStormStayConsistent) {
  constexpr int kSubmitters = 3;
  constexpr int kScrapers = 2;
  constexpr std::uint64_t kPerSubmitter = 60;
  constexpr std::uint64_t kTotal = kSubmitters * kPerSubmitter;

  obs::Registry registry;
  EngineConfig cfg{2, 1};
  cfg.registry = &registry;
  Engine engine(cfg);

  gen::SolvableConfig icfg;
  icfg.num_applicants = 24;
  icfg.num_posts = 60;
  icfg.seed = 11;
  const auto inst = gen::solvable_strict_instance(icfg);

  std::atomic<bool> storm_done{false};

  std::vector<std::thread> scrapers;
  for (int s = 0; s < kScrapers; ++s) {
    scrapers.emplace_back([&] {
      std::uint64_t last_submitted = 0;
      std::uint64_t last_completed = 0;
      while (!storm_done.load(std::memory_order_acquire)) {
        // Both scrape surfaces, interleaved: the locked EngineStats and the
        // wait-free registry counters.
        const EngineStats stats = engine.stats();
        ASSERT_GE(stats.submitted, stats.completed + stats.rejected);
        ASSERT_GE(stats.submitted, last_submitted);
        ASSERT_GE(stats.completed, last_completed);
        ASSERT_LE(stats.submitted, kTotal);
        last_submitted = stats.submitted;
        last_completed = stats.completed;

        const obs::Snapshot snap = registry.snapshot();
        ASSERT_GE(counter_sum(snap, "ncpm_engine_submitted_total"),
                  counter_sum(snap, "ncpm_engine_completed_total") +
                      counter_sum(snap, "ncpm_engine_rejected_total"));
        // The lock-free mirrors never report impossible depths.
        ASSERT_LE(engine.queue_depth(), static_cast<std::size_t>(kTotal));
        ASSERT_LE(engine.outstanding(), static_cast<std::size_t>(kTotal));
      }
    });
  }

  std::vector<std::thread> submitters;
  for (int t = 0; t < kSubmitters; ++t) {
    submitters.emplace_back([&, t] {
      constexpr Mode kModes[] = {Mode::kSolve, Mode::kMaxCard, Mode::kCount};
      std::vector<std::future<Result>> futures;
      futures.reserve(kPerSubmitter);
      for (std::uint64_t i = 0; i < kPerSubmitter; ++i) {
        futures.push_back(
            engine.submit(Request::popular(kModes[(t + static_cast<int>(i)) % 3], inst)));
      }
      for (auto& f : futures) {
        const Result r = f.get();
        ASSERT_TRUE(r.status == Status::kOk || r.status == Status::kNoSolution);
      }
    });
  }
  for (auto& t : submitters) t.join();
  storm_done.store(true, std::memory_order_release);
  for (auto& t : scrapers) t.join();

  // Quiesce: every future resolved, so record() already ran for every
  // request (counters update before the promise is fulfilled).
  const EngineStats final_stats = engine.stats();
  EXPECT_EQ(final_stats.submitted, kTotal);
  EXPECT_EQ(final_stats.submitted, final_stats.completed + final_stats.rejected);
  EXPECT_EQ(final_stats.rejected, 0u);
  EXPECT_EQ(engine.outstanding(), 0u);
  EXPECT_EQ(engine.queue_depth(), 0u);

  const obs::Snapshot snap = registry.snapshot();
  EXPECT_EQ(counter_sum(snap, "ncpm_engine_submitted_total"), kTotal);
  EXPECT_EQ(counter_sum(snap, "ncpm_engine_completed_total"), kTotal);
  EXPECT_EQ(counter_sum(snap, "ncpm_engine_rejected_total"), 0u);
  // Histograms are registered for every mode; only the three exercised
  // ones carry observations, and their quantiles must be sane.
  std::uint64_t observed = 0;
  for (const auto& h : snap.histograms) {
    if (h.name != "ncpm_engine_solve_ns" || h.count == 0) continue;
    observed += h.count;
    EXPECT_GT(h.quantile(0.5), 0.0);
    EXPECT_GE(h.quantile(0.99), h.quantile(0.5));
  }
  EXPECT_EQ(observed, kTotal);

  engine.shutdown();
}

TEST(EngineStatsRace, CallbackGaugesDeregisterBeforeTheEngineDies) {
  obs::Registry registry;
  {
    EngineConfig cfg{1, 1};
    cfg.registry = &registry;
    Engine engine(cfg);
    const auto snap = registry.snapshot();
    EXPECT_EQ(counter_sum(snap, "ncpm_engine_submitted_total"), 0u);
    bool found = false;
    for (const auto& g : snap.gauges) found |= g.name == "ncpm_engine_outstanding";
    EXPECT_TRUE(found);
  }
  // The engine is gone; snapshotting must not touch its dead callbacks.
  const auto snap = registry.snapshot();
  for (const auto& g : snap.gauges) {
    EXPECT_NE(g.name, "ncpm_engine_outstanding");
    EXPECT_NE(g.name, "ncpm_engine_queue_depth");
  }
}

}  // namespace
}  // namespace ncpm::engine
