// Engine::shutdown(Drain | Abandon): drain runs every queued request to
// completion, abandon fulfils queued requests with kRejected — in both
// cases every future/callback resolves exactly once, further submits
// throw, and a second shutdown is a no-op.
//
// The worker is parked deterministically: a callback request blocks the
// (single) worker thread inside its completion callback until the test
// releases it, so everything submitted behind it is provably still queued
// when shutdown runs.

#include "engine/engine.hpp"

#include <gtest/gtest.h>

#include <condition_variable>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

#include "gen/generators.hpp"

namespace ncpm::engine {
namespace {

core::Instance small_instance(std::uint64_t seed) {
  gen::SolvableConfig cfg;
  cfg.num_applicants = 12;
  cfg.num_posts = 30;
  cfg.seed = seed;
  return gen::solvable_strict_instance(cfg);
}

/// Holds the single worker hostage inside a completion callback.
struct WorkerGate {
  std::mutex mu;
  std::condition_variable cv;
  bool entered = false;
  bool released = false;

  void block_worker() {
    std::unique_lock<std::mutex> lock(mu);
    entered = true;
    cv.notify_all();
    cv.wait(lock, [&] { return released; });
  }
  void await_worker() {
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return entered; });
  }
  void release() {
    {
      std::lock_guard<std::mutex> lock(mu);
      released = true;
    }
    cv.notify_all();
  }
};

TEST(EngineShutdown, DrainFulfillsEveryQueuedFuture) {
  Engine engine(EngineConfig{1, 1});
  WorkerGate gate;
  engine.submit(Request::popular(Mode::kSolve, small_instance(1)),
                [&](Result) { gate.block_worker(); });
  gate.await_worker();

  std::vector<std::future<Result>> queued;
  for (int i = 0; i < 5; ++i) {
    queued.push_back(engine.submit(Request::popular(Mode::kCount, small_instance(2 + i))));
  }

  std::thread shutter([&] { engine.shutdown(Engine::ShutdownMode::kDrain); });
  gate.release();
  shutter.join();

  for (auto& f : queued) {
    const auto res = f.get();
    EXPECT_EQ(res.status, Status::kOk);
    EXPECT_TRUE(res.count.has_value());
  }
  const auto stats = engine.stats();
  EXPECT_EQ(stats.completed, 6u);
  EXPECT_EQ(stats.rejected, 0u);
  EXPECT_THROW(engine.submit(Request::popular(Mode::kSolve, small_instance(99))),
               std::runtime_error);
  engine.shutdown(Engine::ShutdownMode::kDrain);  // idempotent
}

TEST(EngineShutdown, AbandonRejectsQueuedButFinishesInFlight) {
  Engine engine(EngineConfig{1, 1});
  WorkerGate gate;
  std::promise<Status> in_flight_status;
  engine.submit(Request::popular(Mode::kSolve, small_instance(1)), [&](Result res) {
    in_flight_status.set_value(res.status);
    gate.block_worker();
  });
  gate.await_worker();

  std::vector<std::future<Result>> queued;
  for (int i = 0; i < 5; ++i) {
    queued.push_back(engine.submit(Request::popular(Mode::kCount, small_instance(2 + i))));
  }

  std::thread shutter([&] { engine.shutdown(Engine::ShutdownMode::kAbandon); });

  // The queued futures must resolve kRejected *while the worker is still
  // parked* — abandonment does not wait for in-flight work.
  for (auto& f : queued) {
    const auto res = f.get();
    EXPECT_EQ(res.status, Status::kRejected);
    EXPECT_FALSE(res.error.empty());
  }

  gate.release();
  shutter.join();

  // The request that was already on the worker ran to completion.
  EXPECT_EQ(in_flight_status.get_future().get(), Status::kOk);
  const auto stats = engine.stats();
  EXPECT_EQ(stats.completed, 1u);
  EXPECT_EQ(stats.rejected, 5u);
  EXPECT_EQ(stats.per_mode[static_cast<std::size_t>(Mode::kCount)].rejected, 5u);
  EXPECT_THROW(engine.submit(Request::popular(Mode::kSolve, small_instance(99))),
               std::runtime_error);
}

TEST(EngineShutdown, DestructorDrains) {
  std::vector<std::future<Result>> futures;
  {
    Engine engine(EngineConfig{2, 1});
    for (int i = 0; i < 8; ++i) {
      futures.push_back(engine.submit(Request::popular(Mode::kSolve, small_instance(10 + i))));
    }
  }  // ~Engine == shutdown(kDrain)
  for (auto& f : futures) EXPECT_EQ(f.get().status, Status::kOk);
}

TEST(EngineShutdown, CallbackSubmitMatchesFutureSubmit) {
  Engine engine(EngineConfig{2, 2});
  const auto inst = small_instance(77);
  const auto ref = engine.submit(Request::popular(Mode::kSolve, inst)).get();

  std::promise<Result> via_callback;
  engine.submit(Request::popular(Mode::kSolve, inst),
                [&](Result res) { via_callback.set_value(std::move(res)); });
  const auto res = via_callback.get_future().get();
  ASSERT_EQ(res.status, ref.status);
  ASSERT_TRUE(res.matching.has_value());
  EXPECT_TRUE(*res.matching == *ref.matching);
  EXPECT_EQ(res.matching_size, ref.matching_size);
}

}  // namespace
}  // namespace ncpm::engine
