// Engine stress: mixed modes fanned across workers from several producer
// threads, repeated over identical rounds. Two properties gate the PR:
//   1. thread-safety — this binary is the ThreadSanitizer CI target;
//   2. the steady-state guarantee — once every worker's workspace pools
//      have warmed to the batch's buffer shapes, further rounds of the
//      same batch perform zero workspace allocations on every worker.

#include "engine/engine.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <future>
#include <numeric>
#include <thread>
#include <vector>

#include "gen/generators.hpp"
#include "gen/stable_generators.hpp"

namespace ncpm::engine {
namespace {

std::vector<Request> make_mixed_batch() {
  // Modes cycle over a fixed instance set: same shapes every round, so the
  // per-worker pools can converge.
  constexpr Mode kModes[] = {Mode::kSolve, Mode::kMaxCard, Mode::kFair, Mode::kRankMaximal,
                             Mode::kCount, Mode::kCheck};
  std::vector<core::Instance> instances;
  for (int i = 0; i < 4; ++i) {
    gen::SolvableConfig cfg;
    cfg.num_applicants = 80 + 40 * i;
    cfg.num_posts = cfg.num_applicants * 3;
    cfg.contention = 2.0;
    cfg.all_f_fraction = 0.25;
    cfg.seed = 1000 + static_cast<std::uint64_t>(i);
    instances.push_back(gen::solvable_strict_instance(cfg));
  }
  std::vector<Request> batch;
  for (std::size_t i = 0; i < 36; ++i) {
    batch.push_back(
        Request::popular(kModes[i % std::size(kModes)], instances[i % instances.size()]));
  }
  // A couple of stable-marriage requests keep the non-workspace path mixed in.
  batch.push_back(Request::next_stable(gen::random_stable_instance(16, 7)));
  batch.push_back(Request::next_stable(gen::random_stable_instance(20, 8)));
  return batch;
}

void run_round(Engine& engine, int producers) {
  // Several producer threads submitting concurrently: exercises the queue
  // under contention (the TSan-relevant surface).
  std::vector<std::thread> threads;
  std::vector<std::vector<std::future<Result>>> futures(
      static_cast<std::size_t>(producers));
  for (int p = 0; p < producers; ++p) {
    threads.emplace_back([&engine, &futures, p] {
      auto batch = make_mixed_batch();
      futures[static_cast<std::size_t>(p)] = engine.submit_batch(std::move(batch));
    });
  }
  for (auto& t : threads) t.join();
  for (auto& lane : futures) {
    for (auto& f : lane) {
      const auto res = f.get();
      ASSERT_TRUE(res.status == Status::kOk || res.status == Status::kNoSolution)
          << status_name(res.status) << ": " << res.error;
    }
  }
}

TEST(EngineStress, MixedModesReachZeroSteadyStateAllocations) {
  constexpr int kWorkers = 4;
  constexpr int kProducers = 3;
  constexpr int kMaxWarmupRounds = 20;
  Engine engine({kWorkers, 1});

  // Warm up: repeat the identical workload until one full round performs no
  // workspace allocation on any worker. Pools only ever grow toward the
  // batch's maximal buffer shapes, so this converges; how many rounds it
  // takes depends only on which requests each worker happened to draw.
  int zero_streak = 0;
  int rounds = 0;
  for (; rounds < kMaxWarmupRounds && zero_streak < 2; ++rounds) {
    const auto before = engine.stats().workspace_allocs_per_worker;
    run_round(engine, kProducers);
    engine.wait_idle();
    zero_streak =
        engine.stats().workspace_allocs_per_worker == before ? zero_streak + 1 : 0;
  }
  ASSERT_GE(zero_streak, 2) << "workspaces still allocating after " << rounds
                            << " identical rounds";

  // The actual guarantee: further identical rounds allocate nothing, on any
  // worker, while every request still succeeds.
  const auto warm = engine.stats().workspace_allocs_per_worker;
  for (int r = 0; r < 3; ++r) run_round(engine, kProducers);
  engine.wait_idle();
  const auto after = engine.stats();
  EXPECT_EQ(after.workspace_allocs_per_worker, warm)
      << "steady-state rounds grew a workspace";

  const auto per_round = static_cast<std::uint64_t>(kProducers) * 38;
  EXPECT_EQ(after.submitted, static_cast<std::uint64_t>(rounds + 3) * per_round);
  EXPECT_EQ(after.completed, after.submitted);
  EXPECT_EQ(after.workspace_allocs_per_worker.size(), static_cast<std::size_t>(kWorkers));
}

TEST(EngineStress, ConcurrentSubmittersSeeConsistentStats) {
  Engine engine({4, 1});
  run_round(engine, 4);
  engine.wait_idle();
  const auto stats = engine.stats();
  EXPECT_EQ(stats.submitted, stats.completed);
  std::uint64_t per_mode_completed = 0;
  for (const auto& mode : stats.per_mode) {
    per_mode_completed += mode.completed;
    EXPECT_EQ(mode.completed,
              mode.ok + mode.no_solution + mode.deadline_expired + mode.cancelled +
                  mode.invalid + mode.errors);
  }
  EXPECT_EQ(per_mode_completed, stats.completed);
}

}  // namespace
}  // namespace ncpm::engine
