// The engine is a scheduler, not a solver: whatever the worker count, every
// Request must produce byte-identical results to the direct single-call API,
// and the control surfaces (deadlines, cancellation, invalid requests,
// stats) must behave deterministically.

#include "engine/engine.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <optional>
#include <vector>

#include "core/max_card_popular.hpp"
#include "core/optimal_popular.hpp"
#include "core/popular_matching.hpp"
#include "core/switching_graph.hpp"
#include "core/ties.hpp"
#include "core/verify.hpp"
#include "gen/generators.hpp"
#include "gen/stable_generators.hpp"
#include "stable/gale_shapley.hpp"
#include "stable/next_stable.hpp"

namespace ncpm::engine {
namespace {

std::vector<core::Instance> mixed_instances(std::uint64_t seed) {
  std::vector<core::Instance> instances;
  for (int i = 0; i < 6; ++i) {
    gen::SolvableConfig cfg;
    cfg.num_applicants = 20 + i * 10;
    cfg.num_posts = cfg.num_applicants * 3;
    cfg.contention = 1.0 + 0.5 * i;
    cfg.all_f_fraction = 0.2;
    cfg.seed = seed * 100 + static_cast<std::uint64_t>(i);
    instances.push_back(gen::solvable_strict_instance(cfg));
  }
  for (int i = 0; i < 4; ++i) {
    gen::StrictConfig cfg;
    cfg.num_applicants = 15 + i * 8;
    cfg.num_posts = 12 + i * 8;
    cfg.seed = seed * 100 + 50 + static_cast<std::uint64_t>(i);
    instances.push_back(gen::random_strict_instance(cfg));
  }
  instances.push_back(gen::contention_instance(7));  // admits no popular matching
  return instances;
}

/// Direct single-call reference for one request.
Result reference_result(Mode mode, const core::Instance& inst) {
  Result ref;
  ref.mode = mode;
  std::optional<matching::Matching> m;
  switch (mode) {
    case Mode::kSolve: m = core::find_popular_matching(inst); break;
    case Mode::kMaxCard: m = core::find_max_card_popular(inst); break;
    case Mode::kFair: m = core::find_fair_popular(inst); break;
    case Mode::kRankMaximal: m = core::find_rank_maximal_popular(inst); break;
    case Mode::kCount: {
      const auto count = core::count_popular_matchings(inst);
      if (count.has_value()) {
        ref.count = *count;
        ref.status = Status::kOk;
      } else {
        ref.status = Status::kNoSolution;
      }
      return ref;
    }
    default: ADD_FAILURE() << "unsupported reference mode"; return ref;
  }
  if (m.has_value()) {
    ref.status = Status::kOk;
    ref.matching_size = core::matching_size(inst, *m);
    ref.matching = std::move(m);
  } else {
    ref.status = Status::kNoSolution;
  }
  return ref;
}

class EngineDeterminism : public ::testing::TestWithParam<std::uint64_t> {};

// Identical results under 1/2/4/8 workers vs the sequential reference, with
// modes interleaved across one mixed batch.
TEST_P(EngineDeterminism, MatchesSequentialAcrossWorkerCounts) {
  const auto instances = mixed_instances(GetParam());
  constexpr Mode kModes[] = {Mode::kSolve, Mode::kMaxCard, Mode::kFair, Mode::kRankMaximal,
                             Mode::kCount};
  std::vector<Result> reference;
  std::vector<Mode> mode_of;
  for (std::size_t i = 0; i < instances.size(); ++i) {
    const Mode mode = kModes[i % std::size(kModes)];
    mode_of.push_back(mode);
    reference.push_back(reference_result(mode, instances[i]));
  }

  for (const int workers : {1, 2, 4, 8}) {
    Engine engine({workers, 1});
    std::vector<Request> requests;
    for (std::size_t i = 0; i < instances.size(); ++i) {
      requests.push_back(Request::popular(mode_of[i], instances[i]));
    }
    auto futures = engine.submit_batch(std::move(requests));
    ASSERT_EQ(futures.size(), instances.size());
    for (std::size_t i = 0; i < futures.size(); ++i) {
      const auto res = futures[i].get();
      const auto& ref = reference[i];
      ASSERT_EQ(res.status, ref.status) << "workers " << workers << " request " << i;
      ASSERT_EQ(res.matching.has_value(), ref.matching.has_value())
          << "workers " << workers << " request " << i;
      if (ref.matching.has_value()) {
        EXPECT_TRUE(*res.matching == *ref.matching)
            << "workers " << workers << " request " << i;
        EXPECT_EQ(res.matching_size, ref.matching_size);
      }
      EXPECT_EQ(res.count, ref.count) << "workers " << workers << " request " << i;
      EXPECT_GE(res.worker_id, 0);
      EXPECT_LT(res.worker_id, workers);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EngineDeterminism, ::testing::Values(1, 2, 3));

TEST(Engine, SolveMatchesTiesSolver) {
  gen::TiesConfig cfg;
  cfg.num_applicants = 25;
  cfg.num_posts = 20;
  cfg.tie_prob = 0.5;
  cfg.seed = 11;
  const auto inst = gen::random_ties_instance(cfg);
  const auto reference = core::find_popular_matching_ties(inst);

  Engine engine({2, 1});
  const auto res = engine.submit(Request::popular(Mode::kSolve, inst)).get();
  ASSERT_EQ(res.matching.has_value(), reference.has_value());
  if (reference.has_value()) {
    EXPECT_EQ(res.status, Status::kOk);
    EXPECT_TRUE(*res.matching == *reference);
  }
}

TEST(Engine, StrictOnlyModesRejectTies) {
  gen::TiesConfig cfg;
  cfg.num_applicants = 10;
  cfg.num_posts = 8;
  cfg.tie_prob = 0.9;
  cfg.seed = 3;
  auto inst = gen::random_ties_instance(cfg);
  if (inst.strict_prefs()) GTEST_SKIP() << "seed produced no ties";
  Engine engine({1, 1});
  const auto res = engine.submit(Request::popular(Mode::kMaxCard, std::move(inst))).get();
  EXPECT_EQ(res.status, Status::kInvalid);
  EXPECT_NE(res.error.find("strict"), std::string::npos);
}

TEST(Engine, CheckReportsStatistics) {
  gen::SolvableConfig cfg;
  cfg.num_applicants = 30;
  cfg.num_posts = 90;
  cfg.seed = 5;
  const auto inst = gen::solvable_strict_instance(cfg);
  const auto m = core::find_popular_matching(inst);
  ASSERT_TRUE(m.has_value());
  const auto count = core::count_popular_matchings(inst);

  Engine engine({2, 1});
  const auto res = engine.submit(Request::popular(Mode::kCheck, inst)).get();
  ASSERT_EQ(res.status, Status::kOk);
  ASSERT_TRUE(res.check.has_value());
  EXPECT_EQ(res.check->applicants, inst.num_applicants());
  EXPECT_EQ(res.check->posts, inst.num_posts());
  EXPECT_TRUE(res.check->strict);
  EXPECT_TRUE(res.check->admits_popular);
  EXPECT_EQ(res.check->size, core::matching_size(inst, *m));
  EXPECT_EQ(res.check->count, count);
}

TEST(Engine, NextStableMatchesDirectCall) {
  const auto inst = gen::random_stable_instance(12, 21);
  const auto reference = stable::next_stable_matchings(inst, stable::man_optimal(inst));

  Engine engine({2, 1});
  const auto res = engine.submit(Request::next_stable(inst)).get();
  ASSERT_EQ(res.status, Status::kOk);
  ASSERT_TRUE(res.next_stable.has_value());
  EXPECT_EQ(res.next_stable->is_woman_optimal, reference.is_woman_optimal);
  ASSERT_EQ(res.next_stable->rotations.size(), reference.rotations.size());
  for (std::size_t i = 0; i < reference.rotations.size(); ++i) {
    EXPECT_TRUE(res.next_stable->rotations[i] == reference.rotations[i]);
  }
}

TEST(Engine, ExpiredDeadlineSkipsSolve) {
  gen::SolvableConfig cfg;
  cfg.seed = 9;
  auto inst = gen::solvable_strict_instance(cfg);
  Engine engine({1, 1});
  auto request = Request::popular(Mode::kSolve, std::move(inst));
  request.deadline = std::chrono::steady_clock::now() - std::chrono::milliseconds(1);
  const auto res = engine.submit(std::move(request)).get();
  EXPECT_EQ(res.status, Status::kDeadlineExpired);
  EXPECT_FALSE(res.matching.has_value());
}

TEST(Engine, GenerousDeadlineSolves) {
  gen::SolvableConfig cfg;
  cfg.seed = 9;
  auto inst = gen::solvable_strict_instance(cfg);
  Engine engine({1, 1});
  const auto res =
      engine
          .submit(Request::popular(Mode::kSolve, std::move(inst))
                      .with_deadline_after(std::chrono::minutes(5)))
          .get();
  EXPECT_EQ(res.status, Status::kOk);
}

TEST(Engine, CancelledBeforeSubmitNeverRuns) {
  gen::SolvableConfig cfg;
  cfg.seed = 13;
  auto inst = gen::solvable_strict_instance(cfg);
  CancelToken token;
  token.cancel();
  Engine engine({2, 1});
  const auto res = engine.submit(Request::popular(Mode::kSolve, std::move(inst))
                                     .with_cancel(token))
                       .get();
  EXPECT_EQ(res.status, Status::kCancelled);
  EXPECT_FALSE(res.matching.has_value());
}

TEST(Engine, CancelWhileQueuedDropsRequest) {
  // One worker occupied by a head request; the token fires BEFORE the tail
  // requests are submitted, so no worker can have dequeued them yet and
  // every tail result is deterministically kCancelled — while the requests
  // still sit in a live queue behind in-flight work.
  gen::SolvableConfig cfg;
  cfg.num_applicants = 400;
  cfg.num_posts = 1200;
  cfg.seed = 17;
  const auto inst = gen::solvable_strict_instance(cfg);
  Engine engine({1, 1});
  CancelToken token;
  auto head = engine.submit(Request::popular(Mode::kSolve, inst));
  token.cancel();
  std::vector<std::future<Result>> tail;
  for (int i = 0; i < 8; ++i) {
    tail.push_back(engine.submit(Request::popular(Mode::kSolve, inst).with_cancel(token)));
  }
  EXPECT_EQ(head.get().status, Status::kOk);
  for (auto& f : tail) {
    const auto res = f.get();
    EXPECT_EQ(res.status, Status::kCancelled);
    EXPECT_FALSE(res.matching.has_value());
  }
}

TEST(Engine, MissingInstanceIsInvalid) {
  Engine engine({1, 1});
  Request request;
  request.mode = Mode::kSolve;
  const auto res = engine.submit(std::move(request)).get();
  EXPECT_EQ(res.status, Status::kInvalid);
}

TEST(Engine, StatsAccumulatePerMode) {
  gen::SolvableConfig cfg;
  cfg.seed = 23;
  const auto inst = gen::solvable_strict_instance(cfg);
  Engine engine({2, 1});
  std::vector<Request> requests;
  for (int i = 0; i < 6; ++i) requests.push_back(Request::popular(Mode::kSolve, inst));
  for (int i = 0; i < 3; ++i) requests.push_back(Request::popular(Mode::kCount, inst));
  for (auto& f : engine.submit_batch(std::move(requests))) f.get();
  engine.wait_idle();

  const auto stats = engine.stats();
  EXPECT_EQ(stats.submitted, 9u);
  EXPECT_EQ(stats.completed, 9u);
  EXPECT_EQ(stats.num_workers, 2);
  EXPECT_EQ(stats.per_mode[static_cast<std::size_t>(Mode::kSolve)].submitted, 6u);
  EXPECT_EQ(stats.per_mode[static_cast<std::size_t>(Mode::kSolve)].ok, 6u);
  EXPECT_EQ(stats.per_mode[static_cast<std::size_t>(Mode::kCount)].ok, 3u);
  EXPECT_GE(stats.peak_queue_depth, 1u);
  EXPECT_EQ(stats.workspace_allocs_per_worker.size(), 2u);
  EXPECT_GT(stats.uptime_ns, 0u);
  // Some worker solved something, so some workspace warmed up.
  EXPECT_GT(stats.workspace_allocs_total, 0u);
}

TEST(Engine, DestructorDrainsQueuedRequests) {
  gen::SolvableConfig cfg;
  cfg.seed = 29;
  const auto inst = gen::solvable_strict_instance(cfg);
  std::vector<std::future<Result>> futures;
  {
    Engine engine({2, 1});
    for (int i = 0; i < 16; ++i) {
      futures.push_back(engine.submit(Request::popular(Mode::kSolve, inst)));
    }
  }  // destructor runs here
  for (auto& f : futures) {
    EXPECT_EQ(f.get().status, Status::kOk);  // every future fulfilled, none broken
  }
}

TEST(ThreadBudget, SplitUsesTheBudget) {
  // Remainder folds back into extra workers when lanes floor to 1.
  EXPECT_EQ(ThreadBudget::split(8, 5).workers, 8);
  EXPECT_EQ(ThreadBudget::split(8, 5).lanes, 1);
  // Shallow queue: spare threads become lanes.
  EXPECT_EQ(ThreadBudget::split(8, 2).workers, 2);
  EXPECT_EQ(ThreadBudget::split(8, 2).lanes, 4);
  // Uniform grid bound: at most lanes - 1 threads unused.
  EXPECT_EQ(ThreadBudget::split(7, 2).total(), 6);
  EXPECT_EQ(ThreadBudget::single(6).workers, 1);
  EXPECT_EQ(ThreadBudget::single(6).lanes, 6);
  EXPECT_EQ(ThreadBudget::wide(6).workers, 6);
  EXPECT_EQ(ThreadBudget::wide(6).lanes, 1);
  // Degenerate inputs clamp to one worker / one lane.
  EXPECT_EQ(ThreadBudget::split(4, 0).workers, 1);
  EXPECT_EQ(ThreadBudget::split(4, 0).lanes, 4);
  EXPECT_EQ(ThreadBudget::split(0, 3).total(), 1);
}

TEST(Engine, ModeNamesRoundTrip) {
  for (std::size_t i = 0; i < kNumModes; ++i) {
    const auto mode = static_cast<Mode>(i);
    const auto parsed = parse_mode(mode_name(mode));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, mode);
  }
  EXPECT_FALSE(parse_mode("bogus").has_value());
}

}  // namespace
}  // namespace ncpm::engine
