// Shiloach–Vishkin-style connected components vs a BFS oracle, including
// alive-edge masks, self-loops and degenerate graphs.

#include "graph/connected_components.hpp"

#include <gtest/gtest.h>

#include <deque>
#include <random>

namespace ncpm::graph {
namespace {

std::vector<std::int32_t> bfs_labels(std::size_t n, const std::vector<std::int32_t>& eu,
                                     const std::vector<std::int32_t>& ev,
                                     const std::vector<std::uint8_t>& alive) {
  std::vector<std::vector<std::int32_t>> adj(n);
  for (std::size_t j = 0; j < eu.size(); ++j) {
    if (!alive.empty() && alive[j] == 0) continue;
    adj[static_cast<std::size_t>(eu[j])].push_back(ev[j]);
    adj[static_cast<std::size_t>(ev[j])].push_back(eu[j]);
  }
  std::vector<std::int32_t> label(n, -1);
  for (std::size_t s = 0; s < n; ++s) {
    if (label[s] != -1) continue;
    std::deque<std::int32_t> q{static_cast<std::int32_t>(s)};
    label[s] = static_cast<std::int32_t>(s);
    while (!q.empty()) {
      const auto v = q.front();
      q.pop_front();
      for (const auto u : adj[static_cast<std::size_t>(v)]) {
        if (label[static_cast<std::size_t>(u)] == -1) {
          label[static_cast<std::size_t>(u)] = static_cast<std::int32_t>(s);
          q.push_back(u);
        }
      }
    }
  }
  return label;
}

TEST(ConnectedComponents, PathAndIsolated) {
  // 0-1-2 path, 3 isolated.
  const std::vector<std::int32_t> eu{0, 1};
  const std::vector<std::int32_t> ev{1, 2};
  const auto cc = connected_components(4, eu, ev);
  EXPECT_EQ(cc.count, 2);
  EXPECT_EQ(cc.label[0], 0);
  EXPECT_EQ(cc.label[1], 0);
  EXPECT_EQ(cc.label[2], 0);
  EXPECT_EQ(cc.label[3], 3);
}

TEST(ConnectedComponents, LabelsAreComponentMinima) {
  // 5-2 and 4-1-3 components.
  const std::vector<std::int32_t> eu{5, 4, 1};
  const std::vector<std::int32_t> ev{2, 1, 3};
  const auto cc = connected_components(6, eu, ev);
  EXPECT_EQ(cc.label[5], 2);
  EXPECT_EQ(cc.label[2], 2);
  EXPECT_EQ(cc.label[4], 1);
  EXPECT_EQ(cc.label[3], 1);
  EXPECT_EQ(cc.count, 3);  // {0}, {1,3,4}, {2,5}
}

TEST(ConnectedComponents, SelfLoopsIgnored) {
  const std::vector<std::int32_t> eu{0, 1};
  const std::vector<std::int32_t> ev{0, 1};
  const auto cc = connected_components(2, eu, ev);
  EXPECT_EQ(cc.count, 2);
}

TEST(ConnectedComponents, AliveMaskDisconnects) {
  const std::vector<std::int32_t> eu{0, 1};
  const std::vector<std::int32_t> ev{1, 2};
  const std::vector<std::uint8_t> alive{1, 0};
  const auto cc = connected_components(3, eu, ev, alive);
  EXPECT_EQ(cc.count, 2);
  EXPECT_EQ(cc.label[2], 2);
}

TEST(ConnectedComponents, EmptyGraph) {
  const auto cc = connected_components(0, {}, {});
  EXPECT_EQ(cc.count, 0);
  EXPECT_TRUE(cc.label.empty());
}

TEST(ConnectedComponents, SizeMismatchThrows) {
  const std::vector<std::int32_t> eu{0};
  const std::vector<std::int32_t> ev;
  EXPECT_THROW(connected_components(1, eu, ev), std::invalid_argument);
}

struct CcParam {
  std::uint64_t seed;
  std::size_t n;
  std::size_t m;
};

class ConnectedComponentsRandom : public ::testing::TestWithParam<CcParam> {};

TEST_P(ConnectedComponentsRandom, AgreesWithBfs) {
  const auto [seed, n, m] = GetParam();
  std::mt19937_64 rng(seed);
  std::vector<std::int32_t> eu(m), ev(m);
  for (std::size_t j = 0; j < m; ++j) {
    eu[j] = static_cast<std::int32_t>(rng() % n);
    ev[j] = static_cast<std::int32_t>(rng() % n);
  }
  const auto cc = connected_components(n, eu, ev);
  const auto oracle = bfs_labels(n, eu, ev, {});
  EXPECT_EQ(cc.label, oracle);
  std::size_t oracle_count = 0;
  for (std::size_t v = 0; v < n; ++v) {
    if (oracle[v] == static_cast<std::int32_t>(v)) ++oracle_count;
  }
  EXPECT_EQ(static_cast<std::size_t>(cc.count), oracle_count);
}

INSTANTIATE_TEST_SUITE_P(
    RandomGraphs, ConnectedComponentsRandom,
    ::testing::Values(CcParam{1, 10, 5}, CcParam{2, 50, 25}, CcParam{3, 100, 300},
                      CcParam{4, 1000, 500}, CcParam{5, 1000, 3000}, CcParam{6, 5000, 100},
                      CcParam{7, 4096, 4096}));

TEST(ConnectedComponents, LongPathRoundsStayLogarithmic) {
  // A path of 65536 vertices: label propagation without pointer jumping
  // would need ~n rounds; hook+shortcut must stay well below.
  const std::size_t n = 1 << 16;
  std::vector<std::int32_t> eu(n - 1), ev(n - 1);
  for (std::size_t j = 0; j + 1 < n; ++j) {
    eu[j] = static_cast<std::int32_t>(j);
    ev[j] = static_cast<std::int32_t>(j + 1);
  }
  const auto cc = connected_components(n, eu, ev);
  EXPECT_EQ(cc.count, 1);
  EXPECT_LE(cc.hook_rounds, 20u);  // ~log2(n) + slack
}

}  // namespace
}  // namespace ncpm::graph
