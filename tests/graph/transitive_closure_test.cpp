// Transitive closure by repeated squaring vs a Floyd–Warshall oracle.

#include "graph/transitive_closure.hpp"

#include <gtest/gtest.h>

#include <random>

namespace ncpm::graph {
namespace {

std::vector<std::vector<bool>> floyd_warshall(std::size_t n,
                                              const std::vector<std::int32_t>& tail,
                                              const std::vector<std::int32_t>& head) {
  std::vector<std::vector<bool>> reach(n, std::vector<bool>(n, false));
  for (std::size_t j = 0; j < tail.size(); ++j) {
    reach[static_cast<std::size_t>(tail[j])][static_cast<std::size_t>(head[j])] = true;
  }
  for (std::size_t k = 0; k < n; ++k) {
    for (std::size_t i = 0; i < n; ++i) {
      if (!reach[i][k]) continue;
      for (std::size_t j = 0; j < n; ++j) {
        if (reach[k][j]) reach[i][j] = true;
      }
    }
  }
  return reach;
}

TEST(TransitiveClosure, ChainReachesForwardOnly) {
  const std::vector<std::int32_t> tail{0, 1, 2};
  const std::vector<std::int32_t> head{1, 2, 3};
  const auto tc = transitive_closure(adjacency_matrix(4, tail, head));
  EXPECT_TRUE(tc.get(0, 3));
  EXPECT_TRUE(tc.get(1, 3));
  EXPECT_FALSE(tc.get(3, 0));
  EXPECT_FALSE(tc.get(0, 0));  // strict closure: no cycle through 0
}

TEST(TransitiveClosure, CycleDiagonalDetectsCycles) {
  // 0 -> 1 -> 2 -> 0 plus tail 3 -> 0.
  const std::vector<std::int32_t> tail{0, 1, 2, 3};
  const std::vector<std::int32_t> head{1, 2, 0, 0};
  const auto tc = transitive_closure(adjacency_matrix(4, tail, head));
  EXPECT_TRUE(tc.get(0, 0));
  EXPECT_TRUE(tc.get(1, 1));
  EXPECT_TRUE(tc.get(2, 2));
  EXPECT_FALSE(tc.get(3, 3));
}

TEST(TransitiveClosure, SelfLoop) {
  const std::vector<std::int32_t> tail{0};
  const std::vector<std::int32_t> head{0};
  const auto tc = transitive_closure(adjacency_matrix(2, tail, head));
  EXPECT_TRUE(tc.get(0, 0));
  EXPECT_FALSE(tc.get(1, 1));
}

TEST(TransitiveClosure, NonSquareThrows) {
  linalg::BitMatrix m(2, 3);
  EXPECT_THROW(transitive_closure(m), std::invalid_argument);
}

TEST(TransitiveClosure, RoundsAreLogarithmic) {
  const std::size_t n = 300;
  std::vector<std::int32_t> tail, head;
  for (std::size_t v = 0; v + 1 < n; ++v) {
    tail.push_back(static_cast<std::int32_t>(v));
    head.push_back(static_cast<std::int32_t>(v + 1));
  }
  pram::NcCounters counters;
  transitive_closure(adjacency_matrix(n, tail, head), &counters);
  // ceil(log2 300) = 9 squarings, each counted once plus the OR round.
  EXPECT_LE(counters.rounds, 2 * 9 + 2);
}

class TransitiveClosureRandom : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(TransitiveClosureRandom, AgreesWithFloydWarshall) {
  std::mt19937_64 rng(GetParam());
  const std::size_t n = 60;
  std::vector<std::int32_t> tail, head;
  for (std::size_t j = 0; j < 2 * n; ++j) {
    tail.push_back(static_cast<std::int32_t>(rng() % n));
    head.push_back(static_cast<std::int32_t>(rng() % n));
  }
  const auto tc = transitive_closure(adjacency_matrix(n, tail, head));
  const auto oracle = floyd_warshall(n, tail, head);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      EXPECT_EQ(tc.get(i, j), oracle[i][j]) << i << " -> " << j;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TransitiveClosureRandom, ::testing::Values(1, 2, 3, 4, 5));

}  // namespace
}  // namespace ncpm::graph
