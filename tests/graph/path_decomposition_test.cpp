// Half-edge maximal-path machinery: successor chains, rankings and degree
// bookkeeping on paths, stars and cycles with alive masks.

#include "graph/path_decomposition.hpp"

#include <gtest/gtest.h>

namespace ncpm::graph {
namespace {

TEST(HalfEdge, SourceTargetRevEdge) {
  // Edge 0 = {0, 1}, edge 1 = {1, 2}.
  const std::vector<std::int32_t> eu{0, 1};
  const std::vector<std::int32_t> ev{1, 2};
  const std::vector<std::uint8_t> alive{1, 1};
  const HalfEdgeStructure s(3, eu, ev, alive);
  EXPECT_EQ(s.source(0), 0);
  EXPECT_EQ(s.target(0), 1);
  EXPECT_EQ(s.source(1), 1);
  EXPECT_EQ(s.target(1), 0);
  EXPECT_EQ(HalfEdgeStructure::rev(0), 1);
  EXPECT_EQ(HalfEdgeStructure::edge_of(3), 1);
  EXPECT_EQ(s.out_of(1, 1), 2);
  EXPECT_EQ(s.out_of(2, 1), 3);
}

TEST(HalfEdge, RebuildReusesTheStructureAcrossGraphs) {
  pram::Workspace ws;
  HalfEdgeStructure s;
  // First build: the path 0 - 1 - 2 - 3.
  {
    const std::vector<std::int32_t> eu{0, 1, 2};
    const std::vector<std::int32_t> ev{1, 2, 3};
    const std::vector<std::uint8_t> alive{1, 1, 1};
    s.rebuild(4, eu, ev, alive, ws);
    EXPECT_EQ(s.n_edges(), 3u);
    EXPECT_EQ(s.degree(1), 2);
    EXPECT_EQ(s.ranking().head[0], 4);
  }
  // Rebuild in place over a smaller graph with a mask; results must match a
  // from-scratch construction exactly.
  const std::vector<std::int32_t> eu{0, 1};
  const std::vector<std::int32_t> ev{1, 2};
  const std::vector<std::uint8_t> alive{1, 0};
  s.rebuild(3, eu, ev, alive, ws);
  const HalfEdgeStructure fresh(3, eu, ev, alive);
  ASSERT_EQ(s.n_edges(), fresh.n_edges());
  for (std::int32_t v = 0; v < 3; ++v) EXPECT_EQ(s.degree(v), fresh.degree(v));
  for (std::size_t h = 0; h < s.n_half_edges(); ++h) {
    EXPECT_EQ(s.succ()[h], fresh.succ()[h]) << "half-edge " << h;
    EXPECT_EQ(s.ranking().rank[h], fresh.ranking().rank[h]) << "half-edge " << h;
    EXPECT_EQ(s.ranking().head[h], fresh.ranking().head[h]) << "half-edge " << h;
  }
}

TEST(HalfEdge, PathChainsThroughDegreeTwoVertices) {
  // Path 0 - 1 - 2 - 3: vertices 1, 2 have degree 2.
  const std::vector<std::int32_t> eu{0, 1, 2};
  const std::vector<std::int32_t> ev{1, 2, 3};
  const std::vector<std::uint8_t> alive{1, 1, 1};
  const HalfEdgeStructure s(4, eu, ev, alive);
  // The rightward traversal 0->1->2->3: half-edges 0, 2, 4.
  EXPECT_EQ(s.succ()[0], 2);
  EXPECT_EQ(s.succ()[2], 4);
  EXPECT_EQ(s.succ()[4], 4);  // target 3 has degree 1: terminal
  EXPECT_EQ(s.ranking().rank[0], 2);
  EXPECT_EQ(s.ranking().head[0], 4);
  EXPECT_TRUE(s.ranking().reaches_terminal[0]);
  // The leftward traversal from 3: half-edges 5, 3, 1.
  EXPECT_EQ(s.succ()[5], 3);
  EXPECT_EQ(s.succ()[3], 1);
  EXPECT_EQ(s.ranking().rank[5], 2);
}

TEST(HalfEdge, StarStopsAtCenter) {
  // Star: center 0 with leaves 1, 2, 3 (degree 3).
  const std::vector<std::int32_t> eu{0, 0, 0};
  const std::vector<std::int32_t> ev{1, 2, 3};
  const std::vector<std::uint8_t> alive{1, 1, 1};
  const HalfEdgeStructure s(4, eu, ev, alive);
  EXPECT_EQ(s.degree(0), 3);
  // Every traversal into the center terminates (degree != 2).
  EXPECT_EQ(s.succ()[1], 1);  // 1 -> 0, stop
  EXPECT_EQ(s.succ()[0], 0);  // 0 -> 1, leaf degree 1, stop
}

TEST(HalfEdge, CycleNeverTerminates) {
  // Triangle 0-1-2.
  const std::vector<std::int32_t> eu{0, 1, 2};
  const std::vector<std::int32_t> ev{1, 2, 0};
  const std::vector<std::uint8_t> alive{1, 1, 1};
  const HalfEdgeStructure s(3, eu, ev, alive);
  for (std::size_t h = 0; h < 6; ++h) {
    EXPECT_FALSE(s.ranking().reaches_terminal[h]) << "half-edge " << h;
  }
}

TEST(HalfEdge, DeadEdgesExcludedFromDegrees) {
  const std::vector<std::int32_t> eu{0, 1, 2};
  const std::vector<std::int32_t> ev{1, 2, 3};
  const std::vector<std::uint8_t> alive{1, 0, 1};
  const HalfEdgeStructure s(4, eu, ev, alive);
  EXPECT_EQ(s.degree(1), 1);
  EXPECT_EQ(s.degree(2), 1);
  EXPECT_FALSE(s.edge_alive(1));
  // With edge 1 dead, traversal 0->1 terminates at 1.
  EXPECT_EQ(s.succ()[0], 0);
}

TEST(HalfEdge, SelfLoopRejected) {
  const std::vector<std::int32_t> eu{0};
  const std::vector<std::int32_t> ev{0};
  const std::vector<std::uint8_t> alive{1};
  EXPECT_THROW(HalfEdgeStructure(1, eu, ev, alive), std::invalid_argument);
}

TEST(HalfEdge, OutOfRangeRejected) {
  const std::vector<std::int32_t> eu{0};
  const std::vector<std::int32_t> ev{7};
  const std::vector<std::uint8_t> alive{1};
  EXPECT_THROW(HalfEdgeStructure(2, eu, ev, alive), std::invalid_argument);
}

TEST(HalfEdge, IncidentListsMatchDegrees) {
  const std::vector<std::int32_t> eu{0, 0, 1};
  const std::vector<std::int32_t> ev{1, 2, 2};
  const std::vector<std::uint8_t> alive{1, 1, 1};
  const HalfEdgeStructure s(3, eu, ev, alive);
  for (std::int32_t v = 0; v < 3; ++v) {
    EXPECT_EQ(static_cast<std::int64_t>(s.incident(v).size()), s.degree(v));
  }
  // Vertex 0's incident edges are 0 and 1 in some order.
  const auto inc = s.incident(0);
  EXPECT_EQ(std::min(inc[0], inc[1]), 0);
  EXPECT_EQ(std::max(inc[0], inc[1]), 1);
}

}  // namespace
}  // namespace ncpm::graph
