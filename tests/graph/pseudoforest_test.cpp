// Section IV-A: all four NC cycle-finding methods must agree with each other
// and with a sequential tortoise-free oracle, on hand-built and random
// directed pseudoforests; the shared post-processing (roots, distances,
// lengths, ordered cycles) is validated against walks.

#include "graph/pseudoforest.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <random>

namespace ncpm::graph {
namespace {

std::vector<std::uint8_t> oracle_on_cycle(const DirectedPseudoforest& pf) {
  const std::size_t n = pf.size();
  std::vector<std::uint8_t> on(n, 0);
  for (std::size_t v = 0; v < n; ++v) {
    // v is on a cycle iff walking n steps from v returns to v at some point.
    std::int32_t u = static_cast<std::int32_t>(v);
    for (std::size_t i = 0; i < n; ++i) {
      const std::int32_t nx = pf.next[static_cast<std::size_t>(u)];
      if (nx == pram::kNone) {
        u = pram::kNone;
        break;
      }
      u = nx;
      if (u == static_cast<std::int32_t>(v)) {
        on[v] = 1;
        break;
      }
    }
  }
  return on;
}

const CycleMethod kAllMethods[] = {CycleMethod::PointerDoubling, CycleMethod::TransitiveClosure,
                                   CycleMethod::Gf2Rank, CycleMethod::EdgeRemovalCC};

TEST(Pseudoforest, SingleCycle) {
  DirectedPseudoforest pf{{1, 2, 0}};
  for (const auto method : kAllMethods) {
    const auto on = cycle_members(pf, method);
    EXPECT_EQ(on, (std::vector<std::uint8_t>{1, 1, 1})) << static_cast<int>(method);
  }
}

TEST(Pseudoforest, TreeIntoSinkHasNoCycle) {
  // 0 -> 1 -> 2(sink), 3 -> 1.
  DirectedPseudoforest pf{{1, 2, pram::kNone, 1}};
  for (const auto method : kAllMethods) {
    const auto on = cycle_members(pf, method);
    EXPECT_EQ(on, (std::vector<std::uint8_t>{0, 0, 0, 0})) << static_cast<int>(method);
  }
}

TEST(Pseudoforest, SelfLoopIsACycleOfLengthOne) {
  DirectedPseudoforest pf{{0, pram::kNone}};
  for (const auto method : kAllMethods) {
    const auto on = cycle_members(pf, method);
    EXPECT_EQ(on, (std::vector<std::uint8_t>{1, 0})) << static_cast<int>(method);
  }
}

TEST(Pseudoforest, TwoCycleWithTails) {
  // 0 <-> 1, tails 2 -> 0, 3 -> 2; separate sink 4.
  DirectedPseudoforest pf{{1, 0, 0, 2, pram::kNone}};
  for (const auto method : kAllMethods) {
    const auto on = cycle_members(pf, method);
    EXPECT_EQ(on, (std::vector<std::uint8_t>{1, 1, 0, 0, 0})) << static_cast<int>(method);
  }
}

TEST(Pseudoforest, AnalyzeOrdersCyclesFromRoots) {
  // Cycle 2 -> 5 -> 3 -> 2 and cycle 0 -> 1 -> 0; 4 leads into the first.
  DirectedPseudoforest pf{{1, 0, 5, 2, 2, 3}};
  const auto analysis = analyze_cycles(pf);
  ASSERT_EQ(analysis.cycles.size(), 2u);
  EXPECT_EQ(analysis.cycles[0], (std::vector<std::int32_t>{0, 1}));
  EXPECT_EQ(analysis.cycles[1], (std::vector<std::int32_t>{2, 5, 3}));
  EXPECT_EQ(analysis.cycle_length[2], 3);
  EXPECT_EQ(analysis.cycle_length[0], 2);
  EXPECT_EQ(analysis.dist_to_root[2], 0);
  EXPECT_EQ(analysis.dist_to_root[5], 2);  // 5 -> 3 -> 2
  EXPECT_EQ(analysis.dist_to_root[3], 1);
  // Components carry min-id labels; 4 belongs to the 3-cycle's component.
  EXPECT_EQ(analysis.component[4], analysis.component[2]);
  EXPECT_NE(analysis.component[0], analysis.component[2]);
}

TEST(Pseudoforest, OutOfRangeSuccessorThrows) {
  DirectedPseudoforest pf{{5}};
  EXPECT_THROW(analyze_cycles(pf), std::invalid_argument);
}

TEST(Pseudoforest, EmptyGraph) {
  DirectedPseudoforest pf{{}};
  const auto analysis = analyze_cycles(pf);
  EXPECT_TRUE(analysis.cycles.empty());
}

struct PfParam {
  std::uint64_t seed;
  std::size_t n;
  double sink_prob;
};

class PseudoforestRandom : public ::testing::TestWithParam<PfParam> {};

TEST_P(PseudoforestRandom, AllMethodsAgreeWithOracle) {
  const auto [seed, n, sink_prob] = GetParam();
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> unif(0.0, 1.0);
  DirectedPseudoforest pf;
  pf.next.resize(n);
  for (std::size_t v = 0; v < n; ++v) {
    pf.next[v] = unif(rng) < sink_prob ? pram::kNone : static_cast<std::int32_t>(rng() % n);
  }
  const auto oracle = oracle_on_cycle(pf);
  for (const auto method : kAllMethods) {
    EXPECT_EQ(cycle_members(pf, method), oracle) << "method " << static_cast<int>(method);
  }
}

INSTANTIATE_TEST_SUITE_P(RandomPseudoforests, PseudoforestRandom,
                         ::testing::Values(PfParam{1, 8, 0.3}, PfParam{2, 20, 0.1},
                                           PfParam{3, 40, 0.5}, PfParam{4, 60, 0.0},
                                           PfParam{5, 33, 0.25}, PfParam{6, 50, 0.9}));

class PseudoforestAnalysisRandom : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PseudoforestAnalysisRandom, DistancesAndLengthsMatchWalks) {
  std::mt19937_64 rng(GetParam());
  const std::size_t n = 120;
  DirectedPseudoforest pf;
  pf.next.resize(n);
  for (std::size_t v = 0; v < n; ++v) {
    pf.next[v] = (rng() % 10 == 0) ? pram::kNone : static_cast<std::int32_t>(rng() % n);
  }
  const auto analysis = analyze_cycles(pf);
  for (const auto& cycle : analysis.cycles) {
    ASSERT_FALSE(cycle.empty());
    const std::int32_t root = cycle[0];
    EXPECT_EQ(root, *std::min_element(cycle.begin(), cycle.end()));
    // Walking the cycle from the root matches the stored order and distances.
    for (std::size_t i = 0; i < cycle.size(); ++i) {
      const auto v = static_cast<std::size_t>(cycle[i]);
      EXPECT_TRUE(analysis.on_cycle[v]);
      EXPECT_EQ(analysis.cycle_root[v], root);
      EXPECT_EQ(analysis.cycle_length[v], static_cast<std::int64_t>(cycle.size()));
      // dist_to_root[v] = steps from v to root = cycle length - position.
      const auto expected =
          i == 0 ? 0 : static_cast<std::int64_t>(cycle.size()) - static_cast<std::int64_t>(i);
      EXPECT_EQ(analysis.dist_to_root[v], expected);
      const std::int32_t succ = pf.next[v];
      EXPECT_EQ(succ, cycle[(i + 1) % cycle.size()]);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PseudoforestAnalysisRandom, ::testing::Values(10, 20, 30, 40));

}  // namespace
}  // namespace ncpm::graph
