// Golden-file test for the Prometheus text exposition (format 0.0.4).
//
// A fixed registry is rendered and compared byte-for-byte against
// tests/obs/golden/metrics.prom. The golden pins everything scrape
// pipelines depend on: HELP/TYPE placement (one header per metric name,
// no HELP when the help string is empty), label formatting, cumulative
// `le` bucket series ending in +Inf, and the _sum/_count pair.
//
// To refresh after an intentional format change:
//   NCPM_UPDATE_GOLDEN=1 ./ncpm_tests_obs_prometheus_golden_test

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "obs/registry.hpp"

namespace ncpm::obs {
namespace {

constexpr const char* kGoldenPath = NCPM_TEST_SOURCE_DIR "/obs/golden/metrics.prom";

/// The fixture registry: every instrument kind, labelled and unlabelled
/// series under one name, an empty help string, and a callback gauge.
std::string render_fixture() {
  Registry reg;
  reg.counter("app_requests_total", "Requests handled").add(42);
  reg.counter("app_errors_total", "Failures by kind", {{"kind", "io"}}).add(3);
  reg.counter("app_errors_total", "Failures by kind", {{"kind", "proto"}}).add(1);
  reg.counter("app_plain_total", "").add(7);
  reg.gauge("app_active", "Active things").set(-5);
  int owner = 0;
  reg.gauge_callback(&owner, "app_cb_gauge", "From callback", {}, [] { return 9; });
  Histogram& h = reg.histogram("app_latency_ns", "Latency", {{"mode", "x"}});
  h.observe(0);
  h.observe(0);
  for (int i = 0; i < 4; ++i) h.observe(4);  // bucket le=7
  h.observe(7);
  h.observe(20);  // bucket le=31
  return render_prometheus(reg.snapshot());
}

TEST(PrometheusGolden, ExpositionMatchesGoldenFile) {
  const std::string got = render_fixture();

  if (std::getenv("NCPM_UPDATE_GOLDEN") != nullptr) {
    std::ofstream out(kGoldenPath, std::ios::binary);
    ASSERT_TRUE(out) << "cannot write " << kGoldenPath;
    out << got;
    GTEST_SKIP() << "golden updated: " << kGoldenPath;
  }

  std::ifstream in(kGoldenPath, std::ios::binary);
  ASSERT_TRUE(in) << "missing golden file " << kGoldenPath;
  std::ostringstream want;
  want << in.rdbuf();
  EXPECT_EQ(got, want.str())
      << "Prometheus exposition drifted from tests/obs/golden/metrics.prom; "
         "rerun with NCPM_UPDATE_GOLDEN=1 if the change is intentional";
}

TEST(PrometheusGolden, LabelValuesAreEscaped) {
  Registry reg;
  reg.counter("esc_total", "", {{"k", "a\"b\\c\nd"}}).add(1);
  const std::string out = render_prometheus(reg.snapshot());
  EXPECT_NE(out.find("esc_total{k=\"a\\\"b\\\\c\\nd\"} 1\n"), std::string::npos) << out;
}

TEST(PrometheusGolden, EmptyHistogramStillEmitsInfSumCount) {
  Registry reg;
  reg.histogram("idle_ns", "Never observed");
  const std::string out = render_prometheus(reg.snapshot());
  EXPECT_NE(out.find("idle_ns_bucket{le=\"+Inf\"} 0\n"), std::string::npos) << out;
  EXPECT_NE(out.find("idle_ns_sum 0\n"), std::string::npos) << out;
  EXPECT_NE(out.find("idle_ns_count 0\n"), std::string::npos) << out;
}

}  // namespace
}  // namespace ncpm::obs
