// Golden-file test for the JSON metrics rendering (the `stats --json`
// surface and the machine side of the dashboard).
//
// The same fixture registry as the Prometheus golden is rendered with
// render_json and compared byte-for-byte against
// tests/obs/golden/metrics.json, pinning key order, histogram bucket
// layout, and the ncpm_solve_phase_ns{phase=...} series tooling parses.
//
// To refresh after an intentional format change:
//   NCPM_UPDATE_GOLDEN=1 ./ncpm_tests_obs_json_golden_test

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "obs/profiler.hpp"
#include "obs/registry.hpp"

namespace ncpm::obs {
namespace {

constexpr const char* kGoldenPath = NCPM_TEST_SOURCE_DIR "/obs/golden/metrics.json";

/// Identical to the Prometheus golden fixture (kept in lockstep so the two
/// goldens describe one registry through both renderers).
std::string render_fixture() {
  Registry reg;
  reg.counter("app_requests_total", "Requests handled").add(42);
  reg.counter("app_errors_total", "Failures by kind", {{"kind", "io"}}).add(3);
  reg.counter("app_errors_total", "Failures by kind", {{"kind", "proto"}}).add(1);
  reg.counter("app_plain_total", "").add(7);
  reg.gauge("app_active", "Active things").set(-5);
  int owner = 0;
  reg.gauge_callback(&owner, "app_cb_gauge", "From callback", {}, [] { return 9; });
  Histogram& h = reg.histogram("app_latency_ns", "Latency", {{"mode", "x"}});
  h.observe(0);
  h.observe(0);
  for (int i = 0; i < 4; ++i) h.observe(4);  // bucket le=7
  h.observe(7);
  h.observe(20);  // bucket le=31
  Histogram& gf2 = reg.histogram("ncpm_solve_phase_ns",
                                 "Exclusive solver time per phase in nanoseconds",
                                 {{"phase", phase_name(Phase::kGf2Rank)}});
  gf2.observe(1500);
  gf2.observe(900);
  reg.histogram("ncpm_solve_phase_ns", "Exclusive solver time per phase in nanoseconds",
                {{"phase", phase_name(Phase::kListRank)}})
      .observe(400);
  Snapshot snap = reg.snapshot();
  snap.uptime_ns = 0;  // live clock value; pinned so the golden is stable
  return render_json(snap);
}

TEST(JsonGolden, RenderingMatchesGoldenFile) {
  const std::string got = render_fixture();

  if (std::getenv("NCPM_UPDATE_GOLDEN") != nullptr) {
    std::ofstream out(kGoldenPath, std::ios::binary);
    ASSERT_TRUE(out) << "cannot write " << kGoldenPath;
    out << got;
    GTEST_SKIP() << "golden updated: " << kGoldenPath;
  }

  std::ifstream in(kGoldenPath, std::ios::binary);
  ASSERT_TRUE(in) << "missing golden file " << kGoldenPath;
  std::ostringstream want;
  want << in.rdbuf();
  EXPECT_EQ(got, want.str())
      << "JSON rendering drifted from tests/obs/golden/metrics.json; "
         "rerun with NCPM_UPDATE_GOLDEN=1 if the change is intentional";
}

TEST(JsonGolden, StringValuesAreEscaped) {
  Registry reg;
  reg.counter("esc_total", "", {{"k", "a\"b\\c\nd"}}).add(1);
  const std::string out = render_json(reg.snapshot());
  EXPECT_NE(out.find("\"a\\\"b\\\\c\\nd\""), std::string::npos) << out;
}

TEST(JsonGolden, OutputParsesAsOneObjectPerLineStructure) {
  // Cheap structural sanity without a JSON parser: balanced braces and
  // brackets, and the document starts/ends as an object.
  const std::string out = render_fixture();
  ASSERT_FALSE(out.empty());
  EXPECT_EQ(out.front(), '{');
  long depth = 0;
  bool in_string = false;
  for (std::size_t i = 0; i < out.size(); ++i) {
    const char c = out[i];
    if (in_string) {
      if (c == '\\') {
        ++i;  // skip the escaped character
      } else if (c == '"') {
        in_string = false;
      }
      continue;
    }
    if (c == '"') in_string = true;
    if (c == '{' || c == '[') ++depth;
    if (c == '}' || c == ']') --depth;
    ASSERT_GE(depth, 0) << "unbalanced at offset " << i;
  }
  EXPECT_EQ(depth, 0);
  EXPECT_FALSE(in_string);
}

}  // namespace
}  // namespace ncpm::obs
