// obs::TraceRing unit tests: sampling cadence, ring wrap-around, the
// seqlock snapshot (no torn spans under concurrent commits), and the JSON
// rendering used by `ncpm_cli stats --traces`.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "obs/trace.hpp"

namespace ncpm::obs {
namespace {

TraceSpan make_span(std::uint64_t id) {
  TraceSpan s;
  s.request_id = id;
  s.conn_id = id ^ 0xabcdef;  // a derived field the torn-read check can verify
  s.mode = static_cast<std::uint8_t>(id % 7);
  s.status = static_cast<std::uint8_t>(id % 5);
  s.accept_ns = id * 10;
  s.frame_read_ns = id * 10 + 1;
  s.dispatch_ns = id * 10 + 2;
  s.solve_start_ns = id * 10 + 3;
  s.solve_end_ns = id * 10 + 4;
  s.response_ns = id * 10 + 5;
  return s;
}

TEST(TraceRing, DisabledRingsNeverSampleOrStore) {
  for (TraceRing* ring : {new TraceRing(0, 4), new TraceRing(4, 0), new TraceRing()}) {
    EXPECT_FALSE(ring->enabled());
    EXPECT_FALSE(ring->should_sample());
    ring->commit(make_span(1));
    EXPECT_TRUE(ring->snapshot().empty());
    EXPECT_EQ(ring->committed(), 0u);
    delete ring;
  }
}

TEST(TraceRing, SamplesEveryNthTicket) {
  TraceRing ring(8, 3);
  int sampled = 0;
  for (int i = 0; i < 9; ++i) {
    if (ring.should_sample()) ++sampled;
  }
  EXPECT_EQ(sampled, 3);  // tickets 0, 3, 6
}

TEST(TraceRing, SampleEveryOneSamplesEverything) {
  TraceRing ring(8, 1);
  for (int i = 0; i < 5; ++i) EXPECT_TRUE(ring.should_sample());
}

TEST(TraceRing, CommittedSpansRoundTrip) {
  TraceRing ring(8, 1);
  const TraceSpan in = make_span(77);
  ring.commit(in);
  const auto spans = ring.snapshot();
  ASSERT_EQ(spans.size(), 1u);
  const TraceSpan& out = spans[0];
  EXPECT_EQ(out.request_id, in.request_id);
  EXPECT_EQ(out.conn_id, in.conn_id);
  EXPECT_EQ(out.mode, in.mode);
  EXPECT_EQ(out.status, in.status);
  EXPECT_EQ(out.accept_ns, in.accept_ns);
  EXPECT_EQ(out.frame_read_ns, in.frame_read_ns);
  EXPECT_EQ(out.dispatch_ns, in.dispatch_ns);
  EXPECT_EQ(out.solve_start_ns, in.solve_start_ns);
  EXPECT_EQ(out.solve_end_ns, in.solve_end_ns);
  EXPECT_EQ(out.response_ns, in.response_ns);
}

TEST(TraceRing, WrapKeepsTheNewestCapacitySpans) {
  TraceRing ring(4, 1);
  for (std::uint64_t id = 1; id <= 10; ++id) ring.commit(make_span(id));
  EXPECT_EQ(ring.committed(), 10u);
  auto spans = ring.snapshot();
  ASSERT_EQ(spans.size(), 4u);
  std::vector<std::uint64_t> ids;
  for (const auto& s : spans) ids.push_back(s.request_id);
  std::sort(ids.begin(), ids.end());
  EXPECT_EQ(ids, (std::vector<std::uint64_t>{7, 8, 9, 10}));
}

TEST(TraceRing, ConcurrentCommitsNeverYieldTornSpans) {
  TraceRing ring(16, 1);
  std::atomic<bool> stop{false};
  std::vector<std::thread> writers;
  for (int t = 0; t < 4; ++t) {
    writers.emplace_back([&ring, &stop, t] {
      std::uint64_t id = static_cast<std::uint64_t>(t) * 1000000 + 1;
      while (!stop.load(std::memory_order_relaxed)) ring.commit(make_span(id++));
    });
  }
  // Scrape hard while writers churn; every span that comes out must be
  // internally consistent (all fields derived from the same request_id).
  for (int iter = 0; iter < 2000; ++iter) {
    for (const TraceSpan& s : ring.snapshot()) {
      ASSERT_EQ(s.conn_id, s.request_id ^ 0xabcdef);
      ASSERT_EQ(s.accept_ns, s.request_id * 10);
      ASSERT_EQ(s.response_ns, s.request_id * 10 + 5);
    }
  }
  stop.store(true);
  for (auto& w : writers) w.join();
}

TEST(RenderSpansJson, EmitsAnArrayOfObjects) {
  EXPECT_EQ(render_spans_json({}), "[]");
  const std::string json = render_spans_json({make_span(2)});
  EXPECT_EQ(json.front(), '[');
  EXPECT_EQ(json.back(), ']');
  EXPECT_NE(json.find("\"request_id\":2"), std::string::npos);
  EXPECT_NE(json.find("\"accept_ns\":20"), std::string::npos);
  EXPECT_NE(json.find("\"response_ns\":25"), std::string::npos);
}

}  // namespace
}  // namespace ncpm::obs
