// obs::Profiler unit tests: exclusive-time attribution under nesting, the
// detached no-op path (the solver's hot loops run with zero profiling cost
// when no accumulator is attached), and the accumulator API.

#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <thread>

#include "obs/profiler.hpp"
#include "pram/executor.hpp"
#include "pram/workspace.hpp"

namespace ncpm::obs {
namespace {

std::uint64_t now_ns() {
  return static_cast<std::uint64_t>(std::chrono::duration_cast<std::chrono::nanoseconds>(
                                        std::chrono::steady_clock::now().time_since_epoch())
                                        .count());
}

void spin_for(std::chrono::microseconds d) {
  const auto end = std::chrono::steady_clock::now() + d;
  while (std::chrono::steady_clock::now() < end) {
  }
}

TEST(PhaseNames, EveryPhaseHasAStableName) {
  EXPECT_STREQ(phase_name(Phase::kDecode), "decode");
  EXPECT_STREQ(phase_name(Phase::kReducedGraph), "reduced_graph");
  EXPECT_STREQ(phase_name(Phase::kTwoRegular), "two_regular");
  EXPECT_STREQ(phase_name(Phase::kEulerSplit), "euler_split");
  EXPECT_STREQ(phase_name(Phase::kListRank), "list_rank");
  EXPECT_STREQ(phase_name(Phase::kWindowMin), "window_min");
  EXPECT_STREQ(phase_name(Phase::kCompaction), "compaction");
  EXPECT_STREQ(phase_name(Phase::kGf2Rank), "gf2_rank");
  EXPECT_STREQ(phase_name(Phase::kExtract), "extract");
  EXPECT_STREQ(phase_name(Phase::kVerify), "verify");
  EXPECT_STREQ(phase_name(kNumPhases), "unknown");
  EXPECT_STREQ(phase_name(kNumPhases + 100), "unknown");
}

TEST(PhaseAccum, AddValueResetSnapshot) {
  PhaseAccum accum;
  for (std::size_t p = 0; p < kNumPhases; ++p) EXPECT_EQ(accum.value(static_cast<Phase>(p)), 0u);

  accum.add(Phase::kGf2Rank, 100);
  accum.add(Phase::kGf2Rank, 23);
  accum.add(Phase::kDecode, 7);
  EXPECT_EQ(accum.value(Phase::kGf2Rank), 123u);
  EXPECT_EQ(accum.value(Phase::kDecode), 7u);

  const auto snap = accum.snapshot();
  EXPECT_EQ(snap[static_cast<std::size_t>(Phase::kGf2Rank)], 123u);
  EXPECT_EQ(snap[static_cast<std::size_t>(Phase::kDecode)], 7u);
  EXPECT_EQ(snap[static_cast<std::size_t>(Phase::kListRank)], 0u);

  accum.reset();
  for (std::size_t p = 0; p < kNumPhases; ++p) EXPECT_EQ(accum.value(static_cast<Phase>(p)), 0u);
}

TEST(PhaseScope, DetachedScopeIsInactiveAndFree) {
  // A scope over a null accumulator must be a complete no-op: inactive, no
  // recording anywhere. This is the path every solver call takes when the
  // caller never attached a profiler.
  PhaseScope scope(nullptr, Phase::kListRank);
  EXPECT_FALSE(scope.active());
}

TEST(PhaseScope, RecordsElapsedIntoItsPhase) {
  PhaseAccum accum;
  const std::uint64_t before = now_ns();
  {
    PhaseScope scope(&accum, Phase::kEulerSplit);
    EXPECT_TRUE(scope.active());
    spin_for(std::chrono::microseconds(200));
  }
  const std::uint64_t wall = now_ns() - before;
  EXPECT_GT(accum.value(Phase::kEulerSplit), 0u);
  EXPECT_LE(accum.value(Phase::kEulerSplit), wall);
}

TEST(PhaseScope, NestedScopesAttributeExclusiveTime) {
  // Parent time excludes child time: with a child spinning ~1ms inside a
  // parent that itself spins ~200us, the child's bucket dominates and the
  // sum of all buckets never exceeds the wall window (the reconciliation
  // invariant the server-side acceptance test relies on).
  PhaseAccum accum;
  const std::uint64_t before = now_ns();
  {
    PhaseScope parent(&accum, Phase::kReducedGraph);
    spin_for(std::chrono::microseconds(200));
    {
      PhaseScope child(&accum, Phase::kListRank);
      spin_for(std::chrono::milliseconds(1));
    }
  }
  const std::uint64_t wall = now_ns() - before;

  const std::uint64_t parent_ns = accum.value(Phase::kReducedGraph);
  const std::uint64_t child_ns = accum.value(Phase::kListRank);
  EXPECT_GT(parent_ns, 0u);
  EXPECT_GT(child_ns, parent_ns);  // the child spun 5x longer
  std::uint64_t total = 0;
  for (const auto ns : accum.snapshot()) total += ns;
  EXPECT_LE(total, wall);
}

TEST(PhaseScope, ReentrantSamePhaseNests) {
  // list_rank calls window_min which can re-enter list-rank-flavoured
  // helpers; same-phase nesting must not double-count.
  PhaseAccum accum;
  const std::uint64_t before = now_ns();
  {
    PhaseScope outer(&accum, Phase::kWindowMin);
    PhaseScope inner(&accum, Phase::kWindowMin);
    spin_for(std::chrono::microseconds(300));
  }
  const std::uint64_t wall = now_ns() - before;
  EXPECT_LE(accum.value(Phase::kWindowMin), wall);
}

TEST(Workspace, NoProfilerAttachedMeansNullAndNoopScopes) {
  // An executor (and the workspace over it) starts detached; every
  // PhaseScope the solver opens against it is inactive and the accumulator
  // (there is none) is never touched. This pins the no-op path the
  // profiler-off benchmark series measures.
  pram::Executor ex(1);
  pram::Workspace ws(ex);
  EXPECT_EQ(ex.profiler(), nullptr);
  EXPECT_EQ(ws.profiler(), nullptr);
  {
    PhaseScope scope(ws.profiler(), Phase::kGf2Rank);
    EXPECT_FALSE(scope.active());
  }

  // Attach, record, detach: the accumulator only moves while attached.
  PhaseAccum accum;
  ex.attach_profiler(&accum);
  EXPECT_EQ(ws.profiler(), &accum);
  { PhaseScope scope(ws.profiler(), Phase::kGf2Rank); }
  const std::uint64_t attached = accum.value(Phase::kGf2Rank);
  ex.attach_profiler(nullptr);
  { PhaseScope scope(ws.profiler(), Phase::kGf2Rank); }
  EXPECT_EQ(accum.value(Phase::kGf2Rank), attached);
}

}  // namespace
}  // namespace ncpm::obs
