// obs::Registry unit tests: instrument arithmetic, striping under threads,
// log2 bucket math and quantile interpolation, idempotent registration with
// stable handles, callback gauges, and snapshot ordering.

#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <string>
#include <thread>
#include <vector>

#include "obs/registry.hpp"

namespace ncpm::obs {
namespace {

TEST(Counter, StartsAtZeroAndAccumulates) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.add();
  c.add(41);
  EXPECT_EQ(c.value(), 42u);
}

TEST(Counter, StripedAddsSumAcrossThreads) {
  Counter c;
  constexpr int kThreads = 8;
  constexpr std::uint64_t kPerThread = 20000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&c] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) c.add();
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(c.value(), kThreads * kPerThread);
}

TEST(Gauge, SetAddValue) {
  Gauge g;
  EXPECT_EQ(g.value(), 0);
  g.set(10);
  g.add(-3);
  EXPECT_EQ(g.value(), 7);
  g.set(-5);
  EXPECT_EQ(g.value(), -5);
}

TEST(HistogramBuckets, BucketIndexIsBitWidth) {
  EXPECT_EQ(histogram_bucket(0), 0u);
  EXPECT_EQ(histogram_bucket(1), 1u);
  EXPECT_EQ(histogram_bucket(2), 2u);
  EXPECT_EQ(histogram_bucket(3), 2u);
  EXPECT_EQ(histogram_bucket(4), 3u);
  EXPECT_EQ(histogram_bucket(7), 3u);
  EXPECT_EQ(histogram_bucket(8), 4u);
  EXPECT_EQ(histogram_bucket(std::numeric_limits<std::uint64_t>::max()), 64u);
}

TEST(HistogramBuckets, BoundIsInclusiveUpperEdge) {
  EXPECT_EQ(histogram_bucket_bound(0), 0u);
  EXPECT_EQ(histogram_bucket_bound(1), 1u);
  EXPECT_EQ(histogram_bucket_bound(2), 3u);
  EXPECT_EQ(histogram_bucket_bound(3), 7u);
  EXPECT_EQ(histogram_bucket_bound(64), std::numeric_limits<std::uint64_t>::max());
  // Every value lands in the bucket whose bound covers it.
  for (std::uint64_t v : {0ull, 1ull, 5ull, 100ull, 1ull << 40}) {
    const unsigned b = histogram_bucket(v);
    EXPECT_LE(v, histogram_bucket_bound(b));
    if (b > 0) EXPECT_GT(v, histogram_bucket_bound(b - 1));
  }
}

TEST(Histogram, ObserveCountsSumsAndBuckets) {
  Histogram h;
  h.observe(0);
  h.observe(5);
  h.observe(5);
  h.observe(1000);
  EXPECT_EQ(h.count(), 4u);
  EXPECT_EQ(h.sum(), 1010u);
  const auto buckets = h.buckets();
  EXPECT_EQ(buckets[histogram_bucket(0)], 1u);
  EXPECT_EQ(buckets[histogram_bucket(5)], 2u);
  EXPECT_EQ(buckets[histogram_bucket(1000)], 1u);
}

TEST(Histogram, ConcurrentObserversLoseNothing) {
  Histogram h;
  constexpr int kThreads = 8;
  constexpr std::uint64_t kPerThread = 10000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&h, t] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) {
        h.observe(static_cast<std::uint64_t>(t) * 100 + 1);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(h.count(), kThreads * kPerThread);
}

TEST(HistogramSample, QuantileOfEmptyIsZero) {
  HistogramSample s;
  EXPECT_DOUBLE_EQ(s.quantile(0.5), 0.0);
}

TEST(HistogramSample, QuantileInterpolatesInsideTheBucket) {
  // Four observations, all in bucket 3 (values 4..7). The p50 rank is 2 of
  // 4, so the estimate sits halfway through [4, 7].
  HistogramSample s;
  s.count = 4;
  s.buckets[3] = 4;
  EXPECT_DOUBLE_EQ(s.quantile(0.5), 4.0 + (7.0 - 4.0) * 0.5);
  EXPECT_DOUBLE_EQ(s.quantile(1.0), 7.0);
  // Out-of-range q values clamp rather than misbehave.
  EXPECT_DOUBLE_EQ(s.quantile(-1.0), s.quantile(0.0));
  EXPECT_DOUBLE_EQ(s.quantile(2.0), s.quantile(1.0));
}

TEST(HistogramSample, QuantileSpansBuckets) {
  // 9 zeros and 1 large value: p50 is in bucket 0, p99 in the top bucket.
  HistogramSample s;
  s.count = 10;
  s.buckets[0] = 9;
  s.buckets[10] = 1;  // values 512..1023
  EXPECT_DOUBLE_EQ(s.quantile(0.5), 0.0);
  const double p99 = s.quantile(0.99);
  EXPECT_GE(p99, 512.0);
  EXPECT_LE(p99, 1023.0);
}

TEST(Registry, RegistrationIsIdempotentPerNameAndLabels) {
  Registry reg;
  Counter& a = reg.counter("x_total", "help");
  Counter& b = reg.counter("x_total", "ignored on re-registration");
  EXPECT_EQ(&a, &b);
  Counter& c = reg.counter("x_total", "help", {{"mode", "solve"}});
  EXPECT_NE(&a, &c);
  Counter& d = reg.counter("x_total", "help", {{"mode", "solve"}});
  EXPECT_EQ(&c, &d);
}

TEST(Registry, HandlesStayValidAsTheRegistryGrows) {
  Registry reg;
  Counter& first = reg.counter("first_total", "");
  for (int i = 0; i < 200; ++i) {
    reg.counter("c" + std::to_string(i), "");
    reg.gauge("g" + std::to_string(i), "");
    reg.histogram("h" + std::to_string(i), "");
  }
  first.add(3);  // the deque never moves entries, so this handle is live
  EXPECT_EQ(first.value(), 3u);
}

TEST(Registry, SnapshotIsSortedAndComplete) {
  Registry reg;
  reg.counter("z_total", "").add(1);
  reg.counter("a_total", "").add(2);
  reg.counter("a_total", "", {{"k", "v"}}).add(3);
  reg.gauge("g", "").set(4);
  reg.histogram("h_ns", "").observe(5);

  const Snapshot snap = reg.snapshot();
  ASSERT_EQ(snap.counters.size(), 3u);
  EXPECT_EQ(snap.counters[0].name, "a_total");
  EXPECT_TRUE(snap.counters[0].labels.empty());
  EXPECT_EQ(snap.counters[0].value, 2u);
  EXPECT_EQ(snap.counters[1].name, "a_total");
  ASSERT_EQ(snap.counters[1].labels.size(), 1u);
  EXPECT_EQ(snap.counters[1].value, 3u);
  EXPECT_EQ(snap.counters[2].name, "z_total");
  ASSERT_EQ(snap.gauges.size(), 1u);
  EXPECT_EQ(snap.gauges[0].value, 4);
  ASSERT_EQ(snap.histograms.size(), 1u);
  EXPECT_EQ(snap.histograms[0].count, 1u);
  EXPECT_EQ(snap.histograms[0].sum, 5u);
}

TEST(Registry, CallbackGaugesEvaluateAtSnapshotAndRemoveCleanly) {
  Registry reg;
  int owner_tag = 0;
  std::int64_t live = 7;
  reg.gauge_callback(&owner_tag, "cb_gauge", "", {}, [&live] { return live; });

  auto snap = reg.snapshot();
  ASSERT_EQ(snap.gauges.size(), 1u);
  EXPECT_EQ(snap.gauges[0].value, 7);

  live = 9;  // callbacks read the current value, not a cached one
  snap = reg.snapshot();
  EXPECT_EQ(snap.gauges[0].value, 9);

  reg.remove_callbacks(&owner_tag);
  snap = reg.snapshot();
  EXPECT_TRUE(snap.gauges.empty());
}

TEST(Registry, UptimeAdvancesMonotonically) {
  Registry reg;
  const std::uint64_t a = reg.uptime_ns();
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  const std::uint64_t b = reg.uptime_ns();
  EXPECT_GT(b, a);
  EXPECT_EQ(reg.snapshot().uptime_ns >= b, true);
}

TEST(RenderJson, EmitsOneObjectWithQuantiles) {
  Registry reg;
  reg.counter("c_total", "").add(1);
  auto& h = reg.histogram("h_ns", "");
  for (int i = 0; i < 100; ++i) h.observe(6);
  const std::string json = render_json(reg.snapshot());
  EXPECT_NE(json.find("\"uptime_ns\":"), std::string::npos);
  EXPECT_NE(json.find("{\"name\":\"c_total\",\"labels\":{},\"value\":1}"),
            std::string::npos);
  EXPECT_NE(json.find("\"count\":100"), std::string::npos);
  EXPECT_NE(json.find("\"p50\":"), std::string::npos);
  EXPECT_NE(json.find("\"p99\":"), std::string::npos);
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
  EXPECT_EQ(json.find('\n'), std::string::npos);
}

}  // namespace
}  // namespace ncpm::obs
