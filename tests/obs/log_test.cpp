// obs::Log unit tests: the disabled fast path emits nothing, enabled
// events reach the pluggable sink as one JSON line each, every Field kind
// renders with the right JSON type, and strings are escaped.

#include <gtest/gtest.h>

#include <cstdint>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "obs/log.hpp"

namespace ncpm::obs {
namespace {

struct Capture {
  std::mutex mu;
  std::vector<std::string> lines;

  Log::Sink sink() {
    return [this](std::string_view line) {
      std::lock_guard<std::mutex> lock(mu);
      lines.emplace_back(line);
    };
  }
};

TEST(Log, DisabledByDefaultAndEmitsNothing) {
  Capture cap;
  Log log;
  EXPECT_FALSE(log.enabled());
  log.event("ignored", {});
  EXPECT_TRUE(cap.lines.empty());
}

TEST(Log, EnabledEventsReachTheSinkAsJsonLines) {
  Capture cap;
  Log log;
  log.enable(cap.sink());
  EXPECT_TRUE(log.enabled());
  log.event("conn_open", {{"conn_id", std::uint64_t{7}}});
  log.event("conn_close", {{"conn_id", std::uint64_t{7}}});
  ASSERT_EQ(cap.lines.size(), 2u);
  const std::string& line = cap.lines[0];
  EXPECT_EQ(line.front(), '{');
  EXPECT_EQ(line.back(), '\n');
  EXPECT_NE(line.find("{\"ts_ns\":"), std::string::npos);
  EXPECT_NE(line.find("\"event\":\"conn_open\""), std::string::npos);
  EXPECT_NE(line.find("\"conn_id\":7"), std::string::npos);
  EXPECT_NE(cap.lines[1].find("\"event\":\"conn_close\""), std::string::npos);
}

TEST(Log, EveryFieldKindRendersItsJsonType) {
  Capture cap;
  Log log;
  log.enable(cap.sink());
  log.event("kinds", {{"u", std::uint64_t{18446744073709551615ull}},
                      {"i", std::int64_t{-42}},
                      {"f", 1.5},
                      {"yes", true},
                      {"no", false},
                      {"s", "text"}});
  ASSERT_EQ(cap.lines.size(), 1u);
  const std::string& line = cap.lines[0];
  EXPECT_NE(line.find("\"u\":18446744073709551615"), std::string::npos);
  EXPECT_NE(line.find("\"i\":-42"), std::string::npos);
  EXPECT_NE(line.find("\"f\":1.5"), std::string::npos);
  EXPECT_NE(line.find("\"yes\":true"), std::string::npos);
  EXPECT_NE(line.find("\"no\":false"), std::string::npos);
  EXPECT_NE(line.find("\"s\":\"text\""), std::string::npos);
}

TEST(Log, StringsAreJsonEscaped) {
  Capture cap;
  Log log;
  log.enable(cap.sink());
  log.event("esc", {{"v", "a\"b\\c\nd\te\x01"}});
  ASSERT_EQ(cap.lines.size(), 1u);
  EXPECT_NE(cap.lines[0].find("\"v\":\"a\\\"b\\\\c\\nd\\te\\u0001\""),
            std::string::npos)
      << cap.lines[0];
}

TEST(Log, DisableStopsEmission) {
  Capture cap;
  Log log;
  log.enable(cap.sink());
  log.event("one", {});
  log.disable();
  log.event("two", {});
  ASSERT_EQ(cap.lines.size(), 1u);
  EXPECT_NE(cap.lines[0].find("\"event\":\"one\""), std::string::npos);
}

TEST(Log, ConcurrentEventsStayLineAtomic) {
  Capture cap;
  Log log;
  log.enable(cap.sink());
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&log] {
      for (int i = 0; i < 250; ++i) log.event("tick", {{"n", std::uint64_t(i)}});
    });
  }
  for (auto& t : threads) t.join();
  ASSERT_EQ(cap.lines.size(), 1000u);
  for (const auto& line : cap.lines) {
    EXPECT_EQ(line.front(), '{');
    EXPECT_EQ(line.back(), '\n');
    EXPECT_NE(line.find("\"event\":\"tick\""), std::string::npos);
  }
}

}  // namespace
}  // namespace ncpm::obs
