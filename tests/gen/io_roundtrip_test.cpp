// Randomized write -> read -> identical round-trips for every io format
// (text and ncpm-binary v1), plus rejection of the malformed inputs the
// hardened readers must refuse.

#include "gen/io.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "gen/generators.hpp"
#include "gen/io_binary.hpp"
#include "gen/stable_generators.hpp"
#include "stable/gale_shapley.hpp"

namespace ncpm::io {
namespace {

void expect_same_instance(const core::Instance& a, const core::Instance& b) {
  ASSERT_EQ(a.num_applicants(), b.num_applicants());
  ASSERT_EQ(a.num_posts(), b.num_posts());
  ASSERT_EQ(a.has_last_resorts(), b.has_last_resorts());
  ASSERT_EQ(a.strict_prefs(), b.strict_prefs());
  for (std::int32_t x = 0; x < a.num_applicants(); ++x) {
    const auto pa = a.posts_of(x);
    const auto pb = b.posts_of(x);
    ASSERT_EQ(std::vector<std::int32_t>(pa.begin(), pa.end()),
              std::vector<std::int32_t>(pb.begin(), pb.end()));
    const auto ra = a.ranks_of(x);
    const auto rb = b.ranks_of(x);
    ASSERT_EQ(std::vector<std::int32_t>(ra.begin(), ra.end()),
              std::vector<std::int32_t>(rb.begin(), rb.end()));
  }
}

class IoRoundTrip : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(IoRoundTrip, RandomStrictInstances) {
  for (std::uint64_t round = 0; round < 8; ++round) {
    gen::StrictConfig cfg;
    cfg.num_applicants = 5 + static_cast<std::int32_t>(round) * 7;
    cfg.num_posts = 6 + static_cast<std::int32_t>(round) * 5;
    cfg.list_min = 1;
    cfg.list_max = 5;
    cfg.seed = GetParam() * 1000 + round;
    const auto inst = gen::random_strict_instance(cfg);
    expect_same_instance(inst, read_instance(write_instance(inst)));
  }
}

TEST_P(IoRoundTrip, RandomTiesInstances) {
  for (std::uint64_t round = 0; round < 8; ++round) {
    gen::TiesConfig cfg;
    cfg.num_applicants = 5 + static_cast<std::int32_t>(round) * 6;
    cfg.num_posts = 6 + static_cast<std::int32_t>(round) * 4;
    cfg.list_min = 1;
    cfg.list_max = 5;
    cfg.tie_prob = 0.5;
    cfg.seed = GetParam() * 1000 + round;
    const auto inst = gen::random_ties_instance(cfg);
    expect_same_instance(inst, read_instance(write_instance(inst)));
  }
}

TEST_P(IoRoundTrip, SolvableInstances) {
  gen::SolvableConfig cfg;
  cfg.num_applicants = 40;
  cfg.num_posts = 120;
  cfg.contention = 2.0;
  cfg.seed = GetParam();
  const auto inst = gen::solvable_strict_instance(cfg);
  expect_same_instance(inst, read_instance(write_instance(inst)));
}

TEST_P(IoRoundTrip, StableInstancesAndDerivedMatchings) {
  const auto n = 6 + static_cast<std::int32_t>(GetParam()) * 5;
  const auto inst = gen::random_stable_instance(n, GetParam());
  const auto back = read_stable_instance(write_stable_instance(inst));
  ASSERT_EQ(back.size(), inst.size());
  for (std::int32_t m = 0; m < n; ++m) {
    for (std::int32_t i = 0; i < n; ++i) {
      ASSERT_EQ(back.man_pref(m, i), inst.man_pref(m, i));
      ASSERT_EQ(back.woman_pref(m, i), inst.woman_pref(m, i));
    }
  }
  // Matchings round-trip through the pair list given the target shape.
  const auto m0 = stable::man_optimal(inst);
  matching::Matching as_matching(n, n);
  for (std::int32_t man = 0; man < n; ++man) {
    as_matching.match(man, m0.wife_of[static_cast<std::size_t>(man)]);
  }
  EXPECT_TRUE(read_matching(write_matching(as_matching), n, n) == as_matching);
}

INSTANTIATE_TEST_SUITE_P(Seeds, IoRoundTrip, ::testing::Values(1, 2, 3, 4, 5));

core::Instance binary_round_trip(const core::Instance& inst) {
  std::istringstream in(write_binary_instances({inst}));
  auto back = read_binary_instances(in);
  EXPECT_EQ(back.size(), 1u);
  return back.front();
}

// The acceptance bar for the wire format: for any instance, going through
// ncpm-binary v1 must land on the byte-identical text serialisation (and
// the binary bytes themselves must be stable under re-encoding).
TEST_P(IoRoundTrip, BinaryAgreesByteForByteWithText) {
  for (std::uint64_t round = 0; round < 6; ++round) {
    gen::StrictConfig strict_cfg;
    strict_cfg.num_applicants = 5 + static_cast<std::int32_t>(round) * 9;
    strict_cfg.num_posts = 7 + static_cast<std::int32_t>(round) * 6;
    strict_cfg.list_min = 1;
    strict_cfg.seed = GetParam() * 77 + round;
    const auto strict_inst = gen::random_strict_instance(strict_cfg);

    gen::TiesConfig ties_cfg;
    ties_cfg.num_applicants = 4 + static_cast<std::int32_t>(round) * 7;
    ties_cfg.num_posts = 6 + static_cast<std::int32_t>(round) * 5;
    ties_cfg.tie_prob = 0.5;
    ties_cfg.seed = GetParam() * 77 + round;
    const auto ties_inst = gen::random_ties_instance(ties_cfg);

    for (const auto* inst : {&strict_inst, &ties_inst}) {
      const auto back = binary_round_trip(*inst);
      expect_same_instance(*inst, back);
      EXPECT_EQ(write_instance(back), write_instance(*inst));
      EXPECT_EQ(write_binary_instances({back}), write_binary_instances({*inst}));
    }
  }
}

TEST_P(IoRoundTrip, BinaryBatchPreservesOrder) {
  std::vector<core::Instance> batch;
  for (std::uint64_t i = 0; i < 5; ++i) {
    gen::SolvableConfig cfg;
    cfg.num_applicants = 10 + static_cast<std::int32_t>(i) * 5;
    cfg.num_posts = cfg.num_applicants * 3;
    cfg.seed = GetParam() * 31 + i;
    batch.push_back(gen::solvable_strict_instance(cfg));
  }
  std::istringstream in(write_binary_instances(batch));
  const auto back = read_binary_instances(in);
  ASSERT_EQ(back.size(), batch.size());
  for (std::size_t i = 0; i < batch.size(); ++i) expect_same_instance(batch[i], back[i]);
}

TEST_P(IoRoundTrip, BinaryMatchingRoundTrip) {
  const auto n = 5 + static_cast<std::int32_t>(GetParam()) * 3;
  matching::Matching m(n, n + 2);
  for (std::int32_t l = 0; l < n; l += 2) m.match(l, (l + 3) % (n + 2));
  std::ostringstream out;
  write_binary_header(out);
  write_binary_matching(out, m);
  std::istringstream in(out.str());
  BinaryReader reader(in);
  ASSERT_EQ(reader.peek(), BinaryRecord::kMatching);
  EXPECT_TRUE(reader.read_matching() == m);
  EXPECT_FALSE(reader.peek().has_value());
}

TEST(IoMalformed, NegativeCountsRejected) {
  EXPECT_THROW(read_instance("ncpm-instance v1\napplicants -1 posts 2 last_resorts 1\n"),
               std::runtime_error);
  EXPECT_THROW(read_instance("ncpm-instance v1\napplicants 2 posts -5 last_resorts 1\n"),
               std::runtime_error);
  EXPECT_THROW(read_stable_instance("ncpm-stable v1\nn -3\n"), std::runtime_error);
}

TEST(IoMalformed, AbsurdCountsRejectedBeforeAllocation) {
  EXPECT_THROW(
      read_instance("ncpm-instance v1\napplicants 2147483647 posts 1 last_resorts 0\n"),
      std::runtime_error);
  EXPECT_THROW(read_stable_instance("ncpm-stable v1\nn 2147483647\n"), std::runtime_error);
}

TEST(IoMalformed, GarbagePostIdRejected) {
  EXPECT_THROW(read_instance("ncpm-instance v1\napplicants 1 posts 3 last_resorts 1\n0: 1 xyz\n"),
               std::runtime_error);
  EXPECT_THROW(read_instance("ncpm-instance v1\napplicants 1 posts 3 last_resorts 1\n0: 1 2z\n"),
               std::runtime_error);
  EXPECT_THROW(read_instance("ncpm-instance v1\napplicants 1 posts 3 last_resorts 1\n0: -2\n"),
               std::runtime_error);
}

TEST(IoMalformed, UnbalancedTieGroupsRejected) {
  const char* kPrefix = "ncpm-instance v1\napplicants 1 posts 4 last_resorts 1\n";
  EXPECT_THROW(read_instance(std::string(kPrefix) + "0: ( 1 2\n"), std::runtime_error);
  EXPECT_THROW(read_instance(std::string(kPrefix) + "0: 1 2 )\n"), std::runtime_error);
  EXPECT_THROW(read_instance(std::string(kPrefix) + "0: ( 1 ( 2 ) )\n"), std::runtime_error);
  EXPECT_THROW(read_instance(std::string(kPrefix) + "0: ( ) 1\n"), std::runtime_error);
}

TEST(IoMalformed, MatchingPairsValidated) {
  EXPECT_THROW(read_matching("ncpm-matching v1\n5 0\n", 2, 2), std::runtime_error);
  EXPECT_THROW(read_matching("ncpm-matching v1\n0 5\n", 2, 2), std::runtime_error);
  EXPECT_THROW(read_matching("ncpm-matching v1\n-1 0\n", 2, 2), std::runtime_error);
  // Two left vertices claiming one right vertex is a consistency error.
  EXPECT_THROW(read_matching("ncpm-matching v1\n0 1\n1 1\n", 2, 2), std::logic_error);
  // Trailing garbage must not silently truncate the pair list.
  EXPECT_THROW(read_matching("ncpm-matching v1\n0 0\ngarbage 1\n", 2, 2), std::runtime_error);
}

TEST(IoMalformed, TrailingContentRejected) {
  // Header/body mismatch: a third applicant line under "applicants 2".
  EXPECT_THROW(
      read_instance("ncpm-instance v1\napplicants 2 posts 2 last_resorts 1\n0: 0\n1: 1\n2: 0\n"),
      std::runtime_error);
  EXPECT_THROW(read_stable_instance(
                   "ncpm-stable v1\nn 1\nm0: 0\nw0: 0\nextra\n"),
               std::runtime_error);
  // Trailing whitespace and newlines stay acceptable.
  EXPECT_NO_THROW(
      read_instance("ncpm-instance v1\napplicants 2 posts 2 last_resorts 1\n0: 0\n1: 1\n\n  \n"));
}

TEST(IoMalformed, WrongApplicantLineHeaderRejected) {
  EXPECT_THROW(read_instance("ncpm-instance v1\napplicants 2 posts 2 last_resorts 1\n0: 0\n5: 1\n"),
               std::runtime_error);
}

// The text reader names the offending line in every rejection.
std::string read_instance_error(const std::string& text) {
  try {
    read_instance(text);
  } catch (const std::runtime_error& e) {
    return e.what();
  }
  ADD_FAILURE() << "expected a parse failure for: " << text;
  return "";
}

TEST(IoMalformed, ErrorsNameTheOffendingLine) {
  EXPECT_NE(read_instance_error("ncpm-garbage v1\n").find("(line 1)"), std::string::npos);
  EXPECT_NE(read_instance_error("ncpm-instance v1\napplicants -1 posts 2 last_resorts 1\n")
                .find("(line 2)"),
            std::string::npos);
  EXPECT_NE(read_instance_error(
                "ncpm-instance v1\napplicants 2 posts 3 last_resorts 1\n0: 0\n1: bogus\n")
                .find("(line 4)"),
            std::string::npos);
  EXPECT_NE(read_instance_error(
                "ncpm-instance v1\napplicants 2 posts 3 last_resorts 1\n0: 0\n5: 1\n")
                .find("(line 4)"),
            std::string::npos);
  EXPECT_NE(read_instance_error(
                "ncpm-instance v1\napplicants 1 posts 3 last_resorts 1\n0: 0\nextra\n")
                .find("(line 4)"),
            std::string::npos);
  // Blank lines before the header still count toward the line numbering.
  EXPECT_NE(read_instance_error("\n\nncpm-instance v2\n").find("(line 3)"), std::string::npos);
}

TEST(IoMalformed, WhitespaceLayoutTolerated) {
  // The header is token-oriented: one-line headers and blank lines between
  // header and body parse exactly like the canonical layout.
  EXPECT_NO_THROW(read_instance("ncpm-instance v1 applicants 1 posts 2 last_resorts 1\n0: 0\n"));
  EXPECT_NO_THROW(
      read_instance("ncpm-instance v1\napplicants 1 posts 2 last_resorts 1\n\n0: 0\n"));
  // ... but trailing garbage on the header line of a zero-applicant
  // instance is still a document mismatch.
  EXPECT_THROW(
      read_instance("ncpm-instance v1 applicants 0 posts 2 last_resorts 1 garbage\n"),
      std::runtime_error);
  EXPECT_NO_THROW(read_instance("ncpm-instance v1 applicants 0 posts 2 last_resorts 1\n"));
}

// ----- ncpm-binary v1: the malformed streams the strict reader must refuse.

std::string valid_binary() {
  gen::SolvableConfig cfg;
  cfg.num_applicants = 6;
  cfg.num_posts = 18;
  cfg.seed = 3;
  return write_binary_instances({gen::solvable_strict_instance(cfg)});
}

void expect_binary_rejected(const std::string& bytes, const char* what) {
  std::istringstream in(bytes);
  EXPECT_THROW(read_binary_instances(in), std::runtime_error) << what;
}

TEST(IoBinaryMalformed, TruncatedOrWrongHeader) {
  const auto good = valid_binary();
  expect_binary_rejected("", "empty stream");
  expect_binary_rejected(good.substr(0, 5), "magic cut short");
  expect_binary_rejected(good.substr(0, 10), "version cut short");
  auto bad_magic = good;
  bad_magic[0] = 'X';
  expect_binary_rejected(bad_magic, "wrong magic");
  auto bad_version = good;
  bad_version[8] = 9;  // version little-endian u32 at offset 8
  expect_binary_rejected(bad_version, "unsupported version");
}

TEST(IoBinaryMalformed, TruncatedRecords) {
  const auto good = valid_binary();
  // Record header (type + u64 size) starts at offset 12.
  expect_binary_rejected(good.substr(0, 13), "record size cut short");
  expect_binary_rejected(good.substr(0, 24), "payload cut short");
  expect_binary_rejected(good.substr(0, good.size() - 1), "last payload byte missing");
}

TEST(IoBinaryMalformed, OversizedCountsRejected) {
  // Hand-build: header + instance record claiming 2^31 applicants.
  std::string bytes(kBinaryMagic, sizeof(kBinaryMagic));
  const auto put_u32 = [&bytes](std::uint32_t v) {
    for (int i = 0; i < 4; ++i) bytes.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  };
  const auto put_u64 = [&bytes](std::uint64_t v) {
    for (int i = 0; i < 8; ++i) bytes.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  };
  put_u32(1);                     // version
  bytes.push_back(1);             // record type: instance
  put_u64(9);                     // payload: 2 counts + flags
  put_u32(0x80000000u);           // applicants: absurd
  put_u32(1);                     // posts
  bytes.push_back(0);             // flags
  expect_binary_rejected(bytes, "absurd applicant count");

  // An in-bound applicant count that cannot fit the declared payload must
  // be rejected before it drives a quarter-gigabyte groups allocation.
  std::string tiny(kBinaryMagic, sizeof(kBinaryMagic));
  const auto put_u32_tiny = [&tiny](std::uint32_t v) {
    for (int i = 0; i < 4; ++i) tiny.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  };
  put_u32_tiny(1);                // version
  tiny.push_back(1);              // instance record
  tiny.push_back(9);              // payload size u64 = 9: counts + flags only
  for (int i = 0; i < 7; ++i) tiny.push_back(0);
  put_u32_tiny(10'000'000);       // applicants: max the format allows
  put_u32_tiny(1);                // posts
  tiny.push_back(0);              // flags
  expect_binary_rejected(tiny, "applicant count exceeding payload");

  // An absurd declared payload size must be refused before any allocation.
  std::string huge(kBinaryMagic, sizeof(kBinaryMagic));
  huge += bytes.substr(sizeof(kBinaryMagic), 4);  // version
  huge.push_back(1);
  for (int i = 0; i < 8; ++i) huge.push_back(static_cast<char>(0xff));  // size = 2^64-1
  expect_binary_rejected(huge, "absurd payload size");
}

TEST(IoBinaryMalformed, TrailingBytesInRecordRejected) {
  // Grow the declared payload size by one and append a stray byte: the
  // parser must notice the record ends later than its content.
  auto good = valid_binary();
  const std::size_t size_off = 13;  // u64 payload size, little-endian
  ASSERT_LT(static_cast<unsigned char>(good[size_off]), 0xffu);
  ++good[size_off];
  good.push_back('\0');
  expect_binary_rejected(good, "trailing bytes inside record");
}

TEST(IoBinaryMalformed, PostIdOutOfRangeRejected) {
  std::string bytes(kBinaryMagic, sizeof(kBinaryMagic));
  const auto put_u32 = [&bytes](std::uint32_t v) {
    for (int i = 0; i < 4; ++i) bytes.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  };
  const auto put_u64 = [&bytes](std::uint64_t v) {
    for (int i = 0; i < 8; ++i) bytes.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  };
  put_u32(1);          // version
  bytes.push_back(1);  // instance record
  put_u64(9 + 12);     // counts + flags + one applicant, one group, one post
  put_u32(1);          // applicants
  put_u32(3);          // posts
  bytes.push_back(1);  // flags: last resorts
  put_u32(1);          // group count
  put_u32(1);          // group size
  put_u32(7);          // post id 7 >= 3 posts
  expect_binary_rejected(bytes, "post id out of range");
}

TEST(IoBinaryMalformed, DuplicateMatchingEndpointRejectedAsRuntimeError) {
  // Pairs (0,0) and (0,1): the second claims left endpoint 0 again. Must
  // surface as the reader's documented std::runtime_error, not the matching
  // container's std::logic_error.
  std::string bytes(kBinaryMagic, sizeof(kBinaryMagic));
  const auto put_u32 = [&bytes](std::uint32_t v) {
    for (int i = 0; i < 4; ++i) bytes.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  };
  put_u32(1);          // version
  bytes.push_back(2);  // matching record
  for (int i = 0; i < 8; ++i) bytes.push_back(i == 0 ? 28 : 0);  // payload size u64 = 28
  put_u32(2);          // n_left
  put_u32(2);          // n_right
  put_u32(2);          // pair count
  put_u32(0); put_u32(0);
  put_u32(0); put_u32(1);
  std::istringstream in(bytes);
  BinaryReader reader(in);
  EXPECT_THROW(reader.read_matching(), std::runtime_error);
}

TEST(IoBinaryMalformed, UnknownRecordTypeRejected) {
  auto good = valid_binary();
  good[12] = 42;  // record type byte
  expect_binary_rejected(good, "unknown record type");
}

TEST(IoBinaryMalformed, MatchingRecordInInstanceBatchRejected) {
  std::ostringstream out;
  write_binary_header(out);
  write_binary_matching(out, matching::Matching(2, 2));
  std::istringstream in(out.str());
  EXPECT_THROW(read_binary_instances(in), std::runtime_error);
}

}  // namespace
}  // namespace ncpm::io
