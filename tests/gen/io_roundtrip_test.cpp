// Randomized write -> read -> identical round-trips for every io format,
// plus rejection of the malformed inputs the hardened reader must refuse.

#include "gen/io.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <stdexcept>
#include <vector>

#include "gen/generators.hpp"
#include "gen/stable_generators.hpp"
#include "stable/gale_shapley.hpp"

namespace ncpm::io {
namespace {

void expect_same_instance(const core::Instance& a, const core::Instance& b) {
  ASSERT_EQ(a.num_applicants(), b.num_applicants());
  ASSERT_EQ(a.num_posts(), b.num_posts());
  ASSERT_EQ(a.has_last_resorts(), b.has_last_resorts());
  ASSERT_EQ(a.strict_prefs(), b.strict_prefs());
  for (std::int32_t x = 0; x < a.num_applicants(); ++x) {
    const auto pa = a.posts_of(x);
    const auto pb = b.posts_of(x);
    ASSERT_EQ(std::vector<std::int32_t>(pa.begin(), pa.end()),
              std::vector<std::int32_t>(pb.begin(), pb.end()));
    const auto ra = a.ranks_of(x);
    const auto rb = b.ranks_of(x);
    ASSERT_EQ(std::vector<std::int32_t>(ra.begin(), ra.end()),
              std::vector<std::int32_t>(rb.begin(), rb.end()));
  }
}

class IoRoundTrip : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(IoRoundTrip, RandomStrictInstances) {
  for (std::uint64_t round = 0; round < 8; ++round) {
    gen::StrictConfig cfg;
    cfg.num_applicants = 5 + static_cast<std::int32_t>(round) * 7;
    cfg.num_posts = 6 + static_cast<std::int32_t>(round) * 5;
    cfg.list_min = 1;
    cfg.list_max = 5;
    cfg.seed = GetParam() * 1000 + round;
    const auto inst = gen::random_strict_instance(cfg);
    expect_same_instance(inst, read_instance(write_instance(inst)));
  }
}

TEST_P(IoRoundTrip, RandomTiesInstances) {
  for (std::uint64_t round = 0; round < 8; ++round) {
    gen::TiesConfig cfg;
    cfg.num_applicants = 5 + static_cast<std::int32_t>(round) * 6;
    cfg.num_posts = 6 + static_cast<std::int32_t>(round) * 4;
    cfg.list_min = 1;
    cfg.list_max = 5;
    cfg.tie_prob = 0.5;
    cfg.seed = GetParam() * 1000 + round;
    const auto inst = gen::random_ties_instance(cfg);
    expect_same_instance(inst, read_instance(write_instance(inst)));
  }
}

TEST_P(IoRoundTrip, SolvableInstances) {
  gen::SolvableConfig cfg;
  cfg.num_applicants = 40;
  cfg.num_posts = 120;
  cfg.contention = 2.0;
  cfg.seed = GetParam();
  const auto inst = gen::solvable_strict_instance(cfg);
  expect_same_instance(inst, read_instance(write_instance(inst)));
}

TEST_P(IoRoundTrip, StableInstancesAndDerivedMatchings) {
  const auto n = 6 + static_cast<std::int32_t>(GetParam()) * 5;
  const auto inst = gen::random_stable_instance(n, GetParam());
  const auto back = read_stable_instance(write_stable_instance(inst));
  ASSERT_EQ(back.size(), inst.size());
  for (std::int32_t m = 0; m < n; ++m) {
    for (std::int32_t i = 0; i < n; ++i) {
      ASSERT_EQ(back.man_pref(m, i), inst.man_pref(m, i));
      ASSERT_EQ(back.woman_pref(m, i), inst.woman_pref(m, i));
    }
  }
  // Matchings round-trip through the pair list given the target shape.
  const auto m0 = stable::man_optimal(inst);
  matching::Matching as_matching(n, n);
  for (std::int32_t man = 0; man < n; ++man) {
    as_matching.match(man, m0.wife_of[static_cast<std::size_t>(man)]);
  }
  EXPECT_TRUE(read_matching(write_matching(as_matching), n, n) == as_matching);
}

INSTANTIATE_TEST_SUITE_P(Seeds, IoRoundTrip, ::testing::Values(1, 2, 3, 4, 5));

TEST(IoMalformed, NegativeCountsRejected) {
  EXPECT_THROW(read_instance("ncpm-instance v1\napplicants -1 posts 2 last_resorts 1\n"),
               std::runtime_error);
  EXPECT_THROW(read_instance("ncpm-instance v1\napplicants 2 posts -5 last_resorts 1\n"),
               std::runtime_error);
  EXPECT_THROW(read_stable_instance("ncpm-stable v1\nn -3\n"), std::runtime_error);
}

TEST(IoMalformed, AbsurdCountsRejectedBeforeAllocation) {
  EXPECT_THROW(
      read_instance("ncpm-instance v1\napplicants 2147483647 posts 1 last_resorts 0\n"),
      std::runtime_error);
  EXPECT_THROW(read_stable_instance("ncpm-stable v1\nn 2147483647\n"), std::runtime_error);
}

TEST(IoMalformed, GarbagePostIdRejected) {
  EXPECT_THROW(read_instance("ncpm-instance v1\napplicants 1 posts 3 last_resorts 1\n0: 1 xyz\n"),
               std::runtime_error);
  EXPECT_THROW(read_instance("ncpm-instance v1\napplicants 1 posts 3 last_resorts 1\n0: 1 2z\n"),
               std::runtime_error);
  EXPECT_THROW(read_instance("ncpm-instance v1\napplicants 1 posts 3 last_resorts 1\n0: -2\n"),
               std::runtime_error);
}

TEST(IoMalformed, UnbalancedTieGroupsRejected) {
  const char* kPrefix = "ncpm-instance v1\napplicants 1 posts 4 last_resorts 1\n";
  EXPECT_THROW(read_instance(std::string(kPrefix) + "0: ( 1 2\n"), std::runtime_error);
  EXPECT_THROW(read_instance(std::string(kPrefix) + "0: 1 2 )\n"), std::runtime_error);
  EXPECT_THROW(read_instance(std::string(kPrefix) + "0: ( 1 ( 2 ) )\n"), std::runtime_error);
  EXPECT_THROW(read_instance(std::string(kPrefix) + "0: ( ) 1\n"), std::runtime_error);
}

TEST(IoMalformed, MatchingPairsValidated) {
  EXPECT_THROW(read_matching("ncpm-matching v1\n5 0\n", 2, 2), std::runtime_error);
  EXPECT_THROW(read_matching("ncpm-matching v1\n0 5\n", 2, 2), std::runtime_error);
  EXPECT_THROW(read_matching("ncpm-matching v1\n-1 0\n", 2, 2), std::runtime_error);
  // Two left vertices claiming one right vertex is a consistency error.
  EXPECT_THROW(read_matching("ncpm-matching v1\n0 1\n1 1\n", 2, 2), std::logic_error);
  // Trailing garbage must not silently truncate the pair list.
  EXPECT_THROW(read_matching("ncpm-matching v1\n0 0\ngarbage 1\n", 2, 2), std::runtime_error);
}

TEST(IoMalformed, TrailingContentRejected) {
  // Header/body mismatch: a third applicant line under "applicants 2".
  EXPECT_THROW(
      read_instance("ncpm-instance v1\napplicants 2 posts 2 last_resorts 1\n0: 0\n1: 1\n2: 0\n"),
      std::runtime_error);
  EXPECT_THROW(read_stable_instance(
                   "ncpm-stable v1\nn 1\nm0: 0\nw0: 0\nextra\n"),
               std::runtime_error);
  // Trailing whitespace and newlines stay acceptable.
  EXPECT_NO_THROW(
      read_instance("ncpm-instance v1\napplicants 2 posts 2 last_resorts 1\n0: 0\n1: 1\n\n  \n"));
}

TEST(IoMalformed, WrongApplicantLineHeaderRejected) {
  EXPECT_THROW(read_instance("ncpm-instance v1\napplicants 2 posts 2 last_resorts 1\n0: 0\n5: 1\n"),
               std::runtime_error);
}

}  // namespace
}  // namespace ncpm::io
