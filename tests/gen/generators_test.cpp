// Workload generators: planted properties, determinism, validation.

#include "gen/generators.hpp"

#include <gtest/gtest.h>

#include "core/popular_matching.hpp"
#include "core/reduced_graph.hpp"
#include "gen/stable_generators.hpp"
#include "stable/gale_shapley.hpp"
#include "stable/stability.hpp"

namespace ncpm::gen {
namespace {

TEST(Generators, RandomStrictRespectsBoundsAndSeedDeterminism) {
  StrictConfig cfg;
  cfg.num_applicants = 50;
  cfg.num_posts = 30;
  cfg.list_min = 2;
  cfg.list_max = 7;
  cfg.seed = 123;
  const auto a = random_strict_instance(cfg);
  const auto b = random_strict_instance(cfg);
  ASSERT_EQ(a.num_applicants(), 50);
  for (std::int32_t x = 0; x < a.num_applicants(); ++x) {
    EXPECT_GE(a.list_length(x), 2u);
    EXPECT_LE(a.list_length(x), 7u);
    const auto pa = a.posts_of(x);
    const auto pb = b.posts_of(x);
    EXPECT_EQ(std::vector<std::int32_t>(pa.begin(), pa.end()),
              std::vector<std::int32_t>(pb.begin(), pb.end()));
  }
  cfg.seed = 124;
  const auto c = random_strict_instance(cfg);
  bool any_difference = false;
  for (std::int32_t x = 0; x < a.num_applicants() && !any_difference; ++x) {
    const auto pa = a.posts_of(x);
    const auto pc = c.posts_of(x);
    any_difference = !std::equal(pa.begin(), pa.end(), pc.begin(), pc.end());
  }
  EXPECT_TRUE(any_difference) << "different seeds should differ";
}

TEST(Generators, SolvableAlwaysAdmitsPopularMatching) {
  for (const double contention : {1.0, 2.0, 4.0, 8.0}) {
    for (std::uint64_t seed = 1; seed <= 5; ++seed) {
      SolvableConfig cfg;
      cfg.num_applicants = 64;
      cfg.num_posts = 160;
      cfg.all_f_fraction = 0.3;
      cfg.contention = contention;
      cfg.seed = seed;
      const auto inst = solvable_strict_instance(cfg);
      EXPECT_TRUE(core::find_popular_matching(inst).has_value())
          << "contention " << contention << " seed " << seed;
    }
  }
}

TEST(Generators, SolvableContentionSharesFirstChoices) {
  SolvableConfig cfg;
  cfg.num_applicants = 100;
  cfg.num_posts = 250;
  cfg.contention = 5.0;
  cfg.seed = 9;
  const auto inst = solvable_strict_instance(cfg);
  const auto rg = core::build_reduced_graph(inst);
  // With contention 5 the number of distinct f-posts must be well below
  // the number of applicants.
  EXPECT_LT(rg.num_f_posts(), 50u);
}

TEST(Generators, SolvableValidation) {
  SolvableConfig cfg;
  cfg.num_applicants = 100;
  cfg.num_posts = 120;  // < n_a + n_a/contention for contention 1
  EXPECT_THROW(solvable_strict_instance(cfg), std::invalid_argument);
  cfg.num_posts = 300;
  cfg.contention = 0.5;
  EXPECT_THROW(solvable_strict_instance(cfg), std::invalid_argument);
  cfg.contention = 1.0;
  cfg.list_min = 1;  // planted s-target needs room after f
  EXPECT_THROW(solvable_strict_instance(cfg), std::invalid_argument);
}

TEST(Generators, ContentionInstanceRejectsTiny) {
  EXPECT_THROW(contention_instance(2), std::invalid_argument);
}

TEST(Generators, BinaryTreeShape) {
  const auto inst = binary_tree_instance(3);
  EXPECT_EQ(inst.num_posts(), 15);       // 2^4 - 1 nodes
  EXPECT_EQ(inst.num_applicants(), 14);  // one per edge
  const auto rg = core::build_reduced_graph(inst);
  // Every applicant's reduced pair is a tree edge {v, parent(v)}.
  for (std::int32_t a = 0; a < inst.num_applicants(); ++a) {
    const auto ai = static_cast<std::size_t>(a);
    const std::int32_t lo = std::min(rg.f_post[ai], rg.s_post[ai]);
    const std::int32_t hi = std::max(rg.f_post[ai], rg.s_post[ai]);
    EXPECT_EQ(lo, (hi - 1) / 2) << "edge must join child and parent";
  }
  EXPECT_THROW(binary_tree_instance(0), std::invalid_argument);
}

TEST(Generators, TiesInstanceHasTies) {
  TiesConfig cfg;
  cfg.num_applicants = 40;
  cfg.num_posts = 20;
  cfg.list_min = 3;
  cfg.list_max = 6;
  cfg.tie_prob = 1.0;  // everything ties into one group
  cfg.seed = 2;
  const auto inst = random_ties_instance(cfg);
  EXPECT_FALSE(inst.strict_prefs());
  for (std::int32_t a = 0; a < inst.num_applicants(); ++a) {
    EXPECT_EQ(inst.num_ranks(a), 1) << "tie_prob 1 must collapse to one group";
  }
  cfg.tie_prob = 0.0;
  const auto strict = random_ties_instance(cfg);
  EXPECT_TRUE(strict.strict_prefs());
}

TEST(Generators, RandomBipartiteDegreesAreDistinct) {
  const auto g = random_bipartite(30, 20, 4.0, 77);
  for (std::int32_t l = 0; l < g.n_left(); ++l) {
    std::vector<std::int32_t> nbrs;
    for (const auto e : g.left_incident(l)) {
      nbrs.push_back(g.edge_right(static_cast<std::size_t>(e)));
    }
    std::sort(nbrs.begin(), nbrs.end());
    EXPECT_TRUE(std::adjacent_find(nbrs.begin(), nbrs.end()) == nbrs.end())
        << "duplicate neighbour at left " << l;
  }
}

TEST(StableGenerators, RandomInstancesAreValidAndSeeded) {
  const auto a = random_stable_instance(12, 5);
  const auto b = random_stable_instance(12, 5);
  for (std::int32_t m = 0; m < 12; ++m) {
    EXPECT_EQ(std::vector<std::int32_t>(a.man_prefs(m).begin(), a.man_prefs(m).end()),
              std::vector<std::int32_t>(b.man_prefs(m).begin(), b.man_prefs(m).end()));
  }
  // Gale-Shapley must work on them (validity smoke test).
  const auto m0 = stable::man_optimal(a);
  EXPECT_TRUE(stable::is_stable(a, m0));
}

TEST(StableGenerators, CyclicInstanceIsValid) {
  const auto inst = cyclic_stable_instance(7);
  const auto m0 = stable::man_optimal(inst);
  EXPECT_TRUE(stable::is_stable(inst, m0));
}

}  // namespace
}  // namespace ncpm::gen
