#!/usr/bin/env bash
# ncpm_cli exit-code / usage contract: every subcommand exits 2 and prints a
# one-line "usage: ncpm_cli ..." to stderr on bad arguments; well-formed
# invocations exit 0 (or 1 for "no popular matching"). Wired into CTest as
# ncpm_cli_usage; $NCPM_CLI points at the built binary.
set -u

CLI="${NCPM_CLI:?set NCPM_CLI to the ncpm_cli binary}"
failures=0

# expect_usage <description> -- <args...>
# bad arguments: exit 2, exactly one stderr line, starting "usage: ncpm_cli".
expect_usage() {
  local desc="$1"; shift; shift  # drop desc and "--"
  local err rc
  err=$("$CLI" "$@" </dev/null 2>&1 >/dev/null)
  rc=$?
  if [ "$rc" -ne 2 ]; then
    echo "FAIL [$desc]: exit $rc, want 2 (args: $*)"; failures=$((failures+1)); return
  fi
  if [ "$(printf '%s\n' "$err" | wc -l)" -ne 1 ]; then
    echo "FAIL [$desc]: stderr not one line: $err"; failures=$((failures+1)); return
  fi
  case "$err" in
    "usage: ncpm_cli "*) ;;
    *) echo "FAIL [$desc]: stderr is not a usage line: $err"; failures=$((failures+1)); return ;;
  esac
  echo "ok   [$desc]"
}

# expect_exit <want_rc> <description> -- <args...>
expect_exit() {
  local want="$1" desc="$2"; shift 3
  "$CLI" "$@" >/dev/null 2>&1 </dev/null
  local rc=$?
  if [ "$rc" -ne "$want" ]; then
    echo "FAIL [$desc]: exit $rc, want $want (args: $*)"; failures=$((failures+1)); return
  fi
  echo "ok   [$desc]"
}

expect_usage "no arguments"            --
expect_usage "unknown subcommand"      -- frobnicate
expect_usage "unknown flag"            -- solve --bogus
expect_usage "solve two positionals"   -- solve a.txt b.txt
expect_usage "solve --threads junk"    -- solve --threads banana
expect_usage "solve --threads 0"       -- solve --threads 0
expect_usage "solve --threads missing" -- solve --threads
expect_usage "solve pin-lanes missing" -- solve --pin-lanes
expect_usage "solve pin-lanes open range" -- solve --pin-lanes 0-
expect_usage "solve pin-lanes double comma" -- solve --pin-lanes 1,,2
expect_usage "solve pin-lanes reversed" -- solve --pin-lanes 3-1
expect_usage "solve pin-lanes junk"    -- solve --pin-lanes zero
expect_usage "batch pin-lanes junk"    -- batch a.bin --pin-lanes 1,
expect_usage "serve pin-lanes missing" -- serve --pin-lanes
expect_usage "serve pin-lanes junk"    -- serve --pin-lanes -3
expect_usage "batch no file"           -- batch
expect_usage "batch two files"         -- batch a.bin b.bin
expect_usage "pack no inputs"          -- pack out.bin
expect_usage "rotations two files"     -- rotations a.txt b.txt
expect_usage "gen-popular argc"        -- gen-popular 5 5
expect_usage "gen-popular junk"        -- gen-popular five 5 1
expect_usage "gen-popular zero"        -- gen-popular 0 5 1
expect_usage "gen-stable argc"         -- gen-stable
expect_usage "gen-stable junk"         -- gen-stable five 1
expect_usage "gen-batch argc"          -- gen-batch 3 5 5 1
expect_usage "gen-batch junk"          -- gen-batch three 5 5 1 out.bin
expect_usage "serve positional"        -- serve extra
expect_usage "serve bad port"          -- serve --port 99999
expect_usage "serve bad workers"       -- serve --workers 0
expect_usage "serve bad core"          -- serve --core bogus
expect_usage "serve core missing"      -- serve --core
expect_usage "serve bad idle timeout"  -- serve --idle-timeout-ms nope
expect_usage "serve bad hello timeout" -- serve --hello-timeout-ms nope
expect_usage "serve bad global cap"    -- serve --max-in-flight-global nope
expect_usage "serve global cap missing" -- serve --max-in-flight-global
expect_usage "serve bad metrics port"  -- serve --metrics-port 99999
expect_usage "serve metrics port junk" -- serve --metrics-port nope
expect_usage "serve metrics port missing" -- serve --metrics-port
expect_usage "serve bad trace sample"  -- serve --trace-sample-n 0
expect_usage "serve trace sample junk" -- serve --trace-sample-n nope
expect_usage "rpc no args"             -- rpc
expect_usage "rpc missing mode"        -- rpc localhost:7447
expect_usage "rpc bad hostport"        -- rpc localhost seven solve
expect_usage "rpc bad port"            -- rpc localhost:0 solve
expect_usage "rpc bad mode"            -- rpc localhost:7447 frobnicate
expect_usage "rpc next-stable"         -- rpc localhost:7447 next-stable
expect_usage "rpc bad deadline"        -- rpc localhost:7447 solve --deadline-ms nope
expect_usage "rpc bad retries"         -- rpc localhost:7447 solve --retries nope
expect_usage "rpc bad backoff"         -- rpc localhost:7447 solve --backoff-ms 0
expect_usage "rpc bad hedge"           -- rpc localhost:7447 solve --hedge-ms 0
expect_usage "rpc retries missing"     -- rpc localhost:7447 solve --retries
expect_usage "stats no args"           -- stats
expect_usage "stats two positionals"   -- stats a:1 b:2
expect_usage "stats bad hostport"      -- stats localhost
expect_usage "stats bad port"          -- stats localhost:0
expect_usage "stats bad watch"         -- stats localhost:7447 --watch 0
expect_usage "stats watch junk"        -- stats localhost:7447 --watch nope
expect_usage "stats bad format"        -- stats localhost:7447 --format xml
expect_usage "stats format missing"    -- stats localhost:7447 --format
expect_usage "stats traces need json"  -- stats localhost:7447 --traces
expect_usage "top no args"             -- top
expect_usage "top two positionals"     -- top a:1 b:2
expect_usage "top bad hostport"        -- top localhost
expect_usage "top bad port"            -- top localhost:0
expect_usage "top bad interval"        -- top localhost:7447 --interval 0
expect_usage "top interval junk"       -- top localhost:7447 --interval nope
expect_usage "top bad count"           -- top localhost:7447 --count 0
expect_usage "top count missing"       -- top localhost:7447 --count
expect_usage "serve bad slow bound"    -- serve --slow-request-ms 0
expect_usage "serve slow bound junk"   -- serve --slow-request-ms nope
expect_usage "serve slow bound missing" -- serve --slow-request-ms

expect_exit 0 "help exits 0"           -- help
expect_exit 2 "missing input file"     -- solve /nonexistent/instance.txt
expect_exit 2 "batch missing file"     -- batch /nonexistent/batch.bin
expect_exit 2 "rpc connection refused" -- rpc 127.0.0.1:1 solve  # port 1: nothing listens
expect_exit 2 "stats connection refused" -- stats 127.0.0.1:1
expect_exit 2 "top connection refused" -- top 127.0.0.1:1 --count 1

# End-to-end sanity: generated instance solves with exit 0 through a pipe.
tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT
if ! "$CLI" gen-popular 6 6 1 > "$tmp/inst.txt" 2>/dev/null; then
  echo "FAIL [gen-popular happy path]"; failures=$((failures+1))
fi
expect_exit 0 "solve happy path"       -- solve "$tmp/inst.txt"
expect_exit 0 "check happy path"       -- check "$tmp/inst.txt"
expect_exit 0 "solve pinned to cpu 0"  -- solve "$tmp/inst.txt" --pin-lanes 0
expect_exit 0 "solve pinned auto"      -- solve "$tmp/inst.txt" --pin-lanes auto --threads 2

if [ "$failures" -ne 0 ]; then
  echo "$failures failure(s)"
  exit 1
fi
echo "all usage checks passed"
