#pragma once
// Shared fixtures: the two worked examples of the paper and small helpers.

#include <vector>

#include "core/instance.hpp"
#include "stable/instance.hpp"

namespace ncpm::test {

/// Figure 1: the popular-matching instance I (8 applicants, 9 posts),
/// 0-indexed (a1 -> 0, p1 -> 0).
inline core::Instance fig1_instance() {
  return core::Instance::strict(9, {
                                       {0, 3, 4, 1, 5},     // a1: p1 p4 p5 p2 p6
                                       {3, 4, 6, 1, 7},     // a2: p4 p5 p7 p2 p8
                                       {3, 0, 2, 7},        // a3: p4 p1 p3 p8
                                       {0, 6, 3, 2, 8},     // a4: p1 p7 p4 p3 p9
                                       {4, 0, 6, 1, 5},     // a5: p5 p1 p7 p2 p6
                                       {6, 5},              // a6: p7 p6
                                       {6, 3, 7, 1},        // a7: p7 p4 p8 p2
                                       {6, 3, 0, 4, 8, 2},  // a8: p7 p4 p1 p5 p9 p3
                                   });
}

/// The popular matching of instance I stated in Section II (a_i -> p_j).
inline std::vector<std::int32_t> fig1_paper_matching() {
  // {(a1,p1),(a2,p2),(a3,p4),(a4,p3),(a5,p5),(a6,p7),(a7,p8),(a8,p9)}
  return {0, 1, 3, 2, 4, 6, 7, 8};
}

/// Figure 5: the stable-marriage instance of size 8, 0-indexed.
inline stable::StableInstance fig5_instance() {
  std::vector<std::vector<std::int32_t>> men = {
      {4, 6, 0, 1, 5, 7, 3, 2},  // m1: w5 w7 w1 w2 w6 w8 w4 w3
      {1, 2, 6, 4, 3, 0, 7, 5},  // m2: w2 w3 w7 w5 w4 w1 w8 w6
      {7, 4, 0, 3, 5, 1, 2, 6},  // m3: w8 w5 w1 w4 w6 w2 w3 w7
      {2, 1, 6, 3, 0, 5, 7, 4},  // m4: w3 w2 w7 w4 w1 w6 w8 w5
      {6, 1, 4, 0, 2, 5, 7, 3},  // m5: w7 w2 w5 w1 w3 w6 w8 w4
      {0, 5, 6, 4, 7, 3, 1, 2},  // m6: w1 w6 w7 w5 w8 w4 w2 w3
      {1, 4, 6, 5, 2, 3, 7, 0},  // m7: w2 w5 w7 w6 w3 w4 w8 w1
      {2, 7, 3, 4, 6, 1, 5, 0},  // m8: w3 w8 w4 w5 w7 w2 w6 w1
  };
  std::vector<std::vector<std::int32_t>> women = {
      {4, 2, 6, 5, 0, 1, 7, 3},  // w1: m5 m3 m7 m6 m1 m2 m8 m4
      {7, 5, 2, 4, 6, 1, 0, 3},  // w2: m8 m6 m3 m5 m7 m2 m1 m4
      {0, 4, 5, 1, 3, 7, 6, 2},  // w3: m1 m5 m6 m2 m4 m8 m7 m3
      {7, 6, 2, 1, 3, 0, 4, 5},  // w4: m8 m7 m3 m2 m4 m1 m5 m6
      {5, 3, 6, 2, 7, 0, 1, 4},  // w5: m6 m4 m7 m3 m8 m1 m2 m5
      {1, 7, 4, 2, 3, 5, 6, 0},  // w6: m2 m8 m5 m3 m4 m6 m7 m1
      {6, 4, 1, 0, 7, 5, 3, 2},  // w7: m7 m5 m2 m1 m8 m6 m4 m3
      {6, 3, 0, 4, 1, 2, 5, 7},  // w8: m7 m4 m1 m5 m2 m3 m6 m8
  };
  return stable::StableInstance::from_lists(std::move(men), std::move(women));
}

/// The stable matching M underlined in Figure 5 (derived in Section VI-C's
/// reduced lists, Figure 6: the first reduced entry of each man).
/// m1-w8, m2-w3, m3-w5, m4-w6, m5-w7, m6-w1, m7-w2, m8-w4.
inline stable::MarriageMatching fig5_matching() {
  return stable::MarriageMatching::from_wife_of({7, 2, 4, 5, 6, 0, 1, 3});
}

}  // namespace ncpm::test
