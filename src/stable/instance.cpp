#include "stable/instance.hpp"

#include <stdexcept>

namespace ncpm::stable {

namespace {

void fill_side(std::int32_t n, const std::vector<std::vector<std::int32_t>>& prefs,
               std::vector<std::int32_t>& flat, std::vector<std::int32_t>& rank) {
  flat.assign(static_cast<std::size_t>(n) * static_cast<std::size_t>(n), kNone);
  rank.assign(static_cast<std::size_t>(n) * static_cast<std::size_t>(n), kNone);
  for (std::int32_t p = 0; p < n; ++p) {
    const auto& list = prefs[static_cast<std::size_t>(p)];
    if (static_cast<std::int32_t>(list.size()) != n) {
      throw std::invalid_argument("StableInstance: preference list is not complete");
    }
    for (std::int32_t i = 0; i < n; ++i) {
      const std::int32_t q = list[static_cast<std::size_t>(i)];
      if (q < 0 || q >= n) throw std::out_of_range("StableInstance: id out of range");
      const auto base = static_cast<std::size_t>(p) * static_cast<std::size_t>(n);
      if (rank[base + static_cast<std::size_t>(q)] != kNone) {
        throw std::invalid_argument("StableInstance: duplicate entry in a preference list");
      }
      flat[base + static_cast<std::size_t>(i)] = q;
      rank[base + static_cast<std::size_t>(q)] = i;
    }
  }
}

}  // namespace

StableInstance StableInstance::from_lists(std::vector<std::vector<std::int32_t>> men_prefs,
                                          std::vector<std::vector<std::int32_t>> women_prefs) {
  if (men_prefs.size() != women_prefs.size()) {
    throw std::invalid_argument("StableInstance: side sizes differ");
  }
  StableInstance inst;
  inst.n_ = static_cast<std::int32_t>(men_prefs.size());
  fill_side(inst.n_, men_prefs, inst.mp_, inst.mr_);
  fill_side(inst.n_, women_prefs, inst.wp_, inst.wr_);
  return inst;
}

MarriageMatching MarriageMatching::from_wife_of(std::vector<std::int32_t> wife_of) {
  MarriageMatching m;
  m.husband_of.assign(wife_of.size(), kNone);
  for (std::size_t man = 0; man < wife_of.size(); ++man) {
    const std::int32_t w = wife_of[man];
    if (w < 0 || static_cast<std::size_t>(w) >= wife_of.size()) {
      throw std::out_of_range("MarriageMatching: woman id out of range");
    }
    if (m.husband_of[static_cast<std::size_t>(w)] != kNone) {
      throw std::invalid_argument("MarriageMatching: two men share a wife");
    }
    m.husband_of[static_cast<std::size_t>(w)] = static_cast<std::int32_t>(man);
  }
  m.wife_of = std::move(wife_of);
  return m;
}

}  // namespace ncpm::stable
