#include "stable/lattice.hpp"

#include <set>
#include <stdexcept>

#include "stable/gale_shapley.hpp"
#include "stable/rotations.hpp"

namespace ncpm::stable {

bool dominates(const StableInstance& inst, const MarriageMatching& m,
               const MarriageMatching& m2) {
  for (std::int32_t man = 0; man < inst.size(); ++man) {
    const std::int32_t w1 = m.wife_of[static_cast<std::size_t>(man)];
    const std::int32_t w2 = m2.wife_of[static_cast<std::size_t>(man)];
    if (inst.man_rank_of(man, w1) > inst.man_rank_of(man, w2)) return false;
  }
  return true;
}

bool strictly_dominates(const StableInstance& inst, const MarriageMatching& m,
                        const MarriageMatching& m2) {
  return !(m == m2) && dominates(inst, m, m2);
}

std::vector<MarriageMatching> all_stable_matchings(const StableInstance& inst, std::size_t cap) {
  std::vector<MarriageMatching> result;
  std::set<std::vector<std::int32_t>> seen;
  std::vector<MarriageMatching> frontier{man_optimal(inst)};
  seen.insert(frontier.front().wife_of);
  while (!frontier.empty()) {
    const MarriageMatching cur = frontier.back();
    frontier.pop_back();
    result.push_back(cur);
    if (result.size() > cap) {
      throw std::runtime_error("all_stable_matchings: cap exceeded");
    }
    for (const auto& rho : exposed_rotations_sequential(inst, cur)) {
      MarriageMatching next = eliminate_rotation(cur, rho);
      if (seen.insert(next.wife_of).second) frontier.push_back(std::move(next));
    }
  }
  return result;
}

bool immediately_dominates(const StableInstance& inst, const MarriageMatching& m,
                           const MarriageMatching& m2,
                           const std::vector<MarriageMatching>& all) {
  if (!strictly_dominates(inst, m, m2)) return false;
  for (const auto& mid : all) {
    if (strictly_dominates(inst, m, mid) && strictly_dominates(inst, mid, m2)) return false;
  }
  return true;
}

}  // namespace ncpm::stable
