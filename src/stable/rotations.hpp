#pragma once
// Rotations in the stable-matching lattice (Definitions 7 and 8).
//
// A rotation exposed in stable M is a cyclic sequence of matched pairs
// ((m0,w0), ..., (mk-1,wk-1)) where w_{i+1} = s_M(m_i) is the highest-
// ranked woman on m_i's list preferring m_i to her partner, and
// m_{i+1} = p_M(w_{i+1}). Eliminating it (m_i marries w_{i+1}) yields the
// immediately-dominated stable matching M \ ρ (Lemma 15).
//
// This module is the *sequential* rotation machinery — the baseline that
// Algorithm 4 (next_stable.hpp) parallelises — plus shared helpers
// (elimination, validation, canonicalisation).

#include <optional>
#include <utility>
#include <vector>

#include "stable/instance.hpp"

namespace ncpm::stable {

struct Rotation {
  /// Matched pairs (m_i, w_i) in rotation order.
  std::vector<std::pair<std::int32_t, std::int32_t>> pairs;

  /// Rotate so the smallest man id comes first (comparison across finders).
  Rotation canonical() const;
  bool operator==(const Rotation& other) const { return pairs == other.pairs; }
};

/// s_M(m): the highest-ranked woman on m's list who prefers m to her
/// M-partner, or kNone. For a stable M she always ranks below p_M(m).
std::int32_t s_m(const StableInstance& inst, const MarriageMatching& m, std::int32_t man);

/// All rotations exposed in stable M, by walking the successor function
/// next_M(m) = p_M(s_M(m)) sequentially. Empty iff M is woman-optimal.
std::vector<Rotation> exposed_rotations_sequential(const StableInstance& inst,
                                                   const MarriageMatching& m);

/// M \ ρ (Definition 8). ρ must consist of M-pairs.
MarriageMatching eliminate_rotation(const MarriageMatching& m, const Rotation& rho);

/// Definition 7 validation: every (m_i, w_i) matched in M and
/// w_{i+1} = s_M(m_i).
bool is_exposed_rotation(const StableInstance& inst, const MarriageMatching& m,
                         const Rotation& rho);

/// The complete rotation set of the instance, collected along one maximal
/// chain from the man-optimal to the woman-optimal matching. By the
/// fundamental theorem of the rotation structure (Gusfield-Irving, Thm
/// 2.5.4) every maximal chain eliminates every rotation of the instance
/// exactly once, so the result is chain-independent (property-tested).
/// O(n^2) pairs in total; canonicalised and sorted by first pair.
std::vector<Rotation> all_rotations(const StableInstance& inst);

}  // namespace ncpm::stable
