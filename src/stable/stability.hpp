#pragma once
// Stability verification (Definition 5): no blocking pair.

#include <utility>
#include <vector>

#include "pram/counters.hpp"
#include "pram/executor.hpp"
#include "stable/instance.hpp"

namespace ncpm::stable {

/// Parallel check over all n^2 pairs: is m a blocking pair with w? Rounds
/// run on `ex`.
bool is_stable(const StableInstance& inst, const MarriageMatching& m,
               pram::NcCounters* counters = nullptr,
               pram::Executor& ex = pram::default_executor());

/// All blocking pairs (sequential; diagnostics and tests).
std::vector<std::pair<std::int32_t, std::int32_t>> blocking_pairs(const StableInstance& inst,
                                                                  const MarriageMatching& m);

}  // namespace ncpm::stable
