#include "stable/rotations.hpp"

#include <algorithm>
#include <stdexcept>

#include "stable/gale_shapley.hpp"

namespace ncpm::stable {

Rotation Rotation::canonical() const {
  if (pairs.empty()) return *this;
  std::size_t best = 0;
  for (std::size_t i = 1; i < pairs.size(); ++i) {
    if (pairs[i].first < pairs[best].first) best = i;
  }
  Rotation out;
  out.pairs.reserve(pairs.size());
  for (std::size_t i = 0; i < pairs.size(); ++i) {
    out.pairs.push_back(pairs[(best + i) % pairs.size()]);
  }
  return out;
}

std::int32_t s_m(const StableInstance& inst, const MarriageMatching& m, std::int32_t man) {
  for (const auto w : inst.man_prefs(man)) {
    if (w == m.wife_of[static_cast<std::size_t>(man)]) continue;
    const std::int32_t partner = m.husband_of[static_cast<std::size_t>(w)];
    if (inst.woman_prefers(w, man, partner)) return w;
  }
  return kNone;
}

std::vector<Rotation> exposed_rotations_sequential(const StableInstance& inst,
                                                   const MarriageMatching& m) {
  const auto n = static_cast<std::size_t>(inst.size());
  std::vector<std::int32_t> next(n, kNone);
  for (std::int32_t man = 0; man < inst.size(); ++man) {
    const std::int32_t s = s_m(inst, m, man);
    if (s != kNone) next[static_cast<std::size_t>(man)] = m.husband_of[static_cast<std::size_t>(s)];
  }

  // Cycles of the functional graph restricted to men with s_M defined.
  std::vector<std::int8_t> state(n, 0);  // 0 unvisited, 1 on stack, 2 done
  std::vector<Rotation> rotations;
  for (std::int32_t start = 0; start < inst.size(); ++start) {
    if (state[static_cast<std::size_t>(start)] != 0) continue;
    std::vector<std::int32_t> stack;
    std::int32_t cur = start;
    while (cur != kNone && state[static_cast<std::size_t>(cur)] == 0) {
      state[static_cast<std::size_t>(cur)] = 1;
      stack.push_back(cur);
      cur = next[static_cast<std::size_t>(cur)];
    }
    if (cur != kNone && state[static_cast<std::size_t>(cur)] == 1) {
      // Found a new cycle: unwind from cur.
      Rotation rho;
      const auto begin = std::find(stack.begin(), stack.end(), cur);
      for (auto it = begin; it != stack.end(); ++it) {
        rho.pairs.emplace_back(*it, m.wife_of[static_cast<std::size_t>(*it)]);
      }
      rotations.push_back(rho.canonical());
    }
    for (const auto v : stack) state[static_cast<std::size_t>(v)] = 2;
  }
  return rotations;
}

MarriageMatching eliminate_rotation(const MarriageMatching& m, const Rotation& rho) {
  if (rho.pairs.size() < 2) throw std::invalid_argument("eliminate_rotation: needs k >= 2");
  MarriageMatching out = m;
  const std::size_t k = rho.pairs.size();
  for (std::size_t i = 0; i < k; ++i) {
    const auto [mi, wi] = rho.pairs[i];
    if (m.wife_of[static_cast<std::size_t>(mi)] != wi) {
      throw std::invalid_argument("eliminate_rotation: pair not matched in M");
    }
    const std::int32_t w_next = rho.pairs[(i + 1) % k].second;
    out.wife_of[static_cast<std::size_t>(mi)] = w_next;
    out.husband_of[static_cast<std::size_t>(w_next)] = mi;
  }
  return out;
}

std::vector<Rotation> all_rotations(const StableInstance& inst) {
  std::vector<Rotation> rotations;
  MarriageMatching m = man_optimal(inst);
  while (true) {
    const auto exposed = exposed_rotations_sequential(inst, m);
    if (exposed.empty()) break;
    // Eliminate one exposed rotation per step; each rotation of the
    // instance becomes exposed on every chain exactly once.
    rotations.push_back(exposed.front());
    m = eliminate_rotation(m, exposed.front());
  }
  std::sort(rotations.begin(), rotations.end(), [](const Rotation& a, const Rotation& b) {
    return a.pairs < b.pairs;
  });
  return rotations;
}

bool is_exposed_rotation(const StableInstance& inst, const MarriageMatching& m,
                         const Rotation& rho) {
  const std::size_t k = rho.pairs.size();
  if (k < 2) return false;
  for (std::size_t i = 0; i < k; ++i) {
    const auto [mi, wi] = rho.pairs[i];
    if (m.wife_of[static_cast<std::size_t>(mi)] != wi) return false;
    if (s_m(inst, m, mi) != rho.pairs[(i + 1) % k].second) return false;
  }
  return true;
}

}  // namespace ncpm::stable
