#pragma once
// The stable-matching lattice (Section VI preliminaries): dominance order,
// exhaustive enumeration, and lattice-walk helpers used to validate
// Algorithm 4 (Lemma 15: M \ ρ is *immediately* dominated by M).

#include <cstddef>
#include <vector>

#include "stable/instance.hpp"

namespace ncpm::stable {

/// M dominates M' (M ⪯ M'): every man weakly prefers M to M'.
bool dominates(const StableInstance& inst, const MarriageMatching& m, const MarriageMatching& m2);

/// Strict dominance: dominates and different.
bool strictly_dominates(const StableInstance& inst, const MarriageMatching& m,
                        const MarriageMatching& m2);

/// Every stable matching, enumerated by repeated rotation elimination from
/// the man-optimal matching (deduplicated). Exponential in general; `cap`
/// bounds the traversal (throws std::runtime_error when exceeded).
std::vector<MarriageMatching> all_stable_matchings(const StableInstance& inst,
                                                   std::size_t cap = 100000);

/// True iff m2 is an *immediate* successor of m in the lattice: m strictly
/// dominates m2 with no stable matching strictly in between. Uses `all`
/// (a precomputed all_stable_matchings result).
bool immediately_dominates(const StableInstance& inst, const MarriageMatching& m,
                           const MarriageMatching& m2,
                           const std::vector<MarriageMatching>& all);

}  // namespace ncpm::stable
