#pragma once
// Stable-marriage instances (Section VI-A).
//
// n men and n women, each with a complete, strictly-ordered preference list
// over the opposite side. The paper works with the preference matrices
// mp/wp and the ranking matrices mr/wr (mr[m][w] = position of w in m's
// list); both are stored flat and validated as permutations.

#include <cstdint>
#include <span>
#include <vector>

namespace ncpm::stable {

inline constexpr std::int32_t kNone = -1;

class StableInstance {
 public:
  /// men_prefs[m] / women_prefs[w] are permutations of 0..n-1, best first.
  static StableInstance from_lists(std::vector<std::vector<std::int32_t>> men_prefs,
                                   std::vector<std::vector<std::int32_t>> women_prefs);

  std::int32_t size() const noexcept { return n_; }

  /// The i-th ranked woman of man m (i = 0 is his favourite): mp[m][i].
  std::int32_t man_pref(std::int32_t m, std::int32_t i) const {
    return mp_[static_cast<std::size_t>(m) * static_cast<std::size_t>(n_) +
               static_cast<std::size_t>(i)];
  }
  std::int32_t woman_pref(std::int32_t w, std::int32_t i) const {
    return wp_[static_cast<std::size_t>(w) * static_cast<std::size_t>(n_) +
               static_cast<std::size_t>(i)];
  }
  std::span<const std::int32_t> man_prefs(std::int32_t m) const {
    return {mp_.data() + static_cast<std::size_t>(m) * static_cast<std::size_t>(n_),
            static_cast<std::size_t>(n_)};
  }
  std::span<const std::int32_t> woman_prefs(std::int32_t w) const {
    return {wp_.data() + static_cast<std::size_t>(w) * static_cast<std::size_t>(n_),
            static_cast<std::size_t>(n_)};
  }

  /// Ranking matrices: position (0-based) of w in m's list and vice versa.
  std::int32_t man_rank_of(std::int32_t m, std::int32_t w) const {
    return mr_[static_cast<std::size_t>(m) * static_cast<std::size_t>(n_) +
               static_cast<std::size_t>(w)];
  }
  std::int32_t woman_rank_of(std::int32_t w, std::int32_t m) const {
    return wr_[static_cast<std::size_t>(w) * static_cast<std::size_t>(n_) +
               static_cast<std::size_t>(m)];
  }

  bool man_prefers(std::int32_t m, std::int32_t w1, std::int32_t w2) const {
    return man_rank_of(m, w1) < man_rank_of(m, w2);
  }
  bool woman_prefers(std::int32_t w, std::int32_t m1, std::int32_t m2) const {
    return woman_rank_of(w, m1) < woman_rank_of(w, m2);
  }

 private:
  std::int32_t n_ = 0;
  std::vector<std::int32_t> mp_, wp_, mr_, wr_;
};

/// A perfect matching between men and women, both directions maintained.
struct MarriageMatching {
  std::vector<std::int32_t> wife_of;
  std::vector<std::int32_t> husband_of;

  static MarriageMatching from_wife_of(std::vector<std::int32_t> wife_of);
  bool operator==(const MarriageMatching& other) const { return wife_of == other.wife_of; }
};

}  // namespace ncpm::stable
