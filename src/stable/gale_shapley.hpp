#pragma once
// Gale–Shapley deferred acceptance.
//
// The stable-marriage problem is CC-complete (Mayr & Subramanian), so no NC
// algorithm is expected for finding a *first* stable matching; the paper's
// Algorithm 4 instead enumerates the "next" ones in NC. Gale–Shapley is the
// sequential substrate producing the man-optimal matching M0 (and, with the
// roles swapped, the woman-optimal Mz) that seeds those enumerations.

#include "stable/instance.hpp"

namespace ncpm::stable {

/// Man-proposing deferred acceptance: the man-optimal stable matching M0.
MarriageMatching man_optimal(const StableInstance& inst);

/// Woman-proposing: the woman-optimal stable matching Mz.
MarriageMatching woman_optimal(const StableInstance& inst);

}  // namespace ncpm::stable
