#include "stable/stability.hpp"

#include "pram/executor.hpp"

namespace ncpm::stable {

namespace {

bool is_blocking(const StableInstance& inst, const MarriageMatching& m, std::int32_t man,
                 std::int32_t woman) {
  if (m.wife_of[static_cast<std::size_t>(man)] == woman) return false;
  return inst.man_prefers(man, woman, m.wife_of[static_cast<std::size_t>(man)]) &&
         inst.woman_prefers(woman, man, m.husband_of[static_cast<std::size_t>(woman)]);
}

}  // namespace

bool is_stable(const StableInstance& inst, const MarriageMatching& m,
               pram::NcCounters* counters, pram::Executor& ex) {
  const auto n = static_cast<std::size_t>(inst.size());
  const bool blocked = ex.parallel_any(n * n, [&](std::size_t i) {
    const auto man = static_cast<std::int32_t>(i / n);
    const auto woman = static_cast<std::int32_t>(i % n);
    return is_blocking(inst, m, man, woman);
  });
  pram::add_round(counters, n * n);
  return !blocked;
}

std::vector<std::pair<std::int32_t, std::int32_t>> blocking_pairs(const StableInstance& inst,
                                                                  const MarriageMatching& m) {
  std::vector<std::pair<std::int32_t, std::int32_t>> pairs;
  for (std::int32_t man = 0; man < inst.size(); ++man) {
    for (std::int32_t woman = 0; woman < inst.size(); ++woman) {
      if (is_blocking(inst, m, man, woman)) pairs.emplace_back(man, woman);
    }
  }
  return pairs;
}

}  // namespace ncpm::stable
