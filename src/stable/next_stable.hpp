#pragma once
// Algorithm 4: the NC "next" stable matching algorithm (Theorem 16).
//
// Given a stable matching M:
//   1. build the *reduced lists*: delete every pair (m', w) where w prefers
//      her partner p_M(w) to m', in one parallel marking round, and compress
//      each man's list with the parallel-prefix-sum technique. In the
//      reduced lists p_M(m) is the first entry of m's list and s_M(m) the
//      second (if any);
//   2. build the switching graph H_M — a vertex for each man with s_M(m)
//      defined, and the edge m -> next_M(m) = p_M(s_M(m)). The paper's
//      Lemma 17 calls H_M a functional graph; on the Mz-free vertex set the
//      implementation uses, it is in general a directed pseudoforest with
//      sinks (see the reproduction note in next_stable.cpp) — its simple
//      cycles are still exactly the rotations exposed in M;
//   3. find all cycles with the NC pseudoforest toolkit (Section IV-A) and
//      eliminate each rotation in one parallel step, yielding every
//      immediately-dominated stable matching M \ ρ (Lemma 15).
// If H_M is empty, M is the woman-optimal matching.

#include <vector>

#include "pram/counters.hpp"
#include "pram/executor.hpp"
#include "stable/instance.hpp"
#include "stable/rotations.hpp"

namespace ncpm::stable {

struct NextStableResult {
  /// True iff no rotation is exposed: M = Mz.
  bool is_woman_optimal = false;
  /// The rotations exposed in M (cycles of H_M), canonicalised.
  std::vector<Rotation> rotations;
  /// M \ ρ for each rotation, same order.
  std::vector<MarriageMatching> successors;
};

/// M must be stable (throws std::invalid_argument otherwise — detected when
/// some reduced list does not start with p_M(m)). Rounds run on `ex`.
NextStableResult next_stable_matchings(const StableInstance& inst, const MarriageMatching& m,
                                       pram::NcCounters* counters = nullptr,
                                       pram::Executor& ex = pram::default_executor());

}  // namespace ncpm::stable
