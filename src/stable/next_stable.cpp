#include "stable/next_stable.hpp"

#include <stdexcept>

#include "graph/pseudoforest.hpp"
#include "pram/scan.hpp"

namespace ncpm::stable {

NextStableResult next_stable_matchings(const StableInstance& inst, const MarriageMatching& m,
                                       pram::NcCounters* counters, pram::Executor& ex) {
  const auto n = static_cast<std::size_t>(inst.size());
  NextStableResult result;
  if (n == 0) {
    result.is_woman_optimal = true;
    return result;
  }

  // 1. Soft-delete, in parallel over all n^2 entries of mp: keep (m', w) iff
  // w weakly prefers m' to her partner.
  std::vector<std::int64_t> keep(n * n);
  ex.parallel_for(n * n, [&](std::size_t i) {
    const auto man = static_cast<std::int32_t>(i / n);
    const auto slot = static_cast<std::int32_t>(i % n);
    const std::int32_t w = inst.man_pref(man, slot);
    const std::int32_t partner = m.husband_of[static_cast<std::size_t>(w)];
    keep[i] =
        (inst.woman_rank_of(w, man) <= inst.woman_rank_of(w, partner)) ? 1 : 0;
  });
  pram::add_round(counters, n * n);

  // Compress with one global prefix sum: an entry's position inside its
  // man's reduced list is its global scan value minus the row-start value.
  std::vector<std::int64_t> pos(n * n);
  pram::exclusive_scan<std::int64_t>(keep, pos, counters, ex);
  std::vector<std::int32_t> reduced(n * n, kNone);
  std::vector<std::int64_t> reduced_len(n);
  ex.parallel_for(n * n, [&](std::size_t i) {
    if (keep[i] == 0) return;
    const std::size_t man = i / n;
    const auto within = static_cast<std::size_t>(pos[i] - pos[man * n]);
    reduced[man * n + within] = inst.man_pref(static_cast<std::int32_t>(man),
                                              static_cast<std::int32_t>(i % n));
  });
  pram::add_round(counters, n * n);
  ex.parallel_for(n, [&](std::size_t man) {
    const std::size_t row_end_exclusive = (man + 1) * n - 1;
    reduced_len[man] = pos[row_end_exclusive] - pos[man * n] + keep[row_end_exclusive];
  });
  pram::add_round(counters, n);

  // Sanity: for a stable M the first reduced entry of every man is p_M(m)
  // (anything above his partner that kept him would be a blocking pair).
  const bool unstable = ex.parallel_any(n, [&](std::size_t man) {
    return reduced_len[man] < 1 || reduced[man * n] != m.wife_of[man];
  });
  if (unstable) {
    throw std::invalid_argument("next_stable_matchings: matching is not stable");
  }

  // 2. H_M: s_M(m) is the second reduced entry; next(m) = p_M(s_M(m)).
  graph::DirectedPseudoforest hm;
  hm.next.assign(n, pram::kNone);
  ex.parallel_for(n, [&](std::size_t man) {
    if (reduced_len[man] >= 2) {
      const std::int32_t s = reduced[man * n + 1];
      hm.next[man] = m.husband_of[static_cast<std::size_t>(s)];
    }
  });
  pram::add_round(counters, n);

  // Reproduction note: Lemma 17 of the paper states that every vertex of
  // H_M has out-degree exactly one, i.e. that {m : s_M(m) exists} is closed
  // under next_M. Its proof implicitly restricts the vertex set to D, the
  // men whose partners differ between M and Mz — which the algorithm cannot
  // compute without Mz. On the Mz-free vertex set used here (all men with
  // s_M defined) the closure claim fails: at the woman-optimal matching
  // itself, s_M(m) can exist while next_M(m) has no s_M (verified by the
  // property tests). H_M is therefore a directed *pseudoforest* with sinks,
  // not a functional graph — which changes nothing downstream, because its
  // cycles are still exactly the rotations exposed in M (every cycle
  // satisfies Definition 7 verbatim, and every exposed rotation closes a
  // cycle), and the Section IV-A toolkit handles sinks natively.

  // 3. The cycles of H_M are the exposed rotations.
  const auto analysis =
      graph::analyze_cycles(hm, graph::CycleMethod::PointerDoubling, counters, ex);
  for (const auto& cycle : analysis.cycles) {
    if (cycle.size() < 2) {
      throw std::logic_error("next_stable_matchings: H_M contains a self-loop");
    }
    Rotation rho;
    rho.pairs.reserve(cycle.size());
    for (const auto man : cycle) {
      rho.pairs.emplace_back(man, m.wife_of[static_cast<std::size_t>(man)]);
    }
    result.rotations.push_back(rho.canonical());
  }

  // Eliminations are vertex-disjoint; each is one parallel step.
  result.successors.reserve(result.rotations.size());
  for (const auto& rho : result.rotations) {
    result.successors.push_back(eliminate_rotation(m, rho));
    pram::add_round(counters, rho.pairs.size());
  }

  result.is_woman_optimal = result.rotations.empty();
  return result;
}

}  // namespace ncpm::stable
