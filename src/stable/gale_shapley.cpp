#include "stable/gale_shapley.hpp"

#include <deque>

namespace ncpm::stable {

namespace {

/// Proposer-optimal deferred acceptance over accessor lambdas so one
/// implementation serves both orientations.
template <typename PrefOf, typename RankOf>
std::vector<std::int32_t> propose(std::int32_t n, PrefOf&& pref_of, RankOf&& rank_of) {
  std::vector<std::int32_t> next_proposal(static_cast<std::size_t>(n), 0);
  std::vector<std::int32_t> engaged_to(static_cast<std::size_t>(n), kNone);  // per receiver
  std::deque<std::int32_t> free;
  for (std::int32_t p = 0; p < n; ++p) free.push_back(p);
  while (!free.empty()) {
    const std::int32_t p = free.front();
    free.pop_front();
    const std::int32_t r = pref_of(p, next_proposal[static_cast<std::size_t>(p)]++);
    const std::int32_t incumbent = engaged_to[static_cast<std::size_t>(r)];
    if (incumbent == kNone) {
      engaged_to[static_cast<std::size_t>(r)] = p;
    } else if (rank_of(r, p) < rank_of(r, incumbent)) {
      engaged_to[static_cast<std::size_t>(r)] = p;
      free.push_back(incumbent);
    } else {
      free.push_back(p);
    }
  }
  return engaged_to;
}

}  // namespace

MarriageMatching man_optimal(const StableInstance& inst) {
  const auto husband_of = propose(
      inst.size(), [&](std::int32_t m, std::int32_t i) { return inst.man_pref(m, i); },
      [&](std::int32_t w, std::int32_t m) { return inst.woman_rank_of(w, m); });
  std::vector<std::int32_t> wife_of(husband_of.size(), kNone);
  for (std::size_t w = 0; w < husband_of.size(); ++w) {
    wife_of[static_cast<std::size_t>(husband_of[w])] = static_cast<std::int32_t>(w);
  }
  return MarriageMatching::from_wife_of(std::move(wife_of));
}

MarriageMatching woman_optimal(const StableInstance& inst) {
  const auto wife_of_by_w = propose(
      inst.size(), [&](std::int32_t w, std::int32_t i) { return inst.woman_pref(w, i); },
      [&](std::int32_t m, std::int32_t w) { return inst.man_rank_of(m, w); });
  // wife_of_by_w[m] = the woman engaged to man m after women propose.
  std::vector<std::int32_t> wife_of(wife_of_by_w.size(), kNone);
  for (std::size_t m = 0; m < wife_of_by_w.size(); ++m) wife_of[m] = wife_of_by_w[m];
  return MarriageMatching::from_wife_of(std::move(wife_of));
}

}  // namespace ncpm::stable
