#pragma once
// ncpm-rpc v1 TCP server over an engine::Engine, with two interchangeable
// connection cores behind one facade:
//
//  - kEpoll (default): a small pool of epoll event loops drives nonblocking
//    sockets; each connection is an explicit session FSM
//    (net/session_fsm.hpp) with a timer wheel for send-stall and idle
//    timeouts. Per-connection cost is one fd plus a few KB of buffers, so
//    one process holds tens of thousands of connections (the C10K soak
//    test pins 1024 with flat memory).
//  - kThreads: the PR 5 core — one reader + one writer thread per
//    connection, blocking sockets. Two threads per client caps it at
//    hundreds of connections; kept as the semantics reference and fallback.
//
// Both cores speak the identical wire contract and identical semantics,
// pinned by the parameterized suite in tests/net/server_loopback_test.cpp:
// responses go back out of order as solves resolve; backpressure is
// slot-accounted per connection (every admitted frame holds a slot until
// its response is *sent*); a malformed payload inside a well-delimited
// frame costs one error response while bytes that break the framing kill
// only that connection; a client that stops reading trips the send timeout
// instead of hoarding memory or pinning shutdown; and stop() drains every
// dispatched request before the sockets close and the engine shuts down.

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>

#include "engine/engine.hpp"

namespace ncpm::obs {
class Registry;
class Log;
class TraceRing;
}  // namespace ncpm::obs

namespace ncpm::net {

class MetricsHttpServer;

namespace detail {
struct ServerObs;
class ServerCoreImpl;
}  // namespace detail

/// Which connection core serves the sockets. Same protocol, same
/// semantics; they differ only in how many clients one process can hold.
enum class ServerCoreKind : std::uint8_t {
  kThreads = 0,  ///< reader+writer thread pair per connection (PR 5)
  kEpoll,        ///< epoll event-loop pool + session FSMs (default)
};

std::string_view server_core_name(ServerCoreKind core);
std::optional<ServerCoreKind> parse_server_core(std::string_view name);

struct ServerConfig {
  std::string bind_address = "127.0.0.1";
  std::uint16_t port = 0;  ///< 0 = ephemeral; Server::port() reports the bound port
  int backlog = 64;
  ServerCoreKind core = ServerCoreKind::kEpoll;
  /// Epoll core only: event loops sharing the connections (round-robin).
  /// 0 = auto (min(4, hardware threads)). The threads core ignores this.
  std::size_t num_event_loops = 0;
  /// Reader-side backpressure bound: admitted frames whose response has not
  /// yet been *sent* (engine work and protocol errors alike). At the bound
  /// the connection stops consuming frames, so neither the engine queue nor
  /// the write queue can grow without limit on one connection.
  std::size_t max_in_flight_per_connection = 64;
  /// Cap on how long one connection's responses may sit unsent against a
  /// client that stopped reading; expiry marks the connection broken and
  /// discards its queue. This also bounds how long such a client can stall
  /// stop()'s drain. Zero = block indefinitely (drain then waits on the
  /// slowest client).
  std::chrono::milliseconds send_timeout{30000};
  /// Epoll core only: reap connections that stay fully quiescent (no
  /// partial frame, nothing in flight, nothing to write) this long.
  /// Zero = never (the threads-core behavior).
  std::chrono::milliseconds idle_timeout{0};
  /// Handshake liveness bound, both cores: a connection that has not
  /// completed its 12-byte client hello this long after accept is closed
  /// (counted in ServerStats::hello_timeouts). Without it a connect()-and-
  /// say-nothing client pins a reader thread (threads core) or an fd (epoll
  /// core) forever. Zero = wait indefinitely.
  std::chrono::milliseconds hello_timeout{10000};
  /// Global admission cap: when the engine's unfulfilled requests (queued +
  /// mid-solve) reach this bound, further requests are shed with
  /// RpcStatus::kOverloaded *before* touching the engine — the server is
  /// live and the client should back off and retry (kRejected, in
  /// contrast, means the server is going away). Zero = no cap.
  std::size_t max_in_flight_global = 0;
  /// Queue-depth watermark, same shedding path: requests are shed while
  /// the engine queue alone (work not yet on a worker) is at or beyond
  /// this depth, bounding worst-case queue latency under overload even
  /// when max_in_flight_global still has headroom. Zero = no watermark.
  std::size_t overload_queue_watermark = 0;
  /// Optional HTTP/1.0 `GET /metrics` Prometheus-text endpoint on its own
  /// port (same bind address). nullopt = off; 0 = ephemeral, read the
  /// outcome back with Server::metrics_port().
  std::optional<std::uint16_t> metrics_port;
  /// Per-request trace sampling: every Nth request across the server gets a
  /// TraceSpan in the ring (retrievable via the stats frame). 0 = off.
  std::uint64_t trace_sample_n = 0;
  /// Trace ring capacity (spans retained; older ones are overwritten).
  std::size_t trace_ring_capacity = 256;
  /// Structured JSON-lines logging of connection lifecycle, sheds,
  /// malformed frames and drain events (obs::Log). Off by default — the
  /// serving path emits nothing.
  bool log_json = false;
  /// Log destination when log_json is on; null writes lines to stderr.
  /// Called under the log's mutex — keep it cheap (tests capture lines).
  std::function<void(std::string_view)> log_sink;
  /// Slow-request capture: any served request whose solve time reaches this
  /// bound emits one JSON line (mode, instance digest, payload size, queue
  /// and solve ns, per-phase breakdown) on the slow-request log —
  /// independent of log_json, so production can keep lifecycle logging off
  /// while still capturing outliers. Zero = off.
  std::uint64_t slow_request_ns = 0;
  /// Slow-request line destination; null writes lines to stderr. Called
  /// under the slow log's mutex — keep it cheap (tests capture lines).
  std::function<void(std::string_view)> slow_log_sink;
  engine::EngineConfig engine{};
};

struct ServerStats {
  std::uint64_t connections_accepted = 0;
  std::uint64_t connections_active = 0;
  std::uint64_t frames_received = 0;
  std::uint64_t responses_sent = 0;
  std::uint64_t malformed_frames = 0;   ///< error responses that never reached the engine
  std::uint64_t overloaded_shed = 0;    ///< requests shed kOverloaded by admission control
  std::uint64_t deadline_shed = 0;      ///< requests already expired before dispatch
  std::uint64_t pings_answered = 0;     ///< keepalive pings answered (no engine, no slot)
  std::uint64_t hello_timeouts = 0;     ///< connections reaped before completing their hello
  std::uint64_t stats_frames_answered = 0;  ///< stats probes answered (no engine, no slot)
  std::uint64_t slow_requests = 0;          ///< solves at/over slow_request_ns, logged
};

class Server {
 public:
  explicit Server(ServerConfig config = {});
  /// stop()s if still running.
  ~Server();
  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Bind + listen + spawn the configured core. Throws
  /// NetError(kConnectFailed) when the address cannot be bound. A Server is
  /// single-use: calling start() again after stop() throws (the engine is
  /// already drained).
  void start();
  /// Bound port, valid after start() (resolves config port 0).
  std::uint16_t port() const noexcept;
  /// Bound /metrics port, valid after start(); 0 when the endpoint is off.
  std::uint16_t metrics_port() const noexcept;
  bool running() const noexcept { return running_.load(std::memory_order_acquire); }

  /// Graceful drain, idempotent: stop accepting, stop reading on every
  /// connection, let each dispatched request finish and flush its
  /// response, close the sockets, drain the engine, join every thread.
  void stop();

  ServerStats stats() const;
  engine::EngineStats engine_stats() const { return engine_.stats(); }
  /// The underlying engine (tests compare rpc results against direct
  /// submits on an identically configured engine, not this one).
  engine::Engine& engine() noexcept { return engine_; }
  /// The metrics registry every server and engine series lives in (what
  /// /metrics and the stats frame expose; in-process callers snapshot it
  /// directly).
  obs::Registry& registry() noexcept;

 private:
  ServerConfig config_;
  // Observability state outlives the engine (declared first): the engine's
  // callback gauges deregister in its destructor, which must still find the
  // registry alive.
  std::unique_ptr<obs::Registry> registry_;
  std::unique_ptr<obs::Log> log_;
  std::unique_ptr<obs::Log> slow_log_;  ///< slow-request capture; always enabled
  std::unique_ptr<obs::TraceRing> traces_;
  engine::Engine engine_;
  std::unique_ptr<detail::ServerObs> obs_;
  std::unique_ptr<detail::ServerCoreImpl> core_;
  std::unique_ptr<MetricsHttpServer> metrics_;
  std::atomic<bool> running_{false};
  std::atomic<bool> stopping_{false};
  std::mutex stop_mu_;  ///< serialises concurrent stop() calls
};

}  // namespace ncpm::net
