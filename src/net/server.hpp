#pragma once
// Multi-threaded ncpm-rpc v1 TCP server over an engine::Engine.
//
// One accept thread hands each connection a reader thread and a writer
// thread. The reader parses frames and dispatches every request into the
// shared engine via the callback submit; the callback encodes the response
// frame and hands it to the connection's writer queue, so responses go
// back **out of order**, each as its solve resolves, while the writer
// thread serialises the actual socket writes. Backpressure is per
// connection: every admitted frame holds a slot until its response is
// *sent*; at max_in_flight_per_connection held slots the reader stops
// pulling frames off the socket and TCP pushes back on the client.
//
// Failure containment follows the framing: a well-delimited frame whose
// payload is garbage costs one error response; bytes that break the
// framing itself (bad hello, oversized length, truncated frame) kill only
// that connection. stop() is a drain: the listener goes down first, then
// each connection's read side, then every dispatched request finishes and
// its response is flushed before the sockets close and the engine drains.

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "engine/engine.hpp"
#include "net/frame.hpp"
#include "net/socket.hpp"

namespace ncpm::net {

struct ServerConfig {
  std::string bind_address = "127.0.0.1";
  std::uint16_t port = 0;  ///< 0 = ephemeral; Server::port() reports the bound port
  int backlog = 64;
  /// Reader-side backpressure bound: admitted frames whose response has not
  /// yet been *sent* (engine work and protocol errors alike). At the bound
  /// the reader stops pulling frames off the socket, so neither the engine
  /// queue nor the write queue can grow without limit on one connection.
  std::size_t max_in_flight_per_connection = 64;
  /// Cap on how long one response write may block on a client that stopped
  /// reading; expiry marks the connection broken and discards its queue.
  /// This also bounds how long such a client can stall stop()'s drain.
  /// Zero = block indefinitely (drain then waits on the slowest client).
  std::chrono::milliseconds send_timeout{30000};
  engine::EngineConfig engine{};
};

struct ServerStats {
  std::uint64_t connections_accepted = 0;
  std::uint64_t connections_active = 0;
  std::uint64_t frames_received = 0;
  std::uint64_t responses_sent = 0;
  std::uint64_t malformed_frames = 0;  ///< error responses that never reached the engine
};

class Server {
 public:
  explicit Server(ServerConfig config = {});
  /// stop()s if still running.
  ~Server();
  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Bind + listen + spawn the accept loop. Throws NetError(kConnectFailed)
  /// when the address cannot be bound. A Server is single-use: calling
  /// start() again after stop() throws (the engine is already drained).
  void start();
  /// Bound port, valid after start() (resolves config port 0).
  std::uint16_t port() const noexcept { return port_; }
  bool running() const noexcept { return running_.load(std::memory_order_acquire); }

  /// Graceful drain, idempotent: stop accepting, unwind every reader, let
  /// each dispatched request finish and flush its response, close the
  /// sockets, drain the engine, join every thread.
  void stop();

  ServerStats stats() const;
  engine::EngineStats engine_stats() const { return engine_.stats(); }
  /// The underlying engine (tests compare rpc results against direct
  /// submits on an identically configured engine, not this one).
  engine::Engine& engine() noexcept { return engine_; }

 private:
  struct Connection;

  void accept_loop();
  void reader_loop(std::shared_ptr<Connection> conn);
  void writer_loop(std::shared_ptr<Connection> conn);
  void handle_frame(const std::shared_ptr<Connection>& conn,
                    const std::vector<std::uint8_t>& body,
                    std::chrono::steady_clock::time_point receipt);
  void enqueue_frame(const std::shared_ptr<Connection>& conn, std::string frame);
  void reap_finished_locked();

  ServerConfig config_;
  engine::Engine engine_;
  Socket listener_;
  std::uint16_t port_ = 0;
  std::thread accept_thread_;
  std::atomic<bool> running_{false};
  std::atomic<bool> stopping_{false};
  std::mutex stop_mu_;  ///< serialises concurrent stop() calls

  mutable std::mutex conn_mu_;
  std::vector<std::shared_ptr<Connection>> connections_;

  std::atomic<std::uint64_t> connections_accepted_{0};
  std::atomic<std::uint64_t> connections_active_{0};
  std::atomic<std::uint64_t> frames_received_{0};
  std::atomic<std::uint64_t> responses_sent_{0};
  std::atomic<std::uint64_t> malformed_frames_{0};
};

}  // namespace ncpm::net
