#pragma once
// Blocking ncpm-rpc v1 client.
//
// One Client owns one connection and is single-threaded by design (open
// one Client per thread; the server multiplexes). `call` is the simple
// request/response path; `call_batch` pipelines: it keeps a bounded window
// of requests in flight and matches responses back to their slots by
// request id, so a batch completes in server-solve order without ever
// deadlocking against the server's own per-connection backpressure (the
// client window must stay at or below the server bound, and the default —
// 16 against the server's 64 — does).
//
// Transport-level failures throw NetError with a typed code
// (connect-failed / timeout / closed / protocol); per-request failures
// come back as RpcStatus values inside the ResponseFrame, exactly as the
// server sent them.

#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

#include "core/instance.hpp"
#include "engine/engine.hpp"
#include "net/frame.hpp"
#include "net/socket.hpp"
#include "net/stats_frame.hpp"

namespace ncpm::net {

struct ClientConfig {
  std::chrono::milliseconds connect_timeout{5000};
  /// Applied to every response wait. Finite by default so a server that
  /// stalls mid-response surfaces as NetError(kTimeout) instead of hanging
  /// the caller forever; zero is the explicit escape hatch meaning block
  /// indefinitely (batch jobs that tolerate arbitrarily slow solves).
  std::chrono::milliseconds recv_timeout{30000};
  /// Max requests in flight during call_batch. Keep <= the server's
  /// max_in_flight_per_connection or a large batch can deadlock on TCP
  /// buffers (both sides blocked in send).
  std::size_t pipeline_window = 16;
};

/// One call of a pipelined batch.
struct RpcCall {
  engine::Mode mode = engine::Mode::kSolve;
  core::Instance instance;
  std::uint64_t deadline_ns = 0;  ///< relative budget; 0 = none
};

class Client {
 public:
  /// Connect and exchange hellos. Throws NetError on refusal, timeout, or
  /// a peer that does not speak ncpm-rpc v1.
  static Client connect(const std::string& host, std::uint16_t port, ClientConfig config = {});

  Client(Client&&) = default;
  Client& operator=(Client&&) = default;

  /// One request, one response.
  ResponseFrame call(engine::Mode mode, const core::Instance& inst,
                     std::uint64_t deadline_ns = 0);

  /// Pipelined batch; results come back in input order regardless of the
  /// order the server solved them (matched by request id).
  std::vector<ResponseFrame> call_batch(const std::vector<RpcCall>& calls);

  /// Wire-level liveness probe: send a keepalive ping and block for the
  /// echoed pong (the server answers at the protocol layer, so this works
  /// even when every engine worker is busy). Call only between requests —
  /// a ping with responses outstanding would desynchronise the stream.
  /// Throws NetError on a dead connection or a mismatched echo.
  void ping();

  /// Fetch the server's metrics snapshot (frame types 5/6). Like ping(),
  /// answered at the protocol layer — it works even when every engine
  /// worker is busy and never consumes a backpressure slot — and must only
  /// be called between requests. `include_traces` asks for the sampled
  /// trace spans as well (off by default; spans cost wire bytes). Throws
  /// NetError on a dead connection, a mismatched token, or a snapshot
  /// version this client does not speak.
  StatsReply stats(bool include_traces = false);

  void close() noexcept { sock_.close(); }
  Socket& socket() noexcept { return sock_; }

 private:
  Client(Socket sock, ClientConfig config) : sock_(std::move(sock)), config_(config) {}

  ResponseFrame read_response();

  Socket sock_;
  ClientConfig config_;
  std::uint64_t next_id_ = 1;
  std::vector<std::uint8_t> body_;  ///< reused frame buffer
};

}  // namespace ncpm::net
