#pragma once
// ncpm-rpc v1 stats frames (types 5/6) — the wire form of an obs snapshot.
//
// A stats request is a fixed 10-byte body, recognised inline by both server
// cores exactly like ping (before the request decoder, never consuming a
// backpressure slot):
//
//   stats request  : u8 type = 5, u64 token, u8 flags
//                    (flags bit 0 = include sampled trace spans)
//   stats response : u8 type = 6, u64 token echoed, u32 snapshot_version,
//                    u64 uptime_ns, then counter / gauge / histogram /
//                    span sections (byte-level rows in docs/ncpm-rpc-v1.md)
//
// Strings are u16 length + bytes; histogram buckets ship sparse, as
// (u8 bucket_index, u64 count) pairs for the non-empty buckets only. The
// decoded form is a regular obs::Snapshot, so the CLI renders a remote
// snapshot with the same render_prometheus / render_json used in-process.

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "obs/registry.hpp"
#include "obs/trace.hpp"

namespace ncpm::net {

/// type + token + flags — a complete stats-request body.
inline constexpr std::size_t kStatsRequestBodySize = 1 + 8 + 1;
/// Bit 0 of the request flags: echo the trace ring's sampled spans.
inline constexpr std::uint8_t kStatsFlagTraces = 0x01;
/// Version tag leading every stats response payload. v2 extends each span
/// row with instance digest, payload size, and a sparse per-phase solver
/// breakdown; the decoder still accepts v1 rows from older servers.
inline constexpr std::uint32_t kStatsSnapshotVersion = 2;

struct StatsRequest {
  std::uint64_t token = 0;
  std::uint8_t flags = 0;
};

/// One decoded stats response.
struct StatsReply {
  std::uint64_t token = 0;
  std::uint32_t version = 0;
  obs::Snapshot snapshot;
  std::vector<obs::TraceSpan> spans;
};

/// Complete wire bytes (length prefix included) of a stats request.
std::string encode_stats_request_frame(std::uint64_t token, std::uint8_t flags);

/// The request when `body` is exactly a stats-request body; nullopt for
/// anything else (servers use this to recognise stats probes without
/// touching the request decoder; it never throws).
std::optional<StatsRequest> parse_stats_request_body(const std::uint8_t* body,
                                                     std::size_t size) noexcept;

/// Complete wire bytes (length prefix included) of a stats response.
std::string encode_stats_response_frame(std::uint64_t token, const obs::Snapshot& snap,
                                        const std::vector<obs::TraceSpan>& spans);

/// Decodes one stats-response body (length prefix stripped). Throws
/// NetError(kProtocol) on a type/size/version mismatch or truncation.
StatsReply decode_stats_response_body(const std::uint8_t* body, std::size_t size);

}  // namespace ncpm::net
