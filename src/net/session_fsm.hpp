#pragma once
// Pure per-connection session state machine for the ncpm-rpc v1 server.
//
// One SessionFsm is the entire protocol brain of one connection: events in
// (bytes from the socket, completed responses, write progress, timer and
// lifecycle signals), actions out (request bodies to dispatch, interest
// changes, timer arm/disarm, close). It performs **no I/O** — no sockets,
// no threads, no clocks — so it links on its own, runs thousands of fuzz
// cases per second under ASan, and its transition table is testable
// exhaustively (tests/net/session_fsm_test.cpp mirrors the table in
// docs/ncpm-rpc-v1.md, "Server session lifecycle").
//
// States (the reactor's epoll interest is derived from them):
//
//   kAwaitHello   accumulating the 12-byte client hello
//   kReadHeader   accumulating the u32 frame length prefix
//   kReadBody     accumulating a request frame body
//   kDispatched   at the in-flight bound: reads pause until a response is
//                 fully written and frees a slot (per-connection backpressure)
//   kWriteBacklog the peer stopped draining responses: a write hit
//                 would-block; reads pause until the backlog moves again
//   kClosing      draining: no further reads; every admitted request's
//                 response is flushed, then the connection closes
//   kClosed       terminal; every further event is rejected
//
// The PR 5 semantics carry over exactly: every dispatched body holds one
// in-flight slot until its response frame is *fully written* (engine work
// and protocol-error responses alike); a malformed payload inside a
// well-delimited frame costs one error response (the server dispatches it
// and answers — the FSM neither knows nor cares what the bytes mean);
// breaking the framing itself (bad hello, oversized length, EOF mid-frame)
// kills only this connection, after flushing what was already admitted.

#include <cstddef>
#include <cstdint>
#include <deque>
#include <string>
#include <string_view>
#include <vector>

namespace ncpm::net {

enum class SessionState : std::uint8_t {
  kAwaitHello = 0,
  kReadHeader,
  kReadBody,
  kDispatched,
  kWriteBacklog,
  kClosing,
  kClosed,
};
inline constexpr std::size_t kNumSessionStates = 7;

/// Everything that can happen to a session, socket- and timer-free. The
/// byte/frame/progress events carry payloads and enter through their own
/// typed methods; the rest go through on_event().
enum class SessionEvent : std::uint8_t {
  kBytesIn = 0,    ///< bytes arrived from the peer          -> on_bytes()
  kResponseReady,  ///< an encoded response frame is ready   -> on_response()
  kWroteBytes,     ///< n backlog bytes reached the kernel   -> on_wrote()
  kWriteBlocked,   ///< a write attempt returned would-block -> on_event()
  kReadEof,        ///< peer closed its write side           -> on_event()
  kPeerError,      ///< socket error (reset, hard failure)   -> on_event()
  kSendTimeout,    ///< backlog stalled past the send bound  -> on_event()
  kIdleTimeout,    ///< idle reaper fired                    -> on_event()
  kDrain,          ///< server stop(): drain then close      -> on_event()
  kPingFrame,      ///< a complete keepalive ping arrived    -> on_ping()
  kHelloTimeout,   ///< hello never completed in time        -> on_event()
  kStatsFrame,     ///< a complete stats request arrived     -> on_stats()
};
inline constexpr std::size_t kNumSessionEvents = 12;

enum class SessionCloseReason : std::uint8_t {
  kNone = 0,
  kCleanEof,        ///< peer closed at a frame boundary with nothing pending
  kProtocolError,   ///< framing broke: bad hello, oversized length, EOF mid-frame
  kPeerError,       ///< socket-level failure
  kSendTimeout,     ///< peer stopped reading past the send bound
  kIdleTimeout,     ///< idle reaper closed a quiescent connection
  kDrained,         ///< server-initiated drain completed
  kHelloTimeout,    ///< connection never completed its hello within the bound
};

std::string_view session_state_name(SessionState state);
std::string_view session_event_name(SessionEvent event);
std::string_view session_close_reason_name(SessionCloseReason reason);

/// One stats request (frame type 5) recognised in the input stream. The
/// driver answers it with an encoded stats-response frame via
/// SessionFsm::on_protocol_reply — socket- and registry-free here.
struct SessionStatsRequest {
  std::uint64_t token = 0;
  std::uint8_t flags = 0;
};

struct SessionFsmConfig {
  /// Dispatched bodies whose response frame is not yet fully written. At
  /// the bound the FSM stops consuming input (state kDispatched).
  std::size_t max_in_flight = 64;
  /// Frame length prefix above this is a framing error (mirrors
  /// net::kMaxFrameBody; duplicated so this unit stays socket-free).
  std::uint32_t max_frame_body = std::uint32_t{1} << 31;
};

/// What one event application asks the reactor to do. Flags are only ever
/// set, so a caller can batch several applications into one struct.
struct SessionActions {
  /// The event is invalid in the current state (write-after-close, wrote
  /// with an empty backlog, ...). State is untouched; nothing else is set.
  bool rejected = false;
  /// Hello handshake completed; the server hello is now first in the
  /// write backlog.
  bool hello_ok = false;
  /// Framing broke; `close` (or state kClosing, when admitted responses
  /// still need flushing) follows in this same action set.
  bool protocol_error = false;
  /// Complete request frame bodies, in arrival order. Each holds one
  /// in-flight slot until its response is fully written.
  std::vector<std::vector<std::uint8_t>> dispatch;
  /// Response frames whose last byte was written by this event (slot
  /// releases; the server hello does not count).
  std::size_t responses_completed = 0;
  /// Tear the connection down now; `reason` says why. Set exactly once
  /// over a session's lifetime (kClosed is terminal).
  bool close = false;
  SessionCloseReason close_reason = SessionCloseReason::kNone;
  /// (Re)start the send-stall timer: the backlog just became non-empty, or
  /// made progress while still non-empty.
  bool arm_send_timer = false;
  /// Stop the send-stall timer: the backlog fully drained.
  bool disarm_send_timer = false;
  /// Keepalive pings answered by this event: each queued one pong frame in
  /// the backlog. Pongs are protocol-level — no in-flight slot, and they do
  /// not count as responses when written.
  std::size_t pings_answered = 0;
  /// Stats requests recognised by this event, in arrival order. The FSM
  /// cannot build the snapshot itself (it owns no registry); the driver
  /// answers each via on_protocol_reply(). Like pings: no in-flight slot.
  std::vector<SessionStatsRequest> stats_requests;
  /// Human-readable detail for protocol_error / close.
  std::string error;
};

class SessionFsm {
 public:
  explicit SessionFsm(SessionFsmConfig config = {});

  SessionState state() const noexcept;
  SessionCloseReason close_reason() const noexcept { return close_reason_; }
  std::size_t in_flight() const noexcept { return in_flight_; }
  /// Unwritten backlog bytes (hello + queued response frames).
  std::size_t backlog_bytes() const noexcept { return backlog_bytes_; }
  /// Input bytes accepted but not yet consumed (paused at the in-flight
  /// bound or behind a write backlog). Bounded by what the reactor reads
  /// per readable wakeup — it stops reading whenever wants_read() is false.
  std::size_t buffered_input() const noexcept;

  /// Epoll interest, derived from state: read in the three reading states,
  /// write whenever backlog remains and the session is not closed.
  bool wants_read() const noexcept;
  bool wants_write() const noexcept;

  /// kBytesIn. Consumes as much of `data` as the hello/header/body cursors
  /// and the in-flight bound allow; the rest is buffered and resumes when
  /// a slot frees or the backlog drains.
  SessionActions on_bytes(const std::uint8_t* data, std::size_t size);
  /// kResponseReady: one encoded response frame (length prefix included),
  /// queued behind the backlog in arrival order (responses are matched by
  /// request id, so cross-request order is free). Rejected when every held
  /// slot already has its response queued — responses match slots
  /// one-to-one, and an excess one would corrupt the accounting.
  SessionActions on_response(std::string frame);
  /// kWroteBytes: `n` bytes of next_write() reached the kernel.
  SessionActions on_wrote(std::size_t n);
  /// kPingFrame: a complete keepalive ping carrying `token`. pump_input
  /// recognises pings between frames and answers through this same
  /// transition; valid in any stream state (the pong rides the backlog and
  /// takes no slot), rejected before the hello and once closing.
  SessionActions on_ping(std::uint64_t token);
  /// kStatsFrame: a complete stats request (type 5). pump_input recognises
  /// stats bodies between frames like pings; the request is surfaced in
  /// SessionActions::stats_requests for the driver to answer. Valid in any
  /// stream state, rejected before the hello and once closing.
  SessionActions on_stats(std::uint64_t token, std::uint8_t flags);
  /// Queue one protocol-level reply frame (a stats response) in the write
  /// backlog: no in-flight slot, not counted in responses_completed when
  /// written — exactly a pong's accounting. Valid in the stream states
  /// only; rejected before the hello and once closing (the probe's reply
  /// may be dropped when the connection is already dying).
  SessionActions on_protocol_reply(std::string frame);
  /// The payload-free events (kWriteBlocked, kReadEof, kPeerError,
  /// kSendTimeout, kIdleTimeout, kDrain, kHelloTimeout). Payload-carrying
  /// events passed here (including kStatsFrame) are rejected.
  SessionActions on_event(SessionEvent event);

  /// Contiguous view of the next unwritten backlog bytes (front frame from
  /// its write offset); {nullptr, 0} when the backlog is empty.
  const char* write_data() const noexcept;
  std::size_t write_size() const noexcept;

 private:
  enum class Phase : std::uint8_t { kHello, kStream, kClosing, kClosed };

  struct OutFrame {
    std::string bytes;
    bool counts;  ///< true for response frames (slot + responses_sent); false for the hello
  };

  static SessionActions reject();
  /// Consume buffered input through the hello/header/body cursors until it
  /// runs out or the FSM pauses (bound reached, write blocked, closed).
  void pump_input(SessionActions& acts);
  /// Queue the pong for one recognised ping (counts=false: no slot).
  void answer_ping(std::uint64_t token, SessionActions& acts);
  void push_backlog(std::string bytes, bool counts, SessionActions& acts);
  void enter_closing_or_close(SessionCloseReason reason, SessionActions& acts);
  void close_now(SessionCloseReason reason, SessionActions& acts);

  SessionFsmConfig config_;
  Phase phase_ = Phase::kHello;
  bool reading_body_ = false;   ///< within kStream: header vs body cursor
  bool write_blocked_ = false;  ///< a send hit would-block and EPOLLOUT is pending
  SessionCloseReason close_reason_ = SessionCloseReason::kNone;
  SessionCloseReason drain_reason_ = SessionCloseReason::kNone;  ///< why kClosing was entered

  // Input side.
  std::vector<std::uint8_t> input_;  ///< accepted, unconsumed bytes
  std::size_t input_pos_ = 0;
  std::uint8_t hello_buf_[12] = {};
  std::size_t hello_got_ = 0;
  std::uint8_t header_[4] = {0, 0, 0, 0};
  std::size_t header_got_ = 0;
  std::vector<std::uint8_t> body_;
  std::size_t body_needed_ = 0;

  // Output side.
  std::deque<OutFrame> backlog_;
  std::size_t front_written_ = 0;  ///< bytes of backlog_.front() already written
  std::size_t backlog_bytes_ = 0;
  std::size_t in_flight_ = 0;
  std::size_t queued_responses_ = 0;  ///< counting frames in backlog_ (<= in_flight_)
};

}  // namespace ncpm::net
