#include "net/timer_wheel.hpp"

namespace ncpm::net {

TimerWheel::TimerWheel(Clock::time_point now, std::chrono::milliseconds tick,
                       std::size_t slots)
    : tick_(tick.count() < 1 ? std::chrono::milliseconds(1) : tick),
      slots_(slots < 2 ? 2 : slots),
      next_tick_time_(now + tick_) {}

TimerWheel::TimerId TimerWheel::schedule(Clock::time_point now, std::chrono::milliseconds delay) {
  if (delay.count() < 0) delay = std::chrono::milliseconds(0);
  // Slot `cursor_ + t` is visited at next_tick_time_ + (t-1) * tick_: pick
  // the smallest t whose visit time is not before now + delay, rounding up
  // so a timer never fires early. Minimum one tick keeps the entry out of
  // the slot advance() is about to visit. Computed against the wheel's own
  // time base, not the cursor, so ticks that elapsed but have not been
  // advance()d yet (dispatch ran first) cannot eat into the delay.
  const auto due = now + delay;
  std::uint64_t ticks = 1;
  if (due > next_tick_time_) {
    const auto ahead =
        std::chrono::duration_cast<std::chrono::milliseconds>(due - next_tick_time_);
    ticks += static_cast<std::uint64_t>((ahead.count() + tick_.count() - 1) / tick_.count());
  }
  const auto slot = (cursor_ + ticks) % slots_.size();
  const auto rounds = static_cast<std::uint32_t>(ticks / slots_.size());
  const TimerId id = next_id_++;
  slots_[slot].push_back(Entry{id, rounds});
  ++armed_;
  return id;
}

void TimerWheel::cancel(TimerId id) {
  if (id == 0 || id >= next_id_) return;
  if (cancelled_.insert(id).second && armed_ > 0) --armed_;
}

void TimerWheel::advance(Clock::time_point now, std::vector<TimerId>& expired) {
  while (next_tick_time_ <= now) {
    auto& slot = slots_[cursor_];
    std::size_t keep = 0;
    for (auto& entry : slot) {
      const auto it = cancelled_.find(entry.id);
      if (it != cancelled_.end()) {
        cancelled_.erase(it);  // armed_ was already decremented by cancel()
        continue;
      }
      if (entry.rounds > 0) {
        --entry.rounds;
        slot[keep++] = entry;
        continue;
      }
      expired.push_back(entry.id);
      --armed_;
    }
    slot.resize(keep);
    cursor_ = (cursor_ + 1) % slots_.size();
    next_tick_time_ += tick_;
  }
}

std::optional<std::chrono::milliseconds> TimerWheel::next_wakeup(Clock::time_point now) const {
  if (armed_ == 0) return std::nullopt;
  for (std::size_t step = 0; step < slots_.size(); ++step) {
    const auto& slot = slots_[(cursor_ + step) % slots_.size()];
    bool live = false;
    for (const auto& entry : slot) {
      if (cancelled_.find(entry.id) == cancelled_.end()) {
        live = true;
        break;
      }
    }
    if (!live) continue;
    const auto due = next_tick_time_ + step * tick_;
    const auto wait = std::chrono::duration_cast<std::chrono::milliseconds>(due - now);
    return wait.count() < 0 ? std::chrono::milliseconds(0) : wait;
  }
  // armed_ > 0 but every entry is multi-round: wake at the next revolution.
  return std::chrono::duration_cast<std::chrono::milliseconds>(next_tick_time_ - now) +
         std::chrono::milliseconds(static_cast<long>(slots_.size()) * tick_.count());
}

}  // namespace ncpm::net
