#pragma once
// Epoll reactor: the event-loop half of the server's epoll core.
//
// An EventLoop is one thread around one epoll instance, with two side
// channels: an eventfd that other threads ring via post() (this is how
// engine completion callbacks re-enter the loop safely), and a hashed
// timing wheel for send-stall and idle timers. Everything else — fd
// registration, interest changes, timer arming — is loop-thread-only by
// contract, which is what lets sessions run without a single lock.
//
// The EpollCore that owns a pool of these lives in reactor.cpp behind
// detail::make_epoll_core(); only EventLoop and the FdHandler seam are
// public here because session.cpp needs them.

#include <chrono>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <vector>

#include "net/socket.hpp"
#include "net/timer_wheel.hpp"

namespace ncpm::net {

/// Something an EventLoop can dispatch fd readiness to (a Session, or the
/// core's listener). `events` is the raw epoll bitmask.
class FdHandler {
 public:
  virtual ~FdHandler() = default;
  virtual void on_io(std::uint32_t events) = 0;
};

class EventLoop {
 public:
  using Task = std::function<void()>;
  using TimerId = TimerWheel::TimerId;

  /// Creates the epoll instance and the wakeup eventfd (throws
  /// NetError(kIo) when the kernel refuses). The thread starts in start().
  EventLoop();
  /// Joins the thread if still running, then closes the fds.
  ~EventLoop();
  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  void start();
  /// Ask the loop to exit after its current iteration and join it.
  /// Idempotent; safe on a never-started loop.
  void stop();

  /// Thread-safe: queue `task` and ring the eventfd. Tasks run on the loop
  /// thread in post order. Tasks posted after stop() are discarded when the
  /// loop is destroyed (they never run).
  void post(Task task);
  bool on_loop_thread() const noexcept;

  // --- loop-thread-only from here down ---

  void add_fd(int fd, std::uint32_t events, FdHandler* handler);
  void modify_fd(int fd, std::uint32_t events);
  /// Deregisters from epoll and forgets the handler; pending events for
  /// this fd in the current batch are dropped.
  void remove_fd(int fd);

  /// Arm a one-shot timer; `on_fire` runs on the loop thread. Returns a
  /// nonzero id for cancel_timer().
  TimerId arm_timer(std::chrono::milliseconds delay, std::function<void()> on_fire);
  /// Cancelling an already-fired or unknown id is a no-op.
  void cancel_timer(TimerId id);

  /// Hold `sock` open until the current dispatch batch finishes, then
  /// close it. Deferring the close keeps the kernel from recycling the fd
  /// number mid-batch, where a stale readiness event for the old fd could
  /// be misdelivered to its successor.
  void defer_close(Socket sock);

 private:
  void run();
  void drain_wakeup();

  int epoll_fd_ = -1;
  int wake_fd_ = -1;
  std::thread thread_;
  bool stop_ = false;  ///< loop thread only; set via a posted task

  std::mutex tasks_mu_;
  std::deque<Task> tasks_;  ///< guarded by tasks_mu_

  // Loop-thread-only state.
  std::unordered_map<int, FdHandler*> handlers_;
  TimerWheel wheel_;
  std::unordered_map<TimerId, std::function<void()>> timer_callbacks_;
  std::vector<Socket> pending_close_;
};

}  // namespace ncpm::net
