#pragma once
// Fault-tolerant ncpm-rpc v1 client: a net::Client wrapped in the retry
// discipline the chaos suite demands of any production caller.
//
//  - Reconnect: a broken connection (reset, timeout, protocol desync) is
//    dropped and redialled on the next attempt — solves are idempotent, so
//    resending a request whose response was lost is always safe.
//  - Deadline-aware retry: exponential backoff with full jitter
//    (backoff_with_jitter below), capped so a sleep never outlives the
//    caller's remaining budget; when the budget is gone the client
//    synthesises a kDeadlineExpired response instead of throwing.
//  - Circuit breaker: after `failure_threshold` consecutive failures the
//    breaker opens and calls fail fast with NetError(kCircuitOpen) for
//    `cooldown`, then a single half-open probe decides between closing it
//    and another cooldown. Time is passed in explicitly, so the breaker
//    unit-tests run on a synthetic clock (the TimerWheel discipline).
//  - Hedging (optional): when an attempt has not returned within
//    `hedge_delay`, a second attempt launches on a fresh connection and
//    the first usable response wins; the straggler's socket is shut down.
//    Safe for the same idempotency reason resend is.
//
// Like Client, a ResilientClient is single-threaded by design — one per
// caller thread; the hedging worker threads are internal and joined before
// call() returns.

#include <chrono>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>

#include "core/instance.hpp"
#include "engine/engine.hpp"
#include "net/client.hpp"
#include "net/frame.hpp"

namespace ncpm::net {

struct BackoffPolicy {
  std::chrono::milliseconds initial{50};
  std::chrono::milliseconds max{2000};
  double multiplier = 2.0;
};

/// Full-jitter exponential backoff (AWS architecture-blog flavour): a
/// uniform draw from [0, min(max, initial * multiplier^attempt)]. Pure —
/// `rng_state` is the caller's xorshift64* state, advanced in place — so
/// the jitter bounds are unit-testable without sleeping.
std::chrono::milliseconds backoff_with_jitter(const BackoffPolicy& policy, int attempt,
                                              std::uint64_t& rng_state);

struct CircuitBreakerConfig {
  /// Consecutive failures that trip the breaker open.
  int failure_threshold = 5;
  /// How long the breaker stays open before allowing one half-open probe.
  std::chrono::milliseconds cooldown{1000};
};

/// Per-endpoint circuit breaker, closed -> open -> half-open. Pure state
/// machine over caller-supplied time_points: no clock inside, so tests
/// drive it with synthetic time.
class CircuitBreaker {
 public:
  enum class State : std::uint8_t { kClosed, kOpen, kHalfOpen };

  explicit CircuitBreaker(CircuitBreakerConfig config = {}) : config_(config) {}

  /// May this call proceed? Open + cooldown elapsed transitions to
  /// half-open and admits exactly one probe; further calls are refused
  /// until the probe reports back.
  bool allow(std::chrono::steady_clock::time_point now);
  void record_success();
  void record_failure(std::chrono::steady_clock::time_point now);

  State state() const noexcept { return state_; }
  int consecutive_failures() const noexcept { return failures_; }

 private:
  CircuitBreakerConfig config_;
  State state_ = State::kClosed;
  int failures_ = 0;
  bool probe_in_flight_ = false;
  std::chrono::steady_clock::time_point opened_at_{};
};

struct ResilientClientConfig {
  ClientConfig client{};
  /// Attempts per call (first try included). The loop also stops early
  /// when the deadline budget runs out.
  int max_attempts = 4;
  BackoffPolicy backoff{};
  CircuitBreakerConfig breaker{};
  /// 0 = no hedging. Otherwise: an attempt still unanswered after this
  /// long gets a racing second attempt on a fresh connection.
  std::chrono::milliseconds hedge_delay{0};
  /// Seed for the jitter stream (deterministic backoff schedules in tests).
  std::uint64_t jitter_seed = 0x243f6a8885a308d3ULL;
};

struct ResilientClientStats {
  std::uint64_t attempts = 0;       ///< individual wire attempts (hedges included)
  std::uint64_t retries = 0;        ///< attempts beyond the first, per call
  std::uint64_t reconnects = 0;     ///< fresh dials after a broken connection
  std::uint64_t hedges_launched = 0;
  std::uint64_t hedge_wins = 0;     ///< calls the hedge answered first
  std::uint64_t breaker_rejections = 0;
};

class ResilientClient {
 public:
  /// Does not dial: the first call connects (and reconnects thereafter as
  /// needed), so constructing against a temporarily-down server is fine.
  ResilientClient(std::string host, std::uint16_t port, ResilientClientConfig config = {});

  /// One request with the full resilience discipline. `deadline` bounds
  /// the whole call — attempts, backoffs and hedges included; zero means
  /// no bound (retries still stop at max_attempts). Throws
  /// NetError(kCircuitOpen) when the breaker refuses, or the final
  /// transport error when every attempt failed; returns the server's
  /// response (or a synthesised kDeadlineExpired one) otherwise.
  ResponseFrame call(engine::Mode mode, const core::Instance& inst,
                     std::chrono::milliseconds deadline = std::chrono::milliseconds(0));

  /// Liveness probe: pings over the current (or a fresh) connection.
  /// Never throws; false means the endpoint is unreachable right now.
  bool healthy() noexcept;

  /// One metrics scrape (Client::stats) with reconnect-and-retry: a broken
  /// connection is redialled and the scrape retried with the usual backoff
  /// up to max_attempts. Deliberately outside the circuit breaker — a
  /// monitoring loop must keep probing a down endpoint to see it come
  /// back, and a scrape never costs the server a backpressure slot. Throws
  /// the final attempt's NetError when every attempt failed (the caller's
  /// watch loop decides whether to keep waiting).
  StatsReply scrape_stats(bool include_traces = false);

  /// Drop the current connection (the next call redials).
  void disconnect() noexcept { conn_.reset(); }

  const ResilientClientStats& stats() const noexcept { return stats_; }
  CircuitBreaker::State breaker_state() const noexcept { return breaker_.state(); }

 private:
  struct Attempt {
    std::optional<ResponseFrame> response;  ///< set when the wire answered
    std::optional<NetErrc> transport_error;
    std::string error;
    bool redialled = false;  ///< this attempt opened a fresh connection
  };

  /// One wire attempt on `conn` (dialling it first if null).
  Attempt attempt_once(std::shared_ptr<Client>& conn, engine::Mode mode,
                       const core::Instance& inst, std::uint64_t server_deadline_ns,
                       std::chrono::milliseconds recv_budget);
  /// One possibly-hedged attempt; adopts the winning connection into conn_.
  Attempt attempt_hedged(engine::Mode mode, const core::Instance& inst,
                         std::uint64_t server_deadline_ns,
                         std::chrono::milliseconds recv_budget);

  std::string host_;
  std::uint16_t port_;
  ResilientClientConfig config_;
  std::shared_ptr<Client> conn_;  ///< shared with hedge workers mid-call only
  CircuitBreaker breaker_;
  std::uint64_t jitter_state_;
  ResilientClientStats stats_;
};

/// Is this wire status worth retrying? kOverloaded (admission shed — the
/// server asked for backoff), kRejected (it was shutting down; another
/// instance, or it, may be back) and kMalformedFrame (the *request* was
/// corrupted in flight; resending sends fresh bytes) are; everything else
/// is a definitive answer.
bool rpc_status_retryable(RpcStatus status) noexcept;

}  // namespace ncpm::net
