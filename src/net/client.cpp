#include "net/client.hpp"

#include <unordered_map>
#include <utility>

namespace ncpm::net {

Client Client::connect(const std::string& host, std::uint16_t port, ClientConfig config) {
  if (config.pipeline_window < 1) config.pipeline_window = 1;
  Socket sock = Socket::connect_to(host, port, config.connect_timeout);
  if (config.recv_timeout.count() > 0) sock.set_recv_timeout(config.recv_timeout);
  send_hello(sock);
  if (!expect_hello(sock)) {
    throw NetError(NetErrc::kClosed, "server closed the connection during hello");
  }
  return Client(std::move(sock), config);
}

ResponseFrame Client::read_response() {
  if (!read_frame_body(sock_, body_)) {
    throw NetError(NetErrc::kClosed, "server closed the connection");
  }
  return decode_response_frame(body_.data(), body_.size());
}

ResponseFrame Client::call(engine::Mode mode, const core::Instance& inst,
                           std::uint64_t deadline_ns) {
  RequestHead head;
  head.request_id = next_id_++;
  head.mode_raw = static_cast<std::uint8_t>(mode);
  head.deadline_ns = deadline_ns;
  const auto frame = encode_request_frame(head, inst);
  sock_.send_all(frame.data(), frame.size());
  auto resp = read_response();
  if (resp.request_id != head.request_id) {
    throw NetError(NetErrc::kProtocol,
                   "response for unexpected request id " + std::to_string(resp.request_id));
  }
  return resp;
}

void Client::ping() {
  const std::uint64_t token = next_id_++;
  const auto frame = encode_keepalive_frame(FrameType::kPing, token);
  sock_.send_all(frame.data(), frame.size());
  if (!read_frame_body(sock_, body_)) {
    throw NetError(NetErrc::kClosed, "server closed the connection awaiting pong");
  }
  const auto echoed = parse_keepalive_body(body_.data(), body_.size(), FrameType::kPong);
  if (!echoed.has_value() || *echoed != token) {
    throw NetError(NetErrc::kProtocol, "ping was not answered by a matching pong");
  }
}

StatsReply Client::stats(bool include_traces) {
  const std::uint64_t token = next_id_++;
  const std::uint8_t flags = include_traces ? kStatsFlagTraces : std::uint8_t{0};
  const auto frame = encode_stats_request_frame(token, flags);
  sock_.send_all(frame.data(), frame.size());
  if (!read_frame_body(sock_, body_)) {
    throw NetError(NetErrc::kClosed, "server closed the connection awaiting stats");
  }
  auto reply = decode_stats_response_body(body_.data(), body_.size());
  if (reply.token != token) {
    throw NetError(NetErrc::kProtocol, "stats reply token does not match the request");
  }
  return reply;
}

std::vector<ResponseFrame> Client::call_batch(const std::vector<RpcCall>& calls) {
  std::vector<ResponseFrame> results(calls.size());
  std::unordered_map<std::uint64_t, std::size_t> slot_of;
  slot_of.reserve(calls.size());
  std::size_t sent = 0;
  std::size_t received = 0;
  while (received < calls.size()) {
    if (sent < calls.size() && sent - received < config_.pipeline_window) {
      RequestHead head;
      head.request_id = next_id_++;
      head.mode_raw = static_cast<std::uint8_t>(calls[sent].mode);
      head.deadline_ns = calls[sent].deadline_ns;
      slot_of.emplace(head.request_id, sent);
      const auto frame = encode_request_frame(head, calls[sent].instance);
      sock_.send_all(frame.data(), frame.size());
      ++sent;
      continue;
    }
    auto resp = read_response();
    const auto it = slot_of.find(resp.request_id);
    if (it == slot_of.end()) {
      throw NetError(NetErrc::kProtocol,
                     "response for unknown request id " + std::to_string(resp.request_id));
    }
    results[it->second] = std::move(resp);
    slot_of.erase(it);
    ++received;
  }
  return results;
}

}  // namespace ncpm::net
