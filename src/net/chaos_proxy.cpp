#include "net/chaos_proxy.hpp"

#include <algorithm>
#include <utility>

namespace ncpm::net {

namespace {

/// xorshift64*: tiny, seedable, good enough for fault schedules. Never
/// returns the same stream for two different (seed, conn, dir) triples in
/// practice because the splitmix-style preamble decorrelates close seeds.
struct Rng {
  std::uint64_t state;

  explicit Rng(std::uint64_t seed, std::uint64_t conn, bool client_to_server) {
    state = seed * 0x9e3779b97f4a7c15ULL + conn * 0xbf58476d1ce4e5b9ULL +
            (client_to_server ? 0x94d049bb133111ebULL : 0);
    if (state == 0) state = 0x2545f4914f6cdd1dULL;
    next();  // discard the first draw; close seeds start correlated
  }

  std::uint64_t next() {
    state ^= state >> 12;
    state ^= state << 25;
    state ^= state >> 27;
    return state * 0x2545f4914f6cdd1dULL;
  }

  /// Uniform in [1, n].
  std::size_t one_to(std::size_t n) { return static_cast<std::size_t>(next() % n) + 1; }
  /// True with probability ppm / 1e6.
  bool chance_ppm(std::uint32_t ppm) { return ppm > 0 && next() % 1000000 < ppm; }
};

}  // namespace

/// One proxied connection: the client-facing socket, the upstream socket,
/// and the two relay threads shuttling between them. The accept loop keeps
/// a shared_ptr so stop() can reset links mid-relay; each relay thread
/// keeps its own so the sockets outlive whichever side exits last.
struct ChaosProxy::Link {
  Socket client;
  Socket upstream;
  std::thread forward;   ///< client -> upstream
  std::thread backward;  ///< upstream -> client
  std::atomic<bool> dead{false};

  /// RST both ways: linger-0 close semantics on shutdown, so the peers see
  /// a hard reset, not a graceful FIN.
  void kill() noexcept {
    dead.store(true, std::memory_order_release);
    client.set_linger_reset();
    upstream.set_linger_reset();
    client.shutdown_both();
    upstream.shutdown_both();
  }
};

ChaosProxy::ChaosProxy(ChaosConfig config) : config_(std::move(config)) {}

ChaosProxy::~ChaosProxy() { stop(); }

void ChaosProxy::start() {
  listener_ = Socket::listen_on(config_.bind_address, config_.listen_port, 16);
  port_ = listener_.local_port();
  accept_thread_ = std::thread([this] { accept_loop(); });
}

void ChaosProxy::stop() {
  if (stopping_.exchange(true)) return;
  listener_.shutdown_both();
  if (accept_thread_.joinable()) accept_thread_.join();
  listener_.close();
  std::vector<std::shared_ptr<Link>> links;
  {
    std::lock_guard<std::mutex> lock(links_mu_);
    links.swap(links_);
  }
  for (auto& link : links) link->kill();
  for (auto& link : links) {
    if (link->forward.joinable()) link->forward.join();
    if (link->backward.joinable()) link->backward.join();
  }
}

void ChaosProxy::accept_loop() {
  for (;;) {
    Socket client;
    try {
      client = listener_.accept_connection();
    } catch (const NetError&) {
      return;  // listener shut down
    }
    if (stopping_.load(std::memory_order_acquire)) return;
    auto link = std::make_shared<Link>();
    link->client = std::move(client);
    try {
      link->upstream = Socket::connect_to(config_.upstream_host, config_.upstream_port,
                                          std::chrono::milliseconds(5000));
      if (config_.upstream_rcvbuf > 0) link->upstream.set_recv_buffer(config_.upstream_rcvbuf);
    } catch (const NetError&) {
      continue;  // upstream refused; the client socket closes on scope exit
    }
    connections_.fetch_add(1, std::memory_order_relaxed);
    const std::uint64_t conn = next_conn_.fetch_add(1, std::memory_order_relaxed);
    link->forward = std::thread([this, link, conn] { relay(link, conn, /*client_to_server=*/true); });
    link->backward =
        std::thread([this, link, conn] { relay(link, conn, /*client_to_server=*/false); });
    std::lock_guard<std::mutex> lock(links_mu_);
    // Reap links whose threads already unwound so a long chaos run does not
    // accumulate dead records.
    auto it = links_.begin();
    while (it != links_.end()) {
      if ((*it)->dead.load(std::memory_order_acquire)) {
        if ((*it)->forward.joinable()) (*it)->forward.join();
        if ((*it)->backward.joinable()) (*it)->backward.join();
        it = links_.erase(it);
      } else {
        ++it;
      }
    }
    links_.push_back(std::move(link));
  }
}

void ChaosProxy::relay(std::shared_ptr<Link> link, std::uint64_t conn, bool client_to_server) {
  Rng rng(config_.seed, conn, client_to_server);
  Socket& src = client_to_server ? link->client : link->upstream;
  Socket& dst = client_to_server ? link->upstream : link->client;
  auto& forwarded = client_to_server ? client_bytes_ : server_bytes_;

  std::vector<std::uint8_t> buf(16 * 1024);
  // Bytes left of the currently drawn slice. Carried across reads so the
  // RNG advances per *stream byte*, not per recv() — the fault schedule is
  // then a pure function of (seed, conn, direction, byte stream) and does
  // not wobble with kernel read boundaries. With tearing disabled
  // (max_chunk == 0) a "slice" degenerates to one whole read.
  std::size_t slice_left = 0;
  try {
    for (;;) {
      const std::ptrdiff_t n = src.recv_some(buf.data(), buf.size());
      if (n == 0) {
        // EOF: propagate the half-close so the far side sees it too, then
        // let the opposite relay keep draining until its own EOF.
        dst.shutdown_write();
        break;
      }
      if (n < 0) continue;  // blocking socket: only possible via races; retry

      std::size_t off = 0;
      const auto total = static_cast<std::size_t>(n);
      while (off < total) {
        if (link->dead.load(std::memory_order_acquire)) return;
        if (slice_left == 0) {
          // A new slice begins: draw its length and its per-slice faults.
          slice_left = config_.max_chunk > 0 ? rng.one_to(config_.max_chunk) : total - off;
          if (rng.chance_ppm(config_.delay_ppm)) {
            delays_.fetch_add(1, std::memory_order_relaxed);
            std::this_thread::sleep_for(config_.delay_ms);
          }
          if (rng.chance_ppm(config_.reset_ppm)) {
            resets_.fetch_add(1, std::memory_order_relaxed);
            link->kill();
            return;
          }
        }
        const std::size_t chunk = std::min(total - off, slice_left);

        const std::uint64_t before = forwarded.load(std::memory_order_relaxed);

        // One-shot reset at an exact byte offset: forward up to the
        // boundary, then RST. The boundary byte itself is never delivered.
        if (client_to_server && config_.reset_after_client_bytes > 0 &&
            before + chunk > config_.reset_after_client_bytes &&
            !reset_fired_.exchange(true)) {
          const auto keep = static_cast<std::size_t>(config_.reset_after_client_bytes - before);
          if (keep > 0) dst.send_all(buf.data() + off, keep);
          forwarded.fetch_add(keep, std::memory_order_relaxed);
          resets_.fetch_add(1, std::memory_order_relaxed);
          link->kill();
          return;
        }

        // One-shot byte corruption (1-based offset within this direction).
        if (client_to_server && config_.corrupt_client_byte > 0 &&
            before < config_.corrupt_client_byte && before + chunk >= config_.corrupt_client_byte &&
            !corrupt_fired_.exchange(true)) {
          buf[off + static_cast<std::size_t>(config_.corrupt_client_byte - before) - 1] ^= 0xff;
          corruptions_.fetch_add(1, std::memory_order_relaxed);
        }

        dst.send_all(buf.data() + off, chunk);
        off += chunk;
        slice_left -= chunk;
        const std::uint64_t after = forwarded.fetch_add(chunk, std::memory_order_relaxed) + chunk;

        // One-shot stall: stop draining the server for a while. The server
        // keeps writing into a buffer nobody empties; once it fills, its
        // send_all blocks and, eventually, its send timeout breaks the
        // connection — which is exactly the scenario under test.
        if (!client_to_server && config_.stall_after_server_bytes > 0 &&
            after >= config_.stall_after_server_bytes && !stall_fired_.exchange(true)) {
          stalls_.fetch_add(1, std::memory_order_relaxed);
          std::this_thread::sleep_for(config_.stall_ms);
        }
      }
    }
  } catch (const NetError&) {
    // Either side vanished (reset, proxy teardown): this relay is done.
    // Kill the whole link — a half-relayed connection has no future.
    link->kill();
  }
}

ChaosStats ChaosProxy::stats() const {
  ChaosStats s;
  s.connections = connections_.load(std::memory_order_relaxed);
  s.client_bytes = client_bytes_.load(std::memory_order_relaxed);
  s.server_bytes = server_bytes_.load(std::memory_order_relaxed);
  s.resets = resets_.load(std::memory_order_relaxed);
  s.corruptions = corruptions_.load(std::memory_order_relaxed);
  s.stalls = stalls_.load(std::memory_order_relaxed);
  s.delays = delays_.load(std::memory_order_relaxed);
  return s;
}

}  // namespace ncpm::net
