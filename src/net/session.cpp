#include "net/session.hpp"

#include <sys/epoll.h>

#include <utility>
#include <vector>

#include "net/frame.hpp"
#include "net/stats_frame.hpp"

namespace ncpm::net {

namespace {
/// Per-readable-wakeup recv chunk. Also the bound on how much unconsumed
/// input one session can buffer: the loop stops reading the moment the FSM
/// stops wanting bytes (in-flight bound hit, write blocked), so at most one
/// chunk sits in SessionFsm::input_ — the flat-memory property the soak
/// test pins.
constexpr std::size_t kReadChunk = 16 * 1024;
}  // namespace

Session::Session(Socket sock, EventLoop& loop, const ServerConfig& config,
                 engine::Engine& engine, detail::ServerObs& obs,
                 std::function<void(const std::shared_ptr<Session>&)> on_closed)
    : sock_(std::move(sock)),
      loop_(loop),
      config_(config),
      engine_(engine),
      obs_(obs),
      on_closed_(std::move(on_closed)),
      fsm_(SessionFsmConfig{config.max_in_flight_per_connection, kMaxFrameBody}) {}

void Session::open() {
  sock_.set_nonblocking(true);
  interest_ = EPOLLIN;
  loop_.add_fd(sock_.fd(), interest_, this);
  registered_ = true;
  last_activity_ = std::chrono::steady_clock::now();
  conn_id_ = obs_.next_conn_id.fetch_add(1, std::memory_order_relaxed);
  accepted_ = last_activity_;
  obs_.connections_accepted.add(1);
  obs_.connections_active.add(1);
  if (obs_.log.enabled()) {
    obs_.log.event("conn_open", {{"conn_id", conn_id_}, {"core", "epoll"}});
  }
  if (config_.idle_timeout.count() > 0) arm_idle_timer(config_.idle_timeout);
  if (config_.hello_timeout.count() > 0) {
    // Armed exactly once per connection; cancelled the moment the hello
    // completes (apply() sees hello_ok). If it fires first the FSM closes
    // the session — or rejects the event as stale, in which case the
    // handshake won the race and nothing re-arms.
    auto self = shared_from_this();
    hello_timer_ = loop_.arm_timer(config_.hello_timeout, [self] {
      self->hello_timer_ = 0;
      if (self->finished_) return;
      self->apply(self->fsm_.on_event(SessionEvent::kHelloTimeout));
    });
  }
}

void Session::begin_drain() {
  auto self = shared_from_this();
  if (finished_) return;
  apply(fsm_.on_event(SessionEvent::kDrain));
  if (!finished_) {
    pump_write();
    sync_interest();
  }
}

void Session::on_io(std::uint32_t events) {
  auto self = shared_from_this();  // apply() may run on_closed_, which drops the core's ref
  if (finished_) return;
  last_activity_ = std::chrono::steady_clock::now();
  if ((events & EPOLLIN) != 0) {
    std::uint8_t buf[kReadChunk];
    while (!finished_ && fsm_.wants_read()) {
      std::ptrdiff_t n = 0;
      try {
        n = sock_.recv_some(buf, sizeof(buf));
      } catch (const std::exception&) {
        apply(fsm_.on_event(SessionEvent::kPeerError));
        break;
      }
      if (n < 0) break;  // drained the kernel buffer
      if (n == 0) {
        apply(fsm_.on_event(SessionEvent::kReadEof));
        break;
      }
      apply(fsm_.on_bytes(buf, static_cast<std::size_t>(n)));
    }
  }
  if (!finished_ && (events & (EPOLLERR | EPOLLHUP)) != 0) {
    // Checked after the read so a close-with-data still delivers its final
    // bytes and EOF; what's left is a genuine socket failure.
    apply(fsm_.on_event(SessionEvent::kPeerError));
  }
  if (!finished_) pump_write();
  if (!finished_) sync_interest();
}

void Session::pump_write() {
  while (!finished_ && fsm_.wants_write()) {
    std::ptrdiff_t n = 0;
    try {
      n = sock_.send_some(fsm_.write_data(), fsm_.write_size());
    } catch (const std::exception&) {
      apply(fsm_.on_event(SessionEvent::kPeerError));
      return;
    }
    if (n < 0) {
      apply(fsm_.on_event(SessionEvent::kWriteBlocked));
      return;
    }
    apply(fsm_.on_wrote(static_cast<std::size_t>(n)));
  }
}

void Session::sync_interest() {
  if (finished_ || !registered_) return;
  std::uint32_t want = 0;
  if (fsm_.wants_read()) want |= EPOLLIN;
  if (fsm_.wants_write()) want |= EPOLLOUT;
  if (want != interest_) {
    interest_ = want;
    // Level-triggered: re-adding EPOLLIN after a pause immediately re-fires
    // for bytes that were already waiting in the kernel buffer.
    loop_.modify_fd(sock_.fd(), want);
  }
}

void Session::apply(SessionActions acts) {
  if (acts.rejected) return;  // stale event (e.g. a timer racing a close in the same batch)
  if (acts.hello_ok && hello_timer_ != 0) {
    loop_.cancel_timer(hello_timer_);
    hello_timer_ = 0;
  }
  for (const auto& body : acts.dispatch) {
    // Received == dispatched here: the FSM pauses reads at the in-flight
    // bound instead of holding read-but-unadmitted frames, so every
    // complete frame off the wire dispatches immediately.
    obs_.frames_received.add(1);
    auto self = shared_from_this();
    detail::dispatch_request(engine_, obs_, config_, body, std::chrono::steady_clock::now(),
                             conn_id_, accepted_,
                             [self](std::string frame) { self->deliver(std::move(frame)); });
  }
  if (acts.responses_completed > 0) obs_.responses_sent.add(acts.responses_completed);
  if (acts.pings_answered > 0) obs_.pings_answered.add(acts.pings_answered);
  // Stats requests are answered at the protocol layer, like pings: a
  // registry snapshot rides the write backlog with no in-flight slot, so a
  // scrape cannot be starved by request backpressure. The reply is queued
  // through the FSM (on_protocol_reply) and may be rejected when the
  // session is already closing — the probe's answer dies with it.
  for (const auto& sreq : acts.stats_requests) {
    obs_.stats_frames_answered.add(1);
    std::vector<obs::TraceSpan> spans;
    if ((sreq.flags & kStatsFlagTraces) != 0) spans = obs_.traces.snapshot();
    auto reply = fsm_.on_protocol_reply(
        encode_stats_response_frame(sreq.token, obs_.registry.snapshot(), spans));
    if (!reply.rejected) apply(std::move(reply));
  }
  if (acts.close && acts.close_reason == SessionCloseReason::kHelloTimeout) {
    obs_.hello_timeouts.add(1);
  }
  if (acts.disarm_send_timer && send_timer_ != 0) {
    loop_.cancel_timer(send_timer_);
    send_timer_ = 0;
  }
  if (acts.arm_send_timer && config_.send_timeout.count() > 0) {
    if (send_timer_ != 0) loop_.cancel_timer(send_timer_);
    auto self = shared_from_this();
    send_timer_ = loop_.arm_timer(config_.send_timeout, [self] {
      self->send_timer_ = 0;
      if (self->finished_) return;
      self->apply(self->fsm_.on_event(SessionEvent::kSendTimeout));
    });
  }
  if (acts.close) finish();
}

void Session::deliver(std::string frame) {
  if (loop_.on_loop_thread()) {
    handle_response(std::move(frame));
    return;
  }
  // Engine worker thread: trampoline onto the loop (post rings the
  // eventfd). The shared_ptr keeps the session alive until the task runs —
  // or is discarded, if the loop stopped after this session closed.
  auto self = shared_from_this();
  loop_.post([self, frame = std::move(frame)]() mutable {
    self->handle_response(std::move(frame));
  });
}

void Session::handle_response(std::string frame) {
  if (finished_) return;  // write-after-close: the frame is dropped
  auto self = shared_from_this();
  apply(fsm_.on_response(std::move(frame)));
  if (!finished_) {
    pump_write();
    sync_interest();
  }
}

void Session::arm_idle_timer(std::chrono::milliseconds delay) {
  auto self = shared_from_this();
  idle_timer_ = loop_.arm_timer(delay, [self] { self->on_idle_timer(); });
}

void Session::on_idle_timer() {
  idle_timer_ = 0;
  if (finished_) return;
  const auto now = std::chrono::steady_clock::now();
  auto idle = std::chrono::duration_cast<std::chrono::milliseconds>(now - last_activity_);
  if (idle >= config_.idle_timeout) {
    auto acts = fsm_.on_event(SessionEvent::kIdleTimeout);
    if (!acts.rejected) {
      apply(acts);  // quiescent past the bound: reaped
      return;
    }
    idle = std::chrono::milliseconds(0);  // mid-frame or in flight: not idle at all
  }
  arm_idle_timer(config_.idle_timeout - idle);
}

void Session::finish() {
  if (finished_) return;
  finished_ = true;
  if (send_timer_ != 0) {
    loop_.cancel_timer(send_timer_);
    send_timer_ = 0;
  }
  if (idle_timer_ != 0) {
    loop_.cancel_timer(idle_timer_);
    idle_timer_ = 0;
  }
  if (hello_timer_ != 0) {
    loop_.cancel_timer(hello_timer_);
    hello_timer_ = 0;
  }
  if (registered_) {
    loop_.remove_fd(sock_.fd());
    registered_ = false;
  }
  // Deferred so the kernel cannot hand this fd number to a new connection
  // while readiness events from the current batch are still in flight.
  loop_.defer_close(std::move(sock_));
  obs_.connections_active.add(-1);
  if (obs_.log.enabled()) {
    obs_.log.event("conn_close",
                   {{"conn_id", conn_id_},
                    {"reason", session_close_reason_name(fsm_.close_reason())}});
  }
  on_closed_(shared_from_this());
}

}  // namespace ncpm::net
