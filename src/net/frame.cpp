#include "net/frame.hpp"

#include <algorithm>
#include <cstring>
#include <utility>

#include "gen/io_binary.hpp"

namespace ncpm::net {

namespace {

// A lying body_size fails at EOF after at most one chunk, not after a
// frame-sized allocation (same trick as io_binary's record reader).
constexpr std::size_t kReadChunk = std::size_t{1} << 20;

[[noreturn]] void fail(const std::string& what) { throw NetError(NetErrc::kProtocol, what); }

void put_u8(std::string& out, std::uint8_t v) { out.push_back(static_cast<char>(v)); }

void put_u32(std::string& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
}

void put_u64(std::string& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
}

/// Bounds-checked little-endian cursor over one frame body.
class Cursor {
 public:
  Cursor(const std::uint8_t* data, std::size_t size) : data_(data), size_(size) {}

  std::uint8_t u8(const char* what) {
    need(1, what);
    return data_[pos_++];
  }
  std::uint32_t u32(const char* what) {
    need(4, what);
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(data_[pos_++]) << (8 * i);
    return v;
  }
  std::uint64_t u64(const char* what) {
    need(8, what);
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(data_[pos_++]) << (8 * i);
    return v;
  }
  const std::uint8_t* rest(std::size_t& n) {
    n = size_ - pos_;
    return data_ + pos_;
  }
  std::string rest_string() {
    std::size_t n = 0;
    const auto* p = rest(n);
    pos_ = size_;
    return std::string(reinterpret_cast<const char*>(p), n);
  }
  void finish(const char* what) const {
    if (pos_ != size_) fail(std::string("trailing bytes in ") + what + " frame");
  }

 private:
  void need(std::size_t n, const char* what) const {
    if (size_ - pos_ < n) fail(std::string("truncated ") + what);
  }
  const std::uint8_t* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
};

bool is_matching_mode(std::uint8_t mode_raw) {
  if (mode_raw >= engine::kNumModes) return false;
  switch (static_cast<engine::Mode>(mode_raw)) {
    case engine::Mode::kSolve:
    case engine::Mode::kMaxCard:
    case engine::Mode::kFair:
    case engine::Mode::kRankMaximal:
      return true;
    default:
      return false;
  }
}

/// Fixed 25-byte check-report payload.
void put_check(std::string& out, const engine::CheckReport& check) {
  put_u32(out, static_cast<std::uint32_t>(check.applicants));
  put_u32(out, static_cast<std::uint32_t>(check.posts));
  std::uint8_t flags = 0;
  if (check.strict) flags |= 1;
  if (check.admits_popular) flags |= 2;
  if (check.count.has_value()) flags |= 4;
  put_u8(out, flags);
  put_u64(out, static_cast<std::uint64_t>(check.size));
  put_u64(out, check.count.value_or(0));
}

engine::CheckReport get_check(Cursor& cur) {
  engine::CheckReport check;
  check.applicants = static_cast<std::int32_t>(cur.u32("check applicants"));
  check.posts = static_cast<std::int32_t>(cur.u32("check posts"));
  const auto flags = cur.u8("check flags");
  check.strict = (flags & 1) != 0;
  check.admits_popular = (flags & 2) != 0;
  check.size = static_cast<std::size_t>(cur.u64("check size"));
  const auto count = cur.u64("check count");
  if ((flags & 4) != 0) check.count = count;
  return check;
}

/// Prepend the u32 length to a finished body.
std::string with_length_prefix(const std::string& body) {
  if (body.size() > kMaxFrameBody) fail("frame body exceeds the protocol cap");
  std::string frame;
  frame.reserve(4 + body.size());
  put_u32(frame, static_cast<std::uint32_t>(body.size()));
  frame.append(body);
  return frame;
}

}  // namespace

std::string_view rpc_status_name(RpcStatus status) {
  switch (status) {
    case RpcStatus::kOk: return "ok";
    case RpcStatus::kNoSolution: return "no-solution";
    case RpcStatus::kDeadlineExpired: return "deadline-expired";
    case RpcStatus::kCancelled: return "cancelled";
    case RpcStatus::kInvalidRequest: return "invalid-request";
    case RpcStatus::kSolverError: return "solver-error";
    case RpcStatus::kRejected: return "rejected";
    case RpcStatus::kMalformedFrame: return "malformed-frame";
    case RpcStatus::kUnsupportedMode: return "unsupported-mode";
    case RpcStatus::kOverloaded: return "overloaded";
  }
  return "unknown";
}

RpcStatus to_rpc_status(engine::Status status) {
  switch (status) {
    case engine::Status::kOk: return RpcStatus::kOk;
    case engine::Status::kNoSolution: return RpcStatus::kNoSolution;
    case engine::Status::kDeadlineExpired: return RpcStatus::kDeadlineExpired;
    case engine::Status::kCancelled: return RpcStatus::kCancelled;
    case engine::Status::kInvalid: return RpcStatus::kInvalidRequest;
    case engine::Status::kError: return RpcStatus::kSolverError;
    case engine::Status::kRejected: return RpcStatus::kRejected;
  }
  return RpcStatus::kSolverError;
}

std::string encode_request_frame(const RequestHead& head, const core::Instance& inst) {
  std::string body;
  put_u8(body, static_cast<std::uint8_t>(FrameType::kRequest));
  put_u64(body, head.request_id);
  put_u8(body, head.mode_raw);
  put_u64(body, head.deadline_ns);
  body.append(io::encode_instance_payload(inst));
  return with_length_prefix(body);
}

std::string encode_response_frame(const ResponseFrame& resp) {
  std::string body;
  put_u8(body, static_cast<std::uint8_t>(FrameType::kResponse));
  put_u64(body, resp.request_id);
  put_u8(body, resp.mode_raw);
  put_u8(body, static_cast<std::uint8_t>(resp.status));
  put_u64(body, resp.queue_ns);
  put_u64(body, resp.solve_ns);
  switch (resp.status) {
    case RpcStatus::kOk:
      if (resp.mode_raw == static_cast<std::uint8_t>(engine::Mode::kCount)) {
        put_u64(body, resp.count.value_or(0));
      } else if (resp.mode_raw == static_cast<std::uint8_t>(engine::Mode::kCheck)) {
        put_check(body, resp.check.value_or(engine::CheckReport{}));
      } else if (is_matching_mode(resp.mode_raw) && resp.matching.has_value()) {
        put_u32(body, resp.applicants);
        put_u64(body, resp.matching_size);
        body.append(io::encode_matching_payload(*resp.matching));
      }
      break;
    case RpcStatus::kNoSolution:
      // check reports its statistics even when no popular matching exists.
      if (resp.mode_raw == static_cast<std::uint8_t>(engine::Mode::kCheck) &&
          resp.check.has_value()) {
        put_check(body, *resp.check);
      }
      break;
    default:
      body.append(resp.error);
      break;
  }
  return with_length_prefix(body);
}

ResponseFrame make_response(std::uint64_t request_id, std::uint8_t mode_raw,
                            engine::Result&& result) {
  ResponseFrame resp;
  resp.request_id = request_id;
  resp.mode_raw = mode_raw;
  resp.status = to_rpc_status(result.status);
  resp.queue_ns = static_cast<std::uint64_t>(result.queue_latency.count());
  resp.solve_ns = static_cast<std::uint64_t>(result.solve_time.count());
  resp.applicants = static_cast<std::uint32_t>(result.applicants < 0 ? 0 : result.applicants);
  resp.matching_size = result.matching_size;
  resp.matching = std::move(result.matching);
  resp.count = result.count;
  resp.check = result.check;
  resp.error = std::move(result.error);
  return resp;
}

ResponseFrame make_error_response(std::uint64_t request_id, std::uint8_t mode_raw,
                                  RpcStatus status, std::string message) {
  ResponseFrame resp;
  resp.request_id = request_id;
  resp.mode_raw = mode_raw;
  resp.status = status;
  resp.error = std::move(message);
  return resp;
}

RequestHead decode_request_head(const std::uint8_t* body, std::size_t size) {
  Cursor cur(body, size);
  if (cur.u8("frame type") != static_cast<std::uint8_t>(FrameType::kRequest)) {
    fail("frame is not a request");
  }
  RequestHead head;
  head.request_id = cur.u64("request id");
  head.mode_raw = cur.u8("mode tag");
  head.deadline_ns = cur.u64("deadline");
  return head;
}

core::Instance decode_request_instance(const std::uint8_t* body, std::size_t size) {
  if (size < kRequestHeadSize) fail("truncated request frame");
  return io::decode_instance_payload(body + kRequestHeadSize, size - kRequestHeadSize);
}

ResponseFrame decode_response_frame(const std::uint8_t* body, std::size_t size) {
  Cursor cur(body, size);
  if (cur.u8("frame type") != static_cast<std::uint8_t>(FrameType::kResponse)) {
    fail("frame is not a response");
  }
  ResponseFrame resp;
  resp.request_id = cur.u64("request id");
  resp.mode_raw = cur.u8("mode tag");
  const auto status_raw = cur.u8("status");
  if (status_raw > static_cast<std::uint8_t>(RpcStatus::kOverloaded)) {
    fail("unknown status code " + std::to_string(status_raw));
  }
  resp.status = static_cast<RpcStatus>(status_raw);
  resp.queue_ns = cur.u64("queue latency");
  resp.solve_ns = cur.u64("solve time");
  switch (resp.status) {
    case RpcStatus::kOk:
      if (resp.mode_raw == static_cast<std::uint8_t>(engine::Mode::kCount)) {
        resp.count = cur.u64("count");
        cur.finish("count response");
      } else if (resp.mode_raw == static_cast<std::uint8_t>(engine::Mode::kCheck)) {
        resp.check = get_check(cur);
        cur.finish("check response");
      } else if (is_matching_mode(resp.mode_raw)) {
        resp.applicants = cur.u32("applicants");
        resp.matching_size = cur.u64("matching size");
        std::size_t n = 0;
        const auto* payload = cur.rest(n);
        resp.matching = io::decode_matching_payload(payload, n);
      } else {
        fail("ok response with unserved mode tag " + std::to_string(resp.mode_raw));
      }
      break;
    case RpcStatus::kNoSolution: {
      std::size_t n = 0;
      cur.rest(n);
      if (resp.mode_raw == static_cast<std::uint8_t>(engine::Mode::kCheck) && n > 0) {
        resp.check = get_check(cur);
      }
      cur.finish("no-solution response");
      break;
    }
    default:
      resp.error = cur.rest_string();
      break;
  }
  return resp;
}

std::string encode_keepalive_frame(FrameType type, std::uint64_t token) {
  std::string body;
  put_u8(body, static_cast<std::uint8_t>(type));
  put_u64(body, token);
  return with_length_prefix(body);
}

std::optional<std::uint64_t> parse_keepalive_body(const std::uint8_t* body, std::size_t size,
                                                  FrameType type) noexcept {
  if (size != kKeepaliveBodySize || body[0] != static_cast<std::uint8_t>(type)) {
    return std::nullopt;
  }
  std::uint64_t token = 0;
  for (int i = 0; i < 8; ++i) token |= static_cast<std::uint64_t>(body[1 + i]) << (8 * i);
  return token;
}

void send_hello(Socket& sock) {
  std::string hello(kRpcMagic, sizeof(kRpcMagic));
  put_u32(hello, kRpcVersion);
  sock.send_all(hello.data(), hello.size());
}

bool expect_hello(Socket& sock) {
  std::uint8_t hello[sizeof(kRpcMagic) + 4];
  if (!sock.recv_exact(hello, sizeof(hello))) return false;
  if (std::memcmp(hello, kRpcMagic, sizeof(kRpcMagic)) != 0) {
    fail("bad hello magic (not an ncpm-rpc peer)");
  }
  std::uint32_t version = 0;
  for (int i = 0; i < 4; ++i) {
    version |= static_cast<std::uint32_t>(hello[sizeof(kRpcMagic) + i]) << (8 * i);
  }
  if (version != kRpcVersion) fail("unsupported rpc version " + std::to_string(version));
  return true;
}

bool read_frame_body(Socket& sock, std::vector<std::uint8_t>& body) {
  std::uint8_t lbytes[4];
  if (!sock.recv_exact(lbytes, sizeof(lbytes))) return false;
  std::uint32_t size = 0;
  for (int i = 0; i < 4; ++i) size |= static_cast<std::uint32_t>(lbytes[i]) << (8 * i);
  if (size > kMaxFrameBody) fail("frame body size out of range");
  body.clear();
  body.reserve(std::min<std::size_t>(size, kReadChunk));
  std::size_t remaining = size;
  while (remaining > 0) {
    const auto chunk = std::min<std::size_t>(remaining, kReadChunk);
    const auto old = body.size();
    body.resize(old + chunk);
    if (!sock.recv_exact(body.data() + old, chunk)) {
      throw NetError(NetErrc::kClosed, "peer closed the connection mid-frame");
    }
    remaining -= chunk;
  }
  return true;
}

}  // namespace ncpm::net
