#pragma once
// One nonblocking connection inside the epoll core: a Socket, a pure
// SessionFsm (the protocol brain), and the glue that turns epoll readiness,
// engine completions, and timer expiries into FSM events — then carries the
// FSM's requested actions out (dispatch into the engine, write to the
// socket, arm/cancel timers, tear down).
//
// Threading: every member function except deliver() runs on the owning
// EventLoop's thread, and deliver() immediately trampolines onto it (inline
// when already there, loop.post() from an engine worker — the eventfd wakes
// the loop). That single rule is what makes the whole session lock-free.

#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include "net/reactor.hpp"
#include "net/server_core.hpp"
#include "net/session_fsm.hpp"
#include "net/socket.hpp"

namespace ncpm::net {

class Session : public FdHandler, public std::enable_shared_from_this<Session> {
 public:
  /// `on_closed` runs on the loop thread, exactly once, after the socket is
  /// closed and the fd/timers are deregistered — the core uses it to drop
  /// its owning shared_ptr and decrement the live-session count.
  Session(Socket sock, EventLoop& loop, const ServerConfig& config, engine::Engine& engine,
          detail::ServerObs& obs,
          std::function<void(const std::shared_ptr<Session>&)> on_closed);
  ~Session() override = default;

  /// Loop thread. Make the socket nonblocking, register it (EPOLLIN), arm
  /// the idle timer, count the connection.
  void open();
  /// Loop thread. Server stop(): no further reads; flush every admitted
  /// response, then close (SessionCloseReason::kDrained). Idempotent.
  void begin_drain();
  /// Loop thread (EventLoop dispatch). Readiness on the connection fd.
  void on_io(std::uint32_t events) override;

 private:
  /// Carry out one FSM action set: dispatch request bodies, count finished
  /// responses, arm/cancel the send-stall timer, tear down on close.
  void apply(SessionActions acts);
  /// Flush the write backlog until it drains, would-block, or fails.
  void pump_write();
  /// Reconcile epoll interest with what the FSM now wants.
  void sync_interest();
  /// Any thread: route one encoded response frame to the loop thread.
  void deliver(std::string frame);
  void handle_response(std::string frame);  // loop thread
  void arm_idle_timer(std::chrono::milliseconds delay);
  void on_idle_timer();
  void finish();

  Socket sock_;
  EventLoop& loop_;
  const ServerConfig& config_;
  engine::Engine& engine_;
  detail::ServerObs& obs_;
  std::function<void(const std::shared_ptr<Session>&)> on_closed_;
  SessionFsm fsm_;

  std::uint64_t conn_id_ = 0;  ///< assigned at open(); log/trace correlation key
  std::chrono::steady_clock::time_point accepted_{};

  std::uint32_t interest_ = 0;  ///< epoll events currently registered
  bool registered_ = false;
  bool finished_ = false;  ///< socket closed, fd/timers gone, on_closed_ ran
  EventLoop::TimerId send_timer_ = 0;
  EventLoop::TimerId idle_timer_ = 0;
  /// Armed once at open(), cancelled when the hello completes; its expiry
  /// reaps a connection that never finished the handshake.
  EventLoop::TimerId hello_timer_ = 0;
  std::chrono::steady_clock::time_point last_activity_{};
};

}  // namespace ncpm::net
