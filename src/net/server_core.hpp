#pragma once
// Internal seam between the net::Server facade and its two cores.
//
// The facade owns the engine, the config, and the observability state; a
// core owns the listener and the connection machinery. Two cores implement
// the same contract (docs/ncpm-rpc-v1.md): the PR 5 thread-per-connection
// core (server.cpp) and the epoll reactor core (reactor.cpp). The loopback /
// shutdown / backpressure tests in tests/net/ are parameterized over both,
// which is what keeps the contract byte-identical between them.
//
// Not installed, not included by client code — server.cpp, reactor.cpp and
// session.cpp only.

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "engine/engine.hpp"
#include "net/server.hpp"
#include "obs/log.hpp"
#include "obs/registry.hpp"
#include "obs/trace.hpp"

namespace ncpm::net::detail {

/// The facade's observability surface, shared with whichever core is live.
/// The counters/gauge are handles into the facade's obs::Registry (so the
/// same series serve ServerStats, the /metrics endpoint, and stats frames);
/// log and traces are the facade's event log and trace ring.
struct ServerObs {
  ServerObs(obs::Registry& registry_in, obs::Log& log_in, obs::Log& slow_log_in,
            obs::TraceRing& traces_in);
  ServerObs(const ServerObs&) = delete;
  ServerObs& operator=(const ServerObs&) = delete;

  obs::Registry& registry;
  obs::Log& log;
  /// Slow-request capture stream (ServerConfig::slow_request_ns); enabled by
  /// the facade whenever the threshold is nonzero, independent of log_json.
  obs::Log& slow_log;
  obs::TraceRing& traces;

  obs::Counter& connections_accepted;
  obs::Gauge& connections_active;
  obs::Counter& frames_received;
  obs::Counter& responses_sent;
  obs::Counter& malformed_frames;
  obs::Counter& overloaded_shed;
  obs::Counter& deadline_shed;
  obs::Counter& pings_answered;
  obs::Counter& hello_timeouts;
  obs::Counter& stats_frames_answered;
  obs::Counter& slow_requests;

  /// Monotone connection id source, both cores: the correlation key tying
  /// log lines and trace spans to one accepted socket.
  std::atomic<std::uint64_t> next_conn_id{1};
};

class ServerCoreImpl {
 public:
  ServerCoreImpl(const ServerConfig& config, engine::Engine& engine, ServerObs& obs)
      : config_(config), engine_(engine), obs_(obs) {}
  virtual ~ServerCoreImpl() = default;
  ServerCoreImpl(const ServerCoreImpl&) = delete;
  ServerCoreImpl& operator=(const ServerCoreImpl&) = delete;

  /// Bind + listen + spawn the core's threads. Throws NetError on bind
  /// failure. port() is valid afterwards.
  virtual void start() = 0;
  /// Stop accepting, unwind every connection, flush every admitted
  /// request's response, join every core thread. The facade drains the
  /// engine afterwards (nothing can submit once stop() returns).
  virtual void stop() = 0;

  std::uint16_t port() const noexcept { return port_; }

 protected:
  const ServerConfig& config_;
  engine::Engine& engine_;
  ServerObs& obs_;
  std::uint16_t port_ = 0;
};

/// Decode one request frame body and route it: protocol errors produce an
/// immediate error frame; everything else goes into the engine. `deliver`
/// receives the complete encoded response frame exactly once — possibly
/// synchronously (malformed payloads, unknown modes, shed requests, engine
/// rejection) or later from an engine worker thread, so it must be safe to
/// call from any thread. Two shedding gates run after the head decodes but
/// before the (comparatively expensive) instance payload does: a request
/// whose relative deadline already elapsed between receipt and dispatch is
/// answered kDeadlineExpired, and when config's global in-flight cap or
/// queue watermark is breached the request is answered kOverloaded — both
/// without touching the engine. Increments malformed_frames /
/// overloaded_shed / deadline_shed, emits shed/malformed log events, and
/// commits a trace span when this request was sampled; the caller owns
/// frames_received (counted at receipt, before any slot wait — PR 5 counted
/// frames a broken connection later dropped) and responses_sent (a response
/// only counts once it is on the wire). `conn_id` and `accepted` identify
/// the connection for log correlation and the span's accept timestamp.
void dispatch_request(engine::Engine& engine, ServerObs& obs, const ServerConfig& config,
                      const std::vector<std::uint8_t>& body,
                      std::chrono::steady_clock::time_point receipt, std::uint64_t conn_id,
                      std::chrono::steady_clock::time_point accepted,
                      std::function<void(std::string)> deliver);

std::unique_ptr<ServerCoreImpl> make_threads_core(const ServerConfig& config,
                                                  engine::Engine& engine, ServerObs& obs);
std::unique_ptr<ServerCoreImpl> make_epoll_core(const ServerConfig& config,
                                                engine::Engine& engine, ServerObs& obs);

}  // namespace ncpm::net::detail
