#pragma once
// Internal seam between the net::Server facade and its two cores.
//
// The facade owns the engine, the config, and the stats counters; a core
// owns the listener and the connection machinery. Two cores implement the
// same contract (docs/ncpm-rpc-v1.md): the PR 5 thread-per-connection core
// (server.cpp) and the epoll reactor core (reactor.cpp). The loopback /
// shutdown / backpressure tests in tests/net/ are parameterized over both,
// which is what keeps the contract byte-identical between them.
//
// Not installed, not included by client code — server.cpp and reactor.cpp
// only.

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "engine/engine.hpp"
#include "net/server.hpp"

namespace ncpm::net::detail {

/// Shared atomic stats, written by whichever core is live.
struct ServerCounters {
  std::atomic<std::uint64_t> connections_accepted{0};
  std::atomic<std::uint64_t> connections_active{0};
  std::atomic<std::uint64_t> frames_received{0};
  std::atomic<std::uint64_t> responses_sent{0};
  std::atomic<std::uint64_t> malformed_frames{0};
  std::atomic<std::uint64_t> overloaded_shed{0};
  std::atomic<std::uint64_t> deadline_shed{0};
  std::atomic<std::uint64_t> pings_answered{0};
  std::atomic<std::uint64_t> hello_timeouts{0};
};

class ServerCoreImpl {
 public:
  ServerCoreImpl(const ServerConfig& config, engine::Engine& engine, ServerCounters& counters)
      : config_(config), engine_(engine), counters_(counters) {}
  virtual ~ServerCoreImpl() = default;
  ServerCoreImpl(const ServerCoreImpl&) = delete;
  ServerCoreImpl& operator=(const ServerCoreImpl&) = delete;

  /// Bind + listen + spawn the core's threads. Throws NetError on bind
  /// failure. port() is valid afterwards.
  virtual void start() = 0;
  /// Stop accepting, unwind every connection, flush every admitted
  /// request's response, join every core thread. The facade drains the
  /// engine afterwards (nothing can submit once stop() returns).
  virtual void stop() = 0;

  std::uint16_t port() const noexcept { return port_; }

 protected:
  const ServerConfig& config_;
  engine::Engine& engine_;
  ServerCounters& counters_;
  std::uint16_t port_ = 0;
};

/// Decode one request frame body and route it: protocol errors produce an
/// immediate error frame; everything else goes into the engine. `deliver`
/// receives the complete encoded response frame exactly once — possibly
/// synchronously (malformed payloads, unknown modes, shed requests, engine
/// rejection) or later from an engine worker thread, so it must be safe to
/// call from any thread. Two shedding gates run after the head decodes but
/// before the (comparatively expensive) instance payload does: a request
/// whose relative deadline already elapsed between receipt and dispatch is
/// answered kDeadlineExpired, and when config's global in-flight cap or
/// queue watermark is breached the request is answered kOverloaded — both
/// without touching the engine. Increments malformed_frames /
/// overloaded_shed / deadline_shed; the caller owns frames_received
/// (counted at receipt, before any slot wait — PR 5 counted frames a broken
/// connection later dropped) and responses_sent (a response only counts
/// once it is on the wire).
void dispatch_request(engine::Engine& engine, ServerCounters& counters,
                      const ServerConfig& config, const std::vector<std::uint8_t>& body,
                      std::chrono::steady_clock::time_point receipt,
                      std::function<void(std::string)> deliver);

std::unique_ptr<ServerCoreImpl> make_threads_core(const ServerConfig& config,
                                                  engine::Engine& engine,
                                                  ServerCounters& counters);
std::unique_ptr<ServerCoreImpl> make_epoll_core(const ServerConfig& config,
                                                engine::Engine& engine,
                                                ServerCounters& counters);

}  // namespace ncpm::net::detail
