#pragma once
// Thin RAII wrapper over a POSIX TCP socket — the only file in the tree
// that touches <sys/socket.h>. No external dependencies, blocking I/O
// only; the server gets its concurrency from threads, not from an event
// loop, which keeps every read/write a straight-line bounds-checked call.
//
// Every failure throws NetError carrying a typed code, so callers (the
// client library in particular) can distinguish "could not connect" from
// "peer closed" from "timed out" without parsing message strings.

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>

namespace ncpm::net {

enum class NetErrc : std::uint8_t {
  kConnectFailed = 0,  ///< resolve/connect/bind/listen failed
  kTimeout,            ///< blocking operation exceeded its deadline
  kClosed,             ///< peer closed the connection mid-message
  kProtocol,           ///< peer spoke bytes that are not ncpm-rpc v1
  kIo,                 ///< any other socket-level failure
  kCircuitOpen,        ///< ResilientClient's circuit breaker refused the call
};

std::string_view net_errc_name(NetErrc code);

class NetError : public std::runtime_error {
 public:
  NetError(NetErrc code, const std::string& what)
      : std::runtime_error("net: " + what), code_(code) {}
  NetErrc code() const noexcept { return code_; }

 private:
  NetErrc code_;
};

class Socket {
 public:
  Socket() = default;
  explicit Socket(int fd) noexcept : fd_(fd) {}
  ~Socket();
  Socket(Socket&& other) noexcept;
  Socket& operator=(Socket&& other) noexcept;
  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;

  /// Resolve `host` (name or numeric) and connect within `timeout`
  /// (zero = block indefinitely). Throws NetError(kConnectFailed/kTimeout).
  static Socket connect_to(const std::string& host, std::uint16_t port,
                           std::chrono::milliseconds timeout);
  /// Bind + listen on `bind_address`:`port` (port 0 = ephemeral; read the
  /// outcome back with local_port()).
  static Socket listen_on(const std::string& bind_address, std::uint16_t port, int backlog);

  /// Block for the next connection. Throws NetError(kClosed) once the
  /// listening socket has been shut down, NetError(kIo) on other failures.
  Socket accept_connection() const;
  /// Nonblocking accept for a listener registered with an event loop:
  /// returns an invalid Socket (valid() == false) when no connection is
  /// pending. Throws like accept_connection() otherwise.
  Socket try_accept() const;
  std::uint16_t local_port() const;

  /// Toggle O_NONBLOCK — the reactor core drives every connection socket
  /// (and its listener) nonblocking; the threads core and the client keep
  /// blocking I/O.
  void set_nonblocking(bool on);

  /// Clamp the kernel receive buffer (SO_RCVBUF). Defeats receive-side
  /// autotuning — the chaos proxy uses it so a stalled relay makes the
  /// sender actually block instead of ballooning kernel buffers.
  void set_recv_buffer(std::size_t bytes);

  /// Zero cancels a previously set timeout.
  void set_recv_timeout(std::chrono::milliseconds timeout);
  /// Bounds how long send_all may block on a full TCP buffer (a peer that
  /// stopped reading); expiry throws NetError(kTimeout). Zero cancels.
  void set_send_timeout(std::chrono::milliseconds timeout);

  /// Write all `size` bytes (retrying partial writes). Throws
  /// NetError(kClosed) when the peer has gone, kIo otherwise.
  void send_all(const void* data, std::size_t size);
  /// Read exactly `size` bytes. Returns false on a clean EOF before the
  /// first byte; throws NetError(kClosed) on EOF mid-read, kTimeout when a
  /// recv timeout is set and expires, kIo on other failures.
  bool recv_exact(void* data, std::size_t size);

  /// Single nonblocking recv: > 0 bytes read, 0 on peer EOF, -1 when the
  /// socket has nothing to read right now (EAGAIN). Throws NetError
  /// (kClosed on reset, kIo otherwise) — never on would-block.
  std::ptrdiff_t recv_some(void* data, std::size_t size);
  /// Single nonblocking send: > 0 bytes accepted by the kernel, -1 when
  /// the send buffer is full (EAGAIN). Throws NetError(kClosed) when the
  /// peer is gone, kIo otherwise.
  std::ptrdiff_t send_some(const void* data, std::size_t size);

  bool valid() const noexcept { return fd_ >= 0; }
  int fd() const noexcept { return fd_; }

  /// shutdown(2) wakes threads blocked in accept/recv/send on this socket
  /// (closing the fd alone does not). Read side only: in-flight writes
  /// still flush, which is what a draining server wants.
  void shutdown_read() noexcept;
  /// Write side only: sends FIN while reads continue — the chaos proxy uses
  /// this to propagate one direction's EOF without killing the other.
  void shutdown_write() noexcept;
  void shutdown_both() noexcept;
  /// SO_LINGER {on, 0}: the eventual close() aborts the connection (RST to
  /// the peer) instead of the orderly FIN — the chaos proxy's "connection
  /// reset mid-frame" fault.
  void set_linger_reset() noexcept;
  void close() noexcept;

 private:
  int fd_ = -1;
};

}  // namespace ncpm::net
