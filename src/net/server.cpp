#include "net/server.hpp"

#include <condition_variable>
#include <deque>
#include <optional>
#include <thread>
#include <utility>
#include <vector>

#include "net/frame.hpp"
#include "net/metrics_http.hpp"
#include "net/server_core.hpp"
#include "net/socket.hpp"
#include "net/stats_frame.hpp"
#include "pram/simd.hpp"

namespace ncpm::net {

std::string_view server_core_name(ServerCoreKind core) {
  switch (core) {
    case ServerCoreKind::kThreads: return "threads";
    case ServerCoreKind::kEpoll: return "epoll";
  }
  return "unknown";
}

std::optional<ServerCoreKind> parse_server_core(std::string_view name) {
  if (name == "threads") return ServerCoreKind::kThreads;
  if (name == "epoll") return ServerCoreKind::kEpoll;
  return std::nullopt;
}

namespace detail {

ServerObs::ServerObs(obs::Registry& registry_in, obs::Log& log_in, obs::Log& slow_log_in,
                     obs::TraceRing& traces_in)
    : registry(registry_in),
      log(log_in),
      slow_log(slow_log_in),
      traces(traces_in),
      connections_accepted(registry.counter("ncpm_server_connections_accepted_total",
                                            "Connections accepted since start")),
      connections_active(
          registry.gauge("ncpm_server_connections_active", "Connections currently open")),
      frames_received(registry.counter("ncpm_server_frames_received_total",
                                       "Request frames read off the wire")),
      responses_sent(registry.counter("ncpm_server_responses_sent_total",
                                      "Response frames fully written")),
      malformed_frames(registry.counter("ncpm_server_malformed_frames_total",
                                        "Error responses that never reached the engine")),
      overloaded_shed(registry.counter("ncpm_server_overloaded_shed_total",
                                       "Requests shed kOverloaded by admission control")),
      deadline_shed(registry.counter("ncpm_server_deadline_shed_total",
                                     "Requests already expired before dispatch")),
      pings_answered(registry.counter("ncpm_server_pings_answered_total",
                                      "Keepalive pings answered inline")),
      hello_timeouts(registry.counter("ncpm_server_hello_timeouts_total",
                                      "Connections reaped before completing the hello")),
      stats_frames_answered(registry.counter("ncpm_server_stats_frames_total",
                                             "Stats probes answered inline")),
      slow_requests(registry.counter("ncpm_server_slow_requests_total",
                                     "Solves at or over slow_request_ns, logged")) {}

namespace {

std::uint64_t steady_ns(std::chrono::steady_clock::time_point tp) {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(tp.time_since_epoch()).count());
}

/// FNV-1a 64 over the request's instance payload — a stable fingerprint
/// tying a slow-request log line and its trace span to the exact bytes that
/// were slow, so an operator can replay the instance offline.
std::uint64_t fnv1a64(const std::uint8_t* data, std::size_t size) {
  std::uint64_t h = 14695981039346656037ull;
  for (std::size_t i = 0; i < size; ++i) {
    h ^= data[i];
    h *= 1099511628211ull;
  }
  return h;
}

/// 16 lowercase hex chars, same rendering as the trace span's JSON digest.
std::string hex64(std::uint64_t v) {
  constexpr char kHex[] = "0123456789abcdef";
  std::string out(16, '0');
  for (int i = 0; i < 16; ++i) out[i] = kHex[(v >> (60 - 4 * i)) & 0xf];
  return out;
}

}  // namespace

void dispatch_request(engine::Engine& engine, ServerObs& obs, const ServerConfig& config,
                      const std::vector<std::uint8_t>& body,
                      std::chrono::steady_clock::time_point receipt, std::uint64_t conn_id,
                      std::chrono::steady_clock::time_point accepted,
                      std::function<void(std::string)> deliver) {
  // Sampling decision per request, taken before the outcome is known so a
  // shed or malformed request is as likely to be traced as a served one.
  const bool sampled = obs.traces.should_sample();
  const std::uint64_t accept_ns = steady_ns(accepted);
  const std::uint64_t frame_read_ns = steady_ns(receipt);

  // Span for requests answered right here (no solve window: dispatch and
  // response collapse to "now").
  const auto commit_inline_span = [&](std::uint64_t request_id, std::uint8_t mode_raw,
                                      RpcStatus status) {
    if (!sampled) return;
    obs::TraceSpan span;
    span.request_id = request_id;
    span.conn_id = conn_id;
    span.mode = mode_raw;
    span.status = static_cast<std::uint8_t>(status);
    span.accept_ns = accept_ns;
    span.frame_read_ns = frame_read_ns;
    const std::uint64_t now = steady_ns(std::chrono::steady_clock::now());
    span.dispatch_ns = now;
    span.response_ns = now;
    obs.traces.commit(span);
  };

  RequestHead head;
  try {
    head = decode_request_head(body.data(), body.size());
  } catch (const std::exception& e) {
    obs.malformed_frames.add(1);
    if (obs.log.enabled()) {
      obs.log.event("malformed_frame", {{"conn_id", conn_id},
                                        {"request_id", std::uint64_t{0}},
                                        {"error", e.what()}});
    }
    commit_inline_span(0, kModeUnknown, RpcStatus::kMalformedFrame);
    deliver(encode_response_frame(
        make_error_response(0, kModeUnknown, RpcStatus::kMalformedFrame, e.what())));
    return;
  }

  if (head.mode_raw >= engine::kNumModes ||
      static_cast<engine::Mode>(head.mode_raw) == engine::Mode::kNextStable) {
    obs.malformed_frames.add(1);
    if (obs.log.enabled()) {
      obs.log.event("malformed_frame", {{"conn_id", conn_id},
                                        {"request_id", head.request_id},
                                        {"error", "unsupported mode tag"}});
    }
    commit_inline_span(head.request_id, head.mode_raw, RpcStatus::kUnsupportedMode);
    deliver(encode_response_frame(make_error_response(
        head.request_id, head.mode_raw, RpcStatus::kUnsupportedMode,
        "mode tag " + std::to_string(head.mode_raw) + " is not served over ncpm-rpc v1")));
    return;
  }

  // Shedding gates, after the head (we need the request id to answer) but
  // before the instance payload decodes — an overloaded server must not pay
  // instance validation for work it is about to refuse.
  if (head.deadline_ns > 0 &&
      std::chrono::steady_clock::now() >= receipt + std::chrono::nanoseconds(head.deadline_ns)) {
    obs.deadline_shed.add(1);
    if (obs.log.enabled()) {
      obs.log.event("shed_deadline",
                    {{"conn_id", conn_id}, {"request_id", head.request_id}});
    }
    commit_inline_span(head.request_id, head.mode_raw, RpcStatus::kDeadlineExpired);
    deliver(encode_response_frame(
        make_error_response(head.request_id, head.mode_raw, RpcStatus::kDeadlineExpired,
                            "deadline expired before dispatch")));
    return;
  }
  const bool over_cap = config.max_in_flight_global > 0 &&
                        engine.outstanding() >= config.max_in_flight_global;
  const bool over_watermark = config.overload_queue_watermark > 0 &&
                              engine.queue_depth() >= config.overload_queue_watermark;
  if (over_cap || over_watermark) {
    obs.overloaded_shed.add(1);
    if (obs.log.enabled()) {
      obs.log.event("shed_overload", {{"conn_id", conn_id},
                                      {"request_id", head.request_id},
                                      {"gate", over_cap ? "in-flight-cap" : "queue-watermark"}});
    }
    commit_inline_span(head.request_id, head.mode_raw, RpcStatus::kOverloaded);
    deliver(encode_response_frame(make_error_response(
        head.request_id, head.mode_raw, RpcStatus::kOverloaded,
        over_cap ? "server at its global in-flight cap; back off and retry"
                 : "engine queue past the overload watermark; back off and retry")));
    return;
  }

  // Fingerprint the instance payload when anyone downstream will want it (a
  // sampled span or a possible slow-request line); unsampled requests on a
  // server with slow capture off skip the hash entirely.
  const bool slow_capture = config.slow_request_ns > 0;
  const auto payload_bytes = static_cast<std::uint32_t>(
      body.size() > kRequestHeadSize ? body.size() - kRequestHeadSize : 0);
  const std::uint64_t instance_digest =
      (sampled || slow_capture) && payload_bytes > 0
          ? fnv1a64(body.data() + kRequestHeadSize, payload_bytes)
          : 0;

  std::optional<core::Instance> instance;
  const std::uint64_t decode_begin_ns = steady_ns(std::chrono::steady_clock::now());
  try {
    instance = decode_request_instance(body.data(), body.size());
  } catch (const std::exception& e) {
    // A malformed payload inside a well-delimited frame costs exactly one
    // error response; the connection (and its other requests) live on.
    obs.malformed_frames.add(1);
    if (obs.log.enabled()) {
      obs.log.event("malformed_frame", {{"conn_id", conn_id},
                                        {"request_id", head.request_id},
                                        {"error", e.what()}});
    }
    commit_inline_span(head.request_id, head.mode_raw, RpcStatus::kMalformedFrame);
    deliver(encode_response_frame(make_error_response(head.request_id, head.mode_raw,
                                                      RpcStatus::kMalformedFrame, e.what())));
    return;
  }

  auto request = engine::Request::popular(static_cast<engine::Mode>(head.mode_raw),
                                          std::move(*instance));
  // Wire-decode time is charged to the kDecode phase bucket: it happened
  // here, before the engine saw the request, but it is solve work a
  // phase-breakdown reader expects to see accounted.
  request.decode_ns = steady_ns(std::chrono::steady_clock::now()) - decode_begin_ns;
  if (head.deadline_ns > 0) {
    request.deadline = receipt + std::chrono::nanoseconds(head.deadline_ns);
  }

  const auto request_id = head.request_id;
  const auto mode_raw = head.mode_raw;
  const std::uint64_t slow_ns = config.slow_request_ns;
  detail::ServerObs* obs_ptr = &obs;  // outlives every engine callback (facade member)
  auto on_complete = [deliver, request_id, mode_raw, sampled, obs_ptr, conn_id, accept_ns,
                      frame_read_ns, instance_digest, payload_bytes,
                      slow_ns](engine::Result result) {
    // The engine records no per-request milestones; the span is
    // reconstructed here from the result's own timings: the callback runs
    // at (approximately) solve end, so solve_start = end - solve_time and
    // dispatch = solve_start - queue_latency.
    const auto solve_time_ns = static_cast<std::uint64_t>(result.solve_time.count());
    const auto queue_ns = static_cast<std::uint64_t>(result.queue_latency.count());
    obs::TraceSpan span;
    if (sampled) {
      const std::uint64_t end_ns = steady_ns(std::chrono::steady_clock::now());
      span.request_id = request_id;
      span.conn_id = conn_id;
      span.mode = mode_raw;
      span.status = static_cast<std::uint8_t>(to_rpc_status(result.status));
      span.accept_ns = accept_ns;
      span.frame_read_ns = frame_read_ns;
      span.solve_end_ns = end_ns;
      span.solve_start_ns = end_ns - solve_time_ns;
      span.dispatch_ns = span.solve_start_ns - queue_ns;
      span.instance_digest = instance_digest;
      span.payload_bytes = payload_bytes;
      span.phase_ns = result.phase_ns;
    }
    // Slow-request capture: one JSON line per served request whose solve
    // reached the threshold — enough to replay the instance (digest) and see
    // where the time went (phase breakdown) without any sampling luck.
    if (slow_ns > 0 && solve_time_ns >= slow_ns) {
      obs_ptr->slow_requests.add(1);
      if (obs_ptr->slow_log.enabled()) {
        const std::string digest_hex = hex64(instance_digest);
        const auto phase = [&result](obs::Phase p) {
          return result.phase_ns[static_cast<std::size_t>(p)];
        };
        obs_ptr->slow_log.event(
            "slow_request",
            {{"conn_id", conn_id},
             {"request_id", request_id},
             {"mode", engine::mode_name(static_cast<engine::Mode>(mode_raw))},
             {"status", engine::status_name(result.status)},
             {"instance_digest", std::string_view(digest_hex)},
             {"payload_bytes", std::uint64_t{payload_bytes}},
             {"queue_ns", queue_ns},
             {"solve_ns", solve_time_ns},
             {"simd", pram::simd_tier_name(pram::active_simd_tier())},
             {"decode_ns", phase(obs::Phase::kDecode)},
             {"reduced_graph_ns", phase(obs::Phase::kReducedGraph)},
             {"two_regular_ns", phase(obs::Phase::kTwoRegular)},
             {"euler_split_ns", phase(obs::Phase::kEulerSplit)},
             {"list_rank_ns", phase(obs::Phase::kListRank)},
             {"window_min_ns", phase(obs::Phase::kWindowMin)},
             {"compaction_ns", phase(obs::Phase::kCompaction)},
             {"gf2_rank_ns", phase(obs::Phase::kGf2Rank)},
             {"extract_ns", phase(obs::Phase::kExtract)},
             {"verify_ns", phase(obs::Phase::kVerify)}});
      }
    }
    std::string frame =
        encode_response_frame(make_response(request_id, mode_raw, std::move(result)));
    if (sampled) {
      span.response_ns = steady_ns(std::chrono::steady_clock::now());
      obs_ptr->traces.commit(span);
    }
    deliver(std::move(frame));
  };

  try {
    engine.submit(std::move(request), std::move(on_complete));
  } catch (const std::exception& e) {
    // Engine already shut down underneath us (external shutdown).
    commit_inline_span(request_id, mode_raw, RpcStatus::kRejected);
    deliver(encode_response_frame(
        make_error_response(request_id, mode_raw, RpcStatus::kRejected, e.what())));
  }
}

namespace {

// ---------------------------------------------------------------------------
// Threads core: the PR 5 reader/writer thread pair per connection, kept as
// the semantics reference. See the class comment in server.hpp.
// ---------------------------------------------------------------------------

class ThreadsCore final : public ServerCoreImpl {
 public:
  using ServerCoreImpl::ServerCoreImpl;
  ~ThreadsCore() override = default;

  void start() override;
  void stop() override;

 private:
  // Per-connection state. The socket is shared by the reader (recv) and
  // writer (send) threads — safe because each owns exactly one direction.
  // Lifetime: shared_ptr copies live in the reader/writer closures and in
  // every pending engine callback, so a Connection outlives its last
  // response even if the server's list drops it first.
  /// One outbound frame. Response frames count (slot release +
  /// responses_sent when written); pong frames ride the same queue but
  /// count as neither — keepalives are protocol-level traffic.
  struct OutMsg {
    std::string bytes;
    bool counts = true;
  };

  struct Connection {
    explicit Connection(Socket s) : sock(std::move(s)) {}

    Socket sock;
    std::uint64_t id = 0;  ///< from ServerObs::next_conn_id; log/trace correlation key
    std::chrono::steady_clock::time_point accepted{};
    std::thread reader;  ///< joined by the core (stop() or the reaper)
    std::thread writer;  ///< joined by the reader on its way out

    std::mutex mu;
    std::condition_variable write_cv;      ///< writer wakeup
    std::condition_variable in_flight_cv;  ///< backpressure + reader drain
    std::deque<OutMsg> write_queue;
    /// Admitted frames whose response has not yet been sent (or discarded on
    /// a broken connection). Invariant: every queued frame holds one slot,
    /// released by the writer after send_all — so the bound caps engine work
    /// *and* encoded-response memory per connection.
    std::size_t in_flight = 0;
    bool closing = false;  ///< no further frames will be queued
    bool broken = false;   ///< write side failed; queued frames are discarded

    std::atomic<bool> done{false};  ///< reader (and therefore writer) exited
  };

  void accept_loop();
  void reader_loop(std::shared_ptr<Connection> conn);
  void writer_loop(std::shared_ptr<Connection> conn);
  void handle_frame(const std::shared_ptr<Connection>& conn,
                    const std::vector<std::uint8_t>& body,
                    std::chrono::steady_clock::time_point receipt);
  void enqueue_frame(const std::shared_ptr<Connection>& conn, std::string frame,
                     bool counts = true);
  void reap_finished_locked();

  Socket listener_;
  std::thread accept_thread_;
  std::atomic<bool> stopping_{false};

  std::mutex conn_mu_;
  std::vector<std::shared_ptr<Connection>> connections_;
};

void ThreadsCore::start() {
  listener_ = Socket::listen_on(config_.bind_address, config_.port, config_.backlog);
  port_ = listener_.local_port();
  accept_thread_ = std::thread([this] { accept_loop(); });
}

void ThreadsCore::stop() {
  stopping_.store(true, std::memory_order_release);

  // 1. No new connections: wake the accept loop and join it.
  listener_.shutdown_both();
  if (accept_thread_.joinable()) accept_thread_.join();
  listener_.close();

  // 2. Unwind every connection. Shutting down only the read side turns the
  // reader's next recv into EOF while responses still flush: the reader
  // then waits for its in-flight requests, hands the writer the last
  // frames, joins it, and closes the socket.
  std::vector<std::shared_ptr<Connection>> connections;
  {
    std::lock_guard<std::mutex> lock(conn_mu_);
    connections.swap(connections_);
  }
  for (auto& conn : connections) {
    // conn->mu serialises this against the reader's own close() (a client
    // that disconnected right as stop() began): shutting down an fd the
    // reader has already closed (and the OS may have recycled) would be a
    // use-after-close. After close() the fd is -1 and this no-ops.
    std::lock_guard<std::mutex> lock(conn->mu);
    conn->sock.shutdown_read();
  }
  for (auto& conn : connections) {
    if (conn->reader.joinable()) conn->reader.join();
  }
}

void ThreadsCore::accept_loop() {
  for (;;) {
    Socket sock;
    try {
      sock = listener_.accept_connection();
    } catch (const NetError&) {
      // Listener shut down (stop()) or hard accept failure — either way the
      // accept loop is over; stop() handles the rest.
      return;
    }
    if (stopping_.load(std::memory_order_acquire)) return;
    // Connection setup can itself fail (thread exhaustion under a flood,
    // setsockopt on an fd the peer already reset). That costs this one
    // connection, never the accept loop or the process.
    try {
      if (config_.send_timeout.count() > 0) sock.set_send_timeout(config_.send_timeout);
      auto conn = std::make_shared<Connection>(std::move(sock));
      conn->id = obs_.next_conn_id.fetch_add(1, std::memory_order_relaxed);
      conn->accepted = std::chrono::steady_clock::now();
      conn->writer = std::thread([this, conn] { writer_loop(conn); });
      try {
        conn->reader = std::thread([this, conn] { reader_loop(conn); });
      } catch (...) {
        // Writer already runs; unwind it before dropping the connection.
        {
          std::lock_guard<std::mutex> lock(conn->mu);
          conn->closing = true;
        }
        conn->write_cv.notify_all();
        conn->writer.join();
        throw;
      }
      obs_.connections_accepted.add(1);
      obs_.connections_active.add(1);
      if (obs_.log.enabled()) {
        obs_.log.event("conn_open", {{"conn_id", conn->id}, {"core", "threads"}});
      }
      std::lock_guard<std::mutex> lock(conn_mu_);
      reap_finished_locked();
      connections_.push_back(std::move(conn));
    } catch (const std::exception&) {
      // The refused socket closes on scope exit; keep accepting.
    }
  }
}

/// Join and drop connections whose threads have already unwound (clients
/// that disconnected long before stop()), so a long-lived server does not
/// accumulate dead Connection records. Caller holds conn_mu_.
void ThreadsCore::reap_finished_locked() {
  auto it = connections_.begin();
  while (it != connections_.end()) {
    if ((*it)->done.load(std::memory_order_acquire)) {
      if ((*it)->reader.joinable()) (*it)->reader.join();
      it = connections_.erase(it);
    } else {
      ++it;
    }
  }
}

/// Queue one outbound frame. For a response (`counts`) the caller holds an
/// in_flight slot; on a broken connection the frame will never be sent, so
/// the slot is released here instead of by the writer. Pongs
/// (counts=false) hold no slot and are simply dropped when broken.
void ThreadsCore::enqueue_frame(const std::shared_ptr<Connection>& conn, std::string frame,
                                bool counts) {
  bool dropped = false;
  {
    std::lock_guard<std::mutex> lock(conn->mu);
    if (conn->broken) {
      if (counts) --conn->in_flight;
      dropped = true;
    } else {
      conn->write_queue.push_back(OutMsg{std::move(frame), counts});
    }
  }
  if (dropped) {
    if (counts) conn->in_flight_cv.notify_all();
  } else {
    conn->write_cv.notify_one();
  }
}

void ThreadsCore::handle_frame(const std::shared_ptr<Connection>& conn,
                               const std::vector<std::uint8_t>& body,
                               std::chrono::steady_clock::time_point receipt) {
  // Counted at receipt, before the slot wait — a frame read off the wire is
  // "received" even when a broken connection later drops it undispatched.
  obs_.frames_received.add(1);

  // Backpressure: every admitted frame — engine work or protocol error —
  // takes a slot the writer releases only after its response is sent. At
  // the bound the reader blocks here, stops pulling frames off the socket,
  // and TCP pushes back on the client.
  {
    std::unique_lock<std::mutex> lock(conn->mu);
    conn->in_flight_cv.wait(lock, [&] {
      return conn->in_flight < config_.max_in_flight_per_connection || conn->broken;
    });
    if (conn->broken) return;  // client is gone; drop the frame
    ++conn->in_flight;
  }
  dispatch_request(engine_, obs_, config_, body, receipt, conn->id, conn->accepted,
                   [this, conn](std::string frame) { enqueue_frame(conn, std::move(frame)); });
}

void ThreadsCore::reader_loop(std::shared_ptr<Connection> conn) {
  try {
    // Handshake liveness: the hello phase alone runs under a recv timeout,
    // so a connect()-and-say-nothing client cannot pin this thread forever.
    // Restored to blocking-forever once the stream is up — mid-stream
    // silence is legitimate (an idle client), and send_timeout still bounds
    // the write side.
    bool hello_ok;
    try {
      if (config_.hello_timeout.count() > 0) conn->sock.set_recv_timeout(config_.hello_timeout);
      hello_ok = expect_hello(conn->sock);
      if (config_.hello_timeout.count() > 0) {
        conn->sock.set_recv_timeout(std::chrono::milliseconds(0));
      }
    } catch (const NetError& e) {
      if (e.code() == NetErrc::kTimeout) {
        obs_.hello_timeouts.add(1);
      }
      throw;
    }
    if (hello_ok) {
      send_hello(conn->sock);
      std::vector<std::uint8_t> body;
      while (!stopping_.load(std::memory_order_acquire)) {
        if (!read_frame_body(conn->sock, body)) break;  // clean EOF
        // Keepalive pings are answered at the protocol layer: no dispatch,
        // no slot, not counted as a received request frame.
        if (const auto token = parse_keepalive_body(body.data(), body.size(), FrameType::kPing)) {
          obs_.pings_answered.add(1);
          enqueue_frame(conn, encode_keepalive_frame(FrameType::kPong, *token),
                        /*counts=*/false);
          continue;
        }
        // Stats requests likewise: answered inline from a registry snapshot,
        // no dispatch, no slot — a scrape cannot be starved by backpressure.
        if (const auto sreq = parse_stats_request_body(body.data(), body.size())) {
          obs_.stats_frames_answered.add(1);
          std::vector<obs::TraceSpan> spans;
          if ((sreq->flags & kStatsFlagTraces) != 0) spans = obs_.traces.snapshot();
          enqueue_frame(conn,
                        encode_stats_response_frame(sreq->token, obs_.registry.snapshot(),
                                                    spans),
                        /*counts=*/false);
          continue;
        }
        handle_frame(conn, body, std::chrono::steady_clock::now());
      }
    }
  } catch (const std::exception&) {
    // Broken framing, hello timeout, or socket failure: the stream cannot
    // be resynced, so fall through to teardown. Well-framed garbage never
    // lands here.
  }

  // Drain: every admitted frame's response must be sent (or discarded on a
  // broken connection) before the writer is told to finish. This wait
  // terminates: engine callbacks always fire (drain and abandon both
  // fulfil), and a client that stopped reading trips the send timeout,
  // which breaks the connection and releases every held slot.
  {
    std::unique_lock<std::mutex> lock(conn->mu);
    conn->in_flight_cv.wait(lock, [&] { return conn->in_flight == 0; });
    conn->closing = true;
  }
  conn->write_cv.notify_all();
  if (conn->writer.joinable()) conn->writer.join();
  {
    // Serialised against stop()'s shutdown_read on this same socket.
    std::lock_guard<std::mutex> lock(conn->mu);
    conn->sock.shutdown_both();
    conn->sock.close();
  }
  obs_.connections_active.add(-1);
  if (obs_.log.enabled()) obs_.log.event("conn_close", {{"conn_id", conn->id}});
  conn->done.store(true, std::memory_order_release);
}

void ThreadsCore::writer_loop(std::shared_ptr<Connection> conn) {
  for (;;) {
    OutMsg msg;
    {
      std::unique_lock<std::mutex> lock(conn->mu);
      // Once broken, only `closing` ends the loop (the queue stays empty).
      conn->write_cv.wait(lock, [&] {
        return conn->closing || (!conn->broken && !conn->write_queue.empty());
      });
      if (conn->broken || conn->write_queue.empty()) {
        if (conn->closing) return;
        continue;
      }
      msg = std::move(conn->write_queue.front());
      conn->write_queue.pop_front();
    }
    try {
      conn->sock.send_all(msg.bytes.data(), msg.bytes.size());
      if (msg.counts) {
        obs_.responses_sent.add(1);
        std::lock_guard<std::mutex> lock(conn->mu);
        --conn->in_flight;  // response delivered; the slot opens
      }
    } catch (const std::exception&) {
      // Client gone, or it stopped reading past the send timeout. Discard
      // everything queued — releasing every held slot (counting frames
      // only; pongs never took one) — and let the reader's waits (and
      // future enqueues) observe `broken`.
      std::lock_guard<std::mutex> lock(conn->mu);
      conn->broken = true;
      std::size_t held = msg.counts ? 1 : 0;
      for (const auto& queued : conn->write_queue) {
        if (queued.counts) ++held;
      }
      conn->in_flight -= held;
      conn->write_queue.clear();
    }
    conn->in_flight_cv.notify_all();
  }
}

}  // namespace

std::unique_ptr<ServerCoreImpl> make_threads_core(const ServerConfig& config,
                                                  engine::Engine& engine, ServerObs& obs) {
  return std::make_unique<ThreadsCore>(config, engine, obs);
}

}  // namespace detail

// ---------------------------------------------------------------------------
// Facade
// ---------------------------------------------------------------------------

namespace {

/// The engine registers its own metrics into whatever registry its config
/// points at; the server points it at the server's.
engine::EngineConfig with_registry(engine::EngineConfig ec, obs::Registry* registry) {
  ec.registry = registry;
  return ec;
}

}  // namespace

Server::Server(ServerConfig config)
    : config_(std::move(config)),
      registry_(std::make_unique<obs::Registry>()),
      log_(std::make_unique<obs::Log>()),
      slow_log_(std::make_unique<obs::Log>()),
      traces_(std::make_unique<obs::TraceRing>(config_.trace_ring_capacity,
                                               config_.trace_sample_n)),
      engine_(with_registry(config_.engine, registry_.get())),
      obs_(std::make_unique<detail::ServerObs>(*registry_, *log_, *slow_log_, *traces_)) {
  if (config_.max_in_flight_per_connection < 1) config_.max_in_flight_per_connection = 1;
  if (config_.log_json) log_->enable(config_.log_sink);
  // Slow-request capture rides its own log stream, on whenever the
  // threshold is set — production keeps lifecycle logging off while still
  // recording outliers.
  if (config_.slow_request_ns > 0) slow_log_->enable(config_.slow_log_sink);
}

Server::~Server() { stop(); }

std::uint16_t Server::port() const noexcept { return core_ ? core_->port() : 0; }

std::uint16_t Server::metrics_port() const noexcept { return metrics_ ? metrics_->port() : 0; }

obs::Registry& Server::registry() noexcept { return *registry_; }

void Server::start() {
  if (running_.load(std::memory_order_acquire)) return;
  if (stopping_.load(std::memory_order_acquire)) {
    // The engine behind a stopped server is drained for good.
    throw NetError(NetErrc::kConnectFailed, "server is single-use; cannot restart after stop()");
  }
  core_ = config_.core == ServerCoreKind::kThreads
              ? detail::make_threads_core(config_, engine_, *obs_)
              : detail::make_epoll_core(config_, engine_, *obs_);
  core_->start();
  if (config_.metrics_port.has_value()) {
    try {
      // Readiness: serving (not draining) with admission headroom. Checked
      // per probe on the metrics loop thread — two atomic loads.
      auto ready_fn = [this] {
        if (stopping_.load(std::memory_order_acquire)) return false;
        return config_.max_in_flight_global == 0 ||
               engine_.outstanding() < config_.max_in_flight_global;
      };
      metrics_ = std::make_unique<MetricsHttpServer>(config_.bind_address, *config_.metrics_port,
                                                     *registry_, std::move(ready_fn));
      metrics_->start();
    } catch (...) {
      // The rpc port is already live; unwind it so a metrics bind failure
      // leaves nothing half-started.
      core_->stop();
      core_.reset();
      metrics_.reset();
      throw;
    }
  }
  if (log_->enabled()) {
    log_->event("server_start",
                {{"port", std::uint64_t{port()}},
                 {"core", server_core_name(config_.core)},
                 {"metrics_port", std::uint64_t{metrics_port()}}});
  }
  running_.store(true, std::memory_order_release);
}

void Server::stop() {
  std::lock_guard<std::mutex> stop_lock(stop_mu_);
  if (!running_.load(std::memory_order_acquire)) return;
  stopping_.store(true, std::memory_order_release);
  if (log_->enabled()) {
    log_->event("drain_begin", {{"uptime_ns", registry_->uptime_ns()}});
  }
  core_->stop();
  // Nothing can submit anymore; drain whatever the engine still holds. The
  // metrics endpoint outlives the drain on purpose: /healthz stays 200 and
  // /readyz reports 503 (stopping_ is set) for the whole drain window, so
  // an orchestrator watching the probes sees "alive but not ready" instead
  // of a vanished port.
  engine_.shutdown(engine::Engine::ShutdownMode::kDrain);
  if (metrics_) metrics_->stop();
  if (log_->enabled()) {
    log_->event("drain_end", {{"uptime_ns", registry_->uptime_ns()},
                              {"responses_sent", obs_->responses_sent.value()},
                              {"overloaded_shed", obs_->overloaded_shed.value()},
                              {"deadline_shed", obs_->deadline_shed.value()}});
  }
  running_.store(false, std::memory_order_release);
}

ServerStats Server::stats() const {
  ServerStats s;
  s.connections_accepted = obs_->connections_accepted.value();
  s.connections_active = static_cast<std::uint64_t>(obs_->connections_active.value());
  s.frames_received = obs_->frames_received.value();
  s.responses_sent = obs_->responses_sent.value();
  s.malformed_frames = obs_->malformed_frames.value();
  s.overloaded_shed = obs_->overloaded_shed.value();
  s.deadline_shed = obs_->deadline_shed.value();
  s.pings_answered = obs_->pings_answered.value();
  s.hello_timeouts = obs_->hello_timeouts.value();
  s.stats_frames_answered = obs_->stats_frames_answered.value();
  s.slow_requests = obs_->slow_requests.value();
  return s;
}

}  // namespace ncpm::net
