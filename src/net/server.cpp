#include "net/server.hpp"

#include <condition_variable>
#include <deque>
#include <optional>
#include <thread>
#include <utility>
#include <vector>

#include "net/frame.hpp"
#include "net/server_core.hpp"
#include "net/socket.hpp"

namespace ncpm::net {

std::string_view server_core_name(ServerCoreKind core) {
  switch (core) {
    case ServerCoreKind::kThreads: return "threads";
    case ServerCoreKind::kEpoll: return "epoll";
  }
  return "unknown";
}

std::optional<ServerCoreKind> parse_server_core(std::string_view name) {
  if (name == "threads") return ServerCoreKind::kThreads;
  if (name == "epoll") return ServerCoreKind::kEpoll;
  return std::nullopt;
}

namespace detail {

void dispatch_request(engine::Engine& engine, ServerCounters& counters,
                      const ServerConfig& config, const std::vector<std::uint8_t>& body,
                      std::chrono::steady_clock::time_point receipt,
                      std::function<void(std::string)> deliver) {
  RequestHead head;
  try {
    head = decode_request_head(body.data(), body.size());
  } catch (const std::exception& e) {
    counters.malformed_frames.fetch_add(1, std::memory_order_relaxed);
    deliver(encode_response_frame(
        make_error_response(0, kModeUnknown, RpcStatus::kMalformedFrame, e.what())));
    return;
  }

  if (head.mode_raw >= engine::kNumModes ||
      static_cast<engine::Mode>(head.mode_raw) == engine::Mode::kNextStable) {
    counters.malformed_frames.fetch_add(1, std::memory_order_relaxed);
    deliver(encode_response_frame(make_error_response(
        head.request_id, head.mode_raw, RpcStatus::kUnsupportedMode,
        "mode tag " + std::to_string(head.mode_raw) + " is not served over ncpm-rpc v1")));
    return;
  }

  // Shedding gates, after the head (we need the request id to answer) but
  // before the instance payload decodes — an overloaded server must not pay
  // instance validation for work it is about to refuse.
  if (head.deadline_ns > 0 &&
      std::chrono::steady_clock::now() >= receipt + std::chrono::nanoseconds(head.deadline_ns)) {
    counters.deadline_shed.fetch_add(1, std::memory_order_relaxed);
    deliver(encode_response_frame(
        make_error_response(head.request_id, head.mode_raw, RpcStatus::kDeadlineExpired,
                            "deadline expired before dispatch")));
    return;
  }
  const bool over_cap = config.max_in_flight_global > 0 &&
                        engine.outstanding() >= config.max_in_flight_global;
  const bool over_watermark = config.overload_queue_watermark > 0 &&
                              engine.queue_depth() >= config.overload_queue_watermark;
  if (over_cap || over_watermark) {
    counters.overloaded_shed.fetch_add(1, std::memory_order_relaxed);
    deliver(encode_response_frame(make_error_response(
        head.request_id, head.mode_raw, RpcStatus::kOverloaded,
        over_cap ? "server at its global in-flight cap; back off and retry"
                 : "engine queue past the overload watermark; back off and retry")));
    return;
  }

  std::optional<core::Instance> instance;
  try {
    instance = decode_request_instance(body.data(), body.size());
  } catch (const std::exception& e) {
    // A malformed payload inside a well-delimited frame costs exactly one
    // error response; the connection (and its other requests) live on.
    counters.malformed_frames.fetch_add(1, std::memory_order_relaxed);
    deliver(encode_response_frame(make_error_response(head.request_id, head.mode_raw,
                                                      RpcStatus::kMalformedFrame, e.what())));
    return;
  }

  auto request = engine::Request::popular(static_cast<engine::Mode>(head.mode_raw),
                                          std::move(*instance));
  if (head.deadline_ns > 0) {
    request.deadline = receipt + std::chrono::nanoseconds(head.deadline_ns);
  }

  const auto request_id = head.request_id;
  const auto mode_raw = head.mode_raw;
  auto on_complete = [deliver, request_id, mode_raw](engine::Result result) {
    deliver(encode_response_frame(make_response(request_id, mode_raw, std::move(result))));
  };

  try {
    engine.submit(std::move(request), std::move(on_complete));
  } catch (const std::exception& e) {
    // Engine already shut down underneath us (external shutdown).
    deliver(encode_response_frame(
        make_error_response(request_id, mode_raw, RpcStatus::kRejected, e.what())));
  }
}

namespace {

// ---------------------------------------------------------------------------
// Threads core: the PR 5 reader/writer thread pair per connection, kept as
// the semantics reference. See the class comment in server.hpp.
// ---------------------------------------------------------------------------

class ThreadsCore final : public ServerCoreImpl {
 public:
  using ServerCoreImpl::ServerCoreImpl;
  ~ThreadsCore() override = default;

  void start() override;
  void stop() override;

 private:
  // Per-connection state. The socket is shared by the reader (recv) and
  // writer (send) threads — safe because each owns exactly one direction.
  // Lifetime: shared_ptr copies live in the reader/writer closures and in
  // every pending engine callback, so a Connection outlives its last
  // response even if the server's list drops it first.
  /// One outbound frame. Response frames count (slot release +
  /// responses_sent when written); pong frames ride the same queue but
  /// count as neither — keepalives are protocol-level traffic.
  struct OutMsg {
    std::string bytes;
    bool counts = true;
  };

  struct Connection {
    explicit Connection(Socket s) : sock(std::move(s)) {}

    Socket sock;
    std::thread reader;  ///< joined by the core (stop() or the reaper)
    std::thread writer;  ///< joined by the reader on its way out

    std::mutex mu;
    std::condition_variable write_cv;      ///< writer wakeup
    std::condition_variable in_flight_cv;  ///< backpressure + reader drain
    std::deque<OutMsg> write_queue;
    /// Admitted frames whose response has not yet been sent (or discarded on
    /// a broken connection). Invariant: every queued frame holds one slot,
    /// released by the writer after send_all — so the bound caps engine work
    /// *and* encoded-response memory per connection.
    std::size_t in_flight = 0;
    bool closing = false;  ///< no further frames will be queued
    bool broken = false;   ///< write side failed; queued frames are discarded

    std::atomic<bool> done{false};  ///< reader (and therefore writer) exited
  };

  void accept_loop();
  void reader_loop(std::shared_ptr<Connection> conn);
  void writer_loop(std::shared_ptr<Connection> conn);
  void handle_frame(const std::shared_ptr<Connection>& conn,
                    const std::vector<std::uint8_t>& body,
                    std::chrono::steady_clock::time_point receipt);
  void enqueue_frame(const std::shared_ptr<Connection>& conn, std::string frame,
                     bool counts = true);
  void reap_finished_locked();

  Socket listener_;
  std::thread accept_thread_;
  std::atomic<bool> stopping_{false};

  std::mutex conn_mu_;
  std::vector<std::shared_ptr<Connection>> connections_;
};

void ThreadsCore::start() {
  listener_ = Socket::listen_on(config_.bind_address, config_.port, config_.backlog);
  port_ = listener_.local_port();
  accept_thread_ = std::thread([this] { accept_loop(); });
}

void ThreadsCore::stop() {
  stopping_.store(true, std::memory_order_release);

  // 1. No new connections: wake the accept loop and join it.
  listener_.shutdown_both();
  if (accept_thread_.joinable()) accept_thread_.join();
  listener_.close();

  // 2. Unwind every connection. Shutting down only the read side turns the
  // reader's next recv into EOF while responses still flush: the reader
  // then waits for its in-flight requests, hands the writer the last
  // frames, joins it, and closes the socket.
  std::vector<std::shared_ptr<Connection>> connections;
  {
    std::lock_guard<std::mutex> lock(conn_mu_);
    connections.swap(connections_);
  }
  for (auto& conn : connections) {
    // conn->mu serialises this against the reader's own close() (a client
    // that disconnected right as stop() began): shutting down an fd the
    // reader has already closed (and the OS may have recycled) would be a
    // use-after-close. After close() the fd is -1 and this no-ops.
    std::lock_guard<std::mutex> lock(conn->mu);
    conn->sock.shutdown_read();
  }
  for (auto& conn : connections) {
    if (conn->reader.joinable()) conn->reader.join();
  }
}

void ThreadsCore::accept_loop() {
  for (;;) {
    Socket sock;
    try {
      sock = listener_.accept_connection();
    } catch (const NetError&) {
      // Listener shut down (stop()) or hard accept failure — either way the
      // accept loop is over; stop() handles the rest.
      return;
    }
    if (stopping_.load(std::memory_order_acquire)) return;
    // Connection setup can itself fail (thread exhaustion under a flood,
    // setsockopt on an fd the peer already reset). That costs this one
    // connection, never the accept loop or the process.
    try {
      if (config_.send_timeout.count() > 0) sock.set_send_timeout(config_.send_timeout);
      auto conn = std::make_shared<Connection>(std::move(sock));
      conn->writer = std::thread([this, conn] { writer_loop(conn); });
      try {
        conn->reader = std::thread([this, conn] { reader_loop(conn); });
      } catch (...) {
        // Writer already runs; unwind it before dropping the connection.
        {
          std::lock_guard<std::mutex> lock(conn->mu);
          conn->closing = true;
        }
        conn->write_cv.notify_all();
        conn->writer.join();
        throw;
      }
      counters_.connections_accepted.fetch_add(1, std::memory_order_relaxed);
      counters_.connections_active.fetch_add(1, std::memory_order_relaxed);
      std::lock_guard<std::mutex> lock(conn_mu_);
      reap_finished_locked();
      connections_.push_back(std::move(conn));
    } catch (const std::exception&) {
      // The refused socket closes on scope exit; keep accepting.
    }
  }
}

/// Join and drop connections whose threads have already unwound (clients
/// that disconnected long before stop()), so a long-lived server does not
/// accumulate dead Connection records. Caller holds conn_mu_.
void ThreadsCore::reap_finished_locked() {
  auto it = connections_.begin();
  while (it != connections_.end()) {
    if ((*it)->done.load(std::memory_order_acquire)) {
      if ((*it)->reader.joinable()) (*it)->reader.join();
      it = connections_.erase(it);
    } else {
      ++it;
    }
  }
}

/// Queue one outbound frame. For a response (`counts`) the caller holds an
/// in_flight slot; on a broken connection the frame will never be sent, so
/// the slot is released here instead of by the writer. Pongs
/// (counts=false) hold no slot and are simply dropped when broken.
void ThreadsCore::enqueue_frame(const std::shared_ptr<Connection>& conn, std::string frame,
                                bool counts) {
  bool dropped = false;
  {
    std::lock_guard<std::mutex> lock(conn->mu);
    if (conn->broken) {
      if (counts) --conn->in_flight;
      dropped = true;
    } else {
      conn->write_queue.push_back(OutMsg{std::move(frame), counts});
    }
  }
  if (dropped) {
    if (counts) conn->in_flight_cv.notify_all();
  } else {
    conn->write_cv.notify_one();
  }
}

void ThreadsCore::handle_frame(const std::shared_ptr<Connection>& conn,
                               const std::vector<std::uint8_t>& body,
                               std::chrono::steady_clock::time_point receipt) {
  // Counted at receipt, before the slot wait — a frame read off the wire is
  // "received" even when a broken connection later drops it undispatched.
  counters_.frames_received.fetch_add(1, std::memory_order_relaxed);

  // Backpressure: every admitted frame — engine work or protocol error —
  // takes a slot the writer releases only after its response is sent. At
  // the bound the reader blocks here, stops pulling frames off the socket,
  // and TCP pushes back on the client.
  {
    std::unique_lock<std::mutex> lock(conn->mu);
    conn->in_flight_cv.wait(lock, [&] {
      return conn->in_flight < config_.max_in_flight_per_connection || conn->broken;
    });
    if (conn->broken) return;  // client is gone; drop the frame
    ++conn->in_flight;
  }
  dispatch_request(engine_, counters_, config_, body, receipt,
                   [this, conn](std::string frame) { enqueue_frame(conn, std::move(frame)); });
}

void ThreadsCore::reader_loop(std::shared_ptr<Connection> conn) {
  try {
    // Handshake liveness: the hello phase alone runs under a recv timeout,
    // so a connect()-and-say-nothing client cannot pin this thread forever.
    // Restored to blocking-forever once the stream is up — mid-stream
    // silence is legitimate (an idle client), and send_timeout still bounds
    // the write side.
    bool hello_ok;
    try {
      if (config_.hello_timeout.count() > 0) conn->sock.set_recv_timeout(config_.hello_timeout);
      hello_ok = expect_hello(conn->sock);
      if (config_.hello_timeout.count() > 0) {
        conn->sock.set_recv_timeout(std::chrono::milliseconds(0));
      }
    } catch (const NetError& e) {
      if (e.code() == NetErrc::kTimeout) {
        counters_.hello_timeouts.fetch_add(1, std::memory_order_relaxed);
      }
      throw;
    }
    if (hello_ok) {
      send_hello(conn->sock);
      std::vector<std::uint8_t> body;
      while (!stopping_.load(std::memory_order_acquire)) {
        if (!read_frame_body(conn->sock, body)) break;  // clean EOF
        // Keepalive pings are answered at the protocol layer: no dispatch,
        // no slot, not counted as a received request frame.
        if (const auto token = parse_keepalive_body(body.data(), body.size(), FrameType::kPing)) {
          counters_.pings_answered.fetch_add(1, std::memory_order_relaxed);
          enqueue_frame(conn, encode_keepalive_frame(FrameType::kPong, *token),
                        /*counts=*/false);
          continue;
        }
        handle_frame(conn, body, std::chrono::steady_clock::now());
      }
    }
  } catch (const std::exception&) {
    // Broken framing, hello timeout, or socket failure: the stream cannot
    // be resynced, so fall through to teardown. Well-framed garbage never
    // lands here.
  }

  // Drain: every admitted frame's response must be sent (or discarded on a
  // broken connection) before the writer is told to finish. This wait
  // terminates: engine callbacks always fire (drain and abandon both
  // fulfil), and a client that stopped reading trips the send timeout,
  // which breaks the connection and releases every held slot.
  {
    std::unique_lock<std::mutex> lock(conn->mu);
    conn->in_flight_cv.wait(lock, [&] { return conn->in_flight == 0; });
    conn->closing = true;
  }
  conn->write_cv.notify_all();
  if (conn->writer.joinable()) conn->writer.join();
  {
    // Serialised against stop()'s shutdown_read on this same socket.
    std::lock_guard<std::mutex> lock(conn->mu);
    conn->sock.shutdown_both();
    conn->sock.close();
  }
  counters_.connections_active.fetch_sub(1, std::memory_order_relaxed);
  conn->done.store(true, std::memory_order_release);
}

void ThreadsCore::writer_loop(std::shared_ptr<Connection> conn) {
  for (;;) {
    OutMsg msg;
    {
      std::unique_lock<std::mutex> lock(conn->mu);
      // Once broken, only `closing` ends the loop (the queue stays empty).
      conn->write_cv.wait(lock, [&] {
        return conn->closing || (!conn->broken && !conn->write_queue.empty());
      });
      if (conn->broken || conn->write_queue.empty()) {
        if (conn->closing) return;
        continue;
      }
      msg = std::move(conn->write_queue.front());
      conn->write_queue.pop_front();
    }
    try {
      conn->sock.send_all(msg.bytes.data(), msg.bytes.size());
      if (msg.counts) {
        counters_.responses_sent.fetch_add(1, std::memory_order_relaxed);
        std::lock_guard<std::mutex> lock(conn->mu);
        --conn->in_flight;  // response delivered; the slot opens
      }
    } catch (const std::exception&) {
      // Client gone, or it stopped reading past the send timeout. Discard
      // everything queued — releasing every held slot (counting frames
      // only; pongs never took one) — and let the reader's waits (and
      // future enqueues) observe `broken`.
      std::lock_guard<std::mutex> lock(conn->mu);
      conn->broken = true;
      std::size_t held = msg.counts ? 1 : 0;
      for (const auto& queued : conn->write_queue) {
        if (queued.counts) ++held;
      }
      conn->in_flight -= held;
      conn->write_queue.clear();
    }
    conn->in_flight_cv.notify_all();
  }
}

}  // namespace

std::unique_ptr<ServerCoreImpl> make_threads_core(const ServerConfig& config,
                                                  engine::Engine& engine,
                                                  ServerCounters& counters) {
  return std::make_unique<ThreadsCore>(config, engine, counters);
}

}  // namespace detail

// ---------------------------------------------------------------------------
// Facade
// ---------------------------------------------------------------------------

Server::Server(ServerConfig config)
    : config_(std::move(config)),
      engine_(config_.engine),
      counters_(std::make_unique<detail::ServerCounters>()) {
  if (config_.max_in_flight_per_connection < 1) config_.max_in_flight_per_connection = 1;
}

Server::~Server() { stop(); }

std::uint16_t Server::port() const noexcept { return core_ ? core_->port() : 0; }

void Server::start() {
  if (running_.load(std::memory_order_acquire)) return;
  if (stopping_.load(std::memory_order_acquire)) {
    // The engine behind a stopped server is drained for good.
    throw NetError(NetErrc::kConnectFailed, "server is single-use; cannot restart after stop()");
  }
  core_ = config_.core == ServerCoreKind::kThreads
              ? detail::make_threads_core(config_, engine_, *counters_)
              : detail::make_epoll_core(config_, engine_, *counters_);
  core_->start();
  running_.store(true, std::memory_order_release);
}

void Server::stop() {
  std::lock_guard<std::mutex> stop_lock(stop_mu_);
  if (!running_.load(std::memory_order_acquire)) return;
  stopping_.store(true, std::memory_order_release);
  core_->stop();
  // Nothing can submit anymore; drain whatever the engine still holds.
  engine_.shutdown(engine::Engine::ShutdownMode::kDrain);
  running_.store(false, std::memory_order_release);
}

ServerStats Server::stats() const {
  ServerStats s;
  s.connections_accepted = counters_->connections_accepted.load(std::memory_order_relaxed);
  s.connections_active = counters_->connections_active.load(std::memory_order_relaxed);
  s.frames_received = counters_->frames_received.load(std::memory_order_relaxed);
  s.responses_sent = counters_->responses_sent.load(std::memory_order_relaxed);
  s.malformed_frames = counters_->malformed_frames.load(std::memory_order_relaxed);
  s.overloaded_shed = counters_->overloaded_shed.load(std::memory_order_relaxed);
  s.deadline_shed = counters_->deadline_shed.load(std::memory_order_relaxed);
  s.pings_answered = counters_->pings_answered.load(std::memory_order_relaxed);
  s.hello_timeouts = counters_->hello_timeouts.load(std::memory_order_relaxed);
  return s;
}

}  // namespace ncpm::net
