#include "net/server.hpp"

#include <condition_variable>
#include <deque>
#include <optional>
#include <thread>
#include <utility>
#include <vector>

#include "net/frame.hpp"
#include "net/server_core.hpp"
#include "net/socket.hpp"

namespace ncpm::net {

std::string_view server_core_name(ServerCoreKind core) {
  switch (core) {
    case ServerCoreKind::kThreads: return "threads";
    case ServerCoreKind::kEpoll: return "epoll";
  }
  return "unknown";
}

std::optional<ServerCoreKind> parse_server_core(std::string_view name) {
  if (name == "threads") return ServerCoreKind::kThreads;
  if (name == "epoll") return ServerCoreKind::kEpoll;
  return std::nullopt;
}

namespace detail {

void dispatch_request(engine::Engine& engine, ServerCounters& counters,
                      const std::vector<std::uint8_t>& body,
                      std::chrono::steady_clock::time_point receipt,
                      std::function<void(std::string)> deliver) {
  RequestHead head;
  try {
    head = decode_request_head(body.data(), body.size());
  } catch (const std::exception& e) {
    counters.malformed_frames.fetch_add(1, std::memory_order_relaxed);
    deliver(encode_response_frame(
        make_error_response(0, kModeUnknown, RpcStatus::kMalformedFrame, e.what())));
    return;
  }

  if (head.mode_raw >= engine::kNumModes ||
      static_cast<engine::Mode>(head.mode_raw) == engine::Mode::kNextStable) {
    counters.malformed_frames.fetch_add(1, std::memory_order_relaxed);
    deliver(encode_response_frame(make_error_response(
        head.request_id, head.mode_raw, RpcStatus::kUnsupportedMode,
        "mode tag " + std::to_string(head.mode_raw) + " is not served over ncpm-rpc v1")));
    return;
  }

  std::optional<core::Instance> instance;
  try {
    instance = decode_request_instance(body.data(), body.size());
  } catch (const std::exception& e) {
    // A malformed payload inside a well-delimited frame costs exactly one
    // error response; the connection (and its other requests) live on.
    counters.malformed_frames.fetch_add(1, std::memory_order_relaxed);
    deliver(encode_response_frame(make_error_response(head.request_id, head.mode_raw,
                                                      RpcStatus::kMalformedFrame, e.what())));
    return;
  }

  auto request = engine::Request::popular(static_cast<engine::Mode>(head.mode_raw),
                                          std::move(*instance));
  if (head.deadline_ns > 0) {
    request.deadline = receipt + std::chrono::nanoseconds(head.deadline_ns);
  }

  const auto request_id = head.request_id;
  const auto mode_raw = head.mode_raw;
  auto on_complete = [deliver, request_id, mode_raw](engine::Result result) {
    deliver(encode_response_frame(make_response(request_id, mode_raw, std::move(result))));
  };

  try {
    engine.submit(std::move(request), std::move(on_complete));
  } catch (const std::exception& e) {
    // Engine already shut down underneath us (external shutdown).
    deliver(encode_response_frame(
        make_error_response(request_id, mode_raw, RpcStatus::kRejected, e.what())));
  }
}

namespace {

// ---------------------------------------------------------------------------
// Threads core: the PR 5 reader/writer thread pair per connection, kept as
// the semantics reference. See the class comment in server.hpp.
// ---------------------------------------------------------------------------

class ThreadsCore final : public ServerCoreImpl {
 public:
  using ServerCoreImpl::ServerCoreImpl;
  ~ThreadsCore() override = default;

  void start() override;
  void stop() override;

 private:
  // Per-connection state. The socket is shared by the reader (recv) and
  // writer (send) threads — safe because each owns exactly one direction.
  // Lifetime: shared_ptr copies live in the reader/writer closures and in
  // every pending engine callback, so a Connection outlives its last
  // response even if the server's list drops it first.
  struct Connection {
    explicit Connection(Socket s) : sock(std::move(s)) {}

    Socket sock;
    std::thread reader;  ///< joined by the core (stop() or the reaper)
    std::thread writer;  ///< joined by the reader on its way out

    std::mutex mu;
    std::condition_variable write_cv;      ///< writer wakeup
    std::condition_variable in_flight_cv;  ///< backpressure + reader drain
    std::deque<std::string> write_queue;
    /// Admitted frames whose response has not yet been sent (or discarded on
    /// a broken connection). Invariant: every queued frame holds one slot,
    /// released by the writer after send_all — so the bound caps engine work
    /// *and* encoded-response memory per connection.
    std::size_t in_flight = 0;
    bool closing = false;  ///< no further frames will be queued
    bool broken = false;   ///< write side failed; queued frames are discarded

    std::atomic<bool> done{false};  ///< reader (and therefore writer) exited
  };

  void accept_loop();
  void reader_loop(std::shared_ptr<Connection> conn);
  void writer_loop(std::shared_ptr<Connection> conn);
  void handle_frame(const std::shared_ptr<Connection>& conn,
                    const std::vector<std::uint8_t>& body,
                    std::chrono::steady_clock::time_point receipt);
  void enqueue_frame(const std::shared_ptr<Connection>& conn, std::string frame);
  void reap_finished_locked();

  Socket listener_;
  std::thread accept_thread_;
  std::atomic<bool> stopping_{false};

  std::mutex conn_mu_;
  std::vector<std::shared_ptr<Connection>> connections_;
};

void ThreadsCore::start() {
  listener_ = Socket::listen_on(config_.bind_address, config_.port, config_.backlog);
  port_ = listener_.local_port();
  accept_thread_ = std::thread([this] { accept_loop(); });
}

void ThreadsCore::stop() {
  stopping_.store(true, std::memory_order_release);

  // 1. No new connections: wake the accept loop and join it.
  listener_.shutdown_both();
  if (accept_thread_.joinable()) accept_thread_.join();
  listener_.close();

  // 2. Unwind every connection. Shutting down only the read side turns the
  // reader's next recv into EOF while responses still flush: the reader
  // then waits for its in-flight requests, hands the writer the last
  // frames, joins it, and closes the socket.
  std::vector<std::shared_ptr<Connection>> connections;
  {
    std::lock_guard<std::mutex> lock(conn_mu_);
    connections.swap(connections_);
  }
  for (auto& conn : connections) {
    // conn->mu serialises this against the reader's own close() (a client
    // that disconnected right as stop() began): shutting down an fd the
    // reader has already closed (and the OS may have recycled) would be a
    // use-after-close. After close() the fd is -1 and this no-ops.
    std::lock_guard<std::mutex> lock(conn->mu);
    conn->sock.shutdown_read();
  }
  for (auto& conn : connections) {
    if (conn->reader.joinable()) conn->reader.join();
  }
}

void ThreadsCore::accept_loop() {
  for (;;) {
    Socket sock;
    try {
      sock = listener_.accept_connection();
    } catch (const NetError&) {
      // Listener shut down (stop()) or hard accept failure — either way the
      // accept loop is over; stop() handles the rest.
      return;
    }
    if (stopping_.load(std::memory_order_acquire)) return;
    // Connection setup can itself fail (thread exhaustion under a flood,
    // setsockopt on an fd the peer already reset). That costs this one
    // connection, never the accept loop or the process.
    try {
      if (config_.send_timeout.count() > 0) sock.set_send_timeout(config_.send_timeout);
      auto conn = std::make_shared<Connection>(std::move(sock));
      conn->writer = std::thread([this, conn] { writer_loop(conn); });
      try {
        conn->reader = std::thread([this, conn] { reader_loop(conn); });
      } catch (...) {
        // Writer already runs; unwind it before dropping the connection.
        {
          std::lock_guard<std::mutex> lock(conn->mu);
          conn->closing = true;
        }
        conn->write_cv.notify_all();
        conn->writer.join();
        throw;
      }
      counters_.connections_accepted.fetch_add(1, std::memory_order_relaxed);
      counters_.connections_active.fetch_add(1, std::memory_order_relaxed);
      std::lock_guard<std::mutex> lock(conn_mu_);
      reap_finished_locked();
      connections_.push_back(std::move(conn));
    } catch (const std::exception&) {
      // The refused socket closes on scope exit; keep accepting.
    }
  }
}

/// Join and drop connections whose threads have already unwound (clients
/// that disconnected long before stop()), so a long-lived server does not
/// accumulate dead Connection records. Caller holds conn_mu_.
void ThreadsCore::reap_finished_locked() {
  auto it = connections_.begin();
  while (it != connections_.end()) {
    if ((*it)->done.load(std::memory_order_acquire)) {
      if ((*it)->reader.joinable()) (*it)->reader.join();
      it = connections_.erase(it);
    } else {
      ++it;
    }
  }
}

/// Queue one response frame (the caller holds an in_flight slot for it).
/// On a broken connection the frame will never be sent, so the slot is
/// released here instead of by the writer.
void ThreadsCore::enqueue_frame(const std::shared_ptr<Connection>& conn, std::string frame) {
  bool dropped = false;
  {
    std::lock_guard<std::mutex> lock(conn->mu);
    if (conn->broken) {
      --conn->in_flight;
      dropped = true;
    } else {
      conn->write_queue.push_back(std::move(frame));
    }
  }
  if (dropped) {
    conn->in_flight_cv.notify_all();
  } else {
    conn->write_cv.notify_one();
  }
}

void ThreadsCore::handle_frame(const std::shared_ptr<Connection>& conn,
                               const std::vector<std::uint8_t>& body,
                               std::chrono::steady_clock::time_point receipt) {
  // Counted at receipt, before the slot wait — a frame read off the wire is
  // "received" even when a broken connection later drops it undispatched.
  counters_.frames_received.fetch_add(1, std::memory_order_relaxed);

  // Backpressure: every admitted frame — engine work or protocol error —
  // takes a slot the writer releases only after its response is sent. At
  // the bound the reader blocks here, stops pulling frames off the socket,
  // and TCP pushes back on the client.
  {
    std::unique_lock<std::mutex> lock(conn->mu);
    conn->in_flight_cv.wait(lock, [&] {
      return conn->in_flight < config_.max_in_flight_per_connection || conn->broken;
    });
    if (conn->broken) return;  // client is gone; drop the frame
    ++conn->in_flight;
  }
  dispatch_request(engine_, counters_, body, receipt,
                   [this, conn](std::string frame) { enqueue_frame(conn, std::move(frame)); });
}

void ThreadsCore::reader_loop(std::shared_ptr<Connection> conn) {
  try {
    if (expect_hello(conn->sock)) {
      send_hello(conn->sock);
      std::vector<std::uint8_t> body;
      while (!stopping_.load(std::memory_order_acquire)) {
        if (!read_frame_body(conn->sock, body)) break;  // clean EOF
        handle_frame(conn, body, std::chrono::steady_clock::now());
      }
    }
  } catch (const std::exception&) {
    // Broken framing or socket failure: the stream cannot be resynced, so
    // fall through to teardown. Well-framed garbage never lands here.
  }

  // Drain: every admitted frame's response must be sent (or discarded on a
  // broken connection) before the writer is told to finish. This wait
  // terminates: engine callbacks always fire (drain and abandon both
  // fulfil), and a client that stopped reading trips the send timeout,
  // which breaks the connection and releases every held slot.
  {
    std::unique_lock<std::mutex> lock(conn->mu);
    conn->in_flight_cv.wait(lock, [&] { return conn->in_flight == 0; });
    conn->closing = true;
  }
  conn->write_cv.notify_all();
  if (conn->writer.joinable()) conn->writer.join();
  {
    // Serialised against stop()'s shutdown_read on this same socket.
    std::lock_guard<std::mutex> lock(conn->mu);
    conn->sock.shutdown_both();
    conn->sock.close();
  }
  counters_.connections_active.fetch_sub(1, std::memory_order_relaxed);
  conn->done.store(true, std::memory_order_release);
}

void ThreadsCore::writer_loop(std::shared_ptr<Connection> conn) {
  for (;;) {
    std::string frame;
    {
      std::unique_lock<std::mutex> lock(conn->mu);
      // Once broken, only `closing` ends the loop (the queue stays empty).
      conn->write_cv.wait(lock, [&] {
        return conn->closing || (!conn->broken && !conn->write_queue.empty());
      });
      if (conn->broken || conn->write_queue.empty()) {
        if (conn->closing) return;
        continue;
      }
      frame = std::move(conn->write_queue.front());
      conn->write_queue.pop_front();
    }
    try {
      conn->sock.send_all(frame.data(), frame.size());
      counters_.responses_sent.fetch_add(1, std::memory_order_relaxed);
      {
        std::lock_guard<std::mutex> lock(conn->mu);
        --conn->in_flight;  // response delivered; the slot opens
      }
    } catch (const std::exception&) {
      // Client gone, or it stopped reading past the send timeout. Discard
      // everything queued — releasing every held slot, current frame
      // included — and let the reader's waits (and future enqueues)
      // observe `broken`.
      std::lock_guard<std::mutex> lock(conn->mu);
      conn->broken = true;
      conn->in_flight -= 1 + conn->write_queue.size();
      conn->write_queue.clear();
    }
    conn->in_flight_cv.notify_all();
  }
}

}  // namespace

std::unique_ptr<ServerCoreImpl> make_threads_core(const ServerConfig& config,
                                                  engine::Engine& engine,
                                                  ServerCounters& counters) {
  return std::make_unique<ThreadsCore>(config, engine, counters);
}

}  // namespace detail

// ---------------------------------------------------------------------------
// Facade
// ---------------------------------------------------------------------------

Server::Server(ServerConfig config)
    : config_(std::move(config)),
      engine_(config_.engine),
      counters_(std::make_unique<detail::ServerCounters>()) {
  if (config_.max_in_flight_per_connection < 1) config_.max_in_flight_per_connection = 1;
}

Server::~Server() { stop(); }

std::uint16_t Server::port() const noexcept { return core_ ? core_->port() : 0; }

void Server::start() {
  if (running_.load(std::memory_order_acquire)) return;
  if (stopping_.load(std::memory_order_acquire)) {
    // The engine behind a stopped server is drained for good.
    throw NetError(NetErrc::kConnectFailed, "server is single-use; cannot restart after stop()");
  }
  core_ = config_.core == ServerCoreKind::kThreads
              ? detail::make_threads_core(config_, engine_, *counters_)
              : detail::make_epoll_core(config_, engine_, *counters_);
  core_->start();
  running_.store(true, std::memory_order_release);
}

void Server::stop() {
  std::lock_guard<std::mutex> stop_lock(stop_mu_);
  if (!running_.load(std::memory_order_acquire)) return;
  stopping_.store(true, std::memory_order_release);
  core_->stop();
  // Nothing can submit anymore; drain whatever the engine still holds.
  engine_.shutdown(engine::Engine::ShutdownMode::kDrain);
  running_.store(false, std::memory_order_release);
}

ServerStats Server::stats() const {
  ServerStats s;
  s.connections_accepted = counters_->connections_accepted.load(std::memory_order_relaxed);
  s.connections_active = counters_->connections_active.load(std::memory_order_relaxed);
  s.frames_received = counters_->frames_received.load(std::memory_order_relaxed);
  s.responses_sent = counters_->responses_sent.load(std::memory_order_relaxed);
  s.malformed_frames = counters_->malformed_frames.load(std::memory_order_relaxed);
  return s;
}

}  // namespace ncpm::net
