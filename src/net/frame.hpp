#pragma once
// ncpm-rpc v1 — the framed request/response protocol the server speaks.
//
// A connection opens with a 12-byte hello in each direction (8-byte magic
// "NCPMRPC1" + u32 version, little-endian, client first). After that both
// directions carry length-prefixed frames:
//
//   frame    : u32 body_size, then body_size bytes of body
//   request  : u8 type = 1, u64 request_id, u8 mode, u64 deadline_ns,
//              then an ncpm-binary v1 instance record payload
//   response : u8 type = 2, u64 request_id, u8 mode (echoed; 0xff when the
//              request was unparseable), u8 status, u64 queue_ns,
//              u64 solve_ns, then a status/mode-dependent payload
//   ping     : u8 type = 3, u64 token (client -> server liveness probe)
//   pong     : u8 type = 4, u64 token echoed verbatim; answered at the
//              protocol layer, before the engine, without taking a slot
//   stats    : u8 type = 5, u64 token, u8 flags (client -> server metrics
//              probe); answered like ping — inline, slot-free
//   stats-r  : u8 type = 6, u64 token, then a versioned metrics snapshot
//              (net/stats_frame.hpp carries the codec)
//
// request_id is chosen by the client and echoed verbatim — responses may
// come back in any order (the server writes each one as its solve
// resolves), and the id is the only correlation key. deadline_ns is a
// relative budget from the moment the server reads the frame (client and
// server clocks never meet); 0 means no deadline. The instance payload is
// exactly io_binary's record payload (io::encode_instance_payload), so the
// socket protocol and the batch-file format share one serialisation.
//
// Response payloads: matching modes return u32 applicants, u64 size, then
// an ncpm-binary matching record payload; count returns u64; check returns
// a fixed 25-byte report; error statuses carry a UTF-8 message. The full
// byte-level tables live in docs/ncpm-rpc-v1.md.
//
// Framing errors vs payload errors: a frame whose length prefix or type is
// nonsense leaves the stream unsyncable and the connection must die, but a
// well-delimited frame whose *payload* fails to parse costs only an error
// response — the next frame proceeds normally. decode_request_head /
// decode_request_instance are split so the server can salvage the request
// id (for the error response) from a frame whose payload is garbage.

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "core/instance.hpp"
#include "engine/engine.hpp"
#include "matching/matching.hpp"
#include "net/socket.hpp"

namespace ncpm::net {

inline constexpr char kRpcMagic[8] = {'N', 'C', 'P', 'M', 'R', 'P', 'C', '1'};
inline constexpr std::uint32_t kRpcVersion = 1;
/// Hard cap on one frame body; same order as io_binary's record-payload cap.
inline constexpr std::uint32_t kMaxFrameBody = std::uint32_t{1} << 31;
/// Mode byte echoed when the request's own mode could not be parsed.
inline constexpr std::uint8_t kModeUnknown = 0xff;

enum class FrameType : std::uint8_t {
  kRequest = 1,
  kResponse = 2,
  kPing = 3,  ///< keepalive probe (client -> server): u8 type + u64 token
  kPong = 4,  ///< keepalive answer (server -> client): token echoed verbatim
  kStatsRequest = 5,   ///< metrics probe (client -> server): type + token + flags
  kStatsResponse = 6,  ///< metrics snapshot (server -> client), token echoed
};

/// Wire status of one response. The first six mirror engine::Status; the
/// rest are protocol-level failures that never reached the engine. The
/// retryability taxonomy lives in docs/ncpm-rpc-v1.md, "Failure semantics".
enum class RpcStatus : std::uint8_t {
  kOk = 0,
  kNoSolution = 1,
  kDeadlineExpired = 2,
  kCancelled = 3,
  kInvalidRequest = 4,
  kSolverError = 5,
  kRejected = 6,         ///< server shutting down before the request ran
  kMalformedFrame = 7,   ///< request frame or instance payload failed to parse
  kUnsupportedMode = 8,  ///< mode tag unknown or not served over rpc
  kOverloaded = 9,       ///< admission control shed the request; server is live — retry
};

std::string_view rpc_status_name(RpcStatus status);
RpcStatus to_rpc_status(engine::Status status);

/// Fixed-offset request prefix — parseable even when the payload is not.
struct RequestHead {
  std::uint64_t request_id = 0;
  std::uint8_t mode_raw = 0;
  std::uint64_t deadline_ns = 0;  ///< budget from server receipt; 0 = none
};
/// type + request_id + mode + deadline_ns.
inline constexpr std::size_t kRequestHeadSize = 1 + 8 + 1 + 8;
/// type + request_id + mode + status + queue_ns + solve_ns.
inline constexpr std::size_t kResponseHeadSize = 1 + 8 + 1 + 1 + 8 + 8;
/// type + token — a complete ping/pong body.
inline constexpr std::size_t kKeepaliveBodySize = 1 + 8;

/// One decoded response. Which optionals are populated follows the status
/// and mode: matching for kOk matching modes, count for kOk count, check
/// for kOk/kNoSolution check, error for the failure statuses.
struct ResponseFrame {
  std::uint64_t request_id = 0;
  std::uint8_t mode_raw = kModeUnknown;
  RpcStatus status = RpcStatus::kMalformedFrame;
  std::uint64_t queue_ns = 0;
  std::uint64_t solve_ns = 0;
  std::uint32_t applicants = 0;     ///< matching modes
  std::uint64_t matching_size = 0;  ///< matching modes (real posts only)
  std::optional<matching::Matching> matching;
  std::optional<std::uint64_t> count;
  std::optional<engine::CheckReport> check;
  std::string error;

  bool ok() const noexcept { return status == RpcStatus::kOk; }
  /// Valid engine mode, or nullopt when mode_raw is kModeUnknown/garbage.
  std::optional<engine::Mode> mode() const noexcept {
    if (mode_raw >= engine::kNumModes) return std::nullopt;
    return static_cast<engine::Mode>(mode_raw);
  }
};

/// Encoders return the complete wire bytes (u32 length prefix included).
std::string encode_request_frame(const RequestHead& head, const core::Instance& inst);
std::string encode_response_frame(const ResponseFrame& resp);
/// Build the response frame for one engine result (server write-back path).
ResponseFrame make_response(std::uint64_t request_id, std::uint8_t mode_raw,
                            engine::Result&& result);
/// Protocol-level error response that never touched the engine.
ResponseFrame make_error_response(std::uint64_t request_id, std::uint8_t mode_raw,
                                  RpcStatus status, std::string message);

/// Decoders take one frame body (length prefix stripped) and throw
/// NetError(kProtocol) on malformed head bytes; decode_request_instance
/// additionally propagates io-binary's std::runtime_error for a payload
/// that fails instance validation.
RequestHead decode_request_head(const std::uint8_t* body, std::size_t size);
core::Instance decode_request_instance(const std::uint8_t* body, std::size_t size);
ResponseFrame decode_response_frame(const std::uint8_t* body, std::size_t size);

/// Complete wire bytes (length prefix included) of a ping/pong keepalive
/// frame. `type` must be kPing or kPong.
std::string encode_keepalive_frame(FrameType type, std::uint64_t token);
/// The token when `body` is exactly a keepalive body of `type`; nullopt for
/// anything else (the server uses this to recognise pings without touching
/// the request decoder; it never throws).
std::optional<std::uint64_t> parse_keepalive_body(const std::uint8_t* body, std::size_t size,
                                                  FrameType type) noexcept;

/// Hello exchange. expect_hello returns false on a clean EOF before any
/// hello byte and throws NetError(kProtocol) on a magic/version mismatch.
void send_hello(Socket& sock);
bool expect_hello(Socket& sock);

/// Read one frame body into `body` (cleared first; length prefix consumed
/// and validated against kMaxFrameBody). Returns false on clean EOF at a
/// frame boundary; throws NetError on truncation or an oversized length.
bool read_frame_body(Socket& sock, std::vector<std::uint8_t>& body);

}  // namespace ncpm::net
