#include "net/resilient_client.hpp"

#include <algorithm>
#include <condition_variable>
#include <mutex>
#include <thread>
#include <utility>

namespace ncpm::net {

namespace {

std::uint64_t xorshift_next(std::uint64_t& state) {
  state ^= state >> 12;
  state ^= state << 25;
  state ^= state >> 27;
  return state * 0x2545f4914f6cdd1dULL;
}

ResponseFrame synthesized_deadline_expired() {
  ResponseFrame resp;
  resp.status = RpcStatus::kDeadlineExpired;
  resp.error = "deadline expired before any attempt succeeded";
  return resp;
}

}  // namespace

std::chrono::milliseconds backoff_with_jitter(const BackoffPolicy& policy, int attempt,
                                              std::uint64_t& rng_state) {
  if (rng_state == 0) rng_state = 0x9e3779b97f4a7c15ULL;
  double ceiling = static_cast<double>(policy.initial.count());
  for (int i = 0; i < attempt; ++i) {
    ceiling *= policy.multiplier;
    if (ceiling >= static_cast<double>(policy.max.count())) break;
  }
  const auto bound = std::min<std::uint64_t>(
      static_cast<std::uint64_t>(policy.max.count()),
      static_cast<std::uint64_t>(ceiling < 0 ? 0 : ceiling));
  if (bound == 0) return std::chrono::milliseconds(0);
  return std::chrono::milliseconds(xorshift_next(rng_state) % (bound + 1));
}

bool rpc_status_retryable(RpcStatus status) noexcept {
  return status == RpcStatus::kOverloaded || status == RpcStatus::kRejected ||
         status == RpcStatus::kMalformedFrame;
}

// ---------------------------------------------------------------------------
// CircuitBreaker
// ---------------------------------------------------------------------------

bool CircuitBreaker::allow(std::chrono::steady_clock::time_point now) {
  switch (state_) {
    case State::kClosed:
      return true;
    case State::kOpen:
      if (now - opened_at_ < config_.cooldown) return false;
      state_ = State::kHalfOpen;
      probe_in_flight_ = true;
      return true;
    case State::kHalfOpen:
      if (probe_in_flight_) return false;
      probe_in_flight_ = true;
      return true;
  }
  return false;
}

void CircuitBreaker::record_success() {
  state_ = State::kClosed;
  failures_ = 0;
  probe_in_flight_ = false;
}

void CircuitBreaker::record_failure(std::chrono::steady_clock::time_point now) {
  ++failures_;
  if (state_ == State::kHalfOpen) {
    // The probe failed: straight back to open, cooldown restarts.
    state_ = State::kOpen;
    probe_in_flight_ = false;
    opened_at_ = now;
    return;
  }
  if (state_ == State::kClosed && failures_ >= config_.failure_threshold) {
    state_ = State::kOpen;
    opened_at_ = now;
  }
}

// ---------------------------------------------------------------------------
// ResilientClient
// ---------------------------------------------------------------------------

ResilientClient::ResilientClient(std::string host, std::uint16_t port,
                                 ResilientClientConfig config)
    : host_(std::move(host)),
      port_(port),
      config_(config),
      breaker_(config.breaker),
      jitter_state_(config.jitter_seed == 0 ? 1 : config.jitter_seed) {
  if (config_.max_attempts < 1) config_.max_attempts = 1;
}

ResilientClient::Attempt ResilientClient::attempt_once(std::shared_ptr<Client>& conn,
                                                       engine::Mode mode,
                                                       const core::Instance& inst,
                                                       std::uint64_t server_deadline_ns,
                                                       std::chrono::milliseconds recv_budget) {
  Attempt out;
  try {
    if (!conn) {
      conn = std::make_shared<Client>(Client::connect(host_, port_, config_.client));
      out.redialled = true;
    }
    // Tighten the response wait to the remaining budget so a stalled server
    // cannot eat more of the deadline than the deadline has left.
    if (recv_budget.count() > 0 && (config_.client.recv_timeout.count() == 0 ||
                                    recv_budget < config_.client.recv_timeout)) {
      conn->socket().set_recv_timeout(recv_budget);
    }
    out.response = conn->call(mode, inst, server_deadline_ns);
  } catch (const NetError& e) {
    out.transport_error = e.code();
    out.error = e.what();
    conn.reset();  // the stream is unusable; the next attempt redials
  } catch (const std::exception& e) {
    out.transport_error = NetErrc::kIo;
    out.error = e.what();
    conn.reset();
  }
  return out;
}

ResilientClient::Attempt ResilientClient::attempt_hedged(engine::Mode mode,
                                                         const core::Instance& inst,
                                                         std::uint64_t server_deadline_ns,
                                                         std::chrono::milliseconds recv_budget) {
  // Shared scoreboard: each worker publishes its connection the moment it
  // has one (so the main thread can shut a straggler down) and its outcome
  // when done; the first usable response wins. Workers never touch stats_
  // or conn_ — the main thread reconciles both after joining, so there is
  // nothing to race on.
  struct Shared {
    std::mutex mu;
    std::condition_variable cv;
    std::shared_ptr<Client> conns[2];
    std::optional<Attempt> results[2];
  };
  auto shared = std::make_shared<Shared>();

  auto run = [this, shared, mode, &inst, server_deadline_ns, recv_budget](
                 int slot, std::shared_ptr<Client> conn) {
    Attempt out;
    if (!conn) {
      try {
        conn = std::make_shared<Client>(Client::connect(host_, port_, config_.client));
        out.redialled = true;
      } catch (const NetError& e) {
        out.transport_error = e.code();
        out.error = e.what();
      } catch (const std::exception& e) {
        out.transport_error = NetErrc::kIo;
        out.error = e.what();
      }
    }
    if (conn) {
      {
        std::lock_guard<std::mutex> lock(shared->mu);
        shared->conns[slot] = conn;
      }
      const bool redialled = out.redialled;
      out = attempt_once(conn, mode, inst, server_deadline_ns, recv_budget);
      out.redialled = redialled;
    }
    std::lock_guard<std::mutex> lock(shared->mu);
    shared->conns[slot] = std::move(conn);  // null when the attempt broke it
    shared->results[slot] = std::move(out);
    shared->cv.notify_all();
  };

  std::thread primary(run, 0, std::move(conn_));

  bool hedged = false;
  std::thread hedge;
  int winner = 0;
  {
    std::unique_lock<std::mutex> lock(shared->mu);
    if (!shared->cv.wait_for(lock, config_.hedge_delay,
                             [&] { return shared->results[0].has_value(); })) {
      // Primary is slow; race a second attempt on a fresh connection.
      hedged = true;
      lock.unlock();
      hedge = std::thread(run, 1, nullptr);
      lock.lock();
    }
    // Wake on the first usable (non-transport-error) outcome, or when every
    // launched attempt has reported in.
    auto usable = [&](int slot) {
      return shared->results[slot].has_value() && shared->results[slot]->response.has_value();
    };
    auto done = [&] {
      return shared->results[0].has_value() && (!hedged || shared->results[1].has_value());
    };
    shared->cv.wait(lock, [&] { return usable(0) || usable(1) || done(); });
    winner = usable(0) ? 0 : (usable(1) ? 1 : 0);
    // Unblock the straggler before joining it: shutting its socket down
    // turns its pending recv into an immediate error.
    const int loser = 1 - winner;
    if (hedged && !shared->results[loser].has_value() && shared->conns[loser]) {
      shared->conns[loser]->socket().shutdown_both();
    }
    shared->cv.wait(lock, done);
  }
  primary.join();
  if (hedge.joinable()) hedge.join();

  // Reconcile: adopt the winner's connection, close the loser's (a
  // connection whose response we abandoned has an orphan frame in flight —
  // unusable), fold the workers' counts into stats_.
  std::lock_guard<std::mutex> lock(shared->mu);
  if (hedged) {
    ++stats_.hedges_launched;
    ++stats_.attempts;  // the hedge's own wire attempt
    if (winner == 1) ++stats_.hedge_wins;
    const int loser = 1 - winner;
    if (shared->results[loser]->redialled) ++stats_.reconnects;
    if (shared->conns[loser]) shared->conns[loser]->close();
  }
  conn_ = std::move(shared->conns[winner]);
  return std::move(*shared->results[winner]);
}

ResponseFrame ResilientClient::call(engine::Mode mode, const core::Instance& inst,
                                    std::chrono::milliseconds deadline) {
  const auto started = std::chrono::steady_clock::now();
  const bool bounded = deadline.count() > 0;
  auto remaining_ms = [&]() -> std::chrono::milliseconds {
    if (!bounded) return std::chrono::milliseconds(0);
    const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
        std::chrono::steady_clock::now() - started);
    return deadline > elapsed ? deadline - elapsed : std::chrono::milliseconds(-1);
  };

  Attempt last;
  for (int attempt = 0; attempt < config_.max_attempts; ++attempt) {
    const auto budget = remaining_ms();
    if (bounded && budget.count() <= 0) return synthesized_deadline_expired();

    const auto now = std::chrono::steady_clock::now();
    if (!breaker_.allow(now)) {
      ++stats_.breaker_rejections;
      throw NetError(NetErrc::kCircuitOpen,
                     "circuit breaker open for " + host_ + ":" + std::to_string(port_));
    }
    if (attempt > 0) ++stats_.retries;

    const auto server_deadline_ns =
        bounded ? static_cast<std::uint64_t>(
                      std::chrono::duration_cast<std::chrono::nanoseconds>(budget).count())
                : 0;
    const bool hedge_this =
        config_.hedge_delay.count() > 0 && (!bounded || budget > config_.hedge_delay);
    last = hedge_this ? attempt_hedged(mode, inst, server_deadline_ns, budget)
                      : attempt_once(conn_, mode, inst, server_deadline_ns, budget);
    ++stats_.attempts;  // the primary wire attempt (attempt_hedged adds the hedge's)
    if (last.redialled) ++stats_.reconnects;

    if (last.response.has_value()) {
      if (!rpc_status_retryable(last.response->status)) {
        breaker_.record_success();
        return std::move(*last.response);
      }
      // Retryable wire status. kOverloaded/kRejected count against the
      // breaker — the endpoint is refusing work; a corrupted frame does
      // not, the endpoint answered fine.
      if (last.response->status != RpcStatus::kMalformedFrame) {
        breaker_.record_failure(std::chrono::steady_clock::now());
      }
    } else {
      breaker_.record_failure(std::chrono::steady_clock::now());
    }

    if (attempt + 1 >= config_.max_attempts) break;
    auto pause = backoff_with_jitter(config_.backoff, attempt, jitter_state_);
    if (bounded) pause = std::min(pause, remaining_ms());
    if (pause.count() > 0) std::this_thread::sleep_for(pause);
  }

  // Out of attempts: a retryable response is still a response; a transport
  // failure surfaces as the typed NetError of the final attempt.
  if (last.response.has_value()) return std::move(*last.response);
  if (bounded && remaining_ms().count() <= 0) return synthesized_deadline_expired();
  throw NetError(last.transport_error.value_or(NetErrc::kIo),
                 "all " + std::to_string(config_.max_attempts) + " attempts failed; last: " +
                     last.error);
}

StatsReply ResilientClient::scrape_stats(bool include_traces) {
  NetErrc last_code = NetErrc::kIo;
  std::string last_error;
  for (int attempt = 0; attempt < config_.max_attempts; ++attempt) {
    if (attempt > 0) {
      ++stats_.retries;
      const auto pause = backoff_with_jitter(config_.backoff, attempt - 1, jitter_state_);
      if (pause.count() > 0) std::this_thread::sleep_for(pause);
    }
    ++stats_.attempts;
    try {
      if (!conn_) {
        conn_ = std::make_shared<Client>(Client::connect(host_, port_, config_.client));
        ++stats_.reconnects;
      }
      return conn_->stats(include_traces);
    } catch (const NetError& e) {
      last_code = e.code();
      last_error = e.what();
      conn_.reset();  // the stream is unusable; the next attempt redials
    } catch (const std::exception& e) {
      last_code = NetErrc::kIo;
      last_error = e.what();
      conn_.reset();
    }
  }
  throw NetError(last_code, "stats scrape failed after " + std::to_string(config_.max_attempts) +
                                " attempts; last: " + last_error);
}

bool ResilientClient::healthy() noexcept {
  try {
    if (!conn_) {
      conn_ = std::make_shared<Client>(Client::connect(host_, port_, config_.client));
      ++stats_.reconnects;
    }
    conn_->ping();
    return true;
  } catch (const std::exception&) {
    conn_.reset();
    return false;
  }
}

}  // namespace ncpm::net
