#include "net/socket.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/types.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

namespace ncpm::net {

namespace {

[[noreturn]] void fail(NetErrc code, const std::string& what) {
  throw NetError(code, what + " (" + std::strerror(errno) + ")");
}

/// getaddrinfo wrapper; caller frees with freeaddrinfo.
addrinfo* resolve(const std::string& host, std::uint16_t port, bool passive) {
  addrinfo hints{};
  hints.ai_family = AF_UNSPEC;
  hints.ai_socktype = SOCK_STREAM;
  hints.ai_flags = passive ? AI_PASSIVE : 0;
  addrinfo* result = nullptr;
  const auto service = std::to_string(port);
  const int rc = ::getaddrinfo(host.empty() ? nullptr : host.c_str(), service.c_str(), &hints,
                               &result);
  if (rc != 0) {
    throw NetError(NetErrc::kConnectFailed,
                   "cannot resolve '" + host + "': " + ::gai_strerror(rc));
  }
  return result;
}

void set_fd_nonblocking(int fd, bool on) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0) fail(NetErrc::kIo, "fcntl(F_GETFL)");
  const int want = on ? (flags | O_NONBLOCK) : (flags & ~O_NONBLOCK);
  if (::fcntl(fd, F_SETFL, want) < 0) fail(NetErrc::kIo, "fcntl(F_SETFL)");
}

}  // namespace

std::string_view net_errc_name(NetErrc code) {
  switch (code) {
    case NetErrc::kConnectFailed: return "connect-failed";
    case NetErrc::kTimeout: return "timeout";
    case NetErrc::kClosed: return "closed";
    case NetErrc::kProtocol: return "protocol";
    case NetErrc::kIo: return "io";
    case NetErrc::kCircuitOpen: return "circuit-open";
  }
  return "unknown";
}

Socket::~Socket() { close(); }

Socket::Socket(Socket&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }

Socket& Socket::operator=(Socket&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

Socket Socket::connect_to(const std::string& host, std::uint16_t port,
                          std::chrono::milliseconds timeout) {
  addrinfo* addrs = resolve(host, port, /*passive=*/false);
  std::string last_error = "no addresses";
  for (addrinfo* ai = addrs; ai != nullptr; ai = ai->ai_next) {
    const int fd = ::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol);
    if (fd < 0) {
      last_error = std::strerror(errno);
      continue;
    }
    Socket sock(fd);
    // Connect with a deadline: non-blocking connect + poll for writability,
    // then read the outcome from SO_ERROR.
    if (timeout.count() > 0) set_fd_nonblocking(fd, true);
    int rc = ::connect(fd, ai->ai_addr, ai->ai_addrlen);
    if (rc < 0 && errno == EINPROGRESS && timeout.count() > 0) {
      pollfd pfd{fd, POLLOUT, 0};
      rc = ::poll(&pfd, 1, static_cast<int>(timeout.count()));
      if (rc == 0) {
        ::freeaddrinfo(addrs);
        throw NetError(NetErrc::kTimeout, "connect to " + host + " timed out");
      }
      int so_error = 0;
      socklen_t len = sizeof(so_error);
      if (rc < 0 || ::getsockopt(fd, SOL_SOCKET, SO_ERROR, &so_error, &len) < 0 ||
          so_error != 0) {
        last_error = std::strerror(so_error != 0 ? so_error : errno);
        continue;
      }
      rc = 0;
    }
    if (rc < 0) {
      last_error = std::strerror(errno);
      continue;
    }
    if (timeout.count() > 0) set_fd_nonblocking(fd, false);
    ::freeaddrinfo(addrs);
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    return sock;
  }
  ::freeaddrinfo(addrs);
  throw NetError(NetErrc::kConnectFailed, "cannot connect to " + host + ": " + last_error);
}

Socket Socket::listen_on(const std::string& bind_address, std::uint16_t port, int backlog) {
  addrinfo* addrs = resolve(bind_address, port, /*passive=*/true);
  std::string last_error = "no addresses";
  for (addrinfo* ai = addrs; ai != nullptr; ai = ai->ai_next) {
    const int fd = ::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol);
    if (fd < 0) {
      last_error = std::strerror(errno);
      continue;
    }
    Socket sock(fd);
    const int one = 1;
    ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    if (::bind(fd, ai->ai_addr, ai->ai_addrlen) < 0 || ::listen(fd, backlog) < 0) {
      last_error = std::strerror(errno);
      continue;
    }
    ::freeaddrinfo(addrs);
    return sock;
  }
  ::freeaddrinfo(addrs);
  throw NetError(NetErrc::kConnectFailed,
                 "cannot listen on " + bind_address + ":" + std::to_string(port) + ": " +
                     last_error);
}

Socket Socket::accept_connection() const {
  for (;;) {
    const int fd = ::accept(fd_, nullptr, nullptr);
    if (fd >= 0) {
      const int one = 1;
      ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
      return Socket(fd);
    }
    if (errno == EINTR) continue;
    // EINVAL is what Linux reports once the listener has been shut down —
    // the server's stop signal, not an I/O accident.
    if (errno == EINVAL || errno == EBADF) {
      throw NetError(NetErrc::kClosed, "listening socket shut down");
    }
    fail(NetErrc::kIo, "accept");
  }
}

Socket Socket::try_accept() const {
  for (;;) {
    const int fd = ::accept(fd_, nullptr, nullptr);
    if (fd >= 0) {
      const int one = 1;
      ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
      return Socket(fd);
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) return Socket();
    // A connection that was reset between arrival and accept costs nothing.
    if (errno == ECONNABORTED) continue;
    if (errno == EINVAL || errno == EBADF) {
      throw NetError(NetErrc::kClosed, "listening socket shut down");
    }
    fail(NetErrc::kIo, "accept");
  }
}

void Socket::set_nonblocking(bool on) { set_fd_nonblocking(fd_, on); }

std::ptrdiff_t Socket::recv_some(void* data, std::size_t size) {
  for (;;) {
    const ssize_t n = ::recv(fd_, data, size, 0);
    if (n >= 0) return n;
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) return -1;
    if (errno == ECONNRESET) {
      throw NetError(NetErrc::kClosed, "connection reset during recv");
    }
    fail(NetErrc::kIo, "recv");
  }
}

std::ptrdiff_t Socket::send_some(const void* data, std::size_t size) {
  for (;;) {
    const ssize_t n = ::send(fd_, data, size, MSG_NOSIGNAL);
    if (n >= 0) return n;
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) return -1;
    if (errno == EPIPE || errno == ECONNRESET) {
      throw NetError(NetErrc::kClosed, "peer closed the connection during send");
    }
    fail(NetErrc::kIo, "send");
  }
}

std::uint16_t Socket::local_port() const {
  sockaddr_storage addr{};
  socklen_t len = sizeof(addr);
  if (::getsockname(fd_, reinterpret_cast<sockaddr*>(&addr), &len) < 0) {
    fail(NetErrc::kIo, "getsockname");
  }
  if (addr.ss_family == AF_INET) {
    return ntohs(reinterpret_cast<const sockaddr_in*>(&addr)->sin_port);
  }
  if (addr.ss_family == AF_INET6) {
    return ntohs(reinterpret_cast<const sockaddr_in6*>(&addr)->sin6_port);
  }
  throw NetError(NetErrc::kIo, "unexpected socket family");
}

void Socket::set_recv_buffer(std::size_t bytes) {
  const int value = static_cast<int>(bytes);
  if (::setsockopt(fd_, SOL_SOCKET, SO_RCVBUF, &value, sizeof(value)) < 0) {
    fail(NetErrc::kIo, "setsockopt(SO_RCVBUF)");
  }
}

void Socket::set_recv_timeout(std::chrono::milliseconds timeout) {
  timeval tv{};
  tv.tv_sec = static_cast<time_t>(timeout.count() / 1000);
  tv.tv_usec = static_cast<suseconds_t>((timeout.count() % 1000) * 1000);
  if (::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv)) < 0) {
    fail(NetErrc::kIo, "setsockopt(SO_RCVTIMEO)");
  }
}

void Socket::set_send_timeout(std::chrono::milliseconds timeout) {
  timeval tv{};
  tv.tv_sec = static_cast<time_t>(timeout.count() / 1000);
  tv.tv_usec = static_cast<suseconds_t>((timeout.count() % 1000) * 1000);
  if (::setsockopt(fd_, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv)) < 0) {
    fail(NetErrc::kIo, "setsockopt(SO_SNDTIMEO)");
  }
}

void Socket::send_all(const void* data, std::size_t size) {
  const char* p = static_cast<const char*>(data);
  while (size > 0) {
    // MSG_NOSIGNAL: a vanished peer is an exception here, not a SIGPIPE.
    const ssize_t n = ::send(fd_, p, size, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        throw NetError(NetErrc::kTimeout, "send timed out");
      }
      if (errno == EPIPE || errno == ECONNRESET) {
        throw NetError(NetErrc::kClosed, "peer closed the connection during send");
      }
      fail(NetErrc::kIo, "send");
    }
    p += n;
    size -= static_cast<std::size_t>(n);
  }
}

bool Socket::recv_exact(void* data, std::size_t size) {
  char* p = static_cast<char*>(data);
  std::size_t got = 0;
  while (got < size) {
    const ssize_t n = ::recv(fd_, p + got, size - got, 0);
    if (n == 0) {
      if (got == 0) return false;  // clean EOF at a message boundary
      throw NetError(NetErrc::kClosed, "peer closed the connection mid-message");
    }
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        throw NetError(NetErrc::kTimeout, "recv timed out");
      }
      if (errno == ECONNRESET) {
        throw NetError(NetErrc::kClosed, "connection reset during recv");
      }
      fail(NetErrc::kIo, "recv");
    }
    got += static_cast<std::size_t>(n);
  }
  return true;
}

void Socket::shutdown_read() noexcept {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_RD);
}

void Socket::shutdown_write() noexcept {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_WR);
}

void Socket::shutdown_both() noexcept {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_RDWR);
}

void Socket::set_linger_reset() noexcept {
  if (fd_ < 0) return;
  linger lg{};
  lg.l_onoff = 1;
  lg.l_linger = 0;
  ::setsockopt(fd_, SOL_SOCKET, SO_LINGER, &lg, sizeof(lg));
}

void Socket::close() noexcept {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

}  // namespace ncpm::net
