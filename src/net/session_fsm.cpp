#include "net/session_fsm.hpp"

#include <algorithm>
#include <cstring>
#include <utility>

namespace ncpm::net {

namespace {

// The 12-byte ncpm-rpc v1 hello, both directions: 8-byte magic + u32
// version, little-endian. Mirrors net/frame.hpp (kRpcMagic / kRpcVersion);
// duplicated so this unit never includes socket or engine headers — the
// equality is pinned by tests/net/session_fsm_test.cpp.
constexpr std::uint8_t kHello[12] = {'N', 'C', 'P', 'M', 'R', 'P', 'C', '1', 1, 0, 0, 0};

// Keepalive recognition, same socket-free discipline as kHello: a ping is
// exactly a 9-byte body whose first byte is the ping frame type; anything
// else dispatches like any other frame (and earns a malformed-frame
// response from the server). Mirrors net/frame.hpp (FrameType::kPing/kPong,
// kKeepaliveBodySize); the equality is pinned by the conformance test.
constexpr std::size_t kKeepaliveBody = 9;
constexpr std::uint8_t kPingType = 3;
constexpr std::uint8_t kPongType = 4;

// Stats probes (frame type 5) get the same inline recognition: exactly a
// 10-byte body whose first byte is the stats-request type. Mirrors
// net/stats_frame.hpp (kStatsRequestBodySize / FrameType::kStatsRequest).
constexpr std::size_t kStatsBody = 10;
constexpr std::uint8_t kStatsRequestType = 5;

}  // namespace

std::string_view session_state_name(SessionState state) {
  switch (state) {
    case SessionState::kAwaitHello: return "await-hello";
    case SessionState::kReadHeader: return "read-header";
    case SessionState::kReadBody: return "read-body";
    case SessionState::kDispatched: return "dispatched";
    case SessionState::kWriteBacklog: return "write-backlog";
    case SessionState::kClosing: return "closing";
    case SessionState::kClosed: return "closed";
  }
  return "unknown";
}

std::string_view session_event_name(SessionEvent event) {
  switch (event) {
    case SessionEvent::kBytesIn: return "bytes-in";
    case SessionEvent::kResponseReady: return "response-ready";
    case SessionEvent::kWroteBytes: return "wrote-bytes";
    case SessionEvent::kWriteBlocked: return "write-blocked";
    case SessionEvent::kReadEof: return "read-eof";
    case SessionEvent::kPeerError: return "peer-error";
    case SessionEvent::kSendTimeout: return "send-timeout";
    case SessionEvent::kIdleTimeout: return "idle-timeout";
    case SessionEvent::kDrain: return "drain";
    case SessionEvent::kPingFrame: return "ping-frame";
    case SessionEvent::kHelloTimeout: return "hello-timeout";
    case SessionEvent::kStatsFrame: return "stats-frame";
  }
  return "unknown";
}

std::string_view session_close_reason_name(SessionCloseReason reason) {
  switch (reason) {
    case SessionCloseReason::kNone: return "none";
    case SessionCloseReason::kCleanEof: return "clean-eof";
    case SessionCloseReason::kProtocolError: return "protocol-error";
    case SessionCloseReason::kPeerError: return "peer-error";
    case SessionCloseReason::kSendTimeout: return "send-timeout";
    case SessionCloseReason::kIdleTimeout: return "idle-timeout";
    case SessionCloseReason::kDrained: return "drained";
    case SessionCloseReason::kHelloTimeout: return "hello-timeout";
  }
  return "unknown";
}

SessionFsm::SessionFsm(SessionFsmConfig config) : config_(config) {
  if (config_.max_in_flight < 1) config_.max_in_flight = 1;
}

SessionState SessionFsm::state() const noexcept {
  switch (phase_) {
    case Phase::kHello: return SessionState::kAwaitHello;
    case Phase::kClosing: return SessionState::kClosing;
    case Phase::kClosed: return SessionState::kClosed;
    case Phase::kStream: break;
  }
  if (write_blocked_) return SessionState::kWriteBacklog;
  if (in_flight_ >= config_.max_in_flight) return SessionState::kDispatched;
  return reading_body_ ? SessionState::kReadBody : SessionState::kReadHeader;
}

std::size_t SessionFsm::buffered_input() const noexcept { return input_.size() - input_pos_; }

bool SessionFsm::wants_read() const noexcept {
  const auto s = state();
  return s == SessionState::kAwaitHello || s == SessionState::kReadHeader ||
         s == SessionState::kReadBody;
}

bool SessionFsm::wants_write() const noexcept {
  return phase_ != Phase::kClosed && !backlog_.empty();
}

const char* SessionFsm::write_data() const noexcept {
  return backlog_.empty() ? nullptr : backlog_.front().bytes.data() + front_written_;
}

std::size_t SessionFsm::write_size() const noexcept {
  return backlog_.empty() ? 0 : backlog_.front().bytes.size() - front_written_;
}

SessionActions SessionFsm::reject() {
  SessionActions acts;
  acts.rejected = true;
  return acts;
}

void SessionFsm::push_backlog(std::string bytes, bool counts, SessionActions& acts) {
  if (backlog_.empty()) acts.arm_send_timer = true;
  backlog_bytes_ += bytes.size();
  backlog_.push_back(OutFrame{std::move(bytes), counts});
}

void SessionFsm::close_now(SessionCloseReason reason, SessionActions& acts) {
  if (!backlog_.empty()) acts.disarm_send_timer = true;
  phase_ = Phase::kClosed;
  close_reason_ = reason;
  write_blocked_ = false;
  in_flight_ = 0;
  queued_responses_ = 0;
  backlog_.clear();
  backlog_bytes_ = 0;
  front_written_ = 0;
  input_.clear();
  input_pos_ = 0;
  acts.close = true;
  acts.close_reason = reason;
}

void SessionFsm::enter_closing_or_close(SessionCloseReason reason, SessionActions& acts) {
  if (in_flight_ == 0 && backlog_.empty()) {
    close_now(reason, acts);
    return;
  }
  phase_ = Phase::kClosing;
  drain_reason_ = reason;
  // The read side is done for good: buffered frames that never reached the
  // in-flight bound are abandoned, exactly like unread socket bytes.
  input_.clear();
  input_pos_ = 0;
}

void SessionFsm::pump_input(SessionActions& acts) {
  for (;;) {
    const std::size_t avail = input_.size() - input_pos_;
    if (phase_ == Phase::kHello) {
      const std::size_t take = std::min(avail, sizeof(kHello) - hello_got_);
      // take can be 0 (pump re-entered with nothing buffered); data() may be
      // null then, and memcpy's pointers are declared nonnull even for n=0.
      if (take != 0) std::memcpy(hello_buf_ + hello_got_, input_.data() + input_pos_, take);
      hello_got_ += take;
      input_pos_ += take;
      if (hello_got_ < sizeof(kHello)) break;
      if (std::memcmp(hello_buf_, kHello, sizeof(kHello)) != 0) {
        acts.protocol_error = true;
        acts.error = "bad hello (magic/version mismatch)";
        close_now(SessionCloseReason::kProtocolError, acts);
        return;
      }
      acts.hello_ok = true;
      push_backlog(std::string(reinterpret_cast<const char*>(kHello), sizeof(kHello)),
                   /*counts=*/false, acts);
      phase_ = Phase::kStream;
      reading_body_ = false;
      continue;
    }
    if (phase_ != Phase::kStream || write_blocked_ || in_flight_ >= config_.max_in_flight) {
      break;
    }
    if (!reading_body_) {
      const std::size_t take = std::min(avail, sizeof(header_) - header_got_);
      if (take != 0) std::memcpy(header_ + header_got_, input_.data() + input_pos_, take);
      header_got_ += take;
      input_pos_ += take;
      if (header_got_ < sizeof(header_)) break;
      std::uint32_t len = 0;
      for (int i = 0; i < 4; ++i) len |= static_cast<std::uint32_t>(header_[i]) << (8 * i);
      header_got_ = 0;
      if (len > config_.max_frame_body) {
        acts.protocol_error = true;
        acts.error = "frame body length " + std::to_string(len) + " exceeds the cap";
        enter_closing_or_close(SessionCloseReason::kProtocolError, acts);
        return;
      }
      reading_body_ = true;
      body_needed_ = len;
      body_.clear();
      continue;
    }
    const std::size_t take = std::min(avail, body_needed_ - body_.size());
    body_.insert(body_.end(), input_.begin() + static_cast<std::ptrdiff_t>(input_pos_),
                 input_.begin() + static_cast<std::ptrdiff_t>(input_pos_ + take));
    input_pos_ += take;
    if (body_.size() < body_needed_) break;
    if (body_needed_ == kKeepaliveBody && body_[0] == kPingType) {
      // Protocol-level liveness: answered right here, before the driver or
      // the engine ever see it, without taking an in-flight slot.
      std::uint64_t token = 0;
      for (int i = 0; i < 8; ++i) {
        token |= static_cast<std::uint64_t>(body_[1 + static_cast<std::size_t>(i)]) << (8 * i);
      }
      body_.clear();
      reading_body_ = false;
      answer_ping(token, acts);
      continue;
    }
    if (body_needed_ == kStatsBody && body_[0] == kStatsRequestType) {
      // Stats probes are protocol-level like pings, but the snapshot lives
      // with the driver (the FSM owns no registry): surface the request and
      // let the driver answer via on_protocol_reply.
      SessionStatsRequest req;
      for (int i = 0; i < 8; ++i) {
        req.token |= static_cast<std::uint64_t>(body_[1 + static_cast<std::size_t>(i)])
                     << (8 * i);
      }
      req.flags = body_[9];
      body_.clear();
      reading_body_ = false;
      acts.stats_requests.push_back(req);
      continue;
    }
    ++in_flight_;
    acts.dispatch.push_back(std::move(body_));
    body_ = {};
    reading_body_ = false;
  }
  if (input_pos_ == input_.size()) {
    input_.clear();
    input_pos_ = 0;
  }
}

void SessionFsm::answer_ping(std::uint64_t token, SessionActions& acts) {
  std::string pong;
  pong.reserve(4 + kKeepaliveBody);
  for (int i = 0; i < 4; ++i) {
    pong.push_back(static_cast<char>((kKeepaliveBody >> (8 * i)) & 0xff));
  }
  pong.push_back(static_cast<char>(kPongType));
  for (int i = 0; i < 8; ++i) pong.push_back(static_cast<char>((token >> (8 * i)) & 0xff));
  push_backlog(std::move(pong), /*counts=*/false, acts);
  ++acts.pings_answered;
}

SessionActions SessionFsm::on_ping(std::uint64_t token) {
  // Frames cannot precede the hello, and a closing session's read side is
  // done for good — pump_input can only emit this event mid-stream.
  if (phase_ != Phase::kStream) return reject();
  SessionActions acts;
  answer_ping(token, acts);
  return acts;
}

SessionActions SessionFsm::on_stats(std::uint64_t token, std::uint8_t flags) {
  // Same validity window as on_ping: stats requests only exist mid-stream.
  if (phase_ != Phase::kStream) return reject();
  SessionActions acts;
  acts.stats_requests.push_back(SessionStatsRequest{token, flags});
  return acts;
}

SessionActions SessionFsm::on_protocol_reply(std::string frame) {
  // A stats reply rides the backlog with a pong's accounting: no slot, not
  // a response. A closing/closed session drops the reply — the probe's
  // connection is already dying and the scrape simply fails.
  if (phase_ != Phase::kStream) return reject();
  SessionActions acts;
  push_backlog(std::move(frame), /*counts=*/false, acts);
  return acts;
}

SessionActions SessionFsm::on_bytes(const std::uint8_t* data, std::size_t size) {
  if (phase_ == Phase::kClosed || phase_ == Phase::kClosing) return reject();
  SessionActions acts;
  input_.insert(input_.end(), data, data + size);
  pump_input(acts);
  return acts;
}

SessionActions SessionFsm::on_response(std::string frame) {
  // kHello: nothing can have been dispatched yet (in_flight is zero by
  // construction), so a response here is a caller bug. kClosed: the
  // write-after-close case — rejected, the frame is dropped.
  if (phase_ != Phase::kStream && phase_ != Phase::kClosing) return reject();
  // Responses are matched one-to-one with held slots. Accepting an excess
  // response would underflow in_flight_ when it finished writing, so a
  // driver delivering more responses than it dispatched is rejected here.
  if (queued_responses_ >= in_flight_) return reject();
  ++queued_responses_;
  SessionActions acts;
  push_backlog(std::move(frame), /*counts=*/true, acts);
  return acts;
}

SessionActions SessionFsm::on_wrote(std::size_t n) {
  if (phase_ != Phase::kStream && phase_ != Phase::kClosing) return reject();
  if (n == 0 || n > backlog_bytes_) return reject();
  SessionActions acts;
  write_blocked_ = false;
  backlog_bytes_ -= n;
  while (n > 0) {
    auto& front = backlog_.front();
    const std::size_t left = front.bytes.size() - front_written_;
    const std::size_t took = std::min(left, n);
    front_written_ += took;
    n -= took;
    if (front_written_ == front.bytes.size()) {
      if (front.counts) {
        ++acts.responses_completed;
        --in_flight_;
        --queued_responses_;
      }
      backlog_.pop_front();
      front_written_ = 0;
    }
  }
  if (backlog_.empty()) {
    acts.disarm_send_timer = true;
  } else {
    acts.arm_send_timer = true;  // progress restarts the stall clock
  }
  if (phase_ == Phase::kStream) {
    pump_input(acts);  // freed slots may admit buffered frames
  } else if (in_flight_ == 0 && backlog_.empty()) {
    close_now(drain_reason_, acts);
  }
  return acts;
}

SessionActions SessionFsm::on_event(SessionEvent event) {
  switch (event) {
    case SessionEvent::kBytesIn:
    case SessionEvent::kResponseReady:
    case SessionEvent::kWroteBytes:
    case SessionEvent::kPingFrame:
    case SessionEvent::kStatsFrame:
      return reject();  // payload-carrying events use their typed methods

    case SessionEvent::kWriteBlocked: {
      if ((phase_ != Phase::kStream && phase_ != Phase::kClosing) || backlog_.empty()) {
        return reject();
      }
      SessionActions acts;
      write_blocked_ = true;  // idempotent: repeated would-blocks are fine
      return acts;
    }

    case SessionEvent::kReadEof: {
      if (phase_ == Phase::kClosed) return reject();
      SessionActions acts;
      if (phase_ == Phase::kClosing) return acts;  // read side already done; ignored
      if (phase_ == Phase::kHello) {
        close_now(SessionCloseReason::kCleanEof, acts);
        return acts;
      }
      // EOF inside a frame (or with bytes the stream never completed) is a
      // truncation — a framing error. Either way, admitted requests still
      // flush before the connection dies.
      const bool mid_frame = reading_body_ || header_got_ > 0 || buffered_input() > 0;
      enter_closing_or_close(
          mid_frame ? SessionCloseReason::kProtocolError : SessionCloseReason::kCleanEof, acts);
      if (mid_frame) {
        acts.protocol_error = true;
        acts.error = "peer closed mid-frame";
      }
      return acts;
    }

    case SessionEvent::kPeerError: {
      if (phase_ == Phase::kClosed) return reject();
      SessionActions acts;
      close_now(SessionCloseReason::kPeerError, acts);
      return acts;
    }

    case SessionEvent::kSendTimeout: {
      if ((phase_ != Phase::kStream && phase_ != Phase::kClosing) || backlog_.empty()) {
        return reject();
      }
      SessionActions acts;
      close_now(SessionCloseReason::kSendTimeout, acts);
      return acts;
    }

    case SessionEvent::kIdleTimeout: {
      // Only a quiescent connection is reapable: nothing dispatched,
      // nothing to write, no partial frame. Anything else rejects and the
      // reactor re-arms the idle timer.
      if (phase_ == Phase::kHello) {
        SessionActions acts;
        close_now(SessionCloseReason::kIdleTimeout, acts);
        return acts;
      }
      if (phase_ != Phase::kStream || reading_body_ || header_got_ > 0 || in_flight_ > 0 ||
          !backlog_.empty() || buffered_input() > 0) {
        return reject();
      }
      SessionActions acts;
      close_now(SessionCloseReason::kIdleTimeout, acts);
      return acts;
    }

    case SessionEvent::kDrain: {
      if (phase_ == Phase::kClosed) return reject();
      SessionActions acts;
      if (phase_ == Phase::kClosing) return acts;  // already draining; ignored
      if (phase_ == Phase::kHello) {
        close_now(SessionCloseReason::kDrained, acts);
        return acts;
      }
      enter_closing_or_close(SessionCloseReason::kDrained, acts);
      return acts;
    }

    case SessionEvent::kHelloTimeout: {
      // Handshake liveness bound: reapable only while the hello (complete
      // or partial) is still outstanding. Once the stream is up the timer
      // is stale — the driver arms it once at accept and never re-arms.
      if (phase_ != Phase::kHello) return reject();
      SessionActions acts;
      close_now(SessionCloseReason::kHelloTimeout, acts);
      return acts;
    }
  }
  return reject();
}

}  // namespace ncpm::net
