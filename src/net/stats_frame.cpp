#include "net/stats_frame.hpp"

#include <limits>
#include <utility>

#include "net/frame.hpp"
#include "net/socket.hpp"

namespace ncpm::net {

namespace {

[[noreturn]] void fail(const std::string& what) { throw NetError(NetErrc::kProtocol, what); }

void put_u8(std::string& out, std::uint8_t v) { out.push_back(static_cast<char>(v)); }

void put_u16(std::string& out, std::uint16_t v) {
  for (int i = 0; i < 2; ++i) out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
}

void put_u32(std::string& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
}

void put_u64(std::string& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
}

void put_string(std::string& out, const std::string& s) {
  if (s.size() > std::numeric_limits<std::uint16_t>::max())
    fail("stats string exceeds the u16 length prefix");
  put_u16(out, static_cast<std::uint16_t>(s.size()));
  out.append(s);
}

void put_labels(std::string& out, const obs::Labels& labels) {
  if (labels.size() > std::numeric_limits<std::uint8_t>::max())
    fail("stats label set exceeds the u8 count prefix");
  put_u8(out, static_cast<std::uint8_t>(labels.size()));
  for (const auto& [k, v] : labels) {
    put_string(out, k);
    put_string(out, v);
  }
}

/// Bounds-checked little-endian cursor (mirror of frame.cpp's, private to
/// the stats codec).
class Cursor {
 public:
  Cursor(const std::uint8_t* data, std::size_t size) : data_(data), size_(size) {}

  std::uint8_t u8(const char* what) {
    need(1, what);
    return data_[pos_++];
  }
  std::uint16_t u16(const char* what) {
    need(2, what);
    std::uint16_t v = 0;
    for (int i = 0; i < 2; ++i)
      v = static_cast<std::uint16_t>(v | static_cast<std::uint16_t>(data_[pos_++]) << (8 * i));
    return v;
  }
  std::uint32_t u32(const char* what) {
    need(4, what);
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(data_[pos_++]) << (8 * i);
    return v;
  }
  std::uint64_t u64(const char* what) {
    need(8, what);
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(data_[pos_++]) << (8 * i);
    return v;
  }
  std::string str(const char* what) {
    const std::size_t n = u16(what);
    need(n, what);
    std::string s(reinterpret_cast<const char*>(data_ + pos_), n);
    pos_ += n;
    return s;
  }
  void finish(const char* what) const {
    if (pos_ != size_) fail(std::string("trailing bytes in ") + what);
  }

 private:
  void need(std::size_t n, const char* what) const {
    if (size_ - pos_ < n) fail(std::string("truncated ") + what);
  }
  const std::uint8_t* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
};

obs::Labels get_labels(Cursor& cur) {
  const std::size_t n = cur.u8("stats label count");
  obs::Labels labels;
  labels.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    std::string k = cur.str("stats label key");
    std::string v = cur.str("stats label value");
    labels.emplace_back(std::move(k), std::move(v));
  }
  return labels;
}

/// Prepend the u32 length to a finished body.
std::string with_length_prefix(const std::string& body) {
  if (body.size() > kMaxFrameBody) fail("stats frame body exceeds the protocol cap");
  std::string frame;
  frame.reserve(4 + body.size());
  put_u32(frame, static_cast<std::uint32_t>(body.size()));
  frame.append(body);
  return frame;
}

}  // namespace

std::string encode_stats_request_frame(std::uint64_t token, std::uint8_t flags) {
  std::string body;
  body.reserve(kStatsRequestBodySize);
  put_u8(body, static_cast<std::uint8_t>(FrameType::kStatsRequest));
  put_u64(body, token);
  put_u8(body, flags);
  return with_length_prefix(body);
}

std::optional<StatsRequest> parse_stats_request_body(const std::uint8_t* body,
                                                     std::size_t size) noexcept {
  if (size != kStatsRequestBodySize) return std::nullopt;
  if (body[0] != static_cast<std::uint8_t>(FrameType::kStatsRequest)) return std::nullopt;
  StatsRequest req;
  for (int i = 0; i < 8; ++i)
    req.token |= static_cast<std::uint64_t>(body[1 + i]) << (8 * i);
  req.flags = body[9];
  return req;
}

std::string encode_stats_response_frame(std::uint64_t token, const obs::Snapshot& snap,
                                        const std::vector<obs::TraceSpan>& spans) {
  std::string body;
  body.reserve(1024);
  put_u8(body, static_cast<std::uint8_t>(FrameType::kStatsResponse));
  put_u64(body, token);
  put_u32(body, kStatsSnapshotVersion);
  put_u64(body, snap.uptime_ns);

  put_u32(body, static_cast<std::uint32_t>(snap.counters.size()));
  for (const auto& c : snap.counters) {
    put_string(body, c.name);
    put_string(body, c.help);
    put_labels(body, c.labels);
    put_u64(body, c.value);
  }
  put_u32(body, static_cast<std::uint32_t>(snap.gauges.size()));
  for (const auto& g : snap.gauges) {
    put_string(body, g.name);
    put_string(body, g.help);
    put_labels(body, g.labels);
    put_u64(body, static_cast<std::uint64_t>(g.value));
  }
  put_u32(body, static_cast<std::uint32_t>(snap.histograms.size()));
  for (const auto& h : snap.histograms) {
    put_string(body, h.name);
    put_string(body, h.help);
    put_labels(body, h.labels);
    put_u64(body, h.count);
    put_u64(body, h.sum);
    std::uint8_t nonzero = 0;
    for (std::size_t i = 0; i < obs::kHistogramBuckets; ++i)
      if (h.buckets[i] != 0) ++nonzero;
    put_u8(body, nonzero);
    for (std::size_t i = 0; i < obs::kHistogramBuckets; ++i) {
      if (h.buckets[i] == 0) continue;
      put_u8(body, static_cast<std::uint8_t>(i));
      put_u64(body, h.buckets[i]);
    }
  }
  put_u32(body, static_cast<std::uint32_t>(spans.size()));
  for (const auto& s : spans) {
    put_u64(body, s.request_id);
    put_u64(body, s.conn_id);
    put_u8(body, s.mode);
    put_u8(body, s.status);
    put_u64(body, s.accept_ns);
    put_u64(body, s.frame_read_ns);
    put_u64(body, s.dispatch_ns);
    put_u64(body, s.solve_start_ns);
    put_u64(body, s.solve_end_ns);
    put_u64(body, s.response_ns);
    // v2 tail: digest + payload size + sparse phase breakdown.
    put_u64(body, s.instance_digest);
    put_u32(body, s.payload_bytes);
    std::uint8_t nonzero = 0;
    for (std::size_t p = 0; p < obs::kNumPhases; ++p)
      if (s.phase_ns[p] != 0) ++nonzero;
    put_u8(body, nonzero);
    for (std::size_t p = 0; p < obs::kNumPhases; ++p) {
      if (s.phase_ns[p] == 0) continue;
      put_u8(body, static_cast<std::uint8_t>(p));
      put_u64(body, s.phase_ns[p]);
    }
  }
  return with_length_prefix(body);
}

StatsReply decode_stats_response_body(const std::uint8_t* body, std::size_t size) {
  Cursor cur(body, size);
  if (cur.u8("stats response type") != static_cast<std::uint8_t>(FrameType::kStatsResponse))
    fail("stats response carries the wrong frame type");
  StatsReply reply;
  reply.token = cur.u64("stats token");
  reply.version = cur.u32("stats snapshot version");
  if (reply.version != 1 && reply.version != kStatsSnapshotVersion)
    fail("unsupported stats snapshot version " + std::to_string(reply.version));
  reply.snapshot.uptime_ns = cur.u64("stats uptime");

  const std::size_t n_counters = cur.u32("stats counter count");
  reply.snapshot.counters.reserve(n_counters);
  for (std::size_t i = 0; i < n_counters; ++i) {
    obs::CounterSample c;
    c.name = cur.str("counter name");
    c.help = cur.str("counter help");
    c.labels = get_labels(cur);
    c.value = cur.u64("counter value");
    reply.snapshot.counters.push_back(std::move(c));
  }
  const std::size_t n_gauges = cur.u32("stats gauge count");
  reply.snapshot.gauges.reserve(n_gauges);
  for (std::size_t i = 0; i < n_gauges; ++i) {
    obs::GaugeSample g;
    g.name = cur.str("gauge name");
    g.help = cur.str("gauge help");
    g.labels = get_labels(cur);
    g.value = static_cast<std::int64_t>(cur.u64("gauge value"));
    reply.snapshot.gauges.push_back(std::move(g));
  }
  const std::size_t n_hists = cur.u32("stats histogram count");
  reply.snapshot.histograms.reserve(n_hists);
  for (std::size_t i = 0; i < n_hists; ++i) {
    obs::HistogramSample h;
    h.name = cur.str("histogram name");
    h.help = cur.str("histogram help");
    h.labels = get_labels(cur);
    h.count = cur.u64("histogram count");
    h.sum = cur.u64("histogram sum");
    const std::size_t nonzero = cur.u8("histogram bucket count");
    for (std::size_t b = 0; b < nonzero; ++b) {
      const std::uint8_t idx = cur.u8("histogram bucket index");
      if (idx >= obs::kHistogramBuckets) fail("histogram bucket index out of range");
      h.buckets[idx] = cur.u64("histogram bucket value");
    }
    reply.snapshot.histograms.push_back(std::move(h));
  }
  const std::size_t n_spans = cur.u32("stats span count");
  reply.spans.reserve(n_spans);
  for (std::size_t i = 0; i < n_spans; ++i) {
    obs::TraceSpan s;
    s.request_id = cur.u64("span request id");
    s.conn_id = cur.u64("span conn id");
    s.mode = cur.u8("span mode");
    s.status = cur.u8("span status");
    s.accept_ns = cur.u64("span accept ts");
    s.frame_read_ns = cur.u64("span frame-read ts");
    s.dispatch_ns = cur.u64("span dispatch ts");
    s.solve_start_ns = cur.u64("span solve-start ts");
    s.solve_end_ns = cur.u64("span solve-end ts");
    s.response_ns = cur.u64("span response ts");
    if (reply.version >= 2) {
      s.instance_digest = cur.u64("span instance digest");
      s.payload_bytes = cur.u32("span payload bytes");
      const std::size_t nonzero = cur.u8("span phase count");
      for (std::size_t p = 0; p < nonzero; ++p) {
        const std::uint8_t idx = cur.u8("span phase index");
        if (idx >= obs::kNumPhases) fail("span phase index out of range");
        s.phase_ns[idx] = cur.u64("span phase ns");
      }
    }
    reply.spans.push_back(s);
  }
  cur.finish("stats response frame");
  return reply;
}

}  // namespace ncpm::net
