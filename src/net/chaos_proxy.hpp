#pragma once
// Seeded in-process fault-injection TCP proxy, for the chaos suite.
//
// A ChaosProxy listens on its own ephemeral port and relays every accepted
// connection to the real server, byte-for-byte — except where its config
// says otherwise. Faults are injected *between* the client and server
// sockets, so both ends experience exactly what a hostile network would
// deliver: torn frames (writes sliced at arbitrary byte boundaries),
// per-slice delivery delay, flipped bytes, stalls that stop draining the
// server until its send timeout trips, and mid-frame RST resets.
//
// Determinism: every probabilistic choice draws from a per-connection,
// per-direction xorshift stream seeded from (config.seed, connection index,
// direction), so a failing chaos run replays byte-for-byte from its seed.
// The byte-offset one-shot faults (reset_after_client_bytes etc.) count
// bytes across the whole proxy lifetime and fire exactly once — tests use
// them to hit a precise wire position, e.g. "reset mid-frame on the third
// request".
//
// Scale: one relay thread per direction per connection (blocking sockets).
// That is the threads-core cost model, which is fine — chaos tests run a
// handful of connections, not ten thousand.

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "net/socket.hpp"

namespace ncpm::net {

struct ChaosConfig {
  /// Upstream (real server) address.
  std::string upstream_host = "127.0.0.1";
  std::uint16_t upstream_port = 0;
  /// Proxy listen address; port 0 picks an ephemeral one (see port()).
  std::string bind_address = "127.0.0.1";
  std::uint16_t listen_port = 0;

  /// Root of every per-connection RNG stream. Same seed, same faults.
  std::uint64_t seed = 1;

  /// Relay writes are sliced into chunks of 1..max_chunk bytes drawn from
  /// the stream — every frame crosses the wire torn into arbitrary pieces.
  /// 0 disables tearing (whole reads relay in one write).
  std::size_t max_chunk = 0;
  /// Per-slice probability (in 2^-32 units... practically: parts per
  /// million) of sleeping delay_ms before forwarding the slice.
  std::uint32_t delay_ppm = 0;
  std::chrono::milliseconds delay_ms{0};
  /// Per-slice probability (ppm) of resetting the connection (RST both
  /// ways) instead of forwarding the slice.
  std::uint32_t reset_ppm = 0;

  // One-shot byte-offset faults; 0 = disabled. Offsets count bytes of the
  // given direction across all connections for the proxy's lifetime.
  /// Reset (RST) the connection once this many client->server bytes have
  /// been forwarded; the byte at the boundary is never delivered.
  std::uint64_t reset_after_client_bytes = 0;
  /// XOR-flip the client->server byte at exactly this offset (1-based: the
  /// Nth byte is corrupted) and deliver it.
  std::uint64_t corrupt_client_byte = 0;
  /// Stop draining the server once this many server->client bytes have
  /// been forwarded, for stall_ms. With the server's send buffer full its
  /// send_all blocks — long enough stalls trip its send timeout.
  std::uint64_t stall_after_server_bytes = 0;
  std::chrono::milliseconds stall_ms{0};
  /// Clamp SO_RCVBUF on the upstream (server-facing) socket; 0 = OS
  /// default. Stall tests set this small so the server's send path blocks
  /// against the stall instead of parking megabytes in autotuned kernel
  /// buffers.
  std::size_t upstream_rcvbuf = 0;
};

struct ChaosStats {
  std::uint64_t connections = 0;
  std::uint64_t client_bytes = 0;  ///< client->server bytes forwarded
  std::uint64_t server_bytes = 0;  ///< server->client bytes forwarded
  std::uint64_t resets = 0;
  std::uint64_t corruptions = 0;
  std::uint64_t stalls = 0;
  std::uint64_t delays = 0;
};

class ChaosProxy {
 public:
  explicit ChaosProxy(ChaosConfig config);
  ~ChaosProxy();
  ChaosProxy(const ChaosProxy&) = delete;
  ChaosProxy& operator=(const ChaosProxy&) = delete;

  /// Bind + listen + spawn the accept thread. Throws NetError on bind
  /// failure.
  void start();
  /// Tear down: close the listener, reset every live link, join all
  /// threads. Idempotent.
  void stop();

  std::uint16_t port() const noexcept { return port_; }
  ChaosStats stats() const;

 private:
  struct Link;

  void accept_loop();
  void relay(std::shared_ptr<Link> link, std::uint64_t conn, bool client_to_server);

  ChaosConfig config_;
  Socket listener_;
  std::uint16_t port_ = 0;
  std::thread accept_thread_;
  std::atomic<bool> stopping_{false};

  std::mutex links_mu_;
  std::vector<std::shared_ptr<Link>> links_;

  std::atomic<std::uint64_t> next_conn_{0};
  std::atomic<std::uint64_t> client_bytes_{0};
  std::atomic<std::uint64_t> server_bytes_{0};
  std::atomic<bool> reset_fired_{false};
  std::atomic<bool> corrupt_fired_{false};
  std::atomic<bool> stall_fired_{false};
  std::atomic<std::uint64_t> connections_{0};
  std::atomic<std::uint64_t> resets_{0};
  std::atomic<std::uint64_t> corruptions_{0};
  std::atomic<std::uint64_t> stalls_{0};
  std::atomic<std::uint64_t> delays_{0};
};

}  // namespace ncpm::net
