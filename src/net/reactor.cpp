#include "net/reactor.hpp"

#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <condition_variable>
#include <cstring>
#include <unordered_set>
#include <utility>

#include "net/server_core.hpp"
#include "net/session.hpp"

namespace ncpm::net {

// ---------------------------------------------------------------------------
// EventLoop
// ---------------------------------------------------------------------------

EventLoop::EventLoop() : wheel_(TimerWheel::Clock::now()) {
  epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
  if (epoll_fd_ < 0) {
    throw NetError(NetErrc::kIo, std::string("epoll_create1 (") + std::strerror(errno) + ")");
  }
  wake_fd_ = ::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
  if (wake_fd_ < 0) {
    const int saved = errno;
    ::close(epoll_fd_);
    epoll_fd_ = -1;
    throw NetError(NetErrc::kIo, std::string("eventfd (") + std::strerror(saved) + ")");
  }
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.fd = wake_fd_;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_fd_, &ev);
}

EventLoop::~EventLoop() {
  stop();
  if (wake_fd_ >= 0) ::close(wake_fd_);
  if (epoll_fd_ >= 0) ::close(epoll_fd_);
}

void EventLoop::start() {
  thread_ = std::thread([this] { run(); });
}

void EventLoop::stop() {
  if (!thread_.joinable()) return;
  post([this] { stop_ = true; });
  thread_.join();
}

void EventLoop::post(Task task) {
  {
    std::lock_guard<std::mutex> lock(tasks_mu_);
    tasks_.push_back(std::move(task));
  }
  const std::uint64_t one = 1;
  // A full eventfd counter (EAGAIN) still wakes the loop; nothing to do.
  [[maybe_unused]] const auto n = ::write(wake_fd_, &one, sizeof(one));
}

bool EventLoop::on_loop_thread() const noexcept {
  return thread_.joinable() && std::this_thread::get_id() == thread_.get_id();
}

void EventLoop::add_fd(int fd, std::uint32_t events, FdHandler* handler) {
  epoll_event ev{};
  ev.events = events;
  ev.data.fd = fd;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) < 0) {
    throw NetError(NetErrc::kIo, std::string("epoll_ctl(ADD) (") + std::strerror(errno) + ")");
  }
  handlers_[fd] = handler;
}

void EventLoop::modify_fd(int fd, std::uint32_t events) {
  epoll_event ev{};
  ev.events = events;
  ev.data.fd = fd;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, fd, &ev);
}

void EventLoop::remove_fd(int fd) {
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr);
  handlers_.erase(fd);
}

EventLoop::TimerId EventLoop::arm_timer(std::chrono::milliseconds delay,
                                        std::function<void()> on_fire) {
  const TimerId id = wheel_.schedule(TimerWheel::Clock::now(), delay);
  timer_callbacks_[id] = std::move(on_fire);
  return id;
}

void EventLoop::cancel_timer(TimerId id) {
  wheel_.cancel(id);
  timer_callbacks_.erase(id);
}

void EventLoop::defer_close(Socket sock) { pending_close_.push_back(std::move(sock)); }

void EventLoop::drain_wakeup() {
  std::uint64_t counter = 0;
  [[maybe_unused]] const auto n = ::read(wake_fd_, &counter, sizeof(counter));
}

void EventLoop::run() {
  std::vector<epoll_event> events(64);
  std::vector<TimerWheel::TimerId> expired;
  std::deque<Task> batch;
  while (!stop_) {
    int timeout_ms = -1;
    if (const auto next = wheel_.next_wakeup(TimerWheel::Clock::now())) {
      timeout_ms = static_cast<int>(std::max<std::int64_t>(0, next->count()));
    }
    const int n = ::epoll_wait(epoll_fd_, events.data(), static_cast<int>(events.size()),
                               timeout_ms);
    if (n < 0) {
      if (errno == EINTR) continue;
      break;  // epoll fd itself failed; nothing sane left to do
    }
    for (int i = 0; i < n; ++i) {
      const int fd = events[static_cast<std::size_t>(i)].data.fd;
      if (fd == wake_fd_) {
        drain_wakeup();
        continue;
      }
      // Looked up per event: a handler earlier in this batch may have
      // removed this fd (its close is deferred, so the number is not
      // recycled underneath us).
      const auto it = handlers_.find(fd);
      if (it != handlers_.end()) it->second->on_io(events[static_cast<std::size_t>(i)].events);
    }
    {
      std::lock_guard<std::mutex> lock(tasks_mu_);
      batch.swap(tasks_);
    }
    for (auto& task : batch) task();
    batch.clear();
    expired.clear();
    wheel_.advance(TimerWheel::Clock::now(), expired);
    for (const auto id : expired) {
      const auto it = timer_callbacks_.find(id);
      if (it == timer_callbacks_.end()) continue;  // cancelled mid-batch
      auto callback = std::move(it->second);
      timer_callbacks_.erase(it);
      callback();
    }
    pending_close_.clear();  // batch is over; fd numbers may now be recycled
  }
  pending_close_.clear();
}

// ---------------------------------------------------------------------------
// EpollCore
// ---------------------------------------------------------------------------

namespace detail {
namespace {

class EpollCore final : public ServerCoreImpl, public FdHandler {
 public:
  using ServerCoreImpl::ServerCoreImpl;
  ~EpollCore() override = default;

  void start() override {
    listener_ = Socket::listen_on(config_.bind_address, config_.port, config_.backlog);
    port_ = listener_.local_port();
    listener_.set_nonblocking(true);

    std::size_t n = config_.num_event_loops;
    if (n == 0) {
      const auto hw = static_cast<std::size_t>(std::thread::hardware_concurrency());
      n = std::min<std::size_t>(4, std::max<std::size_t>(1, hw));
    }
    loops_.reserve(n);
    for (std::size_t i = 0; i < n; ++i) loops_.push_back(std::make_unique<LoopState>());
    for (auto& ls : loops_) ls->loop.start();
    // The listener lives on loop 0; all its accept work happens there.
    loops_[0]->loop.post([this] { loops_[0]->loop.add_fd(listener_.fd(), EPOLLIN, this); });
  }

  void stop() override {
    draining_.store(true, std::memory_order_release);
    // Stop accepting: deregister + close the listener on its own loop so
    // this never races the accept handler.
    loops_[0]->loop.post([this] {
      loops_[0]->loop.remove_fd(listener_.fd());
      listener_.close();
    });
    // Drain every session. FIFO task order guarantees any session-creation
    // task already queued runs before its loop's drain sweep.
    for (auto& ls : loops_) {
      auto* state = ls.get();
      state->loop.post([state] {
        const std::vector<std::shared_ptr<Session>> snapshot(state->sessions.begin(),
                                                             state->sessions.end());
        for (const auto& session : snapshot) session->begin_drain();
      });
    }
    {
      std::unique_lock<std::mutex> lock(live_mu_);
      live_cv_.wait(lock, [this] { return live_sessions_ == 0; });
    }
    for (auto& ls : loops_) ls->loop.stop();
  }

  /// Loop 0 thread: the listener is readable.
  void on_io(std::uint32_t /*events*/) override {
    for (;;) {
      Socket sock;
      try {
        sock = listener_.try_accept();
      } catch (const std::exception&) {
        return;  // listener shut down or hard accept failure; stop() owns cleanup
      }
      if (!sock.valid()) return;  // kernel queue drained
      if (draining_.load(std::memory_order_acquire)) continue;  // refused; closes on scope exit
      {
        std::lock_guard<std::mutex> lock(live_mu_);
        ++live_sessions_;
      }
      auto* ls = loops_[next_loop_++ % loops_.size()].get();
      // Hand the socket to its loop's thread; Session state is born and
      // dies there. shared_ptr wrapper because std::function must be
      // copyable and Socket is move-only.
      auto sock_box = std::make_shared<Socket>(std::move(sock));
      ls->loop.post([this, ls, sock_box] {
        auto session = std::make_shared<Session>(
            std::move(*sock_box), ls->loop, config_, engine_, obs_,
            [this, ls](const std::shared_ptr<Session>& closed) {
              ls->sessions.erase(closed);
              std::lock_guard<std::mutex> lock(live_mu_);
              if (--live_sessions_ == 0) live_cv_.notify_all();
            });
        ls->sessions.insert(session);
        session->open();
        // stop() may have swept this loop between the accept and now.
        if (draining_.load(std::memory_order_acquire)) session->begin_drain();
      });
    }
  }

 private:
  struct LoopState {
    EventLoop loop;
    std::unordered_set<std::shared_ptr<Session>> sessions;  ///< loop-thread-only
  };

  Socket listener_;
  std::vector<std::unique_ptr<LoopState>> loops_;
  std::atomic<bool> draining_{false};
  std::size_t next_loop_ = 0;  ///< loop 0 thread only (round-robin cursor)

  std::mutex live_mu_;
  std::condition_variable live_cv_;
  std::size_t live_sessions_ = 0;  ///< guarded by live_mu_
};

}  // namespace

std::unique_ptr<ServerCoreImpl> make_epoll_core(const ServerConfig& config,
                                                engine::Engine& engine, ServerObs& obs) {
  return std::make_unique<EpollCore>(config, engine, obs);
}

}  // namespace detail

}  // namespace ncpm::net
