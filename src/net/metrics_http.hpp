#pragma once
// Minimal HTTP/1.0 `GET /metrics` endpoint: Prometheus text exposition of
// one obs::Registry, on its own port so scrapers never speak ncpm-rpc.
//
// Deliberately tiny — one EventLoop (the same reactor the epoll core
// uses), nonblocking sockets, one response per connection, `Connection:
// close`. It understands exactly enough HTTP to serve a scrape: a request
// line plus headers terminated by a blank line, answered 200 (for GET
// /metrics) or 404, then the connection closes. Anything that is not that
// — an oversized request, EOF mid-request, a write failure — costs that
// connection only.

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>

#include "net/reactor.hpp"
#include "net/socket.hpp"

namespace ncpm::obs {
class Registry;
}  // namespace ncpm::obs

namespace ncpm::net {

class MetricsHttpServer {
 public:
  /// Binds nothing yet; start() binds `bind_address`:`port` (0 =
  /// ephemeral, read the outcome back with port()).
  MetricsHttpServer(std::string bind_address, std::uint16_t port, obs::Registry& registry);
  ~MetricsHttpServer();
  MetricsHttpServer(const MetricsHttpServer&) = delete;
  MetricsHttpServer& operator=(const MetricsHttpServer&) = delete;

  /// Bind + listen + start the loop thread. Throws NetError(kConnectFailed)
  /// when the port cannot be bound.
  void start();
  /// Stop the loop and close every connection. Idempotent.
  void stop();
  /// Bound port, valid after start().
  std::uint16_t port() const noexcept { return port_; }

 private:
  struct Conn;
  class ListenerHandler;

  // Loop-thread-only.
  void accept_ready();
  void conn_ready(Conn* conn, std::uint32_t events);
  void pump_write(Conn* conn);
  void close_conn(Conn* conn);

  std::string bind_address_;
  std::uint16_t requested_port_;
  obs::Registry& registry_;

  Socket listener_;
  std::uint16_t port_ = 0;
  EventLoop loop_;
  std::unique_ptr<ListenerHandler> listener_handler_;
  std::unordered_map<int, std::unique_ptr<Conn>> conns_;  ///< loop thread only
  bool started_ = false;
  bool stopped_ = false;
};

}  // namespace ncpm::net
