#pragma once
// Minimal HTTP/1.0 observability endpoint: Prometheus text exposition of
// one obs::Registry plus liveness/readiness probes, on its own port so
// scrapers and orchestrators never speak ncpm-rpc. Three paths, GET and
// HEAD (HEAD answers the identical status and headers — Content-Length
// included — with no body, so probes can skip the exposition bytes):
//
//   /metrics  200, the registry rendered as Prometheus text
//   /healthz  200 "ok" while the loop thread runs — pure liveness
//   /readyz   200 "ready" when the owner's ready_fn says so, 503
//             "unready" otherwise (draining, or at the in-flight cap);
//             no ready_fn = always ready (a bare registry endpoint)
//
// Deliberately tiny — one EventLoop (the same reactor the epoll core
// uses), nonblocking sockets, one response per connection, `Connection:
// close`. It understands exactly enough HTTP to serve a scrape: a request
// line plus headers terminated by a blank line, answered then closed.
// Unknown paths get a 404 (Content-Length: 0). Anything that is not that
// — an oversized request, EOF mid-request, a write failure — costs that
// connection only.

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <unordered_map>

#include "net/reactor.hpp"
#include "net/socket.hpp"

namespace ncpm::obs {
class Registry;
}  // namespace ncpm::obs

namespace ncpm::net {

class MetricsHttpServer {
 public:
  /// Binds nothing yet; start() binds `bind_address`:`port` (0 =
  /// ephemeral, read the outcome back with port()). `ready_fn` backs
  /// /readyz; it is called on the loop thread per probe, so keep it to a
  /// few atomic loads. Null = always ready.
  MetricsHttpServer(std::string bind_address, std::uint16_t port, obs::Registry& registry,
                    std::function<bool()> ready_fn = {});
  ~MetricsHttpServer();
  MetricsHttpServer(const MetricsHttpServer&) = delete;
  MetricsHttpServer& operator=(const MetricsHttpServer&) = delete;

  /// Bind + listen + start the loop thread. Throws NetError(kConnectFailed)
  /// when the port cannot be bound.
  void start();
  /// Stop the loop and close every connection. Idempotent.
  void stop();
  /// Bound port, valid after start().
  std::uint16_t port() const noexcept { return port_; }

 private:
  struct Conn;
  class ListenerHandler;

  // Loop-thread-only.
  void accept_ready();
  void conn_ready(Conn* conn, std::uint32_t events);
  void pump_write(Conn* conn);
  void close_conn(Conn* conn);

  std::string bind_address_;
  std::uint16_t requested_port_;
  obs::Registry& registry_;
  std::function<bool()> ready_fn_;

  Socket listener_;
  std::uint16_t port_ = 0;
  EventLoop loop_;
  std::unique_ptr<ListenerHandler> listener_handler_;
  std::unordered_map<int, std::unique_ptr<Conn>> conns_;  ///< loop thread only
  bool started_ = false;
  bool stopped_ = false;
};

}  // namespace ncpm::net
