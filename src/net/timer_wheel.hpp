#pragma once
// Hashed timing wheel for connection timers (send-timeout, idle reaping).
//
// One reactor event loop owns one wheel and drives it from its own clock:
// schedule() hashes a deadline into a slot, advance() walks the slots that
// elapsed since the last call and reports the timers that fired. All the
// work is O(1) per schedule/cancel and O(slots traversed) per advance, so
// ten thousand armed idle timers cost the loop nothing until they expire —
// the property a C10K reaper needs that a sorted map does not have.
//
// The wheel is deliberately pure (no threads, no clock reads of its own):
// the caller passes `now` into advance()/next_wakeup(), which makes it
// unit-testable with a synthetic clock and keeps the reactor the only
// component that touches real time.

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <optional>
#include <unordered_set>
#include <vector>

namespace ncpm::net {

class TimerWheel {
 public:
  using Clock = std::chrono::steady_clock;
  using TimerId = std::uint64_t;

  /// `tick` is the expiry granularity (timers fire up to one tick late);
  /// `slots` x `tick` is one wheel revolution — longer delays survive via a
  /// per-entry round counter, they just ride the wheel more than once.
  explicit TimerWheel(Clock::time_point now,
                      std::chrono::milliseconds tick = std::chrono::milliseconds(20),
                      std::size_t slots = 512);

  /// Arm a timer due `delay` from `now` (minimum one tick out). Returns a
  /// nonzero id usable with cancel(). Taking `now` matters: the cursor can
  /// lag real time by many ticks (an event loop dispatches I/O before
  /// advancing its wheel), and a timer hashed from the stale cursor alone
  /// would fire up to that lag early — the entry is therefore placed
  /// relative to the wheel's time base, so it never fires before
  /// `now + delay` no matter how far behind the cursor is.
  TimerId schedule(Clock::time_point now, std::chrono::milliseconds delay);

  /// Lazy cancel: the entry is dropped when its slot is next visited.
  /// Cancelling an unknown/already-fired id is a no-op.
  void cancel(TimerId id);

  /// Advance the wheel to `now`, appending every id that expired (in slot
  /// order) to `expired`. Cancelled entries are dropped silently.
  void advance(Clock::time_point now, std::vector<TimerId>& expired);

  /// Time until the next slot that holds any entry, or nullopt when the
  /// wheel is empty (the reactor then sleeps until an eventfd wakeup).
  /// Conservative: a slot holding only multi-round entries still yields a
  /// wakeup — at most one spurious wakeup per revolution.
  std::optional<std::chrono::milliseconds> next_wakeup(Clock::time_point now) const;

  std::size_t armed() const noexcept { return armed_; }

 private:
  struct Entry {
    TimerId id;
    std::uint32_t rounds;  ///< revolutions left before this entry fires
  };

  std::chrono::milliseconds tick_;
  std::vector<std::vector<Entry>> slots_;
  std::size_t cursor_ = 0;             ///< slot advance() will visit next
  Clock::time_point next_tick_time_;   ///< when slots_[cursor_] comes due
  TimerId next_id_ = 1;
  std::size_t armed_ = 0;              ///< live (scheduled minus fired/cancelled)
  std::unordered_set<TimerId> cancelled_;
};

}  // namespace ncpm::net
