#include "net/metrics_http.hpp"

#include <sys/epoll.h>

#include <cstddef>
#include <utility>

#include "obs/registry.hpp"

namespace ncpm::net {

namespace {

/// Request bytes past this without a blank line are not a scrape; the
/// connection is dropped rather than buffered.
constexpr std::size_t kMaxRequestBytes = 8192;
constexpr std::size_t kReadChunk = 2048;

/// A complete HTTP/1.0 response. HEAD gets the exact status and headers a
/// GET would (Content-Length reflects the body GET would have sent) with
/// the body itself omitted.
std::string http_response(int status, const char* reason, const std::string& body,
                          const char* content_type, bool head_only) {
  std::string out = "HTTP/1.0 ";
  out += std::to_string(status);
  out += ' ';
  out += reason;
  out += "\r\nContent-Type: ";
  out += content_type;
  out += "\r\nContent-Length: ";
  out += std::to_string(body.size());
  out += "\r\nConnection: close\r\n\r\n";
  if (!head_only) out += body;
  return out;
}

/// Method + path off the request line (any HTTP version, query strings not
/// split off — no served path takes one).
struct RequestLine {
  std::string method;
  std::string path;
};

RequestLine parse_request_line(const std::string& request) {
  const auto line_end = request.find_first_of("\r\n");
  const std::string line = request.substr(0, line_end);
  RequestLine out;
  const auto sp1 = line.find(' ');
  if (sp1 == std::string::npos) return out;
  const auto sp2 = line.find(' ', sp1 + 1);
  out.method = line.substr(0, sp1);
  out.path = sp2 == std::string::npos ? line.substr(sp1 + 1) : line.substr(sp1 + 1, sp2 - sp1 - 1);
  return out;
}

}  // namespace

struct MetricsHttpServer::Conn final : FdHandler {
  Conn(MetricsHttpServer& owner_in, Socket sock_in)
      : owner(owner_in), sock(std::move(sock_in)) {}
  void on_io(std::uint32_t events) override { owner.conn_ready(this, events); }

  MetricsHttpServer& owner;
  Socket sock;
  std::string request;    ///< accumulating until the blank line
  std::string response;   ///< set once the request parsed; then write-only
  std::size_t written = 0;
  bool responding = false;
};

class MetricsHttpServer::ListenerHandler final : public FdHandler {
 public:
  explicit ListenerHandler(MetricsHttpServer& owner) : owner_(owner) {}
  void on_io(std::uint32_t /*events*/) override { owner_.accept_ready(); }

 private:
  MetricsHttpServer& owner_;
};

MetricsHttpServer::MetricsHttpServer(std::string bind_address, std::uint16_t port,
                                     obs::Registry& registry, std::function<bool()> ready_fn)
    : bind_address_(std::move(bind_address)),
      requested_port_(port),
      registry_(registry),
      ready_fn_(std::move(ready_fn)) {}

MetricsHttpServer::~MetricsHttpServer() { stop(); }

void MetricsHttpServer::start() {
  if (started_) return;
  listener_ = Socket::listen_on(bind_address_, requested_port_, /*backlog=*/16);
  port_ = listener_.local_port();
  listener_.set_nonblocking(true);
  listener_handler_ = std::make_unique<ListenerHandler>(*this);
  loop_.start();
  loop_.post([this] { loop_.add_fd(listener_.fd(), EPOLLIN, listener_handler_.get()); });
  started_ = true;
}

void MetricsHttpServer::stop() {
  if (!started_ || stopped_) return;
  stopped_ = true;
  loop_.stop();  // joins the loop thread; from here everything is single-threaded
  conns_.clear();
  listener_.close();
}

void MetricsHttpServer::accept_ready() {
  for (;;) {
    Socket sock;
    try {
      sock = listener_.try_accept();
    } catch (const std::exception&) {
      return;  // listener failure: stop accepting; existing scrapes finish
    }
    if (!sock.valid()) return;  // drained the pending queue
    try {
      sock.set_nonblocking(true);
      const int fd = sock.fd();
      auto conn = std::make_unique<Conn>(*this, std::move(sock));
      loop_.add_fd(fd, EPOLLIN, conn.get());
      conns_.emplace(fd, std::move(conn));
    } catch (const std::exception&) {
      // Setup failure costs this one connection (socket closes on scope exit).
    }
  }
}

void MetricsHttpServer::conn_ready(Conn* conn, std::uint32_t events) {
  if ((events & (EPOLLERR | EPOLLHUP)) != 0 && !conn->responding) {
    close_conn(conn);
    return;
  }
  if (!conn->responding && (events & EPOLLIN) != 0) {
    char buf[kReadChunk];
    for (;;) {
      std::ptrdiff_t n = 0;
      try {
        n = conn->sock.recv_some(buf, sizeof(buf));
      } catch (const std::exception&) {
        close_conn(conn);
        return;
      }
      if (n < 0) break;  // would-block: wait for more bytes
      if (n == 0) {
        close_conn(conn);  // EOF before a complete request
        return;
      }
      conn->request.append(buf, static_cast<std::size_t>(n));
      if (conn->request.size() > kMaxRequestBytes) {
        close_conn(conn);
        return;
      }
      if (conn->request.find("\r\n\r\n") != std::string::npos ||
          conn->request.find("\n\n") != std::string::npos) {
        const RequestLine req = parse_request_line(conn->request);
        const bool head = req.method == "HEAD";
        if (!head && req.method != "GET") {
          conn->response = http_response(404, "Not Found", "", "text/plain; charset=utf-8",
                                         /*head_only=*/false);
        } else if (req.path == "/metrics") {
          conn->response =
              http_response(200, "OK", obs::render_prometheus(registry_.snapshot()),
                            "text/plain; version=0.0.4; charset=utf-8", head);
        } else if (req.path == "/healthz") {
          // Pure liveness: answering at all is the signal (the loop thread
          // is alive and serving), so this is unconditionally 200.
          conn->response = http_response(200, "OK", "ok\n", "text/plain; charset=utf-8", head);
        } else if (req.path == "/readyz") {
          const bool ready = !ready_fn_ || ready_fn_();
          conn->response =
              ready ? http_response(200, "OK", "ready\n", "text/plain; charset=utf-8", head)
                    : http_response(503, "Service Unavailable", "unready\n",
                                    "text/plain; charset=utf-8", head);
        } else {
          conn->response =
              http_response(404, "Not Found", "", "text/plain; charset=utf-8", head);
        }
        conn->responding = true;
        loop_.modify_fd(conn->sock.fd(), EPOLLOUT);
        break;
      }
    }
  }
  if (conn->responding) pump_write(conn);
}

void MetricsHttpServer::pump_write(Conn* conn) {
  while (conn->written < conn->response.size()) {
    std::ptrdiff_t n = 0;
    try {
      n = conn->sock.send_some(conn->response.data() + conn->written,
                               conn->response.size() - conn->written);
    } catch (const std::exception&) {
      close_conn(conn);
      return;
    }
    if (n < 0) return;  // send buffer full: EPOLLOUT re-fires
    conn->written += static_cast<std::size_t>(n);
  }
  close_conn(conn);  // HTTP/1.0, Connection: close — one scrape per socket
}

void MetricsHttpServer::close_conn(Conn* conn) {
  const int fd = conn->sock.fd();
  loop_.remove_fd(fd);
  loop_.defer_close(std::move(conn->sock));
  conns_.erase(fd);
}

}  // namespace ncpm::net
