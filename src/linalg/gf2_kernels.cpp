#include "linalg/gf2_kernels.hpp"

#include <bit>

#if defined(__x86_64__) || defined(_M_X64)
#define NCPM_SIMD_X86 1
#include <immintrin.h>
#define NCPM_TARGET_AVX2 __attribute__((target("avx2")))
#else
#define NCPM_SIMD_X86 0
#endif

namespace ncpm::linalg::gf2k {
namespace {

// ---------------------------------------------------------------------------
// Scalar tier (the reference semantics)

void row_xor_scalar(std::uint64_t* dst, const std::uint64_t* src,
                    std::size_t n) noexcept {
  for (std::size_t w = 0; w < n; ++w) dst[w] ^= src[w];
}

void row_or_scalar(std::uint64_t* dst, const std::uint64_t* src,
                   std::size_t n) noexcept {
  for (std::size_t w = 0; w < n; ++w) dst[w] |= src[w];
}

std::uint64_t popcount_words_scalar(const std::uint64_t* a, std::size_t n) noexcept {
  std::uint64_t c = 0;
  for (std::size_t w = 0; w < n; ++w) {
    c += static_cast<std::uint64_t>(std::popcount(a[w]));
  }
  return c;
}

std::uint64_t and_popcount_scalar(const std::uint64_t* a, const std::uint64_t* b,
                                  std::size_t n) noexcept {
  std::uint64_t c = 0;
  for (std::size_t w = 0; w < n; ++w) {
    c += static_cast<std::uint64_t>(std::popcount(a[w] & b[w]));
  }
  return c;
}

std::size_t find_pivot_scalar(const std::uint64_t* words, std::size_t stride,
                              std::size_t word_index, std::uint64_t mask,
                              std::size_t row_begin, std::size_t row_end) noexcept {
  for (std::size_t r = row_begin; r < row_end; ++r) {
    if ((words[r * stride + word_index] & mask) != 0) return r;
  }
  return row_end;
}

std::size_t mask_nonzero_count_scalar(const std::uint8_t* mask, std::size_t n) noexcept {
  std::size_t c = 0;
  for (std::size_t i = 0; i < n; ++i) c += mask[i] != 0 ? 1 : 0;
  return c;
}

#if NCPM_SIMD_X86

// ---------------------------------------------------------------------------
// SSE2 tier

void row_xor_sse2(std::uint64_t* dst, const std::uint64_t* src,
                  std::size_t n) noexcept {
  std::size_t w = 0;
  for (; w + 2 <= n; w += 2) {
    __m128i d = _mm_loadu_si128(reinterpret_cast<const __m128i*>(dst + w));
    __m128i s = _mm_loadu_si128(reinterpret_cast<const __m128i*>(src + w));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(dst + w), _mm_xor_si128(d, s));
  }
  row_xor_scalar(dst + w, src + w, n - w);
}

void row_or_sse2(std::uint64_t* dst, const std::uint64_t* src,
                 std::size_t n) noexcept {
  std::size_t w = 0;
  for (; w + 2 <= n; w += 2) {
    __m128i d = _mm_loadu_si128(reinterpret_cast<const __m128i*>(dst + w));
    __m128i s = _mm_loadu_si128(reinterpret_cast<const __m128i*>(src + w));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(dst + w), _mm_or_si128(d, s));
  }
  row_or_scalar(dst + w, src + w, n - w);
}

// SSE2 has no pshufb for the nibble LUT; the hardware popcnt via
// std::popcount is already the fast path here.

std::uint64_t popcount_words_sse2(const std::uint64_t* a, std::size_t n) noexcept {
  std::uint64_t c0 = 0, c1 = 0;
  std::size_t w = 0;
  for (; w + 2 <= n; w += 2) {
    c0 += static_cast<std::uint64_t>(std::popcount(a[w]));
    c1 += static_cast<std::uint64_t>(std::popcount(a[w + 1]));
  }
  return c0 + c1 + popcount_words_scalar(a + w, n - w);
}

std::uint64_t and_popcount_sse2(const std::uint64_t* a, const std::uint64_t* b,
                                std::size_t n) noexcept {
  std::uint64_t c0 = 0, c1 = 0;
  std::size_t w = 0;
  for (; w + 2 <= n; w += 2) {
    c0 += static_cast<std::uint64_t>(std::popcount(a[w] & b[w]));
    c1 += static_cast<std::uint64_t>(std::popcount(a[w + 1] & b[w + 1]));
  }
  return c0 + c1 + and_popcount_scalar(a + w, b + w, n - w);
}

std::size_t find_pivot_sse2(const std::uint64_t* words, std::size_t stride,
                            std::size_t word_index, std::uint64_t mask,
                            std::size_t row_begin, std::size_t row_end) noexcept {
  std::size_t r = row_begin;
  const std::uint64_t* p = words + row_begin * stride + word_index;
  for (; r + 4 <= row_end; r += 4, p += 4 * stride) {
    if (((p[0] | p[stride] | p[2 * stride] | p[3 * stride]) & mask) != 0) {
      if ((p[0] & mask) != 0) return r;
      if ((p[stride] & mask) != 0) return r + 1;
      if ((p[2 * stride] & mask) != 0) return r + 2;
      return r + 3;
    }
  }
  return find_pivot_scalar(words, stride, word_index, mask, r, row_end);
}

std::size_t mask_nonzero_count_sse2(const std::uint8_t* mask, std::size_t n) noexcept {
  const __m128i zero = _mm_setzero_si128();
  std::size_t c = 0;
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    __m128i b = _mm_loadu_si128(reinterpret_cast<const __m128i*>(mask + i));
    const int zeros = _mm_movemask_epi8(_mm_cmpeq_epi8(b, zero));
    c += 16 - static_cast<std::size_t>(std::popcount(static_cast<unsigned>(zeros)));
  }
  return c + mask_nonzero_count_scalar(mask + i, n - i);
}

// ---------------------------------------------------------------------------
// AVX2 tier

NCPM_TARGET_AVX2
void row_xor_avx2(std::uint64_t* dst, const std::uint64_t* src,
                  std::size_t n) noexcept {
  std::size_t w = 0;
  for (; w + 8 <= n; w += 8) {
    __m256i d0 = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(dst + w));
    __m256i d1 = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(dst + w + 4));
    __m256i s0 = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + w));
    __m256i s1 = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + w + 4));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + w), _mm256_xor_si256(d0, s0));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + w + 4),
                        _mm256_xor_si256(d1, s1));
  }
  for (; w + 4 <= n; w += 4) {
    __m256i d = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(dst + w));
    __m256i s = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + w));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + w), _mm256_xor_si256(d, s));
  }
  row_xor_scalar(dst + w, src + w, n - w);
}

NCPM_TARGET_AVX2
void row_or_avx2(std::uint64_t* dst, const std::uint64_t* src,
                 std::size_t n) noexcept {
  std::size_t w = 0;
  for (; w + 4 <= n; w += 4) {
    __m256i d = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(dst + w));
    __m256i s = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + w));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + w), _mm256_or_si256(d, s));
  }
  row_or_scalar(dst + w, src + w, n - w);
}

// Nibble-LUT popcount (Mula): per-byte counts via pshufb, horizontal sum
// into 4 u64 partials via psadbw.
NCPM_TARGET_AVX2
inline __m256i popcount256(__m256i v) noexcept {
  const __m256i lut = _mm256_setr_epi8(0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4,
                                       0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4);
  const __m256i low = _mm256_set1_epi8(0x0f);
  __m256i lo = _mm256_and_si256(v, low);
  __m256i hi = _mm256_and_si256(_mm256_srli_epi32(v, 4), low);
  __m256i cnt = _mm256_add_epi8(_mm256_shuffle_epi8(lut, lo),
                                _mm256_shuffle_epi8(lut, hi));
  return _mm256_sad_epu8(cnt, _mm256_setzero_si256());
}

NCPM_TARGET_AVX2
std::uint64_t popcount_words_avx2(const std::uint64_t* a, std::size_t n) noexcept {
  __m256i acc = _mm256_setzero_si256();
  std::size_t w = 0;
  for (; w + 4 <= n; w += 4) {
    __m256i v = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + w));
    acc = _mm256_add_epi64(acc, popcount256(v));
  }
  __m128i s = _mm_add_epi64(_mm256_castsi256_si128(acc),
                            _mm256_extracti128_si256(acc, 1));
  std::uint64_t c =
      static_cast<std::uint64_t>(_mm_cvtsi128_si64(s)) +
      static_cast<std::uint64_t>(_mm_cvtsi128_si64(_mm_unpackhi_epi64(s, s)));
  return c + popcount_words_scalar(a + w, n - w);
}

NCPM_TARGET_AVX2
std::uint64_t and_popcount_avx2(const std::uint64_t* a, const std::uint64_t* b,
                                std::size_t n) noexcept {
  __m256i acc = _mm256_setzero_si256();
  std::size_t w = 0;
  for (; w + 4 <= n; w += 4) {
    __m256i va = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + w));
    __m256i vb = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + w));
    acc = _mm256_add_epi64(acc, popcount256(_mm256_and_si256(va, vb)));
  }
  __m128i s = _mm_add_epi64(_mm256_castsi256_si128(acc),
                            _mm256_extracti128_si256(acc, 1));
  std::uint64_t c =
      static_cast<std::uint64_t>(_mm_cvtsi128_si64(s)) +
      static_cast<std::uint64_t>(_mm_cvtsi128_si64(_mm_unpackhi_epi64(s, s)));
  return c + and_popcount_scalar(a + w, b + w, n - w);
}

NCPM_TARGET_AVX2
std::size_t find_pivot_avx2(const std::uint64_t* words, std::size_t stride,
                            std::size_t word_index, std::uint64_t mask,
                            std::size_t row_begin, std::size_t row_end) noexcept {
  const __m256i vmask = _mm256_set1_epi64x(static_cast<long long>(mask));
  const std::int64_t s = static_cast<std::int64_t>(stride);
  std::size_t r = row_begin;
  for (; r + 4 <= row_end; r += 4) {
    const std::int64_t base =
        static_cast<std::int64_t>(r) * s + static_cast<std::int64_t>(word_index);
    const __m256i vidx = _mm256_setr_epi64x(base, base + s, base + 2 * s, base + 3 * s);
    __m256i w = _mm256_i64gather_epi64(
        reinterpret_cast<const long long*>(words), vidx, 8);
    __m256i hit = _mm256_and_si256(w, vmask);
    if (!_mm256_testz_si256(hit, hit)) {
      return find_pivot_scalar(words, stride, word_index, mask, r, r + 4);
    }
  }
  return find_pivot_scalar(words, stride, word_index, mask, r, row_end);
}

NCPM_TARGET_AVX2
std::size_t mask_nonzero_count_avx2(const std::uint8_t* mask, std::size_t n) noexcept {
  const __m256i zero = _mm256_setzero_si256();
  std::size_t c = 0;
  std::size_t i = 0;
  for (; i + 32 <= n; i += 32) {
    __m256i b = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(mask + i));
    const unsigned zeros =
        static_cast<unsigned>(_mm256_movemask_epi8(_mm256_cmpeq_epi8(b, zero)));
    c += 32 - static_cast<std::size_t>(std::popcount(zeros));
  }
  return c + mask_nonzero_count_scalar(mask + i, n - i);
}

#endif  // NCPM_SIMD_X86

SimdTier clamp(SimdTier tier) noexcept {
  const auto detected = pram::detected_simd_tier();
  return static_cast<int>(tier) > static_cast<int>(detected) ? detected : tier;
}

}  // namespace

#if NCPM_SIMD_X86
#define NCPM_DISPATCH(fn, ...)       \
  switch (clamp(tier)) {             \
    case SimdTier::kAvx2:            \
      return fn##_avx2(__VA_ARGS__); \
    case SimdTier::kSse2:            \
      return fn##_sse2(__VA_ARGS__); \
    case SimdTier::kScalar:          \
      break;                         \
  }                                  \
  return fn##_scalar(__VA_ARGS__)
#else
#define NCPM_DISPATCH(fn, ...) \
  (void)clamp(tier);           \
  return fn##_scalar(__VA_ARGS__)
#endif

void row_xor(SimdTier tier, std::uint64_t* dst, const std::uint64_t* src,
             std::size_t n) noexcept {
  NCPM_DISPATCH(row_xor, dst, src, n);
}

void row_or(SimdTier tier, std::uint64_t* dst, const std::uint64_t* src,
            std::size_t n) noexcept {
  NCPM_DISPATCH(row_or, dst, src, n);
}

std::uint64_t popcount_words(SimdTier tier, const std::uint64_t* a,
                             std::size_t n) noexcept {
  NCPM_DISPATCH(popcount_words, a, n);
}

std::uint64_t and_popcount(SimdTier tier, const std::uint64_t* a,
                           const std::uint64_t* b, std::size_t n) noexcept {
  NCPM_DISPATCH(and_popcount, a, b, n);
}

std::size_t find_pivot(SimdTier tier, const std::uint64_t* words, std::size_t stride,
                       std::size_t word_index, std::uint64_t mask,
                       std::size_t row_begin, std::size_t row_end) noexcept {
  NCPM_DISPATCH(find_pivot, words, stride, word_index, mask, row_begin, row_end);
}

std::size_t mask_nonzero_count(SimdTier tier, const std::uint8_t* mask,
                               std::size_t n) noexcept {
  NCPM_DISPATCH(mask_nonzero_count, mask, n);
}

#undef NCPM_DISPATCH

}  // namespace ncpm::linalg::gf2k
