#pragma once
// Word-level GF(2) kernels with runtime SIMD dispatch.
//
// Everything `BitMatrix` does per row — XOR/OR a row into another,
// popcount, probe a pivot column — bottoms out in one of these kernels.
// They follow the tier contract of pram/simd.hpp: AVX2/SSE2/scalar
// variants, selected by `pram::active_simd_tier()` (or an explicit tier
// for the parity tests), every tier bit-exact against scalar, tails
// handled by the scalar loop so nothing reads past the span.
//
// The AVX2 popcount is the classic nibble-LUT + psadbw reduction (AVX2
// has no vpopcntq); SSE2 lacks pshufb, so its popcount tier and the
// strided pivot probe fall back to unrolled scalar — parity, not speed,
// is the guarantee there.

#include <cstddef>
#include <cstdint>

#include "pram/simd.hpp"

namespace ncpm::linalg::gf2k {

using pram::SimdTier;

/// dst[w] ^= src[w] for w in [0, n) — the elimination/product inner loop.
void row_xor(SimdTier tier, std::uint64_t* dst, const std::uint64_t* src,
             std::size_t n) noexcept;
inline void row_xor(std::uint64_t* dst, const std::uint64_t* src,
                    std::size_t n) noexcept {
  row_xor(pram::active_simd_tier(), dst, src, n);
}

/// dst[w] |= src[w] for w in [0, n) — the boolean-semiring inner loop.
void row_or(SimdTier tier, std::uint64_t* dst, const std::uint64_t* src,
            std::size_t n) noexcept;
inline void row_or(std::uint64_t* dst, const std::uint64_t* src,
                   std::size_t n) noexcept {
  row_or(pram::active_simd_tier(), dst, src, n);
}

/// popcount(a[0..n)) — set bits in a packed row.
std::uint64_t popcount_words(SimdTier tier, const std::uint64_t* a,
                             std::size_t n) noexcept;
inline std::uint64_t popcount_words(const std::uint64_t* a, std::size_t n) noexcept {
  return popcount_words(pram::active_simd_tier(), a, n);
}

/// popcount(a & b) — AND-reduce two packed rows (row intersection size).
std::uint64_t and_popcount(SimdTier tier, const std::uint64_t* a,
                           const std::uint64_t* b, std::size_t n) noexcept;
inline std::uint64_t and_popcount(const std::uint64_t* a, const std::uint64_t* b,
                                  std::size_t n) noexcept {
  return and_popcount(pram::active_simd_tier(), a, b, n);
}

/// Pivot search: smallest r in [row_begin, row_end) with
/// (words[r * stride + word_index] & mask) != 0; row_end if none.
/// (The strided column probe of Gaussian elimination.)
std::size_t find_pivot(SimdTier tier, const std::uint64_t* words, std::size_t stride,
                       std::size_t word_index, std::uint64_t mask,
                       std::size_t row_begin, std::size_t row_end) noexcept;
inline std::size_t find_pivot(const std::uint64_t* words, std::size_t stride,
                              std::size_t word_index, std::uint64_t mask,
                              std::size_t row_begin, std::size_t row_end) noexcept {
  return find_pivot(pram::active_simd_tier(), words, stride, word_index, mask,
                    row_begin, row_end);
}

/// Number of nonzero bytes in mask[0..n) — alive-edge count of a byte mask.
std::size_t mask_nonzero_count(SimdTier tier, const std::uint8_t* mask,
                               std::size_t n) noexcept;
inline std::size_t mask_nonzero_count(const std::uint8_t* mask, std::size_t n) noexcept {
  return mask_nonzero_count(pram::active_simd_tier(), mask, n);
}

}  // namespace ncpm::linalg::gf2k
