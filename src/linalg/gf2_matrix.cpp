#include "linalg/gf2_matrix.hpp"

#include <stdexcept>

#include "linalg/gf2_kernels.hpp"
#include "obs/profiler.hpp"
#include "pram/executor.hpp"

namespace ncpm::linalg {

BitMatrix::BitMatrix(std::size_t rows, std::size_t cols)
    : rows_(rows), cols_(cols), words_per_row_((cols + 63) / 64), words_(rows * words_per_row_, 0) {}

BitMatrix BitMatrix::identity(std::size_t n) {
  BitMatrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) m.set(i, i);
  return m;
}

void BitMatrix::or_assign(const BitMatrix& other, pram::Executor& ex) {
  if (rows_ != other.rows_ || cols_ != other.cols_) {
    throw std::invalid_argument("BitMatrix::or_assign: shape mismatch");
  }
  // Treat the whole backing store as one flat row and OR it in blocks, one
  // kernel call per lane's share.
  const std::size_t n = words_.size();
  if (n == 0) return;
  const auto nlanes = static_cast<std::size_t>(ex.lanes());
  const std::size_t block = (n + nlanes - 1) / nlanes;
  const std::size_t nblocks = (n + block - 1) / block;
  ex.parallel_for(nblocks, [&](std::size_t b) {
    const std::size_t lo = b * block;
    const std::size_t hi = lo + block < n ? lo + block : n;
    gf2k::row_or(words_.data() + lo, other.words_.data() + lo, hi - lo);
  });
}

std::uint64_t BitMatrix::popcount(pram::Executor& ex) const {
  return ex.parallel_reduce(
      rows_, std::uint64_t{0},
      [&](std::size_t r) {
        return gf2k::popcount_words(words_.data() + r * words_per_row_, words_per_row_);
      },
      [](std::uint64_t a, std::uint64_t b) { return a + b; });
}

bool BitMatrix::operator==(const BitMatrix& other) const {
  return rows_ == other.rows_ && cols_ == other.cols_ && words_ == other.words_;
}

bool BitMatrix::any_diagonal(pram::Executor& ex) const {
  const std::size_t n = rows_ < cols_ ? rows_ : cols_;
  return ex.parallel_any(n, [&](std::size_t i) { return get(i, i); });
}

std::vector<std::uint8_t> BitMatrix::diagonal(pram::Executor& ex) const {
  const std::size_t n = rows_ < cols_ ? rows_ : cols_;
  std::vector<std::uint8_t> d(n);
  ex.parallel_for(n, [&](std::size_t i) { d[i] = get(i, i) ? 1 : 0; });
  return d;
}

std::size_t BitMatrix::gf2_rank(pram::NcCounters* counters, pram::Executor& ex) const {
  obs::PhaseScope phase(ex.profiler(), obs::Phase::kGf2Rank);
  BitMatrix work = *this;
  const std::size_t wpr = work.words_per_row_;
  std::size_t pivot_row = 0;
  for (std::size_t col = 0; col < cols_ && pivot_row < rows_; ++col) {
    // Find a row at or below pivot_row with a 1 in this column (strided
    // column probe; AVX2 tier gathers four rows per step).
    const std::uint64_t mask = std::uint64_t{1} << (col & 63U);
    const std::size_t found =
        gf2k::find_pivot(work.words_.data(), wpr, col >> 6, mask, pivot_row, rows_);
    if (found == rows_) continue;
    if (found != pivot_row) {
      auto a = work.row(found);
      auto b = work.row(pivot_row);
      for (std::size_t w = 0; w < wpr; ++w) std::swap(a[w], b[w]);
    }
    // Eliminate the column from every other row in one parallel round.
    const std::size_t pr = pivot_row;
    ex.parallel_for(rows_, [&](std::size_t r) {
      if (r != pr && work.get(r, col)) {
        gf2k::row_xor(work.row(r).data(), work.row(pr).data(), wpr);
      }
    });
    pram::add_round(counters, rows_ * wpr);
    ++pivot_row;
  }
  return pivot_row;
}

namespace {

template <bool Xor>
BitMatrix product_impl(const BitMatrix& a, const BitMatrix& b, pram::NcCounters* counters,
                       pram::Executor& ex) {
  if (a.cols() != b.rows()) {
    throw std::invalid_argument("BitMatrix product: inner dimension mismatch");
  }
  BitMatrix c(a.rows(), b.cols());
  const std::size_t wpr = c.words_per_row();
  ex.parallel_for(a.rows(), [&](std::size_t i) {
    auto out = c.row(i);
    for (std::size_t k = 0; k < a.cols(); ++k) {
      if (!a.get(i, k)) continue;
      auto src = b.row(k);
      if constexpr (Xor) {
        gf2k::row_xor(out.data(), src.data(), wpr);
      } else {
        gf2k::row_or(out.data(), src.data(), wpr);
      }
    }
  });
  pram::add_round(counters, a.rows() * a.cols());
  return c;
}

}  // namespace

BitMatrix bool_product(const BitMatrix& a, const BitMatrix& b, pram::NcCounters* counters,
                       pram::Executor& ex) {
  return product_impl<false>(a, b, counters, ex);
}

BitMatrix gf2_product(const BitMatrix& a, const BitMatrix& b, pram::NcCounters* counters,
                      pram::Executor& ex) {
  return product_impl<true>(a, b, counters, ex);
}

}  // namespace ncpm::linalg
