#include "linalg/incidence.hpp"

#include <stdexcept>

#include "linalg/gf2_kernels.hpp"

namespace ncpm::linalg {

BitMatrix incidence_matrix(std::size_t n_vertices, std::span<const std::int32_t> eu,
                           std::span<const std::int32_t> ev,
                           std::span<const std::uint8_t> edge_alive) {
  if (eu.size() != ev.size()) throw std::invalid_argument("incidence_matrix: eu/ev size mismatch");
  if (!edge_alive.empty() && edge_alive.size() != eu.size()) {
    throw std::invalid_argument("incidence_matrix: edge_alive size mismatch");
  }
  BitMatrix m(n_vertices, eu.size());
  for (std::size_t j = 0; j < eu.size(); ++j) {
    if (!edge_alive.empty() && edge_alive[j] == 0) continue;
    const auto u = static_cast<std::size_t>(eu[j]);
    const auto v = static_cast<std::size_t>(ev[j]);
    if (u >= n_vertices || v >= n_vertices) {
      throw std::out_of_range("incidence_matrix: endpoint out of range");
    }
    if (u != v) {  // a self-loop contributes 1 + 1 = 0 mod 2
      m.set(u, j);
      m.set(v, j);
    }
  }
  return m;
}

std::size_t component_count_by_rank(std::size_t n_vertices, std::span<const std::int32_t> eu,
                                    std::span<const std::int32_t> ev,
                                    std::span<const std::uint8_t> edge_alive,
                                    pram::NcCounters* counters, pram::Executor& ex) {
  // Alive-edge popcount over the byte mask (SIMD movemask kernel): a graph
  // with no surviving edges has a zero incidence matrix, so rank 0 and
  // every vertex its own component — skip the elimination entirely. The
  // size checks mirror incidence_matrix so the early exit never masks a
  // malformed call.
  if (eu.size() != ev.size()) throw std::invalid_argument("incidence_matrix: eu/ev size mismatch");
  if (!edge_alive.empty()) {
    if (edge_alive.size() != eu.size()) {
      throw std::invalid_argument("incidence_matrix: edge_alive size mismatch");
    }
    if (gf2k::mask_nonzero_count(edge_alive.data(), edge_alive.size()) == 0) {
      return n_vertices;
    }
  }
  const BitMatrix m = incidence_matrix(n_vertices, eu, ev, edge_alive);
  return n_vertices - m.gf2_rank(counters, ex);
}

}  // namespace ncpm::linalg
