#pragma once
// Bit-packed matrices over GF(2) / the boolean semiring.
//
// Two of the paper's Section IV-A building blocks are matrix computations:
//   * Theorem 5 (JáJá): transitive closure via O(log n) matrix squarings —
//     served by `bool_product` (OR-AND semiring).
//   * Theorem 7 (Mulmuley) + Lemma 6: cycle detection via the rank of the
//     graph incidence matrix — served by `gf2_rank` (XOR-AND field GF(2)).
//     Over GF(2) the unoriented incidence matrix of *any* multigraph has
//     rank n - #components, which is exactly the Lemma 6 use site.
//
// Rows are packed 64 entries per word; products parallelise over rows and
// the rank elimination parallelises over rows per pivot column.

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "pram/counters.hpp"
#include "pram/executor.hpp"

namespace ncpm::linalg {

class BitMatrix {
 public:
  BitMatrix() = default;
  BitMatrix(std::size_t rows, std::size_t cols);

  static BitMatrix identity(std::size_t n);

  std::size_t rows() const noexcept { return rows_; }
  std::size_t cols() const noexcept { return cols_; }

  bool get(std::size_t r, std::size_t c) const {
    return ((row_word(r, c >> 6) >> (c & 63U)) & 1U) != 0;
  }
  void set(std::size_t r, std::size_t c, bool value = true) {
    const std::uint64_t mask = std::uint64_t{1} << (c & 63U);
    auto& w = words_[r * words_per_row_ + (c >> 6)];
    if (value) {
      w |= mask;
    } else {
      w &= ~mask;
    }
  }
  void flip(std::size_t r, std::size_t c) {
    words_[r * words_per_row_ + (c >> 6)] ^= std::uint64_t{1} << (c & 63U);
  }

  std::span<std::uint64_t> row(std::size_t r) {
    return {words_.data() + r * words_per_row_, words_per_row_};
  }
  std::span<const std::uint64_t> row(std::size_t r) const {
    return {words_.data() + r * words_per_row_, words_per_row_};
  }
  std::size_t words_per_row() const noexcept { return words_per_row_; }

  /// this |= other (elementwise OR); shapes must match. Rounds run on `ex`.
  void or_assign(const BitMatrix& other, pram::Executor& ex = pram::default_executor());

  bool operator==(const BitMatrix& other) const;

  /// Number of set bits in the whole matrix (rows reduced in parallel,
  /// each row through the dispatched popcount kernel).
  std::uint64_t popcount(pram::Executor& ex = pram::default_executor()) const;

  /// True iff any diagonal entry is set (square matrices).
  bool any_diagonal(pram::Executor& ex = pram::default_executor()) const;
  /// diagonal()[i] = entry (i, i) as 0/1 (square matrices).
  std::vector<std::uint8_t> diagonal(pram::Executor& ex = pram::default_executor()) const;

  /// Rank over GF(2) (Gaussian elimination; one parallel elimination round
  /// per pivot column, counted on `counters`).
  std::size_t gf2_rank(pram::NcCounters* counters = nullptr,
                       pram::Executor& ex = pram::default_executor()) const;

 private:
  std::uint64_t row_word(std::size_t r, std::size_t w) const {
    return words_[r * words_per_row_ + w];
  }

  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::size_t words_per_row_ = 0;
  std::vector<std::uint64_t> words_;
};

/// Boolean (OR-AND) matrix product: C[i][j] = OR_k (A[i][k] AND B[k][j]).
BitMatrix bool_product(const BitMatrix& a, const BitMatrix& b,
                       pram::NcCounters* counters = nullptr,
                       pram::Executor& ex = pram::default_executor());

/// GF(2) (XOR-AND) matrix product.
BitMatrix gf2_product(const BitMatrix& a, const BitMatrix& b,
                      pram::NcCounters* counters = nullptr,
                      pram::Executor& ex = pram::default_executor());

}  // namespace ncpm::linalg
