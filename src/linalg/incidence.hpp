#pragma once
// Graph incidence matrices over GF(2) (Lemma 6 of the paper).
//
// For an undirected multigraph G with n vertices, m edges and k connected
// components, the unoriented incidence matrix I_G over GF(2) has
// rank(I_G) = n - k. Section IV-A uses this to detect the unique cycle of a
// pseudoforest: edge e lies on a cycle iff removing its column leaves the
// rank unchanged (equivalently, cc(G - e) = cc(G)).
//
// Self-loops produce an all-zero column mod 2 (1 + 1 = 0), which is exactly
// right: a self-loop is a cycle, and deleting a zero column never changes the
// rank, so the rank test classifies it as a cycle edge.

#include <cstdint>
#include <span>
#include <vector>

#include "linalg/gf2_matrix.hpp"
#include "pram/counters.hpp"

namespace ncpm::linalg {

/// Unoriented incidence matrix over GF(2): rows = vertices, columns = edges.
/// Edge j joins eu[j] and ev[j]; `edge_alive` (optional) masks columns out.
BitMatrix incidence_matrix(std::size_t n_vertices, std::span<const std::int32_t> eu,
                           std::span<const std::int32_t> ev,
                           std::span<const std::uint8_t> edge_alive = {});

/// Number of connected components of the multigraph, computed as
/// n - rank(I_G) per Lemma 6. Isolated vertices count as components.
std::size_t component_count_by_rank(std::size_t n_vertices, std::span<const std::int32_t> eu,
                                    std::span<const std::int32_t> ev,
                                    std::span<const std::uint8_t> edge_alive = {},
                                    pram::NcCounters* counters = nullptr,
                                    pram::Executor& ex = pram::default_executor());

}  // namespace ncpm::linalg
