#include "graph/pseudoforest.hpp"

#include <algorithm>
#include <atomic>
#include <stdexcept>

#include "graph/connected_components.hpp"
#include "graph/transitive_closure.hpp"
#include "linalg/incidence.hpp"
#include "pram/executor.hpp"

namespace ncpm::graph {

namespace {

void validate(const DirectedPseudoforest& pf, pram::Executor& ex) {
  const std::size_t n = pf.size();
  const bool bad = ex.parallel_any(n, [&](std::size_t v) {
    const auto nx = pf.next[v];
    return nx != pram::kNone && (nx < 0 || static_cast<std::size_t>(nx) >= n);
  });
  if (bad) throw std::invalid_argument("pseudoforest: successor out of range");
}

/// Successor map with sinks turned into self-loops (fixed points).
std::vector<std::int32_t> closed_successors(const DirectedPseudoforest& pf, pram::Executor& ex) {
  std::vector<std::int32_t> f(pf.size());
  ex.parallel_for(pf.size(), [&](std::size_t v) {
    f[v] = pf.is_sink(v) ? static_cast<std::int32_t>(v) : pf.next[v];
  });
  return f;
}

/// Edge list of the underlying undirected multigraph (one edge per non-sink).
void undirected_edges(const DirectedPseudoforest& pf, std::vector<std::int32_t>& eu,
                      std::vector<std::int32_t>& ev, std::vector<std::int32_t>& tail_of_edge) {
  eu.clear();
  ev.clear();
  tail_of_edge.clear();
  for (std::size_t v = 0; v < pf.size(); ++v) {
    if (!pf.is_sink(v)) {
      eu.push_back(static_cast<std::int32_t>(v));
      ev.push_back(pf.next[v]);
      tail_of_edge.push_back(static_cast<std::int32_t>(v));
    }
  }
}

std::vector<std::uint8_t> members_pointer_doubling(const DirectedPseudoforest& pf,
                                                   pram::NcCounters* counters,
                                                   pram::Executor& ex) {
  const std::size_t n = pf.size();
  const auto f = closed_successors(pf, ex);
  // For K >= n the image of f^K is exactly {cycle vertices} ∪ {sinks}: any
  // tree vertex is at distance < n from every start, so nothing maps onto it
  // after n steps, while f^K restricted to a cycle is a bijection of the cycle.
  const std::uint64_t k = std::uint64_t{1} << pram::ceil_log2(n == 0 ? 1 : n);
  const auto fk = pram::kth_power(f, k, counters, ex);
  std::vector<std::uint8_t> mark(n, 0);
  ex.parallel_for(n, [&](std::size_t v) {
    // CRCW common-value write, realised with relaxed atomics.
    std::atomic_ref<std::uint8_t>(mark[static_cast<std::size_t>(fk[v])])
        .store(1, std::memory_order_relaxed);
  });
  pram::add_round(counters, n);
  ex.parallel_for(n, [&](std::size_t v) {
    if (pf.is_sink(v)) mark[v] = 0;
  });
  pram::add_round(counters, n);
  return mark;
}

std::vector<std::uint8_t> members_transitive_closure(const DirectedPseudoforest& pf,
                                                     pram::NcCounters* counters,
                                                     pram::Executor& ex) {
  const std::size_t n = pf.size();
  std::vector<std::int32_t> tail, head;
  for (std::size_t v = 0; v < n; ++v) {
    if (!pf.is_sink(v)) {
      tail.push_back(static_cast<std::int32_t>(v));
      head.push_back(pf.next[v]);
    }
  }
  const auto closure = transitive_closure(adjacency_matrix(n, tail, head), counters, ex);
  return closure.diagonal(ex);  // v on a directed cycle iff v reaches itself
}

/// Shared for the Gf2Rank / EdgeRemovalCC methods: mark endpoints of every
/// edge whose removal keeps the component count unchanged.
template <typename ComponentCount>
std::vector<std::uint8_t> members_by_edge_removal(const DirectedPseudoforest& pf,
                                                  ComponentCount&& cc_of) {
  const std::size_t n = pf.size();
  std::vector<std::int32_t> eu, ev, tail;
  undirected_edges(pf, eu, ev, tail);
  const std::size_t m = eu.size();
  std::vector<std::uint8_t> alive(m, 1);
  const std::size_t base = cc_of(eu, ev, alive);
  std::vector<std::uint8_t> edge_on_cycle(m, 0);
  // The paper runs all m edge-removal tests in parallel; the per-test
  // computation is itself a parallel NC primitive, so we keep the outer loop
  // sequential here to avoid nested thread pools. Work is identical.
  for (std::size_t j = 0; j < m; ++j) {
    alive[j] = 0;
    edge_on_cycle[j] = (cc_of(eu, ev, alive) == base) ? 1 : 0;
    alive[j] = 1;
  }
  std::vector<std::uint8_t> mark(n, 0);
  for (std::size_t j = 0; j < m; ++j) {
    if (edge_on_cycle[j] != 0) {
      mark[static_cast<std::size_t>(eu[j])] = 1;
      mark[static_cast<std::size_t>(ev[j])] = 1;
    }
  }
  return mark;
}

}  // namespace

std::vector<std::uint8_t> cycle_members(const DirectedPseudoforest& pf, CycleMethod method,
                                        pram::NcCounters* counters, pram::Executor& ex) {
  validate(pf, ex);
  switch (method) {
    case CycleMethod::PointerDoubling:
      return members_pointer_doubling(pf, counters, ex);
    case CycleMethod::TransitiveClosure:
      return members_transitive_closure(pf, counters, ex);
    case CycleMethod::Gf2Rank:
      return members_by_edge_removal(pf, [&](auto& eu, auto& ev, auto& alive) {
        return linalg::component_count_by_rank(pf.size(), eu, ev, alive, counters, ex);
      });
    case CycleMethod::EdgeRemovalCC:
      return members_by_edge_removal(pf, [&](auto& eu, auto& ev, auto& alive) {
        return static_cast<std::size_t>(
            connected_components(pf.size(), eu, ev, alive, counters, ex).count);
      });
  }
  throw std::invalid_argument("cycle_members: unknown method");
}

std::vector<std::int32_t> weak_components(const DirectedPseudoforest& pf,
                                          pram::NcCounters* counters, pram::Executor& ex) {
  validate(pf, ex);
  std::vector<std::int32_t> eu, ev, tail;
  undirected_edges(pf, eu, ev, tail);
  return connected_components(pf.size(), eu, ev, {}, counters, ex).label;
}

CycleAnalysis analyze_cycles(const DirectedPseudoforest& pf, CycleMethod method,
                             pram::NcCounters* counters, pram::Executor& ex) {
  const std::size_t n = pf.size();
  CycleAnalysis out;
  out.on_cycle = cycle_members(pf, method, counters, ex);
  out.component = weak_components(pf, counters, ex);
  out.cycle_root.assign(n, pram::kNone);
  out.dist_to_root.assign(n, 0);
  out.cycle_length.assign(n, 0);
  if (n == 0) return out;

  // Root election: windowed min over vertex ids along the cycle. Off-cycle
  // vertices participate harmlessly (their window min is never read).
  const auto f = closed_successors(pf, ex);
  std::vector<std::int64_t> key(n);
  ex.parallel_for(n, [&](std::size_t v) { key[v] = static_cast<std::int64_t>(v); });
  pram::add_round(counters, n);
  const auto wmin = pram::window_min(f, key, n, counters, ex);
  ex.parallel_for(n, [&](std::size_t v) {
    if (out.on_cycle[v] != 0) out.cycle_root[v] = static_cast<std::int32_t>(wmin[v]);
  });
  pram::add_round(counters, n);

  // Distance to root: break every cycle at its root (root becomes a terminal)
  // and list-rank. rank[v] is then the distance v -> root along the cycle.
  std::vector<std::int32_t> broken(n);
  ex.parallel_for(n, [&](std::size_t v) {
    const bool is_root = out.on_cycle[v] != 0 && out.cycle_root[v] == static_cast<std::int32_t>(v);
    broken[v] = is_root ? static_cast<std::int32_t>(v) : f[v];
  });
  pram::add_round(counters, n);
  const auto ranking = pram::list_rank(broken, counters, ex);
  ex.parallel_for(n, [&](std::size_t v) {
    if (out.on_cycle[v] != 0) out.dist_to_root[v] = ranking.rank[v];
  });
  pram::add_round(counters, n);

  // Cycle length: the root's predecessor on the cycle sits at distance len-1.
  // Equivalently len = dist(next(root)) + 1; publish via the root then fan out.
  std::vector<std::int64_t> len_at_root(n, 0);
  ex.parallel_for(n, [&](std::size_t v) {
    if (out.on_cycle[v] != 0 && out.cycle_root[v] == static_cast<std::int32_t>(v)) {
      const auto succ = static_cast<std::size_t>(f[v]);
      len_at_root[v] = ranking.rank[succ] + 1;
    }
  });
  pram::add_round(counters, n);
  ex.parallel_for(n, [&](std::size_t v) {
    if (out.on_cycle[v] != 0) {
      out.cycle_length[v] = len_at_root[static_cast<std::size_t>(out.cycle_root[v])];
    }
  });
  pram::add_round(counters, n);

  // Materialise ordered cycles for sequential consumers (rotations, tests).
  std::vector<std::int32_t> roots;
  for (std::size_t v = 0; v < n; ++v) {
    if (out.on_cycle[v] != 0 && out.cycle_root[v] == static_cast<std::int32_t>(v)) {
      roots.push_back(static_cast<std::int32_t>(v));
    }
  }
  std::sort(roots.begin(), roots.end());
  out.cycles.reserve(roots.size());
  for (const auto r : roots) {
    std::vector<std::int32_t> cyc;
    cyc.reserve(static_cast<std::size_t>(out.cycle_length[static_cast<std::size_t>(r)]));
    std::int32_t v = r;
    do {
      cyc.push_back(v);
      v = f[static_cast<std::size_t>(v)];
    } while (v != r);
    out.cycles.push_back(std::move(cyc));
  }
  return out;
}

}  // namespace ncpm::graph
