#include "graph/path_decomposition.hpp"

#include <atomic>
#include <stdexcept>

#include "pram/parallel.hpp"
#include "pram/scan.hpp"

namespace ncpm::graph {

HalfEdgeStructure::HalfEdgeStructure(std::size_t n_vertices, std::span<const std::int32_t> eu,
                                     std::span<const std::int32_t> ev,
                                     std::span<const std::uint8_t> edge_alive,
                                     pram::NcCounters* counters)
    : n_(n_vertices),
      eu_(eu.begin(), eu.end()),
      ev_(ev.begin(), ev.end()),
      alive_(edge_alive.begin(), edge_alive.end()) {
  const std::size_t m = eu_.size();
  if (ev_.size() != m || alive_.size() != m) {
    throw std::invalid_argument("HalfEdgeStructure: edge array size mismatch");
  }
  const bool bad = pram::parallel_any(m, [&](std::size_t e) {
    if (alive_[e] == 0) return false;
    return eu_[e] < 0 || ev_[e] < 0 || static_cast<std::size_t>(eu_[e]) >= n_ ||
           static_cast<std::size_t>(ev_[e]) >= n_ || eu_[e] == ev_[e];
  });
  if (bad) throw std::invalid_argument("HalfEdgeStructure: bad alive edge (range or self-loop)");

  // Alive degrees via CRCW-sum (atomic adds), then CSR offsets via scan.
  degree_.assign(n_, 0);
  pram::parallel_for(m, [&](std::size_t e) {
    if (alive_[e] == 0) return;
    std::atomic_ref<std::int64_t>(degree_[static_cast<std::size_t>(eu_[e])])
        .fetch_add(1, std::memory_order_relaxed);
    std::atomic_ref<std::int64_t>(degree_[static_cast<std::size_t>(ev_[e])])
        .fetch_add(1, std::memory_order_relaxed);
  });
  pram::add_round(counters, m);

  std::vector<std::int64_t> deg_copy(degree_);
  std::vector<std::int64_t> off64(n_);
  const std::int64_t total = pram::exclusive_scan<std::int64_t>(deg_copy, off64, counters);
  offset_.resize(n_ + 1);
  pram::parallel_for(n_, [&](std::size_t v) { offset_[v] = static_cast<std::size_t>(off64[v]); });
  offset_[n_] = static_cast<std::size_t>(total);
  pram::add_round(counters, n_);

  incident_.resize(static_cast<std::size_t>(total));
  std::vector<std::int64_t> cursor(off64);
  pram::parallel_for(m, [&](std::size_t e) {
    if (alive_[e] == 0) return;
    const auto pu = std::atomic_ref<std::int64_t>(cursor[static_cast<std::size_t>(eu_[e])])
                        .fetch_add(1, std::memory_order_relaxed);
    incident_[static_cast<std::size_t>(pu)] = static_cast<std::int32_t>(e);
    const auto pv = std::atomic_ref<std::int64_t>(cursor[static_cast<std::size_t>(ev_[e])])
                        .fetch_add(1, std::memory_order_relaxed);
    incident_[static_cast<std::size_t>(pv)] = static_cast<std::int32_t>(e);
  });
  pram::add_round(counters, m);

  // Successors: continue through degree-2 targets, stop elsewhere.
  succ_.resize(2 * m);
  pram::parallel_for(2 * m, [&](std::size_t hs) {
    const auto h = static_cast<std::int32_t>(hs);
    const auto e = static_cast<std::size_t>(h >> 1);
    if (alive_[e] == 0) {
      succ_[hs] = h;
      return;
    }
    const std::int32_t t = target(h);
    if (degree(t) != 2) {
      succ_[hs] = h;
      return;
    }
    const auto inc = incident(t);
    const std::int32_t mine = static_cast<std::int32_t>(e);
    const std::int32_t other = inc[0] == mine ? inc[1] : inc[0];
    succ_[hs] = out_of(t, other);
  });
  pram::add_round(counters, 2 * m);

  ranking_ = pram::list_rank(succ_, counters);
}

}  // namespace ncpm::graph
