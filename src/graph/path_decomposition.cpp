#include "graph/path_decomposition.hpp"

#include <atomic>
#include <stdexcept>

#include "pram/scan.hpp"

namespace ncpm::graph {

HalfEdgeStructure::HalfEdgeStructure(std::size_t n_vertices, std::span<const std::int32_t> eu,
                                     std::span<const std::int32_t> ev,
                                     std::span<const std::uint8_t> edge_alive,
                                     pram::NcCounters* counters) {
  pram::Workspace ws;
  rebuild(n_vertices, eu, ev, edge_alive, ws, counters);
}

void HalfEdgeStructure::rebuild(std::size_t n_vertices, std::span<const std::int32_t> eu,
                                std::span<const std::int32_t> ev,
                                std::span<const std::uint8_t> edge_alive, pram::Workspace& ws,
                                pram::NcCounters* counters) {
  n_ = n_vertices;
  eu_.assign(eu.begin(), eu.end());
  ev_.assign(ev.begin(), ev.end());
  alive_.assign(edge_alive.begin(), edge_alive.end());
  const std::size_t m = eu_.size();
  if (ev_.size() != m || alive_.size() != m) {
    throw std::invalid_argument("HalfEdgeStructure: edge array size mismatch");
  }
  pram::Executor& ex = ws.exec();
  const bool bad = ex.parallel_any(m, [&](std::size_t e) {
    if (alive_[e] == 0) return false;
    return eu_[e] < 0 || ev_[e] < 0 || static_cast<std::size_t>(eu_[e]) >= n_ ||
           static_cast<std::size_t>(ev_[e]) >= n_ || eu_[e] == ev_[e];
  });
  if (bad) throw std::invalid_argument("HalfEdgeStructure: bad alive edge (range or self-loop)");

  // Alive degrees via CRCW-sum (atomic adds), then CSR offsets via scan.
  degree_.assign(n_, 0);
  ex.parallel_for(m, [&](std::size_t e) {
    if (alive_[e] == 0) return;
    std::atomic_ref<std::int64_t>(degree_[static_cast<std::size_t>(eu_[e])])
        .fetch_add(1, std::memory_order_relaxed);
    std::atomic_ref<std::int64_t>(degree_[static_cast<std::size_t>(ev_[e])])
        .fetch_add(1, std::memory_order_relaxed);
  });
  pram::add_round(counters, m);

  auto off64 = ws.take<std::int64_t>(n_);
  const std::int64_t total =
      pram::exclusive_scan<std::int64_t>(degree_, off64.span(), ws, counters);
  offset_.resize(n_ + 1);
  ex.parallel_for(n_, [&](std::size_t v) { offset_[v] = static_cast<std::size_t>(off64[v]); });
  offset_[n_] = static_cast<std::size_t>(total);
  pram::add_round(counters, n_);

  incident_.resize(static_cast<std::size_t>(total));
  auto cursor = ws.take<std::int64_t>(n_);
  ex.parallel_for(n_, [&](std::size_t v) { cursor[v] = off64[v]; });
  pram::add_round(counters, n_);
  ex.parallel_for(m, [&](std::size_t e) {
    if (alive_[e] == 0) return;
    const auto pu = std::atomic_ref<std::int64_t>(cursor[static_cast<std::size_t>(eu_[e])])
                        .fetch_add(1, std::memory_order_relaxed);
    incident_[static_cast<std::size_t>(pu)] = static_cast<std::int32_t>(e);
    const auto pv = std::atomic_ref<std::int64_t>(cursor[static_cast<std::size_t>(ev_[e])])
                        .fetch_add(1, std::memory_order_relaxed);
    incident_[static_cast<std::size_t>(pv)] = static_cast<std::int32_t>(e);
  });
  pram::add_round(counters, m);

  // Successors: continue through degree-2 targets, stop elsewhere.
  succ_.resize(2 * m);
  ex.parallel_for(2 * m, [&](std::size_t hs) {
    const auto h = static_cast<std::int32_t>(hs);
    const auto e = static_cast<std::size_t>(h >> 1);
    if (alive_[e] == 0) {
      succ_[hs] = h;
      return;
    }
    const std::int32_t t = target(h);
    if (degree(t) != 2) {
      succ_[hs] = h;
      return;
    }
    const auto inc = incident(t);
    const std::int32_t mine = static_cast<std::int32_t>(e);
    const std::int32_t other = inc[0] == mine ? inc[1] : inc[0];
    succ_[hs] = out_of(t, other);
  });
  pram::add_round(counters, 2 * m);

  ranking_.head.resize(2 * m);
  ranking_.rank.resize(2 * m);
  ranking_.reaches_terminal.resize(2 * m);
  pram::list_rank_into(succ_,
                       {ranking_.head, ranking_.rank, ranking_.reaches_terminal}, ws, counters);
}

AliveEdgePaths::AliveEdgePaths(std::size_t n_vertices, std::size_t max_edges,
                               pram::Workspace& ws)
    : ex_(&ws.exec()),
      deg_(ws.take<std::int32_t>(n_vertices)),
      inc_(ws.take<std::int32_t>(2 * n_vertices)),
      succ_(ws.take<std::int32_t>(2 * max_edges)),
      head_(ws.take<std::int32_t>(2 * max_edges)),
      rank_(ws.take<std::int64_t>(2 * max_edges)),
      reaches_(ws.take<std::uint8_t>(2 * max_edges)) {}

void AliveEdgePaths::rebuild_links(std::span<const std::int32_t> eu,
                                   std::span<const std::int32_t> ev,
                                   std::span<const std::uint8_t> edge_alive,
                                   pram::NcCounters* counters) {
  const std::size_t m = eu.size();
  if (ev.size() != m || 2 * m > succ_.size() ||
      (!edge_alive.empty() && edge_alive.size() != m)) {
    throw std::invalid_argument("AliveEdgePaths: edge array size mismatch");
  }
  m_ = m;
  eu_ = eu;
  ev_ = ev;
  const auto alive = [&](std::size_t e) { return edge_alive.empty() || edge_alive[e] != 0; };
  std::int32_t* const deg = deg_.data();
  std::int32_t* const inc = inc_.data();

  // Reset exactly the touched vertices (benign CRCW common writes), then
  // count degrees and register the first two incident edges per vertex —
  // all the degree-2 continuation ever needs.
  ex_->parallel_for(m, [&](std::size_t e) {
    if (!alive(e)) return;
    // CRCW common-value writes (endpoints shared between edges): relaxed
    // atomics, as everywhere else in the library.
    std::atomic_ref<std::int32_t>(deg[static_cast<std::size_t>(eu[e])])
        .store(0, std::memory_order_relaxed);
    std::atomic_ref<std::int32_t>(deg[static_cast<std::size_t>(ev[e])])
        .store(0, std::memory_order_relaxed);
  });
  pram::add_round(counters, m);
  ex_->parallel_for(m, [&](std::size_t e) {
    if (!alive(e)) return;
    for (const std::int32_t v : {eu[e], ev[e]}) {
      const std::int32_t slot = std::atomic_ref<std::int32_t>(deg[static_cast<std::size_t>(v)])
                                    .fetch_add(1, std::memory_order_relaxed);
      if (slot < 2) inc[2 * static_cast<std::size_t>(v) + slot] = static_cast<std::int32_t>(e);
    }
  });
  pram::add_round(counters, m);

  std::int32_t* const succ = succ_.data();
  ex_->parallel_for(2 * m, [&](std::size_t hs) {
    const auto e = hs >> 1;
    if (!alive(e)) {
      succ[hs] = static_cast<std::int32_t>(hs);
      return;
    }
    const std::int32_t t = (hs & 1) != 0 ? eu[e] : ev[e];
    if (deg[static_cast<std::size_t>(t)] != 2) {
      succ[hs] = static_cast<std::int32_t>(hs);
      return;
    }
    const auto mine = static_cast<std::int32_t>(e);
    const std::size_t ti = static_cast<std::size_t>(t);
    const std::int32_t other = inc[2 * ti] == mine ? inc[2 * ti + 1] : inc[2 * ti];
    succ[hs] = eu[static_cast<std::size_t>(other)] == t ? 2 * other : 2 * other + 1;
  });
  pram::add_round(counters, 2 * m);
}

void AliveEdgePaths::rank(pram::Workspace& ws, pram::NcCounters* counters) {
  pram::list_rank_into(succ_.span().first(2 * m_),
                       {head_.span().first(2 * m_), rank_.span().first(2 * m_),
                        reaches_.span().first(2 * m_)},
                       ws, counters);
}

}  // namespace ncpm::graph
