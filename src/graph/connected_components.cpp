#include "graph/connected_components.hpp"

#include <atomic>
#include <stdexcept>

#include "pram/executor.hpp"

namespace ncpm::graph {

namespace {

/// Grain for the very cheap per-vertex loops (a load, a compare, a store).
constexpr std::size_t kGrain = 2048;

/// CRCW-min write: lower `slot` to `value` if smaller, atomically.
inline void atomic_fetch_min(std::int32_t& slot, std::int32_t value) {
  std::atomic_ref<std::int32_t> ref(slot);
  std::int32_t cur = ref.load(std::memory_order_relaxed);
  while (value < cur &&
         !ref.compare_exchange_weak(cur, value, std::memory_order_relaxed)) {
  }
}

}  // namespace

ComponentLabels connected_components(std::size_t n, std::span<const std::int32_t> eu,
                                     std::span<const std::int32_t> ev,
                                     std::span<const std::uint8_t> edge_alive,
                                     pram::NcCounters* counters, pram::Executor& ex) {
  pram::Workspace ws(ex);
  return connected_components(n, eu, ev, edge_alive, ws, counters);
}

ComponentLabels connected_components(std::size_t n, std::span<const std::int32_t> eu,
                                     std::span<const std::int32_t> ev,
                                     std::span<const std::uint8_t> edge_alive,
                                     pram::Workspace& ws, pram::NcCounters* counters) {
  if (eu.size() != ev.size()) {
    throw std::invalid_argument("connected_components: eu/ev size mismatch");
  }
  if (!edge_alive.empty() && edge_alive.size() != eu.size()) {
    throw std::invalid_argument("connected_components: edge_alive size mismatch");
  }
  const std::size_t m = eu.size();
  pram::Executor& ex = ws.exec();
  ComponentLabels out;
  out.label.resize(n);
  ex.parallel_for_grain(
      n, kGrain, [&](std::size_t v) { out.label[v] = static_cast<std::int32_t>(v); });
  pram::add_round(counters, n);

  auto scratch = ws.take<std::int32_t>(n);
  std::span<std::int32_t> parent = out.label;
  std::span<std::int32_t> next_parent = scratch.span();
  std::uint8_t changed = 1;
  while (changed != 0) {
    changed = 0;
    // Hook: pull each endpoint's current root toward the smaller root.
    // Reads are relaxed atomic loads: other lanes CAS the same slots
    // concurrently (CRCW min), and any torn-in-time value only delays
    // convergence by a round, never corrupts it.
    ex.parallel_for(m, [&](std::size_t j) {
      if (!edge_alive.empty() && edge_alive[j] == 0) return;
      const auto pu = std::atomic_ref<std::int32_t>(parent[static_cast<std::size_t>(eu[j])])
                          .load(std::memory_order_relaxed);
      const auto pv = std::atomic_ref<std::int32_t>(parent[static_cast<std::size_t>(ev[j])])
                          .load(std::memory_order_relaxed);
      if (pu == pv) return;
      const std::int32_t lo = pu < pv ? pu : pv;
      const std::int32_t hi = pu < pv ? pv : pu;
      atomic_fetch_min(parent[static_cast<std::size_t>(hi)], lo);
      std::atomic_ref<std::uint8_t>(changed).store(1, std::memory_order_relaxed);
    });
    pram::add_round(counters, m);

    // Shortcut: full pointer jumping until every vertex points at a root.
    bool shortcutting = true;
    while (shortcutting) {
      ex.parallel_for_grain(n, kGrain, [&](std::size_t v) {
        next_parent[v] = parent[static_cast<std::size_t>(parent[v])];
      });
      shortcutting =
          ex.parallel_any(n, [&](std::size_t v) { return next_parent[v] != parent[v]; });
      std::swap(parent, next_parent);
      pram::add_round(counters, n);
    }
    ++out.hook_rounds;
  }

  if (parent.data() != out.label.data()) {
    ex.parallel_for_grain(n, kGrain, [&](std::size_t v) { out.label[v] = parent[v]; });
    pram::add_round(counters, n);
  }
  out.count = static_cast<std::int32_t>(ex.parallel_count(
      n, [&](std::size_t v) { return parent[v] == static_cast<std::int32_t>(v); }));
  return out;
}

}  // namespace ncpm::graph
