#pragma once
// Immutable CSR bipartite graph.
//
// The popular-matching instance, its rank-1 subgraph G1, the reduced graph
// G' and the Theorem 11 reduction all live on bipartite graphs with a left
// side (applicants) and a right side (posts). This container stores the edge
// list once and CSR adjacency for both sides, exposing neighbours and
// incident edge ids as spans.

#include <cstddef>
#include <cstdint>
#include <span>
#include <utility>
#include <vector>

namespace ncpm::graph {

inline constexpr std::int32_t kNone = -1;

class BipartiteGraph {
 public:
  BipartiteGraph() = default;
  /// Edges are (left, right) pairs; duplicates are allowed but nothing in
  /// this library produces them. Endpoints are range-checked.
  BipartiteGraph(std::int32_t n_left, std::int32_t n_right,
                 std::vector<std::pair<std::int32_t, std::int32_t>> edges);

  std::int32_t n_left() const noexcept { return n_left_; }
  std::int32_t n_right() const noexcept { return n_right_; }
  std::size_t num_edges() const noexcept { return eu_.size(); }

  std::int32_t edge_left(std::size_t e) const { return eu_[e]; }
  std::int32_t edge_right(std::size_t e) const { return ev_[e]; }
  std::span<const std::int32_t> edge_lefts() const noexcept { return eu_; }
  std::span<const std::int32_t> edge_rights() const noexcept { return ev_; }

  std::size_t degree_left(std::int32_t l) const {
    return static_cast<std::size_t>(ladj_off_[static_cast<std::size_t>(l) + 1] -
                                    ladj_off_[static_cast<std::size_t>(l)]);
  }
  std::size_t degree_right(std::int32_t r) const {
    return static_cast<std::size_t>(radj_off_[static_cast<std::size_t>(r) + 1] -
                                    radj_off_[static_cast<std::size_t>(r)]);
  }

  /// Edge ids incident to left vertex l (order of insertion).
  std::span<const std::int32_t> left_incident(std::int32_t l) const {
    return {ladj_.data() + ladj_off_[static_cast<std::size_t>(l)], degree_left(l)};
  }
  /// Edge ids incident to right vertex r.
  std::span<const std::int32_t> right_incident(std::int32_t r) const {
    return {radj_.data() + radj_off_[static_cast<std::size_t>(r)], degree_right(r)};
  }

 private:
  std::int32_t n_left_ = 0;
  std::int32_t n_right_ = 0;
  std::vector<std::int32_t> eu_, ev_;  // edge endpoints
  // CSR offsets. Edge ids are int32 everywhere in this library, so int32
  // offsets are exact; half-width offsets halve the CSR index memory and
  // keep more of it in cache.
  std::vector<std::int32_t> ladj_off_, radj_off_;
  std::vector<std::int32_t> ladj_, radj_;  // CSR payload: edge ids
};

}  // namespace ncpm::graph
