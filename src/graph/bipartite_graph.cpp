#include "graph/bipartite_graph.hpp"

#include <limits>
#include <stdexcept>

namespace ncpm::graph {

BipartiteGraph::BipartiteGraph(std::int32_t n_left, std::int32_t n_right,
                               std::vector<std::pair<std::int32_t, std::int32_t>> edges)
    : n_left_(n_left), n_right_(n_right) {
  if (n_left < 0 || n_right < 0) throw std::invalid_argument("BipartiteGraph: negative side size");
  const std::size_t m = edges.size();
  eu_.resize(m);
  ev_.resize(m);
  for (std::size_t e = 0; e < m; ++e) {
    const auto [l, r] = edges[e];
    if (l < 0 || l >= n_left || r < 0 || r >= n_right) {
      throw std::out_of_range("BipartiteGraph: edge endpoint out of range");
    }
    eu_[e] = l;
    ev_[e] = r;
  }
  if (m > static_cast<std::size_t>(std::numeric_limits<std::int32_t>::max())) {
    throw std::out_of_range("BipartiteGraph: edge count exceeds int32 (id space)");
  }
  ladj_off_.assign(static_cast<std::size_t>(n_left) + 1, 0);
  radj_off_.assign(static_cast<std::size_t>(n_right) + 1, 0);
  for (std::size_t e = 0; e < m; ++e) {
    ++ladj_off_[static_cast<std::size_t>(eu_[e]) + 1];
    ++radj_off_[static_cast<std::size_t>(ev_[e]) + 1];
  }
  for (std::size_t i = 1; i < ladj_off_.size(); ++i) ladj_off_[i] += ladj_off_[i - 1];
  for (std::size_t i = 1; i < radj_off_.size(); ++i) radj_off_[i] += radj_off_[i - 1];
  ladj_.resize(m);
  radj_.resize(m);
  std::vector<std::int32_t> lcur(ladj_off_.begin(), ladj_off_.end() - 1);
  std::vector<std::int32_t> rcur(radj_off_.begin(), radj_off_.end() - 1);
  for (std::size_t e = 0; e < m; ++e) {
    ladj_[static_cast<std::size_t>(lcur[static_cast<std::size_t>(eu_[e])]++)] =
        static_cast<std::int32_t>(e);
    radj_[static_cast<std::size_t>(rcur[static_cast<std::size_t>(ev_[e])]++)] =
        static_cast<std::int32_t>(e);
  }
}

}  // namespace ncpm::graph
