#pragma once
// Transitive closure by repeated boolean matrix squaring (Theorem 5 stand-in).
//
// The paper's first pseudoforest cycle finder computes the transitive closure
// G*_P and declares i on the unique cycle when i and some j reach each other.
// For a digraph given as an edge list we compute the *strict* closure A⁺
// (paths of length >= 1) with ceil(log2 n) rounds of R := R | R·R, so vertex
// v lies on a directed cycle iff A⁺[v][v]. Work is O(n³/64) per squaring —
// polynomial, as the NC definition requires; the depth claim (O(log² n)) is
// what the round counter validates.

#include <cstddef>
#include <cstdint>
#include <span>

#include "linalg/gf2_matrix.hpp"
#include "pram/counters.hpp"

namespace ncpm::graph {

/// Adjacency matrix of the digraph with edges tail[j] -> head[j].
linalg::BitMatrix adjacency_matrix(std::size_t n, std::span<const std::int32_t> tail,
                                   std::span<const std::int32_t> head);

/// Strict transitive closure A⁺: entry (i, j) set iff a directed path of
/// length >= 1 leads from i to j. Squaring rounds run on `ex`.
linalg::BitMatrix transitive_closure(const linalg::BitMatrix& adjacency,
                                     pram::NcCounters* counters = nullptr,
                                     pram::Executor& ex = pram::default_executor());

}  // namespace ncpm::graph
