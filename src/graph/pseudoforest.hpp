#pragma once
// Directed pseudoforests and NC cycle finding (Section IV-A of the paper).
//
// A directed pseudoforest has out-degree <= 1 at every vertex; each weakly
// connected component contains either a single sink or a single directed
// cycle. The switching graph G_M of a popular matching (Section IV) and the
// stable-matching switching graph H_M (Section VI) are both directed
// pseudoforests, and everything the paper's Algorithms 3 and 4 need reduces
// to: find each component's unique cycle, order it, and aggregate along the
// tree paths into it.
//
// The paper offers three NC methods for cycle detection and we add the
// natural fourth; all are implemented and cross-checked:
//   1. TransitiveClosure — i on cycle iff A⁺(i,i) (Theorem 5 route);
//   2. Gf2Rank          — edge e on cycle iff rank(I_{G-e}) = rank(I_G)
//                          over GF(2) (Lemma 6 + Theorem 7 route);
//   3. EdgeRemovalCC    — edge e on cycle iff cc(G - e) = cc(G)
//                          (Theorem 8 route);
//   4. PointerDoubling  — the image of f^K for K >= n is exactly the set of
//                          on-cycle vertices (sinks made self-loops), found
//                          in O(log n) composition rounds. Default.
//
// Shared post-processing (independent of the detection method): elect the
// minimum-id vertex of every cycle as its root via windowed pointer-jumping
// min, compute each on-cycle vertex's distance to its root by breaking the
// cycle at the root and list-ranking, and label weakly connected components.

#include <cstdint>
#include <span>
#include <vector>

#include "pram/counters.hpp"
#include "pram/executor.hpp"
#include "pram/list_ranking.hpp"

namespace ncpm::graph {

/// next[v] = unique out-neighbour of v, or pram::kNone (-1) for sinks.
struct DirectedPseudoforest {
  std::vector<std::int32_t> next;

  std::size_t size() const noexcept { return next.size(); }
  bool is_sink(std::size_t v) const { return next[v] == pram::kNone; }
};

enum class CycleMethod {
  PointerDoubling,
  TransitiveClosure,
  Gf2Rank,
  EdgeRemovalCC,
};

struct CycleAnalysis {
  std::vector<std::uint8_t> on_cycle;      ///< 1 iff v lies on its component's cycle
  std::vector<std::int32_t> cycle_root;    ///< min-id vertex of v's cycle (on-cycle v), else kNone
  std::vector<std::int64_t> dist_to_root;  ///< edges from v to cycle_root[v] along `next` (on-cycle v)
  std::vector<std::int64_t> cycle_length;  ///< length of v's cycle (on-cycle v), else 0
  std::vector<std::int32_t> component;     ///< weak-component label (min vertex id), every v
  /// Each cycle listed in `next` order starting at its root, sorted by root id.
  std::vector<std::vector<std::int32_t>> cycles;
};

/// Full cycle analysis of a directed pseudoforest. Throws std::invalid_argument
/// if some vertex has next[v] outside [0, n) ∪ {kNone}. Rounds run on `ex`.
CycleAnalysis analyze_cycles(const DirectedPseudoforest& pf,
                             CycleMethod method = CycleMethod::PointerDoubling,
                             pram::NcCounters* counters = nullptr,
                             pram::Executor& ex = pram::default_executor());

/// Just the on-cycle mask, by the chosen method (cheaper than full analysis).
std::vector<std::uint8_t> cycle_members(const DirectedPseudoforest& pf, CycleMethod method,
                                        pram::NcCounters* counters = nullptr,
                                        pram::Executor& ex = pram::default_executor());

/// Weak-component labels (min vertex id per component) of the pseudoforest.
std::vector<std::int32_t> weak_components(const DirectedPseudoforest& pf,
                                          pram::NcCounters* counters = nullptr,
                                          pram::Executor& ex = pram::default_executor());

}  // namespace ncpm::graph
