#pragma once
// Parallel connected components (the paper's Theorem 8 stand-in).
//
// The paper cites Cole–Vishkin for O(log n)-time CRCW connected components;
// we implement the classic Shiloach–Vishkin scheme — per round, hook roots
// toward smaller labels across edges (CRCW "min" writes, realised with
// std::atomic_ref fetch-min loops) and then fully shortcut by pointer
// jumping. Labels converge to the minimum vertex id of each component, which
// the rest of the library uses as the canonical component name. Rounds are
// counted for the depth-validation benchmarks.

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "pram/counters.hpp"
#include "pram/executor.hpp"
#include "pram/workspace.hpp"

namespace ncpm::graph {

struct ComponentLabels {
  std::vector<std::int32_t> label;  ///< label[v] = min vertex id in v's component
  std::int32_t count = 0;           ///< number of components (isolated vertices included)
  std::uint64_t hook_rounds = 0;    ///< outer hook+shortcut iterations executed
};

/// Connected components of the undirected (multi)graph on `n` vertices with
/// edges (eu[j], ev[j]); `edge_alive` (optional) masks edges out. Self-loops
/// are permitted and ignored. Rounds run on `ex`.
ComponentLabels connected_components(std::size_t n, std::span<const std::int32_t> eu,
                                     std::span<const std::int32_t> ev,
                                     std::span<const std::uint8_t> edge_alive = {},
                                     pram::NcCounters* counters = nullptr,
                                     pram::Executor& ex = pram::default_executor());

/// Workspace-backed variant: the pointer-jumping scratch is leased from
/// `ws`, so repeated calls reuse one warm buffer set; rounds run on `ws`'s
/// executor.
ComponentLabels connected_components(std::size_t n, std::span<const std::int32_t> eu,
                                     std::span<const std::int32_t> ev,
                                     std::span<const std::uint8_t> edge_alive,
                                     pram::Workspace& ws, pram::NcCounters* counters = nullptr);

}  // namespace ncpm::graph
