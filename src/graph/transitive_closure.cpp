#include "graph/transitive_closure.hpp"

#include <stdexcept>

#include "pram/list_ranking.hpp"

namespace ncpm::graph {

linalg::BitMatrix adjacency_matrix(std::size_t n, std::span<const std::int32_t> tail,
                                   std::span<const std::int32_t> head) {
  if (tail.size() != head.size()) {
    throw std::invalid_argument("adjacency_matrix: tail/head size mismatch");
  }
  linalg::BitMatrix a(n, n);
  for (std::size_t j = 0; j < tail.size(); ++j) {
    const auto u = static_cast<std::size_t>(tail[j]);
    const auto v = static_cast<std::size_t>(head[j]);
    if (u >= n || v >= n) throw std::out_of_range("adjacency_matrix: endpoint out of range");
    a.set(u, v);
  }
  return a;
}

linalg::BitMatrix transitive_closure(const linalg::BitMatrix& adjacency,
                                     pram::NcCounters* counters, pram::Executor& ex) {
  if (adjacency.rows() != adjacency.cols()) {
    throw std::invalid_argument("transitive_closure: matrix must be square");
  }
  linalg::BitMatrix r = adjacency;
  // After k squarings r covers all paths of length 1..2^k.
  const std::uint32_t rounds = pram::ceil_log2(adjacency.rows() == 0 ? 1 : adjacency.rows());
  for (std::uint32_t k = 0; k < rounds; ++k) {
    linalg::BitMatrix sq = linalg::bool_product(r, r, counters, ex);
    r.or_assign(sq, ex);
    pram::add_round(counters, r.rows() * r.words_per_row());
  }
  return r;
}

}  // namespace ncpm::graph
