#pragma once
// Maximal-path decomposition through degree-2 vertices via half-edge
// pointer jumping ("extend these paths by the doubling trick in polylog time
// to find maximal paths consisting of degree 2 vertices" — Algorithm 2).
//
// Given an undirected graph with an alive-edge mask, every edge contributes
// two half-edges (one per direction). The successor of half-edge u→v is the
// half-edge v→w continuing through v when v has alive degree exactly 2; the
// half-edge is terminal otherwise. Chains of successors are precisely the
// directed traversals of the maximal paths whose internal vertices all have
// degree 2; one Wyllie list-ranking pass over all half-edges simultaneously
// yields, for every half-edge, the terminal of its traversal and its
// distance to it — everything Algorithm 2's per-round matching rule needs.
// Half-edges on all-degree-2 cycles never reach a terminal; `ranking.
// reaches_terminal` distinguishes them (they are the even cycles left for
// the final phase of Algorithm 2).

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "pram/counters.hpp"
#include "pram/list_ranking.hpp"

namespace ncpm::graph {

class HalfEdgeStructure {
 public:
  /// Build the structure over alive edges. Self-loops are rejected.
  HalfEdgeStructure(std::size_t n_vertices, std::span<const std::int32_t> eu,
                    std::span<const std::int32_t> ev, std::span<const std::uint8_t> edge_alive,
                    pram::NcCounters* counters = nullptr);

  std::size_t n_vertices() const noexcept { return n_; }
  std::size_t n_edges() const noexcept { return eu_.size(); }
  std::size_t n_half_edges() const noexcept { return 2 * eu_.size(); }

  static std::int32_t rev(std::int32_t h) noexcept { return h ^ 1; }
  static std::int32_t edge_of(std::int32_t h) noexcept { return h >> 1; }
  std::int32_t source(std::int32_t h) const {
    const auto e = static_cast<std::size_t>(h >> 1);
    return (h & 1) != 0 ? ev_[e] : eu_[e];
  }
  std::int32_t target(std::int32_t h) const {
    const auto e = static_cast<std::size_t>(h >> 1);
    return (h & 1) != 0 ? eu_[e] : ev_[e];
  }
  /// The half-edge leaving vertex x along edge e (x must be an endpoint of e).
  std::int32_t out_of(std::int32_t x, std::int32_t e) const {
    return eu_[static_cast<std::size_t>(e)] == x ? 2 * e : 2 * e + 1;
  }

  /// Alive degree of a vertex.
  std::int64_t degree(std::int32_t v) const { return degree_[static_cast<std::size_t>(v)]; }
  /// Alive edge ids incident to v.
  std::span<const std::int32_t> incident(std::int32_t v) const {
    const auto i = static_cast<std::size_t>(v);
    return {incident_.data() + offset_[i], offset_[i + 1] - offset_[i]};
  }

  /// succ[h] = next half-edge of h's traversal (h itself when terminal or dead).
  std::span<const std::int32_t> succ() const noexcept { return succ_; }
  /// List ranking of the successor chains: head (terminal half-edge), rank
  /// (#edges to terminal), reaches_terminal (0 for all-degree-2 cycles).
  const pram::ListRanking& ranking() const noexcept { return ranking_; }

  bool edge_alive(std::size_t e) const { return alive_[e] != 0; }

 private:
  std::size_t n_ = 0;
  std::vector<std::int32_t> eu_, ev_;
  std::vector<std::uint8_t> alive_;
  std::vector<std::int64_t> degree_;
  std::vector<std::size_t> offset_;
  std::vector<std::int32_t> incident_;
  std::vector<std::int32_t> succ_;
  pram::ListRanking ranking_;
};

}  // namespace ncpm::graph
