#pragma once
// Maximal-path decomposition through degree-2 vertices via half-edge
// pointer jumping ("extend these paths by the doubling trick in polylog time
// to find maximal paths consisting of degree 2 vertices" — Algorithm 2).
//
// Given an undirected graph with an alive-edge mask, every edge contributes
// two half-edges (one per direction). The successor of half-edge u→v is the
// half-edge v→w continuing through v when v has alive degree exactly 2; the
// half-edge is terminal otherwise. Chains of successors are precisely the
// directed traversals of the maximal paths whose internal vertices all have
// degree 2; one Wyllie list-ranking pass over all half-edges simultaneously
// yields, for every half-edge, the terminal of its traversal and its
// distance to it — everything Algorithm 2's per-round matching rule needs.
// Half-edges on all-degree-2 cycles never reach a terminal; `ranking.
// reaches_terminal` distinguishes them (they are the even cycles left for
// the final phase of Algorithm 2).
//
// Two containers live here:
//
//  * `HalfEdgeStructure` — the full structure with CSR incidence lists,
//    built over an edge array with an alive mask. Reusable: `rebuild()`
//    reconstructs it in place, retaining the capacity of every internal
//    array, with scratch leased from a caller-provided Workspace. The
//    round engines below no longer need the CSR, so this stays as the
//    reference implementation: the cross-checking tests exercise it, and
//    it is the public utility for any pass that needs full `incident()`
//    lists rather than the two-slot degree-2 view.
//  * `AliveEdgePaths` — the lean per-round engine. It operates on a
//    *compacted* alive-edge array (every edge alive by construction) and
//    rebuilds degrees, the two-slot incidence needed for degree-2
//    continuation, successors and the ranking in work proportional to the
//    number of surviving edges: full-size per-vertex arrays are only ever
//    reset at the endpoints the alive edges touch. Zero heap allocation
//    once the owning workspace is warm.

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "pram/counters.hpp"
#include "pram/list_ranking.hpp"
#include "pram/workspace.hpp"

namespace ncpm::graph {

class HalfEdgeStructure {
 public:
  HalfEdgeStructure() = default;
  /// Build the structure over alive edges. Self-loops are rejected.
  HalfEdgeStructure(std::size_t n_vertices, std::span<const std::int32_t> eu,
                    std::span<const std::int32_t> ev, std::span<const std::uint8_t> edge_alive,
                    pram::NcCounters* counters = nullptr);

  /// Rebuild in place over a new edge set, reusing the capacity of every
  /// internal array; scratch comes from `ws`. With a warm workspace and
  /// non-growing sizes this performs no heap allocation.
  void rebuild(std::size_t n_vertices, std::span<const std::int32_t> eu,
               std::span<const std::int32_t> ev, std::span<const std::uint8_t> edge_alive,
               pram::Workspace& ws, pram::NcCounters* counters = nullptr);

  std::size_t n_vertices() const noexcept { return n_; }
  std::size_t n_edges() const noexcept { return eu_.size(); }
  std::size_t n_half_edges() const noexcept { return 2 * eu_.size(); }

  static std::int32_t rev(std::int32_t h) noexcept { return h ^ 1; }
  static std::int32_t edge_of(std::int32_t h) noexcept { return h >> 1; }
  std::int32_t source(std::int32_t h) const {
    const auto e = static_cast<std::size_t>(h >> 1);
    return (h & 1) != 0 ? ev_[e] : eu_[e];
  }
  std::int32_t target(std::int32_t h) const {
    const auto e = static_cast<std::size_t>(h >> 1);
    return (h & 1) != 0 ? eu_[e] : ev_[e];
  }
  /// The half-edge leaving vertex x along edge e (x must be an endpoint of e).
  std::int32_t out_of(std::int32_t x, std::int32_t e) const {
    return eu_[static_cast<std::size_t>(e)] == x ? 2 * e : 2 * e + 1;
  }

  /// Alive degree of a vertex.
  std::int64_t degree(std::int32_t v) const { return degree_[static_cast<std::size_t>(v)]; }
  /// Alive edge ids incident to v.
  std::span<const std::int32_t> incident(std::int32_t v) const {
    const auto i = static_cast<std::size_t>(v);
    return {incident_.data() + offset_[i], offset_[i + 1] - offset_[i]};
  }

  /// succ[h] = next half-edge of h's traversal (h itself when terminal or dead).
  std::span<const std::int32_t> succ() const noexcept { return succ_; }
  /// List ranking of the successor chains: head (terminal half-edge), rank
  /// (#edges to terminal), reaches_terminal (0 for all-degree-2 cycles).
  const pram::ListRanking& ranking() const noexcept { return ranking_; }

  bool edge_alive(std::size_t e) const { return alive_[e] != 0; }

 private:
  std::size_t n_ = 0;
  std::vector<std::int32_t> eu_, ev_;
  std::vector<std::uint8_t> alive_;
  std::vector<std::int64_t> degree_;
  std::vector<std::size_t> offset_;
  std::vector<std::int32_t> incident_;
  std::vector<std::int32_t> succ_;
  pram::ListRanking ranking_;
};

/// The per-round path engine over a compacted alive-edge array. All storage
/// is leased once from the owning workspace (sized for `max_edges` /
/// `n_vertices`); `rebuild()` then costs Θ(m_alive) work and no allocation.
///
/// Vertex-indexed state (`degree`) is only valid for vertices that are an
/// endpoint of some edge in the current compacted array — exactly the
/// vertices the round-synchronous algorithms ever query.
class AliveEdgePaths {
 public:
  AliveEdgePaths(std::size_t n_vertices, std::size_t max_edges, pram::Workspace& ws);

  /// Rebuild over the compacted edges (eu[i], ev[i]), i < eu.size() <=
  /// max_edges: links plus the list ranking. Every edge is alive;
  /// endpoints must be valid non-equal vertex ids (the caller's compaction
  /// guarantees it, so this is not re-validated here).
  void rebuild(std::span<const std::int32_t> eu, std::span<const std::int32_t> ev,
               pram::Workspace& ws, pram::NcCounters* counters = nullptr) {
    rebuild_links(eu, ev, {}, counters);
    rank(ws, counters);
  }

  /// Stage 1 only: degrees, two-slot incidence and successors. An empty
  /// `edge_alive` means every edge is alive (the compacted shape); with a
  /// mask, dead half-edges become terminals. For callers that do their own
  /// ranking over `succ()` (e.g. two_regular's cycle labelling).
  void rebuild_links(std::span<const std::int32_t> eu, std::span<const std::int32_t> ev,
                     std::span<const std::uint8_t> edge_alive,
                     pram::NcCounters* counters = nullptr);

  /// Stage 2: list-rank the successor chains; head()/rank()/
  /// reaches_terminal() are valid afterwards.
  void rank(pram::Workspace& ws, pram::NcCounters* counters = nullptr);

  std::size_t n_edges() const noexcept { return m_; }
  std::size_t n_half_edges() const noexcept { return 2 * m_; }

  static std::int32_t rev(std::int32_t h) noexcept { return h ^ 1; }
  std::int32_t source(std::int32_t h) const {
    const auto e = static_cast<std::size_t>(h >> 1);
    return (h & 1) != 0 ? ev_[e] : eu_[e];
  }
  std::int32_t target(std::int32_t h) const {
    const auto e = static_cast<std::size_t>(h >> 1);
    return (h & 1) != 0 ? eu_[e] : ev_[e];
  }

  /// Degree of v in the current edge array (valid for endpoints only).
  std::int32_t degree(std::int32_t v) const { return deg_[static_cast<std::size_t>(v)]; }

  std::span<const std::int32_t> succ() const noexcept { return succ_.span().first(2 * m_); }
  std::span<const std::int32_t> head() const noexcept { return head_.span().first(2 * m_); }
  std::span<const std::int64_t> rank() const noexcept { return rank_.span().first(2 * m_); }
  std::span<const std::uint8_t> reaches_terminal() const noexcept {
    return reaches_.span().first(2 * m_);
  }

 private:
  std::size_t m_ = 0;
  pram::Executor* ex_;  // the owning workspace's executor
  std::span<const std::int32_t> eu_, ev_;  // the caller's compacted arrays
  pram::WsBuffer<std::int32_t> deg_;       // per vertex; reset only where touched
  pram::WsBuffer<std::int32_t> inc_;       // two incident-edge slots per vertex
  pram::WsBuffer<std::int32_t> succ_;
  pram::WsBuffer<std::int32_t> head_;
  pram::WsBuffer<std::int64_t> rank_;
  pram::WsBuffer<std::uint8_t> reaches_;
};

}  // namespace ncpm::graph
