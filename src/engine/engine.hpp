#pragma once
// Concurrent multi-instance batch solver.
//
// The NC algorithms below this layer solve *one* instance with many
// threads; production traffic is the transpose — *many* instances, each
// small enough that a single worker solves it in microseconds. An Engine
// owns a fixed pool of worker threads, each holding a long-lived
// pram::Workspace, and multiplexes a stream of typed Requests across them:
// the first few solves warm a worker's buffer pools, after which every
// further request of comparable shape runs allocation-free (the
// steady-state guarantee PR 2 established per call, amortised here across
// millions of calls).
//
// Submission is future-based: `submit` / `submit_batch` enqueue and return
// immediately; workers drain the queue FIFO. Deadlines and cancellation
// are cooperative — both are checked when a request reaches a worker, so
// an expired or cancelled request is dropped without paying for its solve
// (a solve already running is never preempted). Results carry per-request
// timing (queue latency, solve time) plus the Algorithm 2 round/allocation
// stats; `stats()` aggregates everything into an EngineStats snapshot.
//
// Parallelism composes along two axes under one hardware budget: worker
// count (batch concurrency) x executor lanes per worker (intra-solve
// parallelism). Each worker owns a private pram::Executor of
// `lanes_per_worker` lanes — no process-global thread state anywhere — so
// a ThreadBudget of {2 workers, 4 lanes} really uses 8 threads, and a lone
// large instance can take every core while a deep queue favours workers.
// Requests may additionally cap their own lanes (Request::with_lanes), and
// results are bit-identical across every workers x lanes combination.

#include <array>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "core/instance.hpp"
#include "core/popular_matching.hpp"
#include "matching/matching.hpp"
#include "obs/profiler.hpp"
#include "pram/executor.hpp"
#include "stable/instance.hpp"
#include "stable/next_stable.hpp"

namespace ncpm::obs {
class Registry;
}  // namespace ncpm::obs

namespace ncpm::engine {

/// Every mode ncpm_cli serves, as a typed request kind.
enum class Mode : std::uint8_t {
  kSolve = 0,       ///< popular matching (Algorithm 1; ties via AIKM)
  kMaxCard,         ///< largest popular matching (Algorithm 3)
  kFair,            ///< fair popular matching (Section IV-E)
  kRankMaximal,     ///< rank-maximal popular matching (Section IV-E)
  kCount,           ///< number of popular matchings
  kCheck,           ///< existence + statistics only
  kNextStable,      ///< rotations exposed in the man-optimal matching (Alg. 4)
};
inline constexpr std::size_t kNumModes = 7;

std::string_view mode_name(Mode mode);
std::optional<Mode> parse_mode(std::string_view name);

enum class Status : std::uint8_t {
  kOk = 0,           ///< solved; payload fields are populated
  kNoSolution,       ///< well-formed instance admitting no popular matching
  kDeadlineExpired,  ///< deadline passed before a worker picked the request up
  kCancelled,        ///< cancel token fired before a worker picked the request up
  kInvalid,          ///< request malformed (missing instance, mode/instance mismatch)
  kError,            ///< solver threw; Result::error carries the message
  kRejected,         ///< engine shut down (abandon) while the request was queued
};

std::string_view status_name(Status status);

/// Shared cooperative cancellation flag; copies observe the same token.
class CancelToken {
 public:
  CancelToken() : flag_(std::make_shared<std::atomic<bool>>(false)) {}
  void cancel() const noexcept { flag_->store(true, std::memory_order_relaxed); }
  bool cancelled() const noexcept { return flag_->load(std::memory_order_relaxed); }

 private:
  std::shared_ptr<std::atomic<bool>> flag_;
};

struct Request {
  Mode mode = Mode::kSolve;
  /// Popular-matching modes; ignored by kNextStable.
  std::optional<core::Instance> instance;
  /// kNextStable only.
  std::optional<stable::StableInstance> stable_instance;
  std::optional<std::chrono::steady_clock::time_point> deadline;
  std::optional<CancelToken> cancel;
  /// Per-request cap on intra-solve parallelism: the worker runs this
  /// request on min(lanes, lanes_per_worker) executor lanes. Results are
  /// identical either way; this only trades latency for smoothness when a
  /// cheap request shares a budget with expensive ones.
  std::optional<int> lanes;
  /// Time the submitter spent decoding the wire payload into the instance,
  /// charged to the obs::Phase::kDecode bucket of the request's phase
  /// breakdown (the decode happens before the engine sees the request).
  std::uint64_t decode_ns = 0;

  static Request popular(Mode mode, core::Instance inst) {
    Request r;
    r.mode = mode;
    r.instance = std::move(inst);
    return r;
  }
  static Request next_stable(stable::StableInstance inst) {
    Request r;
    r.mode = Mode::kNextStable;
    r.stable_instance = std::move(inst);
    return r;
  }
  Request&& with_deadline_after(std::chrono::nanoseconds budget) && {
    deadline = std::chrono::steady_clock::now() + budget;
    return std::move(*this);
  }
  Request&& with_cancel(CancelToken token) && {
    cancel = std::move(token);
    return std::move(*this);
  }
  Request&& with_lanes(int n) && {
    lanes = n;
    return std::move(*this);
  }
};

/// kCheck payload: the statistics the CLI's `check` mode prints.
struct CheckReport {
  std::int32_t applicants = 0;
  std::int32_t posts = 0;
  bool strict = true;
  bool admits_popular = false;
  std::size_t size = 0;  ///< matching size when one exists
  /// Number of popular matchings (strict instances that admit one).
  std::optional<std::uint64_t> count;
};

struct Result {
  Mode mode = Mode::kSolve;
  Status status = Status::kError;
  /// kSolve / kMaxCard / kFair / kRankMaximal with status kOk.
  std::optional<matching::Matching> matching;
  std::size_t matching_size = 0;  ///< real posts only (last resorts excluded)
  std::int32_t applicants = 0;    ///< instance size, for the matching modes
  /// kCount with status kOk.
  std::optional<std::uint64_t> count;
  std::optional<CheckReport> check;                        ///< kCheck
  std::optional<stable::NextStableResult> next_stable;     ///< kNextStable
  /// Algorithm 2 round/allocation stats (strict kSolve requests).
  core::PopularRunStats run_stats;
  std::string error;  ///< kInvalid / kError explanation
  std::chrono::nanoseconds queue_latency{0};  ///< submit -> worker dequeue
  std::chrono::nanoseconds solve_time{0};     ///< dequeue -> result ready
  int worker_id = -1;
  /// Per-phase solver time (obs::Phase index -> exclusive ns), including
  /// the submitter-charged decode bucket. All zero when the engine runs
  /// with profile_phases off or the request never reached a solve.
  std::array<std::uint64_t, obs::kNumPhases> phase_ns{};
};

/// One hardware budget split between batch concurrency and intra-solve
/// parallelism: `workers` x `lanes` threads in total.
struct ThreadBudget {
  int workers = 1;  ///< concurrent solves
  int lanes = 1;    ///< executor width inside each solve
  int total() const noexcept { return workers * lanes; }

  /// All of the budget into one internally-parallel solve (1 x total).
  static ThreadBudget single(int total_threads) {
    return {1, total_threads < 1 ? 1 : total_threads};
  }
  /// All of the budget into worker concurrency (total x 1).
  static ThreadBudget wide(int total_threads) {
    return {total_threads < 1 ? 1 : total_threads, 1};
  }
  /// Split `total_threads` for an expected number of in-flight requests:
  /// start from workers = min(total, expected), give each worker
  /// total / workers lanes, then fold any remainder back into extra
  /// workers so the budget is used as fully as a uniform workers x lanes
  /// grid allows (at most lanes - 1 threads go unused, only when lanes
  /// does not divide total). A deep queue degenerates to `wide`, a single
  /// request to `single`.
  static ThreadBudget split(int total_threads, std::size_t expected_in_flight) {
    const int total = total_threads < 1 ? 1 : total_threads;
    const auto want = expected_in_flight < 1 ? std::size_t{1} : expected_in_flight;
    const int workers =
        want < static_cast<std::size_t>(total) ? static_cast<int>(want) : total;
    const int lanes = total / workers;
    return {total / lanes, lanes};
  }
};

struct EngineConfig {
  int num_workers = 1;      ///< clamped to >= 1
  int lanes_per_worker = 1; ///< width of each worker's private Executor (clamped to >= 1)
  /// Pin every worker's executor lanes to CPUs (best-effort, Linux-only;
  /// see pram::ExecutorConfig). Worker w's lanes start at offset
  /// w * lanes_per_worker into the cpu set, so workers stagger onto
  /// disjoint CPUs when the set is large enough.
  bool pin_lanes = false;
  /// CPUs to pin onto; empty = every CPU the process may run on
  /// (pram::allowed_cpus), resolved once at engine construction.
  std::vector<int> cpu_set;
  /// Optional metrics registry. When set, the engine registers per-mode
  /// submitted/completed counters, queue/solve latency histograms, and
  /// queue-depth/outstanding callback gauges (removed again on destruction),
  /// plus SIMD-tier and pinning gauges. The registry must outlive the engine.
  obs::Registry* registry = nullptr;
  /// Attach a per-worker obs::PhaseAccum so solver layers record phase
  /// timings (Result::phase_ns, ncpm_solve_phase_ns histograms). Off, every
  /// PhaseScope in the solver is a no-op (no clock reads, no atomics).
  bool profile_phases = true;

  EngineConfig() = default;
  EngineConfig(int workers, int lanes) : num_workers(workers), lanes_per_worker(lanes) {}
  EngineConfig(ThreadBudget budget)  // NOLINT(google-explicit-constructor)
      : num_workers(budget.workers), lanes_per_worker(budget.lanes) {}
};

struct ModeStats {
  std::uint64_t submitted = 0;
  std::uint64_t completed = 0;  ///< reached a worker and produced any status
  std::uint64_t ok = 0;
  std::uint64_t no_solution = 0;
  std::uint64_t deadline_expired = 0;
  std::uint64_t cancelled = 0;
  std::uint64_t invalid = 0;
  std::uint64_t errors = 0;
  std::uint64_t rejected = 0;  ///< abandoned at shutdown without reaching a worker
  std::uint64_t queue_ns_total = 0;
  std::uint64_t solve_ns_total = 0;
};

struct EngineStats {
  int num_workers = 0;
  int lanes_per_worker = 0;  ///< executor width inside each worker
  bool pin_lanes = false;    ///< lane pinning requested and supported
  /// Active SIMD kernel tier ("avx2" / "sse2" / "scalar") at snapshot time
  /// — detected at startup, capped by NCPM_SIMD.
  std::string simd_tier;
  std::uint64_t submitted = 0;
  std::uint64_t completed = 0;
  std::uint64_t rejected = 0;  ///< abandoned at shutdown, futures fulfilled kRejected
  std::uint64_t queue_ns_total = 0;
  std::uint64_t queue_ns_max = 0;
  std::uint64_t solve_ns_total = 0;
  std::uint64_t peak_queue_depth = 0;
  std::uint64_t queue_depth = 0;  ///< requests waiting at snapshot time
  int active_workers = 0;         ///< workers mid-solve at snapshot time
  std::uint64_t uptime_ns = 0;  ///< since engine construction
  std::array<ModeStats, kNumModes> per_mode{};
  /// Workspace buffer growths per worker since engine start. Flat between
  /// two snapshots == the region between them ran workspace-allocation-free
  /// (the steady-state guarantee, observable per worker).
  std::vector<std::uint64_t> workspace_allocs_per_worker;
  std::uint64_t workspace_allocs_total = 0;

  /// Completed requests per second of engine uptime (0 when idle-fresh).
  double completed_per_sec() const noexcept {
    return uptime_ns == 0 ? 0.0
                          : static_cast<double>(completed) * 1e9 / static_cast<double>(uptime_ns);
  }
};

class Engine {
 public:
  /// What happens to requests still queued when the engine shuts down.
  enum class ShutdownMode : std::uint8_t {
    kDrain = 0,  ///< run every queued request to completion before joining
    kAbandon,    ///< fulfil queued requests with Status::kRejected, join after in-flight
  };

  /// Completion hook alternative to futures: invoked exactly once per
  /// request, on the worker thread that solved it (or on the thread calling
  /// shutdown(kAbandon) for abandoned requests). Keep it cheap and never
  /// block — it runs inline in the serving path, and blocking a worker here
  /// stalls the whole engine. Callers that must touch single-threaded state
  /// trampoline instead: the epoll server core's callback only encodes the
  /// response and posts it to the session's event loop via an eventfd wakeup
  /// (net/reactor.hpp, EventLoop::post).
  using Callback = std::function<void(Result)>;

  explicit Engine(EngineConfig config = {});
  /// Equivalent to shutdown(ShutdownMode::kDrain).
  ~Engine();
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  std::future<Result> submit(Request request);
  /// Callback flavour, for callers that fan results out as they resolve
  /// (the net::Server write-back path) instead of blocking on futures.
  void submit(Request request, Callback on_complete);
  std::vector<std::future<Result>> submit_batch(std::vector<Request> requests);

  /// Stop accepting work (further submits throw), dispose of the queue per
  /// `mode`, and join every worker. A request already on a worker always
  /// runs to completion — kAbandon only rejects requests still queued.
  /// Idempotent; the first call's mode wins. Every future/callback is
  /// fulfilled exactly once either way.
  void shutdown(ShutdownMode mode = ShutdownMode::kDrain);

  /// Block until the queue is empty and every worker is idle.
  void wait_idle();

  EngineStats stats() const;
  int num_workers() const noexcept { return static_cast<int>(workers_.size()); }

  /// Requests queued but not yet picked up by a worker. Lock-free relaxed
  /// read — cheap enough for per-frame admission checks in the serving
  /// path; momentarily stale by design (stats() gives the locked snapshot).
  std::size_t queue_depth() const noexcept {
    return queue_depth_.load(std::memory_order_relaxed);
  }
  /// Requests submitted whose promise/callback has not yet been fulfilled
  /// (queued + mid-solve). Same lock-free relaxed contract as queue_depth().
  std::size_t outstanding() const noexcept {
    return outstanding_.load(std::memory_order_relaxed);
  }

 private:
  struct Task {
    Request request;
    /// Exactly one of promise / callback is armed.
    std::optional<std::promise<Result>> promise;
    Callback callback;
    std::chrono::steady_clock::time_point enqueued;
  };
  struct Worker {
    std::thread thread;
    /// ws.heap_allocations() published after every task (workspace itself
    /// is thread-local to the worker loop).
    std::atomic<std::uint64_t> workspace_allocs{0};
  };

  /// Registry handles resolved once at construction (engine.cpp).
  struct ObsHandles;

  void worker_main(int worker_id);
  void record(const Result& result);
  /// record() + hand the result to the task's promise or callback.
  void fulfill(Task& task, Result&& result);
  void enqueue_locked(Task&& task);

  EngineConfig config_;
  std::chrono::steady_clock::time_point start_;
  std::unique_ptr<ObsHandles> obs_;  ///< null when config_.registry is null

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::condition_variable idle_cv_;
  std::deque<Task> queue_;
  int active_ = 0;
  bool stopping_ = false;
  /// Lock-free mirrors for admission control (see queue_depth() /
  /// outstanding()); the mutex-guarded fields above stay authoritative.
  std::atomic<std::size_t> queue_depth_{0};
  std::atomic<std::size_t> outstanding_{0};

  std::mutex shutdown_mu_;  ///< serialises concurrent shutdown() calls

  mutable std::mutex stats_mu_;
  EngineStats stats_;

  std::vector<std::unique_ptr<Worker>> workers_;
};

}  // namespace ncpm::engine
