#include "engine/engine.hpp"

#include <stdexcept>
#include <utility>

#include "core/max_card_popular.hpp"
#include "core/optimal_popular.hpp"
#include "core/switching_graph.hpp"
#include "core/ties.hpp"
#include "core/verify.hpp"
#include "obs/registry.hpp"
#include "pram/executor.hpp"
#include "pram/simd.hpp"
#include "pram/workspace.hpp"
#include "stable/gale_shapley.hpp"

namespace ncpm::engine {

namespace {

constexpr std::string_view kModeNames[kNumModes] = {
    "solve", "max-card", "fair", "rank-maximal", "count", "check", "next-stable"};

/// Modes whose algorithms are defined only for strict preference lists.
bool requires_strict(Mode mode) {
  return mode == Mode::kMaxCard || mode == Mode::kFair || mode == Mode::kRankMaximal ||
         mode == Mode::kCount;
}

void fill_matching(const core::Instance& inst, std::optional<matching::Matching> m,
                   pram::Workspace& ws, Result& out) {
  out.applicants = inst.num_applicants();
  if (!m.has_value()) {
    out.status = Status::kNoSolution;
    return;
  }
  out.status = Status::kOk;
  {
    // The post-solve verification/accounting pass (core/verify.hpp).
    obs::PhaseScope phase(ws.profiler(), obs::Phase::kVerify);
    out.matching_size = core::matching_size(inst, *m);
  }
  out.matching = std::move(m);
}

/// The per-mode dispatch every front end (CLI single requests, CLI batches,
/// benchmarks) funnels through. `ws` is the worker's long-lived workspace;
/// each strict pipeline threads it end-to-end so repeated requests of
/// comparable shape run without workspace growth.
void execute(const Request& req, pram::Workspace& ws, Result& out) {
  if (req.mode == Mode::kNextStable) {
    if (!req.stable_instance.has_value()) {
      out.status = Status::kInvalid;
      out.error = "next-stable request carries no stable instance";
      return;
    }
    const auto& inst = *req.stable_instance;
    const auto m0 = stable::man_optimal(inst);
    out.next_stable = stable::next_stable_matchings(inst, m0, nullptr, ws.exec());
    out.status = Status::kOk;
    return;
  }

  if (!req.instance.has_value()) {
    out.status = Status::kInvalid;
    out.error = "request carries no instance";
    return;
  }
  const auto& inst = *req.instance;
  if (!inst.has_last_resorts()) {
    out.status = Status::kInvalid;
    out.error = "popular-matching modes require last resorts";
    return;
  }
  const bool strict = inst.strict_prefs();
  if (!strict && requires_strict(req.mode)) {
    out.status = Status::kInvalid;
    out.error = std::string("mode '") + std::string(mode_name(req.mode)) +
                "' requires strict preferences; use 'solve'";
    return;
  }

  switch (req.mode) {
    case Mode::kSolve:
      if (strict) {
        fill_matching(inst, core::find_popular_matching(inst, ws, nullptr, &out.run_stats), ws, out);
      } else {
        fill_matching(inst, core::find_popular_matching_ties(inst), ws, out);
      }
      return;
    case Mode::kMaxCard:
      fill_matching(inst, core::find_max_card_popular(inst, ws), ws, out);
      return;
    case Mode::kFair:
      fill_matching(inst, core::find_fair_popular(inst, ws), ws, out);
      return;
    case Mode::kRankMaximal:
      fill_matching(inst, core::find_rank_maximal_popular(inst, ws), ws, out);
      return;
    case Mode::kCount: {
      const auto count = core::count_popular_matchings(inst, ws);
      if (!count.has_value()) {
        out.status = Status::kNoSolution;
        return;
      }
      out.count = *count;
      out.status = Status::kOk;
      return;
    }
    case Mode::kCheck: {
      CheckReport report;
      report.applicants = inst.num_applicants();
      report.posts = inst.num_posts();
      report.strict = strict;
      const auto m = strict
                         ? core::find_popular_matching(inst, ws, nullptr, &out.run_stats)
                         : core::find_popular_matching_ties(inst);
      report.admits_popular = m.has_value();
      if (m.has_value()) {
        {
          obs::PhaseScope phase(ws.profiler(), obs::Phase::kVerify);
          report.size = core::matching_size(inst, *m);
        }
        // Count from the matching already in hand — one pipeline run, not
        // two — on this worker's own executor, never the shared default.
        if (strict) report.count = core::count_popular_matchings(inst, *m, nullptr, ws.exec());
      }
      out.check = report;
      out.status = report.admits_popular ? Status::kOk : Status::kNoSolution;
      return;
    }
    case Mode::kNextStable:
      break;  // handled above
  }
  out.status = Status::kInvalid;
  out.error = "unknown mode";
}

}  // namespace

std::string_view mode_name(Mode mode) {
  return kModeNames[static_cast<std::size_t>(mode)];
}

std::optional<Mode> parse_mode(std::string_view name) {
  for (std::size_t i = 0; i < kNumModes; ++i) {
    if (kModeNames[i] == name) return static_cast<Mode>(i);
  }
  return std::nullopt;
}

std::string_view status_name(Status status) {
  switch (status) {
    case Status::kOk: return "ok";
    case Status::kNoSolution: return "no-solution";
    case Status::kDeadlineExpired: return "deadline-expired";
    case Status::kCancelled: return "cancelled";
    case Status::kInvalid: return "invalid";
    case Status::kError: return "error";
    case Status::kRejected: return "rejected";
  }
  return "unknown";
}

/// Registry handles live here (not the header) so engine.hpp only needs a
/// forward declaration of obs::Registry.
struct Engine::ObsHandles {
  obs::Counter* submitted[kNumModes];
  obs::Counter* completed[kNumModes];
  obs::Counter* rejected;
  obs::Histogram* queue_ns[kNumModes];
  obs::Histogram* solve_ns[kNumModes];
  obs::Histogram* phase_ns[obs::kNumPhases];
};

Engine::Engine(EngineConfig config) : config_(config), start_(std::chrono::steady_clock::now()) {
  if (config_.num_workers < 1) config_.num_workers = 1;
  if (config_.lanes_per_worker < 1) config_.lanes_per_worker = 1;
  // Resolve the CPU set once here rather than per worker: every worker then
  // indexes one stable list, and worker w's lanes start at offset
  // w * lanes_per_worker so distinct workers land on distinct CPUs.
  if (config_.pin_lanes && config_.cpu_set.empty()) config_.cpu_set = pram::allowed_cpus();
  stats_.num_workers = config_.num_workers;
  stats_.lanes_per_worker = config_.lanes_per_worker;
  stats_.pin_lanes = config_.pin_lanes;
  stats_.simd_tier = std::string(pram::simd_tier_name(pram::active_simd_tier()));
  if (config_.registry != nullptr) {
    obs::Registry& reg = *config_.registry;
    obs_ = std::make_unique<ObsHandles>();
    for (std::size_t m = 0; m < kNumModes; ++m) {
      const obs::Labels labels{{"mode", std::string(kModeNames[m])}};
      obs_->submitted[m] = &reg.counter("ncpm_engine_submitted_total",
                                        "Requests accepted into the engine queue", labels);
      obs_->completed[m] = &reg.counter(
          "ncpm_engine_completed_total",
          "Requests that reached a worker and produced any status", labels);
      obs_->queue_ns[m] = &reg.histogram(
          "ncpm_engine_queue_ns", "Submit-to-dequeue latency in nanoseconds", labels);
      obs_->solve_ns[m] = &reg.histogram(
          "ncpm_engine_solve_ns", "Dequeue-to-result latency in nanoseconds", labels);
    }
    obs_->rejected = &reg.counter("ncpm_engine_rejected_total",
                                  "Requests abandoned at shutdown without a worker");
    for (std::size_t p = 0; p < obs::kNumPhases; ++p) {
      obs_->phase_ns[p] = &reg.histogram(
          "ncpm_solve_phase_ns", "Exclusive solver time per phase in nanoseconds",
          {{"phase", std::string(obs::phase_name(p))}});
    }
    reg.gauge("ncpm_engine_workers", "Worker thread count").set(config_.num_workers);
    reg.gauge("ncpm_engine_lanes_per_worker", "Executor lanes inside each worker")
        .set(config_.lanes_per_worker);
    reg.gauge("ncpm_engine_simd_tier",
              "Active SIMD dispatch tier (0 = scalar, 1 = sse2, 2 = avx2)")
        .set(static_cast<std::int64_t>(pram::active_simd_tier()));
    reg.gauge("ncpm_engine_pin_lanes", "1 when worker lanes are pinned to CPUs")
        .set(config_.pin_lanes ? 1 : 0);
    reg.gauge_callback(this, "ncpm_engine_queue_depth",
                       "Requests queued but not yet picked up", {},
                       [this] { return static_cast<std::int64_t>(queue_depth()); });
    reg.gauge_callback(this, "ncpm_engine_outstanding",
                       "Requests submitted but not yet fulfilled (queued + mid-solve)", {},
                       [this] { return static_cast<std::int64_t>(outstanding()); });
  }
  workers_.reserve(static_cast<std::size_t>(config_.num_workers));
  for (int i = 0; i < config_.num_workers; ++i) {
    workers_.push_back(std::make_unique<Worker>());
  }
  // Spawn only after the vector is fully built: a worker publishes into its
  // own slot, and slots must not move underneath it.
  for (int i = 0; i < config_.num_workers; ++i) {
    workers_[static_cast<std::size_t>(i)]->thread = std::thread([this, i] { worker_main(i); });
  }
}

Engine::~Engine() {
  shutdown(ShutdownMode::kDrain);
  // The callback gauges capture `this`; drop them before the engine's
  // storage goes away (the registry itself outlives the engine by contract).
  if (config_.registry != nullptr) config_.registry->remove_callbacks(this);
}

void Engine::shutdown(ShutdownMode mode) {
  // Serialise concurrent shutdown() calls (including the destructor): only
  // one caller may abandon the queue and join the worker threads.
  std::lock_guard<std::mutex> shutdown_lock(shutdown_mu_);
  std::deque<Task> abandoned;
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
    if (mode == ShutdownMode::kAbandon) {
      abandoned.swap(queue_);
      queue_depth_.fetch_sub(abandoned.size(), std::memory_order_relaxed);
    }
  }
  cv_.notify_all();
  for (auto& task : abandoned) {
    Result result;
    result.mode = task.request.mode;
    result.status = Status::kRejected;
    result.error = "engine shut down before the request reached a worker";
    fulfill(task, std::move(result));
  }
  for (auto& w : workers_) {
    if (w->thread.joinable()) w->thread.join();
  }
}

void Engine::enqueue_locked(Task&& task) {
  if (stopping_) throw std::runtime_error("engine: submit after shutdown");
  if (obs_) obs_->submitted[static_cast<std::size_t>(task.request.mode)]->add(1);
  queue_.push_back(std::move(task));
  queue_depth_.fetch_add(1, std::memory_order_relaxed);
  outstanding_.fetch_add(1, std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> stats_lock(stats_mu_);
    ++stats_.submitted;
    ++stats_.per_mode[static_cast<std::size_t>(queue_.back().request.mode)].submitted;
    if (queue_.size() > stats_.peak_queue_depth) stats_.peak_queue_depth = queue_.size();
  }
}

std::future<Result> Engine::submit(Request request) {
  Task task;
  task.request = std::move(request);
  task.enqueued = std::chrono::steady_clock::now();
  task.promise.emplace();
  auto future = task.promise->get_future();
  {
    std::lock_guard<std::mutex> lock(mu_);
    enqueue_locked(std::move(task));
  }
  cv_.notify_one();
  return future;
}

void Engine::submit(Request request, Callback on_complete) {
  Task task;
  task.request = std::move(request);
  task.enqueued = std::chrono::steady_clock::now();
  task.callback = std::move(on_complete);
  {
    std::lock_guard<std::mutex> lock(mu_);
    enqueue_locked(std::move(task));
  }
  cv_.notify_one();
}

std::vector<std::future<Result>> Engine::submit_batch(std::vector<Request> requests) {
  std::vector<std::future<Result>> futures;
  futures.reserve(requests.size());
  {
    std::lock_guard<std::mutex> lock(mu_);
    const auto now = std::chrono::steady_clock::now();
    for (auto& req : requests) {
      Task task;
      task.request = std::move(req);
      task.enqueued = now;
      task.promise.emplace();
      futures.push_back(task.promise->get_future());
      enqueue_locked(std::move(task));
    }
  }
  cv_.notify_all();
  return futures;
}

void Engine::wait_idle() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_cv_.wait(lock, [&] { return queue_.empty() && active_ == 0; });
}

void Engine::record(const Result& result) {
  const auto queue_ns = static_cast<std::uint64_t>(result.queue_latency.count());
  const auto solve_ns = static_cast<std::uint64_t>(result.solve_time.count());
  if (obs_) {
    const auto m = static_cast<std::size_t>(result.mode);
    if (result.status == Status::kRejected) {
      obs_->rejected->add(1);
    } else {
      obs_->completed[m]->add(1);
      obs_->queue_ns[m]->observe(queue_ns);
      obs_->solve_ns[m]->observe(solve_ns);
      for (std::size_t p = 0; p < obs::kNumPhases; ++p) {
        // Only phases the request actually visited; a zero observation
        // would drown the distributions in first-bucket noise.
        if (result.phase_ns[p] != 0) obs_->phase_ns[p]->observe(result.phase_ns[p]);
      }
    }
  }
  std::lock_guard<std::mutex> lock(stats_mu_);
  auto& mode = stats_.per_mode[static_cast<std::size_t>(result.mode)];
  if (result.status == Status::kRejected) {
    // Never reached a worker: counts as rejected, not completed, and
    // contributes no latency.
    ++stats_.rejected;
    ++mode.rejected;
    return;
  }
  ++stats_.completed;
  ++mode.completed;
  stats_.queue_ns_total += queue_ns;
  stats_.solve_ns_total += solve_ns;
  mode.queue_ns_total += queue_ns;
  mode.solve_ns_total += solve_ns;
  if (queue_ns > stats_.queue_ns_max) stats_.queue_ns_max = queue_ns;
  switch (result.status) {
    case Status::kOk: ++mode.ok; break;
    case Status::kNoSolution: ++mode.no_solution; break;
    case Status::kDeadlineExpired: ++mode.deadline_expired; break;
    case Status::kCancelled: ++mode.cancelled; break;
    case Status::kInvalid: ++mode.invalid; break;
    case Status::kError: ++mode.errors; break;
    case Status::kRejected: break;  // handled above
  }
}

void Engine::fulfill(Task& task, Result&& result) {
  record(result);
  // Decrement before fulfilling: a caller woken by the promise (or the
  // callback) must observe the admission counters already released, or a
  // submit raced right after a completed .get() could still be shed.
  outstanding_.fetch_sub(1, std::memory_order_relaxed);
  if (task.callback) {
    task.callback(std::move(result));
  } else if (task.promise.has_value()) {
    task.promise->set_value(std::move(result));
  }
}

void Engine::worker_main(int worker_id) {
  // Each worker owns a private executor of lanes_per_worker lanes and a
  // long-lived workspace bound to it: intra-solve parallelism composes with
  // worker concurrency without any shared thread state. The executor is
  // built on this thread, so under pin_lanes lane 0 (this thread) pins
  // itself in the constructor, and worker w's lanes occupy the cpu_set
  // slice starting at w * lanes_per_worker.
  pram::ExecutorConfig exec_config;
  exec_config.lanes = config_.lanes_per_worker;
  exec_config.pin_lanes = config_.pin_lanes;
  exec_config.cpu_set = config_.cpu_set;
  exec_config.cpu_offset = worker_id * config_.lanes_per_worker;
  pram::Executor exec(exec_config);
  pram::Workspace ws(exec);
  // The worker's private phase accumulator: solver layers below record
  // into it through the executor's profiler pointer; each task resets it
  // and snapshots the totals into its Result.
  obs::PhaseAccum phase_accum;
  if (config_.profile_phases) exec.attach_profiler(&phase_accum);
  Worker& self = *workers_[static_cast<std::size_t>(worker_id)];
  for (;;) {
    Task task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [&] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (stopping_) return;
        continue;
      }
      task = std::move(queue_.front());
      queue_.pop_front();
      queue_depth_.fetch_sub(1, std::memory_order_relaxed);
      ++active_;
    }

    const auto dequeued = std::chrono::steady_clock::now();
    Result result;
    result.mode = task.request.mode;
    result.worker_id = worker_id;
    result.queue_latency = dequeued - task.enqueued;
    if (task.request.cancel.has_value() && task.request.cancel->cancelled()) {
      result.status = Status::kCancelled;
    } else if (task.request.deadline.has_value() && dequeued > *task.request.deadline) {
      result.status = Status::kDeadlineExpired;
    } else {
      // Honour the request's own lane cap, if any, for just this solve.
      exec.set_active_lanes(task.request.lanes.value_or(config_.lanes_per_worker));
      if (config_.profile_phases) {
        phase_accum.reset();
        if (task.request.decode_ns != 0) {
          phase_accum.add(obs::Phase::kDecode, task.request.decode_ns);
        }
      }
      try {
        execute(task.request, ws, result);
      } catch (const std::exception& e) {
        result.status = Status::kError;
        result.error = e.what();
      }
      exec.set_active_lanes(config_.lanes_per_worker);
      if (config_.profile_phases) result.phase_ns = phase_accum.snapshot();
    }
    result.solve_time = std::chrono::steady_clock::now() - dequeued;

    self.workspace_allocs.store(ws.heap_allocations(), std::memory_order_relaxed);
    fulfill(task, std::move(result));

    {
      std::lock_guard<std::mutex> lock(mu_);
      --active_;
      if (queue_.empty() && active_ == 0) idle_cv_.notify_all();
    }
  }
}

EngineStats Engine::stats() const {
  EngineStats snapshot;
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    snapshot = stats_;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    snapshot.queue_depth = queue_.size();
    snapshot.active_workers = active_;
  }
  snapshot.uptime_ns = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(std::chrono::steady_clock::now() -
                                                           start_)
          .count());
  snapshot.workspace_allocs_per_worker.reserve(workers_.size());
  for (const auto& w : workers_) {
    const auto allocs = w->workspace_allocs.load(std::memory_order_relaxed);
    snapshot.workspace_allocs_per_worker.push_back(allocs);
    snapshot.workspace_allocs_total += allocs;
  }
  return snapshot;
}

}  // namespace ncpm::engine
