#include "obs/trace.hpp"

namespace ncpm::obs {

TraceRing::TraceRing(std::size_t capacity, std::uint64_t sample_every)
    : capacity_(sample_every == 0 ? 0 : capacity),
      sample_every_(capacity == 0 ? 0 : sample_every) {
  if (capacity_ > 0) slots_ = std::make_unique<Slot[]>(capacity_);
}

bool TraceRing::should_sample() noexcept {
  if (!enabled()) return false;
  return ticket_.fetch_add(1, std::memory_order_relaxed) % sample_every_ == 0;
}

void TraceRing::commit(const TraceSpan& span) noexcept {
  if (!enabled()) return;
  Slot& slot = slots_[commits_.fetch_add(1, std::memory_order_relaxed) % capacity_];
  // Seqlock write: odd while the fields are in flux. Two writers landing on
  // the same slot (a full ring's worth of commits apart) can tear it; the
  // reader's seq check drops such slots.
  slot.seq.fetch_add(1, std::memory_order_acq_rel);
  slot.request_id.store(span.request_id, std::memory_order_relaxed);
  slot.conn_id.store(span.conn_id, std::memory_order_relaxed);
  slot.mode_status.store(
      (static_cast<std::uint64_t>(span.mode) << 8) | span.status,
      std::memory_order_relaxed);
  slot.accept_ns.store(span.accept_ns, std::memory_order_relaxed);
  slot.frame_read_ns.store(span.frame_read_ns, std::memory_order_relaxed);
  slot.dispatch_ns.store(span.dispatch_ns, std::memory_order_relaxed);
  slot.solve_start_ns.store(span.solve_start_ns, std::memory_order_relaxed);
  slot.solve_end_ns.store(span.solve_end_ns, std::memory_order_relaxed);
  slot.response_ns.store(span.response_ns, std::memory_order_relaxed);
  slot.instance_digest.store(span.instance_digest, std::memory_order_relaxed);
  slot.payload_bytes.store(span.payload_bytes, std::memory_order_relaxed);
  for (std::size_t p = 0; p < kNumPhases; ++p) {
    slot.phase_ns[p].store(span.phase_ns[p], std::memory_order_relaxed);
  }
  slot.seq.fetch_add(1, std::memory_order_release);
}

std::vector<TraceSpan> TraceRing::snapshot() const {
  std::vector<TraceSpan> out;
  if (!enabled()) return out;
  out.reserve(capacity_);
  for (std::size_t i = 0; i < capacity_; ++i) {
    const Slot& slot = slots_[i];
    const std::uint32_t before = slot.seq.load(std::memory_order_acquire);
    if (before == 0 || (before & 1u) != 0) continue;  // empty or mid-write
    TraceSpan span;
    span.request_id = slot.request_id.load(std::memory_order_relaxed);
    span.conn_id = slot.conn_id.load(std::memory_order_relaxed);
    const std::uint64_t ms = slot.mode_status.load(std::memory_order_relaxed);
    span.mode = static_cast<std::uint8_t>(ms >> 8);
    span.status = static_cast<std::uint8_t>(ms & 0xff);
    span.accept_ns = slot.accept_ns.load(std::memory_order_relaxed);
    span.frame_read_ns = slot.frame_read_ns.load(std::memory_order_relaxed);
    span.dispatch_ns = slot.dispatch_ns.load(std::memory_order_relaxed);
    span.solve_start_ns = slot.solve_start_ns.load(std::memory_order_relaxed);
    span.solve_end_ns = slot.solve_end_ns.load(std::memory_order_relaxed);
    span.response_ns = slot.response_ns.load(std::memory_order_relaxed);
    span.instance_digest = slot.instance_digest.load(std::memory_order_relaxed);
    span.payload_bytes =
        static_cast<std::uint32_t>(slot.payload_bytes.load(std::memory_order_relaxed));
    for (std::size_t p = 0; p < kNumPhases; ++p) {
      span.phase_ns[p] = slot.phase_ns[p].load(std::memory_order_relaxed);
    }
    std::atomic_thread_fence(std::memory_order_acquire);
    if (slot.seq.load(std::memory_order_relaxed) != before) continue;  // torn
    out.push_back(span);
  }
  return out;
}

std::string render_spans_json(const std::vector<TraceSpan>& spans) {
  std::string out;
  out.reserve(64 + spans.size() * 160);
  out += '[';
  bool first = true;
  for (const TraceSpan& s : spans) {
    if (!first) out += ',';
    first = false;
    out += "{\"request_id\":";
    out += std::to_string(s.request_id);
    out += ",\"conn_id\":";
    out += std::to_string(s.conn_id);
    out += ",\"mode\":";
    out += std::to_string(s.mode);
    out += ",\"status\":";
    out += std::to_string(s.status);
    out += ",\"accept_ns\":";
    out += std::to_string(s.accept_ns);
    out += ",\"frame_read_ns\":";
    out += std::to_string(s.frame_read_ns);
    out += ",\"dispatch_ns\":";
    out += std::to_string(s.dispatch_ns);
    out += ",\"solve_start_ns\":";
    out += std::to_string(s.solve_start_ns);
    out += ",\"solve_end_ns\":";
    out += std::to_string(s.solve_end_ns);
    out += ",\"response_ns\":";
    out += std::to_string(s.response_ns);
    out += ",\"instance_digest\":\"";
    // Digest as a hex string: 64-bit values overflow double-typed JSON
    // consumers, and hex is what operators grep logs for.
    constexpr char kHex[] = "0123456789abcdef";
    for (int shift = 60; shift >= 0; shift -= 4) {
      out += kHex[(s.instance_digest >> shift) & 0xf];
    }
    out += "\",\"payload_bytes\":";
    out += std::to_string(s.payload_bytes);
    out += ",\"phases\":{";
    bool first_phase = true;
    for (std::size_t p = 0; p < kNumPhases; ++p) {
      if (s.phase_ns[p] == 0) continue;
      if (!first_phase) out += ',';
      first_phase = false;
      out += '"';
      out += phase_name(p);
      out += "\":";
      out += std::to_string(s.phase_ns[p]);
    }
    out += "}}";
  }
  out += ']';
  return out;
}

}  // namespace ncpm::obs
