#pragma once
// obs::Registry — process-local metrics with a wait-free hot path.
//
// Three instrument kinds:
//   Counter   — monotone u64, striped across cache lines so concurrent
//               workers do not contend on one atomic.
//   Gauge     — instantaneous i64 (set/add), single relaxed atomic.
//   Histogram — log2-bucketed latency distribution; observe() touches two
//               striped atomics; quantiles are derived from snapshots by
//               interpolating inside the hit bucket.
//
// Registration takes a mutex and is expected at startup; the returned
// references stay valid for the registry's lifetime (deque storage, never
// moved). Re-registering the same (name, labels) returns the same handle.
//
// snapshot() is safe to call from any thread at any time. It reads the
// relaxed atomics without stopping writers, so a snapshot is a consistent
// *per-instrument* view, not a cross-instrument transaction.

#include <array>
#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace ncpm::obs {

/// Number of log2 buckets: bucket 0 holds the value 0, bucket i (i >= 1)
/// holds values in [2^(i-1), 2^i - 1]. 64-bit values need 65 buckets.
inline constexpr std::size_t kHistogramBuckets = 65;

/// Sorted-insertion not required; labels are compared as given.
using Labels = std::vector<std::pair<std::string, std::string>>;

/// Returns the bucket index for a value (== std::bit_width(value)).
unsigned histogram_bucket(std::uint64_t value) noexcept;

/// Inclusive upper bound of a bucket (2^i - 1; bucket 0 -> 0).
std::uint64_t histogram_bucket_bound(unsigned bucket) noexcept;

class Counter {
 public:
  Counter() = default;
  Counter(const Counter&) = delete;
  Counter& operator=(const Counter&) = delete;

  void add(std::uint64_t n = 1) noexcept;
  std::uint64_t value() const noexcept;

 private:
  static constexpr std::size_t kStripes = 16;
  struct alignas(64) Stripe {
    std::atomic<std::uint64_t> v{0};
  };
  Stripe stripes_[kStripes];
};

class Gauge {
 public:
  Gauge() = default;
  Gauge(const Gauge&) = delete;
  Gauge& operator=(const Gauge&) = delete;

  void set(std::int64_t v) noexcept { v_.store(v, std::memory_order_relaxed); }
  void add(std::int64_t d) noexcept { v_.fetch_add(d, std::memory_order_relaxed); }
  std::int64_t value() const noexcept { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> v_{0};
};

class Histogram {
 public:
  Histogram() = default;
  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  void observe(std::uint64_t value) noexcept;

  std::uint64_t count() const noexcept;
  std::uint64_t sum() const noexcept;
  std::array<std::uint64_t, kHistogramBuckets> buckets() const noexcept;

 private:
  static constexpr std::size_t kStripes = 4;
  struct alignas(64) Stripe {
    std::atomic<std::uint64_t> count[kHistogramBuckets] = {};
    std::atomic<std::uint64_t> sum{0};
  };
  Stripe stripes_[kStripes];
};

// ---------------------------------------------------------------------------
// Snapshots

struct CounterSample {
  std::string name;
  std::string help;
  Labels labels;
  std::uint64_t value = 0;
};

struct GaugeSample {
  std::string name;
  std::string help;
  Labels labels;
  std::int64_t value = 0;
};

struct HistogramSample {
  std::string name;
  std::string help;
  Labels labels;
  std::uint64_t count = 0;
  std::uint64_t sum = 0;
  std::array<std::uint64_t, kHistogramBuckets> buckets{};

  /// Quantile estimate (q in [0, 1]) by linear interpolation inside the
  /// bucket containing the rank. Returns 0 for an empty histogram.
  double quantile(double q) const noexcept;
};

struct Snapshot {
  std::uint64_t uptime_ns = 0;
  std::vector<CounterSample> counters;      // sorted by (name, labels)
  std::vector<GaugeSample> gauges;          // sorted by (name, labels)
  std::vector<HistogramSample> histograms;  // sorted by (name, labels)
};

/// Prometheus text exposition (format 0.0.4): # HELP / # TYPE once per metric
/// name, histogram buckets as cumulative `le` series up to the highest
/// non-empty bucket plus +Inf, then `_sum` and `_count`.
std::string render_prometheus(const Snapshot& snap);

/// Single-object JSON rendering (counters/gauges/histograms with p50/p90/p99
/// and cumulative non-empty buckets). One line, no trailing newline.
std::string render_json(const Snapshot& snap);

// ---------------------------------------------------------------------------
// Registry

class Registry {
 public:
  Registry();
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  Counter& counter(std::string name, std::string help, Labels labels = {});
  Gauge& gauge(std::string name, std::string help, Labels labels = {});
  Histogram& histogram(std::string name, std::string help, Labels labels = {});

  /// Registers a gauge whose value is computed by `fn` at snapshot time.
  /// `owner` tags the callback so it can be removed before whatever `fn`
  /// captures is destroyed (see remove_callbacks).
  void gauge_callback(const void* owner, std::string name, std::string help,
                      Labels labels, std::function<std::int64_t()> fn);

  /// Drops every callback gauge registered under `owner`.
  void remove_callbacks(const void* owner);

  Snapshot snapshot() const;

  /// Nanoseconds since the registry was constructed (steady clock).
  std::uint64_t uptime_ns() const noexcept;

 private:
  struct Meta {
    std::string name;
    std::string help;
    Labels labels;
  };
  struct CounterEntry {
    Meta meta;
    Counter value;
  };
  struct GaugeEntry {
    Meta meta;
    Gauge value;
  };
  struct HistogramEntry {
    Meta meta;
    Histogram value;
  };
  struct CallbackEntry {
    Meta meta;
    const void* owner;
    std::function<std::int64_t()> fn;
  };

  mutable std::mutex mu_;
  std::deque<CounterEntry> counters_;
  std::deque<GaugeEntry> gauges_;
  std::deque<HistogramEntry> histograms_;
  std::vector<CallbackEntry> callbacks_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace ncpm::obs
