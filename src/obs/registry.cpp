#include "obs/registry.hpp"

#include <algorithm>
#include <bit>
#include <cstdio>

namespace ncpm::obs {

namespace {

/// Stable per-thread stripe index. Threads are spread round-robin; two
/// threads sharing a stripe is a throughput detail, never a correctness one.
std::size_t thread_stripe() noexcept {
  static std::atomic<std::size_t> next{0};
  thread_local const std::size_t mine = next.fetch_add(1, std::memory_order_relaxed);
  return mine;
}

std::string labels_key(const Labels& labels) {
  std::string key;
  for (const auto& [k, v] : labels) {
    key += k;
    key += '\x1f';
    key += v;
    key += '\x1e';
  }
  return key;
}

bool same_series(const Labels& a, const Labels& b) { return a == b; }

/// Escapes a Prometheus label value (backslash, double-quote, newline).
void append_label_value(std::string& out, const std::string& v) {
  for (char c : v) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      default: out += c;
    }
  }
}

void append_labels(std::string& out, const Labels& labels) {
  if (labels.empty()) return;
  out += '{';
  bool first = true;
  for (const auto& [k, v] : labels) {
    if (!first) out += ',';
    first = false;
    out += k;
    out += "=\"";
    append_label_value(out, v);
    out += '"';
  }
  out += '}';
}

/// Labels with an extra `le` pair appended (histogram bucket series).
void append_bucket_labels(std::string& out, const Labels& labels, const std::string& le) {
  out += '{';
  bool first = true;
  for (const auto& [k, v] : labels) {
    if (!first) out += ',';
    first = false;
    out += k;
    out += "=\"";
    append_label_value(out, v);
    out += '"';
  }
  if (!first) out += ',';
  out += "le=\"";
  out += le;
  out += "\"}";
}

void append_json_string(std::string& out, const std::string& s) {
  out += '"';
  for (char c : s) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

void append_json_labels(std::string& out, const Labels& labels) {
  out += "\"labels\":{";
  bool first = true;
  for (const auto& [k, v] : labels) {
    if (!first) out += ',';
    first = false;
    append_json_string(out, k);
    out += ':';
    append_json_string(out, v);
  }
  out += '}';
}

/// Fixed-format double without trailing-zero noise; Prometheus accepts
/// integer-looking floats, so quantiles render with up to 3 decimals.
std::string format_double(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.3f", v);
  std::string s = buf;
  while (s.size() > 1 && s.back() == '0') s.pop_back();
  if (!s.empty() && s.back() == '.') s.pop_back();
  return s;
}

template <typename Sample>
void sort_samples(std::vector<Sample>& v) {
  std::sort(v.begin(), v.end(), [](const Sample& a, const Sample& b) {
    if (a.name != b.name) return a.name < b.name;
    return labels_key(a.labels) < labels_key(b.labels);
  });
}

}  // namespace

unsigned histogram_bucket(std::uint64_t value) noexcept {
  return static_cast<unsigned>(std::bit_width(value));
}

std::uint64_t histogram_bucket_bound(unsigned bucket) noexcept {
  if (bucket == 0) return 0;
  if (bucket >= 64) return ~std::uint64_t{0};
  return (std::uint64_t{1} << bucket) - 1;
}

void Counter::add(std::uint64_t n) noexcept {
  stripes_[thread_stripe() % kStripes].v.fetch_add(n, std::memory_order_relaxed);
}

std::uint64_t Counter::value() const noexcept {
  std::uint64_t total = 0;
  for (const Stripe& s : stripes_) total += s.v.load(std::memory_order_relaxed);
  return total;
}

void Histogram::observe(std::uint64_t value) noexcept {
  Stripe& s = stripes_[thread_stripe() % kStripes];
  s.count[histogram_bucket(value)].fetch_add(1, std::memory_order_relaxed);
  s.sum.fetch_add(value, std::memory_order_relaxed);
}

std::uint64_t Histogram::count() const noexcept {
  std::uint64_t total = 0;
  for (const Stripe& s : stripes_)
    for (const auto& c : s.count) total += c.load(std::memory_order_relaxed);
  return total;
}

std::uint64_t Histogram::sum() const noexcept {
  std::uint64_t total = 0;
  for (const Stripe& s : stripes_) total += s.sum.load(std::memory_order_relaxed);
  return total;
}

std::array<std::uint64_t, kHistogramBuckets> Histogram::buckets() const noexcept {
  std::array<std::uint64_t, kHistogramBuckets> out{};
  for (const Stripe& s : stripes_)
    for (std::size_t i = 0; i < kHistogramBuckets; ++i)
      out[i] += s.count[i].load(std::memory_order_relaxed);
  return out;
}

double HistogramSample::quantile(double q) const noexcept {
  if (count == 0) return 0.0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  const double rank = q * static_cast<double>(count);
  std::uint64_t seen = 0;
  for (unsigned i = 0; i < kHistogramBuckets; ++i) {
    const std::uint64_t in_bucket = buckets[i];
    if (in_bucket == 0) continue;
    if (static_cast<double>(seen + in_bucket) >= rank) {
      const double lo = i == 0 ? 0.0 : static_cast<double>(std::uint64_t{1} << (i - 1));
      const double hi = static_cast<double>(histogram_bucket_bound(i));
      const double frac =
          (rank - static_cast<double>(seen)) / static_cast<double>(in_bucket);
      return lo + (hi - lo) * frac;
    }
    seen += in_bucket;
  }
  return static_cast<double>(histogram_bucket_bound(kHistogramBuckets - 1));
}

Registry::Registry() : start_(std::chrono::steady_clock::now()) {}

Counter& Registry::counter(std::string name, std::string help, Labels labels) {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& e : counters_)
    if (e.meta.name == name && same_series(e.meta.labels, labels)) return e.value;
  // emplace + assign: the instruments hold atomics and are not movable.
  auto& entry = counters_.emplace_back();
  entry.meta = Meta{std::move(name), std::move(help), std::move(labels)};
  return entry.value;
}

Gauge& Registry::gauge(std::string name, std::string help, Labels labels) {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& e : gauges_)
    if (e.meta.name == name && same_series(e.meta.labels, labels)) return e.value;
  auto& entry = gauges_.emplace_back();
  entry.meta = Meta{std::move(name), std::move(help), std::move(labels)};
  return entry.value;
}

Histogram& Registry::histogram(std::string name, std::string help, Labels labels) {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& e : histograms_)
    if (e.meta.name == name && same_series(e.meta.labels, labels)) return e.value;
  auto& entry = histograms_.emplace_back();
  entry.meta = Meta{std::move(name), std::move(help), std::move(labels)};
  return entry.value;
}

void Registry::gauge_callback(const void* owner, std::string name, std::string help,
                              Labels labels, std::function<std::int64_t()> fn) {
  std::lock_guard<std::mutex> lock(mu_);
  callbacks_.push_back(
      CallbackEntry{{std::move(name), std::move(help), std::move(labels)}, owner,
                    std::move(fn)});
}

void Registry::remove_callbacks(const void* owner) {
  std::lock_guard<std::mutex> lock(mu_);
  callbacks_.erase(std::remove_if(callbacks_.begin(), callbacks_.end(),
                                  [owner](const CallbackEntry& e) {
                                    return e.owner == owner;
                                  }),
                   callbacks_.end());
}

Snapshot Registry::snapshot() const {
  Snapshot snap;
  snap.uptime_ns = uptime_ns();
  std::lock_guard<std::mutex> lock(mu_);
  snap.counters.reserve(counters_.size());
  for (const auto& e : counters_)
    snap.counters.push_back({e.meta.name, e.meta.help, e.meta.labels, e.value.value()});
  snap.gauges.reserve(gauges_.size() + callbacks_.size());
  for (const auto& e : gauges_)
    snap.gauges.push_back({e.meta.name, e.meta.help, e.meta.labels, e.value.value()});
  for (const auto& e : callbacks_)
    snap.gauges.push_back({e.meta.name, e.meta.help, e.meta.labels, e.fn()});
  snap.histograms.reserve(histograms_.size());
  for (const auto& e : histograms_) {
    HistogramSample h;
    h.name = e.meta.name;
    h.help = e.meta.help;
    h.labels = e.meta.labels;
    h.buckets = e.value.buckets();
    h.sum = e.value.sum();
    for (std::uint64_t c : h.buckets) h.count += c;
    snap.histograms.push_back(std::move(h));
  }
  sort_samples(snap.counters);
  sort_samples(snap.gauges);
  sort_samples(snap.histograms);
  return snap;
}

std::uint64_t Registry::uptime_ns() const noexcept {
  return static_cast<std::uint64_t>(std::chrono::duration_cast<std::chrono::nanoseconds>(
                                        std::chrono::steady_clock::now() - start_)
                                        .count());
}

std::string render_prometheus(const Snapshot& snap) {
  std::string out;
  out.reserve(4096);

  const std::string* last_name = nullptr;
  auto emit_header = [&](const std::string& name, const std::string& help,
                         const char* type) {
    if (last_name != nullptr && *last_name == name) return;
    last_name = &name;
    if (!help.empty()) {
      out += "# HELP ";
      out += name;
      out += ' ';
      out += help;
      out += '\n';
    }
    out += "# TYPE ";
    out += name;
    out += ' ';
    out += type;
    out += '\n';
  };

  for (const auto& c : snap.counters) {
    emit_header(c.name, c.help, "counter");
    out += c.name;
    append_labels(out, c.labels);
    out += ' ';
    out += std::to_string(c.value);
    out += '\n';
  }
  last_name = nullptr;
  for (const auto& g : snap.gauges) {
    emit_header(g.name, g.help, "gauge");
    out += g.name;
    append_labels(out, g.labels);
    out += ' ';
    out += std::to_string(g.value);
    out += '\n';
  }
  last_name = nullptr;
  for (const auto& h : snap.histograms) {
    emit_header(h.name, h.help, "histogram");
    unsigned highest = 0;
    for (unsigned i = 0; i < kHistogramBuckets; ++i)
      if (h.buckets[i] != 0) highest = i;
    std::uint64_t cumulative = 0;
    for (unsigned i = 0; i <= highest; ++i) {
      cumulative += h.buckets[i];
      out += h.name;
      out += "_bucket";
      append_bucket_labels(out, h.labels, std::to_string(histogram_bucket_bound(i)));
      out += ' ';
      out += std::to_string(cumulative);
      out += '\n';
    }
    out += h.name;
    out += "_bucket";
    append_bucket_labels(out, h.labels, "+Inf");
    out += ' ';
    out += std::to_string(h.count);
    out += '\n';
    out += h.name;
    out += "_sum";
    append_labels(out, h.labels);
    out += ' ';
    out += std::to_string(h.sum);
    out += '\n';
    out += h.name;
    out += "_count";
    append_labels(out, h.labels);
    out += ' ';
    out += std::to_string(h.count);
    out += '\n';
  }
  return out;
}

std::string render_json(const Snapshot& snap) {
  std::string out;
  out.reserve(4096);
  out += "{\"uptime_ns\":";
  out += std::to_string(snap.uptime_ns);
  out += ",\"counters\":[";
  bool first = true;
  for (const auto& c : snap.counters) {
    if (!first) out += ',';
    first = false;
    out += "{\"name\":";
    append_json_string(out, c.name);
    out += ',';
    append_json_labels(out, c.labels);
    out += ",\"value\":";
    out += std::to_string(c.value);
    out += '}';
  }
  out += "],\"gauges\":[";
  first = true;
  for (const auto& g : snap.gauges) {
    if (!first) out += ',';
    first = false;
    out += "{\"name\":";
    append_json_string(out, g.name);
    out += ',';
    append_json_labels(out, g.labels);
    out += ",\"value\":";
    out += std::to_string(g.value);
    out += '}';
  }
  out += "],\"histograms\":[";
  first = true;
  for (const auto& h : snap.histograms) {
    if (!first) out += ',';
    first = false;
    out += "{\"name\":";
    append_json_string(out, h.name);
    out += ',';
    append_json_labels(out, h.labels);
    out += ",\"count\":";
    out += std::to_string(h.count);
    out += ",\"sum\":";
    out += std::to_string(h.sum);
    out += ",\"p50\":";
    out += format_double(h.quantile(0.50));
    out += ",\"p90\":";
    out += format_double(h.quantile(0.90));
    out += ",\"p99\":";
    out += format_double(h.quantile(0.99));
    out += ",\"buckets\":[";
    std::uint64_t cumulative = 0;
    bool first_bucket = true;
    for (unsigned i = 0; i < kHistogramBuckets; ++i) {
      if (h.buckets[i] == 0) continue;
      cumulative += h.buckets[i];
      if (!first_bucket) out += ',';
      first_bucket = false;
      out += "[";
      out += std::to_string(histogram_bucket_bound(i));
      out += ',';
      out += std::to_string(cumulative);
      out += ']';
    }
    out += "]}";
  }
  out += "]}";
  return out;
}

}  // namespace ncpm::obs
