#pragma once
// obs::PhaseAccum / obs::PhaseScope — wait-free solver-phase timing.
//
// A fixed enum of solver phases gets RAII scopes recorded into a per-worker
// accumulator: one relaxed load + one relaxed store per scope exit, zero
// allocation, and a complete no-op (no clock read, no atomics touched) when
// no accumulator is attached. Scopes nest: a scope charges only its
// *exclusive* time (elapsed minus time spent in child scopes), so the sum
// over phases never exceeds the wall-clock solve window even though
// two-regular internally runs euler-split / list-rank / window-min scopes.
//
// Scopes are created and destroyed on one orchestrating thread (the engine
// worker driving the solve); lane threads only execute loop bodies and never
// open scopes, so the current-scope chain needs no synchronization. The
// accumulated values are atomics so a concurrent scrape of a half-finished
// solve is data-race-free (it just sees a partial sum).

#include <array>
#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>

namespace ncpm::obs {

/// Solver phases, in pipeline order. Kept dense and small: the per-request
/// breakdown travels in fixed arrays through engine results, trace spans,
/// and stats frames.
enum class Phase : std::uint8_t {
  kDecode = 0,       ///< wire bytes -> Instance (charged by the server)
  kReducedGraph,     ///< first-choice/f-post reduced graph build
  kTwoRegular,       ///< two-regular spanning subgraph selection
  kEulerSplit,       ///< euler-tour halving rounds
  kListRank,         ///< pointer-doubling list-ranking rounds
  kWindowMin,        ///< window-min (trail labeling) rounds
  kCompaction,       ///< alive-edge compaction (scan + scatter)
  kGf2Rank,          ///< GF(2) rank / pivoting
  kExtract,          ///< matching extraction + inverse rebuild
  kVerify,           ///< popularity verification
};

inline constexpr std::size_t kNumPhases = 10;

/// Stable label for a phase ("decode", "list_rank", ...), used as the
/// `phase` label value of `ncpm_solve_phase_ns` and in slow-request logs.
const char* phase_name(Phase phase) noexcept;
const char* phase_name(std::size_t index) noexcept;

class PhaseScope;

/// Per-worker phase-time accumulator, nanoseconds per phase. One instance
/// per engine worker (attached to its private Executor); reset between
/// requests by the owner.
class PhaseAccum {
 public:
  PhaseAccum() noexcept = default;
  PhaseAccum(const PhaseAccum&) = delete;
  PhaseAccum& operator=(const PhaseAccum&) = delete;

  /// Adds `ns` to `phase`. Relaxed read-modify-write against concurrent
  /// readers; only the orchestrating thread writes.
  void add(Phase phase, std::uint64_t ns) noexcept {
    auto& cell = ns_[static_cast<std::size_t>(phase)];
    cell.store(cell.load(std::memory_order_relaxed) + ns,
               std::memory_order_relaxed);
  }

  std::uint64_t value(Phase phase) const noexcept {
    return ns_[static_cast<std::size_t>(phase)].load(std::memory_order_relaxed);
  }

  /// Zeroes every phase. Owner-only, between requests.
  void reset() noexcept {
    for (auto& cell : ns_) cell.store(0, std::memory_order_relaxed);
  }

  /// Copies the current per-phase totals out.
  std::array<std::uint64_t, kNumPhases> snapshot() const noexcept {
    std::array<std::uint64_t, kNumPhases> out{};
    for (std::size_t i = 0; i < kNumPhases; ++i) {
      out[i] = ns_[i].load(std::memory_order_relaxed);
    }
    return out;
  }

 private:
  friend class PhaseScope;
  std::array<std::atomic<std::uint64_t>, kNumPhases> ns_{};
  PhaseScope* current_ = nullptr;  ///< innermost open scope (owner thread only)
};

/// RAII phase timer. Constructed with a null accumulator it does nothing at
/// all — no clock read, no stores — which is the path every solver call
/// takes when profiling is off.
class PhaseScope {
 public:
  PhaseScope(PhaseAccum* accum, Phase phase) noexcept
      : accum_(accum), phase_(phase) {
    if (accum_ == nullptr) return;
    parent_ = accum_->current_;
    accum_->current_ = this;
    start_ns_ = now_ns();
  }

  ~PhaseScope() {
    if (accum_ == nullptr) return;
    const std::uint64_t elapsed = now_ns() - start_ns_;
    const std::uint64_t self =
        elapsed >= child_ns_ ? elapsed - child_ns_ : 0;
    accum_->add(phase_, self);
    accum_->current_ = parent_;
    if (parent_ != nullptr) parent_->child_ns_ += elapsed;
  }

  PhaseScope(const PhaseScope&) = delete;
  PhaseScope& operator=(const PhaseScope&) = delete;

  /// True when this scope is actually timing (an accumulator is attached).
  bool active() const noexcept { return accum_ != nullptr; }

 private:
  static std::uint64_t now_ns() noexcept {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
  }

  PhaseAccum* accum_;
  Phase phase_;
  PhaseScope* parent_ = nullptr;
  std::uint64_t start_ns_ = 0;
  std::uint64_t child_ns_ = 0;
};

}  // namespace ncpm::obs
