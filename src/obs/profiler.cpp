#include "obs/profiler.hpp"

namespace ncpm::obs {

namespace {

constexpr const char* kPhaseNames[kNumPhases] = {
    "decode",        // kDecode
    "reduced_graph", // kReducedGraph
    "two_regular",   // kTwoRegular
    "euler_split",   // kEulerSplit
    "list_rank",     // kListRank
    "window_min",    // kWindowMin
    "compaction",    // kCompaction
    "gf2_rank",      // kGf2Rank
    "extract",       // kExtract
    "verify",        // kVerify
};

}  // namespace

const char* phase_name(Phase phase) noexcept {
  return phase_name(static_cast<std::size_t>(phase));
}

const char* phase_name(std::size_t index) noexcept {
  return index < kNumPhases ? kPhaseNames[index] : "unknown";
}

}  // namespace ncpm::obs
