#pragma once
// obs::TraceRing — sampled per-request trace spans in a fixed ring buffer.
//
// Every Nth request (sample_every) gets a TraceSpan recording the serving
// milestones as steady-clock nanosecond timestamps. The span is committed
// whole at request completion: the writer claims a slot with one fetch_add
// and publishes through a per-slot sequence (odd while writing). snapshot()
// never blocks writers; a slot caught mid-write is skipped. All slot fields
// are atomics, so concurrent scrape + commit is data-race-free.
//
// This is best-effort flight-recorder telemetry: under extreme wrap rates a
// slot can be overwritten while read and is simply dropped from that scrape.

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "obs/profiler.hpp"

namespace ncpm::obs {

/// Milestones for one sampled request. Timestamps are steady-clock
/// nanoseconds (an arbitrary epoch: deltas are meaningful, wall time is
/// not); 0 means "not reached" (e.g. a shed request has no solve window).
struct TraceSpan {
  std::uint64_t request_id = 0;
  std::uint64_t conn_id = 0;
  std::uint8_t mode = 0;       ///< engine::Mode raw value (0xff = unknown)
  std::uint8_t status = 0;     ///< net::RpcStatus raw value
  std::uint64_t accept_ns = 0;      ///< connection accepted
  std::uint64_t frame_read_ns = 0;  ///< request frame fully read
  std::uint64_t dispatch_ns = 0;    ///< handed to (or rejected by) the engine
  std::uint64_t solve_start_ns = 0; ///< worker began the solve
  std::uint64_t solve_end_ns = 0;   ///< worker finished the solve
  std::uint64_t response_ns = 0;    ///< response frame handed to the writer
  std::uint64_t instance_digest = 0; ///< FNV-1a 64 over the payload bytes
  std::uint32_t payload_bytes = 0;   ///< request payload size on the wire
  /// Per-phase solver breakdown (obs::Phase index -> exclusive ns); all
  /// zero when the engine ran with profiling off or the request was shed.
  std::array<std::uint64_t, kNumPhases> phase_ns{};
};

class TraceRing {
 public:
  /// capacity == 0 or sample_every == 0 disables tracing entirely.
  explicit TraceRing(std::size_t capacity = 0, std::uint64_t sample_every = 0);

  TraceRing(const TraceRing&) = delete;
  TraceRing& operator=(const TraceRing&) = delete;

  bool enabled() const noexcept { return sample_every_ > 0 && capacity_ > 0; }
  std::size_t capacity() const noexcept { return capacity_; }
  std::uint64_t sample_every() const noexcept { return sample_every_; }

  /// True for every sample_every-th call; the caller then records a span and
  /// commits it. Callable from any thread; always false when disabled.
  bool should_sample() noexcept;

  /// Publishes one completed span into the ring.
  void commit(const TraceSpan& span) noexcept;

  /// Total spans ever committed.
  std::uint64_t committed() const noexcept {
    return commits_.load(std::memory_order_relaxed);
  }

  /// Copies out every fully-committed span currently in the ring (slot
  /// order, unspecified age order). Safe concurrently with commit().
  std::vector<TraceSpan> snapshot() const;

 private:
  struct Slot {
    std::atomic<std::uint32_t> seq{0};  ///< 0 = never written; odd = writing
    std::atomic<std::uint64_t> request_id{0};
    std::atomic<std::uint64_t> conn_id{0};
    std::atomic<std::uint64_t> mode_status{0};  ///< mode << 8 | status
    std::atomic<std::uint64_t> accept_ns{0};
    std::atomic<std::uint64_t> frame_read_ns{0};
    std::atomic<std::uint64_t> dispatch_ns{0};
    std::atomic<std::uint64_t> solve_start_ns{0};
    std::atomic<std::uint64_t> solve_end_ns{0};
    std::atomic<std::uint64_t> response_ns{0};
    std::atomic<std::uint64_t> instance_digest{0};
    std::atomic<std::uint64_t> payload_bytes{0};
    std::array<std::atomic<std::uint64_t>, kNumPhases> phase_ns{};
  };

  std::size_t capacity_;
  std::uint64_t sample_every_;
  std::unique_ptr<Slot[]> slots_;
  std::atomic<std::uint64_t> ticket_{0};
  std::atomic<std::uint64_t> commits_{0};
};

/// JSON array of spans (for `ncpm_cli stats --format json --traces`).
std::string render_spans_json(const std::vector<TraceSpan>& spans);

}  // namespace ncpm::obs
