#include "obs/log.hpp"

#include <chrono>
#include <cstdio>

namespace ncpm::obs {

namespace {

void append_json_escaped(std::string& out, std::string_view s) {
  for (char c : s) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

void append_field(std::string& out, const Field& f) {
  out += ",\"";
  append_json_escaped(out, f.key);
  out += "\":";
  switch (f.kind) {
    case Field::Kind::kU64:
      out += std::to_string(f.u64);
      break;
    case Field::Kind::kI64:
      out += std::to_string(f.i64);
      break;
    case Field::Kind::kF64: {
      char buf[64];
      std::snprintf(buf, sizeof(buf), "%.6g", f.f64);
      out += buf;
      break;
    }
    case Field::Kind::kBool:
      out += f.b ? "true" : "false";
      break;
    case Field::Kind::kStr:
      out += '"';
      append_json_escaped(out, f.str);
      out += '"';
      break;
  }
}

}  // namespace

void Log::enable(Sink sink) {
  std::lock_guard<std::mutex> lock(mu_);
  sink_ = std::move(sink);
  enabled_.store(true, std::memory_order_relaxed);
}

void Log::disable() {
  std::lock_guard<std::mutex> lock(mu_);
  enabled_.store(false, std::memory_order_relaxed);
  sink_ = nullptr;
}

void Log::event(std::string_view name, std::initializer_list<Field> fields) {
  if (!enabled()) return;
  const auto now = std::chrono::system_clock::now().time_since_epoch();
  const auto ts_ns = std::chrono::duration_cast<std::chrono::nanoseconds>(now).count();

  std::string line;
  line.reserve(128);
  line += "{\"ts_ns\":";
  line += std::to_string(ts_ns);
  line += ",\"event\":\"";
  append_json_escaped(line, name);
  line += '"';
  for (const Field& f : fields) append_field(line, f);
  line += "}\n";

  std::lock_guard<std::mutex> lock(mu_);
  if (!enabled_.load(std::memory_order_relaxed)) return;
  if (sink_) {
    sink_(line);
  } else {
    std::fwrite(line.data(), 1, line.size(), stderr);
  }
}

}  // namespace ncpm::obs
