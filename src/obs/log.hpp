#pragma once
// obs::Log — structured JSON-lines event log.
//
// One JSON object per line: {"ts_ns":...,"event":"conn_open",...fields}.
// Disabled by default; when disabled, event() is a single relaxed atomic
// load. The sink is pluggable (default: stderr) so tests can capture lines.
// Emission serializes under a mutex — logging is for lifecycle edges
// (connections, sheds, drains), not per-request hot paths.

#include <atomic>
#include <cstdint>
#include <functional>
#include <initializer_list>
#include <mutex>
#include <string>
#include <string_view>

namespace ncpm::obs {

/// A typed key/value pair for one log event.
struct Field {
  enum class Kind { kU64, kI64, kF64, kBool, kStr };

  Field(std::string_view k, std::uint64_t v) : key(k), kind(Kind::kU64), u64(v) {}
  Field(std::string_view k, std::int64_t v) : key(k), kind(Kind::kI64), i64(v) {}
  Field(std::string_view k, double v) : key(k), kind(Kind::kF64), f64(v) {}
  Field(std::string_view k, bool v) : key(k), kind(Kind::kBool), b(v) {}
  Field(std::string_view k, std::string_view v) : key(k), kind(Kind::kStr), str(v) {}
  Field(std::string_view k, const char* v) : key(k), kind(Kind::kStr), str(v) {}

  std::string_view key;
  Kind kind;
  std::uint64_t u64 = 0;
  std::int64_t i64 = 0;
  double f64 = 0.0;
  bool b = false;
  std::string_view str;
};

class Log {
 public:
  using Sink = std::function<void(std::string_view line)>;

  Log() = default;
  Log(const Log&) = delete;
  Log& operator=(const Log&) = delete;

  /// Enables emission. A null sink writes lines to stderr.
  void enable(Sink sink = {});
  void disable();
  bool enabled() const noexcept {
    return enabled_.load(std::memory_order_relaxed);
  }

  /// Emits one event line (no-op when disabled). The "ts_ns" (system clock,
  /// nanoseconds) and "event" keys are always present and come first.
  void event(std::string_view name, std::initializer_list<Field> fields);

 private:
  std::atomic<bool> enabled_{false};
  std::mutex mu_;
  Sink sink_;
};

}  // namespace ncpm::obs
