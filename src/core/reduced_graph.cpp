#include "core/reduced_graph.hpp"

#include <atomic>
#include <stdexcept>

#include "pram/scan.hpp"

namespace ncpm::core {

ReducedGraph build_reduced_graph(const Instance& inst, pram::NcCounters* counters,
                                 pram::Executor& ex) {
  if (!inst.strict_prefs()) {
    throw std::invalid_argument("build_reduced_graph: instance has ties (see core/ties.hpp)");
  }
  if (!inst.has_last_resorts()) {
    throw std::invalid_argument("build_reduced_graph: instance lacks last-resort posts");
  }
  const auto n_a = static_cast<std::size_t>(inst.num_applicants());
  const auto n_ext = static_cast<std::size_t>(inst.total_posts());

  ReducedGraph rg;
  rg.f_post.resize(n_a);
  rg.s_post.resize(n_a);
  rg.s_rank.resize(n_a);
  rg.is_f_post.assign(n_ext, 0);

  // Mark f-posts: posts with some rank-1 incident edge (CRCW common write).
  ex.parallel_for(n_a, [&](std::size_t a) {
    const auto posts = inst.posts_of(static_cast<std::int32_t>(a));
    rg.f_post[a] = posts[0];
    std::atomic_ref<std::uint8_t>(rg.is_f_post[static_cast<std::size_t>(posts[0])])
        .store(1, std::memory_order_relaxed);
  });
  pram::add_round(counters, n_a);

  // s(a): most preferred non-f-post; the last resort if the whole list is
  // f-posts. The per-applicant scan is O(list length) work, matching the
  // paper's "for each applicant, find the highest ranked incident edge not
  // in E1" step.
  ex.parallel_for(n_a, [&](std::size_t a) {
    const auto ai = static_cast<std::int32_t>(a);
    const auto posts = inst.posts_of(ai);
    const auto ranks = inst.ranks_of(ai);
    std::int32_t s = kNone;
    std::int32_t sr = 0;
    for (std::size_t i = 0; i < posts.size(); ++i) {
      if (rg.is_f_post[static_cast<std::size_t>(posts[i])] == 0) {
        s = posts[i];
        sr = ranks[i];
        break;
      }
    }
    if (s == kNone) {
      s = inst.last_resort(ai);
      sr = inst.num_ranks(ai) + 1;
    }
    rg.s_post[a] = s;
    rg.s_rank[a] = sr;
  });
  pram::add_round(counters, n_a);

  // f^-1 as CSR by counting sort over f_post.
  std::vector<std::int64_t> count(n_ext, 0);
  ex.parallel_for(n_a, [&](std::size_t a) {
    std::atomic_ref<std::int64_t>(count[static_cast<std::size_t>(rg.f_post[a])])
        .fetch_add(1, std::memory_order_relaxed);
  });
  pram::add_round(counters, n_a);
  std::vector<std::int64_t> off64(n_ext);
  const std::int64_t total = pram::exclusive_scan<std::int64_t>(count, off64, counters, ex);
  rg.f_inv_offset.resize(n_ext + 1);
  ex.parallel_for(n_ext, [&](std::size_t p) {
    rg.f_inv_offset[p] = static_cast<std::size_t>(off64[p]);
  });
  rg.f_inv_offset[n_ext] = static_cast<std::size_t>(total);
  pram::add_round(counters, n_ext);
  rg.f_inv.resize(static_cast<std::size_t>(total));
  std::vector<std::int64_t> cursor(off64);
  // Sequential placement keeps f_inv sorted by applicant id (deterministic
  // promotion later); the parallel variant would use atomic cursors.
  for (std::size_t a = 0; a < n_a; ++a) {
    auto& c = cursor[static_cast<std::size_t>(rg.f_post[a])];
    rg.f_inv[static_cast<std::size_t>(c++)] = static_cast<std::int32_t>(a);
  }
  pram::add_round(counters, n_a);

  for (std::size_t p = 0; p < n_ext; ++p) {
    if (rg.is_f_post[p] != 0) rg.f_posts.push_back(static_cast<std::int32_t>(p));
  }
  return rg;
}

}  // namespace ncpm::core
