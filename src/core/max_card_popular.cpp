#include "core/max_card_popular.hpp"

#include "core/popular_matching.hpp"
#include "core/reduced_graph.hpp"
#include "core/switching_graph.hpp"
#include "pram/parallel.hpp"

namespace ncpm::core {

matching::Matching maximize_cardinality(const Instance& inst, const matching::Matching& popular,
                                        pram::NcCounters* counters) {
  const ReducedGraph rg = build_reduced_graph(inst, counters);
  const SwitchingEngine engine(inst, rg, popular, counters);

  // Definition 4: a post is worth 1 unless it is a last resort.
  const auto n_ext = static_cast<std::size_t>(inst.total_posts());
  std::vector<std::int64_t> value(n_ext);
  pram::parallel_for(n_ext, [&](std::size_t p) {
    value[p] = inst.is_last_resort(static_cast<std::int32_t>(p)) ? 0 : 1;
  });
  pram::add_round(counters, n_ext);

  return engine.apply_best(value, counters);
}

std::optional<matching::Matching> find_max_card_popular(const Instance& inst,
                                                        pram::NcCounters* counters) {
  // One workspace per call: Algorithm 2's round scratch is warmed once and
  // reused by every pass of the pipeline.
  pram::Workspace ws;
  const auto popular = find_popular_matching(inst, ws, counters);
  if (!popular.has_value()) return std::nullopt;
  return maximize_cardinality(inst, *popular, counters);
}

}  // namespace ncpm::core
