#include "core/max_card_popular.hpp"

#include "core/popular_matching.hpp"
#include "core/reduced_graph.hpp"
#include "core/switching_graph.hpp"

namespace ncpm::core {

matching::Matching maximize_cardinality(const Instance& inst, const matching::Matching& popular,
                                        pram::Workspace& ws, pram::NcCounters* counters) {
  pram::Executor& ex = ws.exec();
  const ReducedGraph rg = build_reduced_graph(inst, counters, ex);
  const SwitchingEngine engine(inst, rg, popular, counters, ex);

  // Definition 4: a post is worth 1 unless it is a last resort.
  const auto n_ext = static_cast<std::size_t>(inst.total_posts());
  auto value = ws.take<std::int64_t>(n_ext);
  std::int64_t* const value_data = value.data();
  ex.parallel_for(n_ext, [&](std::size_t p) {
    value_data[p] = inst.is_last_resort(static_cast<std::int32_t>(p)) ? 0 : 1;
  });
  pram::add_round(counters, n_ext);

  return engine.apply_best(value.span(), counters);
}

matching::Matching maximize_cardinality(const Instance& inst, const matching::Matching& popular,
                                        pram::NcCounters* counters) {
  pram::Workspace ws;
  return maximize_cardinality(inst, popular, ws, counters);
}

std::optional<matching::Matching> find_max_card_popular(const Instance& inst, pram::Workspace& ws,
                                                        pram::NcCounters* counters) {
  const auto popular = find_popular_matching(inst, ws, counters);
  if (!popular.has_value()) return std::nullopt;
  return maximize_cardinality(inst, *popular, ws, counters);
}

std::optional<matching::Matching> find_max_card_popular(const Instance& inst,
                                                        pram::NcCounters* counters) {
  // One workspace per call: Algorithm 2's round scratch is warmed once and
  // reused by every pass of the pipeline.
  pram::Workspace ws;
  return find_max_card_popular(inst, ws, counters);
}

}  // namespace ncpm::core
