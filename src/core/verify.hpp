#pragma once
// Independent validators and exponential test oracles for popular matchings.
//
// The NC algorithms are never trusted to certify themselves: tests validate
// their output through (a) the Theorem 1 characterization, checked directly
// against the instance, and (b) for tiny instances, literal brute force over
// every matching and the "more popular than" relation of Definition 1.

#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "core/instance.hpp"
#include "core/reduced_graph.hpp"
#include "matching/matching.hpp"

namespace ncpm::core {

/// Matched pairs are acceptable (a's list or l(a)) and posts are not shared.
bool is_valid_assignment(const Instance& inst, const matching::Matching& m);

/// Every applicant is matched (to a real post or its last resort).
bool is_applicant_complete(const Instance& inst, const matching::Matching& m);

/// Number of applicants not matched to a last resort (the paper's |M|).
std::size_t matching_size(const Instance& inst, const matching::Matching& m);

/// P(m1, m2) - P(m2, m1): positive iff m1 is more popular than m2.
std::int64_t popularity_votes(const Instance& inst, const matching::Matching& m1,
                              const matching::Matching& m2);

/// Theorem 1: m is popular iff every f-post is matched and every applicant
/// sits on f(a) or s(a). Strict instances with last resorts only.
bool satisfies_popular_characterization(const Instance& inst, const ReducedGraph& rg,
                                        const matching::Matching& m);

/// Enumerate every matching of the instance as a post_of vector (extended
/// ids; kNone = unmatched, only possible without last resorts). With last
/// resorts the enumeration is over applicant-complete assignments, matching
/// the paper's convention. Exponential — tests only.
void for_each_assignment(const Instance& inst,
                         const std::function<void(const std::vector<std::int32_t>&)>& visit);

/// Definition 1 by brute force: no enumerated matching beats m.
bool is_popular_bruteforce(const Instance& inst, const matching::Matching& m);

/// All popular matchings, by double enumeration. Exponential — tests only.
std::vector<matching::Matching> all_popular_matchings_bruteforce(const Instance& inst);

/// post_of vector -> Matching (validates injectivity).
matching::Matching assignment_to_matching(const Instance& inst,
                                          const std::vector<std::int32_t>& post_of);

}  // namespace ncpm::core
