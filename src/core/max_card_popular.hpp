#pragma once
// Algorithm 3: NC maximum-cardinality popular matching (Theorem 10).
//
// Pipeline: find any popular matching (Algorithm 1), build its switching
// graph, compute the Definition 4 margins (post value 1 for real posts, 0
// for last resorts), and apply, per component, the switching cycle /
// best-margin switching path whenever the margin is positive. By Theorem 9
// every popular matching arises from an independent per-component choice,
// and margins add across components, so the greedy per-component optimum is
// the global one.

#include <optional>

#include "core/instance.hpp"
#include "matching/matching.hpp"
#include "pram/counters.hpp"
#include "pram/workspace.hpp"

namespace ncpm::core {

/// Largest-cardinality popular matching, or std::nullopt when the instance
/// admits no popular matching. Strict preferences with last resorts.
std::optional<matching::Matching> find_max_card_popular(const Instance& inst,
                                                        pram::NcCounters* counters = nullptr);

/// Workspace-reusing variant: Algorithm 1's round scratch and this
/// pipeline's own buffers are leased from `ws`, so a caller holding one
/// warm workspace (e.g. an engine worker) solves repeatedly without
/// workspace growth.
std::optional<matching::Matching> find_max_card_popular(const Instance& inst, pram::Workspace& ws,
                                                        pram::NcCounters* counters = nullptr);

/// Algorithm 3 proper: maximise cardinality starting from a known popular
/// matching of the instance.
matching::Matching maximize_cardinality(const Instance& inst, const matching::Matching& popular,
                                        pram::NcCounters* counters = nullptr);
matching::Matching maximize_cardinality(const Instance& inst, const matching::Matching& popular,
                                        pram::Workspace& ws,
                                        pram::NcCounters* counters = nullptr);

}  // namespace ncpm::core
