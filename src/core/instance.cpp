#include "core/instance.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>

namespace ncpm::core {

Instance Instance::strict(std::int32_t num_posts, std::vector<std::vector<std::int32_t>> lists,
                          bool with_last_resorts) {
  std::vector<std::vector<std::vector<std::int32_t>>> groups(lists.size());
  for (std::size_t a = 0; a < lists.size(); ++a) {
    groups[a].reserve(lists[a].size());
    for (const auto p : lists[a]) groups[a].push_back({p});
  }
  Instance inst;
  inst.build(num_posts, with_last_resorts, groups);
  return inst;
}

Instance Instance::with_ties(std::int32_t num_posts,
                             std::vector<std::vector<std::vector<std::int32_t>>> groups,
                             bool with_last_resorts) {
  Instance inst;
  inst.build(num_posts, with_last_resorts, groups);
  return inst;
}

void Instance::build(std::int32_t num_posts, bool with_last_resorts,
                     const std::vector<std::vector<std::vector<std::int32_t>>>& groups) {
  if (num_posts < 0) throw std::invalid_argument("Instance: negative post count");
  num_posts_ = num_posts;
  has_last_resorts_ = with_last_resorts;
  strict_ = true;
  const std::size_t n_a = groups.size();
  list_off_.assign(n_a + 1, 0);
  num_ranks_.assign(n_a, 0);

  for (std::size_t a = 0; a < n_a; ++a) {
    std::size_t len = 0;
    for (const auto& g : groups[a]) {
      if (g.empty()) throw std::invalid_argument("Instance: empty tie group");
      if (g.size() > 1) strict_ = false;
      len += g.size();
    }
    if (with_last_resorts && len == 0) {
      throw std::invalid_argument("Instance: preference lists must be non-empty");
    }
    list_off_[a + 1] = list_off_[a] + len;
    num_ranks_[a] = static_cast<std::int32_t>(groups[a].size());
    max_ranks_ = std::max(max_ranks_, num_ranks_[a]);
  }

  posts_.resize(list_off_[n_a]);
  ranks_.resize(list_off_[n_a]);
  lookup_posts_.resize(list_off_[n_a]);
  lookup_ranks_.resize(list_off_[n_a]);
  std::vector<std::uint8_t> seen(static_cast<std::size_t>(num_posts), 0);
  for (std::size_t a = 0; a < n_a; ++a) {
    std::size_t pos = list_off_[a];
    for (std::size_t k = 0; k < groups[a].size(); ++k) {
      for (const auto p : groups[a][k]) {
        if (p < 0 || p >= num_posts) throw std::out_of_range("Instance: post id out of range");
        if (seen[static_cast<std::size_t>(p)] != 0) {
          throw std::invalid_argument("Instance: duplicate post in a preference list");
        }
        seen[static_cast<std::size_t>(p)] = 1;
        posts_[pos] = p;
        ranks_[pos] = static_cast<std::int32_t>(k) + 1;
        ++pos;
      }
    }
    for (std::size_t i = list_off_[a]; i < list_off_[a + 1]; ++i) {
      seen[static_cast<std::size_t>(posts_[i])] = 0;
    }
    // Sorted-by-post copy for binary-search rank lookup.
    std::vector<std::size_t> order(list_off_[a + 1] - list_off_[a]);
    std::iota(order.begin(), order.end(), list_off_[a]);
    std::sort(order.begin(), order.end(),
              [&](std::size_t x, std::size_t y) { return posts_[x] < posts_[y]; });
    for (std::size_t i = 0; i < order.size(); ++i) {
      lookup_posts_[list_off_[a] + i] = posts_[order[i]];
      lookup_ranks_[list_off_[a] + i] = ranks_[order[i]];
    }
  }
}

std::int32_t Instance::last_resort(std::int32_t a) const {
  if (!has_last_resorts_) throw std::logic_error("Instance: no last-resort posts in this instance");
  if (a < 0 || a >= num_applicants()) throw std::out_of_range("Instance: applicant out of range");
  return num_posts_ + a;
}

std::int32_t Instance::rank_of(std::int32_t a, std::int32_t p) const {
  if (a < 0 || a >= num_applicants()) throw std::out_of_range("Instance: applicant out of range");
  if (p == kNone) return kNoRank;
  if (is_last_resort(p)) {
    return (has_last_resorts_ && p == num_posts_ + a) ? num_ranks(a) + 1 : kNoRank;
  }
  const auto i = static_cast<std::size_t>(a);
  const auto* begin = lookup_posts_.data() + list_off_[i];
  const auto* end = lookup_posts_.data() + list_off_[i + 1];
  const auto* it = std::lower_bound(begin, end, p);
  if (it == end || *it != p) return kNoRank;
  return lookup_ranks_[list_off_[i] + static_cast<std::size_t>(it - begin)];
}

bool Instance::prefers(std::int32_t a, std::int32_t p, std::int32_t q) const {
  return rank_of(a, p) < rank_of(a, q);
}

}  // namespace ncpm::core
