#pragma once
// Optimal popular matchings (Section IV-E): maximum/minimum-weight popular
// matchings and the two profile-based specialisations, rank-maximal and
// fair popular matchings.
//
// All of them ride the switching machinery: by Theorem 9 every popular
// matching is an independent per-component choice of switches, and both
// int64 weights and profile vectors form ordered abelian groups under
// addition, so optimising per component optimises globally. The paper
// realises the profile orders with n^(R+1)-sized integer weights; we keep
// exact profile vectors (see profile.hpp) — identical order, no bignums.

#include <functional>
#include <optional>

#include "core/instance.hpp"
#include "core/profile.hpp"
#include "matching/matching.hpp"
#include "pram/counters.hpp"
#include "pram/workspace.hpp"

namespace ncpm::core {

/// weight(applicant, extended post) -> value; evaluated only at the reduced
/// pairs (a, f(a)) and (a, s(a)).
using WeightFn = std::function<std::int64_t(std::int32_t, std::int32_t)>;

/// Optimal (max- or min-weight) popular matching, or std::nullopt when no
/// popular matching exists.
std::optional<matching::Matching> find_optimal_popular(const Instance& inst,
                                                       const WeightFn& weight, bool maximize,
                                                       pram::NcCounters* counters = nullptr);
std::optional<matching::Matching> find_optimal_popular(const Instance& inst,
                                                       const WeightFn& weight, bool maximize,
                                                       pram::Workspace& ws,
                                                       pram::NcCounters* counters = nullptr);

/// Weight-optimise starting from a known popular matching.
matching::Matching optimize_weight(const Instance& inst, const matching::Matching& popular,
                                   const WeightFn& weight, bool maximize,
                                   pram::NcCounters* counters = nullptr);
matching::Matching optimize_weight(const Instance& inst, const matching::Matching& popular,
                                   const WeightFn& weight, bool maximize, pram::Workspace& ws,
                                   pram::NcCounters* counters = nullptr);

/// Rank-maximal popular matching: profile lexicographically maximal from
/// rank 1 (most rank-1 applicants, then most rank-2, ...). Every entry
/// point has a workspace-reusing overload: pass the same warm workspace
/// across calls (as the engine's workers do) and the whole pipeline leases
/// its scratch from it instead of allocating.
std::optional<matching::Matching> find_rank_maximal_popular(const Instance& inst,
                                                            pram::NcCounters* counters = nullptr);
std::optional<matching::Matching> find_rank_maximal_popular(const Instance& inst,
                                                            pram::Workspace& ws,
                                                            pram::NcCounters* counters = nullptr);

/// Fair popular matching: profile reverse-lexicographically minimal (fewest
/// last resorts, then fewest worst-rank applicants, ...). Always also a
/// maximum-cardinality popular matching.
std::optional<matching::Matching> find_fair_popular(const Instance& inst,
                                                    pram::NcCounters* counters = nullptr);
std::optional<matching::Matching> find_fair_popular(const Instance& inst, pram::Workspace& ws,
                                                    pram::NcCounters* counters = nullptr);

/// The profile of an applicant-complete matching; dimension max_ranks()+1,
/// bucket k = applicants matched at rank k+1, last bucket = last resorts.
Profile matching_profile(const Instance& inst, const matching::Matching& m);

}  // namespace ncpm::core
