#pragma once
// The switching graph G_M of a popular matching (Section IV, after
// McDermid & Irving) and the parallel switch machinery of Algorithm 3.
//
// G_M has a vertex per (extended) post and, for every applicant a, a
// directed edge from M(a) to O_M(a) — the other post of a's reduced list —
// labelled a. It is a directed pseudoforest (Lemma 4): out-degree <= 1,
// sinks are exactly the posts unmatched in M (all s-posts), and every
// component has either a single sink or a single cycle.
//
// A *switching cycle* is the unique cycle of a cycle component; a
// *switching path* runs from any non-sink s-post vertex q of a tree
// component to its sink. Applying one moves every applicant on it from
// M(a) to O_M(a); Theorem 9 says the popular matchings of the instance are
// exactly the results of applying at most one switch per component.
//
// The engine below computes all of this with the pseudoforest toolkit:
// cycles by pointer doubling, per-vertex margin sums by one weighted
// list-ranking pass toward the component terminal (sink, or cycle broken at
// its root) — which prices *every* switching path of a tree component in a
// single pass — and marks chosen paths with binary-lifting jump pointers.
// Margins are parameterised by an arbitrary int64 post-value function so
// the same engine drives Algorithm 3 (value = 1 for real posts, 0 for last
// resorts; Definition 4) and the weighted variants of Section IV-E.

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "core/instance.hpp"
#include "core/reduced_graph.hpp"
#include "graph/pseudoforest.hpp"
#include "matching/matching.hpp"
#include "pram/counters.hpp"
#include "pram/list_ranking.hpp"
#include "pram/workspace.hpp"

namespace ncpm::core {

class SwitchingEngine {
 public:
  /// Build G_M for a popular matching m of the (strict) instance. The
  /// engine keeps a reference to `ex` and runs every parallel round of its
  /// construction and queries on it.
  SwitchingEngine(const Instance& inst, const ReducedGraph& rg, const matching::Matching& m,
                  pram::NcCounters* counters = nullptr,
                  pram::Executor& ex = pram::default_executor());

  const graph::DirectedPseudoforest& pseudoforest() const noexcept { return pf_; }
  const graph::CycleAnalysis& analysis() const noexcept { return cycles_; }
  /// Applicant labelling p's out-edge (kNone for sinks / posts outside G_M).
  std::span<const std::int32_t> out_applicant() const noexcept { return out_applicant_; }
  std::span<const std::uint8_t> is_s_post_vertex() const noexcept { return is_s_post_; }
  /// Component label (min post id) of every post vertex.
  std::span<const std::int32_t> component() const noexcept { return cycles_.component; }
  /// True iff the component with this label contains a cycle.
  bool component_has_cycle(std::int32_t label) const {
    return has_cycle_[static_cast<std::size_t>(label)] != 0;
  }

  struct MarginReport {
    /// Per vertex v: sum of applicant deltas along v -> component terminal
    /// (the switching-path margin when v is a valid path start).
    std::vector<std::int64_t> path_margin;
    /// Per vertex: the full cycle margin if v is a cycle root, else 0.
    std::vector<std::int64_t> cycle_margin;
  };

  /// Margins under a post-value function (indexed by extended post id): an
  /// applicant moving M(a) -> O_M(a) contributes value[O_M(a)] - value[M(a)].
  MarginReport margins(std::span<const std::int64_t> post_value,
                       pram::NcCounters* counters = nullptr) const;

  /// Margins from raw per-vertex deltas: vertex_delta[v] is the gain when
  /// the applicant on v's out-edge switches (must be 0 for sinks). This is
  /// the general entry point — weighted and profile-valued optimisation
  /// (Section IV-E) build applicant-dependent deltas and aggregate here.
  MarginReport margins_from_deltas(std::span<const std::int64_t> vertex_delta,
                                   pram::NcCounters* counters = nullptr) const;

  /// One switch: either the cycle rooted at `key`, or the switching path
  /// from s-post vertex `key` to its component's sink.
  struct Choice {
    std::int32_t key;
    bool is_cycle;
  };

  /// Apply a set of switches (at most one per component — unchecked beyond
  /// matching consistency) and return the resulting matching.
  matching::Matching apply(std::span<const Choice> choices,
                           pram::NcCounters* counters = nullptr) const;

  /// Algorithm 3 selection: per cycle component take the cycle iff its
  /// margin is positive; per tree component take the best-margin switching
  /// path (ties to the smallest start id) iff positive.
  std::vector<Choice> best_choices(const MarginReport& report,
                                   pram::NcCounters* counters = nullptr) const;

  /// Convenience: margins + best_choices + apply.
  matching::Matching apply_best(std::span<const std::int64_t> post_value,
                                pram::NcCounters* counters = nullptr) const;

  /// Every candidate switching-path start of the tree component labelled
  /// `label` (non-sink s-post vertices). Sequential helper for tests and the
  /// lexicographic optimisers.
  std::vector<std::int32_t> path_starts_of_component(std::int32_t label) const;
  /// All component labels that contain at least one edge of G_M.
  std::vector<std::int32_t> nontrivial_components() const;

 private:
  pram::Executor* ex_;                 // rounds run here; outlives the engine
  std::vector<std::int32_t> post_of_;  // M as a post vector (per applicant)
  graph::DirectedPseudoforest pf_;
  graph::CycleAnalysis cycles_;
  std::vector<std::int32_t> out_applicant_;
  std::vector<std::uint8_t> is_s_post_;
  std::vector<std::uint8_t> has_cycle_;      // indexed by component label
  std::vector<std::int32_t> broken_succ_;    // sinks and cycle roots self-looped
  pram::ListRanking steps_;                  // unweighted ranking over broken_succ_
  std::vector<std::vector<std::int32_t>> lift_;  // binary-lifting tables over broken_succ_
};

/// Theorem 9 as an oracle: every popular matching obtainable from m by
/// applying at most one switch per component. Exponential in the component
/// count — tests only.
std::vector<matching::Matching> all_popular_matchings_via_switching(const Instance& inst,
                                                                    const ReducedGraph& rg,
                                                                    const matching::Matching& m);

/// Number of popular matchings of the instance, in polynomial time: by
/// Theorem 9 it is the product, over the switching-graph components of any
/// popular matching, of (2 for a cycle component) x (1 + #switching paths
/// for a tree component). Saturates at UINT64_MAX; std::nullopt when the
/// instance admits no popular matching. (An extension beyond the paper,
/// following McDermid & Irving's structure results.)
std::optional<std::uint64_t> count_popular_matchings(const Instance& inst,
                                                     pram::NcCounters* counters = nullptr);
/// Workspace-reusing variant (the seed matching's Algorithm 2 rounds lease
/// their scratch from `ws`).
std::optional<std::uint64_t> count_popular_matchings(const Instance& inst, pram::Workspace& ws,
                                                     pram::NcCounters* counters = nullptr);
/// Count from a known popular matching, skipping the seed solve (callers
/// that already hold one — the engine's check mode — pay one pipeline run,
/// not two).
std::uint64_t count_popular_matchings(const Instance& inst, const matching::Matching& popular,
                                      pram::NcCounters* counters = nullptr,
                                      pram::Executor& ex = pram::default_executor());

}  // namespace ncpm::core
