#include "core/verify.hpp"

#include <stdexcept>

namespace ncpm::core {

bool is_valid_assignment(const Instance& inst, const matching::Matching& m) {
  if (m.n_left() != inst.num_applicants() || m.n_right() != inst.total_posts()) return false;
  std::vector<std::uint8_t> used(static_cast<std::size_t>(inst.total_posts()), 0);
  for (std::int32_t a = 0; a < inst.num_applicants(); ++a) {
    const std::int32_t p = m.right_of(a);
    if (p == matching::kNone) continue;
    if (inst.rank_of(a, p) == kNoRank) return false;
    if (used[static_cast<std::size_t>(p)] != 0) return false;
    used[static_cast<std::size_t>(p)] = 1;
  }
  return true;
}

bool is_applicant_complete(const Instance& inst, const matching::Matching& m) {
  for (std::int32_t a = 0; a < inst.num_applicants(); ++a) {
    if (m.right_of(a) == matching::kNone) return false;
  }
  return true;
}

std::size_t matching_size(const Instance& inst, const matching::Matching& m) {
  std::size_t size = 0;
  for (std::int32_t a = 0; a < inst.num_applicants(); ++a) {
    const std::int32_t p = m.right_of(a);
    if (p != matching::kNone && !inst.is_last_resort(p)) ++size;
  }
  return size;
}

std::int64_t popularity_votes(const Instance& inst, const matching::Matching& m1,
                              const matching::Matching& m2) {
  std::int64_t votes = 0;
  for (std::int32_t a = 0; a < inst.num_applicants(); ++a) {
    const std::int32_t p1 = m1.right_of(a);
    const std::int32_t p2 = m2.right_of(a);
    if (inst.prefers(a, p1, p2)) {
      ++votes;
    } else if (inst.prefers(a, p2, p1)) {
      --votes;
    }
  }
  return votes;
}

bool satisfies_popular_characterization(const Instance& inst, const ReducedGraph& rg,
                                        const matching::Matching& m) {
  if (!is_valid_assignment(inst, m) || !is_applicant_complete(inst, m)) return false;
  for (const auto p : rg.f_posts) {
    if (!m.right_matched(p)) return false;  // condition (i)
  }
  for (std::int32_t a = 0; a < inst.num_applicants(); ++a) {
    const std::int32_t p = m.right_of(a);
    const auto ai = static_cast<std::size_t>(a);
    if (p != rg.f_post[ai] && p != rg.s_post[ai]) return false;  // condition (ii)
  }
  return true;
}

namespace {

void enumerate_assignments(const Instance& inst, std::int32_t a,
                           std::vector<std::int32_t>& post_of, std::vector<std::uint8_t>& used,
                           const std::function<void(const std::vector<std::int32_t>&)>& visit) {
  if (a == inst.num_applicants()) {
    visit(post_of);
    return;
  }
  const auto try_post = [&](std::int32_t p) {
    if (used[static_cast<std::size_t>(p)] != 0) return;
    used[static_cast<std::size_t>(p)] = 1;
    post_of[static_cast<std::size_t>(a)] = p;
    enumerate_assignments(inst, a + 1, post_of, used, visit);
    post_of[static_cast<std::size_t>(a)] = kNone;
    used[static_cast<std::size_t>(p)] = 0;
  };
  for (const auto p : inst.posts_of(a)) try_post(p);
  if (inst.has_last_resorts()) {
    try_post(inst.last_resort(a));  // always free: unique to a
  } else {
    enumerate_assignments(inst, a + 1, post_of, used, visit);  // leave a unmatched
  }
}

}  // namespace

void for_each_assignment(const Instance& inst,
                         const std::function<void(const std::vector<std::int32_t>&)>& visit) {
  std::vector<std::int32_t> post_of(static_cast<std::size_t>(inst.num_applicants()), kNone);
  std::vector<std::uint8_t> used(static_cast<std::size_t>(inst.total_posts()), 0);
  enumerate_assignments(inst, 0, post_of, used, visit);
}

matching::Matching assignment_to_matching(const Instance& inst,
                                          const std::vector<std::int32_t>& post_of) {
  matching::Matching m(inst.num_applicants(), inst.total_posts());
  for (std::size_t a = 0; a < post_of.size(); ++a) {
    if (post_of[a] != kNone) m.match(static_cast<std::int32_t>(a), post_of[a]);
  }
  return m;
}

bool is_popular_bruteforce(const Instance& inst, const matching::Matching& m) {
  if (!is_valid_assignment(inst, m)) return false;
  bool popular = true;
  for_each_assignment(inst, [&](const std::vector<std::int32_t>& post_of) {
    if (!popular) return;
    std::int64_t votes = 0;
    for (std::int32_t a = 0; a < inst.num_applicants(); ++a) {
      const std::int32_t p1 = post_of[static_cast<std::size_t>(a)];
      const std::int32_t p2 = m.right_of(a);
      if (inst.prefers(a, p1, p2)) {
        ++votes;
      } else if (inst.prefers(a, p2, p1)) {
        --votes;
      }
    }
    if (votes > 0) popular = false;
  });
  return popular;
}

std::vector<matching::Matching> all_popular_matchings_bruteforce(const Instance& inst) {
  std::vector<matching::Matching> result;
  for_each_assignment(inst, [&](const std::vector<std::int32_t>& post_of) {
    const matching::Matching candidate = assignment_to_matching(inst, post_of);
    if (is_popular_bruteforce(inst, candidate)) result.push_back(candidate);
  });
  return result;
}

}  // namespace ncpm::core
